// Command rmsim runs the online runtime manager against a dynamic request
// trace in a discrete-event simulation and prints the event log, the
// executed Gantt chart and acceptance/energy statistics. It demonstrates
// the dynamic behaviour the paper motivates: requests arriving at any
// time, adaptive remapping, and firm-deadline admission control.
//
// Usage:
//
//	rmsim [-sched mdf|lr|exmem|greedy|fixed|fixed-remap] [-rate R]
//	      [-horizon T] [-seed S] [-resched] [-motivational]
package main

import (
	"flag"
	"fmt"
	"os"

	"adaptrm/internal/desim"
	"adaptrm/internal/dse"
	"adaptrm/internal/job"
	"adaptrm/internal/motiv"
	"adaptrm/internal/opset"
	"adaptrm/internal/platform"
	"adaptrm/internal/rm"
	"adaptrm/internal/schedreg"
	"adaptrm/internal/schedule"
	"adaptrm/internal/workload"
)

func main() {
	schedName := flag.String("sched", "mdf", "scheduler: "+schedreg.Names())
	rate := flag.Float64("rate", 0.15, "mean arrivals per second")
	horizon := flag.Float64("horizon", 300, "trace duration in seconds")
	seed := flag.Int64("seed", 1, "trace seed")
	resched := flag.Bool("resched", false, "re-run the scheduler at every job completion")
	motivational := flag.Bool("motivational", false, "replay the paper's Section III scenario instead of a random trace")
	flag.Parse()

	scheduler, err := schedreg.New(*schedName)
	if err != nil {
		fatal(err)
	}

	var lib *opset.Library
	var plat platform.Platform
	var trace []workload.Request
	if *motivational {
		plat = motiv.Platform()
		lib = motiv.Library()
		trace = []workload.Request{
			{At: 0, App: "lambda1", Deadline: 9},
			{At: 1, App: "lambda2", Deadline: 5},
		}
	} else {
		plat = platform.OdroidXU4()
		lib, err = dse.StandardLibrary(plat)
		if err != nil {
			fatal(err)
		}
		trace, err = workload.Trace(lib, workload.TraceParams{Rate: *rate, Horizon: *horizon, Seed: *seed})
		if err != nil {
			fatal(err)
		}
	}

	fmt.Printf("platform:  %s\n", plat)
	fmt.Printf("scheduler: %s\n", scheduler.Name())
	fmt.Printf("trace:     %d requests\n\n", len(trace))

	res, err := desim.Simulate(trace, lib, plat, scheduler, desim.Options{
		Manager: rm.Options{RescheduleOnFinish: *resched},
	})
	if err != nil {
		fatal(err)
	}
	res.WriteLog(os.Stdout)
	fmt.Println()
	res.Summary(os.Stdout)

	if len(res.Timeline) > 0 {
		fmt.Println()
		fmt.Println("Executed timeline:")
		// Rebuild a pseudo job set for rendering: jobs may repeat IDs
		// across the run only if the manager reused them (it does not).
		jobs := collectJobs(res, lib, trace)
		k := &schedule.Schedule{Segments: res.Timeline}
		if out, err := schedule.RenderGantt(k, jobs, plat, 100); err == nil {
			fmt.Print(out)
		}
		fmt.Println()
		schedule.ComputeMetrics(k, jobs).Render(os.Stdout)
	}
}

// collectJobs reconstructs a job set covering all executed placements so
// the Gantt renderer can resolve operating points. Remaining ratios are
// irrelevant for rendering; deadlines are cosmetic here.
func collectJobs(res *desim.Result, lib *opset.Library, trace []workload.Request) job.Set {
	apps := map[int]string{}
	for _, e := range res.Events {
		if e.Kind == desim.Arrival && e.Accepted {
			apps[e.JobID] = e.App
		}
	}
	var jobs job.Set
	for id, app := range apps {
		if tbl := lib.Get(app); tbl != nil {
			jobs = append(jobs, &job.Job{ID: id, Table: tbl, Deadline: 1e12, Remaining: 1})
		}
	}
	return jobs
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rmsim:", err)
	os.Exit(1)
}
