// Command rmsoak drives a live rmserve daemon with an open-loop load of
// admission traffic and reports client-side latency percentiles next to
// the server's own /metrics counters — the socket-level counterpart of
// the in-process benchmarks.
//
// The load is a seeded workload.FleetTrace (the same generator rmserve
// replays in-process), so the virtual-time request stream is
// reproducible; only the wall-clock pacing is load-dependent. Workers
// own disjoint device sets (device mod concurrency), preserving each
// device's non-decreasing virtual-time order, while a shared ticket
// counter paces the aggregate offered rate: ticket n fires at
// start + n/rps regardless of which worker drew it, so a slow worker
// never slows the others down (open loop). Every -advance-every
// submits a worker advances its device's clock to the newest arrival
// time, completing jobs; every -cancel-every accepted submits it
// cancels the most recent admission.
//
// Latencies are recorded per op kind in an HDR-style histogram
// (~1.6% relative error; see internal/metrics), so p99.9 of a
// million-op run costs a few fixed KiB, not a sample array. Admission
// rejections (infeasible), cancels of already-completed jobs (unknown
// job) and overloaded refusals (a daemon in ModeShedding protecting
// itself, or mailbox backpressure) are expected outcomes, counted but
// not errors; every other failure is a transport error. Before and
// after the run rmsoak scrapes /metrics and reconciles the server's
// submitted-counter delta against its own count — shed requests never
// reach a device, so the reconciliation stays exact while the daemon
// degrades — and, when the daemon exports adaptrm_shed_total, checks
// the shed delta against the client-observed overloaded count.
// -strict turns transport errors or a failed reconciliation into a
// non-zero exit for CI; an intentionally-shedding daemon still passes.
// -max-p99 additionally bounds the client-side submit p99 (the
// overload-stage CI assertion).
//
// -addr takes a single daemon, or a comma-separated list: workers
// round-robin across the listed addresses (worker w drives address
// w mod len), so the same flag soaks one node, a multi-node router
// front-end, or the nodes directly. A device always belongs to one
// worker and hence one address, preserving per-device order, and the
// reconciliation sums the submitted counter over every listed
// /metrics — list either the router or its nodes, never both (the
// router's merged counters would double-count).
//
// Usage:
//
//	rmsoak -addr http://127.0.0.1:8080[,http://...] [-token SECRET]
//	       [-rps 200] [-concurrency 4] [-duration 10s]
//	       [-devices 8] [-seed 1] [-burst N] [-burst-window S]
//	       [-advance-every 5] [-cancel-every 7]
//	       [-tsv FILE] [-strict] [-max-p99 D]
//
// -devices must match the daemon's fleet size (requests address devices
// [0, devices)). The trace's applications come from the same standard
// library rmserve loads, so names resolve on the daemon.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"adaptrm/internal/api"
	"adaptrm/internal/dse"
	"adaptrm/internal/httpapi"
	"adaptrm/internal/metrics"
	"adaptrm/internal/platform"
	"adaptrm/internal/workload"
)

// opKinds are the reported op categories, in report order.
var opKinds = []string{"submit", "advance", "cancel"}

// soakStats is the shared tally all workers add into.
type soakStats struct {
	lat [3]*metrics.HDR // per op kind, indexed like opKinds

	submits    atomic.Int64 // submit round-trips with an admission verdict
	accepted   atomic.Int64
	rejected   atomic.Int64
	advances   atomic.Int64
	cancels    atomic.Int64
	unknown    atomic.Int64 // cancels of already-finished jobs (expected)
	overloaded atomic.Int64 // ops refused with the overloaded taxonomy error: load shed by a degrading daemon or mailbox backpressure — deliberate protection, not a failure
	transport  atomic.Int64 // everything else: the soak's failure signal
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "base URL of the rmserve daemon, or a comma-separated list (workers round-robin across them; reconciliation sums every listed /metrics, so list either a router or its nodes, never both)")
	token := flag.String("token", "", "bearer token (when the daemon runs tenanted)")
	rps := flag.Float64("rps", 200, "aggregate offered rate in ops/sec (open loop)")
	concurrency := flag.Int("concurrency", 4, "worker goroutines (each owns devices d with d%concurrency==w)")
	duration := flag.Duration("duration", 10*time.Second, "soak length")
	devices := flag.Int("devices", 8, "fleet size of the target daemon")
	seed := flag.Int64("seed", 1, "trace seed")
	burst := flag.Int("burst", 0, "burst size of the generated trace (≤1 = plain Poisson)")
	burstWindow := flag.Float64("burst-window", 0, "burst spread in virtual seconds")
	advanceEvery := flag.Int("advance-every", 5, "advance a device's clock every N of its submits (0 = never)")
	cancelEvery := flag.Int("cancel-every", 7, "cancel every Nth accepted job (0 = never)")
	tsv := flag.String("tsv", "", "write the machine-readable latency table to this file ('-' = stdout)")
	strict := flag.Bool("strict", false, "exit non-zero on transport errors or a failed /metrics reconciliation (shed overloaded errors are expected outcomes, not failures)")
	maxP99 := flag.Duration("max-p99", 0, "exit non-zero when the client-side submit p99 exceeds this bound (0 = no bound; for overload-stage CI)")
	flag.Parse()
	if *rps <= 0 || *concurrency <= 0 || *devices <= 0 || *duration <= 0 {
		fatal(errors.New("rps, concurrency, devices and duration must be positive"))
	}

	// The trace must outlast the run at the offered rate; 25% headroom
	// plus one op per worker covers pacing jitter. The virtual horizon
	// is fixed: virtual time is decoupled from wall pacing, it only
	// shapes deadlines and arrival spacing.
	const horizon = 1000.0
	lib, err := dse.StandardLibrary(platform.OdroidXU4())
	if err != nil {
		fatal(err)
	}
	n := int(math.Ceil(*rps*duration.Seconds()*1.25)) + *concurrency
	trace, err := workload.FleetTrace(lib, workload.FleetTraceParams{
		Devices: *devices, Rate: float64(n) / (float64(*devices) * horizon), Horizon: horizon,
		Seed: *seed, BurstSize: *burst, BurstWindow: *burstWindow,
	})
	if err != nil {
		fatal(err)
	}

	// One client per listed address; worker w drives clients[w%len].
	// A device is always owned by one worker, hence one client, so
	// per-device virtual-time order survives a multi-address soak.
	addrs := splitAddrs(*addr)
	if len(addrs) == 0 {
		fatal(errors.New("-addr lists no addresses"))
	}
	clients := make([]*httpapi.Client, len(addrs))
	ctx := context.Background()
	for i, a := range addrs {
		clients[i] = httpapi.NewClient(a, *token, &http.Client{Timeout: 30 * time.Second})
		if err := clients[i].Health(ctx); err != nil {
			fatal(fmt.Errorf("daemon not answering at %s: %w", a, err))
		}
	}
	before, err := scrapeCountersAll(addrs, *token)
	if err != nil {
		fatal(fmt.Errorf("pre-run /metrics scrape: %w", err))
	}

	st := &soakStats{}
	for i := range st.lat {
		st.lat[i] = new(metrics.HDR)
	}
	var tickets atomic.Int64
	start := time.Now()
	deadline := start.Add(*duration)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker(ctx, clients[w%len(clients)], trace, st, workerConfig{
				id: w, concurrency: *concurrency, rps: *rps,
				start: start, deadline: deadline, tickets: &tickets,
				advanceEvery: *advanceEvery, cancelEvery: *cancelEvery,
			})
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := scrapeCountersAll(addrs, *token)
	reconciled := false
	shedDelta := int64(0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmsoak: post-run /metrics scrape:", err)
	} else {
		// Shed submits were refused before reaching a device, so they are
		// absent from both the client submit count and the server
		// submitted counter — the reconciliation stays exact while the
		// daemon degrades. The shed counter reconciles separately: the
		// server cannot have shed more than this (sole) client observed
		// as overloaded errors.
		reconciled = after.submitted-before.submitted == st.submits.Load()
		shedDelta = after.shed - before.shed
	}

	printReport(os.Stdout, *addr, *rps, *concurrency, elapsed, st, before.submitted, after.submitted, shedDelta, err == nil, reconciled)
	if *tsv != "" {
		if err := writeTSV(*tsv, st); err != nil {
			fatal(err)
		}
	}
	fail := false
	if *strict && (st.transport.Load() > 0 || err != nil || !reconciled) {
		fmt.Fprintln(os.Stderr, "rmsoak: strict mode: transport errors or reconciliation failure")
		fail = true
	}
	if *strict && err == nil && shedDelta > st.overloaded.Load() {
		fmt.Fprintf(os.Stderr, "rmsoak: strict mode: server shed %d but client observed only %d overloaded errors\n",
			shedDelta, st.overloaded.Load())
		fail = true
	}
	if *maxP99 > 0 {
		if p99 := time.Duration(st.lat[0].Quantile(0.99)); p99 > *maxP99 {
			fmt.Fprintf(os.Stderr, "rmsoak: submit p99 %v exceeds bound %v\n",
				p99.Round(time.Microsecond), *maxP99)
			fail = true
		}
	}
	if fail {
		os.Exit(1)
	}
}

type workerConfig struct {
	id, concurrency int
	rps             float64
	start, deadline time.Time
	tickets         *atomic.Int64
	advanceEvery    int
	cancelEvery     int
}

// worker replays its share of the trace — the devices it owns, in trace
// order — pacing each op with a global ticket. It returns when the wall
// deadline passes or its share is exhausted.
func worker(ctx context.Context, client *httpapi.Client, trace []workload.FleetRequest, st *soakStats, cfg workerConfig) {
	// lastJob remembers the most recent admitted job per owned device
	// for -cancel-every; submitsSeen counts per-device submits for
	// -advance-every.
	lastJob := map[int]int{}
	submitsSeen := map[int]int{}
	acceptedSeen := 0
	for _, r := range trace {
		if r.Device%cfg.concurrency != cfg.id {
			continue
		}
		// Open-loop pacing: the n-th op fleet-wide fires at start+n/rps,
		// whichever worker drew the ticket.
		n := cfg.tickets.Add(1) - 1
		at := cfg.start.Add(time.Duration(float64(n) / cfg.rps * float64(time.Second)))
		if at.After(cfg.deadline) {
			return
		}
		time.Sleep(time.Until(at))

		t0 := time.Now()
		res, err := client.Submit(ctx, api.SubmitRequest{Device: r.Device, At: r.At, App: r.App, Deadline: r.Deadline})
		st.lat[0].Observe(int64(time.Since(t0)))
		switch {
		case err == nil:
			st.submits.Add(1)
			st.accepted.Add(1)
			lastJob[r.Device] = res.JobID
			acceptedSeen++
		case errors.Is(err, api.ErrInfeasible):
			st.submits.Add(1)
			st.rejected.Add(1)
		case errors.Is(err, api.ErrOverloaded):
			// Shed before any scheduler activation (or bounced off a full
			// mailbox): the request never reached the device, so it is
			// deliberately NOT a submit — the /metrics submitted-counter
			// reconciliation stays exact while the daemon sheds.
			st.overloaded.Add(1)
			continue
		default:
			st.transport.Add(1)
			continue // the device clock may not have advanced; skip follow-ups
		}

		submitsSeen[r.Device]++
		if cfg.advanceEvery > 0 && submitsSeen[r.Device]%cfg.advanceEvery == 0 {
			t0 = time.Now()
			_, err := client.Advance(ctx, api.AdvanceRequest{Device: r.Device, To: r.At})
			st.lat[1].Observe(int64(time.Since(t0)))
			switch {
			case err == nil:
				st.advances.Add(1)
			case errors.Is(err, api.ErrOverloaded):
				st.overloaded.Add(1)
			default:
				st.transport.Add(1)
			}
		}
		if cfg.cancelEvery > 0 && acceptedSeen > 0 && acceptedSeen%cfg.cancelEvery == 0 {
			if job, ok := lastJob[r.Device]; ok {
				delete(lastJob, r.Device)
				t0 = time.Now()
				_, err := client.Cancel(ctx, api.CancelRequest{Device: r.Device, JobID: job})
				st.lat[2].Observe(int64(time.Since(t0)))
				switch {
				case err == nil:
					st.cancels.Add(1)
				case errors.Is(err, api.ErrUnknownJob):
					// The job completed under an earlier advance: expected.
					st.unknown.Add(1)
				case errors.Is(err, api.ErrOverloaded):
					st.overloaded.Add(1)
				default:
					st.transport.Add(1)
				}
			}
		}
	}
}

// splitAddrs parses the -addr flag: a comma-separated address list,
// empty elements dropped.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// soakCounters are the server-side counters the soak reconciles
// against, summed over the scraped addresses.
type soakCounters struct {
	submitted int64
	// shed is adaptrm_shed_total, the admissions the degradation
	// controller rejected early (0 when the family is absent — a
	// controller-less daemon does not export it).
	shed int64
}

// scrapeCountersAll sums the reconciliation counters across every
// listed address. Against a single node (or a router, whose /metrics
// already merges its backends) this is one scrape; against a node list
// the sum reconstructs the fleet-wide count, since each device's
// submits land on exactly one node.
func scrapeCountersAll(addrs []string, token string) (soakCounters, error) {
	var total soakCounters
	for _, a := range addrs {
		v, err := scrapeCounters(a, token)
		if err != nil {
			return soakCounters{}, fmt.Errorf("%s: %w", a, err)
		}
		total.submitted += v.submitted
		total.shed += v.shed
	}
	return total, nil
}

// scrapeCounters fetches /metrics and returns the fleet-wide samples
// (the unlabeled ones) of the reconciliation counters. The submitted
// counter is mandatory; the shed counter is optional.
func scrapeCounters(addr, token string) (soakCounters, error) {
	var out soakCounters
	req, err := http.NewRequest(http.MethodGet, strings.TrimRight(addr, "/")+"/metrics", nil)
	if err != nil {
		return out, err
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return out, fmt.Errorf("GET /metrics: %d: %s", resp.StatusCode, body)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	found := false
	for sc.Scan() {
		line := sc.Text()
		if v, ok := strings.CutPrefix(line, "adaptrm_requests_submitted_total "); ok {
			if out.submitted, err = strconv.ParseInt(v, 10, 64); err != nil {
				return out, err
			}
			found = true
		}
		if v, ok := strings.CutPrefix(line, "adaptrm_shed_total "); ok {
			if out.shed, err = strconv.ParseInt(v, 10, 64); err != nil {
				return out, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	if !found {
		return out, errors.New("adaptrm_requests_submitted_total not found in /metrics")
	}
	return out, nil
}

func printReport(w io.Writer, addr string, rps float64, concurrency int, elapsed time.Duration, st *soakStats, before, after, shedDelta int64, scraped, reconciled bool) {
	total := st.submits.Load() + st.advances.Load() + st.cancels.Load() + st.unknown.Load() +
		st.overloaded.Load() + st.transport.Load()
	fmt.Fprintln(w, "rmsoak report")
	fmt.Fprintln(w, "-------------")
	fmt.Fprintf(w, "target:    %s\n", addr)
	fmt.Fprintf(w, "offered:   %g ops/s open-loop, %d workers, %v elapsed\n", rps, concurrency, elapsed.Round(time.Millisecond))
	// The ticket pacing gates submits; advances and cancels ride along
	// with their submit, so the achieved total can exceed the offered
	// submit rate.
	fmt.Fprintf(w, "achieved:  %.0f ops/s (%d ops incl. follow-ups)\n", float64(total)/elapsed.Seconds(), total)
	fmt.Fprintf(w, "ops:       %d submits (%d accepted, %d rejected), %d advances, %d cancels (+%d already done)\n",
		st.submits.Load(), st.accepted.Load(), st.rejected.Load(), st.advances.Load(), st.cancels.Load(), st.unknown.Load())
	fmt.Fprintf(w, "errors:    %d transport, %d overloaded (shed by the server — deliberate, not a failure)\n",
		st.transport.Load(), st.overloaded.Load())
	for i, kind := range opKinds {
		h := st.lat[i]
		if h.Count() == 0 {
			continue
		}
		fmt.Fprintf(w, "latency:   %-8s p50 %-9v p90 %-9v p99 %-9v p99.9 %-9v max %-9v mean %v\n",
			kind,
			time.Duration(h.Quantile(0.5)).Round(time.Microsecond),
			time.Duration(h.Quantile(0.9)).Round(time.Microsecond),
			time.Duration(h.Quantile(0.99)).Round(time.Microsecond),
			time.Duration(h.Quantile(0.999)).Round(time.Microsecond),
			time.Duration(h.Max()).Round(time.Microsecond),
			time.Duration(h.Mean()).Round(time.Microsecond))
	}
	switch {
	case !scraped:
		fmt.Fprintf(w, "server:    /metrics scrape failed\n")
	case reconciled:
		fmt.Fprintf(w, "server:    submitted %d → %d (delta %d) — reconciles with client count\n",
			before, after, after-before)
	default:
		fmt.Fprintf(w, "server:    submitted %d → %d (delta %d) — MISMATCH vs client %d\n",
			before, after, after-before, st.submits.Load())
	}
	if scraped && (shedDelta > 0 || st.overloaded.Load() > 0) {
		fmt.Fprintf(w, "shedding:  server shed %d, client observed %d overloaded\n",
			shedDelta, st.overloaded.Load())
	}
}

// writeTSV emits one row per op kind: kind, count, then the latency
// figures in nanoseconds — stable columns for plotting or diffing runs.
func writeTSV(path string, st *soakStats) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	fmt.Fprintln(out, "op\tcount\tp50_ns\tp90_ns\tp99_ns\tp999_ns\tmax_ns\tmean_ns")
	for i, kind := range opKinds {
		h := st.lat[i]
		fmt.Fprintf(out, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%.0f\n",
			kind, h.Count(), h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99), h.Quantile(0.999),
			h.Max(), h.Mean())
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rmsoak:", err)
	os.Exit(1)
}
