// Command rmgen generates the evaluation workload: either the 1676-case
// static suite of Table III (default) or a dynamic Poisson arrival trace.
// Workloads are printed as a census plus, optionally, written to JSON in
// the format cmd/rmeval and cmd/rmsim consume.
//
// Usage:
//
//	rmgen [-seed S] [-out suite.json]
//	rmgen -trace -rate 0.2 -horizon 600 [-seed S] [-out trace.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"adaptrm/internal/dse"
	"adaptrm/internal/eval"
	"adaptrm/internal/platform"
	"adaptrm/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 1, "generation seed")
	out := flag.String("out", "", "write the workload as JSON to this file")
	trace := flag.Bool("trace", false, "generate a dynamic arrival trace instead of the static suite")
	rate := flag.Float64("rate", 0.2, "trace: mean arrivals per second")
	horizon := flag.Float64("horizon", 600, "trace: duration in seconds")
	flag.Parse()

	plat := platform.OdroidXU4()
	lib, err := dse.StandardLibrary(plat)
	if err != nil {
		fatal(err)
	}

	if *trace {
		reqs, err := workload.Trace(lib, workload.TraceParams{Rate: *rate, Horizon: *horizon, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("generated %d requests over %.0fs (rate %.2f/s, seed %d)\n",
			len(reqs), *horizon, *rate, *seed)
		if *out != "" {
			writeFile(*out, func(f *os.File) error { return workload.WriteTraceJSON(f, reqs) })
		}
		return
	}

	cases, err := workload.Suite(lib, workload.Params{Seed: *seed})
	if err != nil {
		fatal(err)
	}
	eval.NewTable3Report(cases).Render(os.Stdout)
	if *out != "" {
		writeFile(*out, func(f *os.File) error { return workload.WriteSuiteJSON(f, cases) })
	}
}

func writeFile(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rmgen:", err)
	os.Exit(1)
}
