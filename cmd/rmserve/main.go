// Command rmserve runs the fleet service in one of three modes: replay,
// daemon, or multi-node router.
//
// Replay mode (default): spin up M devices behind K shard workers,
// replay a generated multi-tenant request trace through the concurrent
// front-end, and print an aggregate fleet report — accept rate, energy,
// deadline misses, scheduler wall time, schedule-cache effectiveness and
// end-to-end throughput. It is the service-layer counterpart of
// cmd/rmsim's single-device simulation.
//
// Daemon mode (-listen): expose the same fleet as a JSON/HTTP service
// (package httpapi) implementing the transport-agnostic api.Service
// protocol — POST /v1/submit, /v1/advance, /v1/cancel, GET /v1/stats,
// GET /v1/watch (the device event stream as Server-Sent Events, with
// heartbeats and resume-from-sequence) and /healthz — with optional
// per-tenant bearer-token authentication, device authorisation and
// quotas of both kinds: a total request budget and a token-bucket rate
// (sustained ops/sec plus burst). The daemon shuts down gracefully on
// SIGINT/SIGTERM, drains every device and prints the same fleet report.
// Clients use httpapi.NewClient (or plain curl); the in-process fleet
// service and the HTTP client are behaviourally interchangeable,
// watches included.
//
// In daemon mode the server also exposes its observability surface:
// GET /metrics (Prometheus text format), GET /debug/flightlog (the
// bounded in-memory postmortem ring of recent requests and device
// events; -flightlog-size tunes the capacity, 0 disables), and — only
// with -pprof-token — the token-gated net/http/pprof routes under
// /debug/pprof/. SIGQUIT dumps the flightlog to stderr without
// stopping the daemon; the shutdown report includes quota-refusal
// totals when tenants are configured. -listen 127.0.0.1:0 picks a free
// port; the resolved address is printed on the "listening:" line.
//
// With -data-dir the fleet is durable: a write-ahead event log plus
// periodic state snapshots persist in the directory (package durable),
// the process recovers from whatever it holds on start — printing a
// "wal:" recovery report — and a kill -9 loses at most the events not
// yet flushed under the chosen -fsync policy (always | interval |
// never). -event-history sizes the per-device retained-event window
// that both watch resumes and the WAL tail draw on. See the
// "Durability and recovery" section in internal/durable's package
// documentation.
//
// Router mode (-route -peers): serve the same HTTP protocol as a thin
// consistent-hash routing front-end over N backend daemons instead of
// a local fleet. Device-addressed calls go to the device's owner on a
// deterministic placement ring (internal/placement; -ring-replicas and
// -ring-seed parameterise it and must match across routers of one
// deployment), fleet-wide stats fan out and merge, watch streams merge
// per device, and an unreachable backend surfaces as the taxonomy's
// "unavailable" error (HTTP 502). /metrics additionally exports
// adaptrm_router_* families: per-peer request counters, error classes
// and latency histograms. Clients cannot otherwise tell a router from
// a single node.
//
// Usage:
//
//	rmserve [-devices M] [-shards K] [-sched mdf|lr|exmem|greedy|fixed|fixed-remap]
//	        [-rate R] [-spread S] [-horizon T] [-seed N]
//	        [-cache] [-cache-size N] [-cache-slack F] [-mailbox N]
//	        [-cache-shared] [-cache-warm FILE] [-cache-warm-out FILE]
//	        [-refine] [-refine-budget N] [-refine-workers K]
//	        [-control [-control-interval D] [-control-max-window F]
//	         [-control-high-latency D]]
//	        [-resched] [-data-dir DIR [-fsync MODE]] [-v]
//	rmserve -listen :8080 [-token SECRET | -tenants FILE.json]
//	        [-quota-rate R [-quota-burst B]]
//	        [-pprof-token SECRET] [-flightlog-size N]
//	        [-data-dir DIR [-fsync MODE]] [-event-history N]
//	        [-devices M] [-shards K] [-sched NAME] [-cache] ...
//	rmserve -route -listen :8080 -peers host1:9001,host2:9002
//	        [-ring-replicas N] [-ring-seed N] [-peer-token SECRET]
//	        [-token SECRET | -tenants FILE.json] [-pprof-token SECRET]
//
// -quota-rate/-quota-burst attach a token bucket to the single -token
// tenant (the replay-mode -rate/-burst flags shape the generated trace,
// hence the distinct names). A tenants file carries the same settings
// per tenant as "rate"/"burst" keys:
//
//	[{"name":"acme","token":"s3cret","devices":[0,1],"max_requests":1000,
//	  "rate":50,"burst":100},
//	 {"name":"ops","token":"t0ken"}]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"adaptrm/internal/control"
	"adaptrm/internal/dse"
	"adaptrm/internal/durable"
	"adaptrm/internal/fleet"
	"adaptrm/internal/flightlog"
	"adaptrm/internal/httpapi"
	"adaptrm/internal/placement"
	"adaptrm/internal/platform"
	"adaptrm/internal/rm"
	"adaptrm/internal/router"
	"adaptrm/internal/schedcache"
	"adaptrm/internal/schedreg"
	"adaptrm/internal/workload"
)

func main() {
	devices := flag.Int("devices", 8, "number of devices in the fleet")
	shards := flag.Int("shards", 4, "number of shard worker goroutines")
	schedName := flag.String("sched", "mdf", "scheduler: "+schedreg.Names())
	rate := flag.Float64("rate", 0.05, "base mean arrivals per second per device (replay mode)")
	spread := flag.Float64("spread", 0.5, "per-device rate heterogeneity in [0,1) (replay mode)")
	horizon := flag.Float64("horizon", 300, "trace duration in seconds (replay mode)")
	seed := flag.Int64("seed", 1, "trace seed (replay mode)")
	cache := flag.Bool("cache", true, "enable the per-device schedule cache")
	cacheSize := flag.Int("cache-size", schedcache.DefaultCapacity, "schedule-cache capacity per device")
	cacheSlack := flag.Float64("cache-slack", schedcache.DefaultSlackBucket, "relative slack bucket of the cache signature")
	cacheShared := flag.Bool("cache-shared", false, "back the per-device caches with one fleet-wide shared tier (cross-device reuse)")
	cacheWarm := flag.String("cache-warm", "", "load a warm shared-tier file (scripts/warm-cache.sh output) at start; implies -cache-shared")
	cacheWarmOut := flag.String("cache-warm-out", "", "save the shared tier to this file at shutdown; implies -cache-shared")
	refine := flag.Bool("refine", false, "enable anytime refinement: background exact searches swap strictly cheaper schedules into running devices")
	refineBudget := flag.Int64("refine-budget", 0, "node budget per background refinement search (0 = default)")
	refineWorkers := flag.Int("refine-workers", 1, "background refinement worker goroutines")
	mailbox := flag.Int("mailbox", 64, "per-shard mailbox size")
	batchWindow := flag.Float64("batch-window", 0, "coalesce queued same-device submits within this many seconds of virtual time into one batched activation (0 disables)")
	ctlEnable := flag.Bool("control", false, "attach the closed-loop degradation controller: adaptive batch window, heuristic-only fallback, load shedding under sustained queue pressure")
	ctlInterval := flag.Duration("control-interval", 200*time.Millisecond, "controller tick interval with -control")
	ctlMaxWindow := flag.Float64("control-max-window", 0, "ceiling the controller may stretch -batch-window to under pressure (0 disables window tuning)")
	ctlLatency := flag.Duration("control-high-latency", 0, "mean admission latency per tick that counts as overload with -control (0 = queue-depth signal only)")
	burst := flag.Int("burst", 0, "burst size: requests per arrival event (replay mode; ≤1 = plain Poisson)")
	burstWindow := flag.Float64("burst-window", 0, "spread of a burst's arrivals in seconds (replay mode; 0 = coincident)")
	resched := flag.Bool("resched", false, "re-run the scheduler at every job completion")
	eventHistory := flag.Int("event-history", 0, "per-device retained-event window for watch resumes (0 = default 1024)")
	dataDir := flag.String("data-dir", "", "persist the event log and snapshots in this directory and recover from it on start")
	fsyncMode := flag.String("fsync", "interval", "WAL fsync policy with -data-dir: always|interval|never")
	verbose := flag.Bool("v", false, "print per-device statistics")
	listen := flag.String("listen", "", "daemon mode: serve the fleet over HTTP on this address (e.g. :8080)")
	token := flag.String("token", "", "daemon mode: single-tenant bearer token (all devices, no quota)")
	tenantsPath := flag.String("tenants", "", "daemon mode: JSON tenant file (overrides -token)")
	quotaRate := flag.Float64("quota-rate", 0, "daemon mode: token-bucket rate for the -token tenant in mutating ops/sec (0 = unlimited)")
	quotaBurst := flag.Int("quota-burst", 0, "daemon mode: token-bucket burst for the -token tenant (0 = ceil(rate))")
	pprofToken := flag.String("pprof-token", "", "daemon mode: enable /debug/pprof/ behind this token (empty = profiling off)")
	flightlogSize := flag.Int("flightlog-size", flightlog.DefaultCapacity, "daemon mode: postmortem ring capacity (0 disables /debug/flightlog and the SIGQUIT dump)")
	route := flag.Bool("route", false, "router mode: serve a consistent-hash routing front-end over -peers instead of a local fleet (requires -listen)")
	peers := flag.String("peers", "", "router mode: comma-separated backend addresses (host:port or http://...)")
	ringReplicas := flag.Int("ring-replicas", 0, "router mode: virtual nodes per peer on the placement ring (0 = default)")
	ringSeed := flag.Uint64("ring-seed", 0, "router mode: placement-ring seed; all routers of a deployment must share it")
	peerToken := flag.String("peer-token", "", "router mode: bearer token the router presents to its backends")
	flag.Parse()

	if *route {
		serveRouter(routeConfig{
			listen: *listen, peers: *peers, peerToken: *peerToken,
			ringReplicas: *ringReplicas, ringSeed: *ringSeed,
			token: *token, tenantsPath: *tenantsPath,
			quotaRate: *quotaRate, quotaBurst: *quotaBurst,
			pprofToken: *pprofToken,
		})
		return
	}

	plat := platform.OdroidXU4()
	lib, err := dse.StandardLibrary(plat)
	if err != nil {
		fatal(err)
	}

	devs := make([]fleet.DeviceConfig, *devices)
	for i := range devs {
		s, err := schedreg.New(*schedName)
		if err != nil {
			fatal(err)
		}
		devs[i] = fleet.DeviceConfig{Platform: plat, Library: lib, Scheduler: s}
		if *ctlEnable {
			// Degraded-mode fallback: a fresh per-device MDF instance,
			// outside any cache wrapping, so heuristic-only admission
			// costs exactly one heuristic solve.
			fb, err := schedreg.New("mdf")
			if err != nil {
				fatal(err)
			}
			devs[i].Fallback = fb
		}
	}
	opt := fleet.Options{
		Shards:        *shards,
		MailboxSize:   *mailbox,
		Manager:       rm.Options{RescheduleOnFinish: *resched},
		Cache:         *cache,
		CacheParams:   schedcache.Params{Capacity: *cacheSize, SlackBucket: *cacheSlack},
		BatchWindow:   *batchWindow,
		EventHistory:  *eventHistory,
		Refine:        *refine,
		RefineBudget:  *refineBudget,
		RefineWorkers: *refineWorkers,
	}
	var ctl *control.Controller
	if *ctlEnable {
		ctl = control.New(control.Config{
			BaseWindow:  *batchWindow,
			MaxWindow:   *ctlMaxWindow,
			HighLatency: *ctlLatency,
		})
		opt.Control = ctl
	}
	if *cacheWarm != "" || *cacheWarmOut != "" {
		*cacheShared = true
	}
	var shared *schedcache.Shared
	if *cacheShared {
		if !*cache {
			fatal(errors.New("-cache-shared requires -cache"))
		}
		shared = schedcache.NewShared()
		opt.SharedCache = shared
		if *cacheWarm != "" {
			wf, err := os.Open(*cacheWarm)
			if err != nil {
				fatal(err)
			}
			err = shared.Load(wf)
			wf.Close()
			if err != nil {
				fatal(fmt.Errorf("loading %s: %w", *cacheWarm, err))
			}
			ss := shared.Stats()
			fmt.Printf("cache warm: %d entries loaded from %s (%d exact)\n",
				ss.Loaded, *cacheWarm, ss.ExactEntries)
		}
	}

	// With -data-dir the fleet is rebuilt from whatever the directory
	// holds — per-device snapshots plus the contiguous event-log tail,
	// replayed through the deterministic manager transitions — and a
	// writer then tails the live event streams back into it.
	var wal *durable.Writer
	f, walState, err := buildFleet(devs, opt, *dataDir, durable.Meta{
		Devices: *devices, Scheduler: *schedName, Cache: *cache, RescheduleOnFinish: *resched,
	})
	if err != nil {
		fatal(err)
	}
	if walState != nil {
		policy, err := durable.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			fatal(err)
		}
		if wal, err = durable.NewWriter(walState, f, durable.Options{Fsync: policy}); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("platform:  %s\n", plat)
	fmt.Printf("fleet:     %d devices, %d shards, scheduler %s, cache %v\n",
		*devices, *shards, *schedName, *cache)
	if walState != nil {
		fmt.Printf("wal:       %s (fsync %s), recovered %d events, %d snapshots, %d torn bytes truncated\n",
			walState.Dir, *fsyncMode, walState.Events, walState.Snapshots, walState.TruncatedBytes)
	}
	stopTick := startController(ctl, *ctlInterval)
	if ctl != nil {
		fmt.Printf("control:   tick %v, window %g..%gs, latency signal %v\n",
			*ctlInterval, *batchWindow, *ctlMaxWindow, *ctlLatency)
	}

	if *listen != "" {
		serveDaemon(f, wal, daemonConfig{
			listen: *listen, token: *token, tenantsPath: *tenantsPath,
			quotaRate: *quotaRate, quotaBurst: *quotaBurst,
			pprofToken: *pprofToken, flightlogSize: *flightlogSize,
			cache: *cache, verbose: *verbose, devices: *devices,
			shared: shared, warmOut: *cacheWarmOut,
			stopTick: stopTick,
		})
		return
	}

	trace, err := workload.FleetTrace(lib, workload.FleetTraceParams{
		Devices: *devices, Rate: *rate, RateSpread: *spread,
		Horizon: *horizon, Seed: *seed,
		BurstSize: *burst, BurstWindow: *burstWindow,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("trace:     %d requests over %.0fs (rate %.3g/s ±%.0f%% per device, seed %d)\n\n",
		len(trace), *horizon, *rate, *spread*100, *seed)

	start := time.Now()
	if err := f.Replay(trace); err != nil {
		fatal(err)
	}
	stopTick()
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "rmserve: device errors:", err)
	}
	closeWAL(wal)
	saveWarm(shared, *cacheWarmOut)
	report(f, time.Since(start), *cache, *verbose, false, *devices)
}

// startController drives the degradation controller from a wall-clock
// ticker until the returned stop function runs. Stop is called before
// Fleet.Close in every shutdown path: a tick's mode broadcast must not
// race the closing watch hub. With a nil controller both the goroutine
// and the stop are no-ops.
func startController(ctl *control.Controller, interval time.Duration) (stop func()) {
	if ctl == nil {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	epoch := time.Now()
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-t.C:
				ctl.Tick(now.Sub(epoch).Seconds())
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done); wg.Wait() }) }
}

// saveWarm persists the shared cache tier after the drain, so the next
// process (or a benchmark run) starts warm instead of cold.
func saveWarm(shared *schedcache.Shared, path string) {
	if shared == nil || path == "" {
		return
	}
	wf, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmserve: cache-warm-out:", err)
		return
	}
	err = shared.Save(wf)
	if cerr := wf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmserve: cache-warm-out:", err)
		return
	}
	fmt.Printf("cache warm: %d entries saved to %s\n", shared.Len(), path)
}

// buildFleet constructs the fleet — fresh, or recovered from dataDir
// when one is given. The returned state is nil without a data dir.
func buildFleet(devs []fleet.DeviceConfig, opt fleet.Options, dataDir string, meta durable.Meta) (*fleet.Fleet, *durable.State, error) {
	if dataDir == "" {
		f, err := fleet.New(devs, opt)
		return f, nil, err
	}
	st, err := durable.Open(dataDir, meta)
	if err != nil {
		return nil, nil, err
	}
	rec := make(map[int]fleet.DeviceRecovery, len(st.Devices))
	for dev, ds := range st.Devices {
		rec[dev] = fleet.DeviceRecovery{Snapshot: ds.Snapshot, Events: ds.Events}
	}
	f, results, err := fleet.Recover(devs, opt, rec)
	if err != nil {
		return nil, nil, err
	}
	// Replay may have dropped a trailing partial unit (a torn tail cut
	// mid-operation); cut the physical log to the same point so the
	// writer's appends continue gap-free from the recovered sequence.
	for dev, res := range results {
		if err := st.Truncate(dev, res.AppliedSeq); err != nil {
			return nil, nil, err
		}
	}
	return f, st, nil
}

// closeWAL flushes and closes the writer after the fleet's shutdown
// drain; call it after fleet.Close so the final completion events are
// persisted too.
func closeWAL(w *durable.Writer) {
	if w == nil {
		return
	}
	if err := w.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "rmserve: wal close:", err)
	}
}

// routeConfig bundles the router-mode settings.
type routeConfig struct {
	listen, peers, peerToken string
	ringReplicas             int
	ringSeed                 uint64
	token, tenantsPath       string
	quotaRate                float64
	quotaBurst               int
	pprofToken               string
}

// serveRouter runs the multi-node routing front-end: a consistent-hash
// ring over the -peers backends, served over the same HTTP protocol as
// a single node — clients cannot tell a router from a fleet, except
// for the extra adaptrm_router_* metric families on /metrics. The
// router holds no fleet state of its own; it ends on SIGINT/SIGTERM
// without any drain beyond the HTTP shutdown.
func serveRouter(cfg routeConfig) {
	if cfg.listen == "" {
		fatal(errors.New("-route requires -listen"))
	}
	var backends []router.Backend
	for _, p := range strings.Split(cfg.peers, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		base := p
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		backends = append(backends, router.Backend{
			Name: p, Service: httpapi.NewClient(base, cfg.peerToken, nil),
		})
	}
	if len(backends) == 0 {
		fatal(errors.New("-route requires -peers host:port,..."))
	}
	ring, err := placement.NewRing(placement.RingConfig{
		Owners: len(backends), Replicas: cfg.ringReplicas, Seed: cfg.ringSeed,
	})
	if err != nil {
		fatal(err)
	}
	rt, err := router.New(backends, ring)
	if err != nil {
		fatal(err)
	}

	var opt httpapi.ServerOptions
	switch {
	case cfg.tenantsPath != "":
		data, err := os.ReadFile(cfg.tenantsPath)
		if err != nil {
			fatal(err)
		}
		opt.Tenants, err = httpapi.ReadTenantsJSON(data)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("tenants:   %d configured from %s\n", len(opt.Tenants), cfg.tenantsPath)
	case cfg.token != "":
		opt.Tenants = []httpapi.Tenant{{Name: "default", Token: cfg.token, Rate: cfg.quotaRate, Burst: cfg.quotaBurst}}
		fmt.Println("tenants:   single default tenant (bearer token)")
	default:
		fmt.Println("tenants:   open access (no -token/-tenants)")
	}
	opt.PprofToken = cfg.pprofToken

	handler, err := httpapi.NewServer(rt, opt)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfgRing := ring.Config()
	fmt.Printf("router:    %d peers, ring %d replicas/peer seed %d\n",
		len(backends), cfgRing.Replicas, cfgRing.Seed)
	for i, b := range backends {
		fmt.Printf("peer %d:    %s\n", i, b.Name)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	fmt.Printf("listening: %s (routing; POST /v1/submit /v1/submit-batch /v1/advance /v1/cancel, GET /v1/stats /v1/watch /healthz /metrics)\n",
		ln.Addr())

	select {
	case <-ctx.Done():
		stop()
		fmt.Fprintln(os.Stderr, "\nrmserve: router shutting down")
		handler.StopStreams()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "rmserve: shutdown:", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

// daemonConfig bundles the daemon-mode settings.
type daemonConfig struct {
	listen, token, tenantsPath string
	quotaRate                  float64
	quotaBurst                 int
	pprofToken                 string
	flightlogSize              int
	cache, verbose             bool
	devices                    int
	shared                     *schedcache.Shared
	warmOut                    string
	// stopTick stops the degradation controller's ticker goroutine; the
	// daemon runs it before Fleet.Close (nil when -control is off).
	stopTick func()
}

// serveDaemon exposes the fleet over HTTP until SIGINT/SIGTERM, then
// drains it (and flushes the WAL writer, when persistence is on) and
// prints the final report.
func serveDaemon(f *fleet.Fleet, wal *durable.Writer, cfg daemonConfig) {
	var opt httpapi.ServerOptions
	switch {
	case cfg.tenantsPath != "":
		data, err := os.ReadFile(cfg.tenantsPath)
		if err != nil {
			fatal(err)
		}
		opt.Tenants, err = httpapi.ReadTenantsJSON(data)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("tenants:   %d configured from %s\n", len(opt.Tenants), cfg.tenantsPath)
	case cfg.token != "":
		opt.Tenants = []httpapi.Tenant{{Name: "default", Token: cfg.token, Rate: cfg.quotaRate, Burst: cfg.quotaBurst}}
		if cfg.quotaRate > 0 {
			fmt.Printf("tenants:   single default tenant (bearer token, %g ops/s rate quota)\n", cfg.quotaRate)
		} else {
			fmt.Println("tenants:   single default tenant (bearer token)")
		}
	default:
		fmt.Println("tenants:   open access (no -token/-tenants)")
	}
	opt.PprofToken = cfg.pprofToken
	if cfg.flightlogSize > 0 {
		opt.FlightLog = flightlog.New(cfg.flightlogSize)
	}
	if wal != nil {
		opt.WAL = wal
		if opt.FlightLog != nil {
			// The postmortem dump carries the WAL position: after a crash
			// the operator sees how far persistence trailed the fleet.
			opt.FlightLog.SetAux("wal", func() any { return wal.Status() })
		}
	}

	handler, err := httpapi.NewServer(f.Service(), opt)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{
		Handler: handler,
		// A network daemon needs bounds against slow or hostile
		// clients; requests themselves are small (the request body is
		// capped inside the handler).
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	// An explicit listener (rather than ListenAndServe) resolves ":0"
	// to a concrete port before the "listening:" line is printed, so
	// scripts can bind to a free port and scrape the address.
	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if opt.FlightLog != nil {
		// Tail the fleet's own event stream into the postmortem ring and
		// dump the ring to stderr on SIGQUIT, without stopping the
		// daemon. The tail ends when the fleet closes its watch streams.
		go func() {
			if err := flightlog.Tail(context.Background(), opt.FlightLog, f.Service()); err != nil {
				fmt.Fprintln(os.Stderr, "rmserve: flightlog tail:", err)
			}
		}()
		sigquit := make(chan os.Signal, 1)
		signal.Notify(sigquit, syscall.SIGQUIT)
		go func() {
			for range sigquit {
				fmt.Fprintln(os.Stderr, "rmserve: SIGQUIT flightlog dump")
				if err := opt.FlightLog.WriteJSON(os.Stderr, 0); err != nil {
					fmt.Fprintln(os.Stderr, "rmserve: flightlog dump:", err)
				}
				fmt.Fprintln(os.Stderr)
			}
		}()
	}

	errCh := make(chan error, 1)
	start := time.Now()
	go func() { errCh <- srv.Serve(ln) }()
	fmt.Printf("listening: %s (POST /v1/submit /v1/submit-batch /v1/advance /v1/cancel, GET /v1/stats /v1/watch /healthz /metrics)\n",
		ln.Addr())

	select {
	case <-ctx.Done():
		// Restore default signal handling immediately: a second
		// SIGINT/SIGTERM during a stuck drain must still kill us.
		stop()
		fmt.Fprintln(os.Stderr, "\nrmserve: shutting down")
		// End only the watch streams — they never go idle, so Shutdown
		// would otherwise wait its whole deadline for them; in-flight
		// short-lived requests still drain normally.
		handler.StopStreams()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "rmserve: shutdown:", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
	if cfg.stopTick != nil {
		cfg.stopTick()
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "rmserve: device errors:", err)
	}
	closeWAL(wal)
	saveWarm(cfg.shared, cfg.warmOut)
	report(f, time.Since(start), cfg.cache, cfg.verbose, true, cfg.devices)
	if len(opt.Tenants) > 0 {
		b, r := handler.QuotaRefusals()
		fmt.Printf("quotas:          %d refusals (%d budget, %d rate)\n", b+r, b, r)
	}
}

// report prints the aggregate fleet figures. daemon suppresses the
// requests/sec figure: wall clock is uptime there (mostly idle
// listening), not replay time, so a rate over it would be meaningless.
func report(f *fleet.Fleet, wall time.Duration, cache, verbose, daemon bool, devices int) {
	s := f.Stats()
	fmt.Println("fleet report")
	fmt.Println("------------")
	fmt.Printf("requests:        %d submitted, %d accepted, %d rejected (accept rate %.1f%%)\n",
		s.Submitted, s.Accepted, s.Rejected, 100*s.AcceptRate())
	fmt.Printf("completions:     %d jobs, %d deadline misses, %d cancelled\n", s.Completed, s.DeadlineMisses, s.Cancelled)
	fmt.Printf("energy:          %.2f J total, %.3f J/job\n", s.Energy, perJob(s.Energy, s.Completed))
	fmt.Printf("scheduler:       %d activations, %v wall time (%.1f µs/activation)\n",
		s.Activations, s.SchedulingTime.Round(time.Microsecond),
		perJob(float64(s.SchedulingTime.Microseconds()), s.Activations))
	if s.CoalescedBatches > 0 {
		fmt.Printf("batching:        %d submits coalesced into %d batched activations\n",
			s.CoalescedRequests, s.CoalescedBatches)
	}
	if cache {
		fmt.Printf("schedule cache:  %d hits / %d misses (%.1f%% hit rate, %d re-packs, %d stale, %d evictions)\n",
			s.CacheHits, s.CacheMisses, 100*s.CacheHitRate(), s.CacheRepacks, s.CacheStale, s.CacheEvictions)
	}
	if st := f.SharedTier(); st != nil {
		ss := st.Stats()
		fmt.Printf("shared tier:     %d entries (%d exact), %d hits, %d promotions (%d merge-dropped)\n",
			ss.Entries, ss.ExactEntries, s.CacheSharedHits, s.CachePromotions, ss.PromotionsDropped)
	}
	if s.RefineSearches > 0 || s.Swaps > 0 {
		fmt.Printf("refinement:      %d searches, %d improved, %d swaps applied, %d skipped, %d dropped\n",
			s.RefineSearches, s.RefineImproved, s.Swaps, s.RefineSkipped, s.RefineDropped)
	}
	if s.ControlMode != "" {
		fmt.Printf("control:         mode %s, %d ticks, %d mode changes, %d shed\n",
			s.ControlMode, s.ControlTicks, s.ControlModeChanges, s.Shed)
	}
	if daemon {
		fmt.Printf("service:         %v uptime, max queue depth %d\n",
			wall.Round(time.Millisecond), s.MaxQueueDepth)
	} else {
		fmt.Printf("service:         %v wall clock, %.0f requests/sec, max queue depth %d\n",
			wall.Round(time.Millisecond), float64(s.Submitted)/wall.Seconds(), s.MaxQueueDepth)
	}

	if verbose {
		fmt.Println()
		fmt.Println("per-device")
		for d := 0; d < devices; d++ {
			ds, err := f.DeviceStats(d)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  dev %2d: %3d submitted, %3d accepted, %2d missed, %8.2f J\n",
				d, ds.Submitted, ds.Accepted, ds.DeadlineMisses, ds.Energy)
		}
	}
}

func perJob(total float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rmserve:", err)
	os.Exit(1)
}
