// Command rmserve runs the fleet service: it spins up M devices behind K
// shard workers, replays a generated multi-tenant request trace through
// the concurrent front-end, and prints an aggregate fleet report —
// accept rate, energy, deadline misses, scheduler wall time, schedule-
// cache effectiveness and end-to-end throughput. It is the service-layer
// counterpart of cmd/rmsim's single-device simulation.
//
// Usage:
//
//	rmserve [-devices M] [-shards K] [-sched mdf|lr|exmem|greedy|fixed|fixed-remap]
//	        [-rate R] [-spread S] [-horizon T] [-seed N]
//	        [-cache] [-cache-size N] [-cache-slack F] [-mailbox N]
//	        [-resched] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"adaptrm/internal/dse"
	"adaptrm/internal/fleet"
	"adaptrm/internal/platform"
	"adaptrm/internal/rm"
	"adaptrm/internal/schedcache"
	"adaptrm/internal/schedreg"
	"adaptrm/internal/workload"
)

func main() {
	devices := flag.Int("devices", 8, "number of devices in the fleet")
	shards := flag.Int("shards", 4, "number of shard worker goroutines")
	schedName := flag.String("sched", "mdf", "scheduler: "+schedreg.Names())
	rate := flag.Float64("rate", 0.05, "base mean arrivals per second per device")
	spread := flag.Float64("spread", 0.5, "per-device rate heterogeneity in [0,1)")
	horizon := flag.Float64("horizon", 300, "trace duration in seconds")
	seed := flag.Int64("seed", 1, "trace seed")
	cache := flag.Bool("cache", true, "enable the per-device schedule cache")
	cacheSize := flag.Int("cache-size", schedcache.DefaultCapacity, "schedule-cache capacity per device")
	cacheSlack := flag.Float64("cache-slack", schedcache.DefaultSlackBucket, "relative slack bucket of the cache signature")
	mailbox := flag.Int("mailbox", 64, "per-shard mailbox size")
	resched := flag.Bool("resched", false, "re-run the scheduler at every job completion")
	verbose := flag.Bool("v", false, "print per-device statistics")
	flag.Parse()

	plat := platform.OdroidXU4()
	lib, err := dse.StandardLibrary(plat)
	if err != nil {
		fatal(err)
	}
	trace, err := workload.FleetTrace(lib, workload.FleetTraceParams{
		Devices: *devices, Rate: *rate, RateSpread: *spread,
		Horizon: *horizon, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}

	devs := make([]fleet.DeviceConfig, *devices)
	for i := range devs {
		s, err := schedreg.New(*schedName)
		if err != nil {
			fatal(err)
		}
		devs[i] = fleet.DeviceConfig{Platform: plat, Library: lib, Scheduler: s}
	}
	f, err := fleet.New(devs, fleet.Options{
		Shards:      *shards,
		MailboxSize: *mailbox,
		Manager:     rm.Options{RescheduleOnFinish: *resched},
		Cache:       *cache,
		CacheParams: schedcache.Params{Capacity: *cacheSize, SlackBucket: *cacheSlack},
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("platform:  %s\n", plat)
	fmt.Printf("fleet:     %d devices, %d shards, scheduler %s, cache %v\n",
		*devices, *shards, *schedName, *cache)
	fmt.Printf("trace:     %d requests over %.0fs (rate %.3g/s ±%.0f%% per device, seed %d)\n\n",
		len(trace), *horizon, *rate, *spread*100, *seed)

	start := time.Now()
	if err := f.Replay(trace); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "rmserve: device errors:", err)
	}
	wall := time.Since(start)

	s := f.Stats()
	fmt.Println("fleet report")
	fmt.Println("------------")
	fmt.Printf("requests:        %d submitted, %d accepted, %d rejected (accept rate %.1f%%)\n",
		s.Submitted, s.Accepted, s.Rejected, 100*s.AcceptRate())
	fmt.Printf("completions:     %d jobs, %d deadline misses\n", s.Completed, s.DeadlineMisses)
	fmt.Printf("energy:          %.2f J total, %.3f J/job\n", s.Energy, perJob(s.Energy, s.Completed))
	fmt.Printf("scheduler:       %d activations, %v wall time (%.1f µs/activation)\n",
		s.Activations, s.SchedulingTime.Round(time.Microsecond),
		perJob(float64(s.SchedulingTime.Microseconds()), s.Activations))
	if *cache {
		fmt.Printf("schedule cache:  %d hits / %d misses (%.1f%% hit rate, %d re-packs, %d stale, %d evictions)\n",
			s.CacheHits, s.CacheMisses, 100*s.CacheHitRate(), s.CacheRepacks, s.CacheStale, s.CacheEvictions)
	}
	fmt.Printf("service:         %v wall clock, %.0f requests/sec, max queue depth %d\n",
		wall.Round(time.Millisecond), float64(s.Submitted)/wall.Seconds(), s.MaxQueueDepth)

	if *verbose {
		fmt.Println()
		fmt.Println("per-device")
		for d := 0; d < *devices; d++ {
			ds, err := f.DeviceStats(d)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  dev %2d: %3d submitted, %3d accepted, %2d missed, %8.2f J\n",
				d, ds.Submitted, ds.Accepted, ds.DeadlineMisses, ds.Energy)
		}
	}
}

func perJob(total float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rmserve:", err)
	os.Exit(1)
}
