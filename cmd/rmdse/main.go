// Command rmdse runs the design-time half of the hybrid mapping flow:
// virtual benchmarking of the three dataflow applications on the modeled
// Odroid XU4, exhaustive design-space exploration over core allocations,
// and Pareto filtering. It prints the resulting operating-point tables
// and optionally writes them as JSON for the runtime tools.
//
// Usage:
//
//	rmdse [-out tables.json] [-points N] [-reps N] [-seed S] [-raw]
package main

import (
	"flag"
	"fmt"
	"os"

	"adaptrm/internal/dse"
	"adaptrm/internal/kpn"
	"adaptrm/internal/opset"
	"adaptrm/internal/platform"
)

func main() {
	out := flag.String("out", "", "write the library as JSON to this file")
	points := flag.Int("points", 0, "thin each table to at most N points (0 = paper defaults)")
	reps := flag.Int("reps", 0, "average N noisy measurements per allocation (0 = deterministic)")
	seed := flag.Int64("seed", 1, "measurement noise seed")
	raw := flag.Bool("raw", false, "keep full Pareto fronts (ignore the paper's per-app counts)")
	dvfs := flag.Bool("dvfs", false, "explore DVFS levels (implies the odroid-xu4-dvfs preset unless -platform is given)")
	platPath := flag.String("platform", "", "platform description JSON (default: odroid-xu4)")
	flag.Parse()

	plat := platform.OdroidXU4()
	if *dvfs {
		plat = platform.OdroidXU4DVFS()
	}
	if *platPath != "" {
		f, err := os.Open(*platPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rmdse:", err)
			os.Exit(1)
		}
		plat, err = platform.ReadJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "rmdse:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("platform: %s\n\n", plat)

	var lib *opset.Library
	var err error
	switch {
	case *raw || *points > 0 || *reps > 0 || *dvfs || *platPath != "":
		lib, err = dse.ExploreSuite(kpn.BenchmarkSuite(), plat, dse.Options{
			MaxPointsPerTable: *points,
			Reps:              *reps,
			Seed:              *seed,
			DVFS:              *dvfs,
		})
	default:
		lib, err = dse.StandardLibrary(plat)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmdse:", err)
		os.Exit(1)
	}

	totals := map[string]int{}
	for _, tbl := range lib.Tables() {
		totals[tbl.App] += tbl.Len()
		fmt.Print(tbl)
		fmt.Println()
	}
	fmt.Println("Pareto configurations per application (paper: speaker 28, audio 36, pedestrian 35):")
	for _, app := range []string{"speaker-recognition", "audio-filter", "pedestrian-recognition"} {
		fmt.Printf("  %-24s %d\n", app, totals[app])
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rmdse:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := lib.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "rmdse:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *out)
	}
}
