package adaptrm

import (
	"context"
	"io"
	"net/http"

	"adaptrm/internal/api"
	"adaptrm/internal/control"
	"adaptrm/internal/core"
	"adaptrm/internal/dse"
	"adaptrm/internal/exmem"
	"adaptrm/internal/fixedmap"
	"adaptrm/internal/fleet"
	"adaptrm/internal/flightlog"
	"adaptrm/internal/greedy"
	"adaptrm/internal/httpapi"
	"adaptrm/internal/job"
	"adaptrm/internal/kpn"
	"adaptrm/internal/lagrange"
	"adaptrm/internal/opset"
	"adaptrm/internal/placement"
	"adaptrm/internal/platform"
	"adaptrm/internal/predict"
	"adaptrm/internal/rm"
	"adaptrm/internal/router"
	"adaptrm/internal/sched"
	"adaptrm/internal/schedcache"
	"adaptrm/internal/schedule"
	"adaptrm/internal/workload"
)

// Core model types, re-exported for downstream users.
type (
	// Platform describes a heterogeneous multi-core device.
	Platform = platform.Platform
	// CoreType is one homogeneous resource type of a platform.
	CoreType = platform.CoreType
	// Alloc is a per-type core-count vector θ.
	Alloc = platform.Alloc
	// OperatingPoint is one Pareto point ⟨θ, τ, ξ⟩ of an application.
	OperatingPoint = opset.Point
	// Table is an application variant's operating-point table.
	Table = opset.Table
	// Library is a named collection of tables.
	Library = opset.Library
	// Job is one admitted, unfinished request σ = ⟨α, δ, λ, ρ⟩.
	Job = job.Job
	// JobSet is a scheduling problem.
	JobSet = job.Set
	// Schedule is a list of mapping segments κ = {μ_i × Δ_i}.
	Schedule = schedule.Schedule
	// Segment is one mapping over a time interval.
	Segment = schedule.Segment
	// Placement maps a job to an operating point within a segment.
	Placement = schedule.Placement
	// Scheduler turns a job set into a schedule.
	Scheduler = sched.Scheduler
	// Manager is the online runtime manager.
	Manager = rm.Manager
	// ManagerOptions tunes the runtime manager.
	ManagerOptions = rm.Options
	// ManagerStats aggregates runtime-manager activity.
	ManagerStats = rm.Stats
	// Completion describes one finished job.
	Completion = rm.Completion
	// ManagerRequest is one admission request of a manager-level batch
	// (application plus deadline; the arrival time is the batch's).
	ManagerRequest = rm.Request
	// ManagerVerdict is the per-request outcome of Manager.SubmitBatch.
	ManagerVerdict = rm.Verdict
	// WorkloadCase is one static scheduling problem of the test suite.
	WorkloadCase = workload.Case
	// WorkloadParams tunes suite generation.
	WorkloadParams = workload.Params
	// WorkloadLevel is the deadline tightness of a test case.
	WorkloadLevel = workload.Level
	// TraceRequest is one arrival of a dynamic workload trace.
	TraceRequest = workload.Request
	// TraceParams tunes dynamic trace generation.
	TraceParams = workload.TraceParams
	// Fleet is the concurrent multi-device runtime-management service.
	Fleet = fleet.Fleet
	// FleetDevice describes one device of a fleet.
	FleetDevice = fleet.DeviceConfig
	// FleetOptions tunes the fleet front-end (shards, mailboxes, cache).
	FleetOptions = fleet.Options
	// FleetStats aggregates fleet-wide activity.
	FleetStats = fleet.Stats
	// FleetRequest is one arrival of a multi-tenant fleet trace.
	FleetRequest = workload.FleetRequest
	// FleetTraceParams tunes multi-tenant fleet trace generation.
	FleetTraceParams = workload.FleetTraceParams
	// ScheduleCache memoizes solved schedules by workload shape.
	ScheduleCache = schedcache.Cache
	// ScheduleCacheParams tunes signature buckets and cache capacity.
	ScheduleCacheParams = schedcache.Params
	// ScheduleCacheStats counts schedule-cache activity.
	ScheduleCacheStats = schedcache.Stats
	// SharedScheduleCache is the fleet-wide read-mostly second cache
	// tier behind every per-device ScheduleCache
	// (FleetOptions.SharedCache): one device's solve — heuristic or
	// exact — warms every device with the same platform, and warm
	// files built offline (scripts/warm-cache.sh, rmserve -cache-warm)
	// load into it.
	SharedScheduleCache = schedcache.Shared
	// SharedScheduleCacheStats counts shared-tier activity (entries,
	// exact entries, hits, promotions).
	SharedScheduleCacheStats = schedcache.SharedStats
	// Controller is the closed-loop degradation controller
	// (FleetOptions.Control): externally ticked, it observes queue
	// pressure and admission latency and tunes the coalescing window,
	// the degradation tier and the refinement throttle.
	Controller = control.Controller
	// ControllerConfig tunes the controller's thresholds and hysteresis.
	ControllerConfig = control.Config
	// ControllerStatus is an observability snapshot of the controller.
	ControllerStatus = control.Status
	// ControlMode is the degradation tier of the serving stack.
	ControlMode = control.Mode
)

// The degradation tiers a Controller walks through, least to most
// degraded: full service, heuristic-only admission (refinement off),
// and early load shedding with ErrOverloaded.
const (
	ControlModeNormal        = control.ModeNormal
	ControlModeHeuristicOnly = control.ModeHeuristicOnly
	ControlModeShedding      = control.ModeShedding
)

// NewController builds a closed-loop degradation controller to hand a
// fleet via FleetOptions.Control. The caller owns ticking: drive
// Controller.Tick from a ticker (stop it before Fleet.Close), and read
// Controller.Status for observability.
func NewController(cfg ControllerConfig) *Controller { return control.New(cfg) }

// Service-protocol types, re-exported for downstream users. The
// protocol (internal/api) is transport-agnostic: the in-process fleet
// view ((*Fleet).Service()) and the HTTP client (NewHTTPClient) both
// implement Service and are behaviourally interchangeable — same typed
// results, same error taxonomy, same deterministic statistics for the
// same per-device request order.
type (
	// Service is the transport-agnostic runtime-management interface:
	// Submit/Advance/Cancel/Stats, each taking a context and returning
	// typed results and taxonomy errors.
	Service = api.Service
	// SubmitRequest asks a device to admit one application request.
	SubmitRequest = api.SubmitRequest
	// SubmitResult carries the admission decision: job id, verdict and
	// the completions observed while the device clock advanced.
	SubmitResult = api.SubmitResult
	// BatchService is the optional batched extension of Service; both
	// bundled transports implement it. Call it uniformly through the
	// SubmitBatch function, which falls back to sequential submission
	// on a plain Service.
	BatchService = api.BatchService
	// BatchSubmitRequest asks a device to decide several same-time
	// requests in one scheduler activation.
	BatchSubmitRequest = api.BatchSubmitRequest
	// BatchItem is one request of a batch (application plus deadline).
	BatchItem = api.BatchItem
	// BatchSubmitResult carries one verdict per item plus the
	// completions observed while the device clock advanced.
	BatchSubmitResult = api.BatchSubmitResult
	// BatchVerdict is the admission decision for one batch item; clean
	// rejections and per-item failures arrive as taxonomy errors.
	BatchVerdict = api.BatchVerdict
	// AdvanceRequest moves a device's virtual clock forward.
	AdvanceRequest = api.AdvanceRequest
	// AdvanceResult lists the completions an advance produced.
	AdvanceResult = api.AdvanceResult
	// CancelRequest aborts an active job, freeing its resources.
	CancelRequest = api.CancelRequest
	// CancelResult acknowledges a cancellation.
	CancelResult = api.CancelResult
	// StatsRequest fetches fleet-wide or per-device statistics.
	StatsRequest = api.StatsRequest
	// StatsResult aggregates service activity; Deterministic() strips
	// the wall-clock fields for cross-transport comparison.
	StatsResult = api.StatsResult
	// ServiceCompletion reports one finished job on the wire (the
	// protocol form of Completion).
	ServiceCompletion = api.Completion
	// Event is one device lifecycle event on the wire: per-device
	// monotone sequence number, type, virtual time and the subject
	// job's coordinates.
	Event = api.Event
	// EventType discriminates watch events (EventJobAdmitted, ...,
	// EventLagged).
	EventType = api.EventType
	// WatchRequest subscribes to the event stream: optional device
	// filter, resume-from-sequence, buffer override.
	WatchRequest = api.WatchRequest
	// WatchService is the streaming extension of Service; the
	// in-process fleet service and the HTTP client both implement it
	// with identical semantics (ordering, resume, overflow markers).
	WatchService = api.WatchService
	// ManagerEvent is the runtime manager's in-process event form (the
	// fleet converts it to Event, stamping the device).
	ManagerEvent = rm.Event
	// ServiceError is the serialisable taxonomy error: a stable code
	// plus a message; errors.Is matches by code across transports.
	ServiceError = api.Error
	// FleetService is the fleet's in-process Service implementation,
	// obtained from (*Fleet).Service().
	FleetService = fleet.Service
	// HTTPServer serves a Service over JSON/HTTP with per-tenant
	// authentication, device authorisation and request quotas.
	HTTPServer = httpapi.Server
	// HTTPServerOptions configures the HTTP front-end (tenant list).
	HTTPServerOptions = httpapi.ServerOptions
	// HTTPClient is the Go client of the daemon protocol; it is itself
	// a Service.
	HTTPClient = httpapi.Client
	// Tenant is one authenticated client of the daemon: token, allowed
	// devices and request budget.
	Tenant = httpapi.Tenant
	// FlightLog is the bounded in-memory postmortem ring the HTTP
	// server can record requests into (HTTPServerOptions.FlightLog);
	// see internal/flightlog.
	FlightLog = flightlog.Log
	// DevicePlacement maps a device index to its owner slot — a fleet
	// shard or a routed backend node (FleetOptions.Placement, NewRouter).
	DevicePlacement = placement.Placement
	// ModuloPlacement is the single-node default placement: device
	// modulo owner count, byte-identical to the fleet's historical
	// shard assignment.
	ModuloPlacement = placement.Modulo
	// PlacementRing is the seeded consistent-hash ring: a pure function
	// of its config, stable across restarts, minimal remap on growth.
	PlacementRing = placement.Ring
	// PlacementRingConfig fixes a ring: owner count, virtual-node
	// replicas per owner, hash seed.
	PlacementRingConfig = placement.RingConfig
	// Router is the multi-node front-end: one Service (Watch and Batch
	// included) routing every device-addressed call across backend
	// nodes by placement. rmserve -route is the ready-made daemon.
	Router = router.Router
	// RouterBackend is one routed node: its Service (typically an
	// HTTPClient) plus the name used in errors and metric labels.
	RouterBackend = router.Backend
)

// NewFlightLog builds a postmortem ring retaining the newest capacity
// records (capacity <= 0 uses the package default).
func NewFlightLog(capacity int) *FlightLog { return flightlog.New(capacity) }

// Service error taxonomy, re-exported. All survive serialisation:
// errors.Is holds against a live daemon exactly as in process.
var (
	// ErrRejected is the admission verdict "reject" (taxonomy code
	// "infeasible") — the service-level counterpart of ErrInfeasible,
	// which remains the scheduler-level sentinel.
	ErrRejected = api.ErrInfeasible
	// ErrUnknownDevice: the request addressed a device outside the fleet.
	ErrUnknownDevice = api.ErrUnknownDevice
	// ErrUnknownApp: the application is not in the device's library.
	ErrUnknownApp = api.ErrUnknownApp
	// ErrUnknownJob: the job id names no active job on the device.
	ErrUnknownJob = api.ErrUnknownJob
	// ErrBadRequest: malformed request (bad payload, deadline ≤ arrival,
	// time moving backwards).
	ErrBadRequest = api.ErrBadRequest
	// ErrPayloadTooLarge: the request body exceeds the transport limit.
	ErrPayloadTooLarge = api.ErrPayloadTooLarge
	// ErrOverloaded: backpressure — the device mailbox stayed full for
	// the whole context lifetime.
	ErrOverloaded = api.ErrOverloaded
	// ErrQuotaExceeded: the tenant spent its request budget.
	ErrQuotaExceeded = api.ErrQuotaExceeded
	// ErrUnauthorized: missing or unknown tenant token.
	ErrUnauthorized = api.ErrUnauthorized
	// ErrForbidden: the tenant may not address the device.
	ErrForbidden = api.ErrForbidden
	// ErrServiceClosed: the service is shutting down.
	ErrServiceClosed = api.ErrClosed
	// ErrUnavailable: a routed backend node could not be reached (the
	// router names the peer in the message; HTTP 502 on the wire).
	ErrUnavailable = api.ErrUnavailable
)

// ErrInfeasible is returned by schedulers when no feasible schedule
// exists; the runtime manager then rejects the request.
var ErrInfeasible = sched.ErrInfeasible

// Watch event taxonomy, re-exported. Every transport carries exactly
// these kinds; EventLagged is the transport-level overflow marker a
// slow consumer receives instead of blocking the service.
const (
	EventJobAdmitted     = api.EventJobAdmitted
	EventJobRejected     = api.EventJobRejected
	EventJobStarted      = api.EventJobStarted
	EventJobCompleted    = api.EventJobCompleted
	EventJobCancelled    = api.EventJobCancelled
	EventScheduleChanged = api.EventScheduleChanged
	EventScheduleSwapped = api.EventScheduleSwapped
	EventClockAdvanced   = api.EventClockAdvanced
	EventLagged          = api.EventLagged
)

// Deadline tightness levels of the evaluation workload (Table III).
const (
	// Weak deadlines scale a random point's remaining time by 2–6.
	Weak = workload.Weak
	// Tight deadlines scale by 0.6–2.
	Tight = workload.Tight
)

// OdroidXU4 returns the paper's evaluation platform: 4 Cortex-A7 little
// cores at 1.5 GHz and 4 Cortex-A15 big cores at 1.8 GHz.
func OdroidXU4() Platform { return platform.OdroidXU4() }

// Motivational2L2B returns the 2-little/2-big example device of the
// paper's Section III.
func Motivational2L2B() Platform { return platform.Motivational2L2B() }

// NewMMKPMDF returns the paper's MMKP-MDF scheduler (Algorithm 1).
func NewMMKPMDF() Scheduler { return core.New() }

// NewMMKPLR returns the MMKP-LR baseline (Lagrangian relaxation,
// single-segment scope).
func NewMMKPLR() Scheduler { return lagrange.New() }

// NewEXMEM returns the EX-MEM exact reference scheduler (memoized
// exhaustive search within the cut-at-completion class).
func NewEXMEM() Scheduler { return exmem.New() }

// NewFixedMapper returns a fixed-mapping baseline: remapOnFinish=false
// reproduces Fig. 1(a) (map once at arrival), true reproduces Fig. 1(b)
// (remap at every completion).
func NewFixedMapper(remapOnFinish bool) Scheduler {
	if remapOnFinish {
		return fixedmap.New(fixedmap.Remap)
	}
	return fixedmap.New(fixedmap.OnArrival)
}

// NewMMKPGreedy returns the MMKP-GR baseline: a per-segment greedy in the
// spirit of the Ykman-Couvreur aggregate-resource heuristic the paper's
// related work builds on.
func NewMMKPGreedy() Scheduler { return greedy.New() }

// Predictor forecasts request arrivals for proactive admission.
type Predictor = predict.Predictor

// NewInterArrivalPredictor returns an online per-application
// inter-arrival predictor (EMA-smoothed).
func NewInterArrivalPredictor() *predict.InterArrival { return predict.NewInterArrival() }

// NewProactive wraps a scheduler with prediction-gated admission: a
// request is admitted only if the schedule leaves room for arrivals the
// predictor forecasts within the horizon (the Niknafs-style extension of
// the paper's related work). When protect is non-empty, only forecasts
// of the listed applications gate admission.
func NewProactive(inner Scheduler, pred Predictor, lib *Library, horizonSec float64, protect ...string) Scheduler {
	return &predict.Scheduler{Inner: inner, Pred: pred, Lib: lib, Horizon: horizonSec, Protect: protect}
}

// OdroidXU4DVFS returns the evaluation platform with additional DVFS
// levels per cluster; use it with ExploreDVFS to fold frequency
// selection into the operating points.
func OdroidXU4DVFS() Platform { return platform.OdroidXU4DVFS() }

// ExploreDVFS runs the design-time DSE over allocations and frequency
// levels, producing richer Pareto fronts (thinned to maxPoints per
// table; 0 keeps everything).
func ExploreDVFS(plat Platform, maxPoints int) (*Library, error) {
	return dse.ExploreSuite(kpn.BenchmarkSuite(), plat, dse.Options{DVFS: true, MaxPointsPerTable: maxPoints})
}

// StandardLibrary runs the design-time flow (virtual benchmarking + DSE +
// Pareto filtering) for the paper's three applications and returns the
// operating-point library with the paper's Pareto counts (28/36/35).
func StandardLibrary(plat Platform) (*Library, error) {
	return dse.StandardLibrary(plat)
}

// NewManager creates an online runtime manager on the platform, serving
// requests against the library with the given scheduler.
func NewManager(plat Platform, lib *Library, s Scheduler, opt ManagerOptions) (*Manager, error) {
	return rm.New(plat, lib, s, opt)
}

// ScheduleJobs runs a scheduler on a static job set at instant t,
// validating the result. This is the one-shot entry point mirroring the
// paper's evaluation setting.
func ScheduleJobs(s Scheduler, jobs JobSet, plat Platform, t float64) (*Schedule, error) {
	k, err := s.Schedule(jobs, plat, t)
	if err != nil {
		return nil, err
	}
	if err := k.Validate(plat, jobs, t); err != nil {
		return nil, err
	}
	return k, nil
}

// RenderGantt draws a schedule as an ASCII chart in the style of the
// paper's Fig. 1 (big cores on top, one symbol per job).
func RenderGantt(w io.Writer, k *Schedule, jobs JobSet, plat Platform, width int) error {
	s, err := schedule.RenderGantt(k, jobs, plat, width)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, s)
	return err
}

// GenerateSuite builds the paper's 1676-case evaluation suite (Table III)
// from a library; see WorkloadParams for the generation rules.
func GenerateSuite(lib *Library, p WorkloadParams) ([]WorkloadCase, error) {
	return workload.Suite(lib, p)
}

// GenerateTrace samples a dynamic Poisson request trace over the library
// for online runtime-manager experiments.
func GenerateTrace(lib *Library, p TraceParams) ([]TraceRequest, error) {
	return workload.Trace(lib, p)
}

// NewFleet builds a concurrent multi-device runtime-management service
// and starts its shard workers; see FleetOptions for sharding, mailbox
// and schedule-cache tuning. Close the fleet to drain all devices and
// collect errors.
func NewFleet(devices []FleetDevice, opt FleetOptions) (*Fleet, error) {
	return fleet.New(devices, opt)
}

// GenerateFleetTrace samples one Poisson request stream per device from
// a single seed and merges them into a time-ordered multi-tenant trace.
func GenerateFleetTrace(lib *Library, p FleetTraceParams) ([]FleetRequest, error) {
	return workload.FleetTrace(lib, p)
}

// NewHTTPServer wraps a Service (typically (*Fleet).Service()) in the
// JSON/HTTP front-end: POST /v1/submit, /v1/advance, /v1/cancel, GET
// /v1/stats and /healthz, with optional per-tenant bearer-token
// authentication, device authorisation and request quotas. It fails on
// tenant lists with empty or duplicate tokens. The result is an
// http.Handler; serve it with net/http. cmd/rmserve -listen is the
// ready-made daemon.
func NewHTTPServer(svc Service, opt HTTPServerOptions) (*HTTPServer, error) {
	return httpapi.NewServer(svc, opt)
}

// NewHTTPClient builds the Go client of a daemon at baseURL (e.g.
// "http://localhost:8080"). The client implements Service, so code
// written against the in-process fleet runs unchanged against a remote
// daemon. token may be empty against an open server; hc may be nil for
// http.DefaultClient.
func NewHTTPClient(baseURL, token string, hc *http.Client) *HTTPClient {
	return httpapi.NewClient(baseURL, token, hc)
}

// SubmitBatch submits several same-time requests for one device through
// any Service: a native BatchService (the in-process fleet, the HTTP
// client) decides them in one call — and, when the batch is jointly
// feasible, one scheduler activation — while a plain Service falls back
// to sequential submission. Batched admission is behaviour-preserving:
// verdicts, job ids and the final schedule match one-by-one submission
// at the batch time; only the activation count (and latency under
// bursty traffic) differs. Fleets additionally coalesce queued
// same-device submits automatically when FleetOptions.BatchWindow is
// set.
func SubmitBatch(ctx context.Context, svc Service, req BatchSubmitRequest) (BatchSubmitResult, error) {
	return api.SubmitBatch(ctx, svc, req)
}

// Watch subscribes to a service's device event stream: admissions,
// rejections, starts, completions, cancellations and schedule changes,
// each with a per-device monotone sequence number. Both bundled
// transports support it — the in-process fleet fans events out through
// per-subscriber buffers, the HTTP client consumes the daemon's
// /v1/watch Server-Sent-Events endpoint — with identical semantics:
// per-device ordering, resume via WatchRequest.FromSeq, and an
// EventLagged marker (never blocking) when a consumer falls behind. A
// Service without watch support returns ErrBadRequest.
func Watch(ctx context.Context, svc Service, req WatchRequest) (<-chan Event, error) {
	ws, ok := svc.(WatchService)
	if !ok {
		return nil, api.Errf(api.ErrBadRequest, "service does not support watching")
	}
	return ws.Watch(ctx, req)
}

// NewPlacementRing builds the seeded consistent-hash placement. The
// ring is deterministic for a given config — every router instance,
// restart and operator runbook derives the same device→owner mapping
// with no coordination — and growing the owner set remaps only about
// 1/owners of the devices.
func NewPlacementRing(cfg PlacementRingConfig) (*PlacementRing, error) {
	return placement.NewRing(cfg)
}

// NewRouter composes backend Services — typically HTTPClients for
// independent rmserve nodes, each hosting the full device space — into
// one Service that routes every device-addressed call to the
// placement's owner, preserving per-device request order. Fleet-wide
// stats fan out and merge deterministically; fleet-wide watches merge
// one stream per backend; single-device watches (FromSeq resumes
// included) delegate to the owner. Backend taxonomy errors pass
// through untouched; unreachable peers surface as ErrUnavailable. A
// nil placement defaults to a ring over the backends. cmd/rmserve
// -route -peers is the ready-made routing daemon.
func NewRouter(backends []RouterBackend, place DevicePlacement) (*Router, error) {
	return router.New(backends, place)
}

// NewScheduleCache creates a goroutine-safe memoizing schedule cache.
func NewScheduleCache(p ScheduleCacheParams) *ScheduleCache {
	return schedcache.New(p)
}

// NewSharedScheduleCache creates the fleet-wide shared cache tier. Set
// it as FleetOptions.SharedCache (which requires FleetOptions.Cache) to
// let devices with identical platforms share solved schedules; combine
// with FleetOptions.Refine to promote exact (EX-MEM) refinements into
// the tier, and Save/Load to persist it as a canonical warm file.
func NewSharedScheduleCache() *SharedScheduleCache {
	return schedcache.NewShared()
}

// NewCachingScheduler wraps a scheduler with a memoizing schedule cache:
// repeated workload shapes (same application mix at similar progress and
// deadline slack on the same platform) skip the solve. Cached results
// are re-validated against the concrete job set before reuse, so the
// wrapper never admits a schedule the constraints forbid. A nil cache
// allocates a private one with default parameters.
func NewCachingScheduler(inner Scheduler, cache *ScheduleCache) Scheduler {
	return schedcache.Wrap(inner, cache)
}
