package adaptrm

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"adaptrm/internal/motiv"
)

func TestFacadeEndToEnd(t *testing.T) {
	plat := OdroidXU4()
	lib, err := StandardLibrary(plat)
	if err != nil {
		t.Fatal(err)
	}
	if lib.Len() != 9 {
		t.Fatalf("library has %d tables", lib.Len())
	}
	mgr, err := NewManager(plat, lib, NewMMKPMDF(), ManagerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	id, accepted, _, err := mgr.Submit(0, "audio-filter/medium", 30)
	if err != nil || !accepted || id == 0 {
		t.Fatalf("submit: id=%d accepted=%v err=%v", id, accepted, err)
	}
	if _, err := mgr.Drain(); err != nil {
		t.Fatal(err)
	}
	st := mgr.Stats()
	if st.Completed != 1 || st.DeadlineMisses != 0 || st.Energy <= 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFacadeSchedulers(t *testing.T) {
	names := map[string]Scheduler{
		"MMKP-MDF":    NewMMKPMDF(),
		"MMKP-LR":     NewMMKPLR(),
		"EX-MEM":      NewEXMEM(),
		"FIXED":       NewFixedMapper(false),
		"FIXED-REMAP": NewFixedMapper(true),
	}
	plat := Motivational2L2B()
	jobs := JobSet(motiv.ScenarioS1AtT1())
	for want, s := range names {
		if s.Name() != want {
			t.Errorf("scheduler name %q, want %q", s.Name(), want)
		}
		k, err := ScheduleJobs(s, jobs, plat, 1)
		if err != nil {
			t.Errorf("%s on S1: %v", want, err)
			continue
		}
		if k.IsEmpty() {
			t.Errorf("%s produced empty schedule", want)
		}
	}
	// The three Fig. 1 energies, through the public API.
	fig := map[string]float64{"FIXED": 16.96, "FIXED-REMAP": 15.49, "MMKP-MDF": 14.63}
	for name, want := range fig {
		k, err := ScheduleJobs(names[name], jobs, plat, 1)
		if err != nil {
			t.Fatal(err)
		}
		got := k.Energy(jobs) + motiv.EnergyBeforeT1
		if math.Abs(got-want) > 0.01 {
			t.Errorf("%s energy = %.3f, want %.2f", name, got, want)
		}
	}
}

func TestFacadeS2Rejection(t *testing.T) {
	plat := Motivational2L2B()
	jobs := JobSet(motiv.ScenarioS2AtT1())
	if _, err := ScheduleJobs(NewFixedMapper(false), jobs, plat, 1); !errors.Is(err, ErrInfeasible) {
		t.Errorf("fixed mapper on S2: %v, want ErrInfeasible", err)
	}
	if _, err := ScheduleJobs(NewMMKPMDF(), jobs, plat, 1); err != nil {
		t.Errorf("MMKP-MDF on S2: %v", err)
	}
}

func TestFacadeGantt(t *testing.T) {
	plat := Motivational2L2B()
	jobs := JobSet(motiv.ScenarioS1AtT1())
	k, err := ScheduleJobs(NewMMKPMDF(), jobs, plat, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderGantt(&buf, k, jobs, plat, 60); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "B2") || !strings.Contains(buf.String(), "L1") {
		t.Errorf("gantt:\n%s", buf.String())
	}
}

func TestFacadeWorkload(t *testing.T) {
	lib, err := StandardLibrary(OdroidXU4())
	if err != nil {
		t.Fatal(err)
	}
	cases, err := GenerateSuite(lib, WorkloadParams{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 1676 {
		t.Errorf("suite has %d cases, want 1676", len(cases))
	}
	trace, err := GenerateTrace(lib, TraceParams{Rate: 0.2, Horizon: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range trace {
		if lib.Get(r.App) == nil {
			t.Errorf("trace references unknown app %q", r.App)
		}
	}
}
