#!/usr/bin/env bash
# Kill -9 crash-recovery check over the real wire path, in two phases.
#
# Phase 1 (mid-traffic crash): run rmserve with a durable data dir,
# soak it, SIGKILL it mid-soak — no flush, no shutdown hook — restart
# on the same dir and require a recovery report and recovered
# submissions. This proves torn, unflushed state recovers at all.
#
# Phase 2 (exact equivalence): on a fresh dir, run a strict rmsoak to
# completion, quiesce until the WAL holds every emitted event, capture
# /v1/stats and the flightlog's WAL positions, SIGKILL, restart, and
# require the recovered stats to be byte-identical and the recovered
# WAL positions to match the flightlog's last pre-kill snapshot. (The
# two phases use separate dirs because each rmsoak run restarts its
# virtual clocks at zero: a second run against recovered devices would
# race their already-advanced clocks.)
#
# The deterministic stats subset is the lifecycle ledger + energy
# (devices, submitted, accepted, rejected, completed, deadline_misses,
# cancelled, energy). Cache counters, activations and scheduling time
# are excluded: replay re-executes decisions but not the incidental
# solver work, so those are documented to diverge.
#
# Environment knobs:
#   CRASH_DURATION  per-phase soak length (default 2s)
#   CRASH_RPS       offered aggregate rate (default 150)
#   CRASH_DEVICES   fleet size (default 4)
set -euo pipefail
cd "$(dirname "$0")/.."

DURATION=${CRASH_DURATION:-2s}
RPS=${CRASH_RPS:-150}
DEVICES=${CRASH_DEVICES:-4}
SUBSET='{devices, submitted, accepted, rejected, completed, deadline_misses, cancelled, energy}'

workdir=$(mktemp -d)
cleanup() {
	if [[ -n ${server_pid:-} ]] && kill -0 "$server_pid" 2>/dev/null; then
		kill -9 "$server_pid" 2>/dev/null || true
		wait "$server_pid" 2>/dev/null || true
	fi
	rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/rmserve" ./cmd/rmserve
go build -o "$workdir/rmsoak" ./cmd/rmsoak

# start_daemon <data dir> <log file>: launches rmserve on a free port
# and sets $server_pid and $addr.
start_daemon() {
	local datadir=$1 log=$2
	"$workdir/rmserve" -listen 127.0.0.1:0 -devices "$DEVICES" \
		-data-dir "$datadir" -fsync always >"$log" 2>&1 &
	server_pid=$!
	addr=""
	for _ in $(seq 1 100); do
		addr=$(sed -n 's/^listening: \([^ ]*\).*/\1/p' "$log")
		[[ -n $addr ]] && break
		if ! kill -0 "$server_pid" 2>/dev/null; then
			echo "rmserve died before listening:" >&2
			cat "$log" >&2
			exit 1
		fi
		sleep 0.1
	done
	if [[ -z $addr ]]; then
		echo "rmserve never printed its address" >&2
		cat "$log" >&2
		exit 1
	fi
}

# hard_kill: SIGKILL the daemon — no flush, no shutdown hook.
hard_kill() {
	kill -9 "$server_pid"
	wait "$server_pid" 2>/dev/null || true
	server_pid=""
}

# quiesce: poll /metrics until every device's WAL position matches its
# emitted event sequence (the writer is asynchronous; fsync=always then
# guarantees everything matched is on disk).
quiesce() {
	for _ in $(seq 1 100); do
		if curl -fsS "http://$addr/metrics" | awk '
			/^adaptrm_device_event_seq\{/ { split($1, a, "\""); dev[a[2]] = $2 }
			/^adaptrm_wal_last_seq\{/     { split($1, a, "\""); wal[a[2]] = $2 }
			END {
				for (d in dev) if (wal[d] != dev[d]) exit 1
				exit 0
			}
		'; then
			return 0
		fi
		sleep 0.1
	done
	echo "WAL never caught up with the event stream" >&2
	curl -fsS "http://$addr/metrics" | grep -E 'adaptrm_(wal_last|device_event)_seq' >&2 || true
	exit 1
}

stats() {
	curl -fsS "http://$addr/v1/stats" | jq -cS "$SUBSET"
}

# wal_positions: per-device WAL sequence as daemon-agnostic JSON —
# from the flightlog dump's WAL aux before a kill, from /metrics after
# a restart.
flightlog_wal_positions() {
	curl -fsS "http://$addr/debug/flightlog" |
		jq -c '[.aux.wal.devices[] | {device, seq: .last_seq}]'
}
metrics_wal_positions() {
	curl -fsS "http://$addr/metrics" | awk '
		/^adaptrm_wal_last_seq\{/ { split($1, a, "\""); print a[2], $2 }
	' | sort -n | jq -Rcs '[split("\n")[] | select(length > 0) | split(" ") |
		{device: (.[0] | tonumber), seq: (.[1] | tonumber)}]'
}

# --- Phase 1: kill -9 mid-soak, restart, require a recovery report ----
start_daemon "$workdir/data1" "$workdir/rmserve-a.log"
echo "crash-recovery: daemon A at $addr (data dir $workdir/data1)"
"$workdir/rmsoak" -addr "http://$addr" -rps "$RPS" -duration "$DURATION" \
	-devices "$DEVICES" >"$workdir/rmsoak-a.log" 2>&1 &
soak_pid=$!
sleep 1
hard_kill
echo "crash-recovery: daemon A killed -9 mid-soak"
wait "$soak_pid" 2>/dev/null || true # transport errors expected

start_daemon "$workdir/data1" "$workdir/rmserve-b.log"
recovery=$(sed -n 's/^wal: *//p' "$workdir/rmserve-b.log")
if [[ -z $recovery ]]; then
	echo "daemon B printed no recovery report:" >&2
	cat "$workdir/rmserve-b.log" >&2
	exit 1
fi
echo "crash-recovery: daemon B recovered: $recovery"
submitted=$(curl -fsS "http://$addr/v1/stats" | jq .submitted)
if [[ $submitted -le 0 ]]; then
	echo "daemon B recovered no submissions (submitted=$submitted)" >&2
	exit 1
fi
hard_kill

# --- Phase 2: strict soak, quiesced kill -9, exact equivalence --------
start_daemon "$workdir/data2" "$workdir/rmserve-c.log"
echo "crash-recovery: daemon C at $addr (data dir $workdir/data2)"
"$workdir/rmsoak" -addr "http://$addr" -rps "$RPS" -duration "$DURATION" \
	-devices "$DEVICES" -strict >"$workdir/rmsoak-c.log" 2>&1 ||
	{
		echo "strict rmsoak failed:" >&2
		cat "$workdir/rmsoak-c.log" >&2
		exit 1
	}
quiesce
before_stats=$(stats)
before_wal=$(flightlog_wal_positions)
hard_kill
echo "crash-recovery: daemon C killed -9 after quiesce"

start_daemon "$workdir/data2" "$workdir/rmserve-d.log"
after_stats=$(stats)
after_wal=$(metrics_wal_positions)
if [[ $before_stats != "$after_stats" ]]; then
	echo "recovered stats diverge from pre-kill stats:" >&2
	echo " before: $before_stats" >&2
	echo " after:  $after_stats" >&2
	exit 1
fi
if [[ $before_wal != "$after_wal" ]]; then
	echo "recovered WAL positions diverge from pre-kill flightlog:" >&2
	echo " before: $before_wal" >&2
	echo " after:  $after_wal" >&2
	exit 1
fi
echo "crash-recovery: stats identical across kill -9: $after_stats"
echo "crash-recovery: WAL positions identical across kill -9: $after_wal"

kill -INT "$server_pid"
wait "$server_pid" || true
server_pid=""
echo "crash-recovery: ok"
