#!/usr/bin/env bash
# Run the benchmark suite and record the results as benchmarks/latest.txt.
#
# Environment knobs:
#   BENCH_PATTERN  regex of benchmarks to run   (default: .)
#   BENCH_TIME     go test -benchtime argument  (default: 1x)
#   BENCH_COUNT    go test -count argument      (default: 1)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_PATTERN=${BENCH_PATTERN:-.}
BENCH_TIME=${BENCH_TIME:-1x}
BENCH_COUNT=${BENCH_COUNT:-1}

mkdir -p benchmarks
go test -run '^$' -bench "$BENCH_PATTERN" -benchtime "$BENCH_TIME" \
	-count "$BENCH_COUNT" -timeout 60m . | tee benchmarks/latest.txt
echo "wrote benchmarks/latest.txt"
