#!/usr/bin/env bash
# Run the benchmark suite and record the results as benchmarks/latest.txt
# (raw `go test -bench` output, including -benchmem columns) plus
# benchmarks/latest.tsv (machine-readable: one row per benchmark with
# name, iterations, ns/op, B/op, allocs/op; the GOMAXPROCS suffix is
# stripped from names so rows compare across hosts).
#
# Environment knobs:
#   BENCH_PATTERN  regex of benchmarks to run   (default: .)
#   BENCH_TIME     go test -benchtime argument  (default: 1x)
#   BENCH_COUNT    go test -count argument      (default: 1)
#
# Focused comparisons (see benchmarks/README.md for methodology):
#   batched admission:  BENCH_PATTERN='FleetBursty' BENCH_TIME=20x scripts/bench.sh
#     — same bursty trace with and without a batch window; compare
#     req/s and activations/req (admission stats are identical).
#   warm batch packing: BENCH_PATTERN='AblationPackEDF' scripts/bench.sh
#     — the allocs gate additionally pins BatchReuse at 0 allocs/op.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_PATTERN=${BENCH_PATTERN:-.}
BENCH_TIME=${BENCH_TIME:-1x}
BENCH_COUNT=${BENCH_COUNT:-1}

mkdir -p benchmarks
go test -run '^$' -bench "$BENCH_PATTERN" -benchtime "$BENCH_TIME" \
	-count "$BENCH_COUNT" -benchmem -timeout 60m . | tee benchmarks/latest.txt

awk 'BEGIN { OFS = "\t"; print "benchmark", "iters", "ns_op", "b_op", "allocs_op" }
	/^Benchmark/ {
		name = $1; sub(/-[0-9]+$/, "", name)
		ns = ""; bytes = ""; allocs = ""
		for (i = 3; i < NF; i++) {
			if ($(i+1) == "ns/op") ns = $i
			if ($(i+1) == "B/op") bytes = $i
			if ($(i+1) == "allocs/op") allocs = $i
		}
		print name, $2, ns, bytes, allocs
	}' benchmarks/latest.txt > benchmarks/latest.tsv
echo "wrote benchmarks/latest.txt and benchmarks/latest.tsv"
