#!/usr/bin/env bash
# Build a warm shared-cache file offline: replay a seeded trace through
# rmserve with the fleet-wide shared tier and anytime refinement
# enabled, and save the tier at shutdown. Close drains the refinement
# queue before saving, so the file carries exact (EX-MEM) entries for
# every problem shape the refiner got to — a daemon started with
#   rmserve -cache-warm <file>
# then serves those shapes exact-quality schedules at cache-lookup
# latency from the first request on (see benchmarks/README.md,
# "Anytime refinement on a warm fleet").
#
# The file format is canonical JSON sorted by signature: regenerating
# with the same trace parameters and binary produces a byte-identical
# file, so warm files can be diffed and cached in CI.
#
# Usage: scripts/warm-cache.sh OUTFILE [extra rmserve flags...]
#
# Environment knobs (all forwarded to rmserve's replay mode):
#   WARM_DEVICES   fleet size           (default 8)
#   WARM_HORIZON   trace seconds        (default 300)
#   WARM_RATE      arrivals/s/device    (default 0.05)
#   WARM_SEED      trace seed           (default 1)
#   WARM_BUDGET    refinement node budget per search (default 0 = library default)
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ $# -lt 1 ]]; then
	echo "usage: $0 OUTFILE [extra rmserve flags...]" >&2
	exit 2
fi
out=$1
shift

DEVICES=${WARM_DEVICES:-8}
HORIZON=${WARM_HORIZON:-300}
RATE=${WARM_RATE:-0.05}
SEED=${WARM_SEED:-1}
BUDGET=${WARM_BUDGET:-0}

go run ./cmd/rmserve \
	-devices "$DEVICES" -horizon "$HORIZON" -rate "$RATE" -seed "$SEED" \
	-cache-shared -cache-warm-out "$out" \
	-refine -refine-workers 2 -refine-budget "$BUDGET" \
	"$@"

echo "warm-cache: wrote $out"
