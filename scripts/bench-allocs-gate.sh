#!/usr/bin/env bash
# Allocation regression gate: run the scheduler hot-path benchmarks with
# -benchmem at a fixed iteration count and fail when any benchmark's
# allocs/op exceeds its ceiling in benchmarks/allocs-baseline.txt.
#
# Unlike ns/op, allocs/op is deterministic for a fixed benchtime and Go
# version — it does not depend on host speed or load — so this gate runs
# in CI on every push, while the ns/op comparison (bench-compare.sh)
# stays a same-host advisory tool.
#
# Baseline format (benchmarks/allocs-baseline.txt): lines of
#   BenchmarkName <max allocs/op>
# with '#' comments. Names carry no -GOMAXPROCS suffix. To update after
# an intentional change, edit the file (or regenerate: run this script
# and copy the reported values).
#
# Environment knobs:
#   ALLOC_BENCH_PATTERN  benchmarks to run (default: the gated set)
#   ALLOC_BENCH_TIME     -benchtime (default: 100x; keep fixed — the
#                        reported allocs/op is floor(total/N))
set -euo pipefail
cd "$(dirname "$0")/.."

PATTERN=${ALLOC_BENCH_PATTERN:-'Fig4SearchTimeMDF|AblationPackEDF|WatchFanout|MetricsRecord|WALAppend|SharedTierLookup|ControlTick'}
TIME=${ALLOC_BENCH_TIME:-100x}
BASELINE=benchmarks/allocs-baseline.txt

if [[ ! -f $BASELINE ]]; then
	echo "$BASELINE missing" >&2
	exit 1
fi

# The gated set spans the root package (scheduler hot path), the fleet
# package (watch fan-out publish path), the metrics package (the HTTP
# instrumentation's per-request recording path), the durable package
# (the WAL frame-encode + segment-write append path), the schedcache
# package (the shared-tier probe on the admission hot path) and the
# control package (the degradation controller's per-tick decision and
# per-pickup Limits read).
out=$(go test -run '^$' -bench "$PATTERN" -benchtime "$TIME" -benchmem -timeout 30m . ./internal/fleet ./internal/metrics ./internal/durable ./internal/schedcache ./internal/control)
printf '%s\n' "$out"

printf '%s\n' "$out" | awk -v baseline="$BASELINE" '
	BEGIN {
		while ((getline line < baseline) > 0) {
			sub(/#.*/, "", line)
			n = split(line, f, /[ \t]+/)
			if (n >= 2 && f[1] != "") max[f[1]] = f[2]
		}
		close(baseline)
	}
	/^Benchmark/ {
		name = $1; sub(/-[0-9]+$/, "", name)
		allocs = ""
		for (i = 3; i < NF; i++) if ($(i+1) == "allocs/op") allocs = $i
		if (allocs == "") next
		seen[name] = 1
		if (!(name in max)) { printf "ungated:   %s (%s allocs/op) — add it to %s\n", name, allocs, baseline; bad = 1; next }
		if (allocs + 0 > max[name] + 0) { printf "REGRESSED: %s %s allocs/op > ceiling %s\n", name, allocs, max[name]; bad = 1 }
		else { printf "ok:        %s %s allocs/op (ceiling %s)\n", name, allocs, max[name] }
	}
	END {
		for (b in max) if (!(b in seen)) { printf "missing:   %s gated but not run\n", b; bad = 1 }
		exit bad
	}
'
