#!/usr/bin/env bash
# Socket-level smoke soak: build rmserve and rmsoak, run the daemon on a
# free port, drive a short low-rate soak against it, and fail on any
# transport error or if the server's /metrics counters do not reconcile
# with the client's own counts (rmsoak -strict checks both). This is the
# CI-sized version of the benchmarks/README.md soak recipe: seconds, not
# minutes, but the full wire path — HTTP admission, advances, cancels,
# /metrics scrapes — end to end.
#
# Environment knobs:
#   SOAK_DURATION  soak length (default 2s)
#   SOAK_RPS       offered aggregate rate (default 100)
#   SOAK_DEVICES   fleet size (default 4)
set -euo pipefail
cd "$(dirname "$0")/.."

DURATION=${SOAK_DURATION:-2s}
RPS=${SOAK_RPS:-100}
DEVICES=${SOAK_DEVICES:-4}

workdir=$(mktemp -d)
cleanup() {
	if [[ -n ${server_pid:-} ]] && kill -0 "$server_pid" 2>/dev/null; then
		kill -INT "$server_pid" 2>/dev/null || true
		wait "$server_pid" 2>/dev/null || true
	fi
	rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/rmserve" ./cmd/rmserve
go build -o "$workdir/rmsoak" ./cmd/rmsoak

# -listen :0 binds a free port; the daemon prints the resolved address
# on its "listening:" line.
"$workdir/rmserve" -listen 127.0.0.1:0 -devices "$DEVICES" >"$workdir/rmserve.log" 2>&1 &
server_pid=$!

addr=""
for _ in $(seq 1 50); do
	addr=$(sed -n 's/^listening: \([^ ]*\).*/\1/p' "$workdir/rmserve.log")
	[[ -n $addr ]] && break
	if ! kill -0 "$server_pid" 2>/dev/null; then
		echo "rmserve died before listening:" >&2
		cat "$workdir/rmserve.log" >&2
		exit 1
	fi
	sleep 0.1
done
if [[ -z $addr ]]; then
	echo "rmserve never printed its address" >&2
	cat "$workdir/rmserve.log" >&2
	exit 1
fi
echo "smoke-soak: daemon at $addr, ${RPS} ops/s for ${DURATION}"

"$workdir/rmsoak" -addr "http://$addr" -rps "$RPS" -duration "$DURATION" \
	-devices "$DEVICES" -strict

kill -INT "$server_pid"
wait "$server_pid" || true
server_pid=""

# Second pass: the anytime-refinement configuration. Build a small warm
# shared-cache file offline (replay mode with refinement drains the
# exact searches into the tier at close), then soak strictly against a
# daemon serving from that warm tier with background refinement on —
# the counters must still reconcile exactly with the client's.
"$workdir/rmserve" -devices "$DEVICES" -horizon 60 \
	-cache-shared -cache-warm-out "$workdir/warm.json" \
	-refine -refine-workers 2 >"$workdir/warm-build.log" 2>&1
[[ -s $workdir/warm.json ]] || {
	echo "warm-cache file not produced" >&2
	cat "$workdir/warm-build.log" >&2
	exit 1
}

# The node budget is capped so background searches cannot monopolise
# the small CI container's cores; the soak gates reconciliation, not
# refinement depth.
"$workdir/rmserve" -listen 127.0.0.1:0 -devices "$DEVICES" \
	-cache-warm "$workdir/warm.json" -refine -refine-workers 2 \
	-refine-budget 200000 \
	>"$workdir/rmserve-warm.log" 2>&1 &
server_pid=$!

addr=""
for _ in $(seq 1 50); do
	addr=$(sed -n 's/^listening: \([^ ]*\).*/\1/p' "$workdir/rmserve-warm.log")
	[[ -n $addr ]] && break
	if ! kill -0 "$server_pid" 2>/dev/null; then
		echo "warm rmserve died before listening:" >&2
		cat "$workdir/rmserve-warm.log" >&2
		exit 1
	fi
	sleep 0.1
done
if [[ -z $addr ]]; then
	echo "warm rmserve never printed its address" >&2
	cat "$workdir/rmserve-warm.log" >&2
	exit 1
fi
echo "smoke-soak: warm+refine daemon at $addr, ${RPS} ops/s for ${DURATION}"

"$workdir/rmsoak" -addr "http://$addr" -rps "$RPS" -duration "$DURATION" \
	-devices "$DEVICES" -strict

kill -INT "$server_pid"
wait "$server_pid" || true
server_pid=""

# Third pass: the overload stage. The daemon runs the degradation
# controller with a latency threshold any real admission clears, so
# within a few ticks the controller walks to shedding — a deterministic
# stand-in for "offered rate far above sustainable" that does not
# depend on the CI host being slow. The client drives ~5x the base rate
# in bursts; -strict asserts zero transport errors and that the
# server's shed counter reconciles with the client's observed
# overloaded refusals, and -max-p99 bounds the latency of the submits
# that were admitted (shedding must keep the served path fast, not
# collapse it).
OVERLOAD_RPS=$((${RPS} * 5))
"$workdir/rmserve" -listen 127.0.0.1:0 -devices "$DEVICES" \
	-control -control-interval 20ms -control-high-latency 1ns \
	>"$workdir/rmserve-overload.log" 2>&1 &
server_pid=$!

addr=""
for _ in $(seq 1 50); do
	addr=$(sed -n 's/^listening: \([^ ]*\).*/\1/p' "$workdir/rmserve-overload.log")
	[[ -n $addr ]] && break
	if ! kill -0 "$server_pid" 2>/dev/null; then
		echo "overload rmserve died before listening:" >&2
		cat "$workdir/rmserve-overload.log" >&2
		exit 1
	fi
	sleep 0.1
done
if [[ -z $addr ]]; then
	echo "overload rmserve never printed its address" >&2
	cat "$workdir/rmserve-overload.log" >&2
	exit 1
fi
echo "smoke-soak: overload daemon at $addr, ${OVERLOAD_RPS} ops/s for ${DURATION}"

"$workdir/rmsoak" -addr "http://$addr" -rps "$OVERLOAD_RPS" -duration "$DURATION" \
	-devices "$DEVICES" -burst 4 -strict -max-p99 500ms \
	| tee "$workdir/rmsoak-overload.out"

# The stage must actually have exercised the shed path: the controller
# escalates within a few ticks, so a soak that saw no overloaded
# refusals means the control loop never engaged.
grep -q '^shedding:  server shed' "$workdir/rmsoak-overload.out" || {
	echo "overload stage never shed — controller did not engage" >&2
	cat "$workdir/rmserve-overload.log" >&2
	exit 1
}

kill -INT "$server_pid"
wait "$server_pid" || true
server_pid=""
echo "smoke-soak: ok"
