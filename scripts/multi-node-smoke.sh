#!/usr/bin/env bash
# Multi-node smoke: two rmserve nodes behind a consistent-hash router
# (rmserve -route), the CI-sized proof that the routed deployment works
# over real sockets. A strict soak drives the full wire path through the
# router — per-device ops land on the ring owner, /metrics reconciles
# against the client's own counts — then the merged /v1/stats snapshot
# is checked field by field against the plain sum of the two nodes'
# snapshots, and finally one node is killed to check that the router
# degrades into a clean 502/unavailable taxonomy error rather than a
# hang or a silently partial sum.
#
# Environment knobs:
#   SOAK_DURATION  soak length (default 2s)
#   SOAK_RPS       offered aggregate rate (default 100)
#   SOAK_DEVICES   fleet size (default 4)
set -euo pipefail
cd "$(dirname "$0")/.."

DURATION=${SOAK_DURATION:-2s}
RPS=${SOAK_RPS:-100}
DEVICES=${SOAK_DEVICES:-4}

workdir=$(mktemp -d)
pids=()
cleanup() {
	for pid in "${pids[@]:-}"; do
		if [[ -n $pid ]] && kill -0 "$pid" 2>/dev/null; then
			kill -INT "$pid" 2>/dev/null || true
			wait "$pid" 2>/dev/null || true
		fi
	done
	rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/rmserve" ./cmd/rmserve
go build -o "$workdir/rmsoak" ./cmd/rmsoak

# start_server LOGFILE ARGS... boots one rmserve in the background and
# waits for its "listening:" line; the resolved address lands in ADDR
# and the process id in SERVER_PID (appended to pids for cleanup).
start_server() {
	local log=$1
	shift
	"$workdir/rmserve" "$@" >"$log" 2>&1 &
	SERVER_PID=$!
	pids+=("$SERVER_PID")
	ADDR=""
	for _ in $(seq 1 50); do
		ADDR=$(sed -n 's/^listening: \([^ ]*\).*/\1/p' "$log")
		[[ -n $ADDR ]] && break
		if ! kill -0 "$SERVER_PID" 2>/dev/null; then
			echo "rmserve died before listening ($log):" >&2
			cat "$log" >&2
			exit 1
		fi
		sleep 0.1
	done
	if [[ -z $ADDR ]]; then
		echo "rmserve never printed its address ($log)" >&2
		cat "$log" >&2
		exit 1
	fi
}

start_server "$workdir/node0.log" -listen 127.0.0.1:0 -devices "$DEVICES"
node0_addr=$ADDR
start_server "$workdir/node1.log" -listen 127.0.0.1:0 -devices "$DEVICES"
node1_addr=$ADDR
node1_pid=$SERVER_PID

# Seed 42 spreads devices 0..3 over both owners (pinned by the router's
# cross-topology equivalence test), so both nodes see traffic.
start_server "$workdir/router.log" -route -listen 127.0.0.1:0 \
	-peers "$node0_addr,$node1_addr" -ring-seed 42
router_addr=$ADDR

echo "multi-node-smoke: nodes at $node0_addr $node1_addr, router at $router_addr"
echo "multi-node-smoke: ${RPS} ops/s for ${DURATION} through the router"

"$workdir/rmsoak" -addr "http://$router_addr" -rps "$RPS" -duration "$DURATION" \
	-devices "$DEVICES" -strict

# The router's merged fleet snapshot must equal the per-node sum — for
# every lifecycle counter, not just the submitted total the strict soak
# already reconciled.
merged=$(curl -sf "http://$router_addr/v1/stats")
n0=$(curl -sf "http://$node0_addr/v1/stats")
n1=$(curl -sf "http://$node1_addr/v1/stats")
for field in submitted accepted rejected completed cancelled activations; do
	m=$(jq -r ".${field} // 0" <<<"$merged")
	a=$(jq -r ".${field} // 0" <<<"$n0")
	b=$(jq -r ".${field} // 0" <<<"$n1")
	if [[ $m -ne $((a + b)) ]]; then
		echo "merged $field=$m != node sum $a+$b" >&2
		exit 1
	fi
done
for node in "$n0" "$n1"; do
	if [[ $(jq -r '.submitted' <<<"$node") -eq 0 ]]; then
		echo "a node received no traffic — ring did not spread the devices" >&2
		exit 1
	fi
done
echo "multi-node-smoke: merged stats reconcile with per-node sums"

# Kill one node: the merged query must now refuse with the taxonomy's
# unavailable error on a 502 — never a partial sum.
kill -9 "$node1_pid"
wait "$node1_pid" 2>/dev/null || true
status=$(curl -s -o "$workdir/degraded.json" -w '%{http_code}' "http://$router_addr/v1/stats")
if [[ $status != 502 ]]; then
	echo "degraded fleet stats returned HTTP $status, want 502" >&2
	cat "$workdir/degraded.json" >&2
	exit 1
fi
code=$(jq -r '.error.code' <"$workdir/degraded.json")
if [[ $code != unavailable ]]; then
	echo "degraded fleet stats carried code $code, want unavailable" >&2
	cat "$workdir/degraded.json" >&2
	exit 1
fi
echo "multi-node-smoke: dead peer surfaces as 502/unavailable"
echo "multi-node-smoke: ok"
