#!/usr/bin/env bash
# Compare benchmarks/latest.txt against benchmarks/baseline.txt and fail
# when any benchmark's ns/op regressed by more than
# BENCH_MAX_REGRESSION_PCT percent (default: 5). Benchmarks present in
# only one of the files are reported but do not fail the comparison.
# Keep baseline and compare runs on the same goos/goarch/host to avoid
# false regressions.
set -euo pipefail
cd "$(dirname "$0")/.."

MAX_PCT=${BENCH_MAX_REGRESSION_PCT:-5}
if [[ ! -f benchmarks/baseline.txt ]]; then
	echo "no benchmarks/baseline.txt — nothing to compare" >&2
	exit 0
fi
if [[ ! -f benchmarks/latest.txt ]]; then
	echo "benchmarks/latest.txt missing — run scripts/bench.sh first" >&2
	exit 1
fi

awk -v max="$MAX_PCT" '
	# go test bench lines: "BenchmarkName-8  <iters>  <ns> ns/op  ..."
	FNR == NR && /^Benchmark/ { base[$1] = $3; next }
	FNR != NR && /^Benchmark/ {
		seen[$1] = 1
		if (!($1 in base)) { printf "new:       %s\n", $1; next }
		pct = base[$1] > 0 ? 100 * ($3 - base[$1]) / base[$1] : 0
		if (pct > max) { printf "REGRESSED: %s %+.1f%% (%s -> %s ns/op)\n", $1, pct, base[$1], $3; bad = 1 }
		else          { printf "ok:        %s %+.1f%%\n", $1, pct }
	}
	END {
		for (b in base) if (!(b in seen)) printf "removed:   %s\n", b
		exit bad
	}
' benchmarks/baseline.txt benchmarks/latest.txt
