// Proactive demonstrates the workload-prediction extension: an online
// inter-arrival predictor learns the request pattern, and a
// prediction-gated scheduler declines requests that would starve the
// arrivals it forecasts. The example compares reactive and proactive
// admission on a trace with a strongly periodic component, reporting the
// downstream effect: the proactive manager sacrifices a little acceptance
// on aperiodic traffic to protect the periodic application's admission.
package main

import (
	"fmt"
	"log"
	"sort"

	"adaptrm"
	"adaptrm/internal/desim"
	"adaptrm/internal/predict"
	"adaptrm/internal/rm"
	"adaptrm/internal/workload"
)

func main() {
	plat := adaptrm.OdroidXU4()
	lib, err := adaptrm.StandardLibrary(plat)
	if err != nil {
		log.Fatal(err)
	}

	// A strictly periodic pedestrian-recognition stream with firm, tight
	// deadlines, interleaved with contending tight-deadline traffic that
	// can starve it.
	var trace []workload.Request
	periodic := "pedestrian-recognition/medium"
	pTime := lib.Get(periodic).FastestTime()
	nPeriodic := 0
	for t := 5.0; t < 500; t += 25 {
		trace = append(trace, workload.Request{At: t, App: periodic, Deadline: t + pTime*1.3})
		nPeriodic++
	}
	raw, err := adaptrm.GenerateTrace(lib, adaptrm.TraceParams{
		Rate: 0.22, Horizon: 500, Factor: [2]float64{1.05, 1.5}, Seed: 17,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Keep the periodic application exclusively periodic so the
	// predictor sees a clean pattern.
	bursty := raw[:0]
	for _, r := range raw {
		if r.App != periodic {
			bursty = append(bursty, r)
		}
	}
	trace = append(trace, bursty...)
	sort.SliceStable(trace, func(i, j int) bool { return trace[i].At < trace[j].At })
	fmt.Printf("trace: %d requests (%d strictly periodic, %d bursty)\n\n",
		len(trace), nPeriodic, len(bursty))

	run := func(label string, s adaptrm.Scheduler, pred adaptrm.Predictor) {
		res, err := desim.Simulate(trace, lib, plat, s, desim.Options{
			Manager:   rm.Options{},
			Predictor: pred,
		})
		if err != nil {
			log.Fatal(err)
		}
		perApp := map[string][2]int{} // accepted, total
		for _, e := range res.Events {
			if e.Kind != desim.Arrival {
				continue
			}
			c := perApp[e.App]
			if e.Accepted {
				c[0]++
			}
			c[1]++
			perApp[e.App] = c
		}
		p := perApp[periodic]
		fmt.Printf("%-22s accepted %3d/%3d overall, periodic %2d/%2d, energy %7.1f J, misses %d\n",
			label, res.Stats.Accepted, res.Stats.Submitted, p[0], p[1],
			res.Stats.Energy, res.Stats.DeadlineMisses)
	}

	run("reactive MMKP-MDF", adaptrm.NewMMKPMDF(), nil)

	pred := adaptrm.NewInterArrivalPredictor()
	pro := &predict.Scheduler{
		Inner:          adaptrm.NewMMKPMDF(),
		Pred:           pred,
		Lib:            lib,
		Horizon:        30,
		Protect:        []string{periodic},
		DeadlineFactor: 1.3, // match the stream's real deadline factor
	}
	run("proactive MMKP-MDF", pro, pred)

	fmt.Println("\nThe proactive gate trades a little bursty acceptance for markedly")
	fmt.Println("better admission of the protected periodic stream (and lower energy,")
	fmt.Println("since protected slots displace energy-hungry tight bursts).")
}
