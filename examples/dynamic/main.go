// Dynamic runs the online runtime manager against a bursty Poisson
// request trace — the workload the paper's introduction motivates — and
// compares the adaptive MMKP-MDF manager against the MMKP-LR baseline on
// acceptance rate, energy and scheduling overhead.
package main

import (
	"fmt"
	"log"

	"adaptrm"
)

func main() {
	plat := adaptrm.OdroidXU4()
	lib, err := adaptrm.StandardLibrary(plat)
	if err != nil {
		log.Fatal(err)
	}

	trace, err := adaptrm.GenerateTrace(lib, adaptrm.TraceParams{
		Rate:    0.25, // one request every 4 s on average: contended
		Horizon: 400,
		Factor:  [2]float64{1.1, 2.5}, // fairly tight deadlines
		Seed:    42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d requests over 400 s on %s\n\n", len(trace), plat)

	for _, s := range []adaptrm.Scheduler{adaptrm.NewMMKPMDF(), adaptrm.NewMMKPLR()} {
		mgr, err := adaptrm.NewManager(plat, lib, s, adaptrm.ManagerOptions{})
		if err != nil {
			log.Fatal(err)
		}
		for _, req := range trace {
			// Completions between arrivals happen implicitly inside
			// Submit's time advance; explicit stepping is only needed
			// for completion-triggered rescheduling (see package desim).
			if _, _, _, err := mgr.Submit(req.At, req.App, req.Deadline); err != nil {
				log.Fatal(err)
			}
		}
		if _, err := mgr.Drain(); err != nil {
			log.Fatal(err)
		}
		st := mgr.Stats()
		fmt.Printf("%-10s accepted %3d/%3d (%.0f%%)  energy %8.1f J  misses %d  sched time %v\n",
			s.Name(), st.Accepted, st.Submitted,
			100*float64(st.Accepted)/float64(st.Submitted),
			st.Energy, st.DeadlineMisses, st.SchedulingTime)
	}
	fmt.Println("\nBoth managers guarantee zero deadline misses by admission control;")
	fmt.Println("the adaptive global-scope MMKP-MDF spends less energy per accepted job.")
}
