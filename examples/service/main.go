// Service: run the fleet as a JSON/HTTP daemon and negotiate admission
// through the typed client — the same adaptrm.Service interface the
// in-process fleet implements, so swapping transports changes one
// constructor call. Demonstrates per-request decisions, typed
// rejections, batched admission (one scheduler activation for a whole
// burst), job cancellation, per-tenant quotas, the stats endpoint, and
// the /v1/watch event stream: every admission, start, completion,
// cancellation and schedule change arrives live over Server-Sent
// Events, in per-device sequence order.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"

	"adaptrm"
)

func main() {
	plat := adaptrm.OdroidXU4()
	lib, err := adaptrm.StandardLibrary(plat)
	if err != nil {
		log.Fatal(err)
	}

	// A two-device fleet, one MMKP-MDF scheduler per device.
	devs := make([]adaptrm.FleetDevice, 2)
	for i := range devs {
		devs[i] = adaptrm.FleetDevice{Platform: plat, Library: lib, Scheduler: adaptrm.NewMMKPMDF()}
	}
	f, err := adaptrm.NewFleet(devs, adaptrm.FleetOptions{Shards: 2, Cache: true})
	if err != nil {
		log.Fatal(err)
	}

	// Expose it over HTTP with one budgeted tenant. Port :0 picks a free
	// port; a real deployment uses cmd/rmserve -listen instead.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	server, err := adaptrm.NewHTTPServer(f.Service(), adaptrm.HTTPServerOptions{
		Tenants: []adaptrm.Tenant{{Name: "demo", Token: "s3cret", MaxRequests: 9}},
	})
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, server) }()
	baseURL := "http://" + ln.Addr().String()
	fmt.Println("daemon listening on", baseURL)

	// The client is itself an adaptrm.Service — everything below would
	// work identically against f.Service() directly.
	client := adaptrm.NewHTTPClient(baseURL, "s3cret", nil)
	var svc adaptrm.Service = client
	ctx := context.Background()

	// Follow the whole fleet live before any traffic flows: the watch is
	// an SSE stream (quota-free, like stats), and adaptrm.Watch works
	// identically against f.Service(). Events are collected here and
	// printed once the fleet has drained.
	events, err := adaptrm.Watch(ctx, svc, adaptrm.WatchRequest{})
	if err != nil {
		log.Fatal(err)
	}
	var story []adaptrm.Event
	watched := make(chan struct{})
	go func() {
		defer close(watched)
		for ev := range events {
			story = append(story, ev)
		}
	}()

	// Negotiate a few admissions on device 0. The tight 6-second
	// deadline of the third request is infeasible next to the others —
	// the daemon says so with a typed, transport-surviving error.
	for _, req := range []adaptrm.SubmitRequest{
		{Device: 0, At: 0, App: "audio-filter/medium", Deadline: 20},
		{Device: 0, At: 1, App: "pedestrian-recognition/medium", Deadline: 30},
		{Device: 0, At: 2, App: "speaker-recognition/large", Deadline: 8},
	} {
		res, err := svc.Submit(ctx, req)
		switch {
		case errors.Is(err, adaptrm.ErrRejected):
			fmt.Printf("t=%.0f: %-30s → rejected (infeasible)\n", req.At, req.App)
		case err != nil:
			log.Fatal(err)
		default:
			fmt.Printf("t=%.0f: %-30s → accepted as job %d\n", req.At, req.App, res.JobID)
		}
	}

	// The user aborts job 1; its resources are reclaimed immediately.
	if _, err := svc.Cancel(ctx, adaptrm.CancelRequest{Device: 0, JobID: 1}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("cancelled job 1 — device re-planned the remaining jobs")

	// Advance the device clock; completions come back to the caller.
	adv, err := svc.Advance(ctx, adaptrm.AdvanceRequest{Device: 0, To: 40})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range adv.Completions {
		fmt.Printf("t=%.1f: job %d completed (missed=%v)\n", c.At, c.JobID, c.Missed)
	}

	// Batched admission: a burst of three same-time requests for device 1
	// is decided in one call — and, being jointly feasible, one scheduler
	// activation instead of three. Verdicts and job ids are exactly what
	// three sequential submits would have produced; a batch of k costs k
	// units of the tenant budget.
	batch, err := adaptrm.SubmitBatch(ctx, svc, adaptrm.BatchSubmitRequest{
		Device: 1, At: 0, Items: []adaptrm.BatchItem{
			{App: "audio-filter/medium", Deadline: 25},
			{App: "speaker-recognition/medium", Deadline: 40},
			{App: "pedestrian-recognition/small", Deadline: 35},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, v := range batch.Verdicts {
		switch {
		case v.Accepted:
			fmt.Printf("batch[%d] → accepted as job %d\n", i, v.JobID)
		default:
			fmt.Printf("batch[%d] → %s\n", i, v.Error.Code)
		}
	}

	// The tenant's 9-request budget is now nearly spent: 3 submits +
	// 1 cancel + 1 advance + the 3-item batch leave room for exactly one
	// more mutating call.
	if _, err := svc.Submit(ctx, adaptrm.SubmitRequest{Device: 1, At: 0, App: "audio-filter/small", Deadline: 25}); err == nil {
		fmt.Println("device 1: one more admission within budget")
	}
	_, err = svc.Submit(ctx, adaptrm.SubmitRequest{Device: 1, At: 1, App: "audio-filter/small", Deadline: 26})
	if errors.Is(err, adaptrm.ErrQuotaExceeded) {
		fmt.Println("tenant budget spent → quota_exceeded (HTTP 429)")
	}

	// Stats are free and identical to the in-process view.
	st, err := svc.Stats(ctx, adaptrm.StatsRequest{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfleet: %d submitted, %d accepted, %d rejected, %.2f J so far\n",
		st.Submitted, st.Accepted, st.Rejected, st.Energy)

	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	final := f.Stats()
	fmt.Printf("after drain: %d completed, %d deadline misses, %d cancelled, %.2f J total\n",
		final.Completed, final.DeadlineMisses, final.Cancelled, final.Energy)

	// Closing the fleet ended the SSE stream — after its final drain
	// events, so the watcher holds the complete story.
	<-watched
	fmt.Printf("\nwatched %d events over SSE:\n", len(story))
	for _, ev := range story {
		switch ev.Type {
		case adaptrm.EventScheduleChanged:
			fmt.Printf("  dev %d #%-2d t=%5.1f  %s\n", ev.Device, ev.Seq, ev.At, ev.Type)
		case adaptrm.EventJobAdmitted, adaptrm.EventJobRejected:
			fmt.Printf("  dev %d #%-2d t=%5.1f  %-16s job %d  %s (deadline %g)\n",
				ev.Device, ev.Seq, ev.At, ev.Type, ev.JobID, ev.App, ev.Deadline)
		default:
			fmt.Printf("  dev %d #%-2d t=%5.1f  %-16s job %d\n", ev.Device, ev.Seq, ev.At, ev.Type, ev.JobID)
		}
	}
}
