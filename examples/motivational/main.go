// Motivational reproduces Section III of the paper end to end: the
// 2-little/2-big device, applications λ1/λ2 (Table II), request scenarios
// S1/S2 (Table I), and the three resource-management policies of Fig. 1
// with their energies (16.96 / 15.49 / 14.63 J). It also shows the
// tighter scenario S2, which fixed mappers must reject while the adaptive
// mapper schedules it.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"

	"adaptrm"
	"adaptrm/internal/motiv"
)

func main() {
	plat := adaptrm.Motivational2L2B()
	fmt.Printf("device: %s\n\n", plat)

	fmt.Println("Table II operating points:")
	fmt.Print(motiv.Lambda1())
	fmt.Print(motiv.Lambda2())

	// Scenario S1 at t=1: σ1 (λ1, deadline 9) progressed 18.87% on
	// 2L1B; σ2 (λ2, deadline 5) just arrived.
	fmt.Println("\n— Scenario S1 (σ1 deadline 9, σ2 deadline 5) —")
	policies := []struct {
		label string
		s     adaptrm.Scheduler
		paper float64
	}{
		{"(a) fixed mapper, remap @ start", adaptrm.NewFixedMapper(false), 16.96},
		{"(b) fixed mapper, remap @ start+finish", adaptrm.NewFixedMapper(true), 15.49},
		{"(c) adaptive mapper (MMKP-MDF)", adaptrm.NewMMKPMDF(), 14.63},
	}
	for _, p := range policies {
		jobs := adaptrm.JobSet(motiv.ScenarioS1AtT1())
		k, err := adaptrm.ScheduleJobs(p.s, jobs, plat, 1)
		if err != nil {
			log.Fatalf("%s: %v", p.label, err)
		}
		total := k.Energy(jobs) + motiv.EnergyBeforeT1
		fmt.Printf("\n%s\n  energy = %.2f J (paper: %.2f J)\n", p.label, total, p.paper)
		if err := adaptrm.RenderGantt(os.Stdout, k, jobs, plat, 72); err != nil {
			log.Fatal(err)
		}
	}

	// Scenario S2: σ2's deadline tightens to 4.
	fmt.Println("\n— Scenario S2 (σ2 deadline 4) —")
	for _, p := range policies {
		jobs := adaptrm.JobSet(motiv.ScenarioS2AtT1())
		k, err := adaptrm.ScheduleJobs(p.s, jobs, plat, 1)
		switch {
		case errors.Is(err, adaptrm.ErrInfeasible):
			fmt.Printf("%-42s rejects σ2 (as the paper predicts)\n", p.label)
		case err != nil:
			log.Fatalf("%s: %v", p.label, err)
		default:
			total := k.Energy(jobs) + motiv.EnergyBeforeT1
			fmt.Printf("%-42s schedules S2 with %.2f J\n", p.label, total)
		}
	}
}
