// Quickstart: build the platform and operating-point library, submit two
// applications to the runtime manager, and inspect the adaptive schedule.
package main

import (
	"fmt"
	"log"
	"os"

	"adaptrm"
)

func main() {
	// The modeled Odroid XU4: 4 little + 4 big cores.
	plat := adaptrm.OdroidXU4()

	// Design time: virtual benchmarking + DSE + Pareto filtering for the
	// three dataflow applications (speaker recognition, audio filter,
	// pedestrian recognition) at three input sizes each.
	lib, err := adaptrm.StandardLibrary(plat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("library: %d application variants\n", lib.Len())
	for _, name := range lib.Names() {
		fmt.Printf("  %-32s %2d operating points\n", name, lib.Get(name).Len())
	}

	// Runtime: an online manager with the paper's MMKP-MDF heuristic.
	mgr, err := adaptrm.NewManager(plat, lib, adaptrm.NewMMKPMDF(), adaptrm.ManagerOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Two requests arrive: an audio filter at t=0 with a 20 s deadline,
	// a pedestrian recognition at t=2 with a 30 s deadline.
	for _, req := range []struct {
		at, deadline float64
		app          string
	}{
		{0, 20, "audio-filter/medium"},
		{2, 30, "pedestrian-recognition/medium"},
	} {
		id, accepted, _, err := mgr.Submit(req.at, req.app, req.deadline)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nt=%.0f: %s → accepted=%v (job %d)\n", req.at, req.app, accepted, id)
	}

	// Show the plan the manager committed to.
	fmt.Println("\nplanned schedule (segments with per-job operating points):")
	fmt.Print(mgr.CurrentSchedule())
	fmt.Println("\nGantt:")
	if err := adaptrm.RenderGantt(os.Stdout, mgr.CurrentSchedule(), mgr.ActiveJobs(), plat, 90); err != nil {
		log.Fatal(err)
	}

	// Run to completion and report.
	if _, err := mgr.Drain(); err != nil {
		log.Fatal(err)
	}
	st := mgr.Stats()
	fmt.Printf("\ncompleted %d jobs, %.2f J, %d deadline misses, scheduling took %v\n",
		st.Completed, st.Energy, st.DeadlineMisses, st.SchedulingTime)
}
