// Comparison runs a reduced version of the paper's evaluation through the
// public API: it generates a subsample of the Table III suite, runs
// EX-MEM, MMKP-LR and MMKP-MDF on every case, and reports scheduling
// rates and energy ratios — a small-scale preview of Fig. 2 and Table IV
// (use cmd/rmeval for the full reproduction).
package main

import (
	"errors"
	"fmt"
	"log"
	"math"
	"time"

	"adaptrm"
)

func main() {
	plat := adaptrm.OdroidXU4()
	lib, err := adaptrm.StandardLibrary(plat)
	if err != nil {
		log.Fatal(err)
	}
	cases, err := adaptrm.GenerateSuite(lib, adaptrm.WorkloadParams{
		Seed: 7,
		Counts: map[adaptrm.WorkloadLevel][4]int{
			adaptrm.Weak:  {4, 10, 10, 8},
			adaptrm.Tight: {4, 12, 12, 8},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("running %d cases on %s\n\n", len(cases), plat)

	schedulers := []adaptrm.Scheduler{
		adaptrm.NewEXMEM(),
		adaptrm.NewMMKPLR(),
		adaptrm.NewMMKPMDF(),
	}
	type outcome struct {
		ok     bool
		energy float64
	}
	results := map[string][]outcome{}
	for _, s := range schedulers {
		outs := make([]outcome, len(cases))
		start := time.Now()
		for ci, c := range cases {
			k, err := s.Schedule(c.Jobs, plat, c.T0)
			switch {
			case err == nil:
				outs[ci] = outcome{ok: true, energy: k.Energy(c.Jobs)}
			case errors.Is(err, adaptrm.ErrInfeasible):
				// rejected
			default:
				log.Fatalf("%s on %s: %v", s.Name(), c.Name, err)
			}
		}
		results[s.Name()] = outs
		ok := 0
		for _, o := range outs {
			if o.ok {
				ok++
			}
		}
		fmt.Printf("%-10s scheduled %3d/%3d cases in %v\n",
			s.Name(), ok, len(cases), time.Since(start).Round(time.Millisecond))
	}

	// Geomean relative energy vs EX-MEM over commonly scheduled cases.
	fmt.Println()
	base := results["EX-MEM"]
	for _, name := range []string{"MMKP-LR", "MMKP-MDF"} {
		logSum, n, optimal := 0.0, 0, 0
		for ci, o := range results[name] {
			if o.ok && base[ci].ok && base[ci].energy > 0 {
				r := o.energy / base[ci].energy
				logSum += math.Log(r)
				n++
				if r <= 1+1e-9 {
					optimal++
				}
			}
		}
		if n > 0 {
			fmt.Printf("%-10s geomean rel. energy vs EX-MEM: %.4f  (optimal on %d/%d cases)\n",
				name, math.Exp(logSum/float64(n)), optimal, n)
		}
	}
	fmt.Println("\npaper (full suite): MMKP-MDF ≈ 1.036, MMKP-LR ≈ 1.167 — run cmd/rmeval for the full numbers")
}
