// Package adaptrm is an energy-efficient runtime resource manager for
// adaptable multi-application mapping on heterogeneous multi-core
// platforms, reproducing Khasanov & Castrillon, "Energy-efficient Runtime
// Resource Management for Adaptable Multi-application Mapping" (DATE
// 2020).
//
// The library implements the full hybrid mapping flow of the paper:
//
//   - design time: dataflow application models (package kpn), a virtual
//     big.LITTLE platform with a power model (vplat), and exhaustive
//     design-space exploration with Pareto filtering (dse) that produces
//     per-application operating-point tables ⟨θ, τ, ξ⟩;
//   - runtime: the MMKP-MDF scheduling heuristic (the paper's
//     contribution), the EX-MEM exact reference and the MMKP-LR baseline,
//     fixed-mapping baselines, and an online runtime manager with
//     admission control, progress tracking and energy accounting;
//   - evaluation: the 1676-case workload generator of Table III and the
//     harness regenerating Table IV and Figures 2–4;
//   - service: a concurrent fleet front-end (NewFleet) hosting many
//     independent devices — each a platform plus its own runtime
//     manager — behind sharded worker goroutines with buffered
//     mailboxes, per-device virtual clocks and aggregated fleet
//     statistics, plus a memoizing schedule cache
//     (NewCachingScheduler) that lets repeated workload shapes skip
//     the MMKP-MDF solve; cached results are re-validated against the
//     concrete job set before reuse, so admission correctness never
//     depends on the cache. Multi-tenant traces for fleet experiments
//     come from GenerateFleetTrace, and cmd/rmserve replays them end
//     to end.
//   - protocol: a transport-agnostic service API (Service) with typed
//     request/response messages — SubmitRequest → SubmitResult carrying
//     the job id, the accept/reject verdict and the completions — a
//     context.Context on every call, and a structured error taxonomy
//     (ErrRejected, ErrUnknownDevice, ErrOverloaded, ErrQuotaExceeded,
//     ...) that survives serialisation: errors.Is matches by taxonomy
//     code on both sides of a wire. (*Fleet).Service() is the
//     in-process implementation; NewHTTPServer exposes any Service as
//     a JSON/HTTP daemon with per-tenant bearer tokens, device
//     authorisation and request quotas, and NewHTTPClient is the
//     matching Go client — itself a Service, behaviourally
//     interchangeable with the in-process fleet (the test suite holds
//     both to identical deterministic results). cmd/rmserve -listen
//     runs the ready-made daemon.
//   - batched admission: SubmitBatch decides several same-time requests
//     for one device in a single call; a jointly feasible batch costs
//     one scheduler activation instead of one per request (the solve
//     runs over the warm allocation-free packer), and an infeasible one
//     falls back to per-request decisions in arrival order — so
//     verdicts, job ids and the final schedule are always identical to
//     sequential submission, only the activation count shrinks. Both
//     transports implement the BatchService extension (POST
//     /v1/submit-batch over HTTP; a k-item batch costs k quota units),
//     and fleets additionally coalesce queued same-device submits
//     automatically within FleetOptions.BatchWindow seconds of virtual
//     time, amortising activations under the bursty multi-tenant
//     traffic GenerateFleetTrace produces with BurstSize/BurstWindow.
//   - streaming: every runtime manager emits typed lifecycle events —
//     EventJobAdmitted, EventJobRejected, EventJobStarted,
//     EventJobCompleted, EventJobCancelled, EventScheduleChanged — with
//     per-device monotone, gap-free sequence numbers, and Watch
//     subscribes to them through any supporting Service. The fleet fans
//     events out through per-subscriber bounded buffers whose overflow
//     converts into an in-stream EventLagged marker (carrying the first
//     dropped sequence number and a drop count), so a stalled consumer
//     loses events — explicitly — but never blocks a shard worker; the
//     publish path is gated allocation-free like the packer. A
//     single-device watch resumes from any retained sequence number
//     (WatchRequest.FromSeq, backed by a per-device history ring of
//     FleetOptions.EventHistory events). Over HTTP the stream is GET
//     /v1/watch as Server-Sent Events — "id:" carries the sequence
//     number, "data:" the Event JSON, comment lines heartbeat idle
//     connections — and the client's Watch is channel-based and itself
//     a WatchService, so the equivalence suite pins both transports to
//     byte-identical event logs that reconstruct the managers' own
//     admission statistics and executed timelines; a future gRPC
//     streaming binding inherits that contract. Tenants can also be
//     paced, not just budgeted: Tenant.Rate/Burst attach a token bucket
//     (a k-item batch costs k tokens, refusals reserve nothing,
//     never-executed operations refund) driven by a virtual-clock hook
//     for deterministic tests — rmserve -quota-rate/-quota-burst on the
//     command line.
//
// # Performance
//
// The scheduler core is allocation-free on its hot path: a reusable
// EDF packer (internal/sched.Packer) keeps pooled segment, placement
// and usage buffers with incrementally maintained per-segment resource
// vectors, assignments are dense position-keyed slices instead of
// per-trial map clones, and MMKP-MDF filters candidate configurations
// incrementally as knapsack containers shrink. Equivalence tests pin
// the rewrite to a retained naive reference implementation
// (byte-identical schedules), and CI gates allocs/op of the hot-path
// benchmarks on every push (scripts/bench-allocs-gate.sh against
// benchmarks/allocs-baseline.txt; methodology in benchmarks/README.md).
// cmd/rmeval takes -cpuprofile/-memprofile for pprof evidence when
// touching these paths.
//
// # Cache tiers and anytime refinement
//
// The fleet closes the quality gap between the µs-latency MMKP-MDF
// heuristic and the exact EX-MEM reference without giving up admission
// latency, using two cooperating mechanisms:
//
//   - shared cache tier: FleetOptions.SharedCache installs one
//     fleet-wide read-mostly store (NewSharedScheduleCache) behind
//     every per-device cache. A per-device L1 miss falls through to
//     the tier — keyed by platform hash plus the same canonical
//     workload signature, re-validated against the concrete job set
//     exactly like an L1 hit, and allocation-free on the probe
//     (BenchmarkSharedTierLookup, gated at 0) — so one device's solve
//     warms every device with the same platform. Promotions merge
//     deterministically: lowest energy wins, an exact schedule beats a
//     heuristic one at equal energy, and the canonical encoding breaks
//     exact ties, so the tier's content is independent of device
//     interleaving. Save/Load persist it as canonical JSON sorted by
//     signature (byte-identical regeneration); rmserve -cache-warm
//     loads such a warm file at start and -cache-warm-out saves one at
//     shutdown (scripts/warm-cache.sh builds them offline).
//   - anytime refinement: FleetOptions.Refine attaches a bounded
//     background pool (internal/anytime) that re-solves every accepted
//     admission's job set with budgeted EX-MEM
//     (exmem.ScheduleBudgeted: the incumbent is the heuristic's
//     energy, a node budget caps the search, and the branch-and-bound
//     prunes on an admissible fractional-switching relaxation).
//     Admission still returns the MDF schedule immediately; when the
//     exact search finds a strictly better schedule it is first
//     promoted into the shared tier and then swapped into the device
//     through the ordinary event machinery — an EventScheduleSwapped
//     event with the full schedule as payload, so watch streams, the
//     flightlog and the durable WAL see it like any lifecycle event
//     and recovery replays the swap verbatim (no re-search). Swaps are
//     refused if the device's job set changed since the offer (stale),
//     and with Refine off the fleet is byte-identical to previous
//     behaviour — the equivalence suite pins device states, event
//     logs and deterministic statistics.
//
// Together they give "exact quality at heuristic latency" on a warm
// fleet: recurring workload shapes hit exact entries at cache-lookup
// latency from the first request on (BenchmarkFleetAnytimeWarm in
// benchmarks/README.md records the p99/energy evidence). Per-tier
// counters — L1 hits, shared hits, re-packs, promotions, refinement
// searches and swaps — surface in /v1/stats and /metrics.
//
// # Multi-node routing
//
// A fleet outgrows one process along two axes — device count and
// admission rate — and the service layer scales past both without
// changing the protocol, by composing Services:
//
//   - placement (internal/placement): who owns which device is a
//     first-class, transport-independent concern. Placement maps a
//     device index to an owner slot; Modulo is the single-node default
//     (byte-identical to the fleet's historical dev % shards
//     assignment, pinned by test), and Ring is a seeded consistent-hash
//     ring — a pure function of {owners, replicas, seed}, so every
//     router instance, restart and operator runbook derives the same
//     mapping with no coordination, and growing the owner set remaps
//     only ~1/owners of the devices. FleetOptions can carry a custom
//     Placement to repartition devices across shards; DumpJSON emits
//     the full point table as canonical JSON for golden tests and
//     operator inspection.
//   - routing (internal/router): NewRouter wraps N backend Services —
//     typically HTTP clients for independent rmserve nodes, each
//     hosting the full device space — as one api.Service (Watch and
//     Batch included) that sends every device-addressed call to the
//     ring owner. Per-device request order is preserved (a device
//     always resolves to the same backend); fleet-wide stats fan out
//     concurrently and merge deterministically (counters summed —
//     exact, since only the owner's counters are nonzero per device —
//     device count maxed); fleet-wide watches merge one stream per
//     backend, preserving per-device sequence order; single-device
//     watches, including FromSeq resumes, delegate wholesale to the
//     owner, whose retention ring holds the history. Backend taxonomy
//     errors and context cancellations pass through untouched — a
//     client two HTTP hops away still matches errors.Is against the
//     same sentinels — while transport failures surface as
//     ErrUnavailable naming the dead peer (HTTP 502 on the wire), and
//     a merged query refuses rather than return a silent partial sum.
//     The router is itself a Service, so it serves through the same
//     HTTP front-end: rmserve -route -peers host1:p,host2:p boots a
//     routing daemon whose /metrics adds per-peer request counters,
//     error classes and latency histograms on top of the merged fleet
//     gauges. The cross-topology equivalence suite pins one in-process
//     fleet against the router over two live HTTP nodes sharing the
//     ring: identical verdicts, job ids, merged statistics and
//     per-device event logs (internal/router; scripts/
//     multi-node-smoke.sh re-proves it over real sockets in CI, dead
//     peer included).
//
// # Operating rmserve
//
// The daemon (rmserve -listen) ships its own observability surface,
// dependency-free:
//
//   - GET /metrics exports the fleet's statistics in the Prometheus
//     text format — admission and lifecycle counters (aggregate and
//     per device), scheduler activations and wall time, schedule-cache
//     and coalescing counters, watch subscribers and dropped events,
//     per-shard queue-depth gauges, per-tenant quota refusals, and the
//     HTTP layer's own per-route request counts and latency histograms
//     (fixed deterministic buckets). The exported counters are exactly
//     the values /v1/stats reports — an equivalence test pins them
//     byte-identical — and recording costs the serving path zero
//     allocations (internal/metrics, gated in CI).
//   - GET /healthz answers {"status":"ok","devices":N,"uptime_s":...}
//     for liveness probes; both routes are scrape-friendly and
//     unauthenticated even on a tenanted daemon.
//   - GET /debug/flightlog dumps the bounded in-memory postmortem ring
//     (internal/flightlog): the newest requests, their routes, status
//     codes and durations, interleaved with the device lifecycle
//     events tailed from the fleet's own watch stream. SIGQUIT writes
//     the same dump to stderr without stopping the daemon —
//     "what was the server doing just now?" after an incident.
//     -flightlog-size tunes the retention; on a tenanted daemon the
//     route is scoped like fleet-wide stats.
//   - GET /debug/pprof/ serves the runtime profiles, but only with
//     -pprof-token set and presented (Authorization bearer or
//     ?token=); profiling stays unreachable by default.
//
// cmd/rmsoak is the matching load harness: an open-loop soak of a live
// daemon driving the same seeded traces the replay mode uses, with
// client-side HDR latency percentiles per op kind and a /metrics
// scrape before and after that must reconcile exactly with the
// client's own counts (-strict fails CI otherwise; see
// scripts/smoke-soak.sh and benchmarks/README.md for recorded runs).
//
// # Adaptive control and graceful degradation
//
// Under overload a static configuration collapses: queues fill, every
// admission waits on a full solve, and the latency the paper's runtime
// exists to protect is lost exactly when traffic peaks. rmserve
// -control closes the loop instead (internal/control): a deterministic,
// externally-ticked controller observes per-shard queue depth (and
// optionally mean admission latency) and owns three actuators, applied
// in order of increasing damage:
//
//   - coalescing window: under sustained queue pressure the batch
//     window stretches (doubling toward -control-max-window), amortising
//     solver activations across queued submits, and shrinks back once
//     drained;
//   - degradation tier: normal → heuristic_only (refinement offers are
//     skipped and admission falls back to the pure MDF heuristic,
//     trading allocation quality for latency — the graceful-degradation
//     idea of E-Mapper, arXiv 2406.18980) → shedding (admissions are
//     rejected early with the overloaded taxonomy error before any
//     scheduler activation is spent; advances and cancels still run, so
//     admitted work keeps draining);
//   - refinement throttle: background exact searches pause outside the
//     normal tier.
//
// Layers read a consistent Limits snapshot per operation pickup rather
// than static knobs; without -control a fixed snapshot pins behaviour
// byte-identical to a build without the control layer (and a live
// controller under steady light load is pinned identical too, under
// -race). Hysteresis (consecutive-tick thresholds, slower out than in)
// keeps the loop from oscillating at a boundary. Every tier transition
// emits a mode_changed watch event that rides the ordinary event
// machinery — SSE streams, the WAL, crash recovery — and replays
// verbatim, so a recovered device resumes in the mode it crashed in.
// /healthz names the current mode and deepest shard backlog (a probe
// can pull a shedding backend out of rotation before requests bounce),
// /metrics and /v1/stats export the mode, shed count and controller
// decisions, a routed deployment reports the worst tier across its
// backends, and rmsoak counts overloaded refusals separately from
// transport errors so an intentionally-shedding daemon still passes
// -strict reconciliation (scripts/smoke-soak.sh drives a 5x overload
// stage in CI; the controller tick is allocation-free, gated by
// BenchmarkControlTick).
//
// # Durability and recovery
//
// With rmserve -data-dir the fleet survives kill -9: internal/durable
// tails every device's watch stream into a per-device write-ahead log
// of length-prefixed, CRC32C-checksummed event frames (segment files
// rotated by size, named by first sequence number) and periodically
// snapshots the device's full deterministic state (canonical JSON plus
// the last covered sequence number). On start the directory is
// recovered: each segment is decoded to its longest valid prefix —
// torn tails from a mid-write crash are physically truncated, never an
// error — the newest snapshot that anchors a contiguous event tail
// seeds the device, and the tail replays through the same manager
// transitions that produced it, so the recovered /v1/stats and
// executed timelines are byte-identical to the persisted prefix of the
// pre-crash state (scripts/crash-recovery.sh proves this in CI with a
// real SIGKILLed daemon). The writer never sits on the admission path:
// appends happen on a per-device goroutine behind the same bounded
// buffers as any other watch subscriber, and if the subscription ever
// lags past the retained history the writer rescues itself with an
// extra snapshot rather than stalling a shard worker. -fsync picks the
// durability/throughput point (always | interval | never); the append
// itself is gated allocation-free (BenchmarkWALAppend). Replay-mode
// details, recovered-vs-live divergences (solver-incidental counters
// only) and recovery timings are documented in internal/durable and
// benchmarks/README.md.
//
// # Quickstart
//
//	plat := adaptrm.OdroidXU4()
//	lib, _ := adaptrm.StandardLibrary(plat)
//	mgr, _ := adaptrm.NewManager(plat, lib, adaptrm.NewMMKPMDF(), adaptrm.ManagerOptions{})
//	id, accepted, _, _ := mgr.Submit(0, "audio-filter/medium", 25.0)
//
// See the examples/ directory for runnable programs and cmd/ for the
// evaluation tools.
package adaptrm
