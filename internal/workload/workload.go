// Package workload generates the multi-application test suite of the
// paper's evaluation (Section VI.A, Table III): 1676 static scheduling
// problems over the benchmark applications, differentiated by job count
// (1–4) and deadline level (weak / tight), plus dynamic arrival traces
// for the online runtime manager.
//
// Generation rules, from the paper:
//
//   - Table III counts: weak 15/255/255/230, tight 35/340/340/206;
//   - 31.9% of the cases request a single application (uniform over
//     applications and input sizes), the rest are mixes;
//   - in ≈22.6% of the cases every job is in its initial state (ρ=1);
//     otherwise the first job is initial and the others have progressed
//     by a uniform ratio in [0, 0.9];
//   - deadlines: pick a random operating point, compute the remaining
//     time on it, and scale by a uniform factor — 2–6 for weak, 0.6–2
//     for tight deadlines.
package workload

import (
	"errors"
	"fmt"
	"math/rand"

	"adaptrm/internal/job"
	"adaptrm/internal/opset"
)

// Level is the deadline tightness of a test case.
type Level int

const (
	// Weak deadlines use scale factors 2–6; every algorithm schedules
	// 100% of such cases in the paper.
	Weak Level = iota
	// Tight deadlines use scale factors 0.6–2.
	Tight
)

// String returns "weak" or "tight".
func (l Level) String() string {
	if l == Tight {
		return "tight"
	}
	return "weak"
}

// Case is one static scheduling problem: a set of jobs observed at T0.
type Case struct {
	// Name is a unique identifier like "tight/3jobs/0042".
	Name string
	// Level is the deadline tightness group.
	Level Level
	// Jobs is the job set at instant T0.
	Jobs job.Set
	// T0 is the scheduling instant.
	T0 float64
	// SingleApp reports whether all jobs run the same table.
	SingleApp bool
}

// Table3Counts returns the paper's Table III case counts:
// counts[level][jobs-1].
func Table3Counts() map[Level][4]int {
	return map[Level][4]int{
		Weak:  {15, 255, 255, 230},
		Tight: {35, 340, 340, 206},
	}
}

// Params tunes suite generation. The zero value (plus a library)
// reproduces the paper's setup.
type Params struct {
	// Counts per level and job count; nil means Table3Counts().
	Counts map[Level][4]int
	// Seed drives all randomness; suites are reproducible per seed.
	Seed int64
	// SingleAppShare is the fraction of single-application cases
	// (default 0.319).
	SingleAppShare float64
	// InitialShare is the fraction of cases whose jobs all start fresh
	// (default 0.226).
	InitialShare float64
	// MaxProgress bounds the progressed ratio of non-initial jobs
	// (default 0.9).
	MaxProgress float64
	// WeakFactor and TightFactor are the deadline scale ranges
	// (defaults 2–6 and 0.6–2).
	WeakFactor, TightFactor [2]float64
}

func (p *Params) setDefaults() {
	if p.Counts == nil {
		p.Counts = Table3Counts()
	}
	if p.SingleAppShare == 0 {
		p.SingleAppShare = 0.319
	}
	if p.InitialShare == 0 {
		p.InitialShare = 0.226
	}
	if p.MaxProgress == 0 {
		p.MaxProgress = 0.9
	}
	if p.WeakFactor == [2]float64{} {
		p.WeakFactor = [2]float64{2, 6}
	}
	if p.TightFactor == [2]float64{} {
		p.TightFactor = [2]float64{0.6, 2}
	}
}

// Suite generates the full test suite from the application library.
func Suite(lib *opset.Library, p Params) ([]Case, error) {
	if lib == nil || lib.Len() == 0 {
		return nil, errors.New("workload: empty library")
	}
	p.setDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	tables := lib.Tables()
	var cases []Case
	for _, level := range []Level{Weak, Tight} {
		counts := p.Counts[level]
		for nj := 1; nj <= 4; nj++ {
			for i := 0; i < counts[nj-1]; i++ {
				c := generate(rng, tables, level, nj, &p)
				c.Name = fmt.Sprintf("%s/%djobs/%04d", level, nj, i)
				cases = append(cases, c)
			}
		}
	}
	return cases, nil
}

// generate builds one case.
func generate(rng *rand.Rand, tables []*opset.Table, level Level, nj int, p *Params) Case {
	c := Case{Level: level, T0: 0}
	c.SingleApp = rng.Float64() < p.SingleAppShare
	var fixed *opset.Table
	if c.SingleApp {
		fixed = tables[rng.Intn(len(tables))]
	}
	allInitial := rng.Float64() < p.InitialShare
	lo, hi := p.WeakFactor[0], p.WeakFactor[1]
	if level == Tight {
		lo, hi = p.TightFactor[0], p.TightFactor[1]
	}
	for j := 0; j < nj; j++ {
		tbl := fixed
		if tbl == nil {
			tbl = tables[rng.Intn(len(tables))]
		}
		rho := 1.0
		if !allInitial && j > 0 {
			rho = 1 - rng.Float64()*p.MaxProgress
		}
		// Deadline: remaining time on a random point, scaled.
		pt := tbl.Points[rng.Intn(tbl.Len())]
		factor := lo + rng.Float64()*(hi-lo)
		deadline := c.T0 + pt.RemainingTime(rho)*factor
		c.Jobs = append(c.Jobs, &job.Job{
			ID:        j + 1,
			Table:     tbl,
			Arrival:   c.T0,
			Deadline:  deadline,
			Remaining: rho,
		})
	}
	return c
}

// CountByGroup tallies a suite like Table III: result[level][jobs-1].
func CountByGroup(cases []Case) map[Level][4]int {
	out := map[Level][4]int{}
	for _, c := range cases {
		arr := out[c.Level]
		arr[len(c.Jobs)-1]++
		out[c.Level] = arr
	}
	return out
}
