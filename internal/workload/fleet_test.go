package workload

import (
	"reflect"
	"sort"
	"testing"
)

func TestFleetTraceDeterministicPerSeed(t *testing.T) {
	p := FleetTraceParams{Devices: 4, Rate: 0.3, RateSpread: 0.5, Horizon: 80, Seed: 11}
	a, err := FleetTrace(testLib, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FleetTrace(testLib, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	p.Seed = 12
	c, err := FleetTrace(testLib, p)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestFleetTraceSortedAndAddressed(t *testing.T) {
	p := FleetTraceParams{Devices: 3, Rate: 0.4, Horizon: 60, Seed: 2}
	trace, err := FleetTrace(testLib, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	if !sort.SliceIsSorted(trace, func(i, j int) bool { return trace[i].At < trace[j].At }) {
		t.Error("trace not sorted by arrival")
	}
	seen := map[int]int{}
	for i, r := range trace {
		if r.Device < 0 || r.Device >= p.Devices {
			t.Fatalf("entry %d targets device %d", i, r.Device)
		}
		if r.Deadline <= r.At {
			t.Fatalf("entry %d: deadline %v not after arrival %v", i, r.Deadline, r.At)
		}
		if testLib.Get(r.App) == nil {
			t.Fatalf("entry %d: unknown app %q", i, r.App)
		}
		seen[r.Device]++
	}
	if len(seen) != p.Devices {
		t.Errorf("only %d of %d devices received requests", len(seen), p.Devices)
	}
}

func TestFleetTracePerDeviceRates(t *testing.T) {
	p := FleetTraceParams{
		Devices: 2, Rates: []float64{0.05, 1.0}, Horizon: 200, Seed: 3,
	}
	trace, err := FleetTrace(testLib, p)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := SplitByDevice(trace, p.Devices)
	if err != nil {
		t.Fatal(err)
	}
	if len(streams[1]) <= 2*len(streams[0]) {
		t.Errorf("rates ignored: device 0 got %d, device 1 got %d", len(streams[0]), len(streams[1]))
	}
}

func TestFleetTraceValidation(t *testing.T) {
	if _, err := FleetTrace(testLib, FleetTraceParams{Devices: 0, Rate: 1, Horizon: 10}); err == nil {
		t.Error("zero devices accepted")
	}
	if _, err := FleetTrace(testLib, FleetTraceParams{Devices: 2, Rate: 0, Horizon: 10}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := FleetTrace(testLib, FleetTraceParams{Devices: 2, Rate: 1, RateSpread: 1.5, Horizon: 10}); err == nil {
		t.Error("spread out of range accepted")
	}
	if _, err := FleetTrace(testLib, FleetTraceParams{Devices: 2, Rates: []float64{1}, Horizon: 10}); err == nil {
		t.Error("rate count mismatch accepted")
	}
	if _, err := SplitByDevice([]FleetRequest{{Device: 5}}, 2); err == nil {
		t.Error("out-of-range device accepted")
	}
}
