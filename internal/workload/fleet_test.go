package workload

import (
	"reflect"
	"sort"
	"testing"
)

func TestFleetTraceDeterministicPerSeed(t *testing.T) {
	p := FleetTraceParams{Devices: 4, Rate: 0.3, RateSpread: 0.5, Horizon: 80, Seed: 11}
	a, err := FleetTrace(testLib, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FleetTrace(testLib, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	p.Seed = 12
	c, err := FleetTrace(testLib, p)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestFleetTraceSortedAndAddressed(t *testing.T) {
	p := FleetTraceParams{Devices: 3, Rate: 0.4, Horizon: 60, Seed: 2}
	trace, err := FleetTrace(testLib, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	if !sort.SliceIsSorted(trace, func(i, j int) bool { return trace[i].At < trace[j].At }) {
		t.Error("trace not sorted by arrival")
	}
	seen := map[int]int{}
	for i, r := range trace {
		if r.Device < 0 || r.Device >= p.Devices {
			t.Fatalf("entry %d targets device %d", i, r.Device)
		}
		if r.Deadline <= r.At {
			t.Fatalf("entry %d: deadline %v not after arrival %v", i, r.Deadline, r.At)
		}
		if testLib.Get(r.App) == nil {
			t.Fatalf("entry %d: unknown app %q", i, r.App)
		}
		seen[r.Device]++
	}
	if len(seen) != p.Devices {
		t.Errorf("only %d of %d devices received requests", len(seen), p.Devices)
	}
}

func TestFleetTracePerDeviceRates(t *testing.T) {
	p := FleetTraceParams{
		Devices: 2, Rates: []float64{0.05, 1.0}, Horizon: 200, Seed: 3,
	}
	trace, err := FleetTrace(testLib, p)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := SplitByDevice(trace, p.Devices)
	if err != nil {
		t.Fatal(err)
	}
	if len(streams[1]) <= 2*len(streams[0]) {
		t.Errorf("rates ignored: device 0 got %d, device 1 got %d", len(streams[0]), len(streams[1]))
	}
}

// TestFleetTraceBursts: bursty generation multiplies every arrival
// event into BurstSize same-device requests; with a zero window all
// members of a burst arrive at the same instant, with a positive one
// they spread over at most BurstWindow. BurstSize ≤ 1 must reproduce
// the plain trace byte-for-byte.
func TestFleetTraceBursts(t *testing.T) {
	base := FleetTraceParams{Devices: 3, Rate: 0.2, Horizon: 100, Seed: 5}
	plain, err := FleetTrace(testLib, base)
	if err != nil {
		t.Fatal(err)
	}
	single := base
	single.BurstSize = 1
	same, err := FleetTrace(testLib, single)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, same) {
		t.Fatal("BurstSize 1 changed the plain trace")
	}

	bursty := base
	bursty.BurstSize = 4
	coincident, err := FleetTrace(testLib, bursty)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(coincident), 4*len(plain); got != want {
		t.Fatalf("burst expansion: %d requests, want %d", got, want)
	}
	// Every arrival time hosts a full burst per device: group by
	// (device, at) and check group sizes.
	groups := map[[2]float64]int{}
	for _, r := range coincident {
		groups[[2]float64{float64(r.Device), r.At}]++
		if r.Deadline <= r.At {
			t.Fatalf("burst member %+v has deadline before arrival", r)
		}
		if testLib.Get(r.App) == nil {
			t.Fatalf("burst member %+v names unknown app", r)
		}
	}
	bursts := 0
	for _, n := range groups {
		if n >= 4 {
			bursts++
		}
	}
	if bursts == 0 {
		t.Fatal("no coincident bursts with a zero window")
	}

	// A positive window spreads the extras but keeps them within it.
	bursty.BurstWindow = 0.5
	spread, err := FleetTrace(testLib, bursty)
	if err != nil {
		t.Fatal(err)
	}
	if len(spread) != len(coincident) {
		t.Fatalf("window changed the request count: %d vs %d", len(spread), len(coincident))
	}
	streams, err := SplitByDevice(spread, base.Devices)
	if err != nil {
		t.Fatal(err)
	}
	for d, s := range streams {
		for i := 1; i < len(s); i++ {
			if s[i].At < s[i-1].At {
				t.Fatalf("device %d stream not time-sorted at %d", d, i)
			}
		}
	}
	// Jitter never spills past the horizon (end-of-trace bursts shrink
	// their window instead).
	for _, r := range spread {
		if r.At > base.Horizon {
			t.Fatalf("burst member %+v past horizon %v", r, base.Horizon)
		}
	}
	// Determinism holds in bursty mode too.
	again, err := FleetTrace(testLib, bursty)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spread, again) {
		t.Fatal("bursty trace not deterministic per seed")
	}
}

func TestFleetTraceValidation(t *testing.T) {
	if _, err := FleetTrace(testLib, FleetTraceParams{Devices: 0, Rate: 1, Horizon: 10}); err == nil {
		t.Error("zero devices accepted")
	}
	if _, err := FleetTrace(testLib, FleetTraceParams{Devices: 2, Rate: 0, Horizon: 10}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := FleetTrace(testLib, FleetTraceParams{Devices: 2, Rate: 1, RateSpread: 1.5, Horizon: 10}); err == nil {
		t.Error("spread out of range accepted")
	}
	if _, err := FleetTrace(testLib, FleetTraceParams{Devices: 2, Rates: []float64{1}, Horizon: 10}); err == nil {
		t.Error("rate count mismatch accepted")
	}
	if _, err := SplitByDevice([]FleetRequest{{Device: 5}}, 2); err == nil {
		t.Error("out-of-range device accepted")
	}
	if _, err := FleetTrace(testLib, FleetTraceParams{Devices: 2, Rate: 1, Horizon: 10, BurstSize: -1}); err == nil {
		t.Error("negative burst size accepted")
	}
	if _, err := FleetTrace(testLib, FleetTraceParams{Devices: 2, Rate: 1, Horizon: 10, BurstWindow: -0.1}); err == nil {
		t.Error("negative burst window accepted")
	}
}
