package workload

import (
	"math"
	"testing"

	"adaptrm/internal/dse"
	"adaptrm/internal/opset"
	"adaptrm/internal/platform"
)

var testLib = func() *opset.Library {
	lib, err := dse.StandardLibrary(platform.OdroidXU4())
	if err != nil {
		panic(err)
	}
	return lib
}()

func TestSuiteReproducesTable3(t *testing.T) {
	cases, err := Suite(testLib, Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 1676 {
		t.Fatalf("suite has %d cases, want 1676", len(cases))
	}
	got := CountByGroup(cases)
	want := Table3Counts()
	for level, arr := range want {
		if got[level] != arr {
			t.Errorf("%v counts = %v, want %v", level, got[level], arr)
		}
	}
}

func TestSuiteJobsValid(t *testing.T) {
	cases, err := Suite(testLib, Params{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, c := range cases {
		if names[c.Name] {
			t.Fatalf("duplicate case name %q", c.Name)
		}
		names[c.Name] = true
		if err := c.Jobs.Validate(c.T0); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		for j, jb := range c.Jobs {
			if j == 0 && jb.Remaining != 1 {
				t.Errorf("%s: first job progressed (ρ=%v)", c.Name, jb.Remaining)
			}
			if jb.Remaining < 0.1-1e-9 {
				t.Errorf("%s: ρ=%v below progress cap", c.Name, jb.Remaining)
			}
		}
		if c.SingleApp {
			for _, jb := range c.Jobs {
				if jb.Table != c.Jobs[0].Table {
					t.Errorf("%s: single-app case mixes tables", c.Name)
				}
			}
		}
	}
}

// Statistical shape: single-app share near 31.9%, initial share near
// 22.6%, and tight deadlines strictly tighter than weak on average.
func TestSuiteDistributions(t *testing.T) {
	cases, err := Suite(testLib, Params{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	single, initial := 0, 0
	var weakSlack, tightSlack []float64
	for _, c := range cases {
		if c.SingleApp {
			single++
		}
		allInit := true
		for _, jb := range c.Jobs {
			if jb.Remaining != 1 {
				allInit = false
			}
		}
		if allInit {
			initial++
		}
		for _, jb := range c.Jobs {
			rel := jb.Deadline / (jb.Table.FastestTime() * jb.Remaining)
			if c.Level == Weak {
				weakSlack = append(weakSlack, rel)
			} else {
				tightSlack = append(tightSlack, rel)
			}
		}
	}
	n := float64(len(cases))
	if share := float64(single) / n; math.Abs(share-0.319) > 0.05 {
		t.Errorf("single-app share = %.3f, want ≈0.319", share)
	}
	// All 1-job cases count as "all initial" too; the paper's 22.6% is
	// over the full suite, tolerate a wider band.
	if share := float64(initial) / n; share < 0.15 || share > 0.40 {
		t.Errorf("initial share = %.3f, want ≈0.226 band", share)
	}
	mw, mt := 0.0, 0.0
	for _, v := range weakSlack {
		mw += v
	}
	for _, v := range tightSlack {
		mt += v
	}
	mw /= float64(len(weakSlack))
	mt /= float64(len(tightSlack))
	if mt >= mw {
		t.Errorf("tight deadlines (%.2f) not tighter than weak (%.2f)", mt, mw)
	}
}

func TestSuiteReproducible(t *testing.T) {
	a, _ := Suite(testLib, Params{Seed: 7})
	b, _ := Suite(testLib, Params{Seed: 7})
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Jobs) != len(b[i].Jobs) {
			t.Fatal("suite not reproducible")
		}
		for j := range a[i].Jobs {
			if a[i].Jobs[j].Deadline != b[i].Jobs[j].Deadline ||
				a[i].Jobs[j].Remaining != b[i].Jobs[j].Remaining {
				t.Fatal("job parameters not reproducible")
			}
		}
	}
	c, _ := Suite(testLib, Params{Seed: 8})
	diff := false
	for i := range a {
		if a[i].Jobs[0].Deadline != c[i].Jobs[0].Deadline {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produce identical suites")
	}
}

func TestSuiteErrors(t *testing.T) {
	if _, err := Suite(nil, Params{}); err == nil {
		t.Error("nil library accepted")
	}
	if _, err := Suite(opset.NewLibrary(), Params{}); err == nil {
		t.Error("empty library accepted")
	}
}

func TestCustomCounts(t *testing.T) {
	p := Params{Seed: 1, Counts: map[Level][4]int{Weak: {2, 0, 0, 0}, Tight: {0, 3, 0, 0}}}
	cases, err := Suite(testLib, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 5 {
		t.Fatalf("%d cases, want 5", len(cases))
	}
}

func TestLevelString(t *testing.T) {
	if Weak.String() != "weak" || Tight.String() != "tight" {
		t.Error("level strings wrong")
	}
}

func TestTrace(t *testing.T) {
	reqs, err := Trace(testLib, TraceParams{Rate: 0.5, Horizon: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) < 20 || len(reqs) > 90 {
		t.Errorf("%d requests for rate 0.5 over 100s", len(reqs))
	}
	prev := 0.0
	for _, r := range reqs {
		if r.At < prev {
			t.Fatal("trace not time-ordered")
		}
		prev = r.At
		if r.Deadline <= r.At {
			t.Errorf("request at %v has deadline %v", r.At, r.Deadline)
		}
		if testLib.Get(r.App) == nil {
			t.Errorf("request names unknown app %q", r.App)
		}
	}
	if _, err := Trace(nil, TraceParams{Rate: 1, Horizon: 1}); err == nil {
		t.Error("nil library accepted")
	}
	if _, err := Trace(testLib, TraceParams{Rate: 0, Horizon: 1}); err == nil {
		t.Error("zero rate accepted")
	}
}
