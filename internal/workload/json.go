package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"adaptrm/internal/job"
	"adaptrm/internal/opset"
)

// suiteJSON is the on-disk representation of a test suite. Jobs refer to
// operating-point tables by name; loading resolves them against a
// library so that suites stay small and portable.
type suiteJSON struct {
	Cases []caseJSON `json:"cases"`
}

type caseJSON struct {
	Name      string    `json:"name"`
	Level     string    `json:"level"`
	T0        float64   `json:"t0"`
	SingleApp bool      `json:"single_app"`
	Jobs      []jobJSON `json:"jobs"`
}

type jobJSON struct {
	ID        int     `json:"id"`
	App       string  `json:"app"`
	Arrival   float64 `json:"arrival"`
	Deadline  float64 `json:"deadline"`
	Remaining float64 `json:"remaining"`
}

// WriteSuiteJSON serializes a suite (indented) to w.
func WriteSuiteJSON(w io.Writer, cases []Case) error {
	out := suiteJSON{Cases: make([]caseJSON, 0, len(cases))}
	for _, c := range cases {
		cj := caseJSON{Name: c.Name, Level: c.Level.String(), T0: c.T0, SingleApp: c.SingleApp}
		for _, j := range c.Jobs {
			cj.Jobs = append(cj.Jobs, jobJSON{
				ID: j.ID, App: j.Table.Name(), Arrival: j.Arrival,
				Deadline: j.Deadline, Remaining: j.Remaining,
			})
		}
		out.Cases = append(out.Cases, cj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadSuiteJSON parses a suite written by WriteSuiteJSON, resolving
// application names against the library and validating every case.
func ReadSuiteJSON(r io.Reader, lib *opset.Library) ([]Case, error) {
	var raw suiteJSON
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("workload: decoding suite: %w", err)
	}
	cases := make([]Case, 0, len(raw.Cases))
	for i, cj := range raw.Cases {
		c := Case{Name: cj.Name, T0: cj.T0, SingleApp: cj.SingleApp}
		switch cj.Level {
		case "weak":
			c.Level = Weak
		case "tight":
			c.Level = Tight
		default:
			return nil, fmt.Errorf("workload: case %d: unknown level %q", i, cj.Level)
		}
		for _, jj := range cj.Jobs {
			tbl := lib.Get(jj.App)
			if tbl == nil {
				return nil, fmt.Errorf("workload: case %q: unknown application %q", cj.Name, jj.App)
			}
			c.Jobs = append(c.Jobs, &job.Job{
				ID: jj.ID, Table: tbl, Arrival: jj.Arrival,
				Deadline: jj.Deadline, Remaining: jj.Remaining,
			})
		}
		if err := c.Jobs.Validate(c.T0); err != nil {
			return nil, fmt.Errorf("workload: case %q: %w", cj.Name, err)
		}
		cases = append(cases, c)
	}
	return cases, nil
}

// WriteTraceJSON serializes a dynamic trace (indented) to w.
func WriteTraceJSON(w io.Writer, trace []Request) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(trace)
}

// ReadTraceJSON parses a trace written by WriteTraceJSON, validating
// application names against the library.
func ReadTraceJSON(r io.Reader, lib *opset.Library) ([]Request, error) {
	var trace []Request
	if err := json.NewDecoder(r).Decode(&trace); err != nil {
		return nil, fmt.Errorf("workload: decoding trace: %w", err)
	}
	for i, req := range trace {
		if lib.Get(req.App) == nil {
			return nil, fmt.Errorf("workload: trace entry %d: unknown application %q", i, req.App)
		}
		if req.Deadline <= req.At {
			return nil, fmt.Errorf("workload: trace entry %d: deadline %v not after arrival %v", i, req.Deadline, req.At)
		}
	}
	return trace, nil
}
