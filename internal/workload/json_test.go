package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestSuiteJSONRoundTrip(t *testing.T) {
	counts := map[Level][4]int{Weak: {2, 2, 0, 0}, Tight: {1, 0, 2, 1}}
	cases, err := Suite(testLib, Params{Seed: 5, Counts: counts})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSuiteJSON(&buf, cases); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSuiteJSON(&buf, testLib)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cases) {
		t.Fatalf("round trip: %d cases, want %d", len(got), len(cases))
	}
	for i := range cases {
		a, b := cases[i], got[i]
		if a.Name != b.Name || a.Level != b.Level || a.T0 != b.T0 || a.SingleApp != b.SingleApp {
			t.Fatalf("case %d metadata mismatch", i)
		}
		if len(a.Jobs) != len(b.Jobs) {
			t.Fatalf("case %d job count mismatch", i)
		}
		for j := range a.Jobs {
			if a.Jobs[j].ID != b.Jobs[j].ID ||
				a.Jobs[j].Deadline != b.Jobs[j].Deadline ||
				a.Jobs[j].Remaining != b.Jobs[j].Remaining ||
				a.Jobs[j].Table.Name() != b.Jobs[j].Table.Name() {
				t.Fatalf("case %d job %d mismatch", i, j)
			}
		}
	}
}

func TestReadSuiteJSONRejects(t *testing.T) {
	if _, err := ReadSuiteJSON(strings.NewReader("{bad"), testLib); err == nil {
		t.Error("garbage accepted")
	}
	unknownApp := `{"cases":[{"name":"x","level":"weak","t0":0,
		"jobs":[{"id":1,"app":"nope","deadline":5,"remaining":1}]}]}`
	if _, err := ReadSuiteJSON(strings.NewReader(unknownApp), testLib); err == nil {
		t.Error("unknown app accepted")
	}
	badLevel := `{"cases":[{"name":"x","level":"medium","t0":0,"jobs":[]}]}`
	if _, err := ReadSuiteJSON(strings.NewReader(badLevel), testLib); err == nil {
		t.Error("bad level accepted")
	}
	app := testLib.Names()[0]
	badJob := `{"cases":[{"name":"x","level":"weak","t0":0,
		"jobs":[{"id":1,"app":"` + app + `","deadline":5,"remaining":7}]}]}`
	if _, err := ReadSuiteJSON(strings.NewReader(badJob), testLib); err == nil {
		t.Error("invalid job accepted")
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	trace, err := Trace(testLib, TraceParams{Rate: 0.3, Horizon: 60, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTraceJSON(&buf, trace); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceJSON(&buf, testLib)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(trace) {
		t.Fatalf("round trip: %d, want %d", len(got), len(trace))
	}
	for i := range trace {
		if trace[i] != got[i] {
			t.Fatalf("entry %d mismatch", i)
		}
	}
}

func TestReadTraceJSONRejects(t *testing.T) {
	if _, err := ReadTraceJSON(strings.NewReader("nope"), testLib); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadTraceJSON(strings.NewReader(`[{"At":0,"App":"nope","Deadline":5}]`), testLib); err == nil {
		t.Error("unknown app accepted")
	}
	app := testLib.Names()[0]
	if _, err := ReadTraceJSON(strings.NewReader(`[{"At":5,"App":"`+app+`","Deadline":3}]`), testLib); err == nil {
		t.Error("deadline before arrival accepted")
	}
}
