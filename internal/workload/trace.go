package workload

import (
	"errors"
	"math/rand"
	"sort"

	"adaptrm/internal/opset"
)

// Request is one arrival in a dynamic trace: at time At, the named
// application variant is requested with the given absolute deadline.
type Request struct {
	// At is the arrival time.
	At float64
	// App names the requested table in the library.
	App string
	// Deadline is the absolute deadline.
	Deadline float64
}

// TraceParams tunes dynamic trace generation.
type TraceParams struct {
	// Rate is the mean arrival rate in requests per second (Poisson).
	Rate float64
	// Horizon is the generation window in seconds.
	Horizon float64
	// Factor is the deadline scale range relative to a random operating
	// point's full execution time (default 1.2–3).
	Factor [2]float64
	// Seed drives all randomness.
	Seed int64
}

// Trace samples a Poisson request stream over the library, emulating the
// dynamic multi-application workloads motivating the paper.
func Trace(lib *opset.Library, p TraceParams) ([]Request, error) {
	if lib == nil || lib.Len() == 0 {
		return nil, errors.New("workload: empty library")
	}
	if p.Rate <= 0 || p.Horizon <= 0 {
		return nil, errors.New("workload: rate and horizon must be positive")
	}
	if p.Factor == [2]float64{} {
		p.Factor = [2]float64{1.2, 3}
	}
	rng := rand.New(rand.NewSource(p.Seed))
	tables := lib.Tables()
	var out []Request
	t := 0.0
	for {
		t += rng.ExpFloat64() / p.Rate
		if t >= p.Horizon {
			break
		}
		tbl := tables[rng.Intn(len(tables))]
		pt := tbl.Points[rng.Intn(tbl.Len())]
		factor := p.Factor[0] + rng.Float64()*(p.Factor[1]-p.Factor[0])
		out = append(out, Request{
			At:       t,
			App:      tbl.Name(),
			Deadline: t + pt.Time*factor,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out, nil
}
