package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"adaptrm/internal/opset"
)

// FleetRequest is one arrival in a multi-tenant fleet trace: at time At,
// the named application is requested on the given device with the given
// absolute deadline. Times are per-device virtual clocks sharing a
// common origin, so a merged trace can be replayed in global time order.
type FleetRequest struct {
	// Device indexes the target device in [0, Devices).
	Device int `json:"device"`
	// At is the arrival time.
	At float64 `json:"at"`
	// App names the requested table in the library.
	App string `json:"app"`
	// Deadline is the absolute deadline.
	Deadline float64 `json:"deadline"`
}

// FleetTraceParams tunes multi-tenant fleet trace generation. Every
// device runs an independent Poisson arrival process; all randomness
// (per-device sub-seeds, rates, applications, deadlines) derives from the
// single Seed, so a trace is fully reproducible.
type FleetTraceParams struct {
	// Devices is the number of devices in the fleet.
	Devices int
	// Rate is the base mean arrival rate per device in requests per
	// second. Ignored when Rates is set.
	Rate float64
	// RateSpread makes devices heterogeneous: device rates are drawn
	// uniformly from [Rate·(1−S), Rate·(1+S)] with S = RateSpread,
	// which must lie in [0, 1) (FleetTrace rejects other values).
	// Zero keeps all devices at Rate.
	RateSpread float64
	// Rates optionally fixes one rate per device (len must equal
	// Devices), overriding Rate and RateSpread.
	Rates []float64
	// Horizon is the generation window in seconds.
	Horizon float64
	// Factor is the deadline scale range relative to a random operating
	// point's full execution time (default 1.2–3, as in TraceParams).
	Factor [2]float64
	// BurstSize makes the traffic bursty: every Poisson arrival event
	// brings BurstSize requests instead of one — the base request plus
	// BurstSize−1 extra draws of application, operating point and
	// deadline factor. This is the traffic shape batched admission
	// coalesces: same-device arrivals clustered inside a small window.
	// 0 or 1 keeps plain Poisson arrivals (and the exact request
	// streams earlier seeds produced).
	BurstSize int
	// BurstWindow spreads each burst's extra arrivals uniformly over
	// (At, At+BurstWindow]. Zero makes bursts exactly coincident —
	// simultaneous arrivals, which a batch window of any width
	// coalesces without changing admission behaviour.
	BurstWindow float64
	// Seed drives all randomness.
	Seed int64
}

// FleetTrace samples one Poisson request stream per device and merges
// them into a single trace sorted by arrival time (ties by device). Each
// device's sub-stream is identical to a workload.Trace with the derived
// per-device seed, so single-device behaviour is unchanged by fleet
// membership. With BurstSize > 1 every arrival event expands into a
// burst of same-device requests clustered within BurstWindow — the
// bursty multi-tenant regime batched admission amortises.
func FleetTrace(lib *opset.Library, p FleetTraceParams) ([]FleetRequest, error) {
	if p.Devices <= 0 {
		return nil, errors.New("workload: fleet needs at least one device")
	}
	if p.Rates != nil && len(p.Rates) != p.Devices {
		return nil, fmt.Errorf("workload: %d rates for %d devices", len(p.Rates), p.Devices)
	}
	if p.Rates == nil && p.Rate <= 0 {
		return nil, errors.New("workload: rate must be positive")
	}
	if p.RateSpread < 0 || p.RateSpread >= 1 {
		return nil, fmt.Errorf("workload: rate spread %v out of [0,1)", p.RateSpread)
	}
	if p.BurstSize < 0 || p.BurstWindow < 0 {
		return nil, fmt.Errorf("workload: negative burst size %d or window %v", p.BurstSize, p.BurstWindow)
	}
	if lib == nil || lib.Len() == 0 {
		return nil, errors.New("workload: empty library")
	}
	// Resolve the deadline-factor default once and hand the resolved
	// value to Trace, so base requests and their burst siblings always
	// sample from the same range.
	if p.Factor == ([2]float64{}) {
		p.Factor = [2]float64{1.2, 3}
	}
	var tables []*opset.Table
	if p.BurstSize > 1 {
		tables = lib.Tables()
	}
	master := rand.New(rand.NewSource(p.Seed))
	var out []FleetRequest
	for d := 0; d < p.Devices; d++ {
		// Draw the device's seed and rate from the master stream in a
		// fixed order so every device's sub-stream is a pure function of
		// (Seed, device index).
		subSeed := master.Int63()
		rate := p.Rate
		if p.Rates != nil {
			rate = p.Rates[d]
		} else if p.RateSpread > 0 {
			rate *= 1 - p.RateSpread + 2*p.RateSpread*master.Float64()
		}
		var burst *rand.Rand
		if p.BurstSize > 1 {
			// Derive the burst stream from the device's own sub-seed
			// (not the master) so the base arrivals are byte-identical
			// to the non-bursty trace of the same seed: bursty mode
			// only adds requests on top of the plain ones.
			burst = rand.New(rand.NewSource(subSeed ^ 0x5DEECE66D))
		}
		reqs, err := Trace(lib, TraceParams{
			Rate: rate, Horizon: p.Horizon, Factor: p.Factor, Seed: subSeed,
		})
		if err != nil {
			return nil, fmt.Errorf("workload: device %d: %w", d, err)
		}
		for _, r := range reqs {
			out = append(out, FleetRequest{Device: d, At: r.At, App: r.App, Deadline: r.Deadline})
			// A burst near the end of the trace shrinks its jitter
			// window so no member lands past the horizon (base arrivals
			// are strictly inside it).
			window := p.BurstWindow
			if r.At+window > p.Horizon {
				window = p.Horizon - r.At
			}
			for k := 1; k < p.BurstSize; k++ {
				// Extra burst members re-sample application, point and
				// deadline factor the way Trace does, at the (optionally
				// jittered) burst time.
				at := r.At
				if p.BurstWindow > 0 {
					at += burst.Float64() * window
				}
				tbl := tables[burst.Intn(len(tables))]
				pt := tbl.Points[burst.Intn(tbl.Len())]
				fac := p.Factor[0] + burst.Float64()*(p.Factor[1]-p.Factor[0])
				out = append(out, FleetRequest{
					Device: d, At: at, App: tbl.Name(), Deadline: at + pt.Time*fac,
				})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Device < out[j].Device
	})
	return out, nil
}

// SplitByDevice partitions a merged fleet trace into per-device streams,
// each sorted by arrival time. The result always has exactly devices
// entries (empty slices for idle devices); requests addressed outside
// [0, devices) are reported as an error.
func SplitByDevice(trace []FleetRequest, devices int) ([][]FleetRequest, error) {
	out := make([][]FleetRequest, devices)
	for i, r := range trace {
		if r.Device < 0 || r.Device >= devices {
			return nil, fmt.Errorf("workload: trace entry %d targets device %d of %d", i, r.Device, devices)
		}
		out[r.Device] = append(out[r.Device], r)
	}
	return out, nil
}
