package core

import (
	"errors"
	"math"
	"testing"

	"adaptrm/internal/job"
	"adaptrm/internal/motiv"
	"adaptrm/internal/opset"
	"adaptrm/internal/platform"
	"adaptrm/internal/sched"
)

func TestName(t *testing.T) {
	if got := New().Name(); got != "MMKP-MDF" {
		t.Errorf("Name = %q", got)
	}
	if got := NewWithOptions(Options{Selection: SelectEDF}).Name(); got != "MMKP-EDF" {
		t.Errorf("Name = %q", got)
	}
	if got := NewWithOptions(Options{Selection: SelectArrival}).Name(); got != "MMKP-FCFS" {
		t.Errorf("Name = %q", got)
	}
	if Selection(99).String() != "?" {
		t.Error("unknown selection label")
	}
}

// Single job σ1 at t=0 with deadline 9: the energy-optimal feasible point
// is 2L1B (ξ=8.90, underlined in Table II).
func TestSingleJobPicksUnderlinedPoint(t *testing.T) {
	jobs := job.Set{{ID: 1, Table: motiv.Lambda1(), Deadline: 9, Remaining: 1}}
	plat := motiv.Platform()
	k, err := New().Schedule(jobs, plat, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Validate(plat, jobs, 0); err != nil {
		t.Fatal(err)
	}
	if got := k.Energy(jobs); math.Abs(got-8.90) > 1e-9 {
		t.Errorf("energy = %v, want 8.90", got)
	}
	if len(k.Segments) != 1 {
		t.Fatalf("segments = %d", len(k.Segments))
	}
	pt := jobs[0].Table.Points[k.Segments[0].Placements[0].Point]
	if !pt.Alloc.Equal(platform.Alloc{2, 1}) {
		t.Errorf("picked %v, want 2L1B", pt.Alloc)
	}
}

// Scenario S1 at t=1: MMKP-MDF must reproduce the adaptive schedule of
// Fig. 1(c): σ2 on 2L1B during [1,4), σ1 suspended, then σ1 on 2L1B;
// total energy 14.63 J including σ1's first second.
func TestScenarioS1ReproducesFig1c(t *testing.T) {
	jobs := job.Set(motiv.ScenarioS1AtT1())
	plat := motiv.Platform()
	k, err := New().Schedule(jobs, plat, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Validate(plat, jobs, 1); err != nil {
		t.Fatal(err)
	}
	total := k.Energy(jobs) + motiv.EnergyBeforeT1
	if math.Abs(total-14.63) > 0.01 {
		t.Errorf("S1 energy = %.3f, want 14.63", total)
	}
	if got := k.FinishTime(2); math.Abs(got-4.0) > 1e-6 {
		t.Errorf("σ2 finishes at %v, want 4.0", got)
	}
	if got := k.FinishTime(1); got > 9+1e-9 {
		t.Errorf("σ1 finishes at %v after deadline", got)
	}
}

// Scenario S2 (σ2 deadline 4): fixed mappers reject it, the adaptive
// MMKP-MDF must still find the Fig. 1(c) schedule.
func TestScenarioS2Schedulable(t *testing.T) {
	jobs := job.Set(motiv.ScenarioS2AtT1())
	plat := motiv.Platform()
	k, err := New().Schedule(jobs, plat, 1)
	if err != nil {
		t.Fatalf("S2 rejected by MMKP-MDF: %v", err)
	}
	if err := k.Validate(plat, jobs, 1); err != nil {
		t.Fatal(err)
	}
	total := k.Energy(jobs) + motiv.EnergyBeforeT1
	if math.Abs(total-14.63) > 0.01 {
		t.Errorf("S2 energy = %.3f, want 14.63", total)
	}
}

// An impossible job set must yield ErrInfeasible.
func TestInfeasibleRejected(t *testing.T) {
	jobs := job.Set{
		{ID: 1, Table: motiv.Lambda1(), Deadline: 1, Remaining: 1}, // fastest needs 4.7s
	}
	_, err := New().Schedule(jobs, motiv.Platform(), 0)
	if !errors.Is(err, sched.ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
	// Two copies of λ2 with deadlines only one can make.
	jobs = job.Set{
		{ID: 1, Table: motiv.Lambda2(), Deadline: 2, Remaining: 1},
		{ID: 2, Table: motiv.Lambda2(), Deadline: 2, Remaining: 1},
	}
	_, err = New().Schedule(jobs, motiv.Platform(), 0)
	if !errors.Is(err, sched.ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

// Invalid inputs are reported, not scheduled.
func TestInvalidJobs(t *testing.T) {
	jobs := job.Set{{ID: 1, Table: motiv.Lambda1(), Deadline: 9, Remaining: 2}}
	if _, err := New().Schedule(jobs, motiv.Platform(), 0); err == nil {
		t.Error("invalid ρ accepted")
	}
	if _, err := New().Schedule(nil, motiv.Platform(), 0); err == nil {
		t.Error("empty set accepted")
	}
}

// All selection policies must produce valid (if different) schedules on a
// feasible 3-job workload.
func TestSelectionPoliciesValid(t *testing.T) {
	jobs := job.Set{
		{ID: 1, Table: motiv.Lambda1(), Arrival: 0, Deadline: 30, Remaining: 1},
		{ID: 2, Table: motiv.Lambda2(), Arrival: 0.5, Deadline: 18, Remaining: 0.7},
		{ID: 3, Table: motiv.Lambda2(), Arrival: 1, Deadline: 25, Remaining: 1},
	}
	plat := motiv.Platform()
	for _, sel := range []Selection{SelectMDF, SelectEDF, SelectArrival} {
		s := NewWithOptions(Options{Selection: sel})
		k, err := s.Schedule(jobs.Clone(), plat, 2)
		if err != nil {
			t.Errorf("%v: %v", sel, err)
			continue
		}
		if err := k.Validate(plat, jobs, 2); err != nil {
			t.Errorf("%v: invalid schedule: %v", sel, err)
		}
	}
}

// MDF must prefer the job with the larger best-to-second-best gap: with
// both jobs wanting 2L1B, λ1 (gap 1.38 J) is placed before λ2 (gap
// 0.71 J) and wins the point, which is what makes Fig. 1(c) possible.
func TestMDFOrdering(t *testing.T) {
	jobs := job.Set(motiv.ScenarioS1AtT1())
	plat := motiv.Platform()
	k, err := New().Schedule(jobs, plat, 1)
	if err != nil {
		t.Fatal(err)
	}
	// σ1 must hold 2L1B in its segments (it won the contested point).
	for _, seg := range k.Segments {
		for _, p := range seg.Placements {
			if p.JobID == 1 {
				pt := jobs.ByID(1).Table.Points[p.Point]
				if !pt.Alloc.Equal(platform.Alloc{2, 1}) {
					t.Errorf("σ1 runs on %v, want 2L1B", pt.Alloc)
				}
			}
		}
	}
}

// The schedule must never mutate the caller's job set.
func TestDoesNotMutateJobs(t *testing.T) {
	jobs := job.Set(motiv.ScenarioS1AtT1())
	before := jobs.Clone()
	if _, err := New().Schedule(jobs, motiv.Platform(), 1); err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].Remaining != before[i].Remaining || jobs[i].Deadline != before[i].Deadline {
			t.Errorf("job %d mutated", jobs[i].ID)
		}
	}
}

// Jobs with equal MDF difference are selected deterministically (by ID).
func TestDeterminism(t *testing.T) {
	tbl := func() *opset.Table { return motiv.Lambda2() }
	jobs := job.Set{
		{ID: 1, Table: tbl(), Deadline: 40, Remaining: 1},
		{ID: 2, Table: tbl(), Deadline: 40, Remaining: 1},
	}
	plat := motiv.Platform()
	k1, err1 := New().Schedule(jobs, plat, 0)
	k2, err2 := New().Schedule(jobs, plat, 0)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if k1.String() != k2.String() {
		t.Errorf("non-deterministic schedules:\n%s\nvs\n%s", k1, k2)
	}
}
