package core

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"adaptrm/internal/job"
	"adaptrm/internal/motiv"
	"adaptrm/internal/opset"
	"adaptrm/internal/platform"
	"adaptrm/internal/sched"
	"adaptrm/internal/schedule"
)

// referenceSchedule is the retained naive implementation of Algorithm 1
// (the pre-scratch Schedule): map assignments cloned per trial, the
// candidate list rebuilt and stable-sorted every round, and the schedule
// taken from the last successful sched.PackEDF. It exists only as the
// equivalence oracle for the allocation-free rewrite.
func referenceSchedule(opt Options, jobs job.Set, plat platform.Platform, t float64) (*schedule.Schedule, error) {
	if err := jobs.Validate(t); err != nil {
		return nil, err
	}
	m := plat.NumTypes()
	horizon := jobs.MaxDeadline() - t
	containers := platform.NewTimeVec(m)
	for i, c := range plat.Capacity() {
		containers[i] = float64(c) * horizon
	}
	asg := make(sched.Assignment, len(jobs))
	var best *schedule.Schedule
	for len(asg) < len(jobs) {
		cand := referenceNextJob(opt, jobs, asg, containers, t)
		if cand == nil {
			break
		}
		placed := false
		for _, ptIdx := range cand.pts {
			trial := asg.Clone()
			trial[cand.j.ID] = ptIdx
			k, err := sched.PackEDF(jobs, trial, plat, t)
			if err != nil {
				continue
			}
			asg = trial
			best = k
			pt := cand.j.Table.Points[ptIdx]
			containers.SubUsage(pt.Alloc, pt.RemainingTime(cand.j.Remaining))
			placed = true
			break
		}
		if !placed {
			return nil, sched.ErrInfeasible
		}
	}
	if best == nil {
		return nil, sched.ErrInfeasible
	}
	best.Normalize()
	return best, nil
}

type refCandidate struct {
	j    *job.Job
	pts  []int
	diff float64
}

func referenceNextJob(opt Options, jobs job.Set, asg sched.Assignment, containers platform.TimeVec, t float64) *refCandidate {
	var cands []*refCandidate
	for _, j := range jobs {
		if _, done := asg[j.ID]; done {
			continue
		}
		pts := sched.FeasiblePoints(j, t, containers)
		if len(pts) == 0 {
			return &refCandidate{j: j}
		}
		c := &refCandidate{j: j, pts: pts}
		if len(pts) == 1 {
			c.diff = math.Inf(1)
		} else {
			best := j.Table.Points[pts[0]].RemainingEnergy(j.Remaining)
			second := j.Table.Points[pts[1]].RemainingEnergy(j.Remaining)
			c.diff = second - best
		}
		cands = append(cands, c)
	}
	if len(cands) == 0 {
		return nil
	}
	switch opt.Selection {
	case SelectEDF:
		sort.SliceStable(cands, func(a, b int) bool {
			if cands[a].j.Deadline != cands[b].j.Deadline {
				return cands[a].j.Deadline < cands[b].j.Deadline
			}
			return cands[a].j.ID < cands[b].j.ID
		})
	case SelectArrival:
		sort.SliceStable(cands, func(a, b int) bool {
			if cands[a].j.Arrival != cands[b].j.Arrival {
				return cands[a].j.Arrival < cands[b].j.Arrival
			}
			return cands[a].j.ID < cands[b].j.ID
		})
	default:
		sort.SliceStable(cands, func(a, b int) bool {
			if cands[a].diff != cands[b].diff {
				return cands[a].diff > cands[b].diff
			}
			return cands[a].j.ID < cands[b].j.ID
		})
	}
	return cands[0]
}

// randomEquivJobs draws a random job set over the motivational tables
// with a mix of progress ratios, arrivals and deadline tightness.
func randomEquivJobs(rng *rand.Rand) job.Set {
	tables := []*opset.Table{motiv.Lambda1(), motiv.Lambda2()}
	n := 1 + rng.Intn(5)
	jobs := make(job.Set, 0, n)
	for i := 0; i < n; i++ {
		tbl := tables[rng.Intn(len(tables))]
		rho := 1.0
		if rng.Float64() < 0.6 {
			rho = 0.05 + rng.Float64()*0.95
		}
		pt := tbl.Points[rng.Intn(tbl.Len())]
		factor := 0.6 + rng.Float64()*3
		jobs = append(jobs, &job.Job{
			ID:        i + 1,
			Table:     tbl,
			Arrival:   -rng.Float64() * 2,
			Deadline:  pt.RemainingTime(rho)*factor + 1e-6,
			Remaining: rho,
		})
	}
	return jobs
}

// The allocation-free Schedule must be byte-identical to the retained
// reference — same segments, same placement order, same energy, same
// error class — across random job sets and all three selection
// policies. One scheduler instance per policy is reused throughout, so
// stale scratch state between calls would surface here.
func TestScheduleMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	plat := motiv.Platform()
	rounds := 600
	if testing.Short() {
		rounds = 100
	}
	for _, sel := range []Selection{SelectMDF, SelectEDF, SelectArrival} {
		opt := Options{Selection: sel}
		s := NewWithOptions(opt)
		for round := 0; round < rounds; round++ {
			jobs := randomEquivJobs(rng)
			want, wantErr := referenceSchedule(opt, jobs, plat, 0)
			got, gotErr := s.Schedule(jobs, plat, 0)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%v round %d: reference err %v, got err %v\njobs: %v",
					sel, round, wantErr, gotErr, jobs)
			}
			if wantErr != nil {
				if errors.Is(wantErr, sched.ErrInfeasible) != errors.Is(gotErr, sched.ErrInfeasible) {
					t.Fatalf("%v round %d: error class mismatch: %v vs %v", sel, round, wantErr, gotErr)
				}
				continue
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%v round %d: schedules differ\nreference:\n%s\ngot:\n%s\njobs: %v",
					sel, round, want, got, jobs)
			}
			if e, g := want.Energy(jobs), got.Energy(jobs); e != g {
				t.Fatalf("%v round %d: energy %v vs %v", sel, round, e, g)
			}
		}
	}
}

// The MDF hot path must stay (near-)allocation-free: a warm scheduler
// performs only the result materialisation (schedule struct, segment
// list, one placement slice per segment) plus the job-set validation
// map. The bound is deliberately tight — the pre-Packer implementation
// spent >100 allocations on this scenario.
func TestScheduleWarmAllocs(t *testing.T) {
	jobs := job.Set(motiv.ScenarioS1AtT1())
	plat := motiv.Platform()
	s := New()
	if _, err := s.Schedule(jobs, plat, 1); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.Schedule(jobs, plat, 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 10 {
		t.Fatalf("warm Schedule allocates %v times per run, want ≤ 10", allocs)
	}
}
