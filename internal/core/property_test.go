package core_test

import (
	"errors"
	"math/rand"
	"testing"

	"adaptrm/internal/core"
	"adaptrm/internal/exmem"
	"adaptrm/internal/job"
	"adaptrm/internal/lagrange"
	"adaptrm/internal/motiv"
	"adaptrm/internal/opset"
	"adaptrm/internal/sched"
	"adaptrm/internal/schedule"
)

// randomJobs draws a random job set over the motivational tables with a
// mix of tight and loose deadlines.
func randomJobs(rng *rand.Rand) job.Set {
	n := 1 + rng.Intn(4)
	tables := []*opset.Table{motiv.Lambda1(), motiv.Lambda2()}
	jobs := make(job.Set, 0, n)
	for i := 0; i < n; i++ {
		tbl := tables[rng.Intn(len(tables))]
		rho := 1.0
		if i > 0 && rng.Float64() < 0.7 {
			rho = 1 - rng.Float64()*0.9
		}
		pt := tbl.Points[rng.Intn(tbl.Len())]
		factor := 0.6 + rng.Float64()*3
		jobs = append(jobs, &job.Job{
			ID:        i + 1,
			Table:     tbl,
			Arrival:   0,
			Deadline:  pt.RemainingTime(rho)*factor + 1e-6,
			Remaining: rho,
		})
	}
	return jobs
}

// Randomized cross-check of the paper's ordering invariants:
//   - every produced schedule satisfies (2b)–(2e);
//   - EX-MEM succeeds whenever any heuristic succeeds;
//   - no heuristic beats EX-MEM's energy;
//   - schedulers never mutate the input jobs.
func TestRandomizedCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	plat := motiv.Platform()
	mdf := core.New()
	lr := lagrange.New()
	ex := exmem.New()
	rounds := 120
	if testing.Short() {
		rounds = 25
	}
	for round := 0; round < rounds; round++ {
		jobs := randomJobs(rng)
		before := jobs.Clone()

		type res struct {
			k   *schedule.Schedule
			err error
		}
		outs := map[string]res{}
		for _, s := range []sched.Scheduler{mdf, lr, ex} {
			k, err := s.Schedule(jobs, plat, 0)
			if err == nil {
				if verr := k.Validate(plat, jobs, 0); verr != nil {
					t.Fatalf("round %d: %s invalid: %v\njobs: %v", round, s.Name(), verr, jobs)
				}
			} else if !errors.Is(err, sched.ErrInfeasible) && !errors.Is(err, exmem.ErrBudget) {
				t.Fatalf("round %d: %s unexpected error: %v", round, s.Name(), err)
			}
			outs[s.Name()] = res{k, err}
		}
		for i := range jobs {
			if jobs[i].Remaining != before[i].Remaining || jobs[i].Deadline != before[i].Deadline {
				t.Fatalf("round %d: job %d mutated", round, jobs[i].ID)
			}
		}
		exOut := outs["EX-MEM"]
		for _, name := range []string{"MMKP-MDF", "MMKP-LR"} {
			o := outs[name]
			if o.err == nil && exOut.err != nil {
				t.Fatalf("round %d: %s scheduled a case EX-MEM rejected (%v)", round, name, exOut.err)
			}
			if o.err == nil && exOut.err == nil {
				if o.k.Energy(jobs) < exOut.k.Energy(jobs)-1e-6 {
					t.Fatalf("round %d: %s energy %v beats EX-MEM %v",
						round, name, o.k.Energy(jobs), exOut.k.Energy(jobs))
				}
			}
		}
	}
}

// Single-threaded compatibility: the paper notes MMKP-MDF degenerates to
// the Niknafs-style single-threaded algorithm when every operating point
// uses exactly one core. Verify schedules stay valid and energy-ordered
// in that regime.
func TestSingleThreadedCompatibility(t *testing.T) {
	mk := func(name string, tE, tT float64) *opset.Table {
		tb := &opset.Table{App: name, Points: []opset.Point{
			{Alloc: []int{1, 0}, Time: tT * 2.2, Energy: tE}, // little: slow, cheap
			{Alloc: []int{0, 1}, Time: tT, Energy: tE * 2.4}, // big: fast, hungry
		}}
		tb.SortByEnergy()
		return tb
	}
	plat := motiv.Platform()
	jobs := job.Set{
		{ID: 1, Table: mk("st-a", 2, 4), Deadline: 10, Remaining: 1},
		{ID: 2, Table: mk("st-b", 3, 5), Deadline: 8, Remaining: 1},
		{ID: 3, Table: mk("st-c", 1, 3), Deadline: 12, Remaining: 0.5},
	}
	mdfK, err := core.New().Schedule(jobs, plat, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := mdfK.Validate(plat, jobs, 0); err != nil {
		t.Fatal(err)
	}
	exK, err := exmem.New().Schedule(jobs, plat, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mdfK.Energy(jobs) < exK.Energy(jobs)-1e-9 {
		t.Error("MDF beats exact reference on single-threaded workload")
	}
	// Every placement uses exactly one core.
	for _, seg := range mdfK.Segments {
		for _, p := range seg.Placements {
			if jobs.ByID(p.JobID).Table.Points[p.Point].Alloc.Total() != 1 {
				t.Error("multi-core point in single-threaded regime")
			}
		}
	}
}
