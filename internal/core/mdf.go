// Package core implements the paper's primary contribution: the MMKP-MDF
// mapping heuristic (Algorithm 1) for firm real-time multi-threaded
// applications on heterogeneous multi-cores.
//
// The heuristic views core types as knapsacks whose capacities are
// processing time (core-seconds) up to the largest deadline, and job
// configurations as items weighing θ·τ·ρ. Jobs are selected by
// Maximum-Difference-First (MDF): the job whose energy penalty for losing
// its best feasible configuration is largest is placed first. Each
// candidate configuration is committed only if Algorithm 2 (EDF packing
// with segment splitting, sched.PackEDF) finds a feasible segmented
// schedule for all committed jobs.
package core

import (
	"math"
	"sort"

	"adaptrm/internal/job"
	"adaptrm/internal/platform"
	"adaptrm/internal/sched"
	"adaptrm/internal/schedule"
)

// Selection chooses the job-ordering policy of Algorithm 1's outer loop.
// MDF is the paper's policy; the others exist for ablation studies.
type Selection int

const (
	// SelectMDF picks the unmapped job with the maximum energy
	// difference between its best and second-best feasible points.
	SelectMDF Selection = iota
	// SelectEDF picks the unmapped job with the earliest deadline.
	SelectEDF
	// SelectArrival picks unmapped jobs in arrival order (FCFS).
	SelectArrival
)

// String returns the ablation label of the policy.
func (s Selection) String() string {
	switch s {
	case SelectMDF:
		return "MDF"
	case SelectEDF:
		return "EDF"
	case SelectArrival:
		return "FCFS"
	default:
		return "?"
	}
}

// Options tunes the heuristic. The zero value reproduces the paper.
type Options struct {
	// Selection is the job-ordering policy (default MDF).
	Selection Selection
}

// Scheduler is the MMKP-MDF scheduler.
type Scheduler struct {
	opt Options
}

// New returns the paper's MMKP-MDF scheduler.
func New() *Scheduler { return &Scheduler{} }

// NewWithOptions returns a scheduler with ablation options.
func NewWithOptions(opt Options) *Scheduler { return &Scheduler{opt: opt} }

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string {
	if s.opt.Selection == SelectMDF {
		return "MMKP-MDF"
	}
	return "MMKP-" + s.opt.Selection.String()
}

// candidate describes one unmapped job's filtered configuration list.
type candidate struct {
	j    *job.Job
	pts  []int   // feasible point indices, ascending energy
	diff float64 // MDF difference; +Inf when only one point is feasible
}

// Schedule implements Algorithm 1. It returns sched.ErrInfeasible when no
// feasible schedule exists for the job set under the heuristic.
func (s *Scheduler) Schedule(jobs job.Set, plat platform.Platform, t float64) (*schedule.Schedule, error) {
	if err := jobs.Validate(t); err != nil {
		return nil, err
	}
	m := plat.NumTypes()
	// Line 1: containers J ← Θ × (max deadline − t).
	horizon := jobs.MaxDeadline() - t
	containers := platform.NewTimeVec(m)
	for i, c := range plat.Capacity() {
		containers[i] = float64(c) * horizon
	}
	// Line 2: no configurations chosen yet.
	asg := make(sched.Assignment, len(jobs))
	var best *schedule.Schedule
	// Line 3: iterate until every job has a configuration.
	for len(asg) < len(jobs) {
		cand := s.nextJob(jobs, asg, containers, t)
		if cand == nil {
			// No unmapped job left (defensive; loop condition covers it).
			break
		}
		// Lines 5–14: try configurations in ascending energy order.
		placed := false
		for _, ptIdx := range cand.pts {
			trial := asg.Clone()
			trial[cand.j.ID] = ptIdx
			k, err := sched.PackEDF(jobs, trial, plat, t)
			if err != nil {
				continue // line 14: drop this configuration
			}
			// Lines 11–12: commit and update containers.
			asg = trial
			best = k
			pt := cand.j.Table.Points[ptIdx]
			containers.SubUsage(pt.Alloc, pt.RemainingTime(cand.j.Remaining))
			placed = true
			break
		}
		if !placed {
			// Line 6: configuration list exhausted.
			return nil, sched.ErrInfeasible
		}
	}
	if best == nil {
		return nil, sched.ErrInfeasible
	}
	best.Normalize()
	return best, nil
}

// nextJob implements NEXTJOBMDF (and the ablation policies): it filters
// each unmapped job's points against deadlines and containers, and picks
// the next job to place. It returns nil when every job is mapped.
//
// A job with no feasible configuration is returned immediately (with an
// empty point list) so that Schedule can reject the request without
// wasting work on the other jobs.
func (s *Scheduler) nextJob(jobs job.Set, asg sched.Assignment, containers platform.TimeVec, t float64) *candidate {
	var cands []*candidate
	for _, j := range jobs {
		if _, done := asg[j.ID]; done {
			continue
		}
		pts := sched.FeasiblePoints(j, t, containers)
		if len(pts) == 0 {
			return &candidate{j: j} // fail fast upstream
		}
		c := &candidate{j: j, pts: pts}
		if len(pts) == 1 {
			c.diff = math.Inf(1)
		} else {
			// Points are table-ordered by ascending full-run energy, and
			// remaining energy preserves that order (common factor ρ).
			best := j.Table.Points[pts[0]].RemainingEnergy(j.Remaining)
			second := j.Table.Points[pts[1]].RemainingEnergy(j.Remaining)
			c.diff = second - best
		}
		cands = append(cands, c)
	}
	if len(cands) == 0 {
		return nil
	}
	switch s.opt.Selection {
	case SelectEDF:
		sort.SliceStable(cands, func(a, b int) bool {
			if cands[a].j.Deadline != cands[b].j.Deadline {
				return cands[a].j.Deadline < cands[b].j.Deadline
			}
			return cands[a].j.ID < cands[b].j.ID
		})
	case SelectArrival:
		sort.SliceStable(cands, func(a, b int) bool {
			if cands[a].j.Arrival != cands[b].j.Arrival {
				return cands[a].j.Arrival < cands[b].j.Arrival
			}
			return cands[a].j.ID < cands[b].j.ID
		})
	default: // MDF
		sort.SliceStable(cands, func(a, b int) bool {
			if cands[a].diff != cands[b].diff {
				return cands[a].diff > cands[b].diff
			}
			return cands[a].j.ID < cands[b].j.ID
		})
	}
	return cands[0]
}
