// Package core implements the paper's primary contribution: the MMKP-MDF
// mapping heuristic (Algorithm 1) for firm real-time multi-threaded
// applications on heterogeneous multi-cores.
//
// The heuristic views core types as knapsacks whose capacities are
// processing time (core-seconds) up to the largest deadline, and job
// configurations as items weighing θ·τ·ρ. Jobs are selected by
// Maximum-Difference-First (MDF): the job whose energy penalty for losing
// its best feasible configuration is largest is placed first. Each
// candidate configuration is committed only if Algorithm 2 (EDF packing
// with segment splitting, sched.Packer) finds a feasible segmented
// schedule for all committed jobs.
//
// The implementation is allocation-free on the hot path: a per-scheduler
// scratch area (packer, dense assignment, containers, candidate lists)
// is reused across Schedule calls, candidate point lists are filtered
// incrementally as containers shrink instead of being rebuilt, and only
// the returned schedule is materialised on the heap.
package core

import (
	"math"
	"sync"

	"adaptrm/internal/job"
	"adaptrm/internal/platform"
	"adaptrm/internal/sched"
	"adaptrm/internal/schedule"
)

// Selection chooses the job-ordering policy of Algorithm 1's outer loop.
// MDF is the paper's policy; the others exist for ablation studies.
type Selection int

const (
	// SelectMDF picks the unmapped job with the maximum energy
	// difference between its best and second-best feasible points.
	SelectMDF Selection = iota
	// SelectEDF picks the unmapped job with the earliest deadline.
	SelectEDF
	// SelectArrival picks unmapped jobs in arrival order (FCFS).
	SelectArrival
)

// String returns the ablation label of the policy.
func (s Selection) String() string {
	switch s {
	case SelectMDF:
		return "MDF"
	case SelectEDF:
		return "EDF"
	case SelectArrival:
		return "FCFS"
	default:
		return "?"
	}
}

// Options tunes the heuristic. The zero value reproduces the paper.
type Options struct {
	// Selection is the job-ordering policy (default MDF).
	Selection Selection
}

// Scheduler is the MMKP-MDF scheduler.
type Scheduler struct {
	opt Options

	// mu guards scr. Schedule acquires it with TryLock: the common
	// serialised caller (runtime manager, eval harness, fleet device)
	// always wins and reuses the scratch allocation-free; a concurrent
	// caller falls back to a fresh scratch instead of blocking.
	mu  sync.Mutex
	scr *scratch
}

// scratch is the reusable per-call state of Schedule.
type scratch struct {
	packer     sched.Packer
	asg        sched.DenseAssignment
	containers platform.TimeVec
	cands      []candidate
}

// New returns the paper's MMKP-MDF scheduler.
func New() *Scheduler { return &Scheduler{} }

// NewWithOptions returns a scheduler with ablation options.
func NewWithOptions(opt Options) *Scheduler { return &Scheduler{opt: opt} }

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string {
	if s.opt.Selection == SelectMDF {
		return "MMKP-MDF"
	}
	return "MMKP-" + s.opt.Selection.String()
}

// candidate describes one unmapped job's filtered configuration list.
type candidate struct {
	idx  int // position in the job set (dense-assignment key)
	j    *job.Job
	pts  []int   // feasible point indices, ascending energy (reused backing)
	diff float64 // MDF difference; +Inf when only one point is feasible
}

// acquire returns the scheduler's scratch when available, or a fresh one
// when another goroutine holds it.
func (s *Scheduler) acquire() (*scratch, func()) {
	if s.mu.TryLock() {
		if s.scr == nil {
			s.scr = &scratch{}
		}
		return s.scr, s.mu.Unlock
	}
	return &scratch{}, func() {}
}

// Schedule implements Algorithm 1. It returns sched.ErrInfeasible when no
// feasible schedule exists for the job set under the heuristic.
func (s *Scheduler) Schedule(jobs job.Set, plat platform.Platform, t float64) (*schedule.Schedule, error) {
	if err := jobs.Validate(t); err != nil {
		return nil, err
	}
	scr, release := s.acquire()
	defer release()
	m := plat.NumTypes()
	// Line 1: containers J ← Θ × (max deadline − t).
	horizon := jobs.MaxDeadline() - t
	if cap(scr.containers) < m {
		scr.containers = platform.NewTimeVec(m)
	}
	containers := scr.containers[:m]
	scr.containers = containers
	for i := 0; i < m; i++ {
		containers[i] = float64(plat.Types[i].Count) * horizon
	}
	// Line 2: no configurations chosen yet.
	scr.asg = scr.asg.Resize(len(jobs))
	scr.packer.Reset(plat)
	// Seed the candidate list: every job, its deadline- and
	// container-feasible points, and its MDF difference. The list is kept
	// incrementally for the rest of the call — containers only shrink, so
	// each round re-filters the surviving points in place instead of
	// re-scanning the full tables (and never reallocates).
	scr.cands = scr.cands[:0]
	for i, j := range jobs {
		c := growCandidate(scr)
		c.idx, c.j = i, j
		c.pts = sched.FeasiblePointsInto(j, t, containers, c.pts)
		if len(c.pts) == 0 {
			// No feasible configuration: reject without wasting work on
			// the other jobs.
			return nil, sched.ErrInfeasible
		}
		c.updateDiff()
	}
	// Line 3: iterate until every job has a configuration.
	packed := false
	for len(scr.cands) > 0 {
		ci := s.selectCandidate(scr.cands)
		c := &scr.cands[ci]
		// Lines 5–14: try configurations in ascending energy order.
		placed := false
		for _, ptIdx := range c.pts {
			scr.asg[c.idx] = int32(ptIdx)
			if err := scr.packer.Pack(jobs, scr.asg, t); err != nil {
				scr.asg[c.idx] = sched.Unassigned
				continue // line 14: drop this configuration
			}
			// Lines 11–12: commit and update containers.
			packed = true
			pt := c.j.Table.Points[ptIdx]
			containers.SubUsage(pt.Alloc, pt.RemainingTime(c.j.Remaining))
			placed = true
			break
		}
		if !placed {
			// Line 6: configuration list exhausted.
			return nil, sched.ErrInfeasible
		}
		// Swap-remove the placed candidate; the swapped-out entry keeps
		// its pts backing parked beyond the slice length for reuse.
		last := len(scr.cands) - 1
		scr.cands[ci], scr.cands[last] = scr.cands[last], scr.cands[ci]
		scr.cands = scr.cands[:last]
		// Re-filter the survivors against the shrunken containers.
		for i := range scr.cands {
			rc := &scr.cands[i]
			if !rc.refilter(containers) {
				return nil, sched.ErrInfeasible
			}
		}
	}
	if !packed {
		return nil, sched.ErrInfeasible
	}
	// The last successful Pack covered the full assignment; materialise
	// it once.
	best := scr.packer.Schedule()
	best.Normalize()
	return best, nil
}

// growCandidate extends the candidate list by one, reusing the pts
// backing array parked beyond the current length.
func growCandidate(scr *scratch) *candidate {
	if len(scr.cands) < cap(scr.cands) {
		scr.cands = scr.cands[:len(scr.cands)+1]
	} else {
		scr.cands = append(scr.cands, candidate{})
	}
	return &scr.cands[len(scr.cands)-1]
}

// refilter drops points that no longer fit the containers (feasibility
// is monotone: containers only shrink, and the deadline check does not
// depend on them) and refreshes the MDF difference. It reports false
// when no point survives.
func (c *candidate) refilter(containers platform.TimeVec) bool {
	w := 0
	for _, pi := range c.pts {
		p := c.j.Table.Points[pi]
		if containers.FitsUsage(p.Alloc, p.RemainingTime(c.j.Remaining), schedule.Eps) {
			c.pts[w] = pi
			w++
		}
	}
	c.pts = c.pts[:w]
	if w == 0 {
		return false
	}
	c.updateDiff()
	return true
}

// updateDiff computes the MDF difference over the current point list.
func (c *candidate) updateDiff() {
	if len(c.pts) == 1 {
		c.diff = math.Inf(1)
		return
	}
	// Points are table-ordered by ascending full-run energy, and
	// remaining energy preserves that order (common factor ρ).
	best := c.j.Table.Points[c.pts[0]].RemainingEnergy(c.j.Remaining)
	second := c.j.Table.Points[c.pts[1]].RemainingEnergy(c.j.Remaining)
	c.diff = second - best
}

// selectCandidate implements NEXTJOBMDF (and the ablation policies) as a
// single linear scan for the minimum under the policy's complete
// tie-break key — (diff | deadline | arrival), then job ID — which is a
// total order, so it picks the same job the historical sorted
// implementation did without sorting or allocating.
func (s *Scheduler) selectCandidate(cands []candidate) int {
	best := 0
	for i := 1; i < len(cands); i++ {
		if s.before(&cands[i], &cands[best]) {
			best = i
		}
	}
	return best
}

// before reports whether a precedes b under the selection policy.
func (s *Scheduler) before(a, b *candidate) bool {
	switch s.opt.Selection {
	case SelectEDF:
		if a.j.Deadline != b.j.Deadline {
			return a.j.Deadline < b.j.Deadline
		}
	case SelectArrival:
		if a.j.Arrival != b.j.Arrival {
			return a.j.Arrival < b.j.Arrival
		}
	default: // MDF
		if a.diff != b.diff {
			return a.diff > b.diff
		}
	}
	return a.j.ID < b.j.ID
}
