package vplat

import (
	"fmt"
	"sort"
	"strings"

	"adaptrm/internal/kpn"
	"adaptrm/internal/platform"
)

// ProcessPlacement records where one Kahn process ran and for how long.
type ProcessPlacement struct {
	// Process is the process name.
	Process string
	// Core is the global core index within the allocation (cores of
	// type 0 first).
	Core int
	// Type is the core's platform type index.
	Type int
	// Start and End bound the busy interval on the core.
	Start, End float64
}

// Detail is the full design-time execution record of one benchmarked
// run — the virtual analogue of the execution traces the paper's
// design-time flow (SLX) extracts from instrumented runs.
type Detail struct {
	// Result is the aggregate time/energy.
	Result Result
	// Placements lists per-process busy intervals, core-major.
	Placements []ProcessPlacement
	// ComputeSec is the parallel compute portion of the makespan.
	ComputeSec float64
	// CommSec is the serialized communication time.
	CommSec float64
	// StartupSec is the fixed startup overhead.
	StartupSec float64
}

// BenchmarkDetailed is Benchmark plus the per-process placement record.
// It performs the identical computation (the aggregate Result matches
// Benchmark exactly).
func BenchmarkDetailed(g *kpn.Graph, v kpn.Variant, plat platform.Platform, alloc platform.Alloc) (*Detail, error) {
	res, err := Benchmark(g, v, plat, alloc)
	if err != nil {
		return nil, err
	}
	// Re-run the list scheduling to extract placements; Benchmark is
	// deterministic, so the assignment is identical.
	type core struct {
		typ  int
		busy float64
	}
	var cores []core
	for t, n := range alloc {
		for i := 0; i < n; i++ {
			cores = append(cores, core{typ: t})
		}
	}
	speeds := make([]float64, plat.NumTypes())
	for t, ct := range plat.Types {
		speeds[t] = ct.Speed() / 1e9
	}
	procs := make([]kpn.Process, len(g.Processes))
	copy(procs, g.Processes)
	sort.SliceStable(procs, func(a, b int) bool { return procs[a].Work > procs[b].Work })
	d := &Detail{Result: res, StartupSec: g.StartupSec}
	for _, p := range procs {
		bestCore, bestFinish := -1, 0.0
		for ci := range cores {
			finish := cores[ci].busy + p.Work*v.ComputeScale/speeds[cores[ci].typ]
			if bestCore < 0 || finish < bestFinish-1e-12 {
				bestFinish, bestCore = finish, ci
			}
		}
		start := cores[bestCore].busy
		cores[bestCore].busy = bestFinish
		d.Placements = append(d.Placements, ProcessPlacement{
			Process: p.Name,
			Core:    bestCore,
			Type:    cores[bestCore].typ,
			Start:   start,
			End:     bestFinish,
		})
	}
	for _, c := range cores {
		if c.busy > d.ComputeSec {
			d.ComputeSec = c.busy
		}
	}
	d.CommSec = res.TimeSec - g.StartupSec -
		d.ComputeSec*(1+SyncOverheadPerCore*float64(alloc.Total()-1)) -
		ThreadSpawnSec*float64(alloc.Total())
	if d.CommSec < 0 {
		d.CommSec = 0
	}
	sort.SliceStable(d.Placements, func(a, b int) bool {
		if d.Placements[a].Core != d.Placements[b].Core {
			return d.Placements[a].Core < d.Placements[b].Core
		}
		return d.Placements[a].Start < d.Placements[b].Start
	})
	return d, nil
}

// String renders the placement record, one line per process.
func (d *Detail) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "total %.3fs (compute %.3fs, comm %.3fs, startup %.3fs), energy %.3fJ\n",
		d.Result.TimeSec, d.ComputeSec, d.CommSec, d.StartupSec, d.Result.EnergyJ)
	for _, p := range d.Placements {
		fmt.Fprintf(&b, "  core %d (type %d): %-12s [%7.3f, %7.3f)\n",
			p.Core, p.Type, p.Process, p.Start, p.End)
	}
	return b.String()
}
