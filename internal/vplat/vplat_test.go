package vplat

import (
	"math"
	"math/rand"
	"testing"

	"adaptrm/internal/kpn"
	"adaptrm/internal/platform"
)

func med() kpn.Variant { return kpn.DefaultVariants()[1] }

func TestBenchmarkBasics(t *testing.T) {
	g := kpn.AudioFilter()
	plat := platform.OdroidXU4()
	r, err := Benchmark(&g, med(), plat, platform.Alloc{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.TimeSec <= 0 || r.EnergyJ <= 0 {
		t.Fatalf("degenerate result %+v", r)
	}
}

func TestBenchmarkRejectsBadInput(t *testing.T) {
	g := kpn.AudioFilter()
	plat := platform.OdroidXU4()
	if _, err := Benchmark(&g, med(), plat, platform.Alloc{0, 0}); err == nil {
		t.Error("empty alloc accepted")
	}
	if _, err := Benchmark(&g, med(), plat, platform.Alloc{9, 0}); err == nil {
		t.Error("over-capacity alloc accepted")
	}
	if _, err := Benchmark(&g, med(), plat, platform.Alloc{1}); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := Benchmark(&g, kpn.Variant{Name: "x", ComputeScale: 0}, plat, platform.Alloc{1, 0}); err == nil {
		t.Error("zero compute scale accepted")
	}
	bad := kpn.Graph{Name: ""}
	if _, err := Benchmark(&bad, med(), plat, platform.Alloc{1, 0}); err == nil {
		t.Error("invalid graph accepted")
	}
	badPlat := platform.Platform{Name: "x"}
	if _, err := Benchmark(&g, med(), badPlat, platform.Alloc{}); err == nil {
		t.Error("invalid platform accepted")
	}
}

// Physical sanity: one big core is faster but hungrier than one little
// core; the paper's Table II rests on exactly this asymmetry.
func TestBigFasterLittleCheaper(t *testing.T) {
	g := kpn.SpeakerRecognition()
	plat := platform.OdroidXU4()
	little, err := Benchmark(&g, med(), plat, platform.Alloc{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Benchmark(&g, med(), plat, platform.Alloc{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if big.TimeSec >= little.TimeSec {
		t.Errorf("big %.2fs not faster than little %.2fs", big.TimeSec, little.TimeSec)
	}
	if big.EnergyJ <= little.EnergyJ {
		t.Errorf("big %.2fJ not hungrier than little %.2fJ", big.EnergyJ, little.EnergyJ)
	}
}

// Concavity: the speedup from 1→2 little cores exceeds that from 3→4
// (diminishing returns, exploited by [11] and visible in Table II).
func TestConcaveSpeedup(t *testing.T) {
	g := kpn.AudioFilter()
	plat := platform.OdroidXU4()
	times := make([]float64, 5)
	for n := 1; n <= 4; n++ {
		r, err := Benchmark(&g, med(), plat, platform.Alloc{n, 0})
		if err != nil {
			t.Fatal(err)
		}
		times[n] = r.TimeSec
	}
	gain12 := times[1] / times[2]
	gain34 := times[3] / times[4]
	if gain12 <= gain34 {
		t.Errorf("speedup not concave: 1→2 %.3f vs 3→4 %.3f", gain12, gain34)
	}
	// And more cores never slow the run down catastrophically.
	if times[4] > times[1] {
		t.Errorf("4 little (%.2fs) slower than 1 little (%.2fs)", times[4], times[1])
	}
}

// Over-provisioning beyond the process count must waste energy without
// gaining time, so such allocations fall off the Pareto front.
func TestOverProvisioningPenalty(t *testing.T) {
	g := kpn.PedestrianRecognition() // 6 processes
	plat := platform.OdroidXU4()
	six, err := Benchmark(&g, med(), plat, platform.Alloc{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	eight, err := Benchmark(&g, med(), plat, platform.Alloc{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if eight.TimeSec < six.TimeSec-1e-9 {
		t.Errorf("8 cores (%.3fs) beat 6 cores (%.3fs) for a 6-process app", eight.TimeSec, six.TimeSec)
	}
	if eight.EnergyJ <= six.EnergyJ {
		t.Errorf("idle cores should cost energy: %.2fJ vs %.2fJ", eight.EnergyJ, six.EnergyJ)
	}
}

// Input variants scale monotonically.
func TestVariantScaling(t *testing.T) {
	g := kpn.AudioFilter()
	plat := platform.OdroidXU4()
	vs := kpn.DefaultVariants()
	prevT, prevE := 0.0, 0.0
	for _, v := range vs {
		r, err := Benchmark(&g, v, plat, platform.Alloc{2, 2})
		if err != nil {
			t.Fatal(err)
		}
		if r.TimeSec <= prevT || r.EnergyJ <= prevE {
			t.Errorf("%s not monotone over variants", v.Name)
		}
		prevT, prevE = r.TimeSec, r.EnergyJ
	}
}

func TestMeasure(t *testing.T) {
	g := kpn.AudioFilter()
	plat := platform.OdroidXU4()
	base, err := Benchmark(&g, med(), plat, platform.Alloc{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// reps=0 falls back to the deterministic value.
	got, err := Measure(&g, med(), plat, platform.Alloc{2, 2}, 0, nil)
	if err != nil || got != base {
		t.Errorf("Measure(0) = %+v err=%v, want %+v", got, err, base)
	}
	// With reps, averages must stay close to the deterministic value
	// (the paper averages 50 runs for exactly this reason).
	rng := rand.New(rand.NewSource(5))
	avg, err := Measure(&g, med(), plat, platform.Alloc{2, 2}, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(avg.TimeSec-base.TimeSec)/base.TimeSec > 0.05 {
		t.Errorf("averaged time %.3f too far from %.3f", avg.TimeSec, base.TimeSec)
	}
	if math.Abs(avg.EnergyJ-base.EnergyJ)/base.EnergyJ > 0.05 {
		t.Errorf("averaged energy %.3f too far from %.3f", avg.EnergyJ, base.EnergyJ)
	}
	if _, err := Measure(&g, med(), plat, platform.Alloc{2, 2}, 5, nil); err == nil {
		t.Error("nil rng with reps accepted")
	}
}

func TestDeterminism(t *testing.T) {
	g := kpn.SpeakerRecognition()
	plat := platform.OdroidXU4()
	a, _ := Benchmark(&g, med(), plat, platform.Alloc{3, 2})
	b, _ := Benchmark(&g, med(), plat, platform.Alloc{3, 2})
	if a != b {
		t.Error("Benchmark not deterministic")
	}
}
