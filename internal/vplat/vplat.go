// Package vplat is the virtual platform: it plays the role of the Odroid
// XU4 board plus the external power analyzer in the paper's experimental
// setup. Given a dataflow application, a platform description and a core
// allocation, it estimates the execution time (makespan) and energy of a
// complete run.
//
// The model is deliberately simple but captures the effects that shape
// the paper's operating-point tables:
//
//   - heterogeneous core speeds (big ≫ little) with per-process
//     earliest-finish-time list scheduling, giving concave speedups that
//     saturate at the application's process count and serial bottleneck;
//   - communication costs on a shared interconnect: channels crossing
//     cores serialize on the bus, and crossing the cluster boundary is
//     more expensive — adding cores is not free;
//   - a power model integrating per-core static power over the makespan
//     and dynamic power over busy time, plus a platform uncore share, so
//     that little-heavy allocations win energy and big-heavy allocations
//     win time, with mixed allocations Pareto-optimal in between.
//
// A Measure variant adds multiplicative noise and averages repetitions,
// emulating the paper's 50-sample measurement protocol.
package vplat

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"adaptrm/internal/kpn"
	"adaptrm/internal/platform"
)

// Interconnect parameters of the virtual platform.
const (
	// IntraClusterMBps is the bandwidth for channels between cores of
	// the same type.
	IntraClusterMBps = 1800.0
	// CrossClusterMBps is the bandwidth across the big/little boundary
	// (through the CCI), markedly slower.
	CrossClusterMBps = 650.0
	// UncoreWatts is the always-on platform share (memory controller,
	// interconnect) attributed to the application while it runs.
	UncoreWatts = 0.18
	// NoiseStdDev is the relative standard deviation of one simulated
	// measurement.
	NoiseStdDev = 0.02
	// SyncOverheadPerCore inflates the makespan per additional core:
	// barrier and FIFO synchronization grow with the thread count, so
	// over-provisioned allocations lose time as well as energy (and
	// fall off the Pareto front, as on the real board).
	SyncOverheadPerCore = 0.035
	// ThreadSpawnSec is the fixed per-core thread setup cost per run.
	ThreadSpawnSec = 0.02
)

// Result is one benchmarked execution.
type Result struct {
	// TimeSec is the makespan of a complete run.
	TimeSec float64
	// EnergyJ is the energy of a complete run.
	EnergyJ float64
}

// Benchmark deterministically estimates a complete run of graph g under
// the given input variant on alloc cores of plat. It returns an error
// for invalid inputs or an empty allocation.
func Benchmark(g *kpn.Graph, v kpn.Variant, plat platform.Platform, alloc platform.Alloc) (Result, error) {
	if err := g.Validate(); err != nil {
		return Result{}, err
	}
	if err := plat.Validate(); err != nil {
		return Result{}, err
	}
	if len(alloc) != plat.NumTypes() {
		return Result{}, fmt.Errorf("vplat: alloc arity %d vs platform %d", len(alloc), plat.NumTypes())
	}
	if !alloc.NonNegative() || alloc.IsZero() {
		return Result{}, fmt.Errorf("vplat: invalid allocation %v", alloc)
	}
	if !alloc.Fits(plat.Capacity()) {
		return Result{}, fmt.Errorf("vplat: allocation %v exceeds capacity %v", alloc, plat.Capacity())
	}
	if v.ComputeScale <= 0 || v.TrafficScale < 0 {
		return Result{}, fmt.Errorf("vplat: invalid variant scales %+v", v)
	}

	// Concrete core list: (type, speed, busy seconds).
	type core struct {
		typ  int
		busy float64
	}
	var cores []core
	for t, n := range alloc {
		for i := 0; i < n; i++ {
			cores = append(cores, core{typ: t})
		}
	}
	speeds := make([]float64, plat.NumTypes())
	for t, ct := range plat.Types {
		speeds[t] = ct.Speed() / 1e9 // giga-ops per second
	}

	// Earliest-finish-time list scheduling, heaviest process first.
	procs := make([]kpn.Process, len(g.Processes))
	copy(procs, g.Processes)
	sort.SliceStable(procs, func(a, b int) bool { return procs[a].Work > procs[b].Work })
	procCore := make(map[string]int, len(procs))
	for _, p := range procs {
		bestCore, bestFinish := -1, math.Inf(1)
		for ci := range cores {
			finish := cores[ci].busy + p.Work*v.ComputeScale/speeds[cores[ci].typ]
			if finish < bestFinish-1e-12 {
				bestFinish, bestCore = finish, ci
			}
		}
		cores[bestCore].busy += p.Work * v.ComputeScale / speeds[cores[bestCore].typ]
		procCore[p.Name] = bestCore
	}
	makespan := 0.0
	for _, c := range cores {
		if c.busy > makespan {
			makespan = c.busy
		}
	}

	// Communication: channels whose endpoints share a core are free;
	// same-cluster channels use the fast fabric, cross-cluster channels
	// the CCI. Traffic serializes on the shared bus and extends the run.
	comm := 0.0
	for _, ch := range g.Channels {
		cs, cd := procCore[ch.Src], procCore[ch.Dst]
		if cs == cd {
			continue
		}
		mb := ch.MBytes * v.TrafficScale
		if cores[cs].typ == cores[cd].typ {
			comm += mb / IntraClusterMBps
		} else {
			comm += mb / CrossClusterMBps
		}
	}
	nCores := alloc.Total()
	makespan *= 1 + SyncOverheadPerCore*float64(nCores-1)
	total := g.StartupSec + makespan + comm + ThreadSpawnSec*float64(nCores)

	// Energy: dynamic over busy time, static over the whole run for
	// every allocated core, plus the uncore share. Startup and bus time
	// burn one little-class core equivalent (or the slowest type's
	// static+partial dynamic) — modeled as uncore plus the first
	// allocated core's static draw.
	energy := UncoreWatts * total
	for _, c := range cores {
		ct := plat.Types[c.typ]
		energy += ct.StaticWatts*total + ct.DynamicWatts*c.busy
	}
	// The serialized communication keeps roughly one core's pipeline
	// active; charge it at the cheapest allocated type's dynamic rate.
	minDyn := math.Inf(1)
	for t, n := range alloc {
		if n > 0 && plat.Types[t].DynamicWatts < minDyn {
			minDyn = plat.Types[t].DynamicWatts
		}
	}
	energy += minDyn * (comm + g.StartupSec) * 0.5

	return Result{TimeSec: total, EnergyJ: energy}, nil
}

// Measure emulates the paper's measurement protocol: reps noisy runs are
// averaged. The noise is multiplicative with relative standard deviation
// NoiseStdDev; rng must not be nil when reps > 0.
func Measure(g *kpn.Graph, v kpn.Variant, plat platform.Platform, alloc platform.Alloc, reps int, rng *rand.Rand) (Result, error) {
	base, err := Benchmark(g, v, plat, alloc)
	if err != nil {
		return Result{}, err
	}
	if reps <= 0 {
		return base, nil
	}
	if rng == nil {
		return Result{}, fmt.Errorf("vplat: Measure needs a random source")
	}
	var sumT, sumE float64
	for i := 0; i < reps; i++ {
		nt := 1 + rng.NormFloat64()*NoiseStdDev
		ne := 1 + rng.NormFloat64()*NoiseStdDev
		// Clamp pathological draws; a measurement cannot go negative.
		if nt < 0.5 {
			nt = 0.5
		}
		if ne < 0.5 {
			ne = 0.5
		}
		sumT += base.TimeSec * nt
		sumE += base.EnergyJ * ne
	}
	return Result{TimeSec: sumT / float64(reps), EnergyJ: sumE / float64(reps)}, nil
}
