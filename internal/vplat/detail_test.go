package vplat

import (
	"strings"
	"testing"

	"adaptrm/internal/kpn"
	"adaptrm/internal/platform"
)

func TestBenchmarkDetailedMatchesAggregate(t *testing.T) {
	g := kpn.AudioFilter()
	plat := platform.OdroidXU4()
	alloc := platform.Alloc{2, 2}
	agg, err := Benchmark(&g, med(), plat, alloc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := BenchmarkDetailed(&g, med(), plat, alloc)
	if err != nil {
		t.Fatal(err)
	}
	if d.Result != agg {
		t.Fatalf("detailed result %+v differs from aggregate %+v", d.Result, agg)
	}
	// Every process is placed exactly once.
	seen := map[string]bool{}
	for _, p := range d.Placements {
		if seen[p.Process] {
			t.Fatalf("process %s placed twice", p.Process)
		}
		seen[p.Process] = true
		if p.Core < 0 || p.Core >= alloc.Total() {
			t.Errorf("core %d out of range", p.Core)
		}
		if p.End <= p.Start-1e-12 {
			t.Errorf("process %s empty interval", p.Process)
		}
	}
	if len(seen) != len(g.Processes) {
		t.Fatalf("%d processes placed, want %d", len(seen), len(g.Processes))
	}
	// Intervals on the same core must not overlap.
	for i := 1; i < len(d.Placements); i++ {
		a, b := d.Placements[i-1], d.Placements[i]
		if a.Core == b.Core && b.Start < a.End-1e-9 {
			t.Errorf("overlap on core %d: %v then %v", a.Core, a, b)
		}
	}
	// Decomposition adds up: compute portion bounded by total.
	if d.ComputeSec <= 0 || d.ComputeSec > d.Result.TimeSec {
		t.Errorf("compute %v vs total %v", d.ComputeSec, d.Result.TimeSec)
	}
	if d.CommSec < 0 {
		t.Errorf("negative comm %v", d.CommSec)
	}
	if s := d.String(); !strings.Contains(s, "fft-l") {
		t.Errorf("render missing processes:\n%s", s)
	}
}

func TestBenchmarkDetailedErrors(t *testing.T) {
	g := kpn.AudioFilter()
	if _, err := BenchmarkDetailed(&g, med(), platform.OdroidXU4(), platform.Alloc{0, 0}); err == nil {
		t.Error("empty alloc accepted")
	}
}
