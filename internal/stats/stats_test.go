package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Error("mean wrong")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("empty mean not NaN")
	}
}

func TestGeoMean(t *testing.T) {
	if !almost(GeoMean([]float64{1, 4}), 2) {
		t.Error("geomean wrong")
	}
	if !almost(GeoMean([]float64{2, 2, 2}), 2) {
		t.Error("constant geomean wrong")
	}
	if !math.IsNaN(GeoMean(nil)) || !math.IsNaN(GeoMean([]float64{1, 0})) {
		t.Error("degenerate geomean not NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if !almost(Quantile(xs, 0), 1) || !almost(Quantile(xs, 1), 4) {
		t.Error("extremes wrong")
	}
	if !almost(Quantile(xs, 0.5), 2.5) {
		t.Errorf("median = %v", Quantile(xs, 0.5))
	}
	if !almost(Quantile([]float64{7}, 0.3), 7) {
		t.Error("singleton quantile wrong")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) || !math.IsNaN(Quantile(xs, -0.1)) || !math.IsNaN(Quantile(xs, 1.1)) {
		t.Error("degenerate quantile not NaN")
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Quantile mutated input")
	}
}

func TestBoxplot(t *testing.T) {
	b := NewBoxplot([]float64{1, 2, 3, 4, 100})
	if b.N != 5 || !almost(b.Min, 1) || !almost(b.Max, 100) || !almost(b.Median, 3) {
		t.Errorf("boxplot = %+v", b)
	}
	// 100 is an outlier: the upper whisker must stop below it.
	if b.WhiskerHi >= 100 {
		t.Errorf("whisker %v should exclude the outlier", b.WhiskerHi)
	}
	if b.WhiskerLo != 1 {
		t.Errorf("lower whisker = %v", b.WhiskerLo)
	}
	empty := NewBoxplot(nil)
	if empty.N != 0 {
		t.Error("empty boxplot has samples")
	}
}

func TestSCurveAndCount(t *testing.T) {
	xs := []float64{3, 1, 2}
	s := SCurve(xs)
	if s[0] != 1 || s[1] != 2 || s[2] != 3 {
		t.Errorf("scurve = %v", s)
	}
	if xs[0] != 3 {
		t.Error("SCurve mutated input")
	}
	if CountAtMost(xs, 2) != 2 || CountAtMost(xs, 0.5) != 0 {
		t.Error("CountAtMost wrong")
	}
}

// Properties: quantiles are monotone in q and bounded by min/max; the
// geometric mean lies between min and max; boxplot invariants hold.
func TestStatProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func() bool {
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = 0.1 + rng.Float64()*10
		}
		q1, q2 := rng.Float64(), rng.Float64()
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		if Quantile(xs, q1) > Quantile(xs, q2)+1e-12 {
			return false
		}
		g := GeoMean(xs)
		lo, hi := Quantile(xs, 0), Quantile(xs, 1)
		if g < lo-1e-9 || g > hi+1e-9 {
			return false
		}
		b := NewBoxplot(xs)
		return b.Min <= b.Q1+1e-12 && b.Q1 <= b.Median+1e-12 &&
			b.Median <= b.Q3+1e-12 && b.Q3 <= b.Max+1e-12 &&
			b.WhiskerLo >= b.Min-1e-12 && b.WhiskerHi <= b.Max+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}
