// Package stats provides the summary statistics the evaluation reports:
// geometric means (Table IV), quantiles and boxplot five-number summaries
// (Fig. 4), and S-curve series (Fig. 3).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean, or NaN for an empty slice or any
// non-positive element. Table IV reports geometric means of relative
// energies.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation
// between order statistics. It returns NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Boxplot is a five-number summary with Tukey whiskers (1.5 IQR).
type Boxplot struct {
	// Min and Max are the extremes of the data.
	Min, Max float64
	// Q1, Median, Q3 are the quartiles.
	Q1, Median, Q3 float64
	// WhiskerLo and WhiskerHi are the most extreme points within
	// 1.5 IQR of the quartiles.
	WhiskerLo, WhiskerHi float64
	// Mean is the arithmetic mean (the paper overlays it on Fig. 4).
	Mean float64
	// N is the sample count.
	N int
}

// NewBoxplot summarizes the samples. It returns a zero-value summary for
// empty input (N==0).
func NewBoxplot(xs []float64) Boxplot {
	if len(xs) == 0 {
		return Boxplot{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	b := Boxplot{
		Min:    s[0],
		Max:    s[len(s)-1],
		Q1:     Quantile(s, 0.25),
		Median: Quantile(s, 0.5),
		Q3:     Quantile(s, 0.75),
		Mean:   Mean(s),
		N:      len(s),
	}
	iqr := b.Q3 - b.Q1
	lo, hi := b.Q1-1.5*iqr, b.Q3+1.5*iqr
	b.WhiskerLo, b.WhiskerHi = b.Max, b.Min
	for _, x := range s {
		if x >= lo && x < b.WhiskerLo {
			b.WhiskerLo = x
		}
		if x <= hi && x > b.WhiskerHi {
			b.WhiskerHi = x
		}
	}
	return b
}

// SCurve returns the sorted copy of xs — plotting it against its index
// yields the S-curves of Fig. 3.
func SCurve(xs []float64) []float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s
}

// CountAtMost returns how many values are ≤ limit (used to report "954
// tests scheduled optimally", i.e. relative energy ≤ 1).
func CountAtMost(xs []float64, limit float64) int {
	n := 0
	for _, x := range xs {
		if x <= limit {
			n++
		}
	}
	return n
}
