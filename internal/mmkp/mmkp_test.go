package mmkp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func smallProblem() *Problem {
	// Two groups, capacity forces a trade-off.
	return &Problem{
		Capacity: []float64{4, 4},
		Groups: [][]Item{
			{
				{Value: 10, Weight: []float64{4, 0}},
				{Value: 6, Weight: []float64{1, 1}},
				{Value: 3, Weight: []float64{1, 0}},
			},
			{
				{Value: 9, Weight: []float64{1, 4}},
				{Value: 5, Weight: []float64{2, 1}},
				{Value: 2, Weight: []float64{0, 1}},
			},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := smallProblem().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Problem{
		{},
		{Capacity: []float64{1}},
		{Capacity: []float64{1}, Groups: [][]Item{{}}},
		{Capacity: []float64{1}, Groups: [][]Item{{{Value: 1, Weight: []float64{1, 2}}}}},
		{Capacity: []float64{1}, Groups: [][]Item{{{Value: 1, Weight: []float64{-1}}}}},
		{Capacity: []float64{1}, Groups: [][]Item{{{Value: math.NaN(), Weight: []float64{1}}}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad[%d] validated", i)
		}
	}
}

func TestFeasibleAndValue(t *testing.T) {
	p := smallProblem()
	if !p.Feasible(Choice{1, 1}) {
		t.Error("choice {1,1} should be feasible (3,2) ≤ (4,4)")
	}
	if p.Feasible(Choice{0, 0}) {
		t.Error("choice {0,0} uses (5,4), infeasible")
	}
	if p.Feasible(Choice{0}) {
		t.Error("wrong arity accepted")
	}
	if p.Feasible(Choice{9, 0}) {
		t.Error("bad index accepted")
	}
	if got := p.Value(Choice{0, 1}); got != 15 {
		t.Errorf("Value = %v", got)
	}
}

func TestSolveExactSmall(t *testing.T) {
	p := smallProblem()
	c := p.SolveExact()
	if c == nil {
		t.Fatal("exact found nothing")
	}
	if !p.Feasible(c) {
		t.Fatal("exact choice infeasible")
	}
	// Optimum: {0,2} = 10+2 = 12 using (4,1)? Check {1,0}: 6+9=15 with
	// weight (2,5) infeasible dim1=5>4. {0,1}: 15 with (6,1): dim0=6>4.
	// {1,0}: (2,5) no. {0,2}: (4,1) ok value 12. {1,1}: (3,2) value 11.
	// {2,0}: (2,4) value 12. So best is 12.
	if got := p.Value(c); got != 12 {
		t.Errorf("exact value = %v, want 12 (choice %v)", got, c)
	}
}

func TestSolveExactInfeasible(t *testing.T) {
	p := &Problem{
		Capacity: []float64{1},
		Groups: [][]Item{
			{{Value: 1, Weight: []float64{2}}},
		},
	}
	if c := p.SolveExact(); c != nil {
		t.Errorf("infeasible instance solved: %v", c)
	}
	if c := p.SolveGreedy(); c != nil {
		t.Errorf("greedy solved infeasible instance: %v", c)
	}
}

func TestSolveGreedyFeasibleAndReasonable(t *testing.T) {
	p := smallProblem()
	c := p.SolveGreedy()
	if c == nil {
		t.Fatal("greedy found nothing")
	}
	if !p.Feasible(c) {
		t.Fatal("greedy choice infeasible")
	}
	exact := p.Value(p.SolveExact())
	if got := p.Value(c); got < 0.5*exact {
		t.Errorf("greedy value %v too far from exact %v", got, exact)
	}
}

func TestSolveLR(t *testing.T) {
	p := smallProblem()
	res := p.SolveLR(100)
	if res.Lambda == nil || len(res.Lambda) != 2 {
		t.Fatalf("LR lambda = %v", res.Lambda)
	}
	for d, l := range res.Lambda {
		if l < 0 {
			t.Errorf("negative multiplier λ[%d]=%v", d, l)
		}
	}
	exact := p.Value(p.SolveExact())
	if res.UpperBound < exact-1e-6 {
		t.Errorf("dual bound %v below primal optimum %v", res.UpperBound, exact)
	}
	if res.Feasible && p.Value(res.Choice) > res.UpperBound+1e-6 {
		t.Error("primal exceeds dual bound")
	}
	// Degenerate calls.
	if r := p.SolveLR(0); r.Lambda != nil {
		t.Error("maxIter=0 should return zero result")
	}
	bad := &Problem{}
	if r := bad.SolveLR(10); r.Lambda != nil {
		t.Error("invalid problem should return zero result")
	}
}

// On an unconstrained instance LR multipliers must stay at zero and the
// relaxed choice must match per-group maxima.
func TestSolveLRUnconstrained(t *testing.T) {
	p := &Problem{
		Capacity: []float64{100, 100},
		Groups: [][]Item{
			{{Value: 1, Weight: []float64{1, 1}}, {Value: 5, Weight: []float64{2, 2}}},
			{{Value: 3, Weight: []float64{1, 0}}, {Value: 2, Weight: []float64{0, 1}}},
		},
	}
	res := p.SolveLR(100)
	if !res.Feasible {
		t.Fatal("unconstrained LR infeasible")
	}
	if got := p.Value(res.Choice); got != 8 {
		t.Errorf("LR choice value = %v, want 8", got)
	}
	for d, l := range res.Lambda {
		if l != 0 {
			t.Errorf("λ[%d] = %v, want 0", d, l)
		}
	}
}

// Property test: on random instances, exact ≥ greedy, exact ≥ any LR
// feasible choice, and the LR dual upper-bounds the exact optimum.
func TestSolverRelationsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	gen := func() *Problem {
		groups := 1 + rng.Intn(3)
		dims := 1 + rng.Intn(2)
		p := &Problem{Capacity: make([]float64, dims)}
		for d := range p.Capacity {
			p.Capacity[d] = float64(2 + rng.Intn(6))
		}
		for g := 0; g < groups; g++ {
			n := 1 + rng.Intn(4)
			items := make([]Item, n)
			for i := range items {
				w := make([]float64, dims)
				for d := range w {
					w[d] = float64(rng.Intn(4))
				}
				items[i] = Item{Value: float64(rng.Intn(10)), Weight: w}
			}
			p.Groups = append(p.Groups, items)
		}
		return p
	}
	f := func() bool {
		p := gen()
		exact := p.SolveExact()
		greedy := p.SolveGreedy()
		lr := p.SolveLR(50)
		if exact == nil {
			// If exact says infeasible, greedy cannot find a solution
			// either (it would be a counterexample).
			return greedy == nil
		}
		if !p.Feasible(exact) {
			return false
		}
		ev := p.Value(exact)
		if greedy != nil {
			if !p.Feasible(greedy) {
				return false
			}
			if p.Value(greedy) > ev+1e-9 {
				return false
			}
		}
		if lr.UpperBound < ev-1e-6 {
			return false
		}
		if lr.Feasible && p.Value(lr.Choice) > ev+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}
