// Package mmkp implements the multiple-choice multidimensional knapsack
// problem (MMKP) the paper's runtime managers reduce to: given groups of
// items (one operating point per item), pick exactly one item per group
// maximizing total value subject to multidimensional capacity
// constraints.
//
// Three solvers are provided:
//
//   - SolveExact: depth-first branch-and-bound, exact on the small
//     instances runtime management produces (≤ tens of items per group,
//     a handful of groups).
//   - SolveGreedy: the aggregate-resource heuristic in the spirit of
//     Ykman-Couvreur et al., used as a fast reference point.
//   - SolveLR: Lagrangian relaxation with a subgradient method (bounded
//     iterations) after Wildermann et al.; it returns the multipliers
//     that the MMKP-LR scheduler uses to cost configurations.
package mmkp

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Item is one choice within a group.
type Item struct {
	// Value is the profit of selecting the item (maximized).
	Value float64
	// Weight is the multidimensional resource demand.
	Weight []float64
}

// Problem is an MMKP instance. Exactly one item per group must be chosen.
type Problem struct {
	// Capacity is the per-dimension knapsack capacity.
	Capacity []float64
	// Groups holds the per-group item lists.
	Groups [][]Item
}

// Choice is a per-group selected item index.
type Choice []int

// Validate checks structural consistency.
func (p *Problem) Validate() error {
	if len(p.Capacity) == 0 {
		return errors.New("mmkp: empty capacity")
	}
	if len(p.Groups) == 0 {
		return errors.New("mmkp: no groups")
	}
	for g, items := range p.Groups {
		if len(items) == 0 {
			return fmt.Errorf("mmkp: group %d empty", g)
		}
		for i, it := range items {
			if len(it.Weight) != len(p.Capacity) {
				return fmt.Errorf("mmkp: group %d item %d: weight arity %d vs %d",
					g, i, len(it.Weight), len(p.Capacity))
			}
			for d, w := range it.Weight {
				if w < 0 || math.IsNaN(w) {
					return fmt.Errorf("mmkp: group %d item %d: bad weight[%d]=%v", g, i, d, w)
				}
			}
			if math.IsNaN(it.Value) {
				return fmt.Errorf("mmkp: group %d item %d: NaN value", g, i)
			}
		}
	}
	return nil
}

// Feasible reports whether the choice satisfies all capacity constraints.
func (p *Problem) Feasible(c Choice) bool {
	if len(c) != len(p.Groups) {
		return false
	}
	used := make([]float64, len(p.Capacity))
	for g, idx := range c {
		if idx < 0 || idx >= len(p.Groups[g]) {
			return false
		}
		for d, w := range p.Groups[g][idx].Weight {
			used[d] += w
		}
	}
	for d := range used {
		if used[d] > p.Capacity[d]+1e-9 {
			return false
		}
	}
	return true
}

// Value returns the total value of a choice (no feasibility check).
func (p *Problem) Value(c Choice) float64 {
	total := 0.0
	for g, idx := range c {
		total += p.Groups[g][idx].Value
	}
	return total
}

// SolveExact finds a maximum-value feasible choice by depth-first
// branch-and-bound. It returns nil when the instance is infeasible.
// Groups are explored in input order; within a group, items are tried in
// descending value so that good incumbents appear early.
func (p *Problem) SolveExact() Choice {
	if err := p.Validate(); err != nil {
		return nil
	}
	n := len(p.Groups)
	dims := len(p.Capacity)
	// Per-group value-descending item order and per-suffix max values for
	// the bound.
	order := make([][]int, n)
	maxVal := make([]float64, n+1) // maxVal[g] = Σ_{h≥g} max value of group h
	for g := n - 1; g >= 0; g-- {
		idx := make([]int, len(p.Groups[g]))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			return p.Groups[g][idx[a]].Value > p.Groups[g][idx[b]].Value
		})
		order[g] = idx
		maxVal[g] = maxVal[g+1] + p.Groups[g][idx[0]].Value
	}
	used := make([]float64, dims)
	cur := make(Choice, n)
	var best Choice
	bestVal := math.Inf(-1)
	var dfs func(g int, acc float64)
	dfs = func(g int, acc float64) {
		if g == n {
			if acc > bestVal {
				bestVal = acc
				best = append(Choice(nil), cur...)
			}
			return
		}
		if acc+maxVal[g] <= bestVal {
			return // bound: cannot beat incumbent
		}
		for _, i := range order[g] {
			it := p.Groups[g][i]
			ok := true
			for d := 0; d < dims; d++ {
				if used[d]+it.Weight[d] > p.Capacity[d]+1e-9 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for d := 0; d < dims; d++ {
				used[d] += it.Weight[d]
			}
			cur[g] = i
			dfs(g+1, acc+it.Value)
			for d := 0; d < dims; d++ {
				used[d] -= it.Weight[d]
			}
		}
	}
	dfs(0, 0)
	if math.IsInf(bestVal, -1) {
		return nil
	}
	return best
}

// aggregate returns the capacity-normalized total weight of an item,
// the single scalar resource demand of the Ykman-Couvreur heuristic.
func (p *Problem) aggregate(it Item) float64 {
	a := 0.0
	for d, w := range it.Weight {
		if p.Capacity[d] > 0 {
			a += w / p.Capacity[d]
		} else if w > 0 {
			return math.Inf(1)
		}
	}
	return a
}

// SolveGreedy computes a feasible choice with the aggregate-resource
// heuristic: start from the per-group minimum-aggregate item, then apply
// the best value-per-aggregate upgrade until no feasible upgrade remains.
// It returns nil when even the minimal selection is infeasible.
func (p *Problem) SolveGreedy() Choice {
	if err := p.Validate(); err != nil {
		return nil
	}
	n := len(p.Groups)
	cur := make(Choice, n)
	for g, items := range p.Groups {
		bestI, bestA := 0, math.Inf(1)
		for i, it := range items {
			if a := p.aggregate(it); a < bestA {
				bestA, bestI = a, i
			}
		}
		cur[g] = bestI
	}
	if !p.Feasible(cur) {
		return nil
	}
	for {
		type upgrade struct {
			g, i  int
			score float64
			dv    float64
		}
		best := upgrade{g: -1}
		for g, items := range p.Groups {
			curIt := items[cur[g]]
			for i, it := range items {
				if i == cur[g] || it.Value <= curIt.Value {
					continue
				}
				trial := append(Choice(nil), cur...)
				trial[g] = i
				if !p.Feasible(trial) {
					continue
				}
				dv := it.Value - curIt.Value
				da := p.aggregate(it) - p.aggregate(curIt)
				score := dv
				if da > 1e-12 {
					score = dv / da
				} else {
					score = math.Inf(1) // free value
				}
				if best.g < 0 || score > best.score {
					best = upgrade{g: g, i: i, score: score, dv: dv}
				}
			}
		}
		if best.g < 0 {
			break
		}
		cur[best.g] = best.i
	}
	return cur
}

// LRResult carries the outcome of the Lagrangian relaxation.
type LRResult struct {
	// Lambda is the final non-negative multiplier vector (one per
	// resource dimension).
	Lambda []float64
	// Choice is the per-group argmax selection under the final
	// multipliers (not necessarily capacity-feasible).
	Choice Choice
	// Feasible reports whether Choice satisfies the capacities.
	Feasible bool
	// UpperBound is the best (smallest) Lagrangian dual value seen,
	// an upper bound on the optimal primal value.
	UpperBound float64
	// Iterations is the number of subgradient steps performed.
	Iterations int
}

// SolveLR runs the subgradient method on the Lagrangian relaxation of the
// MMKP for at most maxIter iterations (the paper's MMKP-LR limits it to
// 100). The relaxation dualizes the capacity constraints:
//
//	L(λ) = Σ_g max_i (v_i − λ·w_i) + λ·C,   λ ≥ 0.
//
// The returned multipliers price the resources; the MMKP-LR scheduler
// turns them into per-configuration costs.
func (p *Problem) SolveLR(maxIter int) LRResult {
	res := LRResult{}
	if err := p.Validate(); err != nil || maxIter <= 0 {
		return res
	}
	dims := len(p.Capacity)
	lambda := make([]float64, dims)
	bestDual := math.Inf(1)
	bestLambda := make([]float64, dims)
	// Initial step size from the value scale of the instance.
	scale := 0.0
	for _, items := range p.Groups {
		groupMax := math.Inf(-1)
		for _, it := range items {
			if v := math.Abs(it.Value); v > groupMax {
				groupMax = v
			}
		}
		scale += groupMax
	}
	if scale == 0 {
		scale = 1
	}
	choice := make(Choice, len(p.Groups))
	for k := 1; k <= maxIter; k++ {
		// Per-group argmax of v − λ·w.
		dual := 0.0
		usage := make([]float64, dims)
		for g, items := range p.Groups {
			bestI, bestV := 0, math.Inf(-1)
			for i, it := range items {
				v := it.Value
				for d, w := range it.Weight {
					v -= lambda[d] * w
				}
				if v > bestV {
					bestV, bestI = v, i
				}
			}
			choice[g] = bestI
			dual += bestV
			for d, w := range items[bestI].Weight {
				usage[d] += w
			}
		}
		for d := range lambda {
			dual += lambda[d] * p.Capacity[d]
		}
		if dual < bestDual {
			bestDual = dual
			copy(bestLambda, lambda)
		}
		// Subgradient of the dual at λ: C − usage (for the λ·(C−usage)
		// term); we ascend toward feasibility: increase λ_d when
		// usage exceeds capacity.
		norm2 := 0.0
		grad := make([]float64, dims)
		for d := range grad {
			grad[d] = usage[d] - p.Capacity[d]
			norm2 += grad[d] * grad[d]
		}
		if norm2 < 1e-18 {
			break // relaxed solution feasible and complementary
		}
		step := scale / (float64(k) * math.Sqrt(norm2))
		for d := range lambda {
			lambda[d] += step * grad[d]
			if lambda[d] < 0 {
				lambda[d] = 0
			}
		}
		res.Iterations = k
	}
	// Final selection under the best multipliers seen.
	copy(lambda, bestLambda)
	usage := make([]float64, dims)
	for g, items := range p.Groups {
		bestI, bestV := 0, math.Inf(-1)
		for i, it := range items {
			v := it.Value
			for d, w := range it.Weight {
				v -= lambda[d] * w
			}
			if v > bestV {
				bestV, bestI = v, i
			}
		}
		choice[g] = bestI
		for d, w := range items[bestI].Weight {
			usage[d] += w
		}
	}
	feasible := true
	for d := range usage {
		if usage[d] > p.Capacity[d]+1e-9 {
			feasible = false
			break
		}
	}
	res.Lambda = lambda
	res.Choice = append(Choice(nil), choice...)
	res.Feasible = feasible
	res.UpperBound = bestDual
	return res
}
