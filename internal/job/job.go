// Package job models runtime-manager requests and jobs.
//
// A request σ = ⟨α, δ, λ, ρ⟩ carries an arrival time, an absolute
// deadline, the application to run, and — once admitted and partially
// executed — the remaining progress ratio ρ ∈ (0, 1]. The scheduler works
// on Job values, which bind a request to its operating-point table.
package job

import (
	"fmt"
	"math"
	"sort"

	"adaptrm/internal/opset"
)

// Job is one admitted, unfinished request at a scheduling instant.
type Job struct {
	// ID identifies the job within a scheduling problem. IDs must be
	// unique and non-negative.
	ID int
	// Table is the application's Pareto-filtered operating-point table.
	Table *opset.Table
	// Arrival is the request arrival time α (absolute seconds).
	Arrival float64
	// Deadline is the absolute firm deadline δ.
	Deadline float64
	// Remaining is the remaining progress ratio ρ ∈ (0, 1]; 1 means the
	// job has not started.
	Remaining float64
}

// Validate checks the job's fields at scheduling instant t.
func (j *Job) Validate(t float64) error {
	if j.ID < 0 {
		return fmt.Errorf("job %d: negative ID", j.ID)
	}
	if j.Table == nil || j.Table.Len() == 0 {
		return fmt.Errorf("job %d: missing operating-point table", j.ID)
	}
	if j.Remaining <= 0 || j.Remaining > 1 || math.IsNaN(j.Remaining) {
		return fmt.Errorf("job %d: remaining ratio %v out of (0,1]", j.ID, j.Remaining)
	}
	if j.Arrival > t {
		return fmt.Errorf("job %d: arrival %v after scheduling instant %v", j.ID, j.Arrival, t)
	}
	if j.Deadline <= t {
		return fmt.Errorf("job %d: deadline %v not after scheduling instant %v", j.ID, j.Deadline, t)
	}
	return nil
}

// Slack returns δ − t, the wall-clock budget left at instant t.
func (j *Job) Slack(t float64) float64 { return j.Deadline - t }

// MinRemainingTime returns the shortest possible time to finish the job
// (fastest point, remaining ratio).
func (j *Job) MinRemainingTime() float64 {
	return j.Table.FastestTime() * j.Remaining
}

// MinRemainingEnergy returns the smallest possible remaining energy over
// points that, started at instant t with exclusive resources, still meet
// the deadline. It returns +Inf if no point can.
func (j *Job) MinRemainingEnergy(t float64) float64 {
	best := math.Inf(1)
	slack := j.Slack(t)
	for _, p := range j.Table.Points {
		if p.RemainingTime(j.Remaining) <= slack && p.RemainingEnergy(j.Remaining) < best {
			best = p.RemainingEnergy(j.Remaining)
		}
	}
	return best
}

// Feasible reports whether the job could meet its deadline at instant t
// when run alone on its fastest point.
func (j *Job) Feasible(t float64) bool {
	return j.MinRemainingTime() <= j.Slack(t)+1e-9
}

// Clone returns a copy sharing the (immutable) table.
func (j *Job) Clone() *Job {
	c := *j
	return &c
}

// String renders like "σ1(app=lambda1 ρ=0.81 δ=9.0)".
func (j *Job) String() string {
	return fmt.Sprintf("σ%d(app=%s ρ=%.2f δ=%.1f)", j.ID, j.Table.Name(), j.Remaining, j.Deadline)
}

// Set is an ordered collection of jobs forming one scheduling problem.
type Set []*Job

// Validate checks every job and ID uniqueness.
func (s Set) Validate(t float64) error {
	if len(s) == 0 {
		return fmt.Errorf("job: empty set")
	}
	seen := make(map[int]bool, len(s))
	for _, j := range s {
		if err := j.Validate(t); err != nil {
			return err
		}
		if seen[j.ID] {
			return fmt.Errorf("job %d: duplicate ID", j.ID)
		}
		seen[j.ID] = true
	}
	return nil
}

// Clone deep-copies the set (tables stay shared).
func (s Set) Clone() Set {
	out := make(Set, len(s))
	for i, j := range s {
		out[i] = j.Clone()
	}
	return out
}

// MaxDeadline returns the largest absolute deadline in the set; this
// bounds the analysis scope of Algorithm 1.
func (s Set) MaxDeadline() float64 {
	max := math.Inf(-1)
	for _, j := range s {
		if j.Deadline > max {
			max = j.Deadline
		}
	}
	return max
}

// SortEDF sorts by ascending deadline (ties by ID, for determinism).
func (s Set) SortEDF() {
	sort.SliceStable(s, func(i, k int) bool {
		if s[i].Deadline != s[k].Deadline {
			return s[i].Deadline < s[k].Deadline
		}
		return s[i].ID < s[k].ID
	})
}

// ByID returns the job with the given ID, or nil.
func (s Set) ByID(id int) *Job {
	for _, j := range s {
		if j.ID == id {
			return j
		}
	}
	return nil
}
