package job

import (
	"math"
	"testing"

	"adaptrm/internal/opset"
	"adaptrm/internal/platform"
)

func testTable() *opset.Table {
	t := &opset.Table{App: "app", Points: []opset.Point{
		{Alloc: platform.Alloc{1, 0}, Time: 10, Energy: 2},
		{Alloc: platform.Alloc{0, 1}, Time: 4, Energy: 6},
		{Alloc: platform.Alloc{2, 0}, Time: 7, Energy: 3},
	}}
	t.SortByEnergy()
	return t
}

func TestJobValidate(t *testing.T) {
	good := &Job{ID: 1, Table: testTable(), Arrival: 0, Deadline: 5, Remaining: 1}
	if err := good.Validate(0); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Job)
		t    float64
	}{
		{"negative id", func(j *Job) { j.ID = -1 }, 0},
		{"nil table", func(j *Job) { j.Table = nil }, 0},
		{"empty table", func(j *Job) { j.Table = &opset.Table{} }, 0},
		{"rho zero", func(j *Job) { j.Remaining = 0 }, 0},
		{"rho above one", func(j *Job) { j.Remaining = 1.1 }, 0},
		{"rho NaN", func(j *Job) { j.Remaining = math.NaN() }, 0},
		{"future arrival", func(j *Job) { j.Arrival = 3 }, 0},
		{"past deadline", func(j *Job) {}, 6},
	}
	for _, tc := range cases {
		j := good.Clone()
		tc.mut(j)
		if err := j.Validate(tc.t); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestJobQueries(t *testing.T) {
	j := &Job{ID: 1, Table: testTable(), Arrival: 0, Deadline: 10, Remaining: 0.5}
	if got := j.Slack(4); got != 6 {
		t.Errorf("Slack = %v", got)
	}
	if got := j.MinRemainingTime(); got != 2 { // fastest τ=4, ρ=0.5
		t.Errorf("MinRemainingTime = %v", got)
	}
	if !j.Feasible(0) {
		t.Error("job should be feasible at t=0")
	}
	if j.Feasible(9.5) { // needs 2s, only 0.5 left
		t.Error("job should be infeasible at t=9.5")
	}
	// MinRemainingEnergy: at t=0 slack 10, all points meet deadline:
	// cheapest is τ=10 ξ=2 → 1.0 remaining energy.
	if got := j.MinRemainingEnergy(0); got != 1.0 {
		t.Errorf("MinRemainingEnergy(0) = %v", got)
	}
	// At t=7 slack 3: only τ=4 point (rem 2s) fits → 3.0×0.5... ξ=6, ρ=0.5 → 3.
	if got := j.MinRemainingEnergy(7); got != 3.0 {
		t.Errorf("MinRemainingEnergy(7) = %v", got)
	}
	// At t=9.9 nothing fits.
	if got := j.MinRemainingEnergy(9.9); !math.IsInf(got, 1) {
		t.Errorf("MinRemainingEnergy(9.9) = %v", got)
	}
	if s := j.String(); s == "" {
		t.Error("empty String")
	}
}

func TestSet(t *testing.T) {
	mk := func(id int, dl float64) *Job {
		return &Job{ID: id, Table: testTable(), Deadline: dl, Remaining: 1}
	}
	s := Set{mk(3, 9), mk(1, 5), mk(2, 5)}
	if err := s.Validate(0); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := s.MaxDeadline(); got != 9 {
		t.Errorf("MaxDeadline = %v", got)
	}
	s.SortEDF()
	if s[0].ID != 1 || s[1].ID != 2 || s[2].ID != 3 {
		t.Errorf("EDF order = %v,%v,%v (ties must break by ID)", s[0].ID, s[1].ID, s[2].ID)
	}
	if s.ByID(2) == nil || s.ByID(99) != nil {
		t.Error("ByID broken")
	}
	c := s.Clone()
	c[0].Remaining = 0.5
	if s.ByID(1).Remaining != 1 {
		t.Error("Clone aliases jobs")
	}
	// Duplicate IDs rejected.
	dup := Set{mk(1, 5), mk(1, 6)}
	if err := dup.Validate(0); err == nil {
		t.Error("duplicate IDs accepted")
	}
	var empty Set
	if err := empty.Validate(0); err == nil {
		t.Error("empty set accepted")
	}
}
