// Package desim drives the online runtime manager with a timed request
// trace in a discrete-event simulation: arrivals, job completions and
// (optionally) completion-triggered rescheduling are processed in time
// order, producing an event log, executed-timeline segments for Gantt
// rendering, and the manager's acceptance/energy statistics.
package desim

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"adaptrm/internal/opset"
	"adaptrm/internal/platform"
	"adaptrm/internal/predict"
	"adaptrm/internal/rm"
	"adaptrm/internal/sched"
	"adaptrm/internal/schedule"
	"adaptrm/internal/workload"
)

// EventKind classifies simulation events.
type EventKind int

const (
	// Arrival is a request arrival (admitted or rejected).
	Arrival EventKind = iota
	// Completion is a job finishing.
	Completion
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case Arrival:
		return "arrival"
	case Completion:
		return "completion"
	default:
		return "?"
	}
}

// Event is one simulation occurrence.
type Event struct {
	// Time is the event time.
	Time float64
	// Kind classifies the event.
	Kind EventKind
	// App is the application of an arrival.
	App string
	// JobID identifies the job (0 for rejected arrivals).
	JobID int
	// Accepted reports the admission verdict of an arrival.
	Accepted bool
	// Missed reports a deadline violation of a completion.
	Missed bool
}

// Result is a finished simulation.
type Result struct {
	// Events is the time-ordered event log.
	Events []Event
	// Stats is the manager's final accounting.
	Stats rm.Stats
	// Timeline is the executed schedule (merged segments).
	Timeline []schedule.Segment
}

// Options tunes the simulation.
type Options struct {
	// Manager options are forwarded to the runtime manager.
	Manager rm.Options
	// Predictor, when non-nil, is fed every arrival (before the
	// admission decision) so that prediction-aware schedulers such as
	// predict.Scheduler can forecast upcoming load.
	Predictor predict.Predictor
}

// Simulate runs the trace against a fresh manager using the given
// scheduler.
func Simulate(trace []workload.Request, lib *opset.Library, plat platform.Platform, scheduler sched.Scheduler, opt Options) (*Result, error) {
	if len(trace) == 0 {
		return nil, errors.New("desim: empty trace")
	}
	reqs := append([]workload.Request(nil), trace...)
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].At < reqs[j].At })
	mgr, err := rm.New(plat, lib, scheduler, opt.Manager)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	// Completion-triggered rescheduling happens inside the manager:
	// AdvanceTo re-plans automatically when RescheduleOnFinish is set.
	record := func(done []rm.Completion) {
		for _, c := range done {
			res.Events = append(res.Events, Event{
				Time: c.At, Kind: Completion, JobID: c.JobID, Missed: c.Missed,
			})
		}
	}
	for _, req := range reqs {
		// Process completions strictly before the arrival so that
		// completion-triggered rescheduling sees the true state.
		for {
			next, ok := mgr.NextCompletion()
			if !ok || next > req.At {
				break
			}
			done, err := mgr.AdvanceTo(next)
			if err != nil {
				return nil, err
			}
			record(done)
		}
		if opt.Predictor != nil {
			opt.Predictor.Observe(req.At, req.App)
		}
		id, accepted, done, err := mgr.Submit(req.At, req.App, req.Deadline)
		if err != nil {
			return nil, fmt.Errorf("desim: submit at %v: %w", req.At, err)
		}
		record(done)
		res.Events = append(res.Events, Event{
			Time: req.At, Kind: Arrival, App: req.App, JobID: id, Accepted: accepted,
		})
	}
	done, err := mgr.Drain()
	if err != nil {
		return nil, err
	}
	record(done)
	sort.SliceStable(res.Events, func(i, j int) bool { return res.Events[i].Time < res.Events[j].Time })
	res.Stats = mgr.Stats()
	res.Timeline = mgr.ExecutedTimeline()
	return res, nil
}

// WriteLog renders the event log to w, one line per event.
func (r *Result) WriteLog(w io.Writer) {
	for _, e := range r.Events {
		switch e.Kind {
		case Arrival:
			verdict := "rejected"
			if e.Accepted {
				verdict = fmt.Sprintf("accepted as σ%d", e.JobID)
			}
			fmt.Fprintf(w, "t=%8.2f  arrival   %-30s %s\n", e.Time, e.App, verdict)
		case Completion:
			miss := ""
			if e.Missed {
				miss = "  DEADLINE MISS"
			}
			fmt.Fprintf(w, "t=%8.2f  complete  σ%d%s\n", e.Time, e.JobID, miss)
		}
	}
}

// Summary renders acceptance and energy statistics.
func (r *Result) Summary(w io.Writer) {
	s := r.Stats
	fmt.Fprintf(w, "requests: %d  accepted: %d  rejected: %d  completed: %d\n",
		s.Submitted, s.Accepted, s.Rejected, s.Completed)
	fmt.Fprintf(w, "deadline misses: %d\n", s.DeadlineMisses)
	fmt.Fprintf(w, "energy: %.2f J  scheduler activations: %d  scheduling time: %v\n",
		s.Energy, s.Activations, s.SchedulingTime)
}
