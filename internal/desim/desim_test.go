package desim

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"adaptrm/internal/core"
	"adaptrm/internal/dse"
	"adaptrm/internal/lagrange"
	"adaptrm/internal/motiv"
	"adaptrm/internal/platform"
	"adaptrm/internal/rm"
	"adaptrm/internal/sched"
	"adaptrm/internal/workload"
)

// The motivational trace through the simulator: both requests admitted,
// Fig. 1(c) energy, clean event log.
func TestMotivationalTrace(t *testing.T) {
	trace := []workload.Request{
		{At: 0, App: "lambda1", Deadline: 9},
		{At: 1, App: "lambda2", Deadline: 5},
	}
	res, err := Simulate(trace, motiv.Library(), motiv.Platform(), core.New(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Accepted != 2 || res.Stats.DeadlineMisses != 0 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	if math.Abs(res.Stats.Energy-14.63) > 0.01 {
		t.Errorf("energy = %.3f, want 14.63", res.Stats.Energy)
	}
	arrivals, completions := 0, 0
	for _, e := range res.Events {
		switch e.Kind {
		case Arrival:
			arrivals++
		case Completion:
			completions++
		}
	}
	if arrivals != 2 || completions != 2 {
		t.Errorf("events: %d arrivals, %d completions", arrivals, completions)
	}
	// Time-ordered log.
	for i := 1; i < len(res.Events); i++ {
		if res.Events[i-1].Time > res.Events[i].Time+1e-9 {
			t.Fatal("event log not time-ordered")
		}
	}
	if len(res.Timeline) == 0 {
		t.Error("no executed timeline")
	}
	var log, sum bytes.Buffer
	res.WriteLog(&log)
	res.Summary(&sum)
	if !strings.Contains(log.String(), "accepted as σ1") {
		t.Errorf("log missing admission:\n%s", log.String())
	}
	if !strings.Contains(sum.String(), "deadline misses: 0") {
		t.Errorf("summary missing misses:\n%s", sum.String())
	}
}

// A long random trace must run cleanly with zero deadline misses for any
// scheduler (admitted jobs are guaranteed by construction), and the
// adaptive manager must accept at least as many requests as it rejects
// under moderate load.
func TestRandomTraceInvariants(t *testing.T) {
	plat := platform.OdroidXU4()
	lib, err := dse.StandardLibrary(plat)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := workload.Trace(lib, workload.TraceParams{Rate: 0.15, Horizon: 300, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) < 10 {
		t.Skip("trace too short for meaningful assertions")
	}
	for _, s := range []sched.Scheduler{core.New(), lagrange.New()} {
		res, err := Simulate(trace, lib, plat, s, Options{})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.Stats.DeadlineMisses != 0 {
			t.Errorf("%s: %d deadline misses", s.Name(), res.Stats.DeadlineMisses)
		}
		if res.Stats.Submitted != len(trace) {
			t.Errorf("%s: submitted %d of %d", s.Name(), res.Stats.Submitted, len(trace))
		}
		if res.Stats.Completed != res.Stats.Accepted {
			t.Errorf("%s: %d completed of %d accepted", s.Name(), res.Stats.Completed, res.Stats.Accepted)
		}
		if res.Stats.Energy <= 0 {
			t.Errorf("%s: no energy accounted", s.Name())
		}
	}
}

// RescheduleOnFinish must not increase energy on the motivational trace.
func TestRescheduleOnFinishOption(t *testing.T) {
	trace := []workload.Request{
		{At: 0, App: "lambda1", Deadline: 9},
		{At: 1, App: "lambda2", Deadline: 5},
	}
	res, err := Simulate(trace, motiv.Library(), motiv.Platform(), core.New(),
		Options{Manager: rm.Options{RescheduleOnFinish: true}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DeadlineMisses != 0 {
		t.Error("deadline missed with rescheduling")
	}
	if res.Stats.Energy > 14.63+0.01 {
		t.Errorf("energy %.3f worse than the static plan", res.Stats.Energy)
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := Simulate(nil, motiv.Library(), motiv.Platform(), core.New(), Options{}); err == nil {
		t.Error("empty trace accepted")
	}
	trace := []workload.Request{{At: 0, App: "nope", Deadline: 9}}
	if _, err := Simulate(trace, motiv.Library(), motiv.Platform(), core.New(), Options{}); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestEventKindString(t *testing.T) {
	if Arrival.String() != "arrival" || Completion.String() != "completion" || EventKind(9).String() != "?" {
		t.Error("kind strings wrong")
	}
}
