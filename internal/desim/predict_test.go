package desim

import (
	"testing"

	"adaptrm/internal/core"
	"adaptrm/internal/dse"
	"adaptrm/internal/platform"
	"adaptrm/internal/predict"
	"adaptrm/internal/workload"
)

// The Predictor option must be fed by the simulation and the proactive
// scheduler must run end to end with zero deadline misses.
func TestSimulateWithPredictor(t *testing.T) {
	plat := platform.OdroidXU4()
	lib, err := dse.StandardLibrary(plat)
	if err != nil {
		t.Fatal(err)
	}
	// Periodic stream plus light background noise.
	app := "audio-filter/small"
	var trace []workload.Request
	rel := lib.Get(app).FastestTime() * 1.5
	for ti := 0; ti < 12; ti++ {
		at := float64(ti) * 20
		trace = append(trace, workload.Request{At: at, App: app, Deadline: at + rel})
	}
	pred := predict.NewInterArrival()
	pro := &predict.Scheduler{
		Inner:   core.New(),
		Pred:    pred,
		Lib:     lib,
		Horizon: 25,
		Protect: []string{app},
	}
	res, err := Simulate(trace, lib, plat, pro, Options{Predictor: pred})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DeadlineMisses != 0 {
		t.Errorf("misses = %d", res.Stats.DeadlineMisses)
	}
	// An uncontended periodic stream must be fully admitted even with
	// its own forecasts gating admission.
	if res.Stats.Accepted != len(trace) {
		t.Errorf("accepted %d of %d", res.Stats.Accepted, len(trace))
	}
	// The predictor must have learned the 20 s period.
	fc := pred.Forecast(230, 25)
	if len(fc) == 0 {
		t.Fatal("predictor learned nothing")
	}
	if fc[0].App != app || fc[0].At < 230 || fc[0].At > 255 {
		t.Errorf("forecast = %+v", fc[0])
	}
}
