package schedcache

import (
	"testing"

	"adaptrm/internal/core"
	"adaptrm/internal/job"
	"adaptrm/internal/motiv"
	"adaptrm/internal/platform"
	"adaptrm/internal/sched"
	"adaptrm/internal/schedule"
)

func testJob(id int, app string, t, deadline, remaining float64) *job.Job {
	tbl := motiv.Library().Get(app)
	if tbl == nil {
		panic("unknown app " + app)
	}
	return &job.Job{ID: id, Table: tbl, Arrival: t, Deadline: deadline, Remaining: remaining}
}

func TestSignatureCanonicalisation(t *testing.T) {
	plat := motiv.Platform()
	p := Params{}
	a := job.Set{testJob(1, "lambda1", 0, 9, 1), testJob(2, "lambda2", 0, 5, 1)}
	b := job.Set{testJob(7, "lambda2", 0, 5, 1), testJob(3, "lambda1", 0, 9, 1)}
	if NewSignature(a, plat, 0, p) != NewSignature(b, plat, 0, p) {
		t.Error("signature depends on job order or IDs")
	}
	// Absolute time must not matter, only slack.
	c := job.Set{testJob(1, "lambda1", 10, 19, 1), testJob(2, "lambda2", 10, 15, 1)}
	if NewSignature(a, plat, 0, p) != NewSignature(c, plat, 10, p) {
		t.Error("signature depends on absolute time")
	}
	// A different progress bucket must change the signature.
	d := job.Set{testJob(1, "lambda1", 0, 9, 0.5), testJob(2, "lambda2", 0, 5, 1)}
	if NewSignature(a, plat, 0, p) == NewSignature(d, plat, 0, p) {
		t.Error("signature ignores progress")
	}
	// Slack outside the bucket must change the signature.
	e := job.Set{testJob(1, "lambda1", 0, 30, 1), testJob(2, "lambda2", 0, 5, 1)}
	if NewSignature(a, plat, 0, p) == NewSignature(e, plat, 0, p) {
		t.Error("signature ignores slack")
	}
	// A different platform must change the signature.
	if NewSignature(a, plat, 0, p) == NewSignature(a, platform.OdroidXU4(), 0, p) {
		t.Error("signature ignores platform")
	}
}

func TestPlatformHashDistinguishes(t *testing.T) {
	a := motiv.Platform()
	b := motiv.Platform()
	if PlatformHash(a) != PlatformHash(b) {
		t.Error("equal platforms hash differently")
	}
	c := motiv.Platform()
	c.Types = append([]platform.CoreType{}, c.Types...)
	c.Types[0].Count++
	if PlatformHash(a) == PlatformHash(c) {
		t.Error("different core counts hash equally")
	}
}

func TestCacheHitMissAccounting(t *testing.T) {
	plat := motiv.Platform()
	cache := New(Params{})
	jobs := job.Set{testJob(1, "lambda1", 0, 9, 1), testJob(2, "lambda2", 0, 5, 1)}
	if _, ok := cache.Lookup(jobs, plat, 0); ok {
		t.Fatal("hit on empty cache")
	}
	k, err := core.New().Schedule(jobs, plat, 0)
	if err != nil {
		t.Fatal(err)
	}
	cache.Store(jobs, plat, 0, k)
	got, ok := cache.Lookup(jobs, plat, 0)
	if !ok {
		t.Fatal("miss after store")
	}
	if err := got.Validate(plat, jobs, 0); err != nil {
		t.Fatalf("cached schedule invalid: %v", err)
	}
	// Same shape at a later instant with different job IDs must hit and
	// produce a validly shifted schedule.
	later := job.Set{testJob(8, "lambda2", 5, 10, 1), testJob(9, "lambda1", 5, 14, 1)}
	shifted, ok := cache.Lookup(later, plat, 5)
	if !ok {
		t.Fatal("time-shifted lookup missed")
	}
	if err := shifted.Validate(plat, later, 5); err != nil {
		t.Fatalf("shifted schedule invalid: %v", err)
	}
	if shifted.Segments[0].Start != 5 {
		t.Fatalf("shifted schedule starts at %v, want 5", shifted.Segments[0].Start)
	}
	s := cache.Stats()
	if s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 hits / 1 miss", s)
	}
	if got := s.HitRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("hit rate = %v", got)
	}
}

// A lookup whose progress differs slightly from the cached problem (same
// bucket, different exact ratio) cannot replay verbatim — the executed
// fraction would violate (2d) — but must be served by re-packing the
// cached operating-point assignment against the concrete ratios.
func TestCacheRepackReuse(t *testing.T) {
	plat := motiv.Platform()
	cache := New(Params{})
	jobs := job.Set{testJob(1, "lambda1", 0, 20, 1), testJob(2, "lambda2", 0, 18, 1)}
	k, err := core.New().Schedule(jobs, plat, 0)
	if err != nil {
		t.Fatal(err)
	}
	cache.Store(jobs, plat, 0, k)
	// Same shapes, marginally advanced progress: still the same progress
	// bucket (1.0 vs 0.99 both round to 16/16), so the signature matches.
	advanced := job.Set{testJob(1, "lambda1", 0, 20, 0.99), testJob(2, "lambda2", 0, 18, 0.99)}
	if NewSignature(jobs, plat, 0, cache.Params()) != NewSignature(advanced, plat, 0, cache.Params()) {
		t.Fatal("fixture no longer shares a signature; adjust ratios")
	}
	got, ok := cache.Lookup(advanced, plat, 0)
	if !ok {
		t.Fatal("re-packable lookup missed")
	}
	if err := got.Validate(plat, advanced, 0); err != nil {
		t.Fatalf("re-packed schedule invalid: %v", err)
	}
	s := cache.Stats()
	if s.Hits != 1 || s.Repacks != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 repack", s)
	}
	// The re-pack must inherit the cached point choices, not re-solve:
	// every placement in the re-packed schedule uses exactly the point
	// the cached schedule chose for that job.
	cachedPoint := map[int]int{}
	for _, seg := range k.Segments {
		for _, p := range seg.Placements {
			cachedPoint[p.JobID] = p.Point
		}
	}
	for _, seg := range got.Segments {
		for _, p := range seg.Placements {
			want, ok := cachedPoint[p.JobID]
			if !ok {
				t.Fatalf("re-pack placed job %d missing from cached schedule", p.JobID)
			}
			if p.Point != want {
				t.Fatalf("re-pack chose point %d for job %d, cached assignment was %d",
					p.Point, p.JobID, want)
			}
		}
	}
}

func TestCacheStaleEntryFallsThrough(t *testing.T) {
	plat := motiv.Platform()
	cache := New(Params{})
	jobs := job.Set{testJob(1, "lambda1", 0, 9, 1)}
	k, err := core.New().Schedule(jobs, plat, 0)
	if err != nil {
		t.Fatal(err)
	}
	cache.Store(jobs, plat, 0, k)
	// Same slack bucket but a tighter deadline than the cached schedule's
	// finish time: validation must fail and the lookup count as stale.
	finish := k.Horizon(0)
	tight := job.Set{testJob(1, "lambda1", 0, finish-0.1, 1)}
	if NewSignature(jobs, plat, 0, cache.Params()) != NewSignature(tight, plat, 0, cache.Params()) {
		t.Skip("deadline pair crosses a slack bucket; adjust fixture")
	}
	if _, ok := cache.Lookup(tight, plat, 0); ok {
		t.Fatal("stale schedule reused")
	}
	s := cache.Stats()
	if s.Stale != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 stale / 1 miss", s)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	plat := motiv.Platform()
	cache := New(Params{Capacity: 2, SlackBucket: 0.1})
	mk := func(deadline float64) job.Set {
		return job.Set{testJob(1, "lambda1", 0, deadline, 1)}
	}
	s := core.New()
	for _, dl := range []float64{9, 12, 15} {
		jobs := mk(dl)
		k, err := s.Schedule(jobs, plat, 0)
		if err != nil {
			t.Fatal(err)
		}
		cache.Store(jobs, plat, 0, k)
	}
	if cache.Len() != 2 {
		t.Fatalf("len = %d, want 2", cache.Len())
	}
	if cache.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", cache.Stats().Evictions)
	}
	// The oldest entry (deadline 9) must be gone, the newer two present.
	if _, ok := cache.Lookup(mk(9), plat, 0); ok {
		t.Error("evicted entry still served")
	}
	if _, ok := cache.Lookup(mk(12), plat, 0); !ok {
		t.Error("recent entry evicted")
	}
	if _, ok := cache.Lookup(mk(15), plat, 0); !ok {
		t.Error("most recent entry evicted")
	}
	// Lookups refresh recency: touching deadline-12 then storing a fourth
	// entry must evict deadline-15.
	if _, ok := cache.Lookup(mk(12), plat, 0); !ok {
		t.Fatal("refresh lookup missed")
	}
	jobs := mk(18)
	k, err := s.Schedule(jobs, plat, 0)
	if err != nil {
		t.Fatal(err)
	}
	cache.Store(jobs, plat, 0, k)
	if _, ok := cache.Lookup(mk(15), plat, 0); ok {
		t.Error("LRU order ignores lookup recency")
	}
	if _, ok := cache.Lookup(mk(12), plat, 0); !ok {
		t.Error("refreshed entry evicted")
	}
}

func TestWrapSchedulerCachesSolves(t *testing.T) {
	plat := motiv.Platform()
	solves := 0
	inner := sched.Func{ID: "counted", F: func(jobs job.Set, p platform.Platform, t float64) (*schedule.Schedule, error) {
		solves++
		return core.New().Schedule(jobs, p, t)
	}}
	s := Wrap(inner, nil)
	if s.Name() != "counted+cache" {
		t.Fatalf("name = %q", s.Name())
	}
	jobs := job.Set{testJob(1, "lambda1", 0, 9, 1), testJob(2, "lambda2", 0, 5, 1)}
	for i := 0; i < 5; i++ {
		k, err := s.Schedule(jobs.Clone(), plat, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.Validate(plat, jobs, 0); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	if solves != 1 {
		t.Fatalf("inner solved %d times, want 1", solves)
	}
	if st := s.Cache().Stats(); st.Hits != 4 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWrapDoesNotCacheInfeasible(t *testing.T) {
	plat := motiv.Platform()
	s := Wrap(core.New(), nil)
	// Impossible deadline: always infeasible, never cached.
	jobs := job.Set{testJob(1, "lambda1", 0, 0.01, 1)}
	for i := 0; i < 2; i++ {
		if _, err := s.Schedule(jobs.Clone(), plat, 0); err == nil {
			t.Fatal("infeasible job scheduled")
		}
	}
	if s.Cache().Len() != 0 {
		t.Fatal("infeasible outcome cached")
	}
}
