package schedcache

import (
	"testing"

	"adaptrm/internal/core"
	"adaptrm/internal/job"
	"adaptrm/internal/motiv"
)

// TestRefinementAwareEviction pins the eviction order under pressure:
// the victim is always the least-recently-used *heuristic* entry, so
// exact results (bought with budgeted background searches) survive LRU
// pressure from cheap heuristic traffic.
func TestRefinementAwareEviction(t *testing.T) {
	plat := motiv.Platform()
	s := core.New()
	mk := func(deadline float64) job.Set {
		return job.Set{testJob(1, "lambda1", 0, deadline, 1)}
	}
	add := func(c *Cache, deadline float64, exact bool) {
		jobs := mk(deadline)
		k, err := s.Schedule(jobs, plat, 0)
		if err != nil {
			t.Fatal(err)
		}
		if exact {
			c.StoreExact(jobs, plat, 0, k)
		} else {
			c.Store(jobs, plat, 0, k)
		}
	}
	has := func(c *Cache, deadline float64) bool {
		_, ok := c.Lookup(mk(deadline), plat, 0)
		return ok
	}

	// An exact entry at the LRU tail outlives a fresher heuristic one:
	// exact(9) is oldest, yet heuristic(12) is the victim.
	c := New(Params{Capacity: 2, SlackBucket: 0.1})
	add(c, 9, true)
	add(c, 12, false)
	add(c, 15, false)
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Stats().Evictions)
	}
	if !has(c, 9) {
		t.Error("exact entry evicted while a heuristic one was available")
	}
	if has(c, 12) {
		t.Error("LRU heuristic entry survived")
	}
	if !has(c, 15) {
		t.Error("just-stored entry evicted")
	}

	// Among several heuristics the least-recently-used one goes, even
	// with an exact entry sitting between them in LRU order.
	c = New(Params{Capacity: 3, SlackBucket: 0.1})
	add(c, 9, false)  // oldest heuristic — the victim
	add(c, 12, true)  // exact, protected
	add(c, 15, false) // fresher heuristic
	add(c, 18, false)
	if has(c, 9) {
		t.Error("oldest heuristic survived")
	}
	for _, dl := range []float64{12, 15, 18} {
		if !has(c, dl) {
			t.Errorf("deadline-%g entry evicted, want kept", dl)
		}
	}

	// All-exact cache: plain LRU applies — the oldest exact entry goes.
	c = New(Params{Capacity: 2, SlackBucket: 0.1})
	add(c, 9, true)
	add(c, 12, true)
	add(c, 15, true)
	if has(c, 9) {
		t.Error("all-exact cache must fall back to plain LRU")
	}
	if !has(c, 12) || !has(c, 15) {
		t.Error("newer exact entries evicted")
	}

	// StoreExact replacing an existing heuristic entry upgrades it in
	// place (no eviction), and the upgrade protects it afterwards.
	c = New(Params{Capacity: 2, SlackBucket: 0.1})
	add(c, 9, false)
	add(c, 12, false)
	add(c, 9, true) // upgrade in place
	if c.Len() != 2 || c.Stats().Evictions != 0 {
		t.Fatalf("in-place upgrade changed occupancy: len %d, evictions %d", c.Len(), c.Stats().Evictions)
	}
	add(c, 15, false)
	if !has(c, 9) {
		t.Error("upgraded entry lost its exact protection")
	}
	if has(c, 12) {
		t.Error("heuristic entry outlived the upgraded exact one")
	}
}
