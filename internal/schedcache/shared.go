package schedcache

// The shared tier: a fleet-wide, read-mostly second-level store behind
// the per-device LRU caches. The per-device cache stays the hot L1 —
// private, LRU-bounded, touched on every activation — while the shared
// tier holds one canonical entry per signature for the whole fleet, so
// a schedule solved once on any device (or precomputed offline by an
// exact solver) serves every device with the same platform.
//
// Determinism is preserved by construction rather than by locking
// discipline: Promote is a deterministic merge — the lowest-energy
// entry wins, ties broken by the canonical byte encoding of the entry —
// which is commutative, associative and idempotent, so the tier's final
// contents do not depend on the order devices raced their promotions
// in. Every lookup result is still re-validated against the concrete
// job set before reuse (the package invariant), so sharing never
// returns a schedule the solver would have been forbidden to return.
//
// Save/Load serialise the tier as canonical JSON sorted by signature:
// warming a fresh tier from a file and merging the same entries live
// produce byte-identical Save output, which is what the offline
// warm-cache workflow (rmserve -cache-warm, scripts/warm-cache.sh)
// leans on.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"adaptrm/internal/schedule"
)

// sharedEntry is one immutable canonical entry of the shared tier. The
// canonical form matches the L1 entry (segment times relative to the
// scheduling instant, placements over canonical job positions) plus the
// merge metadata: the energy of the schedule as solved and whether an
// exact solver produced it.
type sharedEntry struct {
	segments   []schedule.Segment
	assignment []int
	njobs      int
	energy     float64
	exact      bool
}

// better reports whether e should replace old under the deterministic
// merge order: strictly lower energy wins; at equal energy an exact
// entry beats a heuristic one; remaining ties break on the canonical
// byte encoding (smaller wins), giving a total order.
func (e *sharedEntry) better(old *sharedEntry) bool {
	if e.energy != old.energy {
		return e.energy < old.energy
	}
	if e.exact != old.exact {
		return e.exact
	}
	return string(e.encode(nil)) < string(old.encode(nil))
}

// encode appends the entry's canonical byte form (used only for merge
// tie-breaking; Save has its own JSON form).
func (e *sharedEntry) encode(b []byte) []byte {
	b = strconv.AppendInt(b, int64(e.njobs), 10)
	for _, a := range e.assignment {
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(a), 10)
	}
	for _, seg := range e.segments {
		b = append(b, '|')
		b = strconv.AppendFloat(b, seg.Start, 'g', -1, 64)
		b = append(b, ';')
		b = strconv.AppendFloat(b, seg.End, 'g', -1, 64)
		for _, p := range seg.Placements {
			b = append(b, ':')
			b = strconv.AppendInt(b, int64(p.JobID), 10)
			b = append(b, '@')
			b = strconv.AppendInt(b, int64(p.Point), 10)
		}
	}
	return b
}

// SharedStats snapshots the tier-global counters. Hits/Misses count
// lookups that fell through the L1 caches; Promotions counts accepted
// merges (inserts and replacements), PromotionsDropped offers that lost
// the merge. Loaded counts entries accepted from Load.
type SharedStats struct {
	Entries, ExactEntries         int
	Hits, Misses                  int64
	Promotions, PromotionsDropped int64
	Loaded                        int64
}

// Shared is the fleet-wide second-level schedule store. All methods are
// goroutine-safe; lookups take a read lock and allocate nothing.
type Shared struct {
	mu      sync.RWMutex
	entries map[Signature]*sharedEntry

	hits, misses       atomic.Int64
	promos, promoDrops atomic.Int64
	loaded             atomic.Int64
}

// NewShared creates an empty shared tier.
func NewShared() *Shared {
	return &Shared{entries: make(map[Signature]*sharedEntry)}
}

// Len returns the number of entries in the tier.
func (s *Shared) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Stats snapshots the tier counters.
func (s *Shared) Stats() SharedStats {
	s.mu.RLock()
	exact := 0
	for _, e := range s.entries {
		if e.exact {
			exact++
		}
	}
	n := len(s.entries)
	s.mu.RUnlock()
	return SharedStats{
		Entries:           n,
		ExactEntries:      exact,
		Hits:              s.hits.Load(),
		Misses:            s.misses.Load(),
		Promotions:        s.promos.Load(),
		PromotionsDropped: s.promoDrops.Load(),
		Loaded:            s.loaded.Load(),
	}
}

// get returns the entry at sig, counting the outcome. The returned
// entry is immutable — promotions replace the pointer, never mutate —
// so callers may use it outside the lock. Zero allocations: the key is
// indexed via the compiler's byteslice-to-string map elision when
// called with Signature(scratch).
func (s *Shared) get(sig Signature) (*sharedEntry, bool) {
	s.mu.RLock()
	e, ok := s.entries[sig]
	s.mu.RUnlock()
	if ok {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return e, ok
}

// promote offers an entry for sig under the deterministic merge,
// reporting whether it was accepted (inserted or replaced the previous
// winner).
func (s *Shared) promote(sig Signature, e *sharedEntry) bool {
	s.mu.Lock()
	old, ok := s.entries[sig]
	accept := !ok || e.better(old)
	if accept {
		s.entries[sig] = e
	}
	s.mu.Unlock()
	if accept {
		s.promos.Add(1)
	} else {
		s.promoDrops.Add(1)
	}
	return accept
}

// probeBytes reports presence (and exactness) of the entry at the
// signature bytes without counting the probe as a lookup. The map index
// converts through Signature in place, so the compiler's
// byteslice-to-string elision keeps the probe allocation-free.
func (s *Shared) probeBytes(sig []byte) (exact, ok bool) {
	s.mu.RLock()
	e, ok := s.entries[Signature(sig)]
	s.mu.RUnlock()
	if !ok {
		return false, false
	}
	return e.exact, true
}

// ---- wire form ----

// sharedWireEntry is the JSON form of one entry in a warm-cache file.
type sharedWireEntry struct {
	Sig        string              `json:"sig"`
	NJobs      int                 `json:"njobs"`
	Energy     float64             `json:"energy"`
	Exact      bool                `json:"exact,omitempty"`
	Assignment []int               `json:"assignment,omitempty"`
	Segments   []sharedWireSegment `json:"segments"`
}

type sharedWireSegment struct {
	Start      float64               `json:"start"`
	End        float64               `json:"end"`
	Placements []sharedWirePlacement `json:"placements,omitempty"`
}

type sharedWirePlacement struct {
	Job   int `json:"job"`
	Point int `json:"point"`
}

type sharedWireFile struct {
	Version int               `json:"version"`
	Entries []sharedWireEntry `json:"entries"`
}

// Save writes the tier as canonical JSON, entries sorted by signature,
// so identical tier contents always serialise to identical bytes
// regardless of insertion order.
func (s *Shared) Save(w io.Writer) error {
	s.mu.RLock()
	sigs := make([]string, 0, len(s.entries))
	for sig := range s.entries {
		sigs = append(sigs, string(sig))
	}
	sort.Strings(sigs)
	out := sharedWireFile{Version: 1, Entries: make([]sharedWireEntry, 0, len(sigs))}
	for _, sig := range sigs {
		e := s.entries[Signature(sig)]
		we := sharedWireEntry{
			Sig:        sig,
			NJobs:      e.njobs,
			Energy:     e.energy,
			Exact:      e.exact,
			Assignment: e.assignment,
		}
		for _, seg := range e.segments {
			ws := sharedWireSegment{Start: seg.Start, End: seg.End}
			for _, p := range seg.Placements {
				ws.Placements = append(ws.Placements, sharedWirePlacement{Job: p.JobID, Point: p.Point})
			}
			we.Segments = append(we.Segments, ws)
		}
		out.Entries = append(out.Entries, we)
	}
	s.mu.RUnlock()
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Load merges a warm-cache file into the tier through the same
// deterministic merge as live promotions, so loading is idempotent and
// commutes with concurrent traffic. Malformed entries fail the load.
func (s *Shared) Load(r io.Reader) error {
	var in sharedWireFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return fmt.Errorf("schedcache: warm file: %w", err)
	}
	if in.Version != 1 {
		return fmt.Errorf("schedcache: warm file version %d unsupported", in.Version)
	}
	for i, we := range in.Entries {
		if we.Sig == "" || we.NJobs <= 0 || len(we.Segments) == 0 {
			return fmt.Errorf("schedcache: warm file entry %d malformed", i)
		}
		if we.Assignment != nil && len(we.Assignment) != we.NJobs {
			return fmt.Errorf("schedcache: warm file entry %d: %d assignments for %d jobs",
				i, len(we.Assignment), we.NJobs)
		}
		e := &sharedEntry{
			njobs:      we.NJobs,
			energy:     we.Energy,
			exact:      we.Exact,
			assignment: we.Assignment,
		}
		for _, ws := range we.Segments {
			seg := schedule.Segment{Start: ws.Start, End: ws.End}
			for _, p := range ws.Placements {
				if p.Job < 0 || p.Job >= we.NJobs {
					return fmt.Errorf("schedcache: warm file entry %d: canonical job %d outside [0,%d)",
						i, p.Job, we.NJobs)
				}
				seg.Placements = append(seg.Placements, schedule.Placement{JobID: p.Job, Point: p.Point})
			}
			e.segments = append(e.segments, seg)
		}
		if s.promote(Signature(we.Sig), e) {
			s.loaded.Add(1)
		}
	}
	return nil
}
