package schedcache

import (
	"fmt"

	"adaptrm/internal/job"
	"adaptrm/internal/platform"
	"adaptrm/internal/sched"
	"adaptrm/internal/schedule"
)

// Scheduler wraps an inner scheduler with the memoizing cache: lookups
// that validate skip the solve entirely; misses are solved by the inner
// scheduler and stored. Infeasible outcomes are not cached — a later
// problem in the same bucket may well be feasible, and negative caching
// would turn the bucket into a false rejection.
type Scheduler struct {
	inner sched.Scheduler
	cache *Cache
}

// Wrap builds a caching scheduler around inner. A nil cache allocates a
// fresh one with default parameters.
func Wrap(inner sched.Scheduler, cache *Cache) *Scheduler {
	if cache == nil {
		cache = New(Params{})
	}
	return &Scheduler{inner: inner, cache: cache}
}

// Name implements sched.Scheduler; the wrapped name is kept so reports
// stay comparable, with a "+cache" suffix marking the memoized path.
func (s *Scheduler) Name() string { return s.inner.Name() + "+cache" }

// Cache exposes the underlying cache for stats inspection and sharing.
func (s *Scheduler) Cache() *Cache { return s.cache }

// ValidatesOutput implements sched.SelfValidating: hits are validated
// by the cache lookup and misses by Schedule before caching, so the
// runtime manager need not validate again.
func (s *Scheduler) ValidatesOutput() bool { return true }

// Schedule implements sched.Scheduler. Cache hits are validated inside
// Lookup; inner-solver results are validated here before being cached
// or returned, keeping the SelfValidating guarantee and ensuring the
// cache only ever stores constraint-satisfying schedules.
func (s *Scheduler) Schedule(jobs job.Set, plat platform.Platform, t float64) (*schedule.Schedule, error) {
	entries, order := canonical(jobs, t, s.cache.params)
	sig := signature(plat, entries, order)
	if k, ok := s.cache.lookup(sig, order, jobs, plat, t); ok {
		return k, nil
	}
	k, err := s.inner.Schedule(jobs, plat, t)
	if err != nil {
		return nil, err
	}
	if err := k.Validate(plat, jobs, t); err != nil {
		return nil, fmt.Errorf("schedcache: scheduler %s produced invalid schedule: %w", s.inner.Name(), err)
	}
	s.cache.store(sig, order, jobs, t, k, false)
	return k, nil
}
