package schedcache

import (
	"bytes"
	"strings"
	"testing"

	"adaptrm/internal/core"
	"adaptrm/internal/job"
	"adaptrm/internal/motiv"
	"adaptrm/internal/schedule"
)

func sharedFixtureEntry(energy float64, exact bool, point int) *sharedEntry {
	return &sharedEntry{
		segments: []schedule.Segment{{
			Start:      0,
			End:        1,
			Placements: []schedule.Placement{{JobID: 0, Point: point}},
		}},
		assignment: []int{point},
		njobs:      1,
		energy:     energy,
		exact:      exact,
	}
}

func saveBytes(t *testing.T, s *Shared) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The merge must be order-independent: any promotion order over the same
// offers converges to the same tier contents, byte-identical under Save.
func TestSharedMergeDeterministic(t *testing.T) {
	offers := []*sharedEntry{
		sharedFixtureEntry(3.0, false, 0),
		sharedFixtureEntry(2.0, false, 1),
		sharedFixtureEntry(2.0, true, 2), // exact beats heuristic at equal energy
		sharedFixtureEntry(5.0, true, 3),
	}
	orders := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}, {1, 3, 0, 2}}
	var want []byte
	for _, ord := range orders {
		s := NewShared()
		for _, i := range ord {
			s.promote(Signature("sig-a"), offers[i])
		}
		got := saveBytes(t, s)
		if want == nil {
			want = got
		} else if !bytes.Equal(got, want) {
			t.Fatalf("promotion order %v changed tier contents:\n%s\nvs\n%s", ord, got, want)
		}
	}
	// The winner is the exact energy-2.0 entry.
	s := NewShared()
	for _, e := range offers {
		s.promote(Signature("sig-a"), e)
	}
	e, ok := s.get(Signature("sig-a"))
	if !ok || e.energy != 2.0 || !e.exact {
		t.Fatalf("winner = %+v, want exact entry at energy 2.0", e)
	}
	// Re-offering the winner is idempotent (dropped, contents unchanged).
	before := saveBytes(t, s)
	if s.promote(Signature("sig-a"), sharedFixtureEntry(2.0, true, 2)) {
		t.Error("identical re-offer accepted")
	}
	if !bytes.Equal(saveBytes(t, s), before) {
		t.Error("idempotent re-offer changed contents")
	}
	st := s.Stats()
	if st.Entries != 1 || st.ExactEntries != 1 {
		t.Fatalf("stats = %+v, want 1 entry / 1 exact", st)
	}
}

// One device's store must serve every cache attached to the same tier:
// the first foreign lookup hits the shared tier and installs into the
// local L1, the second is a plain L1 hit.
func TestSharedCrossCachePromotion(t *testing.T) {
	plat := motiv.Platform()
	tier := NewShared()
	a := New(Params{})
	a.AttachShared(tier)
	b := New(Params{})
	b.AttachShared(tier)

	jobs := job.Set{testJob(1, "lambda1", 0, 9, 1), testJob(2, "lambda2", 0, 5, 1)}
	k, err := core.New().Schedule(jobs, plat, 0)
	if err != nil {
		t.Fatal(err)
	}
	a.Store(jobs, plat, 0, k)
	if st := a.Stats(); st.Promotions != 1 {
		t.Fatalf("store did not promote: %+v", st)
	}

	// Device B, same shape at a later instant with different IDs.
	later := job.Set{testJob(8, "lambda2", 5, 10, 1), testJob(9, "lambda1", 5, 14, 1)}
	got, ok := b.Lookup(later, plat, 5)
	if !ok {
		t.Fatal("cross-device lookup missed the shared tier")
	}
	if err := got.Validate(plat, later, 5); err != nil {
		t.Fatalf("shared-tier schedule invalid: %v", err)
	}
	if st := b.Stats(); st.SharedHits != 1 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("first lookup stats = %+v, want 1 shared hit", st)
	}
	if _, ok := b.Lookup(later, plat, 5); !ok {
		t.Fatal("second lookup missed")
	}
	if st := b.Stats(); st.Hits != 1 || st.SharedHits != 1 {
		t.Fatalf("second lookup stats = %+v, want L1 hit after install", st)
	}
	if hr := b.Stats().HitRate(); hr != 1 {
		t.Fatalf("hit rate = %v, want 1 (shared hits count as served)", hr)
	}
}

// Save → Load → Save must round-trip byte-identically, and the loaded
// tier must serve lookups exactly like the original.
func TestSharedSaveLoadRoundTrip(t *testing.T) {
	plat := motiv.Platform()
	tier := NewShared()
	c := New(Params{})
	c.AttachShared(tier)
	s := core.New()
	for _, fix := range []struct {
		jobs job.Set
		t    float64
	}{
		{job.Set{testJob(1, "lambda1", 0, 9, 1), testJob(2, "lambda2", 0, 5, 1)}, 0},
		{job.Set{testJob(3, "lambda1", 0, 30, 1)}, 0},
		{job.Set{testJob(4, "lambda2", 2, 12, 1)}, 2},
	} {
		k, err := s.Schedule(fix.jobs, plat, fix.t)
		if err != nil {
			t.Fatal(err)
		}
		c.Store(fix.jobs, plat, fix.t, k)
	}
	first := saveBytes(t, tier)

	warmed := NewShared()
	if err := warmed.Load(bytes.NewReader(first)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saveBytes(t, warmed), first) {
		t.Fatal("Save→Load→Save is not byte-identical")
	}
	if st := warmed.Stats(); st.Loaded != int64(tier.Len()) {
		t.Fatalf("loaded %d entries, tier has %d", st.Loaded, tier.Len())
	}
	// Loading the same file again is a no-op.
	if err := warmed.Load(bytes.NewReader(first)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saveBytes(t, warmed), first) {
		t.Fatal("re-load changed tier contents")
	}

	// A cold cache over the warmed tier serves the original problems.
	cold := New(Params{})
	cold.AttachShared(warmed)
	jobs := job.Set{testJob(10, "lambda1", 0, 9, 1), testJob(11, "lambda2", 0, 5, 1)}
	got, ok := cold.Lookup(jobs, plat, 0)
	if !ok {
		t.Fatal("warmed tier did not serve the lookup")
	}
	if err := got.Validate(plat, jobs, 0); err != nil {
		t.Fatalf("warmed schedule invalid: %v", err)
	}
}

func TestSharedLoadRejectsMalformed(t *testing.T) {
	for name, in := range map[string]string{
		"version":     `{"version":2,"entries":[]}`,
		"empty sig":   `{"version":1,"entries":[{"sig":"","njobs":1,"energy":1,"segments":[{"start":0,"end":1}]}]}`,
		"no jobs":     `{"version":1,"entries":[{"sig":"x","njobs":0,"energy":1,"segments":[{"start":0,"end":1}]}]}`,
		"no segments": `{"version":1,"entries":[{"sig":"x","njobs":1,"energy":1,"segments":[]}]}`,
		"bad assign":  `{"version":1,"entries":[{"sig":"x","njobs":2,"energy":1,"assignment":[0],"segments":[{"start":0,"end":1}]}]}`,
		"bad job":     `{"version":1,"entries":[{"sig":"x","njobs":1,"energy":1,"segments":[{"start":0,"end":1,"placements":[{"job":7,"point":0}]}]}]}`,
	} {
		s := NewShared()
		if err := s.Load(strings.NewReader(in)); err == nil {
			t.Errorf("%s: malformed warm file accepted", name)
		}
	}
}

// StoreExact replaces the L1 entry and wins the merge against an
// equal-energy heuristic promotion.
func TestStoreExactPreferredInMerge(t *testing.T) {
	plat := motiv.Platform()
	tier := NewShared()
	c := New(Params{})
	c.AttachShared(tier)
	jobs := job.Set{testJob(1, "lambda1", 0, 9, 1)}
	k, err := core.New().Schedule(jobs, plat, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Store(jobs, plat, 0, k)
	if exact, ok := c.ProbeShared(jobs, plat, 0); !ok || exact {
		t.Fatalf("probe after heuristic store = (exact=%v, ok=%v)", exact, ok)
	}
	c.StoreExact(jobs, plat, 0, k)
	if exact, ok := c.ProbeShared(jobs, plat, 0); !ok || !exact {
		t.Fatalf("probe after exact store = (exact=%v, ok=%v)", exact, ok)
	}
	if st := c.Stats(); st.Promotions != 2 {
		t.Fatalf("promotions = %d, want 2 (exact replaced heuristic)", st.Promotions)
	}
}

// The shared-tier probe must not allocate: the signature is built in
// cache scratch and the map is indexed through the byteslice-to-string
// conversion elision. The CI allocs gate pins the benchmark flavour of
// this at 0 allocs/op.
func TestProbeSharedAllocFree(t *testing.T) {
	plat := motiv.Platform()
	tier := NewShared()
	c := New(Params{})
	c.AttachShared(tier)
	jobs := job.Set{testJob(1, "lambda1", 0, 9, 1), testJob(2, "lambda2", 0, 5, 1)}
	k, err := core.New().Schedule(jobs, plat, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Store(jobs, plat, 0, k)
	if n := testing.AllocsPerRun(200, func() {
		if _, ok := c.ProbeShared(jobs, plat, 0); !ok {
			t.Fatal("probe missed")
		}
	}); n != 0 {
		t.Fatalf("ProbeShared allocates %v per run, want 0", n)
	}
}

// BenchmarkSharedTierLookup measures the fleet-wide tier probe — scratch
// signature build plus shared map lookup — and is pinned at 0 allocs/op
// by benchmarks/allocs-baseline.txt.
func BenchmarkSharedTierLookup(b *testing.B) {
	plat := motiv.Platform()
	tier := NewShared()
	c := New(Params{})
	c.AttachShared(tier)
	jobs := job.Set{testJob(1, "lambda1", 0, 9, 1), testJob(2, "lambda2", 0, 5, 1)}
	k, err := core.New().Schedule(jobs, plat, 0)
	if err != nil {
		b.Fatal(err)
	}
	c.Store(jobs, plat, 0, k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.ProbeShared(jobs, plat, 0); !ok {
			b.Fatal("probe missed")
		}
	}
}
