// Package schedcache memoizes scheduler results across activations: when
// the runtime manager repeatedly faces the same workload shape — the same
// application mix at similar progress and deadline slack on the same
// platform — the previously computed segmented schedule is reused instead
// of re-running the MMKP-MDF solve. This is the first hot-path
// optimisation of the repo: on steady request streams most activations
// involve one or two well-known job shapes, and a solve costs orders of
// magnitude more than a signature lookup.
//
// Correctness does not depend on the signature buckets: a cached result
// is re-validated against the concrete job set (constraints 2b–2e of the
// paper) before being reused, and falls through to the wrapped scheduler
// when validation fails. The cache therefore never returns a schedule the
// solver itself would have been forbidden to return.
//
// Reuse happens at two levels. When the concrete problem matches the
// cached one exactly (same remaining ratios, deadlines no tighter), the
// memoized schedule is replayed verbatim. Otherwise — the common case for
// in-progress job sets, whose remaining ratios never repeat exactly — the
// cached operating-point assignment is re-packed with sched.PackEDF
// against the concrete remaining ratios and deadlines. Packing is linear
// in segments while the MMKP-MDF solve explores many assignments, so a
// re-pack hit still skips nearly all of the solve cost; the energy choice
// is inherited from a problem at most one bucket away.
package schedcache

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"sync"

	"adaptrm/internal/job"
	"adaptrm/internal/platform"
	"adaptrm/internal/sched"
	"adaptrm/internal/schedule"
)

// Default bucket widths of the signature quantisation.
const (
	// DefaultProgressBucket quantises the remaining ratio ρ ∈ (0, 1].
	DefaultProgressBucket = 1.0 / 16
	// DefaultSlackBucket quantises the deadline slack δ − t in relative
	// steps: two slacks fall into the same bucket when they differ by
	// less than this fraction. Relative bucketing matches deadline
	// ranges spanning orders of magnitude; the re-pack reuse path keeps
	// coarse buckets safe, since the concrete deadlines are always
	// honoured and only the point choice is inherited.
	DefaultSlackBucket = 0.25
)

// Params tunes signature construction and cache capacity.
type Params struct {
	// Capacity bounds the number of cached schedules; once full, the
	// least-recently-used entry is evicted. Zero means DefaultCapacity.
	Capacity int
	// ProgressBucket is the quantisation width for remaining ratios;
	// zero means DefaultProgressBucket.
	ProgressBucket float64
	// SlackBucket is the relative quantisation step for deadline slack
	// (0.25 ⇒ slacks within 25% share a bucket); zero means
	// DefaultSlackBucket.
	SlackBucket float64
}

// DefaultCapacity is the cache capacity when Params.Capacity is zero.
const DefaultCapacity = 1024

func (p *Params) normalize() {
	if p.Capacity <= 0 {
		p.Capacity = DefaultCapacity
	}
	if p.ProgressBucket <= 0 {
		p.ProgressBucket = DefaultProgressBucket
	}
	if p.SlackBucket <= 0 {
		p.SlackBucket = DefaultSlackBucket
	}
}

// Stats counts cache activity. Hits are lookups whose cached result
// validated against the concrete job set; Repacks counts the subset of
// hits served by re-packing the cached assignment rather than replaying
// the schedule verbatim. Stale counts lookups that found a signature
// match which failed both reuse paths (counted as misses too, since they
// trigger a solve).
type Stats struct {
	Hits, Misses, Stale, Evictions, Repacks int
}

// HitRate returns Hits / (Hits + Misses), or 0 when idle.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// PlatformHash fingerprints a platform over its full type list (name,
// count, frequency, IPC, power, DVFS levels). Equal hashes mean
// identical platforms only with overwhelming probability — it is a
// 64-bit FNV digest, not an equality proof — which is safe here solely
// because every cached result is re-validated against the concrete
// platform before reuse. Do not build validation-free sharing on it.
func PlatformHash(p platform.Platform) uint64 {
	h := fnv.New64a()
	write := func(s string) { h.Write([]byte(s)); h.Write([]byte{0}) }
	write(p.Name)
	for _, t := range p.Types {
		write(t.Name)
		write(strconv.Itoa(t.Count))
		write(strconv.FormatFloat(t.FreqHz, 'g', -1, 64))
		write(strconv.FormatFloat(t.IPC, 'g', -1, 64))
		write(strconv.FormatFloat(t.StaticWatts, 'g', -1, 64))
		write(strconv.FormatFloat(t.DynamicWatts, 'g', -1, 64))
		for _, l := range t.Levels {
			write(strconv.FormatFloat(l.FreqHz, 'g', -1, 64))
			write(strconv.FormatFloat(l.VoltScale, 'g', -1, 64))
		}
	}
	return h.Sum64()
}

// sigEntry is one job's contribution to a signature.
type sigEntry struct {
	table    string
	progress int // bucketed remaining ratio
	slack    int // bucketed deadline slack
}

// Signature is the canonical cache key of a scheduling problem: the
// platform fingerprint plus the multiset of job shapes (table name,
// progress bucket, slack bucket), order-independent over the job set.
type Signature string

// NewSignature canonicalises (jobs, plat, t) into a Signature. Job IDs
// and absolute times do not participate: two problems with the same
// shapes at different instants share a signature.
func NewSignature(jobs job.Set, plat platform.Platform, t float64, p Params) Signature {
	p.normalize()
	entries, _ := canonical(jobs, t, p)
	return signature(plat, entries)
}

func signature(plat platform.Platform, entries []sigEntry) Signature {
	var b []byte
	b = strconv.AppendUint(b, PlatformHash(plat), 16)
	for _, e := range entries {
		b = append(b, '|')
		b = append(b, e.table...)
		b = append(b, ';')
		b = strconv.AppendInt(b, int64(e.progress), 10)
		b = append(b, ';')
		b = strconv.AppendInt(b, int64(e.slack), 10)
	}
	return Signature(b)
}

// slackBucket maps a slack to its logarithmic bucket index: slacks
// within a factor of (1 + width) share an index. Non-positive slack
// (which no feasible schedule can serve anyway) collapses to a sentinel.
func slackBucket(slack, width float64) int {
	if slack <= 0 {
		return math.MinInt32
	}
	return int(math.Floor(math.Log(slack) / math.Log1p(width)))
}

// canonical buckets every job and sorts by (table, progress bucket,
// slack bucket), breaking exact ties by (remaining, deadline, ID). It
// returns the sorted entries (the signature basis) together with the
// job indices in that order (the placement-remapping basis), so the
// bucket and ordering logic exists exactly once.
func canonical(jobs job.Set, t float64, p Params) ([]sigEntry, []int) {
	entries := make([]sigEntry, len(jobs))
	order := make([]int, len(jobs))
	for i, j := range jobs {
		entries[i] = sigEntry{
			table:    j.Table.Name(),
			progress: int(math.Round(j.Remaining / p.ProgressBucket)),
			slack:    slackBucket(j.Slack(t), p.SlackBucket),
		}
		order[i] = i
	}
	sort.Slice(order, func(i, k int) bool {
		a, b := entries[order[i]], entries[order[k]]
		if a.table != b.table {
			return a.table < b.table
		}
		if a.progress != b.progress {
			return a.progress < b.progress
		}
		if a.slack != b.slack {
			return a.slack < b.slack
		}
		ja, jb := jobs[order[i]], jobs[order[k]]
		if ja.Remaining != jb.Remaining {
			return ja.Remaining < jb.Remaining
		}
		if ja.Deadline != jb.Deadline {
			return ja.Deadline < jb.Deadline
		}
		return ja.ID < jb.ID
	})
	sorted := make([]sigEntry, len(jobs))
	for i, idx := range order {
		sorted[i] = entries[idx]
	}
	return sorted, order
}

// entry is one cached result in canonical form: segment times are
// relative to the scheduling instant and placements reference canonical
// job positions instead of concrete job IDs. When every job used exactly
// one operating point throughout the schedule (always true for MMKP-MDF
// output), assignment[pos] holds that point index and enables the
// re-pack reuse path; otherwise assignment is nil and only verbatim
// replay applies.
type entry struct {
	sig        Signature
	segments   []schedule.Segment // Start/End relative to t0; JobID = canonical index
	assignment []int              // per canonical position; nil when points vary
	njobs      int
}

// Cache is a goroutine-safe LRU of canonicalised schedules.
type Cache struct {
	mu     sync.Mutex
	params Params
	lru    *list.List // front = most recent; values are *entry
	index  map[Signature]*list.Element
	stats  Stats

	// packMu guards the shared re-pack scratch. Lookups acquire it with
	// TryLock so the common single-caller path re-packs allocation-free
	// while concurrent lookups fall back to fresh scratch.
	packMu sync.Mutex
	packer sched.Packer
	dense  sched.DenseAssignment
}

// New creates a cache with the given parameters.
func New(p Params) *Cache {
	p.normalize()
	return &Cache{
		params: p,
		lru:    list.New(),
		index:  make(map[Signature]*list.Element),
	}
}

// Params returns the normalised cache parameters.
func (c *Cache) Params() Params { return c.params }

// Len returns the number of cached schedules.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns a snapshot of the activity counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Lookup returns a schedule for (jobs, plat, t) reconstructed from a
// cached canonical entry, or ok=false on a miss. Verbatim replay is
// tried first (exact progress match); when it fails, the cached
// operating-point assignment is re-packed against the concrete job set.
// A signature match failing both paths is reported as a miss (and
// counted in Stats.Stale); the stale entry stays cached, since other job
// sets in the same bucket may still validate.
func (c *Cache) Lookup(jobs job.Set, plat platform.Platform, t float64) (*schedule.Schedule, bool) {
	entries, order := canonical(jobs, t, c.params)
	return c.lookup(signature(plat, entries), order, jobs, plat, t)
}

// lookup is Lookup with the signature and canonical order precomputed,
// so the wrapper's miss path reuses them for the store.
func (c *Cache) lookup(sig Signature, order []int, jobs job.Set, plat platform.Platform, t float64) (*schedule.Schedule, bool) {
	c.mu.Lock()
	el, ok := c.index[sig]
	var e *entry
	if ok {
		c.lru.MoveToFront(el)
		e = el.Value.(*entry)
	}
	c.mu.Unlock()
	if !ok {
		c.miss()
		return nil, false
	}
	if k, err := c.reconstruct(e, jobs, order, t); err == nil {
		if err := k.Validate(plat, jobs, t); err == nil {
			c.hit(false)
			return k, true
		}
	}
	if k, err := c.repack(e, jobs, order, plat, t); err == nil {
		if err := k.Validate(plat, jobs, t); err == nil {
			c.hit(true)
			return k, true
		}
	}
	c.stale()
	return nil, false
}

// repack rebuilds a schedule from the cached operating-point assignment
// via EDF packing against the concrete remaining ratios and deadlines,
// reusing the cache's packer scratch when no other lookup holds it.
func (c *Cache) repack(e *entry, jobs job.Set, order []int, plat platform.Platform, t float64) (*schedule.Schedule, error) {
	if e.assignment == nil || e.njobs != len(jobs) {
		return nil, fmt.Errorf("schedcache: no assignment for %d jobs", len(jobs))
	}
	var packer *sched.Packer
	var dense sched.DenseAssignment
	if c.packMu.TryLock() {
		packer, dense = &c.packer, c.dense
		defer func() {
			c.dense = dense
			c.packMu.Unlock()
		}()
	} else {
		packer = &sched.Packer{}
	}
	dense = dense.Resize(len(jobs))
	for pos, pt := range e.assignment {
		dense[order[pos]] = int32(pt)
	}
	packer.Reset(plat)
	if err := packer.Pack(jobs, dense, t); err != nil {
		return nil, err
	}
	return packer.Schedule(), nil
}

// Store canonicalises and caches the schedule computed for (jobs, t),
// evicting the least-recently-used entry when over capacity.
func (c *Cache) Store(jobs job.Set, plat platform.Platform, t float64, k *schedule.Schedule) {
	entries, order := canonical(jobs, t, c.params)
	c.store(signature(plat, entries), order, jobs, t, k)
}

// store is Store with the signature and canonical order precomputed.
func (c *Cache) store(sig Signature, order []int, jobs job.Set, t float64, k *schedule.Schedule) {
	pos := make(map[int]int, len(order)) // job ID -> canonical position
	for ci, idx := range order {
		pos[jobs[idx].ID] = ci
	}
	segs := make([]schedule.Segment, 0, len(k.Segments))
	assignment := make([]int, len(jobs))
	for i := range assignment {
		assignment[i] = -1
	}
	for _, seg := range k.Segments {
		ps := make([]schedule.Placement, 0, len(seg.Placements))
		for _, p := range seg.Placements {
			ci, ok := pos[p.JobID]
			if !ok {
				return // foreign job ID: refuse to cache
			}
			if assignment != nil {
				switch assignment[ci] {
				case -1, p.Point:
					assignment[ci] = p.Point
				default:
					assignment = nil // job switches points: verbatim-only entry
				}
			}
			ps = append(ps, schedule.Placement{JobID: ci, Point: p.Point})
		}
		segs = append(segs, schedule.Segment{Start: seg.Start - t, End: seg.End - t, Placements: ps})
	}
	if assignment != nil {
		for _, a := range assignment {
			if a == -1 {
				assignment = nil // job never scheduled: cannot re-pack
				break
			}
		}
	}
	e := &entry{sig: sig, segments: segs, assignment: assignment, njobs: len(jobs)}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[sig]; ok {
		el.Value = e
		c.lru.MoveToFront(el)
		return
	}
	c.index[sig] = c.lru.PushFront(e)
	for c.lru.Len() > c.params.Capacity {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.index, back.Value.(*entry).sig)
		c.stats.Evictions++
	}
}

// reconstruct rebinds a canonical entry to the concrete job set at
// instant t: canonical positions map to the job set's canonical order and
// segment times shift by t.
func (c *Cache) reconstruct(e *entry, jobs job.Set, order []int, t float64) (*schedule.Schedule, error) {
	if e.njobs != len(jobs) {
		return nil, fmt.Errorf("schedcache: entry for %d jobs, got %d", e.njobs, len(jobs))
	}
	k := &schedule.Schedule{Segments: make([]schedule.Segment, len(e.segments))}
	for i, seg := range e.segments {
		ps := make([]schedule.Placement, len(seg.Placements))
		for pi, p := range seg.Placements {
			if p.JobID < 0 || p.JobID >= len(order) {
				return nil, fmt.Errorf("schedcache: canonical index %d out of range", p.JobID)
			}
			ps[pi] = schedule.Placement{JobID: jobs[order[p.JobID]].ID, Point: p.Point}
		}
		k.Segments[i] = schedule.Segment{Start: seg.Start + t, End: seg.End + t, Placements: ps}
	}
	return k, nil
}

func (c *Cache) hit(repacked bool) {
	c.mu.Lock()
	c.stats.Hits++
	if repacked {
		c.stats.Repacks++
	}
	c.mu.Unlock()
}

func (c *Cache) miss() {
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
}

func (c *Cache) stale() {
	c.mu.Lock()
	c.stats.Misses++
	c.stats.Stale++
	c.mu.Unlock()
}
