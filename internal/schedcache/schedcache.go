// Package schedcache memoizes scheduler results across activations: when
// the runtime manager repeatedly faces the same workload shape — the same
// application mix at similar progress and deadline slack on the same
// platform — the previously computed segmented schedule is reused instead
// of re-running the MMKP-MDF solve. This is the first hot-path
// optimisation of the repo: on steady request streams most activations
// involve one or two well-known job shapes, and a solve costs orders of
// magnitude more than a signature lookup.
//
// Correctness does not depend on the signature buckets: a cached result
// is re-validated against the concrete job set (constraints 2b–2e of the
// paper) before being reused, and falls through to the wrapped scheduler
// when validation fails. The cache therefore never returns a schedule the
// solver itself would have been forbidden to return.
//
// Reuse happens at two levels. When the concrete problem matches the
// cached one exactly (same remaining ratios, deadlines no tighter), the
// memoized schedule is replayed verbatim. Otherwise — the common case for
// in-progress job sets, whose remaining ratios never repeat exactly — the
// cached operating-point assignment is re-packed with sched.PackEDF
// against the concrete remaining ratios and deadlines. Packing is linear
// in segments while the MMKP-MDF solve explores many assignments, so a
// re-pack hit still skips nearly all of the solve cost; the energy choice
// is inherited from a problem at most one bucket away.
package schedcache

import (
	"container/list"
	"fmt"
	"math"
	"strconv"
	"sync"

	"adaptrm/internal/job"
	"adaptrm/internal/platform"
	"adaptrm/internal/sched"
	"adaptrm/internal/schedule"
)

// Default bucket widths of the signature quantisation.
const (
	// DefaultProgressBucket quantises the remaining ratio ρ ∈ (0, 1].
	DefaultProgressBucket = 1.0 / 16
	// DefaultSlackBucket quantises the deadline slack δ − t in relative
	// steps: two slacks fall into the same bucket when they differ by
	// less than this fraction. Relative bucketing matches deadline
	// ranges spanning orders of magnitude; the re-pack reuse path keeps
	// coarse buckets safe, since the concrete deadlines are always
	// honoured and only the point choice is inherited.
	DefaultSlackBucket = 0.25
)

// Params tunes signature construction and cache capacity.
type Params struct {
	// Capacity bounds the number of cached schedules; once full, the
	// least-recently-used entry is evicted. Zero means DefaultCapacity.
	Capacity int
	// ProgressBucket is the quantisation width for remaining ratios;
	// zero means DefaultProgressBucket.
	ProgressBucket float64
	// SlackBucket is the relative quantisation step for deadline slack
	// (0.25 ⇒ slacks within 25% share a bucket); zero means
	// DefaultSlackBucket.
	SlackBucket float64
}

// DefaultCapacity is the cache capacity when Params.Capacity is zero.
const DefaultCapacity = 1024

func (p *Params) normalize() {
	if p.Capacity <= 0 {
		p.Capacity = DefaultCapacity
	}
	if p.ProgressBucket <= 0 {
		p.ProgressBucket = DefaultProgressBucket
	}
	if p.SlackBucket <= 0 {
		p.SlackBucket = DefaultSlackBucket
	}
}

// Stats counts cache activity. Hits are lookups whose L1-cached result
// validated against the concrete job set; SharedHits are lookups that
// missed (or failed validation in) the L1 but validated from the
// attached shared tier. Repacks counts the subset of hits — either tier
// — served by re-packing the cached assignment rather than replaying
// the schedule verbatim. Stale counts lookups that found a signature
// match which failed every reuse path (counted as misses too, since
// they trigger a solve). Promotions counts entries this cache offered
// to the shared tier that won the deterministic merge.
type Stats struct {
	Hits, Misses, Stale, Evictions, Repacks int
	SharedHits, Promotions                  int
}

// HitRate returns served lookups over all lookups, or 0 when idle.
// Shared-tier hits count as served: the solve was skipped either way.
func (s Stats) HitRate() float64 {
	served := s.Hits + s.SharedHits
	if served+s.Misses == 0 {
		return 0
	}
	return float64(served) / float64(served+s.Misses)
}

// FNV-64a parameters, hand-rolled so PlatformHash streams field bytes
// through plain arithmetic instead of hash/fnv's allocating Write path;
// the digest is byte-identical to the previous hash/fnv implementation.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// PlatformHash fingerprints a platform over its full type list (name,
// count, frequency, IPC, power, DVFS levels). Equal hashes mean
// identical platforms only with overwhelming probability — it is a
// 64-bit FNV digest, not an equality proof — which is safe here solely
// because every cached result is re-validated against the concrete
// platform before reuse. Do not build validation-free sharing on it.
// The function performs no heap allocations, keeping the shared-tier
// probe path at 0 allocs/op.
func PlatformHash(p platform.Platform) uint64 {
	h := uint64(fnvOffset64)
	var tmp [32]byte
	write := func(s string) {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * fnvPrime64
		}
		h = (h ^ 0) * fnvPrime64 // NUL field separator
	}
	writeBytes := func(b []byte) {
		for _, c := range b {
			h = (h ^ uint64(c)) * fnvPrime64
		}
		h = (h ^ 0) * fnvPrime64
	}
	writeFloat := func(f float64) { writeBytes(strconv.AppendFloat(tmp[:0], f, 'g', -1, 64)) }
	write(p.Name)
	for _, t := range p.Types {
		write(t.Name)
		writeBytes(strconv.AppendInt(tmp[:0], int64(t.Count), 10))
		writeFloat(t.FreqHz)
		writeFloat(t.IPC)
		writeFloat(t.StaticWatts)
		writeFloat(t.DynamicWatts)
		for _, l := range t.Levels {
			writeFloat(l.FreqHz)
			writeFloat(l.VoltScale)
		}
	}
	return h
}

// sigEntry is one job's contribution to a signature.
type sigEntry struct {
	table    string
	progress int // bucketed remaining ratio
	slack    int // bucketed deadline slack
}

// Signature is the canonical cache key of a scheduling problem: the
// platform fingerprint plus the multiset of job shapes (table name,
// progress bucket, slack bucket), order-independent over the job set.
type Signature string

// NewSignature canonicalises (jobs, plat, t) into a Signature. Job IDs
// and absolute times do not participate: two problems with the same
// shapes at different instants share a signature.
func NewSignature(jobs job.Set, plat platform.Platform, t float64, p Params) Signature {
	p.normalize()
	entries, order := canonical(jobs, t, p)
	return signature(plat, entries, order)
}

func signature(plat platform.Platform, entries []sigEntry, order []int) Signature {
	return Signature(appendSignature(nil, plat, entries, order))
}

// appendSignature emits the signature bytes into dst: the platform
// fingerprint followed by the job entries in canonical order. entries
// is indexed through order, so callers never materialise a sorted copy.
func appendSignature(dst []byte, plat platform.Platform, entries []sigEntry, order []int) []byte {
	dst = strconv.AppendUint(dst, PlatformHash(plat), 16)
	for _, idx := range order {
		e := &entries[idx]
		dst = append(dst, '|')
		dst = append(dst, e.table...)
		dst = append(dst, ';')
		dst = strconv.AppendInt(dst, int64(e.progress), 10)
		dst = append(dst, ';')
		dst = strconv.AppendInt(dst, int64(e.slack), 10)
	}
	return dst
}

// slackBucket maps a slack to its logarithmic bucket index: slacks
// within a factor of (1 + width) share an index. Non-positive slack
// (which no feasible schedule can serve anyway) collapses to a sentinel.
func slackBucket(slack, width float64) int {
	if slack <= 0 {
		return math.MinInt32
	}
	return int(math.Floor(math.Log(slack) / math.Log1p(width)))
}

// canonical buckets every job and sorts by (table, progress bucket,
// slack bucket), breaking exact ties by (remaining, deadline, ID). It
// returns the bucketed entries (in job order — index them through the
// permutation) together with the job indices in canonical order (the
// placement-remapping basis), so the bucket and ordering logic exists
// exactly once.
func canonical(jobs job.Set, t float64, p Params) ([]sigEntry, []int) {
	entries := fillEntries(make([]sigEntry, 0, len(jobs)), jobs, t, p)
	order := make([]int, len(jobs))
	sortOrder(entries, jobs, order)
	return entries, order
}

// fillEntries appends one bucketed sigEntry per job to dst.
func fillEntries(dst []sigEntry, jobs job.Set, t float64, p Params) []sigEntry {
	for _, j := range jobs {
		dst = append(dst, sigEntry{
			table:    j.Table.Name(),
			progress: int(math.Round(j.Remaining / p.ProgressBucket)),
			slack:    slackBucket(j.Slack(t), p.SlackBucket),
		})
	}
	return dst
}

// sortOrder fills order with 0..n-1 and insertion-sorts it into
// canonical order. Insertion sort keeps the scratch path allocation-free
// (sort.Slice allocates its swapper) and job sets are small enough that
// the quadratic worst case never dominates a solve.
func sortOrder(entries []sigEntry, jobs job.Set, order []int) {
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for k := i; k > 0 && canonLess(entries, jobs, order[k], order[k-1]); k-- {
			order[k], order[k-1] = order[k-1], order[k]
		}
	}
}

// canonLess reports whether job a precedes job b in canonical order.
func canonLess(entries []sigEntry, jobs job.Set, a, b int) bool {
	ea, eb := &entries[a], &entries[b]
	if ea.table != eb.table {
		return ea.table < eb.table
	}
	if ea.progress != eb.progress {
		return ea.progress < eb.progress
	}
	if ea.slack != eb.slack {
		return ea.slack < eb.slack
	}
	ja, jb := jobs[a], jobs[b]
	if ja.Remaining != jb.Remaining {
		return ja.Remaining < jb.Remaining
	}
	if ja.Deadline != jb.Deadline {
		return ja.Deadline < jb.Deadline
	}
	return ja.ID < jb.ID
}

// sigScratch holds the reusable buffers of an allocation-free signature
// build: bucketed entries, the canonical permutation and the signature
// bytes. The returned byte slice aliases buf and is valid until the
// next build.
type sigScratch struct {
	entries []sigEntry
	order   []int
	buf     []byte
}

func (sc *sigScratch) signature(jobs job.Set, plat platform.Platform, t float64, p Params) []byte {
	sc.entries = fillEntries(sc.entries[:0], jobs, t, p)
	if cap(sc.order) < len(jobs) {
		sc.order = make([]int, len(jobs))
	}
	sc.order = sc.order[:len(jobs)]
	sortOrder(sc.entries, jobs, sc.order)
	sc.buf = appendSignature(sc.buf[:0], plat, sc.entries, sc.order)
	return sc.buf
}

// entry is one cached result in canonical form: segment times are
// relative to the scheduling instant and placements reference canonical
// job positions instead of concrete job IDs. When every job used exactly
// one operating point throughout the schedule (always true for MMKP-MDF
// output), assignment[pos] holds that point index and enables the
// re-pack reuse path; otherwise assignment is nil and only verbatim
// replay applies.
type entry struct {
	sig        Signature
	segments   []schedule.Segment // Start/End relative to t0; JobID = canonical index
	assignment []int              // per canonical position; nil when points vary
	njobs      int
	// exact marks a schedule produced by an exact solver (StoreExact,
	// i.e. the anytime refiner). Eviction prefers sacrificing heuristic
	// entries: an exact result cost a budgeted branch-and-bound search,
	// a heuristic one is a µs re-solve away.
	exact bool
}

// Cache is a goroutine-safe LRU of canonicalised schedules, optionally
// backed by a fleet-wide Shared second tier.
type Cache struct {
	mu     sync.Mutex
	params Params
	lru    *list.List // front = most recent; values are *entry
	index  map[Signature]*list.Element
	stats  Stats
	shared *Shared // nil when the cache runs standalone

	// packMu guards the shared re-pack scratch. Lookups acquire it with
	// TryLock so the common single-caller path re-packs allocation-free
	// while concurrent lookups fall back to fresh scratch.
	packMu sync.Mutex
	packer sched.Packer
	dense  sched.DenseAssignment

	// sigMu guards the signature scratch under the same TryLock
	// discipline; the shared-tier probe path builds its signature here
	// with zero heap allocations (pinned by BenchmarkSharedTierLookup).
	sigMu   sync.Mutex
	scratch sigScratch
}

// New creates a cache with the given parameters.
func New(p Params) *Cache {
	p.normalize()
	return &Cache{
		params: p,
		lru:    list.New(),
		index:  make(map[Signature]*list.Element),
	}
}

// Params returns the normalised cache parameters.
func (c *Cache) Params() Params { return c.params }

// Len returns the number of cached schedules.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns a snapshot of the activity counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// AttachShared backs the cache with a fleet-wide second tier. Attach
// before traffic starts; lookups snapshot the pointer under the cache
// lock, so attaching mid-flight is safe but leaves concurrent lookups
// on whichever tier they observed.
func (c *Cache) AttachShared(s *Shared) {
	c.mu.Lock()
	c.shared = s
	c.mu.Unlock()
}

// SharedTier returns the attached shared tier, or nil.
func (c *Cache) SharedTier() *Shared {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shared
}

// ProbeShared reports whether the shared tier holds an entry for the
// signature of (jobs, plat, t) — and whether that entry came from an
// exact solver — without reconstructing a schedule or touching the hit
// counters. The anytime refiner uses it to skip solves whose result is
// already fleet-visible; the probe performs zero heap allocations
// (signature built in cache scratch, pinned by
// BenchmarkSharedTierLookup).
func (c *Cache) ProbeShared(jobs job.Set, plat platform.Platform, t float64) (exact, ok bool) {
	c.mu.Lock()
	shared := c.shared
	c.mu.Unlock()
	if shared == nil {
		return false, false
	}
	if c.sigMu.TryLock() {
		sig := c.scratch.signature(jobs, plat, t, c.params)
		exact, ok = shared.probeBytes(sig)
		c.sigMu.Unlock()
		return exact, ok
	}
	entries, order := canonical(jobs, t, c.params)
	return shared.probeBytes(appendSignature(nil, plat, entries, order))
}

// Lookup returns a schedule for (jobs, plat, t) reconstructed from a
// cached canonical entry, or ok=false on a miss. Verbatim replay is
// tried first (exact progress match); when it fails, the cached
// operating-point assignment is re-packed against the concrete job set.
// When the L1 entry fails every reuse path the attached shared tier is
// consulted the same way — a shared hit is re-installed into the L1 so
// later lookups stay local. A signature match failing every path is
// reported as a miss (and counted in Stats.Stale); the stale entry
// stays cached, since other job sets in the same bucket may validate.
func (c *Cache) Lookup(jobs job.Set, plat platform.Platform, t float64) (*schedule.Schedule, bool) {
	entries, order := canonical(jobs, t, c.params)
	return c.lookup(signature(plat, entries, order), order, jobs, plat, t)
}

// lookup is Lookup with the signature and canonical order precomputed,
// so the wrapper's miss path reuses them for the store: a full miss
// costs exactly one signature build across both tiers and the store.
func (c *Cache) lookup(sig Signature, order []int, jobs job.Set, plat platform.Platform, t float64) (*schedule.Schedule, bool) {
	c.mu.Lock()
	el, found := c.index[sig]
	var e *entry
	if found {
		c.lru.MoveToFront(el)
		e = el.Value.(*entry)
	}
	shared := c.shared
	c.mu.Unlock()
	if found {
		if k, repacked, ok := c.tryReuse(e, jobs, order, plat, t); ok {
			c.hit(repacked)
			return k, true
		}
	}
	if shared != nil {
		if se, ok := shared.get(sig); ok {
			le := &entry{sig: sig, segments: se.segments, assignment: se.assignment, njobs: se.njobs}
			if k, repacked, ok := c.tryReuse(le, jobs, order, plat, t); ok {
				c.install(sig, le)
				c.sharedHit(repacked)
				return k, true
			}
			found = true // shared entry existed but failed validation: stale
		}
	}
	if found {
		c.stale()
	} else {
		c.miss()
	}
	return nil, false
}

// tryReuse attempts both reuse paths of a canonical entry against the
// concrete job set: verbatim reconstruction first, then re-packing the
// cached operating-point assignment. Either way the result is validated
// before being reported usable.
func (c *Cache) tryReuse(e *entry, jobs job.Set, order []int, plat platform.Platform, t float64) (*schedule.Schedule, bool, bool) {
	if k, err := c.reconstruct(e, jobs, order, t); err == nil {
		if err := k.Validate(plat, jobs, t); err == nil {
			return k, false, true
		}
	}
	if k, err := c.repack(e, jobs, order, plat, t); err == nil {
		if err := k.Validate(plat, jobs, t); err == nil {
			return k, true, true
		}
	}
	return nil, false, false
}

// repack rebuilds a schedule from the cached operating-point assignment
// via EDF packing against the concrete remaining ratios and deadlines,
// reusing the cache's packer scratch when no other lookup holds it.
func (c *Cache) repack(e *entry, jobs job.Set, order []int, plat platform.Platform, t float64) (*schedule.Schedule, error) {
	if e.assignment == nil || e.njobs != len(jobs) {
		return nil, fmt.Errorf("schedcache: no assignment for %d jobs", len(jobs))
	}
	var packer *sched.Packer
	var dense sched.DenseAssignment
	if c.packMu.TryLock() {
		packer, dense = &c.packer, c.dense
		defer func() {
			c.dense = dense
			c.packMu.Unlock()
		}()
	} else {
		packer = &sched.Packer{}
	}
	dense = dense.Resize(len(jobs))
	for pos, pt := range e.assignment {
		dense[order[pos]] = int32(pt)
	}
	packer.Reset(plat)
	if err := packer.Pack(jobs, dense, t); err != nil {
		return nil, err
	}
	return packer.Schedule(), nil
}

// Store canonicalises and caches the schedule computed for (jobs, t),
// evicting the least-recently-used entry when over capacity. When a
// shared tier is attached the entry is also offered to it under the
// deterministic merge, marked as a heuristic (non-exact) result.
func (c *Cache) Store(jobs job.Set, plat platform.Platform, t float64, k *schedule.Schedule) {
	entries, order := canonical(jobs, t, c.params)
	c.store(signature(plat, entries, order), order, jobs, t, k, false)
}

// StoreExact canonicalises and caches a schedule produced by an exact
// solver (the anytime refiner), replacing the L1 entry and promoting to
// the shared tier with the exact flag set so merges prefer it over a
// heuristic result of equal energy.
func (c *Cache) StoreExact(jobs job.Set, plat platform.Platform, t float64, k *schedule.Schedule) {
	entries, order := canonical(jobs, t, c.params)
	c.store(signature(plat, entries, order), order, jobs, t, k, true)
}

// store is Store with the signature and canonical order precomputed.
func (c *Cache) store(sig Signature, order []int, jobs job.Set, t float64, k *schedule.Schedule, exact bool) {
	pos := make(map[int]int, len(order)) // job ID -> canonical position
	for ci, idx := range order {
		pos[jobs[idx].ID] = ci
	}
	segs := make([]schedule.Segment, 0, len(k.Segments))
	assignment := make([]int, len(jobs))
	for i := range assignment {
		assignment[i] = -1
	}
	for _, seg := range k.Segments {
		ps := make([]schedule.Placement, 0, len(seg.Placements))
		for _, p := range seg.Placements {
			ci, ok := pos[p.JobID]
			if !ok {
				return // foreign job ID: refuse to cache
			}
			if assignment != nil {
				switch assignment[ci] {
				case -1, p.Point:
					assignment[ci] = p.Point
				default:
					assignment = nil // job switches points: verbatim-only entry
				}
			}
			ps = append(ps, schedule.Placement{JobID: ci, Point: p.Point})
		}
		segs = append(segs, schedule.Segment{Start: seg.Start - t, End: seg.End - t, Placements: ps})
	}
	if assignment != nil {
		for _, a := range assignment {
			if a == -1 {
				assignment = nil // job never scheduled: cannot re-pack
				break
			}
		}
	}
	e := &entry{sig: sig, segments: segs, assignment: assignment, njobs: len(jobs), exact: exact}
	c.mu.Lock()
	shared := c.shared
	c.mu.Unlock()
	if shared != nil {
		se := &sharedEntry{
			segments:   segs,
			assignment: assignment,
			njobs:      len(jobs),
			energy:     k.Energy(jobs),
			exact:      exact,
		}
		if shared.promote(sig, se) {
			c.mu.Lock()
			c.stats.Promotions++
			c.mu.Unlock()
		}
	}
	c.install(sig, e)
}

// install inserts (or replaces) an L1 entry, evicting when over
// capacity. Eviction is refinement-aware LRU: the victim is the
// least-recently-used heuristic entry, so exact results — each bought
// with a budgeted background search — stay hot under pressure; only
// when every entry is exact does plain LRU apply. An all-exact cache
// thrashing its tail is still strictly better than re-running the
// searches that filled it.
func (c *Cache) install(sig Signature, e *entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[sig]; ok {
		el.Value = e
		c.lru.MoveToFront(el)
		return
	}
	c.index[sig] = c.lru.PushFront(e)
	for c.lru.Len() > c.params.Capacity {
		victim := c.lru.Back()
		for el := victim; el != nil; el = el.Prev() {
			if !el.Value.(*entry).exact {
				victim = el
				break
			}
		}
		c.lru.Remove(victim)
		delete(c.index, victim.Value.(*entry).sig)
		c.stats.Evictions++
	}
}

// reconstruct rebinds a canonical entry to the concrete job set at
// instant t: canonical positions map to the job set's canonical order and
// segment times shift by t.
func (c *Cache) reconstruct(e *entry, jobs job.Set, order []int, t float64) (*schedule.Schedule, error) {
	if e.njobs != len(jobs) {
		return nil, fmt.Errorf("schedcache: entry for %d jobs, got %d", e.njobs, len(jobs))
	}
	k := &schedule.Schedule{Segments: make([]schedule.Segment, len(e.segments))}
	for i, seg := range e.segments {
		ps := make([]schedule.Placement, len(seg.Placements))
		for pi, p := range seg.Placements {
			if p.JobID < 0 || p.JobID >= len(order) {
				return nil, fmt.Errorf("schedcache: canonical index %d out of range", p.JobID)
			}
			ps[pi] = schedule.Placement{JobID: jobs[order[p.JobID]].ID, Point: p.Point}
		}
		k.Segments[i] = schedule.Segment{Start: seg.Start + t, End: seg.End + t, Placements: ps}
	}
	return k, nil
}

func (c *Cache) sharedHit(repacked bool) {
	c.mu.Lock()
	c.stats.SharedHits++
	if repacked {
		c.stats.Repacks++
	}
	c.mu.Unlock()
}

func (c *Cache) hit(repacked bool) {
	c.mu.Lock()
	c.stats.Hits++
	if repacked {
		c.stats.Repacks++
	}
	c.mu.Unlock()
}

func (c *Cache) miss() {
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
}

func (c *Cache) stale() {
	c.mu.Lock()
	c.stats.Misses++
	c.stats.Stale++
	c.mu.Unlock()
}
