package platform

import (
	"bytes"
	"strings"
	"testing"
)

func TestPlatformJSONRoundTrip(t *testing.T) {
	for _, p := range []Platform{OdroidXU4(), TriCluster(), OdroidXU4DVFS()} {
		var buf bytes.Buffer
		if err := p.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if got.Name != p.Name || got.NumTypes() != p.NumTypes() {
			t.Fatalf("%s: round trip mismatch", p.Name)
		}
		for i := range p.Types {
			if got.Types[i].Name != p.Types[i].Name ||
				got.Types[i].Count != p.Types[i].Count ||
				got.Types[i].FreqHz != p.Types[i].FreqHz ||
				len(got.Types[i].Levels) != len(p.Types[i].Levels) {
				t.Fatalf("%s: type %d mismatch", p.Name, i)
			}
		}
	}
}

func TestPlatformReadJSONRejects(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{bad")); err == nil {
		t.Error("garbage accepted")
	}
	// Valid JSON, invalid platform (no types).
	if _, err := ReadJSON(strings.NewReader(`{"Name":"x","Types":[]}`)); err == nil {
		t.Error("typeless platform accepted")
	}
}
