package platform

import (
	"strings"
	"testing"
)

func TestPlatformValidate(t *testing.T) {
	tests := []struct {
		name    string
		plat    Platform
		wantErr bool
	}{
		{"odroid ok", OdroidXU4(), false},
		{"motivational ok", Motivational2L2B(), false},
		{"empty", Platform{Name: "x"}, true},
		{"dup names", Platform{Name: "x", Types: []CoreType{
			{Name: "a", Count: 1, FreqHz: 1, IPC: 1},
			{Name: "a", Count: 1, FreqHz: 1, IPC: 1},
		}}, true},
		{"zero count", Platform{Name: "x", Types: []CoreType{
			{Name: "a", Count: 0, FreqHz: 1, IPC: 1},
		}}, true},
		{"bad speed", Platform{Name: "x", Types: []CoreType{
			{Name: "a", Count: 1, FreqHz: 0, IPC: 1},
		}}, true},
		{"negative power", Platform{Name: "x", Types: []CoreType{
			{Name: "a", Count: 1, FreqHz: 1, IPC: 1, StaticWatts: -1},
		}}, true},
		{"empty type name", Platform{Name: "x", Types: []CoreType{
			{Name: "", Count: 1, FreqHz: 1, IPC: 1},
		}}, true},
	}
	for _, tc := range tests {
		err := tc.plat.Validate()
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: Validate() err=%v, wantErr=%v", tc.name, err, tc.wantErr)
		}
	}
}

func TestPlatformAccessors(t *testing.T) {
	p := OdroidXU4()
	if got := p.NumTypes(); got != 2 {
		t.Fatalf("NumTypes = %d, want 2", got)
	}
	if got := p.TotalCores(); got != 8 {
		t.Errorf("TotalCores = %d, want 8", got)
	}
	if got := p.Capacity(); !got.Equal(Alloc{4, 4}) {
		t.Errorf("Capacity = %v, want [4 4]", got)
	}
	if got := p.TypeIndex("big"); got != 1 {
		t.Errorf("TypeIndex(big) = %d, want 1", got)
	}
	if got := p.TypeIndex("gpu"); got != -1 {
		t.Errorf("TypeIndex(gpu) = %d, want -1", got)
	}
	if s := p.String(); !strings.Contains(s, "4xlittle") || !strings.Contains(s, "4xbig") {
		t.Errorf("String = %q, want core-count summary", s)
	}
}

func TestCoreTypeDerived(t *testing.T) {
	ct := CoreType{Name: "big", Count: 4, FreqHz: 1.8e9, IPC: 1.45, StaticWatts: 0.3, DynamicWatts: 1.2}
	if got, want := ct.Speed(), 1.8e9*1.45; got != want {
		t.Errorf("Speed = %g, want %g", got, want)
	}
	if got, want := ct.BusyWatts(), 1.5; got != want {
		t.Errorf("BusyWatts = %g, want %g", got, want)
	}
	// The big cluster must be faster and hungrier than the little one for
	// the synthetic tables to have the paper's shape.
	p := OdroidXU4()
	little, big := p.Types[0], p.Types[1]
	if big.Speed() <= little.Speed() {
		t.Errorf("big speed %g not above little speed %g", big.Speed(), little.Speed())
	}
	if big.BusyWatts() <= little.BusyWatts() {
		t.Errorf("big power %g not above little power %g", big.BusyWatts(), little.BusyWatts())
	}
}
