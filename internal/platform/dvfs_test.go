package platform

import (
	"strings"
	"testing"
)

func TestWithLevelsBase(t *testing.T) {
	p := OdroidXU4DVFS()
	// All -1 keeps the base configuration.
	q, label, err := p.WithLevels([]int{-1, -1})
	if err != nil {
		t.Fatal(err)
	}
	if label != "" {
		t.Errorf("base label = %q", label)
	}
	for i := range p.Types {
		if q.Types[i].FreqHz != p.Types[i].FreqHz || q.Types[i].DynamicWatts != p.Types[i].DynamicWatts {
			t.Errorf("type %d changed without level selection", i)
		}
	}
}

func TestWithLevelsScaling(t *testing.T) {
	p := OdroidXU4DVFS()
	q, label, err := p.WithLevels([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(label, "little@1.2GHz") || !strings.Contains(label, "big@1.0GHz") {
		t.Errorf("label = %q", label)
	}
	// Lower frequency and voltage: slower, strictly less dynamic power.
	if q.Types[0].FreqHz >= p.Types[0].FreqHz {
		t.Error("little frequency not reduced")
	}
	if q.Types[0].DynamicWatts >= p.Types[0].DynamicWatts {
		t.Error("little dynamic power not reduced")
	}
	if q.Types[1].DynamicWatts >= p.Types[1].DynamicWatts {
		t.Error("big dynamic power not reduced")
	}
	// Energy per operation must drop at the lower level (the point of
	// DVFS): dynamic watts per unit speed.
	perOpBase := p.Types[1].DynamicWatts / p.Types[1].Speed()
	perOpLow := q.Types[1].DynamicWatts / q.Types[1].Speed()
	if perOpLow >= perOpBase {
		t.Errorf("energy per op did not improve: %g vs %g", perOpLow, perOpBase)
	}
	// The original platform is untouched.
	if p.Types[0].FreqHz != 1.5e9 {
		t.Error("WithLevels mutated the receiver")
	}
	// Derived platform stays valid.
	if err := q.Validate(); err != nil {
		t.Error(err)
	}
}

func TestWithLevelsErrors(t *testing.T) {
	p := OdroidXU4DVFS()
	if _, _, err := p.WithLevels([]int{0}); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, _, err := p.WithLevels([]int{5, -1}); err == nil {
		t.Error("out-of-range level accepted")
	}
	base := OdroidXU4() // no levels declared
	if _, _, err := base.WithLevels([]int{0, -1}); err == nil {
		t.Error("level on level-less type accepted")
	}
}

func TestLevelCount(t *testing.T) {
	p := OdroidXU4DVFS()
	if got := p.LevelCount(0); got != 3 {
		t.Errorf("LevelCount(0) = %d, want 3", got)
	}
	if got := p.LevelCount(9); got != 0 {
		t.Errorf("LevelCount(9) = %d", got)
	}
	if got := OdroidXU4().LevelCount(0); got != 1 {
		t.Errorf("pinned LevelCount = %d, want 1", got)
	}
}
