package platform

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocArithmetic(t *testing.T) {
	a := Alloc{2, 1}
	b := Alloc{1, 3}
	if got := a.Add(b); !got.Equal(Alloc{3, 4}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); !got.Equal(Alloc{1, -2}) {
		t.Errorf("Sub = %v", got)
	}
	c := a.Clone()
	c.AddInPlace(b)
	if !c.Equal(Alloc{3, 4}) {
		t.Errorf("AddInPlace = %v", c)
	}
	c.SubInPlace(b)
	if !c.Equal(a) {
		t.Errorf("SubInPlace = %v", c)
	}
	if a.Equal(b) {
		t.Error("distinct vectors reported Equal")
	}
	if !a.Equal(a.Clone()) {
		t.Error("clone not Equal to original")
	}
	if a.Equal(Alloc{2}) {
		t.Error("length mismatch reported Equal")
	}
}

func TestAllocPredicates(t *testing.T) {
	cap := Alloc{4, 4}
	if !(Alloc{4, 4}).Fits(cap) {
		t.Error("exact capacity should fit")
	}
	if (Alloc{5, 0}).Fits(cap) {
		t.Error("over-capacity little should not fit")
	}
	if !(Alloc{1, 1}).FitsWith(Alloc{3, 3}, cap) {
		t.Error("1,1 with 3,3 used should fit in 4,4")
	}
	if (Alloc{2, 1}).FitsWith(Alloc{3, 3}, cap) {
		t.Error("2,1 with 3,3 used should not fit in 4,4")
	}
	if !(Alloc{0, 0}).IsZero() || (Alloc{0, 1}).IsZero() {
		t.Error("IsZero wrong")
	}
	if !(Alloc{0, 0}).NonNegative() || (Alloc{0, -1}).NonNegative() {
		t.Error("NonNegative wrong")
	}
	if got := (Alloc{2, 3}).Total(); got != 5 {
		t.Errorf("Total = %d", got)
	}
	if got := (Alloc{2, 3}).Scale(2); !got.Equal(Alloc{4, 6}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestAllocDominates(t *testing.T) {
	tests := []struct {
		a, b Alloc
		want bool
	}{
		{Alloc{2, 2}, Alloc{1, 2}, true},
		{Alloc{2, 2}, Alloc{2, 2}, false}, // equal is not strict domination
		{Alloc{2, 1}, Alloc{1, 2}, false},
		{Alloc{0, 1}, Alloc{1, 1}, false},
	}
	for _, tc := range tests {
		if got := tc.a.Dominates(tc.b); got != tc.want {
			t.Errorf("%v Dominates %v = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestAllocString(t *testing.T) {
	if got := (Alloc{2, 1}).String(); got != "2L1B" {
		t.Errorf("String = %q, want 2L1B", got)
	}
	if got := (Alloc{1, 2, 3}).String(); got != "(1,2,3)" {
		t.Errorf("String = %q, want (1,2,3)", got)
	}
}

func TestAllocKeyUniqueness(t *testing.T) {
	seen := make(map[string]Alloc)
	for l := 0; l <= 8; l++ {
		for b := 0; b <= 8; b++ {
			a := Alloc{l, b}
			k := a.Key()
			if prev, ok := seen[k]; ok {
				t.Fatalf("key collision: %v and %v both map to %q", prev, a, k)
			}
			seen[k] = a
		}
	}
}

func TestAllocMismatchedLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add with mismatched lengths did not panic")
		}
	}()
	_ = Alloc{1}.Add(Alloc{1, 2})
}

// Property: Add and Sub are inverses, and Fits is monotone under Add.
func TestAllocProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen := func() Alloc {
		return Alloc{rng.Intn(6), rng.Intn(6)}
	}
	f := func() bool {
		a, b := gen(), gen()
		if !a.Add(b).Sub(b).Equal(a) {
			return false
		}
		cap := Alloc{8, 8}
		// a+b fits cap implies a fits cap (components non-negative).
		if a.Add(b).Fits(cap) && !a.Fits(cap) {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTimeVec(t *testing.T) {
	v := TimeVec{10, 10}
	if !v.FitsUsage(Alloc{2, 1}, 5, 1e-9) {
		t.Error("2x5,1x5 should fit in 10,10")
	}
	if v.FitsUsage(Alloc{2, 1}, 5.1, 1e-9) {
		t.Error("2x5.1 should not fit in 10")
	}
	v.SubUsage(Alloc{2, 1}, 3)
	if v[0] != 4 || v[1] != 7 {
		t.Errorf("SubUsage = %v, want [4 7]", v)
	}
	w := v.Clone()
	w.SubUsage(Alloc{1, 1}, 1)
	if v[0] != 4 {
		t.Error("Clone aliases original")
	}
	if got := NewTimeVec(3); len(got) != 3 {
		t.Errorf("NewTimeVec len = %d", len(got))
	}
	if got := NewAlloc(3); len(got) != 3 {
		t.Errorf("NewAlloc len = %d", len(got))
	}
}

func TestTimeVecMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FitsUsage with mismatched lengths did not panic")
		}
	}()
	v := TimeVec{1}
	v.FitsUsage(Alloc{1, 2}, 1, 0)
}
