package platform

import "fmt"

// DVFSLevel is one frequency/voltage operating performance point of a
// core type. The paper pins both clusters to fixed frequencies (1.5 and
// 1.8 GHz); modeling the remaining levels lets the design-space
// exploration fold frequency selection into the operating points — the
// runtime managers stay frequency-agnostic, exactly as in the hybrid
// flow, because ⟨θ, τ, ξ⟩ already captures the consequences.
type DVFSLevel struct {
	// FreqHz is the cluster frequency at this level.
	FreqHz float64
	// VoltScale is the supply voltage relative to the base level;
	// dynamic power scales with f·V² and leakage roughly with V.
	VoltScale float64
}

// WithLevels returns a copy of the platform with each type switched to
// the indexed DVFS level (index -1 keeps the base configuration), plus a
// human-readable label like "little@1.0GHz big@1.4GHz". Types without
// declared levels only accept -1.
func (p Platform) WithLevels(levels []int) (Platform, string, error) {
	if len(levels) != len(p.Types) {
		return Platform{}, "", fmt.Errorf("platform: %d level indices for %d types", len(levels), len(p.Types))
	}
	out := p
	out.Types = make([]CoreType, len(p.Types))
	copy(out.Types, p.Types)
	label := ""
	for i, li := range levels {
		ct := &out.Types[i]
		if li < 0 {
			continue
		}
		if li >= len(ct.Levels) {
			return Platform{}, "", fmt.Errorf("platform: type %q has no DVFS level %d", ct.Name, li)
		}
		lv := ct.Levels[li]
		if lv.FreqHz <= 0 || lv.VoltScale <= 0 {
			return Platform{}, "", fmt.Errorf("platform: type %q level %d invalid", ct.Name, li)
		}
		scale := lv.FreqHz / ct.FreqHz
		ct.DynamicWatts *= scale * lv.VoltScale * lv.VoltScale
		ct.StaticWatts *= lv.VoltScale
		ct.FreqHz = lv.FreqHz
		if label != "" {
			label += " "
		}
		label += fmt.Sprintf("%s@%.1fGHz", ct.Name, lv.FreqHz/1e9)
	}
	return out, label, nil
}

// LevelCount returns the number of selectable settings per type: the
// base configuration plus any declared DVFS levels.
func (p Platform) LevelCount(typeIdx int) int {
	if typeIdx < 0 || typeIdx >= len(p.Types) {
		return 0
	}
	return 1 + len(p.Types[typeIdx].Levels)
}

// OdroidXU4DVFS returns the evaluation platform with two additional
// frequency levels per cluster (reduced frequency and voltage), enabling
// DVFS-aware design-space exploration. The base levels match the paper's
// pinned 1.5/1.8 GHz configuration.
func OdroidXU4DVFS() Platform {
	p := OdroidXU4()
	p.Name = "odroid-xu4-dvfs"
	p.Types[0].Levels = []DVFSLevel{
		{FreqHz: 1.2e9, VoltScale: 0.92},
		{FreqHz: 0.9e9, VoltScale: 0.85},
	}
	p.Types[1].Levels = []DVFSLevel{
		{FreqHz: 1.4e9, VoltScale: 0.90},
		{FreqHz: 1.0e9, VoltScale: 0.82},
	}
	return p
}
