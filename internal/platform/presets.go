package platform

// Preset platforms. The Odroid XU4 parameters mirror the experimental
// setup of the paper (Exynos 5422 big.LITTLE, four Cortex-A15 at 1.8 GHz
// and four Cortex-A7 at 1.5 GHz). Power figures are public ballpark values
// for the SoC at those fixed frequencies; they only shape the synthetic
// operating-point tables, the schedulers never see them directly.

// LittleBig returns a generic two-type platform with the given core
// counts, keeping the paper's little-first ordering of resource types.
func LittleBig(name string, little, big int) Platform {
	return Platform{
		Name: name,
		Types: []CoreType{
			{
				Name:         "little",
				Count:        little,
				FreqHz:       1.5e9,
				IPC:          0.55,
				StaticWatts:  0.035,
				DynamicWatts: 0.22,
			},
			{
				Name:         "big",
				Count:        big,
				FreqHz:       1.8e9,
				IPC:          1.45,
				StaticWatts:  0.28,
				DynamicWatts: 2.00,
			},
		},
	}
}

// OdroidXU4 returns the evaluation platform of the paper: 4 Cortex-A7
// little cores fixed at 1.5 GHz and 4 Cortex-A15 big cores fixed at
// 1.8 GHz.
func OdroidXU4() Platform { return LittleBig("odroid-xu4", 4, 4) }

// Motivational2L2B returns the 2-little/2-big device of the motivational
// example (Section III, Tables I and II).
func Motivational2L2B() Platform { return LittleBig("motivational-2l2b", 2, 2) }

// TriCluster returns a three-type platform in the style of tri-cluster
// mobile SoCs (4 little + 3 mid + 1 prime). The paper's formulation is
// generic in the number of resource types m; this preset exercises m=3
// through the whole stack (DSE, knapsack containers, EDF packing).
func TriCluster() Platform {
	return Platform{
		Name: "tri-cluster",
		Types: []CoreType{
			{
				Name:         "little",
				Count:        4,
				FreqHz:       1.7e9,
				IPC:          0.6,
				StaticWatts:  0.03,
				DynamicWatts: 0.20,
			},
			{
				Name:         "mid",
				Count:        3,
				FreqHz:       2.3e9,
				IPC:          1.1,
				StaticWatts:  0.12,
				DynamicWatts: 0.85,
			},
			{
				Name:         "prime",
				Count:        1,
				FreqHz:       2.8e9,
				IPC:          1.6,
				StaticWatts:  0.35,
				DynamicWatts: 2.6,
			},
		},
	}
}
