package platform

import (
	"encoding/json"
	"fmt"
	"io"
)

// Platform descriptions serialize to JSON so the command-line tools can
// target user-defined devices (-platform file.json) without recompiling.
// The field names follow the struct definitions; see presets.go for the
// built-in examples.

// WriteJSON serializes the platform (indented) to w.
func (p Platform) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadJSON parses and validates a platform description.
func ReadJSON(r io.Reader) (Platform, error) {
	var p Platform
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return Platform{}, fmt.Errorf("platform: decoding: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Platform{}, err
	}
	return p, nil
}
