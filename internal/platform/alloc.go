package platform

import (
	"fmt"
	"strings"
)

// Alloc is a per-resource-type core-count vector θ. The i-th entry counts
// cores of Platform.Types[i]. Allocs are small (m is 2 on big.LITTLE) and
// treated as values: mutating methods return fresh vectors unless suffixed
// InPlace.
type Alloc []int

// NewAlloc returns a zero vector for m resource types.
func NewAlloc(m int) Alloc { return make(Alloc, m) }

// Clone returns an independent copy.
func (a Alloc) Clone() Alloc {
	b := make(Alloc, len(a))
	copy(b, a)
	return b
}

// Add returns a + b. It panics if the lengths differ.
func (a Alloc) Add(b Alloc) Alloc {
	mustSameLen(a, b)
	c := make(Alloc, len(a))
	for i := range a {
		c[i] = a[i] + b[i]
	}
	return c
}

// Sub returns a - b. It panics if the lengths differ.
func (a Alloc) Sub(b Alloc) Alloc {
	mustSameLen(a, b)
	c := make(Alloc, len(a))
	for i := range a {
		c[i] = a[i] - b[i]
	}
	return c
}

// AddInPlace adds b into a.
func (a Alloc) AddInPlace(b Alloc) {
	mustSameLen(a, b)
	for i := range a {
		a[i] += b[i]
	}
}

// SubInPlace subtracts b from a.
func (a Alloc) SubInPlace(b Alloc) {
	mustSameLen(a, b)
	for i := range a {
		a[i] -= b[i]
	}
}

// Fits reports whether a ≤ cap component-wise.
func (a Alloc) Fits(cap Alloc) bool {
	mustSameLen(a, cap)
	for i := range a {
		if a[i] > cap[i] {
			return false
		}
	}
	return true
}

// FitsWith reports whether a+used ≤ cap component-wise without allocating.
func (a Alloc) FitsWith(used, cap Alloc) bool {
	mustSameLen(a, cap)
	mustSameLen(used, cap)
	for i := range a {
		if a[i]+used[i] > cap[i] {
			return false
		}
	}
	return true
}

// Dominates reports whether a ≥ b component-wise with at least one strict
// inequality.
func (a Alloc) Dominates(b Alloc) bool {
	mustSameLen(a, b)
	strict := false
	for i := range a {
		if a[i] < b[i] {
			return false
		}
		if a[i] > b[i] {
			strict = true
		}
	}
	return strict
}

// Equal reports component-wise equality.
func (a Alloc) Equal(b Alloc) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether every component is zero.
func (a Alloc) IsZero() bool {
	for _, v := range a {
		if v != 0 {
			return false
		}
	}
	return true
}

// NonNegative reports whether every component is ≥ 0.
func (a Alloc) NonNegative() bool {
	for _, v := range a {
		if v < 0 {
			return false
		}
	}
	return true
}

// Total returns the sum of all components.
func (a Alloc) Total() int {
	n := 0
	for _, v := range a {
		n += v
	}
	return n
}

// Scale returns a scaled copy with every component multiplied by k.
func (a Alloc) Scale(k int) Alloc {
	c := make(Alloc, len(a))
	for i := range a {
		c[i] = a[i] * k
	}
	return c
}

// Key returns a compact comparable encoding, usable as a map key. It
// assumes components fit in a signed 16-bit range, which holds for any
// realistic core count.
func (a Alloc) Key() string {
	var b strings.Builder
	b.Grow(2 * len(a))
	for _, v := range a {
		b.WriteByte(byte(v >> 8))
		b.WriteByte(byte(v))
	}
	return b.String()
}

// String renders the vector like "2L1B" for named platform types when m=2
// falls back to "(2,1)" notation for other arities. The short big.LITTLE
// form is what the paper's tables use, so it is the default for m == 2.
func (a Alloc) String() string {
	if len(a) == 2 {
		return fmt.Sprintf("%dL%dB", a[0], a[1])
	}
	parts := make([]string, len(a))
	for i, v := range a {
		parts[i] = fmt.Sprint(v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

func mustSameLen(a, b Alloc) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("platform: alloc length mismatch %d vs %d", len(a), len(b)))
	}
}

// TimeVec is a per-resource-type vector of processing-time capacities
// (core-seconds), used for the containers J in Algorithm 1 of the paper.
type TimeVec []float64

// NewTimeVec returns a zero vector for m resource types.
func NewTimeVec(m int) TimeVec { return make(TimeVec, m) }

// Clone returns an independent copy.
func (v TimeVec) Clone() TimeVec {
	w := make(TimeVec, len(v))
	copy(w, v)
	return w
}

// SubUsage subtracts alloc×dur core-seconds from v in place.
func (v TimeVec) SubUsage(a Alloc, dur float64) {
	if len(v) != len(a) {
		panic(fmt.Sprintf("platform: timevec length mismatch %d vs %d", len(v), len(a)))
	}
	for i := range v {
		v[i] -= float64(a[i]) * dur
	}
}

// FitsUsage reports whether alloc×dur fits into v with tolerance eps.
func (v TimeVec) FitsUsage(a Alloc, dur, eps float64) bool {
	if len(v) != len(a) {
		panic(fmt.Sprintf("platform: timevec length mismatch %d vs %d", len(v), len(a)))
	}
	for i := range v {
		if float64(a[i])*dur > v[i]+eps {
			return false
		}
	}
	return true
}
