// Package platform models heterogeneous multi-core platforms with typed
// processing resources, as assumed by the DATE'20 runtime-manager paper:
// a platform exposes m resource types with core counts Θ = (Θ1, …, Θm),
// and every core of a type runs at a fixed frequency with a fixed power
// profile.
//
// The package also carries the frequency/voltage/power parameters used by
// the virtual platform (package vplat) to synthesize execution time and
// energy numbers in lieu of the Odroid XU4 board and the external power
// analyzer used in the paper.
package platform

import (
	"errors"
	"fmt"
	"strings"
)

// CoreType describes one homogeneous resource type (e.g. the A7 "little"
// cluster or the A15 "big" cluster of an Exynos 5422).
type CoreType struct {
	// Name is a short identifier such as "little" or "big".
	Name string
	// Count is the number of cores of this type (Θ_i).
	Count int
	// FreqHz is the fixed operating frequency of the cores.
	FreqHz float64
	// IPC is the average instructions per cycle the type sustains on the
	// reference workload mix; together with FreqHz it defines the speed
	// of one core in work-units per second.
	IPC float64
	// StaticWatts is the leakage/uncore power one active core of this
	// type contributes while powered, independent of load.
	StaticWatts float64
	// DynamicWatts is the switching power of one core of this type when
	// fully loaded at FreqHz.
	DynamicWatts float64
	// Levels lists optional alternative DVFS settings; empty means the
	// type runs pinned at FreqHz, as in the paper's setup.
	Levels []DVFSLevel
}

// Speed returns the sustained speed of one core in work-units/second.
func (c CoreType) Speed() float64 { return c.FreqHz * c.IPC }

// BusyWatts returns the power of one fully loaded core.
func (c CoreType) BusyWatts() float64 { return c.StaticWatts + c.DynamicWatts }

// Platform is a heterogeneous multi-core platform with a fixed set of
// resource types.
type Platform struct {
	// Name identifies the platform (e.g. "odroid-xu4").
	Name string
	// Types lists the resource types in a fixed order; Alloc vectors are
	// indexed in the same order.
	Types []CoreType
}

// NumTypes returns the number of resource types m.
func (p Platform) NumTypes() int { return len(p.Types) }

// Capacity returns the core-count vector Θ.
func (p Platform) Capacity() Alloc {
	a := make(Alloc, len(p.Types))
	for i, t := range p.Types {
		a[i] = t.Count
	}
	return a
}

// TotalCores returns the total number of cores over all types.
func (p Platform) TotalCores() int {
	n := 0
	for _, t := range p.Types {
		n += t.Count
	}
	return n
}

// TypeIndex returns the index of the type with the given name, or -1.
func (p Platform) TypeIndex(name string) int {
	for i, t := range p.Types {
		if t.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks structural invariants: at least one type, unique type
// names, positive counts and physically meaningful parameters.
func (p Platform) Validate() error {
	if len(p.Types) == 0 {
		return errors.New("platform: no resource types")
	}
	seen := make(map[string]bool, len(p.Types))
	for i, t := range p.Types {
		if t.Name == "" {
			return fmt.Errorf("platform: type %d has empty name", i)
		}
		if seen[t.Name] {
			return fmt.Errorf("platform: duplicate type name %q", t.Name)
		}
		seen[t.Name] = true
		if t.Count <= 0 {
			return fmt.Errorf("platform: type %q has non-positive count %d", t.Name, t.Count)
		}
		if t.FreqHz <= 0 || t.IPC <= 0 {
			return fmt.Errorf("platform: type %q has non-positive speed parameters", t.Name)
		}
		if t.StaticWatts < 0 || t.DynamicWatts < 0 {
			return fmt.Errorf("platform: type %q has negative power parameters", t.Name)
		}
	}
	return nil
}

// String renders a compact one-line description, e.g.
// "odroid-xu4[4xlittle@1.5GHz 4xbig@1.8GHz]".
func (p Platform) String() string {
	var b strings.Builder
	b.WriteString(p.Name)
	b.WriteByte('[')
	for i, t := range p.Types {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%dx%s@%.1fGHz", t.Count, t.Name, t.FreqHz/1e9)
	}
	b.WriteByte(']')
	return b.String()
}
