package httpapi_test

import (
	"bufio"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"adaptrm/internal/api"
	"adaptrm/internal/fleet"
	"adaptrm/internal/httpapi"
	"adaptrm/internal/motiv"
	"adaptrm/internal/workload"
)

// watchClient wraps a Service in a live httptest server and returns the
// concrete client, whose Watch is needed alongside the Service verbs.
func watchClient(t *testing.T, svc api.Service, opt httpapi.ServerOptions, token string) *httpapi.Client {
	t.Helper()
	ts := httptest.NewServer(mustServer(t, svc, opt))
	t.Cleanup(ts.Close)
	return httpapi.NewClient(ts.URL, token, ts.Client())
}

// gather drains a watch channel in the background.
func gather(ch <-chan api.Event) (*[]api.Event, func()) {
	var evs []api.Event
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range ch {
			evs = append(evs, ev)
		}
	}()
	return &evs, func() { <-done }
}

// TestWatchOverHTTPEquivalence is the wire half of the acceptance
// contract: for a seeded fleet trace (with cancellations mixed in), an
// SSE watcher receives the byte-identical event sequence an in-process
// watcher receives — including a watcher that disconnects mid-stream
// and resumes over a fresh connection with from_seq — and the replayed
// log reconstructs the admission statistics the daemon reports.
func TestWatchOverHTTPEquivalence(t *testing.T) {
	const devices = 2
	f := newFleet(t, devices, fleet.Options{Shards: 2})
	client := watchClient(t, f.Service(), httpapi.ServerOptions{}, "")

	inproc, err := f.Service().Watch(bg, api.WatchRequest{Buffer: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	inprocLog, waitInproc := gather(inproc)

	remote, err := client.Watch(bg, api.WatchRequest{Buffer: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	remoteLog, waitRemote := gather(remote)

	// A third watcher follows device 0 and will be cut mid-stream.
	dev0 := 0
	ctx1, cancel1 := context.WithCancel(bg)
	flaky, err := client.Watch(ctx1, api.WatchRequest{Device: &dev0})
	if err != nil {
		t.Fatal(err)
	}

	trace, err := workload.FleetTrace(motiv.Library(), workload.FleetTraceParams{
		Devices: devices, Rate: 0.2, RateSpread: 0.4, Horizon: 50, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	half := len(trace) / 2
	var admitted []api.SubmitResult
	var admittedDevs []int
	runTraffic := func(part []workload.FleetRequest) {
		for i, r := range part {
			res, err := client.Submit(bg, api.SubmitRequest{Device: r.Device, At: r.At, App: r.App, Deadline: r.Deadline})
			if err != nil && !errors.Is(err, api.ErrInfeasible) {
				t.Fatalf("trace %d: %v", i, err)
			}
			if res.Accepted {
				admitted = append(admitted, res)
				admittedDevs = append(admittedDevs, r.Device)
			}
			if i%5 == 2 && len(admitted) > 0 {
				last := len(admitted) - 1
				if _, err := client.Cancel(bg, api.CancelRequest{Device: admittedDevs[last], JobID: admitted[last].JobID}); err != nil && !errors.Is(err, api.ErrUnknownJob) {
					t.Fatalf("cancel: %v", err)
				}
				admitted, admittedDevs = admitted[:last], admittedDevs[:last]
			}
		}
	}
	runTraffic(trace[:half])

	// Cut the device-0 watcher mid-stream: read what it has, remember
	// the last sequence number, drop the connection.
	var firstLeg []api.Event
drain:
	for {
		select {
		case ev, ok := <-flaky:
			if !ok {
				break drain
			}
			firstLeg = append(firstLeg, ev)
		case <-time.After(100 * time.Millisecond):
			break drain
		}
	}
	cancel1()
	if len(firstLeg) == 0 {
		t.Fatal("device-0 watcher saw no events before the cut")
	}
	resumeFrom := firstLeg[len(firstLeg)-1].Seq + 1

	runTraffic(trace[half:])

	// Resume over a brand-new connection from the recorded position.
	resumed, err := client.Watch(bg, api.WatchRequest{Device: &dev0, FromSeq: resumeFrom})
	if err != nil {
		t.Fatal(err)
	}
	secondLeg, waitSecond := gather(resumed)

	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	waitInproc()
	waitRemote()
	waitSecond()

	// SSE and in-process must carry the byte-identical sequence.
	if len(*remoteLog) != len(*inprocLog) {
		t.Fatalf("remote saw %d events, in-process %d", len(*remoteLog), len(*inprocLog))
	}
	for i := range *remoteLog {
		if (*remoteLog)[i] != (*inprocLog)[i] {
			t.Fatalf("event %d diverged:\nremote     %+v\nin-process %+v", i, (*remoteLog)[i], (*inprocLog)[i])
		}
	}

	// The cut-and-resumed watcher reconstructs device 0's full stream.
	union := append(firstLeg, *secondLeg...)
	var dev0Log []api.Event
	for _, ev := range *inprocLog {
		if ev.Device == 0 {
			dev0Log = append(dev0Log, ev)
		}
	}
	if len(union) != len(dev0Log) {
		t.Fatalf("resumed union has %d events, device stream %d:\nunion %+v\ntruth %+v",
			len(union), len(dev0Log), union, dev0Log)
	}
	for i := range union {
		if union[i] != dev0Log[i] {
			t.Fatalf("resumed union[%d] = %+v ≠ %+v", i, union[i], dev0Log[i])
		}
	}

	// The wire log reconstructs the daemon's own admission statistics.
	counts := map[int]*struct{ sub, acc, rej, comp, canc, miss int }{}
	for _, ev := range *remoteLog {
		c := counts[ev.Device]
		if c == nil {
			c = &struct{ sub, acc, rej, comp, canc, miss int }{}
			counts[ev.Device] = c
		}
		switch ev.Type {
		case api.EventJobAdmitted:
			c.sub++
			c.acc++
		case api.EventJobRejected:
			c.sub++
			c.rej++
		case api.EventJobCompleted:
			c.comp++
			if ev.Missed {
				c.miss++
			}
		case api.EventJobCancelled:
			c.canc++
		case api.EventLagged:
			t.Fatalf("equivalence stream lagged: %+v", ev)
		}
	}
	for d := 0; d < devices; d++ {
		st, err := client.Stats(bg, api.StatsRequest{Device: &d})
		if err != nil {
			t.Fatal(err)
		}
		c := counts[d]
		if c == nil {
			c = &struct{ sub, acc, rej, comp, canc, miss int }{}
		}
		if c.sub != st.Submitted || c.acc != st.Accepted || c.rej != st.Rejected ||
			c.comp != st.Completed || c.canc != st.Cancelled || c.miss != st.DeadlineMisses {
			t.Errorf("device %d: replayed counters %+v ≠ daemon stats %+v", d, *c, st)
		}
	}
}

// TestWatchAuth: watch scope follows the stats rules — fleet-wide
// streams are for unrestricted tenants only, device streams for
// tenants allowed on that device, and everything requires a token.
func TestWatchAuth(t *testing.T) {
	f := newFleet(t, 2, fleet.Options{})
	defer f.Close()
	opt := httpapi.ServerOptions{Tenants: []httpapi.Tenant{
		{Name: "restricted", Token: "r-tok", Devices: []int{0}},
		{Name: "admin", Token: "a-tok"},
	}}
	ts := httptest.NewServer(mustServer(t, f.Service(), opt))
	t.Cleanup(ts.Close)

	restricted := httpapi.NewClient(ts.URL, "r-tok", ts.Client())
	admin := httpapi.NewClient(ts.URL, "a-tok", ts.Client())
	anon := httpapi.NewClient(ts.URL, "", ts.Client())

	if _, err := anon.Watch(bg, api.WatchRequest{}); !errors.Is(err, api.ErrUnauthorized) {
		t.Errorf("anonymous watch: %v, want ErrUnauthorized", err)
	}
	if _, err := restricted.Watch(bg, api.WatchRequest{}); !errors.Is(err, api.ErrForbidden) {
		t.Errorf("restricted fleet-wide watch: %v, want ErrForbidden", err)
	}
	one := 1
	if _, err := restricted.Watch(bg, api.WatchRequest{Device: &one}); !errors.Is(err, api.ErrForbidden) {
		t.Errorf("restricted foreign-device watch: %v, want ErrForbidden", err)
	}
	zero := 0
	ctx, cancel := context.WithCancel(bg)
	defer cancel()
	if _, err := restricted.Watch(ctx, api.WatchRequest{Device: &zero}); err != nil {
		t.Errorf("restricted own-device watch: %v", err)
	}
	if _, err := admin.Watch(ctx, api.WatchRequest{}); err != nil {
		t.Errorf("admin fleet-wide watch: %v", err)
	}
	nine := 9
	if _, err := admin.Watch(bg, api.WatchRequest{Device: &nine}); !errors.Is(err, api.ErrUnknownDevice) {
		t.Errorf("unknown device watch: %v, want ErrUnknownDevice", err)
	}
}

// TestStopStreamsEndsWatch: StopStreams ends open SSE streams — so a
// graceful daemon shutdown is not held hostage by watchers that never
// go idle — while the short-lived verbs keep serving.
func TestStopStreamsEndsWatch(t *testing.T) {
	f := newFleet(t, 1, fleet.Options{})
	defer f.Close()
	srv := mustServer(t, f.Service(), httpapi.ServerOptions{})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client := httpapi.NewClient(ts.URL, "", ts.Client())

	ch, err := client.Watch(bg, api.WatchRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Submit(bg, api.SubmitRequest{Device: 0, At: 0, App: "lambda1", Deadline: 9}); err != nil {
		t.Fatal(err)
	}
	srv.StopStreams()
	srv.StopStreams() // idempotent
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				goto closed
			}
		case <-deadline:
			t.Fatal("watch stream survived StopStreams")
		}
	}
closed:
	// Ordinary verbs are unaffected.
	if _, err := client.Advance(bg, api.AdvanceRequest{Device: 0, To: 30}); err != nil {
		t.Fatalf("advance after StopStreams: %v", err)
	}
}

// TestWatchHeartbeat reads the raw SSE wire and checks that an idle
// stream still carries heartbeat comments, keeping intermediaries from
// timing the connection out.
func TestWatchHeartbeat(t *testing.T) {
	f := newFleet(t, 1, fleet.Options{})
	defer f.Close()
	ts := httptest.NewServer(mustServer(t, f.Service(), httpapi.ServerOptions{WatchHeartbeat: 5 * time.Millisecond}))
	t.Cleanup(ts.Close)

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/watch", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	beats := 0
	for sc.Scan() && beats < 3 {
		if strings.HasPrefix(sc.Text(), ": heartbeat") {
			beats++
		}
	}
	if beats < 3 {
		t.Fatalf("saw %d heartbeats, want 3", beats)
	}
}
