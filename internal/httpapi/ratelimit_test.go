package httpapi_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"adaptrm/internal/api"
	"adaptrm/internal/fleet"
	"adaptrm/internal/httpapi"
)

// vclock is a hand-advanced virtual clock for deterministic
// token-bucket tests.
type vclock struct {
	mu sync.Mutex
	t  time.Time
}

func newVclock() *vclock { return &vclock{t: time.Unix(1000, 0)} }

func (c *vclock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *vclock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// submitCode performs one submit and reduces it to its taxonomy code
// ("" for success; rejections count as executed work, not errors, for
// quota purposes but surface as "infeasible").
func submitCode(t *testing.T, svc api.Service, at float64) string {
	t.Helper()
	_, err := svc.Submit(bg, api.SubmitRequest{Device: 0, At: at, App: "lambda1", Deadline: at + 1000})
	if err == nil {
		return ""
	}
	return api.ErrorCode(err)
}

// TestRateQuotaDeterministic drives a rate-1/s, burst-2 tenant against
// a virtual clock: the admit/reject sequence is exactly the token
// bucket's arithmetic, with no wall-clock dependence.
func TestRateQuotaDeterministic(t *testing.T) {
	f := newFleet(t, 1, fleet.Options{})
	defer f.Close()
	clock := newVclock()
	svc := overHTTP(t, f.Service(), httpapi.ServerOptions{
		Now:     clock.now,
		Tenants: []httpapi.Tenant{{Name: "t", Token: "tok", Rate: 1, Burst: 2}},
	}, "tok")

	at := 0.0
	next := func() float64 { at += 0.001; return at }
	okOrInfeasible := func(code string) bool { return code == "" || code == api.CodeInfeasible }

	// The bucket starts full: exactly Burst operations pass...
	for i := 0; i < 2; i++ {
		if code := submitCode(t, svc, next()); !okOrInfeasible(code) {
			t.Fatalf("burst op %d refused: %s", i, code)
		}
	}
	// ...and the next is refused without the clock moving.
	if code := submitCode(t, svc, next()); code != api.CodeQuotaExceeded {
		t.Fatalf("over-burst op: %q, want quota_exceeded", code)
	}
	// Half a token is not a token.
	clock.advance(500 * time.Millisecond)
	if code := submitCode(t, svc, next()); code != api.CodeQuotaExceeded {
		t.Fatalf("half-refilled op: %q, want quota_exceeded", code)
	}
	// The second half completes one token: exactly one op passes.
	clock.advance(500 * time.Millisecond)
	if code := submitCode(t, svc, next()); !okOrInfeasible(code) {
		t.Fatalf("refilled op refused: %s", code)
	}
	if code := submitCode(t, svc, next()); code != api.CodeQuotaExceeded {
		t.Fatalf("second op on one token: %q, want quota_exceeded", code)
	}
	// A long idle period refills to Burst, never beyond.
	clock.advance(time.Hour)
	for i := 0; i < 2; i++ {
		if code := submitCode(t, svc, next()); !okOrInfeasible(code) {
			t.Fatalf("post-idle op %d refused: %s", i, code)
		}
	}
	if code := submitCode(t, svc, next()); code != api.CodeQuotaExceeded {
		t.Fatalf("burst cap not enforced after idle: %q", code)
	}
}

// TestRateQuotaBatchCost: a k-item batch costs k tokens, refused whole
// when the bucket holds fewer.
func TestRateQuotaBatchCost(t *testing.T) {
	f := newFleet(t, 1, fleet.Options{})
	defer f.Close()
	clock := newVclock()
	svc := overHTTP(t, f.Service(), httpapi.ServerOptions{
		Now:     clock.now,
		Tenants: []httpapi.Tenant{{Name: "t", Token: "tok", Rate: 1, Burst: 3}},
	}, "tok")
	items := []api.BatchItem{{App: "lambda1", Deadline: 1000}, {App: "lambda2", Deadline: 1000}}
	if _, err := api.SubmitBatch(bg, svc, api.BatchSubmitRequest{Device: 0, At: 0, Items: items}); err != nil {
		t.Fatalf("2-item batch on 3 tokens: %v", err)
	}
	// One token left: a 2-item batch is refused whole, and the single
	// token is still there for a 1-op call afterwards.
	if _, err := api.SubmitBatch(bg, svc, api.BatchSubmitRequest{Device: 0, At: 1, Items: items}); !errors.Is(err, api.ErrQuotaExceeded) {
		t.Fatalf("2-item batch on 1 token: %v, want ErrQuotaExceeded", err)
	}
	if code := submitCode(t, svc, 2); code != "" && code != api.CodeInfeasible {
		t.Fatalf("remaining token was burned by the refused batch: %s", code)
	}
	// An empty batch needs no tokens even with the bucket dry.
	if res, err := api.SubmitBatch(bg, svc, api.BatchSubmitRequest{Device: 0, At: 3}); err != nil || len(res.Verdicts) != 0 {
		t.Fatalf("empty batch on dry bucket: res %+v err %v", res, err)
	}
}

// TestRateQuotaRefund: operations that never execute on a device hand
// their token back, exactly like the total budget.
func TestRateQuotaRefund(t *testing.T) {
	f := newFleet(t, 1, fleet.Options{})
	defer f.Close()
	clock := newVclock()
	svc := overHTTP(t, f.Service(), httpapi.ServerOptions{
		Now:     clock.now,
		Tenants: []httpapi.Tenant{{Name: "t", Token: "tok", Rate: 0.001, Burst: 1}},
	}, "tok")
	// Unknown device: refundable — the single token survives any number
	// of attempts.
	for i := 0; i < 3; i++ {
		if _, err := svc.Submit(bg, api.SubmitRequest{Device: 9, At: 0, App: "lambda1", Deadline: 9}); !errors.Is(err, api.ErrUnknownDevice) {
			t.Fatalf("attempt %d: %v, want ErrUnknownDevice", i, err)
		}
	}
	if code := submitCode(t, svc, 0); code != "" && code != api.CodeInfeasible {
		t.Fatalf("token lost to refundable failures: %s", code)
	}
	// Spent for real now; the next op is rate-limited.
	if code := submitCode(t, svc, 1); code != api.CodeQuotaExceeded {
		t.Fatalf("after spending the only token: %q, want quota_exceeded", code)
	}
}

// TestRateQuotaComposesWithBudget: the bucket paces, the budget caps —
// hitting either refuses the call, and a rate refusal does not consume
// budget.
func TestRateQuotaComposesWithBudget(t *testing.T) {
	f := newFleet(t, 1, fleet.Options{})
	defer f.Close()
	clock := newVclock()
	svc := overHTTP(t, f.Service(), httpapi.ServerOptions{
		Now:     clock.now,
		Tenants: []httpapi.Tenant{{Name: "t", Token: "tok", Rate: 1, Burst: 1, MaxRequests: 2}},
	}, "tok")
	if code := submitCode(t, svc, 0); code != "" && code != api.CodeInfeasible {
		t.Fatalf("first op: %s", code)
	}
	// Bucket dry, budget has 1 left: refusal must come from the rate
	// side and must not consume the budget unit.
	if code := submitCode(t, svc, 1); code != api.CodeQuotaExceeded {
		t.Fatalf("paced op: %q, want quota_exceeded", code)
	}
	clock.advance(time.Second)
	if code := submitCode(t, svc, 2); code != "" && code != api.CodeInfeasible {
		t.Fatalf("second budgeted op after refill: %s", code)
	}
	// Budget exhausted: no amount of refill admits a third.
	clock.advance(time.Hour)
	if code := submitCode(t, svc, 3); code != api.CodeQuotaExceeded {
		t.Fatalf("over-budget op: %q, want quota_exceeded", code)
	}
}

// TestRateQuotaValidation: negative quotas are configuration errors,
// and Burst defaults to ceil(Rate) (min 1).
func TestRateQuotaValidation(t *testing.T) {
	f := newFleet(t, 1, fleet.Options{})
	defer f.Close()
	if _, err := httpapi.NewServer(f.Service(), httpapi.ServerOptions{
		Tenants: []httpapi.Tenant{{Name: "t", Token: "tok", Rate: -1}},
	}); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := httpapi.NewServer(f.Service(), httpapi.ServerOptions{
		Tenants: []httpapi.Tenant{{Name: "t", Token: "tok", Burst: -1}},
	}); err == nil {
		t.Error("negative burst accepted")
	}
	// Burst defaulting: rate 0.5 → burst 1; exactly one op passes on a
	// fresh bucket.
	clock := newVclock()
	svc := overHTTP(t, f.Service(), httpapi.ServerOptions{
		Now:     clock.now,
		Tenants: []httpapi.Tenant{{Name: "t", Token: "tok", Rate: 0.5}},
	}, "tok")
	if code := submitCode(t, svc, 0); code != "" && code != api.CodeInfeasible {
		t.Fatalf("first op on defaulted burst: %s", code)
	}
	if code := submitCode(t, svc, 1); code != api.CodeQuotaExceeded {
		t.Fatalf("second op on defaulted burst: %q, want quota_exceeded", code)
	}
}
