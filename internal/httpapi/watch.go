package httpapi

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"adaptrm/internal/api"
)

// handleWatch serves GET /v1/watch as a Server-Sent-Events stream over
// the wrapped service's Watch. The pre-stream pipeline mirrors the
// other read-only verb (authenticate, authorise the scope, validate the
// query) and failures there are ordinary JSON error envelopes; once the
// stream starts, the only remaining signals are events, heartbeats and
// the connection closing.
func (s *Server) handleWatch(ws api.WatchService) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t, err := s.tenantOf(r)
		if err != nil {
			writeError(w, err, nil)
			return
		}
		var req api.WatchRequest
		q := r.URL.Query()
		scope := -1
		if qd := q.Get("device"); qd != "" {
			n, err := strconv.Atoi(qd)
			if err != nil {
				writeError(w, api.Errf(api.ErrBadRequest, "device query %q: %v", qd, err), nil)
				return
			}
			req.Device, scope = &n, n
		}
		// Fleet-wide scope is for unrestricted tenants only, like stats;
		// an explicit negative device is an unknown device and is left to
		// the service to report uniformly.
		if scope >= 0 || req.Device == nil {
			if err := allow(t, scope); err != nil {
				writeError(w, err, nil)
				return
			}
		}
		if qs := q.Get("from_seq"); qs != "" {
			n, err := strconv.ParseUint(qs, 10, 64)
			if err != nil {
				writeError(w, api.Errf(api.ErrBadRequest, "from_seq query %q: %v", qs, err), nil)
				return
			}
			req.FromSeq = n
		}
		if qb := q.Get("buffer"); qb != "" {
			n, err := strconv.Atoi(qb)
			if err != nil {
				writeError(w, api.Errf(api.ErrBadRequest, "buffer query %q: %v", qb, err), nil)
				return
			}
			req.Buffer = n
		}
		flusher, ok := w.(http.Flusher)
		if !ok {
			writeError(w, api.Errf(api.ErrInternal, "transport cannot stream"), nil)
			return
		}
		ch, err := ws.Watch(r.Context(), req)
		if err != nil {
			writeError(w, err, nil)
			return
		}
		// A daemon's server-level ReadTimeout covers the whole request —
		// including the background read that detects client disconnects —
		// and would sever a long-lived stream when it fires. Streams pace
		// themselves (heartbeats, write failures), so lift the read
		// deadline for this connection; transports that cannot are left
		// with their configured behaviour.
		_ = http.NewResponseController(w).SetReadDeadline(time.Time{})
		h := w.Header()
		h.Set("Content-Type", "text/event-stream")
		h.Set("Cache-Control", "no-cache")
		h.Set("X-Accel-Buffering", "no") // streaming through buffering proxies
		w.WriteHeader(http.StatusOK)
		// An opening comment commits the response headers immediately, so
		// the client observes a live stream before the first event.
		fmt.Fprint(w, ": stream open\n\n")
		flusher.Flush()

		ticker := time.NewTicker(s.heartbeat)
		defer ticker.Stop()
		for {
			select {
			case ev, ok := <-ch:
				if !ok {
					// The subscription ended (service shutdown after its
					// final drain, or the request context ended): close the
					// response, which the client sees as end-of-stream.
					return
				}
				data, err := json.Marshal(ev)
				if err != nil {
					return
				}
				if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
					return // client gone; the request context ends the watch
				}
				flusher.Flush()
			case <-ticker.C:
				if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
					return
				}
				flusher.Flush()
			case <-s.streamStop:
				// Graceful daemon shutdown: the stream ends here so
				// http.Server.Shutdown can drain; returning cancels the
				// request context, which ends the service subscription.
				return
			case <-r.Context().Done():
				return
			}
		}
	}
}

// Watch implements api.WatchService over HTTP: it opens the daemon's
// /v1/watch SSE stream and decodes it onto a channel, preserving the
// in-process semantics — per-device sequence order, resume via FromSeq,
// EventLagged on overflow — so a consumer can swap the fleet for a
// remote daemon without changing its event loop. The channel closes
// when ctx ends, the server shuts down, or the connection breaks;
// consumers needing continuity reconnect with FromSeq set to their last
// observed sequence number plus one.
func (c *Client) Watch(ctx context.Context, req api.WatchRequest) (<-chan api.Event, error) {
	vals := url.Values{}
	if req.Device != nil {
		vals.Set("device", strconv.Itoa(*req.Device))
	}
	if req.FromSeq > 0 {
		vals.Set("from_seq", strconv.FormatUint(req.FromSeq, 10))
	}
	if req.Buffer > 0 {
		vals.Set("buffer", strconv.Itoa(req.Buffer))
	}
	path := "/v1/watch"
	if len(vals) > 0 {
		path += "?" + vals.Encode()
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+path, nil)
	if err != nil {
		return nil, fmt.Errorf("httpapi: %s: %w", path, err)
	}
	hreq.Header.Set("Accept", "text/event-stream")
	if c.token != "" {
		hreq.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.http.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("httpapi: %s: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		var env struct {
			Error *api.Error `json:"error"`
		}
		if derr := json.NewDecoder(resp.Body).Decode(&env); derr != nil || env.Error == nil {
			return nil, api.Errf(statusSentinel(resp.StatusCode), "%s: HTTP %d without error envelope", path, resp.StatusCode)
		}
		return nil, api.FromCode(env.Error.Code, env.Error.Message)
	}
	ch := make(chan api.Event)
	go func() {
		// Cancelling ctx aborts the in-flight body read, so the scanner
		// loop ends promptly; either way the channel closes.
		defer close(ch)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 4096), 1<<20)
		var data []byte
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				// Dispatch boundary: a blank line ends one SSE message.
				if len(data) == 0 {
					continue // heartbeat or field-only message
				}
				var ev api.Event
				if err := json.Unmarshal(data, &ev); err == nil {
					select {
					case ch <- ev:
					case <-ctx.Done():
						return
					}
				}
				data = data[:0]
			case strings.HasPrefix(line, "data:"):
				data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")...)
			default:
				// id:/event: duplicate what data carries; comments are
				// heartbeats. All ignored.
			}
		}
	}()
	return ch, nil
}

var _ api.WatchService = (*Client)(nil)
