package httpapi_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"adaptrm/internal/api"
	"adaptrm/internal/fleet"
	"adaptrm/internal/httpapi"
)

// batchScript is the shared interaction replayed on every transport:
// feasible bursts, an over-subscribed burst (fallback), invalid items.
var batchScript = []api.BatchSubmitRequest{
	{Device: 0, At: 0, Items: []api.BatchItem{
		{App: "lambda1", Deadline: 9}, {App: "lambda2", Deadline: 9},
	}},
	{Device: 0, At: 12, Items: []api.BatchItem{
		{App: "lambda1", Deadline: 21}, {App: "lambda2", Deadline: 21},
		{App: "lambda2", Deadline: 21}, {App: "lambda2", Deadline: 21},
	}},
	{Device: 1, At: 0, Items: []api.BatchItem{
		{App: "nope", Deadline: 9}, {App: "lambda2", Deadline: -1}, {App: "lambda1", Deadline: 9},
	}},
}

// driveBatches replays the script and flattens every observable
// outcome (verdict fields and error codes) for comparison.
func driveBatches(t *testing.T, svc api.Service) ([]string, []api.BatchVerdict) {
	t.Helper()
	var codes []string
	var verdicts []api.BatchVerdict
	for i, req := range batchScript {
		res, err := api.SubmitBatch(bg, svc, req)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if len(res.Verdicts) != len(req.Items) {
			t.Fatalf("batch %d: %d verdicts for %d items", i, len(res.Verdicts), len(req.Items))
		}
		for _, v := range res.Verdicts {
			if v.Error != nil {
				codes = append(codes, v.Error.Code)
				// Compare by code: the human-readable message is free
				// text and legitimately differs between the native batch
				// path and the sequential fallback.
				v.Error = &api.Error{Code: v.Error.Code}
			} else {
				codes = append(codes, "")
			}
			verdicts = append(verdicts, v)
		}
	}
	return codes, verdicts
}

// TestSubmitBatchTransportEquivalence holds the in-process batch
// service and the HTTP round-trip to identical verdicts, job ids,
// per-item taxonomy codes and deterministic statistics.
func TestSubmitBatchTransportEquivalence(t *testing.T) {
	local := newFleet(t, 2, fleet.Options{Shards: 2})
	remote := newFleet(t, 2, fleet.Options{Shards: 2})
	lc, lv := driveBatches(t, local.Service())
	rc, rv := driveBatches(t, overHTTP(t, remote.Service(), httpapi.ServerOptions{}, ""))
	if !reflect.DeepEqual(lc, rc) {
		t.Errorf("per-item codes diverged:\nlocal %v\nhttp  %v", lc, rc)
	}
	if !reflect.DeepEqual(lv, rv) {
		t.Errorf("verdicts diverged:\nlocal %+v\nhttp  %+v", lv, rv)
	}
	ls, err := local.Service().Stats(bg, api.StatsRequest{})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := remote.Service().Stats(bg, api.StatsRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if ls.Deterministic() != rs.Deterministic() {
		t.Errorf("stats diverged:\nlocal %+v\nhttp  %+v", ls.Deterministic(), rs.Deterministic())
	}
	if err := local.Close(); err != nil {
		t.Fatal(err)
	}
	if err := remote.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitBatchPerItemErrorsSurvived: per-item errors round-trip the
// wire with errors.Is intact, and a clean rejection is CodeInfeasible.
func TestSubmitBatchPerItemErrors(t *testing.T) {
	f := newFleet(t, 1, fleet.Options{})
	defer f.Close()
	svc := overHTTP(t, f.Service(), httpapi.ServerOptions{}, "")
	res, err := api.SubmitBatch(bg, svc, api.BatchSubmitRequest{Device: 0, At: 0, Items: []api.BatchItem{
		{App: "lambda1", Deadline: 9},
		{App: "ghost", Deadline: 9},
		{App: "lambda2", Deadline: 0},
		{App: "lambda2", Deadline: 9},
		{App: "lambda2", Deadline: 9},
		{App: "lambda2", Deadline: 9},
	}})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Verdicts
	if !v[0].Accepted || v[0].JobID != 1 {
		t.Errorf("first item: %+v", v[0])
	}
	if !errors.Is(v[1].Error, api.ErrUnknownApp) {
		t.Errorf("unknown app: %+v", v[1])
	}
	if !errors.Is(v[2].Error, api.ErrBadRequest) {
		t.Errorf("bad deadline: %+v", v[2])
	}
	rejected := 0
	for _, x := range v[3:] {
		if x.Error != nil && errors.Is(x.Error, api.ErrInfeasible) {
			rejected++
		}
	}
	if rejected == 0 {
		t.Errorf("over-subscribed tail produced no infeasible verdicts: %+v", v[3:])
	}
	// The empty batch is a 200 with an empty result on the wire — a
	// no-op, not an error envelope.
	if res, err := api.SubmitBatch(bg, svc, api.BatchSubmitRequest{Device: 0, At: 1}); err != nil || len(res.Verdicts) != 0 || len(res.Completions) != 0 {
		t.Errorf("empty batch: res %+v err %v, want empty result and nil error", res, err)
	}
	// Unknown devices stay call-level.
	if _, err := api.SubmitBatch(bg, svc, api.BatchSubmitRequest{Device: 7, At: 1, Items: []api.BatchItem{{App: "lambda1", Deadline: 9}}}); !errors.Is(err, api.ErrUnknownDevice) {
		t.Errorf("unknown device: %v", err)
	}
}

// TestSubmitBatchQuota: a k-item batch spends k units of the tenant
// budget, and an over-budget batch is refused atomically (no partial
// reservation, nothing executed).
func TestSubmitBatchQuota(t *testing.T) {
	f := newFleet(t, 1, fleet.Options{})
	defer f.Close()
	svc := overHTTP(t, f.Service(), httpapi.ServerOptions{
		Tenants: []httpapi.Tenant{{Name: "t", Token: "tok", MaxRequests: 3}},
	}, "tok")
	if _, err := api.SubmitBatch(bg, svc, api.BatchSubmitRequest{Device: 0, At: 0, Items: []api.BatchItem{
		{App: "lambda1", Deadline: 30}, {App: "lambda2", Deadline: 30},
	}}); err != nil {
		t.Fatal(err)
	}
	// 1 unit left: a 2-item batch must be refused whole...
	if _, err := api.SubmitBatch(bg, svc, api.BatchSubmitRequest{Device: 0, At: 1, Items: []api.BatchItem{
		{App: "lambda2", Deadline: 40}, {App: "lambda2", Deadline: 40},
	}}); !errors.Is(err, api.ErrQuotaExceeded) {
		t.Fatalf("over-budget batch: %v", err)
	}
	// ...without burning the remaining unit.
	if _, err := svc.Submit(bg, api.SubmitRequest{Device: 0, At: 2, App: "lambda2", Deadline: 40}); err != nil && !errors.Is(err, api.ErrInfeasible) {
		t.Fatalf("last unit was burned by the refused batch: %v", err)
	}
	st, err := svc.Stats(bg, api.StatsRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Submitted != 3 {
		t.Errorf("submitted = %d, want 3 (2 batch + 1 single)", st.Submitted)
	}
	// The whole budget is spent — an empty batch must still pass: zero
	// items charge zero units (not one), and the reply is an empty
	// result, not a quota error.
	if res, err := api.SubmitBatch(bg, svc, api.BatchSubmitRequest{Device: 0, At: 3}); err != nil || len(res.Verdicts) != 0 {
		t.Errorf("empty batch on spent budget: res %+v err %v, want empty result and nil error", res, err)
	}
}

// plainService hides the fleet's native batch path, exercising the
// server-side sequential fallback of /v1/submit-batch.
type plainService struct{ inner api.Service }

func (p plainService) Submit(ctx context.Context, r api.SubmitRequest) (api.SubmitResult, error) {
	return p.inner.Submit(ctx, r)
}
func (p plainService) Advance(ctx context.Context, r api.AdvanceRequest) (api.AdvanceResult, error) {
	return p.inner.Advance(ctx, r)
}
func (p plainService) Cancel(ctx context.Context, r api.CancelRequest) (api.CancelResult, error) {
	return p.inner.Cancel(ctx, r)
}
func (p plainService) Stats(ctx context.Context, r api.StatsRequest) (api.StatsResult, error) {
	return p.inner.Stats(ctx, r)
}

// flakyService admits a fixed number of submits, then reports overload
// — a refundable, call-level failure mid-batch.
type flakyService struct {
	plainService
	allowed int
	calls   int
}

func (f *flakyService) Submit(ctx context.Context, r api.SubmitRequest) (api.SubmitResult, error) {
	f.calls++
	if f.calls > f.allowed {
		return api.SubmitResult{}, api.Errf(api.ErrOverloaded, "synthetic overload")
	}
	return f.plainService.Submit(ctx, r)
}

// TestSubmitBatchPartialRefund: when the sequential fallback fails
// mid-batch with a refundable error, only the undecided items hand
// their budget units back — the executed prefix stays charged, so the
// budget keeps meaning "mutating operations executed".
func TestSubmitBatchPartialRefund(t *testing.T) {
	f := newFleet(t, 1, fleet.Options{})
	defer f.Close()
	svc := &flakyService{plainService: plainService{f.Service()}, allowed: 2}
	client := overHTTP(t, svc, httpapi.ServerOptions{
		Tenants: []httpapi.Tenant{{Name: "t", Token: "tok", MaxRequests: 4}},
	}, "tok")
	res, err := api.SubmitBatch(bg, client, api.BatchSubmitRequest{Device: 0, At: 0, Items: []api.BatchItem{
		{App: "lambda1", Deadline: 30},
		{App: "lambda2", Deadline: 30},
		{App: "lambda2", Deadline: 30},
		{App: "lambda2", Deadline: 30},
	}})
	if !errors.Is(err, api.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if len(res.Verdicts) != 2 {
		t.Fatalf("partial verdicts = %+v, want the 2 decided items", res.Verdicts)
	}
	// 2 of the 4 reserved units were spent; exactly 2 remain.
	svc.allowed = 1 << 30
	for i := 0; i < 2; i++ {
		if _, err := client.Submit(bg, api.SubmitRequest{Device: 0, At: float64(i + 1), App: "lambda2", Deadline: float64(i) + 40}); err != nil && !errors.Is(err, api.ErrInfeasible) {
			t.Fatalf("remaining unit %d: %v", i, err)
		}
	}
	if _, err := client.Submit(bg, api.SubmitRequest{Device: 0, At: 3, App: "lambda2", Deadline: 43}); !errors.Is(err, api.ErrQuotaExceeded) {
		t.Fatalf("budget not enforced after partial refund: %v", err)
	}
}

// TestSubmitBatchFallbackOverPlainService: a server wrapping a Service
// without a native batch path still serves /v1/submit-batch, with
// identical verdicts (sequential submission is the defining semantics).
func TestSubmitBatchFallbackOverPlainService(t *testing.T) {
	native := newFleet(t, 2, fleet.Options{})
	wrapped := newFleet(t, 2, fleet.Options{})
	defer native.Close()
	defer wrapped.Close()
	nc, nv := driveBatches(t, overHTTP(t, native.Service(), httpapi.ServerOptions{}, ""))
	wc, wv := driveBatches(t, overHTTP(t, plainService{wrapped.Service()}, httpapi.ServerOptions{}, ""))
	if !reflect.DeepEqual(nc, wc) {
		t.Errorf("fallback codes diverged:\nnative   %v\nfallback %v", nc, wc)
	}
	if !reflect.DeepEqual(nv, wv) {
		t.Errorf("fallback verdicts diverged:\nnative   %+v\nfallback %+v", nv, wv)
	}
}
