package httpapi

import (
	"crypto/subtle"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"time"

	"adaptrm/internal/api"
	"adaptrm/internal/control"
	"adaptrm/internal/flightlog"
	"adaptrm/internal/metrics"
)

// The observability surface of the daemon, all dependency-free:
//
//	GET /metrics          Prometheus text format (hand-rolled)
//	GET /debug/flightlog  postmortem ring dump (ServerOptions.FlightLog)
//	GET /debug/pprof/...  net/http/pprof, bearer-gated (PprofToken)
//
// /metrics exports three layers in one scrape: the service counters
// (aggregate and per-device, read through api.Service.Stats at scrape
// time — the fleet already computes them, the endpoint only formats),
// operational gauges read through optional interfaces (per-shard queue
// depth), and the HTTP layer's own live counters: per-route request
// counts by status class, per-route latency histograms with the fixed
// deterministic bucket ladder of metrics.DefaultLatencyBuckets, and
// per-tenant quota-refusal counters. Recording on the request hot path
// is a counter increment plus a histogram observation — zero
// allocations, pinned by BenchmarkMetricsRecord in the CI allocs gate;
// the response-writer wrapper comes from a pool.
//
// /metrics and /healthz are intentionally unauthenticated even on a
// tenanted server: they are scraped by infrastructure, not tenants,
// and carry no per-tenant payload beyond refusal counts. Deployments
// that must hide them put the daemon behind a filtering proxy.

// routeMetrics is the live instrumentation of one mux route.
type routeMetrics struct {
	// codes counts completed requests by status class (1xx..5xx).
	codes [5]metrics.Counter
	// latency is the request service-time histogram over the fixed
	// deterministic bucket ladder.
	latency *metrics.Histogram
}

func newRouteMetrics() *routeMetrics {
	return &routeMetrics{latency: metrics.NewHistogram(metrics.DefaultLatencyBuckets)}
}

func (m *routeMetrics) record(status int, d time.Duration) {
	class := status/100 - 1
	if class < 0 || class > 4 {
		class = 4 // treat nonsense as a server error, never an index panic
	}
	m.codes[class].Inc()
	m.latency.Observe(int64(d))
}

// requests sums the route's completed requests across status classes.
func (m *routeMetrics) requests() int64 {
	var n int64
	for i := range m.codes {
		n += m.codes[i].Value()
	}
	return n
}

// serverMetrics holds the per-route instrumentation. Routes are fixed
// at construction — the label set is bounded by the mux, never by the
// client — and anything that matched no route lands in "other".
type serverMetrics struct {
	routes map[string]*routeMetrics
	order  []string // deterministic emission order
	other  *routeMetrics
}

func newServerMetrics(routes []string) *serverMetrics {
	m := &serverMetrics{routes: make(map[string]*routeMetrics, len(routes)), other: newRouteMetrics()}
	for _, r := range routes {
		if _, dup := m.routes[r]; !dup {
			m.routes[r] = newRouteMetrics()
			m.order = append(m.order, r)
		}
	}
	sort.Strings(m.order)
	return m
}

// of resolves the instrumentation bucket of a route path.
func (m *serverMetrics) of(route string) *routeMetrics {
	if rm, ok := m.routes[route]; ok {
		return rm
	}
	return m.other
}

// statusWriter captures the response status around the mux while
// passing streaming capabilities through: Flush for the SSE watch
// handler, Unwrap for http.ResponseController (read-deadline lifting).
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

var swPool = sync.Pool{New: func() any { return new(statusWriter) }}

// routeOf extracts the path part of a mux pattern ("POST /v1/submit" →
// "/v1/submit"); unmatched requests (empty pattern) map to "other".
func routeOf(pattern string) string {
	for i := 0; i < len(pattern); i++ {
		if pattern[i] == ' ' {
			return pattern[i+1:]
		}
	}
	if pattern == "" {
		return "other"
	}
	return pattern
}

// instrument is the Server.ServeHTTP body: serve through the mux with
// a pooled status-capturing writer, then record route, status class,
// and latency — and, when a flight log is attached, the postmortem
// record of the request.
func (s *Server) instrument(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw := swPool.Get().(*statusWriter)
	sw.ResponseWriter, sw.code = w, 0
	s.mux.ServeHTTP(sw, r)
	status := sw.code
	if status == 0 {
		status = http.StatusOK // handler wrote nothing; net/http sends 200
	}
	sw.ResponseWriter = nil
	swPool.Put(sw)
	elapsed := time.Since(start)
	route := routeOf(r.Pattern)
	s.metrics.of(route).record(status, elapsed)
	if s.flight != nil {
		s.flight.Append(flightlog.Record{
			Kind: flightlog.KindHTTP, Route: route, Status: status, Duration: elapsed,
		})
	}
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format. Service counters are read through api.Service.Stats at
// scrape time (aggregate, then once per device), so the exported
// values are exactly the fleet's own statistics — the equivalence test
// pins them byte-identical; the HTTP layer's live counters ride along.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	agg, err := s.svc.Stats(r.Context(), api.StatsRequest{})
	if err != nil {
		http.Error(w, "stats unavailable: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	devs := make([]api.StatsResult, 0, agg.Devices)
	for d := 0; d < agg.Devices; d++ {
		dev := d
		ds, err := s.svc.Stats(r.Context(), api.StatsRequest{Device: &dev})
		if err != nil {
			http.Error(w, fmt.Sprintf("device %d stats unavailable: %v", d, err), http.StatusServiceUnavailable)
			return
		}
		devs = append(devs, ds)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	e := metrics.NewEmitter(w)

	e.Family("adaptrm_fleet_devices", "Devices in the fleet.", "gauge")
	e.Int("adaptrm_fleet_devices", int64(agg.Devices))
	e.Family("adaptrm_fleet_shards", "Shard worker goroutines.", "gauge")
	e.Int("adaptrm_fleet_shards", int64(agg.Shards))
	e.Family("adaptrm_uptime_seconds", "Seconds since the server was built.", "gauge")
	e.Float("adaptrm_uptime_seconds", s.now().Sub(s.start).Seconds())

	counter := func(name, help string, agg int64, per func(api.StatsResult) int64) {
		e.Family(name, help, "counter")
		e.Int(name, agg)
		if per != nil {
			for d := range devs {
				e.Int(name, per(devs[d]), metrics.L("device", strconv.Itoa(d)))
			}
		}
	}
	// Admission and lifecycle counters, aggregate plus per device. The
	// unlabeled sample is the fleet-wide value; device="N" samples
	// split it.
	counter("adaptrm_requests_submitted_total", "Admission requests received.",
		int64(agg.Submitted), func(s api.StatsResult) int64 { return int64(s.Submitted) })
	counter("adaptrm_requests_accepted_total", "Admission requests accepted.",
		int64(agg.Accepted), func(s api.StatsResult) int64 { return int64(s.Accepted) })
	counter("adaptrm_requests_rejected_total", "Admission requests rejected (no feasible schedule).",
		int64(agg.Rejected), func(s api.StatsResult) int64 { return int64(s.Rejected) })
	counter("adaptrm_jobs_completed_total", "Jobs run to completion.",
		int64(agg.Completed), func(s api.StatsResult) int64 { return int64(s.Completed) })
	counter("adaptrm_jobs_cancelled_total", "Jobs cancelled while active.",
		int64(agg.Cancelled), func(s api.StatsResult) int64 { return int64(s.Cancelled) })
	counter("adaptrm_jobs_deadline_misses_total", "Completed jobs that violated their deadline.",
		int64(agg.DeadlineMisses), func(s api.StatsResult) int64 { return int64(s.DeadlineMisses) })

	e.Family("adaptrm_energy_joules_total", "Energy of all executed schedule fractions.", "counter")
	e.Float("adaptrm_energy_joules_total", agg.Energy)
	for d := range devs {
		e.Float("adaptrm_energy_joules_total", devs[d].Energy, metrics.L("device", strconv.Itoa(d)))
	}

	counter("adaptrm_scheduler_activations_total", "Scheduler invocations (cache hits included).",
		int64(agg.Activations), func(s api.StatsResult) int64 { return int64(s.Activations) })
	e.Family("adaptrm_scheduler_busy_seconds_total", "Cumulative scheduler wall time.", "counter")
	e.Float("adaptrm_scheduler_busy_seconds_total", agg.SchedulingTime.Seconds())

	counter("adaptrm_cache_hits_total", "Schedule-cache hits.", int64(agg.CacheHits), nil)
	counter("adaptrm_cache_misses_total", "Schedule-cache misses.", int64(agg.CacheMisses), nil)
	counter("adaptrm_cache_stale_total", "Schedule-cache entries invalidated on reuse.", int64(agg.CacheStale), nil)
	counter("adaptrm_cache_evictions_total", "Schedule-cache LRU evictions.", int64(agg.CacheEvictions), nil)
	counter("adaptrm_cache_repacks_total", "Schedule-cache re-pack reuses.", int64(agg.CacheRepacks), nil)
	counter("adaptrm_cache_shared_hits_total", "Lookups served from the fleet-wide shared cache tier.",
		int64(agg.CacheSharedHits), nil)
	counter("adaptrm_cache_promotions_total", "Entries promoted into the shared cache tier.",
		int64(agg.CachePromotions), nil)
	counter("adaptrm_schedule_swaps_total", "Accepted anytime-refinement schedule swaps.",
		int64(agg.ScheduleSwaps), func(s api.StatsResult) int64 { return int64(s.ScheduleSwaps) })
	counter("adaptrm_refine_searches_total", "Background exact refinement searches run.",
		int64(agg.RefineSearches), nil)
	counter("adaptrm_refine_improved_total", "Refinement searches that beat their incumbent.",
		int64(agg.RefineImproved), nil)
	counter("adaptrm_refine_skipped_total", "Refinement tasks skipped (exact result already shared).",
		int64(agg.RefineSkipped), nil)
	counter("adaptrm_refine_dropped_total", "Refinement offers dropped on a full queue.",
		int64(agg.RefineDropped), nil)
	counter("adaptrm_coalesced_batches_total", "Multi-request batched activations.", int64(agg.CoalescedBatches), nil)
	counter("adaptrm_coalesced_requests_total", "Submits decided inside a coalesced batch.", int64(agg.CoalescedRequests), nil)

	e.Family("adaptrm_watch_subscribers", "Open watch subscriptions.", "gauge")
	e.Int("adaptrm_watch_subscribers", int64(agg.WatchSubscribers))
	counter("adaptrm_watch_dropped_total", "Events dropped from slow watch subscribers.", int64(agg.WatchDropped), nil)

	// Degradation-controller families, emitted only when the service
	// reports a controller mode — a controller-less daemon's scrape
	// stays byte-identical to a pre-control build.
	if agg.ControlMode != "" {
		var mode int64
		if m, err := control.ParseMode(agg.ControlMode); err == nil {
			mode = int64(m)
		}
		e.Family("adaptrm_control_mode", "Degradation tier (0 normal, 1 heuristic-only, 2 shedding).", "gauge")
		e.Int("adaptrm_control_mode", mode)
		counter("adaptrm_shed_total", "Admission requests shed early with an overloaded error.", int64(agg.Shed), nil)
		counter("adaptrm_control_ticks_total", "Degradation-controller decision ticks.", int64(agg.ControlTicks), nil)
		counter("adaptrm_control_mode_changes_total", "Degradation-tier transitions (both directions).", int64(agg.ControlModeChanges), nil)
	}

	// Per-shard queue depth, when the wrapped service exposes it (the
	// fleet's service view does; a plain api.Service need not).
	if qd, ok := s.svc.(interface{ QueueDepths() []int }); ok {
		e.Family("adaptrm_queue_depth", "Pending operations per shard mailbox.", "gauge")
		for i, d := range qd.QueueDepths() {
			e.Int("adaptrm_queue_depth", int64(d), metrics.L("shard", strconv.Itoa(i)))
		}
	}
	// Per-device event position, when exposed: the reference the WAL
	// append position lags behind (equal when persistence is caught up).
	if es, ok := s.svc.(interface{ DeviceEventSeqs() []uint64 }); ok {
		e.Family("adaptrm_device_event_seq", "Last event sequence emitted per device.", "gauge")
		for i, seq := range es.DeviceEventSeqs() {
			e.Int("adaptrm_device_event_seq", int64(seq), metrics.L("device", strconv.Itoa(i)))
		}
	}
	s.emitWALMetrics(e)
	e.Family("adaptrm_queue_depth_max", "High-water mark of pending requests over all shard mailboxes.", "gauge")
	e.Int("adaptrm_queue_depth_max", int64(agg.MaxQueueDepth))

	// Per-tenant quota refusals, sorted by tenant name for a
	// deterministic scrape.
	e.Family("adaptrm_quota_refusals_total", "Requests refused by tenant quotas, by kind (budget or rate).", "counter")
	for _, t := range s.sortedTenants() {
		e.Int("adaptrm_quota_refusals_total", t.budgetRefusals.Load(),
			metrics.L("tenant", t.Name), metrics.L("kind", "budget"))
		e.Int("adaptrm_quota_refusals_total", t.rateRefusals.Load(),
			metrics.L("tenant", t.Name), metrics.L("kind", "rate"))
	}

	// The HTTP layer's own counters: per-route requests by status
	// class and the latency histograms (fixed deterministic buckets).
	e.Family("adaptrm_http_requests_total", "Completed HTTP requests by route and status class.", "counter")
	emitRoute := func(route string, rm *routeMetrics) {
		for class := range rm.codes {
			if v := rm.codes[class].Value(); v > 0 {
				e.Int("adaptrm_http_requests_total", v,
					metrics.L("route", route), metrics.L("code", strconv.Itoa(class+1)+"xx"))
			}
		}
	}
	for _, route := range s.metrics.order {
		emitRoute(route, s.metrics.routes[route])
	}
	emitRoute("other", s.metrics.other)
	e.Family("adaptrm_http_request_seconds", "HTTP request service time by route.", "histogram")
	for _, route := range s.metrics.order {
		e.Histogram("adaptrm_http_request_seconds", s.metrics.routes[route].latency.Snapshot(),
			metrics.L("route", route))
	}
	e.Histogram("adaptrm_http_request_seconds", s.metrics.other.latency.Snapshot(),
		metrics.L("route", "other"))

	if err := e.Err(); err != nil {
		// The connection died mid-scrape; nothing sensible left to do.
		return
	}

	// A routing service's own families (per-peer request counters,
	// error classes, latency histograms) ride along on the same scrape.
	// Discovered by interface — stdlib types only — so this package
	// never imports the router, mirroring the QueueDepths pattern.
	if rm, ok := s.svc.(interface{ WriteMetrics(io.Writer) error }); ok {
		_ = rm.WriteMetrics(w)
	}
}

// emitWALMetrics exports the durable writer's position and recovery
// figures when a WAL is attached (ServerOptions.WAL): whether this
// process recovered prior state, how much, the cumulative append and
// fsync counters with the fsync latency distribution, and the
// per-device positions — last appended sequence, newest snapshot
// sequence, segment-file count. Compare adaptrm_wal_last_seq against
// adaptrm_device_event_seq to see how far persistence trails the
// fleet.
func (s *Server) emitWALMetrics(e *metrics.Emitter) {
	if s.wal == nil {
		return
	}
	ws := s.wal.WALStatus()
	recovered := int64(0)
	if ws.Recovered {
		recovered = 1
	}
	e.Family("adaptrm_wal_recovered", "1 when this process recovered state from the data dir.", "gauge")
	e.Int("adaptrm_wal_recovered", recovered)
	e.Family("adaptrm_wal_recovered_events", "Log-tail events replayed at startup.", "gauge")
	e.Int("adaptrm_wal_recovered_events", int64(ws.RecoveredEvents))
	e.Family("adaptrm_wal_recovered_snapshots", "Devices recovered from a snapshot at startup.", "gauge")
	e.Int("adaptrm_wal_recovered_snapshots", int64(ws.RecoveredSnapshots))
	e.Family("adaptrm_wal_truncated_bytes", "Torn-tail bytes physically removed at startup.", "gauge")
	e.Int("adaptrm_wal_truncated_bytes", ws.TruncatedBytes)
	e.Family("adaptrm_wal_appended_total", "Events appended to the log since start.", "counter")
	e.Int("adaptrm_wal_appended_total", ws.Appended)
	e.Family("adaptrm_wal_fsync_total", "Segment fsync calls since start.", "counter")
	e.Int("adaptrm_wal_fsync_total", ws.Fsyncs)
	e.Family("adaptrm_wal_snapshots_total", "Snapshots written since start.", "counter")
	e.Int("adaptrm_wal_snapshots_total", ws.Snapshots)
	e.Family("adaptrm_wal_rescues_total", "Lag rescues (watch overruns absorbed by a snapshot) since start.", "counter")
	e.Int("adaptrm_wal_rescues_total", ws.Rescues)
	e.Family("adaptrm_wal_last_seq", "Last event sequence appended to the log per device.", "gauge")
	for _, d := range ws.Devices {
		e.Int("adaptrm_wal_last_seq", int64(d.LastSeq), metrics.L("device", strconv.Itoa(d.Device)))
	}
	e.Family("adaptrm_wal_snapshot_seq", "Newest on-disk snapshot sequence per device.", "gauge")
	for _, d := range ws.Devices {
		e.Int("adaptrm_wal_snapshot_seq", int64(d.SnapshotSeq), metrics.L("device", strconv.Itoa(d.Device)))
	}
	e.Family("adaptrm_wal_segments", "Segment files on disk per device.", "gauge")
	for _, d := range ws.Devices {
		e.Int("adaptrm_wal_segments", int64(d.Segments), metrics.L("device", strconv.Itoa(d.Device)))
	}
	e.Family("adaptrm_wal_fsync_seconds", "Segment fsync latency.", "histogram")
	e.Histogram("adaptrm_wal_fsync_seconds", ws.FsyncLatency)
}

// sortedTenants returns the tenant states ordered by name (ties by
// token order are impossible — names may repeat, so fall back to token
// for a total order).
func (s *Server) sortedTenants() []*tenantState {
	out := make([]*tenantState, 0, len(s.tenants))
	for _, t := range s.tenants {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Token < out[j].Token
	})
	return out
}

// QuotaRefusals sums the per-tenant quota-refusal counters: requests
// turned away for an exhausted total budget and for an empty rate
// bucket. rmserve prints them in its shutdown report.
func (s *Server) QuotaRefusals() (budget, rate int64) {
	for _, t := range s.tenants {
		budget += t.budgetRefusals.Load()
		rate += t.rateRefusals.Load()
	}
	return budget, rate
}

// handleFlightlog serves GET /debug/flightlog: the newest n records of
// the postmortem ring as JSON (?n=, default all retained). On a
// tenanted server it is scoped like fleet-wide stats — authenticated,
// device-unrestricted tenants only — since the ring spans every device.
func (s *Server) handleFlightlog(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenantOf(r)
	if err != nil {
		writeError(w, err, nil)
		return
	}
	if err := allow(t, -1); err != nil {
		writeError(w, err, nil)
		return
	}
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeError(w, api.Errf(api.ErrBadRequest, "n query %q", q), nil)
			return
		}
		n = v
	}
	w.Header().Set("Content-Type", "application/json")
	_ = s.flight.WriteJSON(w, n)
}

// pprofRoutes registers the net/http/pprof handlers behind the token
// gate. The index route serves the named profiles (heap, goroutine,
// block, ...) as subpaths.
func (s *Server) pprofRoutes() {
	gate := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			tok := bearerOrQueryToken(r)
			if subtle.ConstantTimeCompare([]byte(tok), []byte(s.pprofToken)) != 1 {
				writeError(w, api.Errf(api.ErrUnauthorized, "profiling requires the pprof token"), nil)
				return
			}
			// CPU profiles and traces run for many seconds; a daemon's
			// read timeout must not sever them (same lift as /v1/watch).
			_ = http.NewResponseController(w).SetReadDeadline(time.Time{})
			h(w, r)
		}
	}
	s.mux.HandleFunc("GET /debug/pprof/", gate(pprof.Index))
	s.mux.HandleFunc("GET /debug/pprof/cmdline", gate(pprof.Cmdline))
	s.mux.HandleFunc("GET /debug/pprof/profile", gate(pprof.Profile))
	s.mux.HandleFunc("GET /debug/pprof/symbol", gate(pprof.Symbol))
	s.mux.HandleFunc("POST /debug/pprof/symbol", gate(pprof.Symbol))
	s.mux.HandleFunc("GET /debug/pprof/trace", gate(pprof.Trace))
}

// bearerOrQueryToken extracts the pprof credential: the Authorization
// bearer token, or ?token= for tools that cannot set headers (go tool
// pprof URLs).
func bearerOrQueryToken(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); len(auth) > len("Bearer ") && auth[:len("Bearer ")] == "Bearer " {
		return auth[len("Bearer "):]
	}
	return r.URL.Query().Get("token")
}
