package httpapi_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"adaptrm/internal/api"
	"adaptrm/internal/core"
	"adaptrm/internal/fleet"
	"adaptrm/internal/httpapi"
	"adaptrm/internal/motiv"
	"adaptrm/internal/workload"
)

var bg = context.Background()

// newFleet builds a motivational-platform fleet with one MMKP-MDF
// scheduler per device and registers its teardown.
func newFleet(t *testing.T, devices int, opt fleet.Options) *fleet.Fleet {
	t.Helper()
	devs := make([]fleet.DeviceConfig, devices)
	for i := range devs {
		devs[i] = fleet.DeviceConfig{
			Platform:  motiv.Platform(),
			Library:   motiv.Library(),
			Scheduler: core.New(),
		}
	}
	f, err := fleet.New(devs, opt)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// mustServer builds the HTTP front-end or fails the test.
func mustServer(t *testing.T, svc api.Service, opt httpapi.ServerOptions) *httpapi.Server {
	t.Helper()
	s, err := httpapi.NewServer(svc, opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// overHTTP wraps a Service in a live httptest server and returns the
// client view plus the server for teardown.
func overHTTP(t *testing.T, svc api.Service, opt httpapi.ServerOptions, token string) api.Service {
	t.Helper()
	ts := httptest.NewServer(mustServer(t, svc, opt))
	t.Cleanup(ts.Close)
	return httpapi.NewClient(ts.URL, token, ts.Client())
}

// outcome is the observable result of one protocol interaction,
// comparable across implementations.
type outcome struct {
	Kind        string // "submit", "advance", "cancel"
	Accepted    bool
	JobID       int
	Completions int
	ErrCode     string // taxonomy code, "" on success
}

func codeOf(err error) string {
	if err == nil {
		return ""
	}
	return api.ErrorCode(err)
}

// drive replays a deterministic interaction script — a seeded trace
// with interleaved advances, then a submit+cancel epilogue per device —
// against a Service and records every observable result.
func drive(t *testing.T, svc api.Service, trace []workload.FleetRequest, devices int, horizon float64) ([]outcome, api.StatsResult) {
	t.Helper()
	var log []outcome
	for i, r := range trace {
		if i%5 == 4 {
			adv, err := svc.Advance(bg, api.AdvanceRequest{Device: r.Device, To: r.At})
			log = append(log, outcome{Kind: "advance", Completions: len(adv.Completions), ErrCode: codeOf(err)})
		}
		res, err := svc.Submit(bg, api.SubmitRequest{Device: r.Device, At: r.At, App: r.App, Deadline: r.Deadline})
		if err != nil && !errors.Is(err, api.ErrInfeasible) {
			t.Fatalf("entry %d (%+v): %v", i, r, err)
		}
		log = append(log, outcome{
			Kind: "submit", Accepted: res.Accepted, JobID: res.JobID,
			Completions: len(res.Completions), ErrCode: codeOf(err),
		})
	}
	// Epilogue: admit one more job per device past the trace horizon and
	// cancel it again — exercising cancellation on both transports.
	for d := 0; d < devices; d++ {
		at := horizon + 10
		res, err := svc.Submit(bg, api.SubmitRequest{Device: d, At: at, App: "lambda2", Deadline: at + 8})
		log = append(log, outcome{
			Kind: "submit", Accepted: res.Accepted, JobID: res.JobID,
			Completions: len(res.Completions), ErrCode: codeOf(err),
		})
		if err == nil && res.Accepted {
			cr, cerr := svc.Cancel(bg, api.CancelRequest{Device: d, JobID: res.JobID})
			log = append(log, outcome{Kind: "cancel", Accepted: cr.Cancelled, JobID: res.JobID, ErrCode: codeOf(cerr)})
		}
	}
	st, err := svc.Stats(bg, api.StatsRequest{})
	if err != nil {
		t.Fatal(err)
	}
	return log, st
}

// TestInProcessAndHTTPEquivalence is the interchangeability guarantee:
// the same seeded trace driven through the in-process fleet service and
// through the HTTP client against a live daemon must yield the same
// accept/reject sequence, job ids, completion counts, energy and
// deterministic statistics.
func TestInProcessAndHTTPEquivalence(t *testing.T) {
	const devices = 3
	const horizon = 120.0
	trace, err := workload.FleetTrace(motiv.Library(), workload.FleetTraceParams{
		Devices: devices, Rate: 0.25, RateSpread: 0.5, Horizon: horizon, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}

	inproc := newFleet(t, devices, fleet.Options{Shards: 2})
	inLog, inStats := drive(t, inproc.Service(), trace, devices, horizon)
	if err := inproc.Close(); err != nil {
		t.Fatal(err)
	}

	backend := newFleet(t, devices, fleet.Options{Shards: 2})
	client := overHTTP(t, backend.Service(), httpapi.ServerOptions{}, "")
	httpLog, httpStats := drive(t, client, trace, devices, horizon)
	if err := backend.Close(); err != nil {
		t.Fatal(err)
	}

	if len(inLog) != len(httpLog) {
		t.Fatalf("interaction counts differ: %d vs %d", len(inLog), len(httpLog))
	}
	for i := range inLog {
		if inLog[i] != httpLog[i] {
			t.Errorf("interaction %d diverged:\nin-process %+v\nhttp       %+v", i, inLog[i], httpLog[i])
		}
	}
	if in, ht := inStats.Deterministic(), httpStats.Deterministic(); in != ht {
		t.Errorf("stats diverged:\nin-process %+v\nhttp       %+v", in, ht)
	}
	// The run must exercise both verdicts to mean anything.
	if inStats.Accepted == 0 || inStats.Rejected == 0 {
		t.Fatalf("trace too easy or too hard (accepted %d, rejected %d) — tune parameters",
			inStats.Accepted, inStats.Rejected)
	}
}

// errService returns a canned error from every method, so the status
// mapping can be tested for taxonomy members the real fleet rarely
// produces.
type errService struct{ err error }

func (s errService) Submit(context.Context, api.SubmitRequest) (api.SubmitResult, error) {
	return api.SubmitResult{}, s.err
}
func (s errService) Advance(context.Context, api.AdvanceRequest) (api.AdvanceResult, error) {
	return api.AdvanceResult{}, s.err
}
func (s errService) Cancel(context.Context, api.CancelRequest) (api.CancelResult, error) {
	return api.CancelResult{}, s.err
}
func (s errService) Stats(context.Context, api.StatsRequest) (api.StatsResult, error) {
	return api.StatsResult{}, s.err
}

// TestErrorStatusAndRoundTrip drives every taxonomy error through a
// live server and asserts (i) the HTTP status the wire carries and (ii)
// that the client decodes it back to the same sentinel under errors.Is.
func TestErrorStatusAndRoundTrip(t *testing.T) {
	cases := []struct {
		sentinel *api.Error
		status   int
	}{
		{api.ErrInfeasible, http.StatusUnprocessableEntity},
		{api.ErrUnknownDevice, http.StatusNotFound},
		{api.ErrUnknownApp, http.StatusNotFound},
		{api.ErrUnknownJob, http.StatusNotFound},
		{api.ErrBadRequest, http.StatusBadRequest},
		{api.ErrPayloadTooLarge, http.StatusRequestEntityTooLarge},
		{api.ErrOverloaded, http.StatusServiceUnavailable},
		{api.ErrClosed, http.StatusServiceUnavailable},
		{api.ErrQuotaExceeded, http.StatusTooManyRequests},
		{api.ErrUnauthorized, http.StatusUnauthorized},
		{api.ErrForbidden, http.StatusForbidden},
		{api.ErrUnavailable, http.StatusBadGateway},
		{api.ErrInternal, http.StatusInternalServerError},
	}
	for _, c := range cases {
		t.Run(c.sentinel.Code, func(t *testing.T) {
			wrapped := api.Errf(c.sentinel, "some detail %d", 42)
			ts := httptest.NewServer(mustServer(t, errService{err: wrapped}, httpapi.ServerOptions{}))
			defer ts.Close()

			// Raw status on the wire.
			resp, err := http.Post(ts.URL+"/v1/submit", "application/json",
				bytes.NewReader([]byte(`{"device":0,"at":0,"app":"x","deadline":1}`)))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != c.status {
				t.Errorf("status = %d, want %d", resp.StatusCode, c.status)
			}
			var env struct {
				Error *api.Error `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if env.Error == nil || env.Error.Code != c.sentinel.Code {
				t.Errorf("wire code = %+v, want %q", env.Error, c.sentinel.Code)
			}

			// Sentinel identity through the typed client, on every verb.
			client := httpapi.NewClient(ts.URL, "", ts.Client())
			if _, err := client.Submit(bg, api.SubmitRequest{}); !errors.Is(err, c.sentinel) {
				t.Errorf("submit err = %v, want %v", err, c.sentinel)
			}
			if _, err := client.Advance(bg, api.AdvanceRequest{}); !errors.Is(err, c.sentinel) {
				t.Errorf("advance err = %v, want %v", err, c.sentinel)
			}
			if _, err := client.Cancel(bg, api.CancelRequest{}); !errors.Is(err, c.sentinel) {
				t.Errorf("cancel err = %v, want %v", err, c.sentinel)
			}
			if _, err := client.Stats(bg, api.StatsRequest{}); !errors.Is(err, c.sentinel) {
				t.Errorf("stats err = %v, want %v", err, c.sentinel)
			}
		})
	}
}

// TestRealFleetErrorsOverHTTP checks the end-to-end mapping for errors
// the real backend produces, including the bad-payload 400.
func TestRealFleetErrorsOverHTTP(t *testing.T) {
	f := newFleet(t, 1, fleet.Options{})
	ts := httptest.NewServer(mustServer(t, f.Service(), httpapi.ServerOptions{}))
	t.Cleanup(ts.Close)
	t.Cleanup(func() { _ = f.Close() })
	client := httpapi.NewClient(ts.URL, "", ts.Client())

	if _, err := client.Submit(bg, api.SubmitRequest{Device: 4, At: 0, App: "lambda1", Deadline: 9}); !errors.Is(err, api.ErrUnknownDevice) {
		t.Errorf("unknown device: %v", err)
	}
	if _, err := client.Submit(bg, api.SubmitRequest{Device: 0, At: 0, App: "nope", Deadline: 9}); !errors.Is(err, api.ErrUnknownApp) {
		t.Errorf("unknown app: %v", err)
	}
	if _, err := client.Submit(bg, api.SubmitRequest{Device: 0, At: 5, App: "lambda1", Deadline: 5}); !errors.Is(err, api.ErrBadRequest) {
		t.Errorf("bad deadline: %v", err)
	}
	if _, err := client.Cancel(bg, api.CancelRequest{Device: 0, JobID: 123}); !errors.Is(err, api.ErrUnknownJob) {
		t.Errorf("unknown job: %v", err)
	}

	// Undecodable payload → 400 bad_request.
	resp, err := http.Post(ts.URL+"/v1/submit", "application/json",
		bytes.NewReader([]byte(`{"device": "not a number"`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad payload status = %d, want 400", resp.StatusCode)
	}
	var env struct {
		Error *api.Error `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error == nil || !errors.Is(env.Error, api.ErrBadRequest) {
		t.Errorf("bad payload envelope = %+v, err %v", env.Error, err)
	}

	// A rejected submission still reports its verdict in the envelope.
	if r, err := client.Submit(bg, api.SubmitRequest{Device: 0, At: 0, App: "lambda1", Deadline: 9}); err != nil || !r.Accepted {
		t.Fatalf("first λ1: %+v, %v", r, err)
	}
	r, err := client.Submit(bg, api.SubmitRequest{Device: 0, At: 0, App: "lambda1", Deadline: 9})
	if !errors.Is(err, api.ErrInfeasible) || r.Accepted {
		t.Errorf("second λ1: res %+v err %v, want typed rejection", r, err)
	}

	// Health probe.
	if err := client.Health(bg); err != nil {
		t.Errorf("health: %v", err)
	}
}

// TestTenantAuthAndQuota covers the access-control path: unknown token,
// device restriction, and the request budget running out.
func TestTenantAuthAndQuota(t *testing.T) {
	f := newFleet(t, 2, fleet.Options{})
	t.Cleanup(func() { _ = f.Close() })
	opt := httpapi.ServerOptions{Tenants: []httpapi.Tenant{
		{Name: "dev0-only", Token: "tok-a", Devices: []int{0}},
		{Name: "budgeted", Token: "tok-b", MaxRequests: 2},
	}}
	ts := httptest.NewServer(mustServer(t, f.Service(), opt))
	t.Cleanup(ts.Close)

	anon := httpapi.NewClient(ts.URL, "", ts.Client())
	if _, err := anon.Submit(bg, api.SubmitRequest{Device: 0, At: 0, App: "lambda2", Deadline: 9}); !errors.Is(err, api.ErrUnauthorized) {
		t.Errorf("anonymous submit: %v, want ErrUnauthorized", err)
	}
	wrong := httpapi.NewClient(ts.URL, "nope", ts.Client())
	if _, err := wrong.Stats(bg, api.StatsRequest{}); !errors.Is(err, api.ErrUnauthorized) {
		t.Errorf("wrong token stats: %v, want ErrUnauthorized", err)
	}

	a := httpapi.NewClient(ts.URL, "tok-a", ts.Client())
	if r, err := a.Submit(bg, api.SubmitRequest{Device: 0, At: 0, App: "lambda2", Deadline: 9}); err != nil || !r.Accepted {
		t.Fatalf("tenant a device 0: %+v, %v", r, err)
	}
	if _, err := a.Submit(bg, api.SubmitRequest{Device: 1, At: 0, App: "lambda2", Deadline: 9}); !errors.Is(err, api.ErrForbidden) {
		t.Errorf("tenant a device 1: %v, want ErrForbidden", err)
	}
	// A device-restricted tenant may read its own devices' stats but not
	// fleet-wide aggregates that include devices outside its set.
	dev0 := 0
	if _, err := a.Stats(bg, api.StatsRequest{Device: &dev0}); err != nil {
		t.Errorf("tenant a device-0 stats: %v", err)
	}
	if _, err := a.Stats(bg, api.StatsRequest{}); !errors.Is(err, api.ErrForbidden) {
		t.Errorf("tenant a fleet-wide stats: %v, want ErrForbidden", err)
	}

	b := httpapi.NewClient(ts.URL, "tok-b", ts.Client())
	for i := 0; i < 2; i++ {
		if _, err := b.Advance(bg, api.AdvanceRequest{Device: 1, To: float64(i + 1)}); err != nil {
			t.Fatalf("tenant b advance %d: %v", i, err)
		}
	}
	if _, err := b.Advance(bg, api.AdvanceRequest{Device: 1, To: 9}); !errors.Is(err, api.ErrQuotaExceeded) {
		t.Errorf("tenant b over budget: %v, want ErrQuotaExceeded", err)
	}
	// Stats are free and still served after the budget is gone.
	if _, err := b.Stats(bg, api.StatsRequest{}); err != nil {
		t.Errorf("tenant b stats after quota: %v", err)
	}
}

// TestQuotaRefundsUnexecutedCalls: budget units reserved for operations
// that never reach a device (unknown device here) flow back, so the
// budget counts executed work, not attempts.
func TestQuotaRefundsUnexecutedCalls(t *testing.T) {
	f := newFleet(t, 1, fleet.Options{})
	t.Cleanup(func() { _ = f.Close() })
	opt := httpapi.ServerOptions{Tenants: []httpapi.Tenant{{Name: "tight", Token: "tok", MaxRequests: 1}}}
	ts := httptest.NewServer(mustServer(t, f.Service(), opt))
	t.Cleanup(ts.Close)
	c := httpapi.NewClient(ts.URL, "tok", ts.Client())

	for i := 0; i < 3; i++ {
		if _, err := c.Submit(bg, api.SubmitRequest{Device: 9, At: 0, App: "lambda1", Deadline: 9}); !errors.Is(err, api.ErrUnknownDevice) {
			t.Fatalf("attempt %d: %v, want ErrUnknownDevice", i, err)
		}
	}
	// The whole budget is still available for the one real call...
	if r, err := c.Submit(bg, api.SubmitRequest{Device: 0, At: 0, App: "lambda2", Deadline: 9}); err != nil || !r.Accepted {
		t.Fatalf("real submit after refunds: %+v, %v", r, err)
	}
	// ...and is spent now (an executed, business-level rejection would
	// also have consumed it).
	if _, err := c.Advance(bg, api.AdvanceRequest{Device: 0, To: 1}); !errors.Is(err, api.ErrQuotaExceeded) {
		t.Fatalf("budget not consumed by executed call: %v", err)
	}
}

// TestErrorMessageNotDoubled: the wire trims the sentinel prefix before
// the client-side *Error re-adds it, so messages do not stack
// "api: <code>:" per hop.
func TestErrorMessageNotDoubled(t *testing.T) {
	f := newFleet(t, 1, fleet.Options{})
	t.Cleanup(func() { _ = f.Close() })
	ts := httptest.NewServer(mustServer(t, f.Service(), httpapi.ServerOptions{}))
	t.Cleanup(ts.Close)
	c := httpapi.NewClient(ts.URL, "", ts.Client())

	if _, err := c.Submit(bg, api.SubmitRequest{Device: 0, At: 0, App: "lambda1", Deadline: 9}); err != nil {
		t.Fatal(err)
	}
	_, err := c.Submit(bg, api.SubmitRequest{Device: 0, At: 0, App: "lambda1", Deadline: 9})
	if !errors.Is(err, api.ErrInfeasible) {
		t.Fatalf("want rejection, got %v", err)
	}
	if n := strings.Count(err.Error(), "api: infeasible"); n != 1 {
		t.Errorf("prefix appears %d times in %q", n, err.Error())
	}
}

// TestClientContextCancellation: a cancelled context aborts the HTTP
// round-trip and surfaces context.Canceled.
func TestClientContextCancellation(t *testing.T) {
	f := newFleet(t, 1, fleet.Options{})
	t.Cleanup(func() { _ = f.Close() })
	ts := httptest.NewServer(mustServer(t, f.Service(), httpapi.ServerOptions{}))
	t.Cleanup(ts.Close)
	client := httpapi.NewClient(ts.URL, "", ts.Client())

	ctx, cancel := context.WithCancel(bg)
	cancel()
	if _, err := client.Submit(ctx, api.SubmitRequest{Device: 0, At: 0, App: "lambda1", Deadline: 9}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled submit: %v, want context.Canceled", err)
	}
}

// TestConcurrentClientsRace is the -race workhorse for the HTTP path:
// several goroutines drive disjoint devices through one shared client
// against a live server, and the deterministic aggregates must match a
// sequential in-process replay of the same trace.
func TestConcurrentClientsRace(t *testing.T) {
	const devices = 4
	trace, err := workload.FleetTrace(motiv.Library(), workload.FleetTraceParams{
		Devices: devices, Rate: 0.15, RateSpread: 0.4, Horizon: 60, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	streams, err := workload.SplitByDevice(trace, devices)
	if err != nil {
		t.Fatal(err)
	}

	ref := newFleet(t, devices, fleet.Options{Shards: 2})
	if err := ref.Replay(trace); err != nil {
		t.Fatal(err)
	}
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}

	backend := newFleet(t, devices, fleet.Options{Shards: 2})
	ts := httptest.NewServer(mustServer(t, backend.Service(), httpapi.ServerOptions{}))
	t.Cleanup(ts.Close)
	client := httpapi.NewClient(ts.URL, "", ts.Client())

	var wg sync.WaitGroup
	errCh := make(chan error, devices)
	for d := 0; d < devices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			for _, r := range streams[d] {
				_, err := client.Submit(bg, api.SubmitRequest{Device: r.Device, At: r.At, App: r.App, Deadline: r.Deadline})
				if err != nil && !errors.Is(err, api.ErrInfeasible) {
					errCh <- fmt.Errorf("device %d: %w", d, err)
					return
				}
			}
		}(d)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Drain the backend first, then read the final figures over HTTP —
	// stats stay served after close.
	if err := backend.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := client.Stats(bg, api.StatsRequest{})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Stats()
	if st.Submitted != want.Submitted || st.Accepted != want.Accepted || st.Rejected != want.Rejected || st.Energy != want.Energy {
		t.Errorf("concurrent HTTP run diverged: got %+v, want %+v", st, want)
	}
}

// TestReadTenantsJSON covers the daemon's tenant-file parser.
func TestReadTenantsJSON(t *testing.T) {
	good := []byte(`[{"name":"a","token":"t1","devices":[0,1],"max_requests":10},{"name":"b","token":"t2"}]`)
	ts, err := httpapi.ReadTenantsJSON(good)
	if err != nil || len(ts) != 2 || ts[0].MaxRequests != 10 {
		t.Fatalf("good list: %+v, %v", ts, err)
	}
	for _, bad := range []string{
		`[]`,
		`[{"name":"a"}]`,
		`[{"name":"a","token":"t"},{"name":"b","token":"t"}]`,
		`{"name":"a"}`,
	} {
		if _, err := httpapi.ReadTenantsJSON([]byte(bad)); err == nil {
			t.Errorf("accepted bad tenants %s", bad)
		}
	}
}
