// Package httpapi exposes an api.Service over JSON/HTTP and provides a
// Go client that is itself an api.Service, so every caller — tests,
// examples, tools — can run against the in-process fleet or a live
// daemon interchangeably.
//
// Wire protocol (v1):
//
//	POST /v1/submit        SubmitRequest      → SubmitResult
//	POST /v1/submit-batch  BatchSubmitRequest → BatchSubmitResult
//	POST /v1/advance       AdvanceRequest     → AdvanceResult
//	POST /v1/cancel        CancelRequest      → CancelResult
//	GET  /v1/stats[?device=N]                 → StatsResult
//	GET  /v1/watch[?device=N&from_seq=S&buffer=B] → Server-Sent Events
//	GET  /healthz                             → {"status":"ok","devices":N,"uptime_s":...}
//	GET  /metrics                             → Prometheus text format
//	GET  /debug/flightlog[?n=N]               → postmortem ring dump (opt-in)
//	GET  /debug/pprof/...                     → runtime profiles (token-gated, opt-in)
//
// /v1/watch (served when the wrapped Service implements
// api.WatchService) streams device lifecycle events as SSE: each event
// is written as "id: <seq>", "event: <type>" and a "data:" line holding
// the api.Event JSON, with comment-line heartbeats keeping idle
// connections alive. from_seq resumes a single-device stream from a
// sequence number; see api.WatchRequest for the semantics. Watching is
// read-only and quota-free, like stats.
//
// Successful calls return 200 with the result object. Failures return a
// taxonomy-derived status code and an envelope
//
//	{"error":{"code":"...","message":"..."},"result":{...}}
//
// whose optional result carries the partial outcome (e.g. the
// completions observed while a rejected submission advanced the device
// clock), so the HTTP round-trip loses nothing the in-process service
// reports. The client rebuilds the error from its code; errors.Is
// against the api sentinels holds on both sides of the wire.
//
// Authentication is per-tenant bearer tokens. A tenant may be
// restricted to a set of devices (403 outside it, including the
// fleet-wide stats aggregate and the fleet-wide watch, which only
// unrestricted tenants may open), given a request budget (429 once
// spent; a k-item batch costs k units) and a token-bucket rate quota
// (Tenant.Rate sustained operations per second with Tenant.Burst
// capacity; 429 when the bucket is empty). Budget and bucket compose:
// a request must clear both, and a refusal by either reserves nothing.
// The bucket refills against ServerOptions.Now, so tests drive it with
// a virtual clock and the admit/reject sequence is deterministic. A
// server configured with no tenants is open.
//
// The server instruments itself: every request is counted and timed
// per route, and GET /metrics exports those counters together with the
// wrapped service's statistics in the Prometheus text format (see
// metrics.go). ServerOptions.FlightLog attaches a bounded postmortem
// ring receiving one record per request; ServerOptions.PprofToken
// enables the token-gated net/http/pprof routes. Both are off by
// default.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"adaptrm/internal/api"
	"adaptrm/internal/durable"
	"adaptrm/internal/flightlog"
)

// Tenant is one authenticated client of the daemon.
type Tenant struct {
	// Name identifies the tenant in logs and errors.
	Name string `json:"name"`
	// Token is the bearer token presented in the Authorization header.
	Token string `json:"token"`
	// Devices lists the device indices the tenant may address; empty
	// means all devices.
	Devices []int `json:"devices,omitempty"`
	// MaxRequests is the tenant's total budget of mutating calls
	// (submit, advance, cancel); 0 means unlimited. Stats, watches and
	// health checks are free.
	MaxRequests int `json:"max_requests,omitempty"`
	// Rate enables the token-bucket quota: the tenant's sustained
	// mutating-call rate in operations per second (a k-item batch costs
	// k tokens). 0 means unlimited. The bucket composes with
	// MaxRequests — the budget bounds the total, the bucket the pace.
	Rate float64 `json:"rate,omitempty"`
	// Burst is the bucket capacity — how many operations may land
	// back-to-back before the rate gates. 0 with a positive Rate
	// defaults to ceil(Rate), at least 1.
	Burst int `json:"burst,omitempty"`
}

// ServerOptions tunes the HTTP front-end.
type ServerOptions struct {
	// Tenants is the access-control list; empty leaves the server open
	// (every request allowed, no quotas).
	Tenants []Tenant
	// Now supplies the clock the token buckets refill against; nil
	// means time.Now. Tests inject a virtual clock here, making
	// admit/reject sequences fully deterministic.
	Now func() time.Time
	// WatchHeartbeat is the SSE keep-alive comment interval of
	// /v1/watch; 0 means 15s.
	WatchHeartbeat time.Duration
	// PprofToken, when non-empty, registers the net/http/pprof routes
	// under /debug/pprof/, each requiring this token (Authorization
	// bearer or ?token=). Empty leaves profiling unreachable.
	PprofToken string
	// FlightLog, when non-nil, receives one postmortem record per
	// served request and is dumped by GET /debug/flightlog. The caller
	// owns the ring and typically also tails the fleet's watch stream
	// into it (flightlog.Tail).
	FlightLog *flightlog.Log
	// WAL, when non-nil, is the durable writer persisting the fleet
	// (durable.Writer implements it); /metrics then exports the WAL
	// position, segment counts, fsync latency and recovery figures.
	WAL durable.StatusSource
}

// tenantState is a Tenant plus its quota state: the spent-request
// counter of the total budget and the token bucket of the rate quota.
type tenantState struct {
	Tenant
	used atomic.Int64
	// budgetRefusals and rateRefusals count the charges each quota
	// kind turned away, for /metrics, fleet-wide /v1/stats and the
	// rmserve shutdown report. Monotone; refunds do not touch them.
	budgetRefusals atomic.Int64
	rateRefusals   atomic.Int64
	// bmu guards the bucket; the refill-then-take must be atomic.
	bmu    sync.Mutex
	tokens float64
	// last is the bucket's previous refill instant; zero means the
	// bucket is still full (it starts at Burst).
	last time.Time
}

// take reserves n tokens from the rate bucket at virtual time now,
// refilling first. The refusal leaves the bucket untouched, so a
// rejected caller does not push its own recovery further out.
func (t *tenantState) take(n int, now time.Time) error {
	if t == nil || t.Rate <= 0 || n <= 0 {
		return nil
	}
	t.bmu.Lock()
	defer t.bmu.Unlock()
	burst := float64(t.Burst)
	if t.last.IsZero() {
		t.tokens = burst
	} else if dt := now.Sub(t.last).Seconds(); dt > 0 {
		t.tokens = math.Min(burst, t.tokens+dt*t.Rate)
	}
	t.last = now
	// An epsilon absorbs the float drift of many refills, so a tenant
	// pacing itself exactly at Rate is never spuriously refused.
	if t.tokens+1e-9 < float64(n) {
		t.rateRefusals.Add(1)
		return api.Errf(api.ErrQuotaExceeded,
			"tenant %q over rate quota: %d token(s) requested, %.3g available (rate %g/s, burst %d)",
			t.Name, n, t.tokens, t.Rate, t.Burst)
	}
	t.tokens -= float64(n)
	return nil
}

// putBack returns n tokens to the rate bucket (capped at Burst) when
// the charged operation never executed.
func (t *tenantState) putBack(n int) {
	if t == nil || t.Rate <= 0 || n <= 0 {
		return
	}
	t.bmu.Lock()
	t.tokens = math.Min(float64(t.Burst), t.tokens+float64(n))
	t.bmu.Unlock()
}

func (t *tenantState) allowed(dev int) bool {
	if len(t.Devices) == 0 {
		return true
	}
	for _, d := range t.Devices {
		if d == dev {
			return true
		}
	}
	return false
}

// chargeBudget reserves n units of the tenant's total request budget —
// one per mutating operation, so a k-item batch costs k — failing
// without partial reservation once the budget is spent. The
// check-then-add is a single atomic add with rollback, so concurrent
// requests cannot overdraw. A nil receiver (open server) is a no-op.
func (t *tenantState) chargeBudget(n int) error {
	if t == nil || t.MaxRequests <= 0 || n <= 0 {
		return nil
	}
	if t.used.Add(int64(n)) > int64(t.MaxRequests) {
		t.used.Add(int64(-n))
		t.budgetRefusals.Add(1)
		return api.Errf(api.ErrQuotaExceeded, "tenant %q spent its %d-request budget", t.Name, t.MaxRequests)
	}
	return nil
}

// charge reserves n units across both quota kinds — the total budget
// and the rate bucket — atomically: a refusal by either leaves the
// other untouched, so a refused request reserves nothing.
func (t *tenantState) charge(n int, now time.Time) error {
	if err := t.chargeBudget(n); err != nil {
		return err
	}
	if err := t.take(n, now); err != nil {
		t.refundBudget(n)
		return err
	}
	return nil
}

// refundBudget returns n reserved budget units. A nil receiver (open
// server) is a no-op.
func (t *tenantState) refundBudget(n int) {
	if t != nil && t.MaxRequests > 0 && n > 0 {
		t.used.Add(int64(-n))
	}
}

// refund returns n reserved units to both quota kinds when the
// operation never reached a device (backpressure, shutdown, bad
// address), so quotas keep meaning "mutating operations executed", not
// "attempts made". A nil receiver (open server) is a no-op.
func (t *tenantState) refund(n int) {
	t.refundBudget(n)
	t.putBack(n)
}

// refundable reports errors that should hand the budget unit back:
// operations that never executed on a device (backpressure, shutdown,
// bad address), plus bare context errors — the caller vanished before
// or while the operation ran and received nothing, so charging would
// drain budgets on disconnects. (An abandoned op may still execute on
// the device; the transport cannot observe the difference, and the
// policy errs toward the tenant.)
func refundable(err error) bool {
	if errors.Is(err, api.ErrOverloaded) || errors.Is(err, api.ErrClosed) ||
		errors.Is(err, api.ErrUnknownDevice) {
		return true
	}
	var coded *api.Error
	return !errors.As(err, &coded) &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

// Server serves an api.Service over JSON/HTTP.
type Server struct {
	svc     api.Service
	mux     *http.ServeMux
	tenants map[string]*tenantState
	// now is the quota clock (virtual in tests), heartbeat the SSE
	// keep-alive interval of /v1/watch.
	now       func() time.Time
	heartbeat time.Duration
	// streamStop ends every open /v1/watch stream when closed (see
	// StopStreams); streamOnce makes the close idempotent.
	streamStop chan struct{}
	streamOnce sync.Once
	// start anchors the /healthz and /metrics uptime (measured with
	// now, so virtual-clock tests stay deterministic).
	start time.Time
	// metrics is the per-route HTTP instrumentation; flight, wal and
	// pprofToken are the opt-in observability hooks (see metrics.go).
	metrics    *serverMetrics
	flight     *flightlog.Log
	wal        durable.StatusSource
	pprofToken string
}

// StopStreams ends every open /v1/watch stream (and refuses new ones
// with an immediate end-of-stream). Watch connections are in-flight
// requests that never go idle on their own, so a graceful
// http.Server.Shutdown would otherwise wait its whole deadline for
// them; call this first and Shutdown then drains only the short-lived
// requests, untouched. Idempotent.
func (s *Server) StopStreams() {
	s.streamOnce.Do(func() { close(s.streamStop) })
}

// NewServer wraps a Service (typically fleet.Service, but any
// implementation works — servers compose) in the HTTP front-end. It
// rejects tenant lists with empty or duplicate tokens — a duplicate
// would silently shadow the first tenant's device restrictions and
// quota — and with negative rate quotas. When the wrapped Service also
// implements api.WatchService, GET /v1/watch serves its event stream
// as Server-Sent Events; otherwise the route does not exist.
func NewServer(svc api.Service, opt ServerOptions) (*Server, error) {
	s := &Server{
		svc: svc, mux: http.NewServeMux(), now: opt.Now, heartbeat: opt.WatchHeartbeat,
		streamStop: make(chan struct{}), flight: opt.FlightLog, wal: opt.WAL, pprofToken: opt.PprofToken,
	}
	if s.now == nil {
		s.now = time.Now
	}
	s.start = s.now()
	if s.heartbeat <= 0 {
		s.heartbeat = 15 * time.Second
	}
	if len(opt.Tenants) > 0 {
		if err := validateTenants(opt.Tenants); err != nil {
			return nil, err
		}
		s.tenants = make(map[string]*tenantState, len(opt.Tenants))
		for _, t := range opt.Tenants {
			if t.Rate > 0 && t.Burst <= 0 {
				t.Burst = int(math.Ceil(t.Rate))
				if t.Burst < 1 {
					t.Burst = 1
				}
			}
			s.tenants[t.Token] = &tenantState{Tenant: t}
		}
	}
	s.mux.HandleFunc("POST /v1/submit", handle(s, one, s.svc.Submit))
	s.mux.HandleFunc("POST /v1/advance", handle(s, one, s.svc.Advance))
	s.mux.HandleFunc("POST /v1/cancel", handle(s, one, s.svc.Cancel))
	// A batch spends one budget unit per item; api.SubmitBatch uses the
	// wrapped Service's native batch path when it has one and falls back
	// to sequential submission otherwise, so servers compose over any
	// Service.
	s.mux.HandleFunc("POST /v1/submit-batch", handle(s,
		func(r api.BatchSubmitRequest) int { return len(r.Items) },
		func(ctx context.Context, r api.BatchSubmitRequest) (api.BatchSubmitResult, error) {
			return api.SubmitBatch(ctx, s.svc, r)
		}))
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	routes := []string{"/v1/submit", "/v1/advance", "/v1/cancel", "/v1/submit-batch", "/v1/stats", "/healthz", "/metrics"}
	if ws, ok := svc.(api.WatchService); ok {
		s.mux.HandleFunc("GET /v1/watch", s.handleWatch(ws))
		routes = append(routes, "/v1/watch")
	}
	if s.flight != nil {
		s.mux.HandleFunc("GET /debug/flightlog", s.handleFlightlog)
		routes = append(routes, "/debug/flightlog")
	}
	if s.pprofToken != "" {
		s.pprofRoutes()
		routes = append(routes, "/debug/pprof/", "/debug/pprof/cmdline",
			"/debug/pprof/profile", "/debug/pprof/symbol", "/debug/pprof/trace")
	}
	s.metrics = newServerMetrics(routes)
	return s, nil
}

// ServeHTTP implements http.Handler: the mux behind the per-route
// instrumentation (see metrics.go).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.instrument(w, r) }

// statusOf maps taxonomy codes onto HTTP status codes.
func statusOf(code string) int {
	switch code {
	case api.CodeInfeasible:
		return http.StatusUnprocessableEntity
	case api.CodeUnknownDevice, api.CodeUnknownApp, api.CodeUnknownJob:
		return http.StatusNotFound
	case api.CodeBadRequest:
		return http.StatusBadRequest
	case api.CodePayloadTooLarge:
		return http.StatusRequestEntityTooLarge
	case api.CodeUnauthorized:
		return http.StatusUnauthorized
	case api.CodeForbidden:
		return http.StatusForbidden
	case api.CodeQuotaExceeded:
		return http.StatusTooManyRequests
	case api.CodeOverloaded, api.CodeClosed:
		return http.StatusServiceUnavailable
	case api.CodeUnavailable:
		// A routing front-end reporting a dead backend — the gateway's
		// own status, distinct from 503 (this node declining work).
		return http.StatusBadGateway
	default:
		return http.StatusInternalServerError
	}
}

// errEnvelope is the wire form of a failed call.
type errEnvelope struct {
	Error  *api.Error `json:"error"`
	Result any        `json:"result,omitempty"`
}

// writeJSON writes a JSON body with the given status.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// writeError serialises an error chain: the first *Error in the chain
// donates the code, the full chain text the message (minus the
// sentinel's own prefix, which the client-side *Error re-adds — without
// the trim every hop would stack another "api: <code>:"). A non-nil
// partial result rides along so rejected submissions keep their
// completions.
func writeError(w http.ResponseWriter, err error, partial any) {
	code := api.ErrorCode(err)
	msg := strings.TrimPrefix(err.Error(), "api: "+code+": ")
	writeJSON(w, statusOf(code), errEnvelope{
		Error:  api.FromCode(code, msg),
		Result: partial,
	})
}

// tenantOf authenticates the request's bearer token — and nothing
// else, so it can run before any body is read. The returned tenant is
// nil on an open server.
func (s *Server) tenantOf(r *http.Request) (*tenantState, error) {
	if s.tenants == nil {
		return nil, nil
	}
	token := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
	t, ok := s.tenants[token]
	if !ok || token == "" {
		return nil, api.Errf(api.ErrUnauthorized, "missing or unknown bearer token")
	}
	return t, nil
}

// allow checks a tenant's device authorisation. dev < 0 means
// fleet-wide scope, which only device-unrestricted tenants may read — a
// tenant confined to some devices must not see aggregates that include
// the others. A nil tenant (open server) may do anything.
func allow(t *tenantState, dev int) error {
	if t == nil {
		return nil
	}
	if dev < 0 && len(t.Devices) > 0 {
		return api.Errf(api.ErrForbidden, "tenant %q is device-restricted; query per-device stats instead", t.Name)
	}
	if dev >= 0 && !t.allowed(dev) {
		return api.Errf(api.ErrForbidden, "tenant %q may not address device %d", t.Name, dev)
	}
	return nil
}

// maxBodyBytes bounds mutating-request payloads; the protocol messages
// are a few hundred bytes, so 1 MiB is generous.
const maxBodyBytes = 1 << 20

// decode reads a bounded JSON request body; failures map to
// bad_request, except an over-limit body, which gets its own 413 code
// so clients can tell "shrink the payload" from "fix the JSON".
func decode(w http.ResponseWriter, r *http.Request, into any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return api.Errf(api.ErrPayloadTooLarge, "body exceeds %d bytes", tooBig.Limit)
		}
		return api.Errf(api.ErrBadRequest, "undecodable payload: %v", err)
	}
	return nil
}

// settle refunds the reserved units that never executed on a device, so
// budgets count work done rather than attempts. A result exposing a
// decided-operation count (batches) keeps its executed prefix charged
// even when a later item aborted the call — the sequential fallback can
// fail mid-batch with part of the work already done.
func settle(t *tenantState, n int, res any, err error) {
	if !refundable(err) {
		return
	}
	if d, ok := res.(interface{ DecidedOps() int }); ok {
		n -= d.DecidedOps()
	}
	t.refund(n)
}

// handle builds the shared mutating-call pipeline for one service verb:
// authenticate the token (before any body work reaches the parser),
// decode the typed body, authorise the addressed device, reserve the
// budget (one unit per mutating operation the request carries — cost
// reports how many), run the call, settle the budget, and write the
// result or the error envelope (with the partial result riding along).
func handle[Req interface{ TargetDevice() int }, Res any](s *Server, cost func(Req) int, call func(context.Context, Req) (Res, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t, err := s.tenantOf(r)
		if err != nil {
			writeError(w, err, nil)
			return
		}
		var req Req
		if err := decode(w, r, &req); err != nil {
			writeError(w, err, nil)
			return
		}
		// A negative device is not fleet-wide scope here — it is simply
		// an unknown device, and the service reports it as such (the
		// budget unit comes back via the refund rules).
		if dev := req.TargetDevice(); dev >= 0 {
			err = allow(t, dev)
		}
		n := cost(req)
		if err == nil {
			err = t.charge(n, s.now())
		}
		if err != nil {
			writeError(w, err, nil)
			return
		}
		res, err := call(r.Context(), req)
		if err != nil {
			settle(t, n, res, err)
			writeError(w, err, res)
			return
		}
		writeJSON(w, http.StatusOK, res)
	}
}

// one is the cost function of single-operation verbs.
func one[Req any](Req) int { return 1 }

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	// Authenticate before touching any request input, matching the
	// mutating pipeline's ordering.
	t, err := s.tenantOf(r)
	if err != nil {
		writeError(w, err, nil)
		return
	}
	var req api.StatsRequest
	if q := r.URL.Query().Get("device"); q == "" {
		// No device parameter: fleet-wide scope, unrestricted tenants
		// only.
		if err := allow(t, -1); err != nil {
			writeError(w, err, nil)
			return
		}
	} else {
		n, err := strconv.Atoi(q)
		if err != nil {
			writeError(w, api.Errf(api.ErrBadRequest, "device query %q: %v", q, err), nil)
			return
		}
		req.Device = &n
		// An explicit negative device is an unknown device, not
		// fleet-wide scope — skip allow (like the mutating pipeline)
		// and let the service report it uniformly.
		if n >= 0 {
			if err := allow(t, n); err != nil {
				writeError(w, err, nil)
				return
			}
		}
	}
	res, err := s.svc.Stats(r.Context(), req)
	if err != nil {
		writeError(w, err, nil)
		return
	}
	if req.Device == nil {
		// Fleet-wide scope also reports what the transport itself turned
		// away: quota refusals never reach the service, so only this
		// layer can count them.
		b, rate := s.QuotaRefusals()
		res.QuotaBudgetRefusals = int(b)
		res.QuotaRateRefusals = int(rate)
	}
	writeJSON(w, http.StatusOK, res)
}

// healthResult is the /healthz body: liveness plus the facts a probe
// acts on — whether the fleet answers (devices), for how long the
// daemon has been up, and, when a degradation controller is attached,
// its current mode and the deepest shard-mailbox backlog (a probe can
// pull a shedding backend out of rotation before requests bounce).
type healthResult struct {
	Status        string  `json:"status"`
	Devices       int     `json:"devices"`
	UptimeS       float64 `json:"uptime_s"`
	ControlMode   string  `json:"control_mode,omitempty"`
	MaxQueueDepth int     `json:"max_queue_depth,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	res, err := s.svc.Stats(r.Context(), api.StatsRequest{})
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable,
			healthResult{Status: "degraded", UptimeS: s.now().Sub(s.start).Seconds()})
		return
	}
	h := healthResult{Status: "ok", Devices: res.Devices,
		UptimeS: s.now().Sub(s.start).Seconds(), ControlMode: res.ControlMode}
	// Current depth, not the lifetime high-water mark: a probe wants
	// the backlog now.
	if qd, ok := s.svc.(interface{ QueueDepths() []int }); ok {
		for _, d := range qd.QueueDepths() {
			if d > h.MaxQueueDepth {
				h.MaxQueueDepth = d
			}
		}
	}
	writeJSON(w, http.StatusOK, h)
}

// validateTenants rejects tenant lists with empty or duplicate tokens —
// a duplicate would silently shadow the first tenant's device
// restrictions and quota. It is the single source of this invariant for
// both NewServer and ReadTenantsJSON.
func validateTenants(ts []Tenant) error {
	seen := make(map[string]string, len(ts))
	for i, t := range ts {
		if t.Token == "" {
			return fmt.Errorf("httpapi: tenant %d (%q): empty token", i, t.Name)
		}
		if prev, dup := seen[t.Token]; dup {
			return fmt.Errorf("httpapi: tenants %q and %q share a token", prev, t.Name)
		}
		if t.Rate < 0 || t.Burst < 0 {
			return fmt.Errorf("httpapi: tenant %q: negative rate quota (rate %g, burst %d)", t.Name, t.Rate, t.Burst)
		}
		seen[t.Token] = t.Name
	}
	return nil
}

// ReadTenantsJSON parses a tenant list from JSON ([{"name":...,
// "token":..., "devices":[...], "max_requests":N}, ...]), validating
// that the list is non-empty and every tenant has a distinct non-empty
// token.
func ReadTenantsJSON(data []byte) ([]Tenant, error) {
	var ts []Tenant
	if err := json.Unmarshal(data, &ts); err != nil {
		return nil, fmt.Errorf("httpapi: tenants: %w", err)
	}
	if len(ts) == 0 {
		return nil, errors.New("httpapi: tenants: empty list")
	}
	if err := validateTenants(ts); err != nil {
		return nil, err
	}
	return ts, nil
}
