package httpapi_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"adaptrm/internal/api"
	"adaptrm/internal/control"
	"adaptrm/internal/fleet"
	"adaptrm/internal/flightlog"
	"adaptrm/internal/httpapi"
	"adaptrm/internal/motiv"
	"adaptrm/internal/workload"
)

// ---- a small Prometheus text-format parser for the tests ----

type promSample struct {
	name   string
	labels map[string]string
	raw    string // the value token exactly as exported
	value  float64
}

// series is the canonical identity of one sample: name plus sorted
// label pairs.
func (s promSample) series() string {
	keys := make([]string, 0, len(s.labels))
	for k := range s.labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.name)
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%s", k, s.labels[k])
	}
	return b.String()
}

type promScrape struct {
	types   map[string]string // family → counter|gauge|histogram
	helps   map[string]string
	samples []promSample
	series  map[string]promSample
}

// familyOf maps a sample name to its TYPE-carrying family: histogram
// samples use the base name suffixed with _bucket/_sum/_count.
func (p *promScrape) familyOf(name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && p.types[base] == "histogram" {
			return base
		}
	}
	return name
}

// parsePrometheus parses the text exposition format strictly enough to
// catch malformed output: unknown line shapes, bad escapes, unparsable
// values and duplicate series all fail the test.
func parsePrometheus(t *testing.T, body string) *promScrape {
	t.Helper()
	p := &promScrape{
		types:  make(map[string]string),
		helps:  make(map[string]string),
		series: make(map[string]promSample),
	}
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			p.helps[name] = help
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: TYPE without type: %q", ln+1, line)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln+1, typ)
			}
			if _, dup := p.types[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %q", ln+1, name)
			}
			p.types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment shape: %q", ln+1, line)
		}
		s := parseSampleLine(t, ln+1, line)
		if _, dup := p.series[s.series()]; dup {
			t.Fatalf("line %d: duplicate series %q", ln+1, s.series())
		}
		p.samples = append(p.samples, s)
		p.series[s.series()] = s
	}
	return p
}

func parseSampleLine(t *testing.T, ln int, line string) promSample {
	t.Helper()
	i := 0
	for i < len(line) && (line[i] == '_' || line[i] == ':' ||
		(line[i] >= 'a' && line[i] <= 'z') || (line[i] >= 'A' && line[i] <= 'Z') ||
		(i > 0 && line[i] >= '0' && line[i] <= '9')) {
		i++
	}
	if i == 0 {
		t.Fatalf("line %d: no metric name: %q", ln, line)
	}
	s := promSample{name: line[:i], labels: map[string]string{}}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end := -1
		for j := 1; j < len(rest); j++ {
			if rest[j] == '"' { // skip quoted strings (may contain '}')
				j++
				for j < len(rest) && rest[j] != '"' {
					if rest[j] == '\\' {
						j++
					}
					j++
				}
				continue
			}
			if rest[j] == '}' {
				end = j
				break
			}
		}
		if end < 0 {
			t.Fatalf("line %d: unterminated label set: %q", ln, line)
		}
		for _, pair := range splitLabelPairs(t, ln, rest[1:end]) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				t.Fatalf("line %d: malformed label %q", ln, pair)
			}
			s.labels[k] = unescapeLabel(t, ln, v[1:len(v)-1])
		}
		rest = rest[end+1:]
	}
	if !strings.HasPrefix(rest, " ") {
		t.Fatalf("line %d: no space before value: %q", ln, line)
	}
	s.raw = rest[1:]
	v, err := strconv.ParseFloat(s.raw, 64)
	if err != nil {
		t.Fatalf("line %d: unparsable value %q: %v", ln, s.raw, err)
	}
	s.value = v
	return s
}

// splitLabelPairs splits `a="x",b="y"` on commas outside quotes.
func splitLabelPairs(t *testing.T, ln int, s string) []string {
	t.Helper()
	var out []string
	start, inq := 0, false
	for i := 0; i < len(s); i++ {
		switch {
		case inq && s[i] == '\\':
			i++
		case s[i] == '"':
			inq = !inq
		case !inq && s[i] == ',':
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if inq {
		t.Fatalf("line %d: unterminated quote in labels %q", ln, s)
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func unescapeLabel(t *testing.T, ln int, s string) string {
	t.Helper()
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			continue
		}
		i++
		if i >= len(s) {
			t.Fatalf("line %d: dangling escape in label value %q", ln, s)
		}
		switch s[i] {
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case 'n':
			b.WriteByte('\n')
		default:
			t.Fatalf("line %d: invalid escape \\%c in label value %q", ln, s[i], s)
		}
	}
	return b.String()
}

// scrapeMetrics fetches /metrics and parses it.
func scrapeMetrics(t *testing.T, url, token string) *promScrape {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics content type %q", ct)
	}
	return parsePrometheus(t, string(body))
}

// TestMetricsPrometheusValidity drives a deterministic trace and then
// holds two consecutive scrapes to the format rules: every sample under
// a declared TYPE, labels well-formed (including escaping of a hostile
// tenant name), histogram buckets cumulative and reconciling with
// _count, and every counter monotone between the scrapes.
func TestMetricsPrometheusValidity(t *testing.T) {
	const devices = 2
	const weird = "we\"ird\\te\nnant"
	f := newFleet(t, devices, fleet.Options{Shards: 2})
	defer f.Close()
	srv := mustServer(t, f.Service(), httpapi.ServerOptions{Tenants: []httpapi.Tenant{
		{Name: "ops", Token: "tok-ops"},
		{Name: weird, Token: "tok-weird", MaxRequests: 1},
	}})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	trace, err := workload.FleetTrace(motiv.Library(), workload.FleetTraceParams{
		Devices: devices, Rate: 0.25, RateSpread: 0.5, Horizon: 60, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	client := httpapi.NewClient(ts.URL, "tok-ops", ts.Client())
	drive(t, client, trace, devices, 60)
	// Spend the weird tenant's one-request budget and refuse a second,
	// so its hostile name reaches the quota-refusal labels.
	wc := httpapi.NewClient(ts.URL, "tok-weird", ts.Client())
	if _, err := wc.Advance(bg, api.AdvanceRequest{Device: 0, To: 1000}); err != nil {
		t.Fatal(err)
	}
	if _, err := wc.Advance(bg, api.AdvanceRequest{Device: 0, To: 1001}); !strings.Contains(codeOf(err), api.CodeQuotaExceeded) {
		t.Fatalf("expected quota refusal, got %v", err)
	}

	first := scrapeMetrics(t, ts.URL, "")
	second := scrapeMetrics(t, ts.URL, "")

	for _, p := range []*promScrape{first, second} {
		for _, s := range p.samples {
			fam := p.familyOf(s.name)
			if p.types[fam] == "" {
				t.Errorf("sample %q has no TYPE declaration", s.name)
			}
			if p.helps[fam] == "" {
				t.Errorf("family %q has no HELP", fam)
			}
		}
		// Histogram invariants per label set.
		checkHistograms(t, p)
	}

	// The hostile tenant name survives the escaping round trip.
	found := false
	for _, s := range second.samples {
		if s.name == "adaptrm_quota_refusals_total" && s.labels["tenant"] == weird {
			found = true
			if s.labels["kind"] == "budget" && s.value != 1 {
				t.Errorf("weird tenant budget refusals = %v, want 1", s.value)
			}
		}
	}
	if !found {
		t.Error("quota refusal series for the escaped tenant name not found")
	}

	// Counters never move backwards between scrapes.
	for key, s1 := range first.series {
		if first.types[first.familyOf(s1.name)] != "counter" {
			continue
		}
		s2, ok := second.series[key]
		if !ok {
			t.Errorf("counter series %q disappeared on rescrape", key)
			continue
		}
		if s2.value < s1.value {
			t.Errorf("counter %q went backwards: %v → %v", key, s1.value, s2.value)
		}
	}
}

// checkHistograms verifies cumulative bucket ordering and the
// bucket/_count/_sum reconciliation of every exported histogram.
func checkHistograms(t *testing.T, p *promScrape) {
	t.Helper()
	type hist struct {
		buckets map[float64]float64 // le → cumulative
		count   float64
		hasInf  bool
	}
	hists := map[string]*hist{}
	keyOf := func(s promSample) string {
		labels := make(map[string]string, len(s.labels))
		for k, v := range s.labels {
			if k != "le" {
				labels[k] = v
			}
		}
		return promSample{name: p.familyOf(s.name), labels: labels}.series()
	}
	get := func(k string) *hist {
		if hists[k] == nil {
			hists[k] = &hist{buckets: map[float64]float64{}}
		}
		return hists[k]
	}
	for _, s := range p.samples {
		fam := p.familyOf(s.name)
		if p.types[fam] != "histogram" {
			continue
		}
		h := get(keyOf(s))
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			raw, ok := s.labels["le"]
			if !ok {
				t.Fatalf("histogram bucket %q without le label", s.series())
			}
			le, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				t.Fatalf("unparsable le %q: %v", raw, err)
			}
			if math.IsInf(le, 1) {
				h.hasInf = true
			}
			h.buckets[le] = s.value
		case strings.HasSuffix(s.name, "_count"):
			h.count = s.value
		}
	}
	for key, h := range hists {
		if !h.hasInf {
			t.Errorf("histogram %q has no +Inf bucket", key)
			continue
		}
		les := make([]float64, 0, len(h.buckets))
		for le := range h.buckets {
			les = append(les, le)
		}
		sort.Float64s(les)
		prev := -1.0
		for _, le := range les {
			if h.buckets[le] < prev {
				t.Errorf("histogram %q bucket le=%v not cumulative (%v < %v)", key, le, h.buckets[le], prev)
			}
			prev = h.buckets[le]
		}
		if inf := h.buckets[math.Inf(1)]; inf != h.count {
			t.Errorf("histogram %q: +Inf bucket %v != _count %v", key, inf, h.count)
		}
	}
}

// TestMetricsMatchesStats pins the /metrics export to the service's own
// statistics: after a deterministic trace, every exported counter must
// be byte-identical to the corresponding /v1/stats value — aggregate
// and per device.
func TestMetricsMatchesStats(t *testing.T) {
	const devices = 3
	f := newFleet(t, devices, fleet.Options{Shards: 2})
	defer f.Close()
	ts := httptest.NewServer(mustServer(t, f.Service(), httpapi.ServerOptions{}))
	defer ts.Close()

	trace, err := workload.FleetTrace(motiv.Library(), workload.FleetTraceParams{
		Devices: devices, Rate: 0.25, RateSpread: 0.5, Horizon: 90, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	client := httpapi.NewClient(ts.URL, "", ts.Client())
	drive(t, client, trace, devices, 90)

	agg, err := client.Stats(bg, api.StatsRequest{})
	if err != nil {
		t.Fatal(err)
	}
	scrape := scrapeMetrics(t, ts.URL, "")

	raw := func(name string, labels ...string) string {
		s := promSample{name: name, labels: map[string]string{}}
		for i := 0; i+1 < len(labels); i += 2 {
			s.labels[labels[i]] = labels[i+1]
		}
		got, ok := scrape.series[s.series()]
		if !ok {
			t.Fatalf("series %q missing from /metrics", s.series())
		}
		return got.raw
	}
	wantInt := func(name string, v int, labels ...string) {
		t.Helper()
		if got, want := raw(name, labels...), strconv.Itoa(v); got != want {
			t.Errorf("%s%v = %s, want %s", name, labels, got, want)
		}
	}

	wantInt("adaptrm_fleet_devices", agg.Devices)
	wantInt("adaptrm_requests_submitted_total", agg.Submitted)
	wantInt("adaptrm_requests_accepted_total", agg.Accepted)
	wantInt("adaptrm_requests_rejected_total", agg.Rejected)
	wantInt("adaptrm_jobs_completed_total", agg.Completed)
	wantInt("adaptrm_jobs_cancelled_total", agg.Cancelled)
	wantInt("adaptrm_jobs_deadline_misses_total", agg.DeadlineMisses)
	wantInt("adaptrm_scheduler_activations_total", agg.Activations)
	wantInt("adaptrm_cache_hits_total", agg.CacheHits)
	wantInt("adaptrm_cache_misses_total", agg.CacheMisses)
	wantInt("adaptrm_coalesced_batches_total", agg.CoalescedBatches)
	wantInt("adaptrm_coalesced_requests_total", agg.CoalescedRequests)
	wantInt("adaptrm_watch_dropped_total", agg.WatchDropped)
	if got, want := raw("adaptrm_energy_joules_total"), strconv.FormatFloat(agg.Energy, 'g', -1, 64); got != want {
		t.Errorf("energy = %s, want %s (byte-identical)", got, want)
	}

	var sum int
	for d := 0; d < devices; d++ {
		dev := d
		ds, err := client.Stats(bg, api.StatsRequest{Device: &dev})
		if err != nil {
			t.Fatal(err)
		}
		label := strconv.Itoa(d)
		wantInt("adaptrm_requests_submitted_total", ds.Submitted, "device", label)
		wantInt("adaptrm_requests_accepted_total", ds.Accepted, "device", label)
		wantInt("adaptrm_requests_rejected_total", ds.Rejected, "device", label)
		wantInt("adaptrm_jobs_completed_total", ds.Completed, "device", label)
		wantInt("adaptrm_jobs_cancelled_total", ds.Cancelled, "device", label)
		if got, want := raw("adaptrm_energy_joules_total", "device", label), strconv.FormatFloat(ds.Energy, 'g', -1, 64); got != want {
			t.Errorf("device %d energy = %s, want %s", d, got, want)
		}
		sum += ds.Submitted
	}
	if sum != agg.Submitted {
		t.Errorf("per-device submitted sum %d != aggregate %d", sum, agg.Submitted)
	}

	// The scrape that produced these numbers itself rode through the
	// instrumented mux: /v1/stats must show up in the HTTP counters.
	if got := scrape.series[promSample{name: "adaptrm_http_requests_total",
		labels: map[string]string{"route": "/v1/stats", "code": "2xx"}}.series()]; got.value < 1 {
		t.Errorf("http_requests_total for /v1/stats = %v, want >= 1", got.value)
	}
}

// TestHealthz pins the liveness body: status, device count, and an
// uptime that follows the injected clock.
func TestHealthz(t *testing.T) {
	const devices = 2
	f := newFleet(t, devices, fleet.Options{})
	defer f.Close()
	base := time.Unix(1_700_000_000, 0)
	cur := base
	ts := httptest.NewServer(mustServer(t, f.Service(), httpapi.ServerOptions{
		Now: func() time.Time { return cur },
	}))
	defer ts.Close()

	cur = base.Add(5 * time.Second)
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: %d", resp.StatusCode)
	}
	var body struct {
		Status  string  `json:"status"`
		Devices int     `json:"devices"`
		UptimeS float64 `json:"uptime_s"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" || body.Devices != devices || body.UptimeS != 5 {
		t.Fatalf("healthz body %+v, want ok/%d devices/5s uptime", body, devices)
	}
}

// TestHealthzControl pins the degradation fields of the liveness body:
// without a controller the control keys are absent (probe configs stay
// valid byte for byte), with a controller in a degraded tier the body
// names the mode so a probe can pull the backend out of rotation.
func TestHealthzControl(t *testing.T) {
	getBody := func(ts *httptest.Server) map[string]any {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /healthz: %d", resp.StatusCode)
		}
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body
	}

	// Controller-less fleet: no control keys at all.
	plain := newFleet(t, 1, fleet.Options{})
	defer plain.Close()
	ts := httptest.NewServer(mustServer(t, plain.Service(), httpapi.ServerOptions{}))
	defer ts.Close()
	body := getBody(ts)
	if _, ok := body["control_mode"]; ok {
		t.Errorf("controller-less healthz leaks control_mode: %v", body)
	}
	if _, ok := body["max_queue_depth"]; ok {
		t.Errorf("idle healthz leaks max_queue_depth: %v", body)
	}

	// Controlled fleet, escalated via the latency signal (any observed
	// admission latency clears a 1ns bar, so one submit plus one tick
	// reaches heuristic_only deterministically).
	ctl := control.New(control.Config{HighLatency: 1, EnterTicks: 1})
	f := newFleet(t, 1, fleet.Options{Control: ctl})
	defer f.Close()
	tsc := httptest.NewServer(mustServer(t, f.Service(), httpapi.ServerOptions{}))
	defer tsc.Close()

	body = getBody(tsc)
	if got := body["control_mode"]; got != "normal" {
		t.Errorf("controlled healthz mode = %v, want normal", got)
	}
	if _, err := f.Service().Submit(context.Background(), api.SubmitRequest{
		Device: 0, At: 0, App: "lambda1", Deadline: 9,
	}); err != nil {
		t.Fatal(err)
	}
	ctl.Tick(1)
	body = getBody(tsc)
	if got := body["control_mode"]; got != "heuristic_only" {
		t.Errorf("degraded healthz mode = %v, want heuristic_only", got)
	}
}

// TestPprofGate: the profiling routes exist only when a token is
// configured, refuse requests without it, and accept both credential
// spellings.
func TestPprofGate(t *testing.T) {
	f := newFleet(t, 1, fleet.Options{})
	defer f.Close()
	open := httptest.NewServer(mustServer(t, f.Service(), httpapi.ServerOptions{}))
	defer open.Close()
	if resp, err := open.Client().Get(open.URL + "/debug/pprof/cmdline"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("pprof without token configured: %d, want 404", resp.StatusCode)
		}
	}

	gated := httptest.NewServer(mustServer(t, f.Service(), httpapi.ServerOptions{PprofToken: "s3cret"}))
	defer gated.Close()
	get := func(path, bearer string) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, gated.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if bearer != "" {
			req.Header.Set("Authorization", "Bearer "+bearer)
		}
		resp, err := gated.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/debug/pprof/cmdline", ""); got != http.StatusUnauthorized {
		t.Errorf("no token: %d, want 401", got)
	}
	if got := get("/debug/pprof/cmdline", "wrong"); got != http.StatusUnauthorized {
		t.Errorf("wrong token: %d, want 401", got)
	}
	if got := get("/debug/pprof/cmdline", "s3cret"); got != http.StatusOK {
		t.Errorf("bearer token: %d, want 200", got)
	}
	if got := get("/debug/pprof/cmdline?token=s3cret", ""); got != http.StatusOK {
		t.Errorf("query token: %d, want 200", got)
	}
	if got := get("/debug/pprof/", "s3cret"); got != http.StatusOK {
		t.Errorf("pprof index: %d, want 200", got)
	}
}

// TestFlightlogEndpoint: the ring records served requests and watch
// events, the dump honours ?n=, and a tenanted server scopes the route
// like fleet-wide stats.
func TestFlightlogEndpoint(t *testing.T) {
	f := newFleet(t, 2, fleet.Options{})
	defer f.Close()
	fl := flightlog.New(64)
	tailCtx, cancelTail := context.WithCancel(bg)
	done := make(chan struct{})
	go func() {
		defer close(done)
		flightlog.Tail(tailCtx, fl, f.Service())
	}()
	defer func() { cancelTail(); <-done }()

	ts := httptest.NewServer(mustServer(t, f.Service(), httpapi.ServerOptions{FlightLog: fl}))
	defer ts.Close()
	client := httpapi.NewClient(ts.URL, "", ts.Client())
	if _, err := client.Submit(bg, api.SubmitRequest{Device: 0, At: 1, App: "lambda2", Deadline: 20}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return fl.Len() >= 2 }) // HTTP record + at least one event

	resp, err := ts.Client().Get(ts.URL + "/debug/flightlog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/flightlog: %d", resp.StatusCode)
	}
	var dump flightlog.Dump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if dump.Retained == 0 || dump.Total < uint64(dump.Retained) {
		t.Fatalf("dump totals %+v", dump)
	}
	var sawHTTP, sawEvent bool
	for _, rec := range dump.Records {
		switch rec.Kind {
		case flightlog.KindHTTP:
			if rec.Route == "/v1/submit" && rec.Status == http.StatusOK {
				sawHTTP = true
			}
		case flightlog.KindEvent:
			if rec.Event != nil {
				sawEvent = true
			}
		}
	}
	if !sawHTTP || !sawEvent {
		t.Fatalf("dump misses record kinds (http %v, event %v): %+v", sawHTTP, sawEvent, dump.Records)
	}

	// ?n clamps the dump.
	resp2, err := ts.Client().Get(ts.URL + "/debug/flightlog?n=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var one flightlog.Dump
	if err := json.NewDecoder(resp2.Body).Decode(&one); err != nil {
		t.Fatal(err)
	}
	if len(one.Records) != 1 {
		t.Fatalf("?n=1 returned %d records", len(one.Records))
	}
	if resp3, err := ts.Client().Get(ts.URL + "/debug/flightlog?n=x"); err != nil {
		t.Fatal(err)
	} else {
		resp3.Body.Close()
		if resp3.StatusCode != http.StatusBadRequest {
			t.Fatalf("?n=x: %d, want 400", resp3.StatusCode)
		}
	}

	// Tenanted server: unauthenticated 401, device-restricted 403.
	tts := httptest.NewServer(mustServer(t, f.Service(), httpapi.ServerOptions{
		FlightLog: fl,
		Tenants: []httpapi.Tenant{
			{Name: "ops", Token: "tok-ops"},
			{Name: "edge", Token: "tok-edge", Devices: []int{0}},
		},
	}))
	defer tts.Close()
	status := func(token string) int {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, tts.URL+"/debug/flightlog", nil)
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := tts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status(""); got != http.StatusUnauthorized {
		t.Errorf("anonymous flightlog: %d, want 401", got)
	}
	if got := status("tok-edge"); got != http.StatusForbidden {
		t.Errorf("device-restricted flightlog: %d, want 403", got)
	}
	if got := status("tok-ops"); got != http.StatusOK {
		t.Errorf("unrestricted flightlog: %d, want 200", got)
	}
}

// TestQuotaRefusalSurfacing: refusals by each quota kind are counted
// and appear in fleet-wide /v1/stats, in /metrics, and in
// Server.QuotaRefusals — while per-device stats stay clean.
func TestQuotaRefusalSurfacing(t *testing.T) {
	f := newFleet(t, 1, fleet.Options{})
	defer f.Close()
	now := time.Unix(0, 0) // frozen: the rate bucket never refills
	srv := mustServer(t, f.Service(), httpapi.ServerOptions{
		Now: func() time.Time { return now },
		Tenants: []httpapi.Tenant{
			{Name: "budgeted", Token: "tok-b", MaxRequests: 2},
			{Name: "paced", Token: "tok-r", Rate: 1, Burst: 1},
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	bc := httpapi.NewClient(ts.URL, "tok-b", ts.Client())
	for i := 0; i < 2; i++ {
		if _, err := bc.Advance(bg, api.AdvanceRequest{Device: 0, To: float64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ { // three refusals on a spent budget
		if _, err := bc.Advance(bg, api.AdvanceRequest{Device: 0, To: 100}); codeOf(err) != api.CodeQuotaExceeded {
			t.Fatalf("expected budget refusal, got %v", err)
		}
	}
	rc := httpapi.NewClient(ts.URL, "tok-r", ts.Client())
	if _, err := rc.Advance(bg, api.AdvanceRequest{Device: 0, To: 200}); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Advance(bg, api.AdvanceRequest{Device: 0, To: 201}); codeOf(err) != api.CodeQuotaExceeded {
		t.Fatalf("expected rate refusal, got %v", err)
	}

	if b, r := srv.QuotaRefusals(); b != 3 || r != 1 {
		t.Fatalf("QuotaRefusals = (%d, %d), want (3, 1)", b, r)
	}
	st, err := bc.Stats(bg, api.StatsRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if st.QuotaBudgetRefusals != 3 || st.QuotaRateRefusals != 1 {
		t.Fatalf("stats refusals = (%d, %d), want (3, 1)", st.QuotaBudgetRefusals, st.QuotaRateRefusals)
	}
	dev := 0
	ds, err := bc.Stats(bg, api.StatsRequest{Device: &dev})
	if err != nil {
		t.Fatal(err)
	}
	if ds.QuotaBudgetRefusals != 0 || ds.QuotaRateRefusals != 0 {
		t.Fatalf("per-device stats carry refusals: %+v", ds)
	}

	scrape := scrapeMetrics(t, ts.URL, "")
	want := map[string]float64{
		promSample{name: "adaptrm_quota_refusals_total", labels: map[string]string{"tenant": "budgeted", "kind": "budget"}}.series(): 3,
		promSample{name: "adaptrm_quota_refusals_total", labels: map[string]string{"tenant": "budgeted", "kind": "rate"}}.series():   0,
		promSample{name: "adaptrm_quota_refusals_total", labels: map[string]string{"tenant": "paced", "kind": "budget"}}.series():    0,
		promSample{name: "adaptrm_quota_refusals_total", labels: map[string]string{"tenant": "paced", "kind": "rate"}}.series():      1,
	}
	for key, v := range want {
		got, ok := scrape.series[key]
		if !ok {
			t.Errorf("series %q missing", key)
			continue
		}
		if got.value != v {
			t.Errorf("%q = %v, want %v", key, got.value, v)
		}
	}
}

// waitFor polls cond for up to two seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
