package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"adaptrm/internal/api"
)

// Client is the Go client of the daemon protocol. It implements
// api.Service, so code written against the in-process fleet service
// runs unchanged against a remote daemon.
type Client struct {
	baseURL string
	token   string
	http    *http.Client
}

var (
	_ api.Service      = (*Client)(nil)
	_ api.BatchService = (*Client)(nil)
)

// NewClient builds a client for a daemon at baseURL (e.g.
// "http://localhost:8080"). token may be empty against an open server.
// hc may be nil, defaulting to http.DefaultClient; pass a custom client
// to set timeouts or transports.
func NewClient(baseURL, token string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{baseURL: baseURL, token: token, http: hc}
}

// call performs one round-trip: POST with a JSON body (or GET when body
// is nil), decoding the result into out on 200 and rebuilding the
// taxonomy error — plus any partial result — otherwise.
func (c *Client) call(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("httpapi: encode %s: %w", path, err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, rd)
	if err != nil {
		return fmt.Errorf("httpapi: %s: %w", path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("httpapi: %s: %w", path, err)
	}
	defer func() {
		// Drain whatever the decoder left so the keep-alive connection
		// returns to the pool instead of being torn down.
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusOK {
		if out == nil {
			return nil
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("httpapi: decode %s: %w", path, err)
		}
		return nil
	}
	// Failure: rebuild the taxonomy error and keep the partial result
	// (e.g. completions delivered alongside a rejection).
	var env struct {
		Error  *api.Error      `json:"error"`
		Result json.RawMessage `json:"result,omitempty"`
	}
	if derr := json.NewDecoder(resp.Body).Decode(&env); derr != nil || env.Error == nil {
		// No envelope — the response came from outside the protocol
		// (mux 404/405, a proxy, ...). Approximate a taxonomy code from
		// the status so caller mistakes are not misfiled as internal
		// server failures.
		return api.Errf(statusSentinel(resp.StatusCode), "%s: HTTP %d without error envelope", path, resp.StatusCode)
	}
	if out != nil && len(env.Result) > 0 {
		_ = json.Unmarshal(env.Result, out)
	}
	// Fold through FromCode so a newer server's unknown codes still
	// match a sentinel (ErrInternal) instead of matching nothing.
	return api.FromCode(env.Error.Code, env.Error.Message)
}

// statusSentinel maps a bare HTTP status onto the nearest taxonomy
// sentinel, for responses that carry no protocol envelope.
func statusSentinel(status int) *api.Error {
	switch status {
	case http.StatusUnauthorized:
		return api.ErrUnauthorized
	case http.StatusForbidden:
		return api.ErrForbidden
	case http.StatusTooManyRequests:
		return api.ErrQuotaExceeded
	case http.StatusRequestEntityTooLarge:
		return api.ErrPayloadTooLarge
	case http.StatusServiceUnavailable:
		return api.ErrOverloaded
	case http.StatusBadGateway:
		return api.ErrUnavailable
	default:
		if status >= 400 && status < 500 {
			return api.ErrBadRequest
		}
		return api.ErrInternal
	}
}

// Submit implements api.Service over HTTP.
func (c *Client) Submit(ctx context.Context, req api.SubmitRequest) (api.SubmitResult, error) {
	var res api.SubmitResult
	err := c.call(ctx, http.MethodPost, "/v1/submit", req, &res)
	return res, err
}

// SubmitBatch implements api.BatchService over HTTP: the whole batch is
// one round-trip and, on a batching server, one scheduler activation
// when jointly feasible. Per-item errors come back inside the verdicts;
// their codes are folded through the taxonomy exactly like call-level
// errors, so errors.Is against the api sentinels works on each.
func (c *Client) SubmitBatch(ctx context.Context, req api.BatchSubmitRequest) (api.BatchSubmitResult, error) {
	var res api.BatchSubmitResult
	err := c.call(ctx, http.MethodPost, "/v1/submit-batch", req, &res)
	for i, v := range res.Verdicts {
		if v.Error != nil {
			// Fold unknown codes (a newer server's) into CodeInternal,
			// matching the call-level decoding path.
			res.Verdicts[i].Error = api.FromCode(v.Error.Code, v.Error.Message)
		}
	}
	return res, err
}

// Advance implements api.Service over HTTP.
func (c *Client) Advance(ctx context.Context, req api.AdvanceRequest) (api.AdvanceResult, error) {
	var res api.AdvanceResult
	err := c.call(ctx, http.MethodPost, "/v1/advance", req, &res)
	return res, err
}

// Cancel implements api.Service over HTTP.
func (c *Client) Cancel(ctx context.Context, req api.CancelRequest) (api.CancelResult, error) {
	var res api.CancelResult
	err := c.call(ctx, http.MethodPost, "/v1/cancel", req, &res)
	return res, err
}

// Stats implements api.Service over HTTP.
func (c *Client) Stats(ctx context.Context, req api.StatsRequest) (api.StatsResult, error) {
	path := "/v1/stats"
	if req.Device != nil {
		path += "?device=" + url.QueryEscape(strconv.Itoa(*req.Device))
	}
	var res api.StatsResult
	err := c.call(ctx, http.MethodGet, path, nil, &res)
	return res, err
}

// Health reports whether the daemon answers its liveness probe.
func (c *Client) Health(ctx context.Context) error {
	return c.call(ctx, http.MethodGet, "/healthz", nil, nil)
}
