// Package opset models application operating points and the per-variant
// operating-point tables the runtime manager consumes.
//
// An operating point c = ⟨θ, τ, ξ⟩ describes one Pareto-optimal way to run
// an application variant: the resource vector θ (cores per type), the
// worst-case execution time τ of a full run, and the energy ξ of a full
// run. The progress model of the paper is linear: a job with remaining
// progress ratio ρ needs τ·ρ seconds and ξ·ρ joules on point c, which is
// exactly the structure of the time/energy triples in Table II.
package opset

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"adaptrm/internal/pareto"
	"adaptrm/internal/platform"
)

// Point is one operating point ⟨θ, τ, ξ⟩.
type Point struct {
	// Alloc is the resource vector θ: cores per platform type.
	Alloc platform.Alloc `json:"alloc"`
	// Time is the worst-case execution time τ of a full run in seconds.
	Time float64 `json:"time"`
	// Energy is the energy ξ of a full run in joules.
	Energy float64 `json:"energy"`
	// Label is an optional design-time annotation (e.g. the DVFS
	// setting the point was benchmarked at); schedulers ignore it.
	Label string `json:"label,omitempty"`
}

// RemainingTime returns the time to finish a job with remaining ratio rho.
func (p Point) RemainingTime(rho float64) float64 { return p.Time * rho }

// RemainingEnergy returns the energy to finish a job with remaining ratio
// rho.
func (p Point) RemainingEnergy(rho float64) float64 { return p.Energy * rho }

// Power returns the average power draw ξ/τ of the point.
func (p Point) Power() float64 { return p.Energy / p.Time }

// Objectives returns the concatenated lower-is-better vector [θ…, τ, ξ]
// used for Pareto filtering.
func (p Point) Objectives() []float64 {
	v := make([]float64, 0, len(p.Alloc)+2)
	for _, c := range p.Alloc {
		v = append(v, float64(c))
	}
	return append(v, p.Time, p.Energy)
}

// String renders like "2L1B τ=5.30s ξ=8.90J" (plus the label, if any).
func (p Point) String() string {
	s := fmt.Sprintf("%s τ=%.2fs ξ=%.2fJ", p.Alloc, p.Time, p.Energy)
	if p.Label != "" {
		s += " [" + p.Label + "]"
	}
	return s
}

// Table is the set of operating points of one application variant (an
// application benchmarked with one input size). Points are kept sorted by
// ascending energy (ties by time), the order Algorithm 1 consumes them in.
type Table struct {
	// App names the application (e.g. "audio-filter").
	App string `json:"app"`
	// Variant names the input configuration (e.g. "large").
	Variant string `json:"variant"`
	// Points holds the operating points, sorted by ascending energy.
	Points []Point `json:"points"`
}

// Name returns "app/variant", the identifier used in workloads.
func (t *Table) Name() string {
	if t.Variant == "" {
		return t.App
	}
	return t.App + "/" + t.Variant
}

// Len returns the number of operating points N_λ.
func (t *Table) Len() int { return len(t.Points) }

// SortByEnergy establishes the canonical ascending-energy order.
func (t *Table) SortByEnergy() {
	sort.SliceStable(t.Points, func(i, j int) bool {
		a, b := t.Points[i], t.Points[j]
		if a.Energy != b.Energy {
			return a.Energy < b.Energy
		}
		return a.Time < b.Time
	})
}

// FilterPareto removes dominated points (over [θ…, τ, ξ]) and re-sorts.
// It returns the number of points removed.
func (t *Table) FilterPareto() int {
	objs := make([][]float64, len(t.Points))
	for i, p := range t.Points {
		objs[i] = p.Objectives()
	}
	keep := pareto.Filter(objs)
	if len(keep) == len(t.Points) {
		t.SortByEnergy()
		return 0
	}
	removed := len(t.Points) - len(keep)
	pts := make([]Point, 0, len(keep))
	for _, k := range keep {
		pts = append(pts, t.Points[k])
	}
	t.Points = pts
	t.SortByEnergy()
	return removed
}

// Thin reduces the table to at most n points, keeping the energy-sorted
// front's endpoints (the most energy-efficient and, implicitly, the
// fastest extreme at the high-energy end) and evenly spaced interior
// points. Runtime managers bound their table sizes this way; the paper's
// applications ship 28–36 points across all input sizes. Thinning a
// Pareto front yields a Pareto front, so no re-filtering is needed.
func (t *Table) Thin(n int) {
	if n <= 0 || t.Len() <= n {
		return
	}
	if n == 1 {
		t.Points = t.Points[:1]
		return
	}
	last := t.Len() - 1
	out := make([]Point, 0, n)
	prev := -1
	for i := 0; i < n; i++ {
		idx := (i*last + (n-1)/2) / (n - 1)
		if idx == prev {
			continue
		}
		prev = idx
		out = append(out, t.Points[idx])
	}
	t.Points = out
}

// Validate checks the table against a platform: non-empty, points fit the
// capacity, positive times/energies, no dominated points, sorted order.
func (t *Table) Validate(plat platform.Platform) error {
	if len(t.Points) == 0 {
		return fmt.Errorf("opset: table %s has no points", t.Name())
	}
	cap := plat.Capacity()
	objs := make([][]float64, len(t.Points))
	for i, p := range t.Points {
		if len(p.Alloc) != plat.NumTypes() {
			return fmt.Errorf("opset: table %s point %d: alloc arity %d vs platform %d",
				t.Name(), i, len(p.Alloc), plat.NumTypes())
		}
		if !p.Alloc.NonNegative() || p.Alloc.IsZero() {
			return fmt.Errorf("opset: table %s point %d: invalid alloc %v", t.Name(), i, p.Alloc)
		}
		if !p.Alloc.Fits(cap) {
			return fmt.Errorf("opset: table %s point %d: alloc %v exceeds capacity %v",
				t.Name(), i, p.Alloc, cap)
		}
		if p.Time <= 0 || math.IsNaN(p.Time) || math.IsInf(p.Time, 0) {
			return fmt.Errorf("opset: table %s point %d: bad time %v", t.Name(), i, p.Time)
		}
		if p.Energy <= 0 || math.IsNaN(p.Energy) || math.IsInf(p.Energy, 0) {
			return fmt.Errorf("opset: table %s point %d: bad energy %v", t.Name(), i, p.Energy)
		}
		objs[i] = p.Objectives()
	}
	if !pareto.IsFront(objs) {
		return fmt.Errorf("opset: table %s contains dominated points", t.Name())
	}
	for i := 1; i < len(t.Points); i++ {
		a, b := t.Points[i-1], t.Points[i]
		if a.Energy > b.Energy || (a.Energy == b.Energy && a.Time > b.Time) {
			return fmt.Errorf("opset: table %s not sorted by energy at %d", t.Name(), i)
		}
	}
	return nil
}

// MinEnergy returns the index of the most energy-efficient point (index 0
// by the sorting invariant). It panics on an empty table.
func (t *Table) MinEnergy() int {
	if len(t.Points) == 0 {
		panic("opset: MinEnergy on empty table")
	}
	return 0
}

// FastestTime returns the smallest τ over all points.
func (t *Table) FastestTime() float64 {
	best := math.Inf(1)
	for _, p := range t.Points {
		if p.Time < best {
			best = p.Time
		}
	}
	return best
}

// FastestWithin returns the smallest τ over points whose alloc fits the
// given free resources, or +Inf if none fits.
func (t *Table) FastestWithin(free platform.Alloc) float64 {
	best := math.Inf(1)
	for _, p := range t.Points {
		if p.Alloc.Fits(free) && p.Time < best {
			best = p.Time
		}
	}
	return best
}

// ByAlloc returns the indices of points with the exact alloc, preserving
// table order.
func (t *Table) ByAlloc(a platform.Alloc) []int {
	var idx []int
	for i, p := range t.Points {
		if p.Alloc.Equal(a) {
			idx = append(idx, i)
		}
	}
	return idx
}

// String renders a short multi-line description of the table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d points)\n", t.Name(), len(t.Points))
	for _, p := range t.Points {
		fmt.Fprintf(&b, "  %s\n", p)
	}
	return b.String()
}

// Library is a named collection of tables, keyed by Table.Name(). It is
// what the design-time DSE hands to the runtime manager.
type Library struct {
	tables map[string]*Table
	order  []string
}

// NewLibrary returns an empty library.
func NewLibrary() *Library {
	return &Library{tables: make(map[string]*Table)}
}

// Add inserts a table. It returns an error on duplicate names.
func (l *Library) Add(t *Table) error {
	name := t.Name()
	if _, ok := l.tables[name]; ok {
		return fmt.Errorf("opset: duplicate table %q", name)
	}
	l.tables[name] = t
	l.order = append(l.order, name)
	return nil
}

// Get returns the table with the given name, or nil.
func (l *Library) Get(name string) *Table { return l.tables[name] }

// Names returns table names in insertion order.
func (l *Library) Names() []string {
	out := make([]string, len(l.order))
	copy(out, l.order)
	return out
}

// Len returns the number of tables.
func (l *Library) Len() int { return len(l.order) }

// Tables returns the tables in insertion order.
func (l *Library) Tables() []*Table {
	out := make([]*Table, 0, len(l.order))
	for _, n := range l.order {
		out = append(out, l.tables[n])
	}
	return out
}

// Validate validates every table against the platform.
func (l *Library) Validate(plat platform.Platform) error {
	if l.Len() == 0 {
		return errors.New("opset: empty library")
	}
	for _, t := range l.Tables() {
		if err := t.Validate(plat); err != nil {
			return err
		}
	}
	return nil
}
