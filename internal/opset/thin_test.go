package opset

import (
	"testing"

	"adaptrm/internal/platform"
)

func bigFront(n int) *Table {
	// A clean 2D front: increasing time, decreasing energy, varying
	// allocs so Pareto over [θ,τ,ξ] keeps all points.
	t := &Table{App: "front"}
	for i := 0; i < n; i++ {
		t.Points = append(t.Points, Point{
			Alloc:  platform.Alloc{1 + i%4, i % 3},
			Time:   float64(1 + i),
			Energy: float64(2*n - i),
		})
	}
	t.SortByEnergy()
	return t
}

func TestThin(t *testing.T) {
	tb := bigFront(20)
	first := tb.Points[0]
	last := tb.Points[tb.Len()-1]
	tb.Thin(7)
	if tb.Len() != 7 {
		t.Fatalf("thinned to %d, want 7", tb.Len())
	}
	// Endpoints preserved.
	samePoint := func(a, b Point) bool {
		return a.Alloc.Equal(b.Alloc) && a.Time == b.Time && a.Energy == b.Energy
	}
	if !samePoint(tb.Points[0], first) {
		t.Errorf("cheapest endpoint lost")
	}
	if !samePoint(tb.Points[tb.Len()-1], last) {
		t.Errorf("high-energy endpoint lost")
	}
	// Still sorted by energy.
	for i := 1; i < tb.Len(); i++ {
		if tb.Points[i-1].Energy > tb.Points[i].Energy {
			t.Fatal("thinned table unsorted")
		}
	}
}

func TestThinNoOp(t *testing.T) {
	tb := bigFront(5)
	tb.Thin(10)
	if tb.Len() != 5 {
		t.Error("thin enlarged or shrank a small table")
	}
	tb.Thin(0)
	if tb.Len() != 5 {
		t.Error("thin(0) must be a no-op")
	}
	tb.Thin(-3)
	if tb.Len() != 5 {
		t.Error("thin(negative) must be a no-op")
	}
}

func TestThinToOne(t *testing.T) {
	tb := bigFront(8)
	tb.Thin(1)
	if tb.Len() != 1 {
		t.Fatalf("thinned to %d, want 1", tb.Len())
	}
}

func TestThinAllSizes(t *testing.T) {
	for n := 1; n <= 24; n++ {
		for k := 1; k <= n; k++ {
			tb := bigFront(n)
			tb.Thin(k)
			if tb.Len() > k {
				t.Fatalf("n=%d k=%d: thinned to %d", n, k, tb.Len())
			}
			if tb.Len() == 0 {
				t.Fatalf("n=%d k=%d: emptied table", n, k)
			}
		}
	}
}
