package opset

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"adaptrm/internal/platform"
)

func table2Lambda1() *Table {
	// λ1 from Table II of the paper (full-run values).
	t := &Table{App: "lambda1", Points: []Point{
		{Alloc: platform.Alloc{1, 0}, Time: 16.8, Energy: 7.90},
		{Alloc: platform.Alloc{2, 0}, Time: 10.3, Energy: 7.01},
		{Alloc: platform.Alloc{0, 1}, Time: 11.2, Energy: 18.54},
		{Alloc: platform.Alloc{0, 2}, Time: 6.3, Energy: 17.70},
		{Alloc: platform.Alloc{1, 1}, Time: 8.1, Energy: 10.90},
		{Alloc: platform.Alloc{1, 2}, Time: 7.9, Energy: 10.60},
		{Alloc: platform.Alloc{2, 1}, Time: 5.3, Energy: 8.90},
		{Alloc: platform.Alloc{2, 2}, Time: 4.7, Energy: 11.00},
	}}
	t.SortByEnergy()
	return t
}

func TestPointScaling(t *testing.T) {
	p := Point{Alloc: platform.Alloc{2, 1}, Time: 5.3, Energy: 8.90}
	// Table II triples: ρ = 0.8113 and ρ = 0.3792.
	if got := p.RemainingTime(0.8113); math.Abs(got-4.30) > 0.01 {
		t.Errorf("RemainingTime(0.8113) = %.3f, want 4.30", got)
	}
	if got := p.RemainingEnergy(0.8113); math.Abs(got-7.22) > 0.01 {
		t.Errorf("RemainingEnergy(0.8113) = %.3f, want 7.22", got)
	}
	if got := p.RemainingTime(0.3792); math.Abs(got-2.01) > 0.01 {
		t.Errorf("RemainingTime(0.3792) = %.3f, want 2.01", got)
	}
	if got := p.RemainingEnergy(0.3792); math.Abs(got-3.38) > 0.01 {
		t.Errorf("RemainingEnergy(0.3792) = %.3f, want 3.38", got)
	}
	if got := p.Power(); math.Abs(got-8.90/5.3) > 1e-12 {
		t.Errorf("Power = %g", got)
	}
}

func TestTableSortAndValidate(t *testing.T) {
	tbl := table2Lambda1()
	plat := platform.Motivational2L2B()
	if err := tbl.Validate(plat); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Canonical order: ascending energy.
	for i := 1; i < len(tbl.Points); i++ {
		if tbl.Points[i-1].Energy > tbl.Points[i].Energy {
			t.Fatalf("not sorted at %d", i)
		}
	}
	if got := tbl.Points[tbl.MinEnergy()].Energy; got != 7.01 {
		t.Errorf("MinEnergy point has ξ=%v, want 7.01 (2L0B)", got)
	}
}

func TestTableValidateRejects(t *testing.T) {
	plat := platform.Motivational2L2B()
	mk := func(pts ...Point) *Table {
		tb := &Table{App: "x", Points: pts}
		tb.SortByEnergy()
		return tb
	}
	cases := []struct {
		name string
		tb   *Table
	}{
		{"empty", &Table{App: "x"}},
		{"zero alloc", mk(Point{Alloc: platform.Alloc{0, 0}, Time: 1, Energy: 1})},
		{"over capacity", mk(Point{Alloc: platform.Alloc{3, 0}, Time: 1, Energy: 1})},
		{"bad arity", mk(Point{Alloc: platform.Alloc{1}, Time: 1, Energy: 1})},
		{"bad time", mk(Point{Alloc: platform.Alloc{1, 0}, Time: 0, Energy: 1})},
		{"bad energy", mk(Point{Alloc: platform.Alloc{1, 0}, Time: 1, Energy: math.NaN()})},
		{"dominated", mk(
			Point{Alloc: platform.Alloc{1, 0}, Time: 1, Energy: 1},
			Point{Alloc: platform.Alloc{1, 0}, Time: 2, Energy: 2},
		)},
	}
	for _, tc := range cases {
		if err := tc.tb.Validate(plat); err == nil {
			t.Errorf("%s: Validate accepted invalid table", tc.name)
		}
	}
}

func TestFilterPareto(t *testing.T) {
	tb := &Table{App: "x", Points: []Point{
		{Alloc: platform.Alloc{1, 0}, Time: 10, Energy: 5},
		{Alloc: platform.Alloc{1, 0}, Time: 12, Energy: 6}, // dominated
		{Alloc: platform.Alloc{0, 1}, Time: 4, Energy: 9},
	}}
	if removed := tb.FilterPareto(); removed != 1 {
		t.Errorf("FilterPareto removed %d, want 1", removed)
	}
	if tb.Len() != 2 {
		t.Errorf("Len = %d, want 2", tb.Len())
	}
	// Idempotent.
	if removed := tb.FilterPareto(); removed != 0 {
		t.Errorf("second FilterPareto removed %d, want 0", removed)
	}
	// Table II survives untouched (it is already a front over [θ,τ,ξ]).
	l1 := table2Lambda1()
	if removed := l1.FilterPareto(); removed != 0 {
		t.Errorf("Table II λ1 lost %d points to Pareto filtering", removed)
	}
}

func TestFastestQueries(t *testing.T) {
	tb := table2Lambda1()
	if got := tb.FastestTime(); got != 4.7 {
		t.Errorf("FastestTime = %v, want 4.7 (2L2B)", got)
	}
	// Only one little core free: 1L0B (16.8) is the only fit.
	if got := tb.FastestWithin(platform.Alloc{1, 0}); got != 16.8 {
		t.Errorf("FastestWithin(1L) = %v, want 16.8", got)
	}
	if got := tb.FastestWithin(platform.Alloc{0, 0}); !math.IsInf(got, 1) {
		t.Errorf("FastestWithin(0) = %v, want +Inf", got)
	}
	idx := tb.ByAlloc(platform.Alloc{2, 1})
	if len(idx) != 1 || tb.Points[idx[0]].Time != 5.3 {
		t.Errorf("ByAlloc(2L1B) = %v", idx)
	}
}

func TestTableName(t *testing.T) {
	tb := &Table{App: "audio-filter", Variant: "large"}
	if got := tb.Name(); got != "audio-filter/large" {
		t.Errorf("Name = %q", got)
	}
	tb2 := &Table{App: "lambda1"}
	if got := tb2.Name(); got != "lambda1" {
		t.Errorf("Name = %q", got)
	}
	if s := tb2.String(); !strings.Contains(s, "lambda1") {
		t.Errorf("String = %q", s)
	}
}

func TestLibrary(t *testing.T) {
	lib := NewLibrary()
	plat := platform.Motivational2L2B()
	if err := lib.Validate(plat); err == nil {
		t.Error("empty library should not validate")
	}
	if err := lib.Add(table2Lambda1()); err != nil {
		t.Fatal(err)
	}
	if err := lib.Add(table2Lambda1()); err == nil {
		t.Error("duplicate Add should fail")
	}
	if lib.Len() != 1 || lib.Get("lambda1") == nil || lib.Get("nope") != nil {
		t.Error("library lookup broken")
	}
	if names := lib.Names(); len(names) != 1 || names[0] != "lambda1" {
		t.Errorf("Names = %v", names)
	}
	if err := lib.Validate(plat); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestLibraryJSONRoundTrip(t *testing.T) {
	plat := platform.Motivational2L2B()
	lib := NewLibrary()
	if err := lib.Add(table2Lambda1()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lib.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf, plat)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != lib.Len() {
		t.Fatalf("round trip lost tables: %d vs %d", got.Len(), lib.Len())
	}
	a, b := lib.Get("lambda1"), got.Get("lambda1")
	if a.Len() != b.Len() {
		t.Fatalf("round trip lost points: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Points {
		if !a.Points[i].Alloc.Equal(b.Points[i].Alloc) ||
			a.Points[i].Time != b.Points[i].Time ||
			a.Points[i].Energy != b.Points[i].Energy {
			t.Fatalf("point %d mismatch: %v vs %v", i, a.Points[i], b.Points[i])
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	plat := platform.Motivational2L2B()
	if _, err := ReadJSON(strings.NewReader("{nope"), plat); err == nil {
		t.Error("garbage JSON accepted")
	}
	// Valid JSON, invalid table (capacity exceeded).
	bad := `{"tables":[{"app":"x","points":[{"alloc":[9,9],"time":1,"energy":1}]}]}`
	if _, err := ReadJSON(strings.NewReader(bad), plat); err == nil {
		t.Error("invalid table accepted")
	}
}

// Property: RemainingTime/RemainingEnergy are linear in ρ and additive:
// finishing ρ in two chunks costs the same as in one.
func TestLinearProgressProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		p := Point{
			Alloc:  platform.Alloc{1 + rng.Intn(4), rng.Intn(4)},
			Time:   0.5 + rng.Float64()*20,
			Energy: 0.5 + rng.Float64()*20,
		}
		rho := rng.Float64()
		split := rng.Float64() * rho
		lhs := p.RemainingEnergy(rho)
		rhs := p.RemainingEnergy(split) + p.RemainingEnergy(rho-split)
		if math.Abs(lhs-rhs) > 1e-9 {
			return false
		}
		lt := p.RemainingTime(rho)
		rt := p.RemainingTime(split) + p.RemainingTime(rho-split)
		return math.Abs(lt-rt) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Error(err)
	}
}
