package opset

import (
	"encoding/json"
	"fmt"
	"io"

	"adaptrm/internal/platform"
)

// libraryJSON is the on-disk representation of a Library.
type libraryJSON struct {
	Tables []*Table `json:"tables"`
}

// WriteJSON serializes the library (indented) to w.
func (l *Library) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(libraryJSON{Tables: l.Tables()})
}

// ReadJSON parses a library previously written by WriteJSON and validates
// it against the platform.
func ReadJSON(r io.Reader, plat platform.Platform) (*Library, error) {
	var raw libraryJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("opset: decoding library: %w", err)
	}
	lib := NewLibrary()
	for _, t := range raw.Tables {
		t.SortByEnergy()
		if err := lib.Add(t); err != nil {
			return nil, err
		}
	}
	if err := lib.Validate(plat); err != nil {
		return nil, err
	}
	return lib, nil
}
