package flightlog

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"adaptrm/internal/api"
)

func stamp(i int) time.Time { return time.Unix(int64(i), 0).UTC() }

func TestRingBoundedAndOrdered(t *testing.T) {
	l := New(4)
	for i := range 10 {
		l.Append(Record{Wall: stamp(i), Kind: KindServer, Detail: fmt.Sprintf("m%d", i)})
	}
	if l.Len() != 4 {
		t.Fatalf("retained %d, want 4", l.Len())
	}
	if l.Total() != 10 {
		t.Fatalf("total %d, want 10", l.Total())
	}
	got := l.Snapshot(0)
	for i, r := range got {
		if want := fmt.Sprintf("m%d", i+6); r.Detail != want {
			t.Errorf("snapshot[%d] = %q, want %q", i, r.Detail, want)
		}
	}
	// A limited snapshot keeps the newest entries.
	tail := l.Snapshot(2)
	if len(tail) != 2 || tail[0].Detail != "m8" || tail[1].Detail != "m9" {
		t.Errorf("snapshot(2) = %+v", tail)
	}
	// Requests past the retained count are clamped, not an error.
	if n := len(l.Snapshot(100)); n != 4 {
		t.Errorf("snapshot(100) has %d records", n)
	}
}

func TestAppendStampsWall(t *testing.T) {
	l := New(2)
	l.Append(Record{Kind: KindServer, Detail: "auto"})
	if l.Snapshot(0)[0].Wall.IsZero() {
		t.Fatal("Append did not stamp a zero Wall")
	}
	l.Append(Record{Wall: stamp(7), Kind: KindServer, Detail: "explicit"})
	if got := l.Snapshot(1)[0].Wall; !got.Equal(stamp(7)) {
		t.Fatalf("explicit stamp overwritten: %v", got)
	}
}

func TestWriteJSON(t *testing.T) {
	l := New(3)
	l.Append(Record{Wall: stamp(1), Kind: KindHTTP, Route: "/v1/submit", Status: 200, Duration: 42 * time.Microsecond})
	l.Append(Record{Wall: stamp(2), Kind: KindEvent, Event: &api.Event{Device: 1, Seq: 9, Type: api.EventJobAdmitted, JobID: 3}})
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var d Dump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if d.Total != 2 || d.Retained != 2 || len(d.Records) != 2 {
		t.Fatalf("dump header %+v", d)
	}
	if d.Records[0].Route != "/v1/submit" || d.Records[0].Status != 200 {
		t.Errorf("http record %+v", d.Records[0])
	}
	ev := d.Records[1].Event
	if ev == nil || ev.Seq != 9 || ev.Type != api.EventJobAdmitted {
		t.Errorf("event record %+v", d.Records[1])
	}
}

// watchStub is a WatchService delivering a fixed event script.
type watchStub struct {
	api.Service
	events []api.Event
}

func (w watchStub) Watch(ctx context.Context, req api.WatchRequest) (<-chan api.Event, error) {
	ch := make(chan api.Event)
	go func() {
		defer close(ch)
		for _, ev := range w.events {
			select {
			case ch <- ev:
			case <-ctx.Done():
				return
			}
		}
	}()
	return ch, nil
}

func TestTailAppendsEvents(t *testing.T) {
	events := []api.Event{
		{Device: 0, Seq: 1, Type: api.EventJobAdmitted, JobID: 1},
		{Device: 0, Seq: 2, Type: api.EventJobCompleted, JobID: 1},
		{Device: 1, Seq: 1, Type: api.EventJobRejected},
	}
	l := New(8)
	if err := Tail(context.Background(), l, watchStub{events: events}); err != nil {
		t.Fatal(err)
	}
	got := l.Snapshot(0)
	if len(got) != len(events) {
		t.Fatalf("tailed %d records, want %d", len(got), len(events))
	}
	for i, r := range got {
		if r.Kind != KindEvent || r.Event == nil || *r.Event != events[i] {
			t.Errorf("record %d = %+v, want event %+v", i, r, events[i])
		}
	}
}
