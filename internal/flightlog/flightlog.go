// Package flightlog is the bounded in-memory postmortem log of the
// daemon: a fixed-capacity ring of structured records — device
// lifecycle events tailed from the fleet's watch stream, HTTP
// request/outcome lines from the front-end, and free-form server
// markers (startup, shutdown, signals). When something goes wrong the
// last N entries are the flight recorder: GET /debug/flightlog dumps
// them as JSON, and rmserve dumps them to stderr on SIGQUIT.
//
// The ring is deliberately dumb: a mutex, a slice, an overwrite
// pointer. Appends are O(1) with no allocation beyond what the record
// itself carries, old entries are overwritten silently (Total keeps
// the lifetime count so a dump shows how much history scrolled away),
// and snapshots copy out under the lock so readers never block writers
// for long. It holds structured records rather than formatted text so
// the dump stays machine-readable.
package flightlog

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"time"

	"adaptrm/internal/api"
)

// Record kinds. Kind is an open string set — new record sources pick a
// new kind rather than growing an enum — but the bundled producers use
// these three.
const (
	// KindEvent is a device lifecycle event tailed from the watch hub.
	KindEvent = "event"
	// KindHTTP is one served HTTP request (route, status, duration).
	KindHTTP = "http"
	// KindServer is a server-level marker: startup, shutdown, signal.
	KindServer = "server"
)

// Record is one flight-log entry. Only the fields matching its Kind
// are populated; the zero values of the rest are omitted from JSON.
type Record struct {
	// Wall is the wall-clock stamp; Append fills it when zero.
	Wall time.Time `json:"wall"`
	// Kind discriminates the record (KindEvent, KindHTTP, KindServer).
	Kind string `json:"kind"`
	// Route and Status describe an HTTP record; Duration its service
	// time.
	Route    string        `json:"route,omitempty"`
	Status   int           `json:"status,omitempty"`
	Duration time.Duration `json:"duration_ns,omitempty"`
	// Detail carries free-form context (server markers, error text).
	Detail string `json:"detail,omitempty"`
	// Event is the device lifecycle event of a KindEvent record.
	Event *api.Event `json:"event,omitempty"`
}

// Log is the bounded postmortem ring. The zero value is unusable; make
// one with New.
type Log struct {
	mu    sync.Mutex
	buf   []Record
	head  int // index of the oldest retained record
	n     int // retained count
	total uint64
	now   func() time.Time
	aux   map[string]func() any
}

// DefaultCapacity is the ring size rmserve uses unless told otherwise.
const DefaultCapacity = 2048

// New builds a log retaining the last capacity records (≤ 0 falls back
// to DefaultCapacity).
func New(capacity int) *Log {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Log{buf: make([]Record, capacity), now: time.Now}
}

// Append records r, overwriting the oldest entry when full. A zero
// Wall is stamped with the current time; tests pass an explicit stamp
// for determinism.
func (l *Log) Append(r Record) {
	l.mu.Lock()
	if r.Wall.IsZero() {
		r.Wall = l.now()
	}
	if l.n == len(l.buf) {
		l.buf[l.head] = r
		l.head = (l.head + 1) % len(l.buf)
	} else {
		l.buf[(l.head+l.n)%len(l.buf)] = r
		l.n++
	}
	l.total++
	l.mu.Unlock()
}

// Len returns the retained record count.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Total returns the lifetime record count, including overwritten ones.
func (l *Log) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot copies out the newest n retained records, oldest first
// (n ≤ 0 or n > retained: all of them).
func (l *Log) Snapshot(n int) []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 || n > l.n {
		n = l.n
	}
	out := make([]Record, n)
	start := l.n - n
	for i := range out {
		out[i] = l.buf[(l.head+start+i)%len(l.buf)]
	}
	return out
}

// SetAux attaches a named auxiliary status section to every dump: fn
// is evaluated at dump time (SIGQUIT, GET /debug/flightlog) and its
// result rides along under Aux[name]. rmserve hooks the WAL writer's
// status here so a postmortem shows where persistence stood. A nil fn
// removes the section.
func (l *Log) SetAux(name string, fn func() any) {
	l.mu.Lock()
	if l.aux == nil {
		l.aux = make(map[string]func() any)
	}
	if fn == nil {
		delete(l.aux, name)
	} else {
		l.aux[name] = fn
	}
	l.mu.Unlock()
}

// Dump is the JSON wire form of a flight-log snapshot.
type Dump struct {
	// Total counts every record ever appended; Retained how many the
	// ring still holds; Records the dumped tail, oldest first.
	Total    uint64   `json:"total"`
	Retained int      `json:"retained"`
	Records  []Record `json:"records"`
	// Aux holds the point-in-time auxiliary sections (SetAux), e.g. the
	// WAL writer's position under "wal".
	Aux map[string]any `json:"aux,omitempty"`
}

// WriteJSON dumps the newest n records (n ≤ 0: all retained) as one
// JSON document, auxiliary sections included.
func (l *Log) WriteJSON(w io.Writer, n int) error {
	recs := l.Snapshot(n)
	l.mu.Lock()
	d := Dump{Total: l.total, Retained: l.n, Records: recs}
	fns := make(map[string]func() any, len(l.aux))
	for name, fn := range l.aux {
		fns[name] = fn
	}
	l.mu.Unlock()
	// Aux callbacks run outside the lock: they reach into other
	// subsystems (the WAL writer takes its own locks) and must not be
	// able to stall appends.
	if len(fns) > 0 {
		d.Aux = make(map[string]any, len(fns))
		for name, fn := range fns {
			d.Aux[name] = fn()
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Tail subscribes to a WatchService (the whole fleet — every device's
// stream) and appends each event as a KindEvent record until ctx ends
// or the service shuts down. It is the wiring that turns the fleet's
// per-device watch streams into the postmortem log; run it in its own
// goroutine. The watch buffer is sized generously because a lagging
// tail loses history, but loss still surfaces honestly: an overflow
// arrives as an EventLagged event and is logged like any other.
func Tail(ctx context.Context, l *Log, ws api.WatchService) error {
	ch, err := ws.Watch(ctx, api.WatchRequest{Buffer: 4096})
	if err != nil {
		return err
	}
	for ev := range ch {
		e := ev
		l.Append(Record{Kind: KindEvent, Event: &e})
	}
	return nil
}
