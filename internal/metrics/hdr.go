package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// HDR is an HDR-style high-dynamic-range histogram over non-negative
// int64 values (nanoseconds in practice): values below 128 are recorded
// exactly, and every power-of-two octave above that is split into 64
// linear sub-buckets, bounding the relative quantile error at ~1.6%
// across the full int64 range. Observe is wait-free and
// allocation-free; quantile extraction walks the (fixed, ~3.8k-entry)
// bucket array at report time.
//
// It is the client-side latency recorder of cmd/rmsoak — per-op-type
// p50/p99/p999 over millions of samples with a fixed memory footprint —
// and deliberately lives next to the Prometheus histogram so both sides
// of a soak (server buckets, client quantiles) share one package.
type HDR struct {
	counts [hdrSize]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

const (
	// hdrSubBits sets the per-octave resolution: 2^6 = 64 sub-buckets,
	// ≈1.6% worst-case relative error.
	hdrSubBits = 6
	hdrSub     = 1 << hdrSubBits
	// hdrSize covers the exact range [0, 2·hdrSub) plus 64 sub-buckets
	// for each of the remaining octaves of a non-negative int64 (bit
	// lengths hdrSubBits+2 … 63).
	hdrSize = 2*hdrSub + (62-hdrSubBits)*hdrSub
)

// hdrIndex maps a non-negative value to its bucket.
func hdrIndex(v int64) int {
	u := uint64(v)
	l := bits.Len64(u)
	if l <= hdrSubBits+1 { // v < 2·hdrSub: exact
		return int(u)
	}
	shift := l - (hdrSubBits + 1)
	return int(u>>shift) + shift<<hdrSubBits
}

// hdrBounds returns the [lo, hi) value range of a bucket; the final
// bucket's hi clamps to MaxInt64 (inclusive there — it is the last
// representable value).
func hdrBounds(idx int) (lo, hi int64) {
	if idx < 2*hdrSub {
		return int64(idx), int64(idx) + 1
	}
	shift := idx>>hdrSubBits - 1
	ulo := uint64(idx-shift<<hdrSubBits) << shift
	if uhi := ulo + 1<<shift; uhi <= math.MaxInt64 {
		return int64(ulo), int64(uhi)
	}
	return int64(ulo), math.MaxInt64
}

// Observe records one value; negatives clamp to zero.
func (h *HDR) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[hdrIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Count returns the number of recorded values.
func (h *HDR) Count() uint64 { return h.count.Load() }

// Max returns the largest recorded value (0 when empty).
func (h *HDR) Max() int64 { return h.max.Load() }

// Mean returns the arithmetic mean (0 when empty).
func (h *HDR) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an estimate of the q-quantile (q in [0,1]): the
// midpoint of the bucket holding the ⌈q·count⌉-th smallest value —
// exact for values below 128, within ~1.6% above. It returns 0 on an
// empty histogram; q outside [0,1] clamps.
func (h *HDR) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := uint64(q*float64(total) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= target {
			lo, hi := hdrBounds(i)
			if hi-lo <= 1 {
				return lo // exact bucket
			}
			return lo + (hi-lo)/2
		}
	}
	return h.max.Load() // racing observers; best effort
}
