package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero value = %d", c.Value())
	}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("got %d, want 42", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 1000 {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("got %d, want 8000", c.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{0, 5, 10, 11, 100, 500, 1000, 1001, 1 << 40, -3} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// ≤10: 0, 5, 10, and the clamped -3 → 4. ≤100: +11, 100 → 6.
	// ≤1000: +500, 1000 → 8. +Inf: +1001, 2^40 → 10.
	want := []uint64{4, 6, 8, 10}
	for i, w := range want {
		if s.Cumulative[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d (snapshot %+v)", i, s.Cumulative[i], w, s)
		}
	}
	if s.Count != 10 {
		t.Errorf("count = %d, want 10", s.Count)
	}
	wantSum := int64(0 + 5 + 10 + 11 + 100 + 500 + 1000 + 1001 + 1<<40 + 0)
	if s.Sum != wantSum {
		t.Errorf("sum = %d, want %d", s.Sum, wantSum)
	}
}

func TestHistogramDefaultBucketsSorted(t *testing.T) {
	if !sort.SliceIsSorted(DefaultLatencyBuckets, func(i, j int) bool {
		return DefaultLatencyBuckets[i] < DefaultLatencyBuckets[j]
	}) {
		t.Fatal("DefaultLatencyBuckets not sorted")
	}
	NewHistogram(DefaultLatencyBuckets) // must not panic
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unsorted bounds")
		}
	}()
	NewHistogram([]int64{10, 5})
}

func TestHDRIndexRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose [lo, hi) range contains
	// it, with buckets tiling the range without gaps.
	values := []int64{0, 1, 63, 64, 127, 128, 129, 255, 256, 1000, 1 << 20, 1<<40 + 12345, math.MaxInt64}
	for _, v := range values {
		idx := hdrIndex(v)
		lo, hi := hdrBounds(idx)
		// hi is exclusive except for the final clamped bucket, where it
		// is MaxInt64 inclusive.
		if v < lo || (v >= hi && !(hi == math.MaxInt64 && v == hi)) {
			t.Errorf("value %d → bucket %d [%d,%d) misses it", v, idx, lo, hi)
		}
	}
	// Adjacent buckets tile: hi of i == lo of i+1 across the whole array.
	for i := 0; i < hdrSize-1; i++ {
		_, hi := hdrBounds(i)
		lo, _ := hdrBounds(i + 1)
		if hi != lo {
			t.Fatalf("gap between buckets %d and %d: hi %d vs lo %d", i, i+1, hi, lo)
		}
	}
}

func TestHDRQuantiles(t *testing.T) {
	var h HDR
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	// Uniform values 1..10000: quantiles are exactly recoverable within
	// the documented 1.6% relative error.
	rng := rand.New(rand.NewSource(1))
	vals := rng.Perm(10000)
	for _, v := range vals {
		h.Observe(int64(v) + 1)
	}
	if h.Count() != 10000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 10000 {
		t.Fatalf("max = %d", h.Max())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := float64(h.Quantile(q))
		want := q * 10000
		if rel := math.Abs(got-want) / want; rel > 0.02 {
			t.Errorf("q%.3f = %.0f, want ≈%.0f (rel err %.3f)", q, got, want, rel)
		}
	}
	if got := h.Quantile(1); got < 9800 {
		t.Errorf("q1 = %d, want ≈10000", got)
	}
	// Small exact values are exact.
	var small HDR
	for v := int64(1); v <= 100; v++ {
		small.Observe(v)
	}
	if got := small.Quantile(0.5); got != 50 {
		t.Errorf("exact-range median = %d, want 50", got)
	}
}

func TestEmitterFormat(t *testing.T) {
	var sb strings.Builder
	e := NewEmitter(&sb)
	e.Family("x_total", "a help\nwith newline and back\\slash", "counter")
	e.Int("x_total", 7)
	e.Int("x_total", 3, L("tenant", `we"ird\name`+"\n"))
	e.Float("y", 0.5, L("k", "v"))
	h := NewHistogram([]int64{1_000_000, 1_000_000_000})
	h.Observe(500_000)
	h.Observe(2_000_000_000)
	e.Histogram("lat_seconds", h.Snapshot(), L("route", "/v1/submit"))
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "# HELP x_total a help\\nwith newline and back\\\\slash\n" +
		"# TYPE x_total counter\n" +
		"x_total 7\n" +
		"x_total{tenant=\"we\\\"ird\\\\name\\n\"} 3\n" +
		"y{k=\"v\"} 0.5\n" +
		"lat_seconds_bucket{route=\"/v1/submit\",le=\"0.001\"} 1\n" +
		"lat_seconds_bucket{route=\"/v1/submit\",le=\"1\"} 1\n" +
		"lat_seconds_bucket{route=\"/v1/submit\",le=\"+Inf\"} 2\n" +
		"lat_seconds_sum{route=\"/v1/submit\"} 2.0005\n" +
		"lat_seconds_count{route=\"/v1/submit\"} 2\n"
	if got != want {
		t.Errorf("emitter output:\n%s\nwant:\n%s", got, want)
	}
}

// TestRecordNoAllocs pins the hot-path recording operations at zero
// allocations directly (the CI allocs gate additionally pins
// BenchmarkMetricsRecord).
func TestRecordNoAllocs(t *testing.T) {
	var c Counter
	h := NewHistogram(DefaultLatencyBuckets)
	var hdr HDR
	n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(750_000)
		hdr.Observe(750_000)
	})
	if n != 0 {
		t.Fatalf("recording allocates %.1f allocs/op, want 0", n)
	}
}
