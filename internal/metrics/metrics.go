// Package metrics provides the dependency-free instrumentation
// primitives behind the daemon's GET /metrics endpoint: atomic
// counters, a lock-free fixed-bucket histogram in Prometheus shape, an
// HDR-style high-dynamic-range histogram for client-side latency
// recording (cmd/rmsoak), and a text-format emitter producing the
// Prometheus exposition format by hand.
//
// The recording paths — Counter.Inc/Add and Histogram.Observe — are
// zero-allocation and wait-free (a handful of atomic operations), so
// they can sit on the request hot path of a daemon without touching
// its allocs/op budget; BenchmarkMetricsRecord pins that at 0
// allocs/op in the CI gate. Snapshots and the text emitter allocate
// freely: they run at scrape time, not per request.
//
// Nothing here talks to the network or depends on anything outside the
// standard library; the exposition format is small enough to write by
// hand (help/type lines, label escaping, cumulative histogram buckets)
// and hand-rolling it keeps the module dependency-free.
package metrics

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative to keep the counter monotone; the
// type does not enforce it).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// DefaultLatencyBuckets is the fixed request-latency bucket ladder of
// the HTTP layer, in nanoseconds: 50µs to 2.5s in a 1-2.5-5 decade
// pattern. Fixed, deterministic bounds keep two scrapes of the same
// process byte-comparable and let dashboards overlay runs.
var DefaultLatencyBuckets = []int64{
	50_000, 100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000, 10_000_000,
	25_000_000, 50_000_000, 100_000_000, 250_000_000,
	500_000_000, 1_000_000_000, 2_500_000_000,
}

// Histogram is a lock-free histogram over fixed integer (nanosecond)
// bucket bounds, exported in Prometheus shape (cumulative buckets plus
// an implicit +Inf, sum and count). Observe is wait-free and
// allocation-free; concurrent observers never block each other.
type Histogram struct {
	bounds []int64         // upper bounds (inclusive), strictly increasing
	counts []atomic.Uint64 // one per bound, plus the +Inf overflow slot
	sum    atomic.Int64    // total observed nanoseconds
	count  atomic.Uint64
}

// NewHistogram builds a histogram over the given upper bounds (in
// nanoseconds, strictly increasing). It panics on an empty or unsorted
// ladder — bucket bounds are compile-time configuration, not input.
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 || !sort.SliceIsSorted(bounds, func(i, j int) bool { return bounds[i] < bounds[j] }) {
		panic(fmt.Sprintf("metrics: invalid histogram bounds %v", bounds))
	}
	return &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value in nanoseconds. Negative values clamp to
// zero (a clock hiccup must not corrupt the distribution).
func (h *Histogram) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	i := 0
	for i < len(h.bounds) && ns > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(ns)
	h.count.Add(1)
}

// ObserveSince records the elapsed time since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(int64(time.Since(start))) }

// HistSnapshot is a point-in-time copy of a histogram in Prometheus
// shape: Cumulative[i] counts observations ≤ Bounds[i], with the final
// entry (the +Inf bucket) equal to Count.
type HistSnapshot struct {
	Bounds     []int64 // shared with the histogram; treat as read-only
	Cumulative []uint64
	Sum        int64
	Count      uint64
}

// Snapshot copies the histogram state. Concurrent observers may land
// between bucket reads, so the snapshot is only approximately
// consistent — each individual series stays monotone across snapshots,
// which is all the exposition format promises.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Bounds: h.bounds, Cumulative: make([]uint64, len(h.counts))}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.Cumulative[i] = cum
	}
	// Derive count and sum from loads ordered after the buckets, so the
	// +Inf bucket never exceeds the reported count.
	s.Count = s.Cumulative[len(s.Cumulative)-1]
	s.Sum = h.sum.Load()
	return s
}
