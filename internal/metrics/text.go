package metrics

import (
	"io"
	"strconv"
	"strings"
)

// Emitter writes the Prometheus text exposition format (version 0.0.4)
// by hand: # HELP / # TYPE headers, samples with escaped labels, and
// histograms as cumulative le-buckets plus _sum and _count. All output
// is deterministic for deterministic inputs — integer values print as
// integers, floats through strconv's shortest round-trip form — so
// tests can compare scrapes byte-for-byte against expected counters.
//
// Errors are sticky: the first write failure is retained and every
// later call is a no-op, so call sites emit unconditionally and check
// Err once at the end.
type Emitter struct {
	w   io.Writer
	buf []byte
	err error
}

// NewEmitter wraps w.
func NewEmitter(w io.Writer) *Emitter { return &Emitter{w: w, buf: make([]byte, 0, 256)} }

// Err returns the first write error, if any.
func (e *Emitter) Err() error { return e.err }

func (e *Emitter) flush() {
	if e.err == nil {
		_, e.err = e.w.Write(e.buf)
	}
	e.buf = e.buf[:0]
}

// Label is one name="value" pair of a sample.
type Label struct{ Name, Value string }

// L is shorthand for building a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Family emits the # HELP and # TYPE header of a metric family. typ is
// "counter", "gauge" or "histogram". Newlines and backslashes in help
// are escaped per the format.
func (e *Emitter) Family(name, help, typ string) {
	e.buf = append(e.buf, "# HELP "...)
	e.buf = append(e.buf, name...)
	e.buf = append(e.buf, ' ')
	e.buf = append(e.buf, escapeHelp(help)...)
	e.buf = append(e.buf, "\n# TYPE "...)
	e.buf = append(e.buf, name...)
	e.buf = append(e.buf, ' ')
	e.buf = append(e.buf, typ...)
	e.buf = append(e.buf, '\n')
	e.flush()
}

// name writes "name" or "name{k="v",...}" into the buffer.
func (e *Emitter) name(name string, labels []Label) {
	e.buf = append(e.buf, name...)
	if len(labels) == 0 {
		return
	}
	e.buf = append(e.buf, '{')
	for i, l := range labels {
		if i > 0 {
			e.buf = append(e.buf, ',')
		}
		e.buf = append(e.buf, l.Name...)
		e.buf = append(e.buf, '=', '"')
		e.buf = append(e.buf, escapeLabel(l.Value)...)
		e.buf = append(e.buf, '"')
	}
	e.buf = append(e.buf, '}')
}

// Int emits one integer-valued sample.
func (e *Emitter) Int(name string, v int64, labels ...Label) {
	e.name(name, labels)
	e.buf = append(e.buf, ' ')
	e.buf = strconv.AppendInt(e.buf, v, 10)
	e.buf = append(e.buf, '\n')
	e.flush()
}

// Float emits one float-valued sample in shortest round-trip form.
func (e *Emitter) Float(name string, v float64, labels ...Label) {
	e.name(name, labels)
	e.buf = append(e.buf, ' ')
	e.buf = strconv.AppendFloat(e.buf, v, 'g', -1, 64)
	e.buf = append(e.buf, '\n')
	e.flush()
}

// Histogram emits one histogram series from a snapshot: cumulative
// le-buckets (bounds converted from nanoseconds to seconds, the
// conventional Prometheus unit), the +Inf bucket, _sum in seconds and
// _count. The extra labels ride on every sample.
func (e *Emitter) Histogram(name string, s HistSnapshot, labels ...Label) {
	scratch := make([]Label, 0, len(labels)+1)
	for i, b := range s.Bounds {
		le := strconv.FormatFloat(float64(b)/1e9, 'g', -1, 64)
		scratch = append(append(scratch[:0], labels...), L("le", le))
		e.Int(name+"_bucket", int64(s.Cumulative[i]), scratch...)
	}
	scratch = append(append(scratch[:0], labels...), L("le", "+Inf"))
	e.Int(name+"_bucket", int64(s.Count), scratch...)
	e.Float(name+"_sum", float64(s.Sum)/1e9, labels...)
	e.Int(name+"_count", int64(s.Count), labels...)
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a help string: backslash and newline (quotes are
// legal there).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
