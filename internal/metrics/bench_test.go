package metrics

import "testing"

// BenchmarkMetricsRecord is the CI-gated hot path: one counter
// increment plus one fixed-bucket histogram observation — what the HTTP
// layer records per request — must stay allocation-free
// (benchmarks/allocs-baseline.txt pins 0 allocs/op).
func BenchmarkMetricsRecord(b *testing.B) {
	var c Counter
	h := NewHistogram(DefaultLatencyBuckets)
	b.ReportAllocs()
	for i := 0; b.Loop(); i++ {
		c.Inc()
		h.Observe(int64(i%5_000_000) + 1)
	}
	if c.Value() == 0 {
		b.Fatal("counter untouched")
	}
}

// BenchmarkHDRObserve measures the rmsoak client-side recorder.
func BenchmarkHDRObserve(b *testing.B) {
	var h HDR
	b.ReportAllocs()
	for i := 0; b.Loop(); i++ {
		h.Observe(int64(i%10_000_000) + 1)
	}
}
