package api

import (
	"errors"
	"fmt"
)

// Error codes of the service protocol. Codes — not Go error identities —
// are what crosses a transport: a server serialises the code of the
// sentinel found in the error chain, a client rebuilds an *Error with
// the same code, and errors.Is matches it back to the sentinel. New
// codes may be added; clients must treat unknown codes as CodeInternal.
const (
	// CodeInfeasible: the admission decision was "reject" — no schedule
	// satisfies all deadlines with the new request included.
	CodeInfeasible = "infeasible"
	// CodeUnknownDevice: the request addressed a device index outside
	// the fleet.
	CodeUnknownDevice = "unknown_device"
	// CodeUnknownApp: the named application is not in the device's
	// operating-point library.
	CodeUnknownApp = "unknown_app"
	// CodeUnknownJob: the job id does not name an active job on the
	// device (never admitted, already finished, or already cancelled).
	CodeUnknownJob = "unknown_job"
	// CodeBadRequest: the request is malformed (undecodable payload,
	// deadline not after arrival, time moving backwards, ...).
	CodeBadRequest = "bad_request"
	// CodePayloadTooLarge: the request body exceeds the transport's
	// size limit.
	CodePayloadTooLarge = "payload_too_large"
	// CodeOverloaded: backpressure — the device's mailbox stayed full
	// for the whole context lifetime; retry later.
	CodeOverloaded = "overloaded"
	// CodeQuotaExceeded: the tenant spent its request quota.
	CodeQuotaExceeded = "quota_exceeded"
	// CodeUnauthorized: missing or unknown tenant token.
	CodeUnauthorized = "unauthorized"
	// CodeForbidden: valid tenant, but the addressed device is outside
	// its device set.
	CodeForbidden = "forbidden"
	// CodeClosed: the service is shutting down and accepts no new work.
	CodeClosed = "closed"
	// CodeUnavailable: a backend node of a multi-node deployment could
	// not be reached (connection refused, transport failure mid-call).
	// Distinct from CodeOverloaded — the node is gone, not busy — and
	// from CodeClosed — the node never answered, it did not decline.
	CodeUnavailable = "unavailable"
	// CodeInternal: unclassified server-side failure.
	CodeInternal = "internal"
)

// Error is the serialisable service error: a stable machine-readable
// Code plus a human-readable Message. Two *Error values compare equal
// under errors.Is when their codes match, so a sentinel survives a
// marshal/unmarshal round-trip even though the pointer identity does
// not.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Message == "" {
		return "api: " + e.Code
	}
	return "api: " + e.Code + ": " + e.Message
}

// Is reports code equality, making errors.Is(decoded, Err...) work on
// errors reconstructed from the wire.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	return ok && t.Code == e.Code
}

// Sentinels of the error taxonomy. Wrap them with fmt.Errorf("%w: ...")
// to attach detail; ErrorCode and the HTTP layer find the sentinel in
// the chain via errors.As.
var (
	ErrInfeasible      = &Error{Code: CodeInfeasible, Message: "no feasible schedule for the request"}
	ErrUnknownDevice   = &Error{Code: CodeUnknownDevice, Message: "no such device"}
	ErrUnknownApp      = &Error{Code: CodeUnknownApp, Message: "no such application"}
	ErrUnknownJob      = &Error{Code: CodeUnknownJob, Message: "no such active job"}
	ErrBadRequest      = &Error{Code: CodeBadRequest, Message: "malformed request"}
	ErrPayloadTooLarge = &Error{Code: CodePayloadTooLarge, Message: "request body too large"}
	ErrOverloaded      = &Error{Code: CodeOverloaded, Message: "service overloaded"}
	ErrQuotaExceeded   = &Error{Code: CodeQuotaExceeded, Message: "tenant request quota exceeded"}
	ErrUnauthorized    = &Error{Code: CodeUnauthorized, Message: "missing or unknown token"}
	ErrForbidden       = &Error{Code: CodeForbidden, Message: "device not permitted for tenant"}
	ErrClosed          = &Error{Code: CodeClosed, Message: "service closed"}
	ErrUnavailable     = &Error{Code: CodeUnavailable, Message: "backend node unavailable"}
	ErrInternal        = &Error{Code: CodeInternal, Message: "internal error"}
)

// knownCodes is the closed set a client of this package version can
// match; FromCode folds anything else into CodeInternal.
var knownCodes = map[string]bool{
	CodeInfeasible: true, CodeUnknownDevice: true, CodeUnknownApp: true,
	CodeUnknownJob: true, CodeBadRequest: true, CodePayloadTooLarge: true,
	CodeOverloaded: true, CodeQuotaExceeded: true, CodeUnauthorized: true,
	CodeForbidden: true, CodeClosed: true, CodeUnavailable: true,
	CodeInternal: true,
}

// ErrorCode extracts the taxonomy code from an error chain, or
// CodeInternal when no *Error is present.
func ErrorCode(err error) string {
	var e *Error
	if errors.As(err, &e) {
		return e.Code
	}
	return CodeInternal
}

// FromCode rebuilds the wire form of an error: an *Error carrying the
// transmitted code and message. errors.Is matches it against the
// sentinel with the same code. Codes this package version does not know
// (a newer server's) are folded into CodeInternal, preserving the raw
// code in the message, so every decoded error matches some sentinel.
func FromCode(code, message string) *Error {
	if !knownCodes[code] {
		if code != "" {
			message = code + ": " + message
		}
		code = CodeInternal
	}
	return &Error{Code: code, Message: message}
}

// Errf wraps a sentinel with detail while keeping it errors.Is-findable:
// Errf(ErrUnknownDevice, "device %d of %d", 9, 4).
func Errf(sentinel *Error, format string, args ...any) error {
	return fmt.Errorf("%w: %s", sentinel, fmt.Sprintf(format, args...))
}
