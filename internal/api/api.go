// Package api defines the transport-agnostic service protocol of the
// runtime-management fleet: typed request/response messages, the Service
// interface every front-end implements, and a structured error taxonomy
// that survives serialisation.
//
// The protocol makes the paper's admission semantics first-class. A
// submission is an explicit negotiation: the reply carries the assigned
// job id, the accept/reject verdict and the completions observed while
// the device's clock advanced — nothing is fire-and-forget. Two
// implementations exist today: the in-process fleet (package fleet) and
// the JSON-over-HTTP client (package httpapi), and the test suite holds
// them to identical deterministic behaviour, so callers can swap a
// local fleet for a remote daemon without changing a line.
//
// All errors returned by a Service carry a taxonomy code (see Error);
// sentinel identity is preserved across transports via code equality,
// so errors.Is(err, api.ErrQuotaExceeded) works against a live daemon
// exactly as it does in process.
package api

import (
	"context"
	"time"
)

// Completion reports one finished job, observed while a device's
// virtual clock advanced past its finish time.
type Completion struct {
	// JobID is the finished job.
	JobID int `json:"job_id"`
	// At is the virtual completion time (s).
	At float64 `json:"at"`
	// Missed reports a deadline violation (defensive; admitted jobs
	// never miss under a correct scheduler).
	Missed bool `json:"missed,omitempty"`
}

// SubmitRequest asks a device to admit one application request.
type SubmitRequest struct {
	// Device is the fleet device index.
	Device int `json:"device"`
	// At is the virtual arrival time (s); per-device times must be
	// non-decreasing.
	At float64 `json:"at"`
	// App names an operating-point table of the device's library.
	App string `json:"app"`
	// Deadline is the absolute firm deadline (s), strictly after At.
	Deadline float64 `json:"deadline"`
}

// TargetDevice returns the addressed device, letting transport layers
// authorise any mutating request uniformly.
func (r SubmitRequest) TargetDevice() int { return r.Device }

// SubmitResult is the admission decision. On rejection the Service
// additionally returns ErrInfeasible; the result still carries the
// completions that occurred while the device advanced to the arrival
// time, so no event is lost on either verdict.
type SubmitResult struct {
	// JobID is the admitted job's id (0 when rejected).
	JobID int `json:"job_id"`
	// Accepted is the admission verdict.
	Accepted bool `json:"accepted"`
	// Completions lists jobs that finished in (previous now, At].
	Completions []Completion `json:"completions,omitempty"`
}

// AdvanceRequest moves a device's virtual clock forward, accounting
// progress and energy along its current schedule.
type AdvanceRequest struct {
	// Device is the fleet device index.
	Device int `json:"device"`
	// To is the target virtual time (s), ≥ the device's current time.
	To float64 `json:"to"`
}

// TargetDevice returns the addressed device.
func (r AdvanceRequest) TargetDevice() int { return r.Device }

// AdvanceResult lists the completions the advance produced.
type AdvanceResult struct {
	// Completions lists jobs that finished in (previous now, To].
	Completions []Completion `json:"completions,omitempty"`
}

// CancelRequest aborts an active job, freeing its resources for the
// remaining jobs (the device re-plans them immediately).
type CancelRequest struct {
	// Device is the fleet device index.
	Device int `json:"device"`
	// JobID is the job to abort.
	JobID int `json:"job_id"`
}

// TargetDevice returns the addressed device.
func (r CancelRequest) TargetDevice() int { return r.Device }

// CancelResult acknowledges a cancellation.
type CancelResult struct {
	// Cancelled is true when the job was active and has been removed.
	Cancelled bool `json:"cancelled"`
}

// StatsRequest fetches statistics: fleet-wide when Device is nil,
// otherwise for the single addressed device.
type StatsRequest struct {
	// Device optionally selects one device.
	Device *int `json:"device,omitempty"`
}

// StatsResult aggregates service activity. All fields except
// SchedulingTime and MaxQueueDepth are deterministic for a given
// per-device request order, which is what the cross-implementation
// equivalence tests compare.
type StatsResult struct {
	// Devices is the number of devices covered, Shards the worker count
	// (0 when a single device is addressed).
	Devices int `json:"devices"`
	Shards  int `json:"shards,omitempty"`
	// Submitted counts all requests, Accepted and Rejected its split.
	Submitted int `json:"submitted"`
	Accepted  int `json:"accepted"`
	Rejected  int `json:"rejected"`
	// Completed counts finished jobs, DeadlineMisses the violations.
	Completed      int `json:"completed"`
	DeadlineMisses int `json:"deadline_misses"`
	// Cancelled counts jobs aborted while active. With the others it
	// closes the lifecycle ledger: accepted = completed + cancelled +
	// currently active.
	Cancelled int `json:"cancelled"`
	// Energy is the total energy of all executed schedule fractions (J).
	Energy float64 `json:"energy"`
	// Activations counts scheduler invocations, SchedulingTime their
	// cumulative wall time (serialised as nanoseconds).
	Activations    int           `json:"activations"`
	SchedulingTime time.Duration `json:"scheduling_time_ns"`
	// Cache* sum the schedule-cache counters across the fleet (zero
	// when caching is off). Per-device results omit them: device stats
	// come from the runtime manager, which does not see the cache.
	CacheHits      int `json:"cache_hits,omitempty"`
	CacheMisses    int `json:"cache_misses,omitempty"`
	CacheStale     int `json:"cache_stale,omitempty"`
	CacheEvictions int `json:"cache_evictions,omitempty"`
	CacheRepacks   int `json:"cache_repacks,omitempty"`
	// CacheSharedHits counts lookups served from the fleet-wide shared
	// cache tier after missing the device-local first level, and
	// CachePromotions the entries device caches promoted into that tier
	// (zero without a shared tier; fleet-wide results only).
	CacheSharedHits int `json:"cache_shared_hits,omitempty"`
	CachePromotions int `json:"cache_promotions,omitempty"`
	// ScheduleSwaps counts accepted anytime-refinement schedule swaps:
	// a background exact search beat the admitted schedule and the
	// replacement passed the manager's validation. Deterministic only
	// when refinement is driven deterministically (the test suites);
	// with background refinement workers it depends on interleaving.
	ScheduleSwaps int `json:"schedule_swaps,omitempty"`
	// Refine* mirror the anytime refinement pool's counters (all
	// operational, fleet-wide results only): exact searches run, the
	// subset that beat their incumbent, tasks skipped because the
	// shared tier already held an exact result, and offers dropped on
	// a full refinement queue.
	RefineSearches int `json:"refine_searches,omitempty"`
	RefineImproved int `json:"refine_improved,omitempty"`
	RefineSkipped  int `json:"refine_skipped,omitempty"`
	RefineDropped  int `json:"refine_dropped,omitempty"`
	// MaxQueueDepth is the mailbox high-water mark (operational, not
	// deterministic).
	MaxQueueDepth int `json:"max_queue_depth,omitempty"`
	// CoalescedBatches counts multi-request batched activations and
	// CoalescedRequests the submits that rode in them. Explicit
	// SubmitBatch calls make them deterministic; worker-side
	// BatchWindow coalescing makes them opportunistic, like
	// Activations (fleet-wide results only).
	CoalescedBatches  int `json:"coalesced_batches,omitempty"`
	CoalescedRequests int `json:"coalesced_requests,omitempty"`
	// WatchSubscribers gauges the open watch subscriptions and
	// WatchDropped counts events discarded from slow subscribers'
	// buffers (both operational; fleet-wide results only).
	WatchSubscribers int `json:"watch_subscribers,omitempty"`
	WatchDropped     int `json:"watch_dropped,omitempty"`
	// QuotaBudgetRefusals and QuotaRateRefusals count requests the
	// transport refused for an exhausted request budget or an empty
	// token bucket. They are transport-level: the in-process fleet has
	// no quotas and always reports zero; the HTTP daemon fills them on
	// fleet-wide results, summed over its tenants.
	QuotaBudgetRefusals int `json:"quota_budget_refusals,omitempty"`
	QuotaRateRefusals   int `json:"quota_rate_refusals,omitempty"`
	// ControlMode names the degradation controller's current mode
	// ("normal", "heuristic_only", "shedding"; empty without a
	// controller — a routed result reports the worst mode across its
	// backends). Shed counts admission requests rejected early with
	// ErrOverloaded before a scheduler activation was spent, and
	// ControlTicks / ControlModeChanges the controller's decision
	// counters. All operational (fleet-wide results only).
	ControlMode        string `json:"control_mode,omitempty"`
	Shed               int    `json:"shed,omitempty"`
	ControlTicks       int    `json:"control_ticks,omitempty"`
	ControlModeChanges int    `json:"control_mode_changes,omitempty"`
}

// Deterministic strips the wall-clock, operational and transport-level
// fields, leaving only the values that must be identical across
// transports, shard counts and goroutine interleavings for the same
// per-device request order. The coalescing counters stay: they are
// deterministic for explicit batches, which is what the equivalence
// suites drive (no suite enables the opportunistic BatchWindow).
func (s StatsResult) Deterministic() StatsResult {
	s.Shards = 0
	s.SchedulingTime = 0
	s.MaxQueueDepth = 0
	s.WatchSubscribers = 0
	s.WatchDropped = 0
	s.QuotaBudgetRefusals = 0
	s.QuotaRateRefusals = 0
	s.RefineSearches = 0
	s.RefineImproved = 0
	s.RefineSkipped = 0
	s.RefineDropped = 0
	s.ControlMode = ""
	s.Shed = 0
	s.ControlTicks = 0
	s.ControlModeChanges = 0
	return s
}

// Service is the transport-agnostic runtime-management interface. Every
// call takes a context: implementations must honour cancellation while
// blocked (e.g. on a full mailbox) and return the taxonomy errors of
// this package. The in-process fleet and the HTTP client are both
// Services and are behaviourally interchangeable.
type Service interface {
	// Submit negotiates admission of one request. A rejection returns
	// (result, ErrInfeasible) with result.Accepted false.
	Submit(ctx context.Context, req SubmitRequest) (SubmitResult, error)
	// Advance moves a device's virtual clock forward.
	Advance(ctx context.Context, req AdvanceRequest) (AdvanceResult, error)
	// Cancel aborts an active job, reclaiming its resources.
	Cancel(ctx context.Context, req CancelRequest) (CancelResult, error)
	// Stats snapshots fleet-wide or per-device statistics.
	Stats(ctx context.Context, req StatsRequest) (StatsResult, error)
}
