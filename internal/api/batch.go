package api

import (
	"context"
	"errors"
	"strings"
)

// BatchItem is one admission request of a batched submission: an
// application name and its absolute firm deadline. The arrival time is
// the batch's.
type BatchItem struct {
	// App names an operating-point table of the device's library.
	App string `json:"app"`
	// Deadline is the absolute firm deadline (s), strictly after the
	// batch arrival time.
	Deadline float64 `json:"deadline"`
}

// BatchSubmitRequest asks a device to decide several same-time requests
// in one activation. Batched admission is behaviour-preserving: the
// verdicts, job ids and final schedule are identical to submitting the
// items one by one at At; only the scheduler-activation count (and
// hence latency under bursty traffic) differs.
type BatchSubmitRequest struct {
	// Device is the fleet device index.
	Device int `json:"device"`
	// At is the common virtual arrival time (s); per-device times must
	// be non-decreasing.
	At float64 `json:"at"`
	// Items are the requests, decided in order.
	Items []BatchItem `json:"items"`
}

// TargetDevice returns the addressed device, letting transport layers
// authorise any mutating request uniformly.
func (r BatchSubmitRequest) TargetDevice() int { return r.Device }

// BatchVerdict is the admission decision for one batch item.
type BatchVerdict struct {
	// JobID is the admitted job's id (0 when not admitted).
	JobID int `json:"job_id"`
	// Accepted is the admission verdict.
	Accepted bool `json:"accepted"`
	// Error carries the per-item failure as a taxonomy error: a clean
	// rejection gets CodeInfeasible, an unknown application
	// CodeUnknownApp, a deadline at or before the batch time
	// CodeBadRequest. Nil when the item was admitted.
	Error *Error `json:"error,omitempty"`
}

// BatchSubmitResult is the outcome of a batched submission. Unlike
// Submit, rejection is not the call's error — a batch can mix verdicts,
// so each item carries its own; the call-level error is reserved for
// failures affecting the batch as a whole (unknown device, overload,
// malformed batch).
type BatchSubmitResult struct {
	// Verdicts holds one entry per decided item, in item order. On a
	// successful call it covers every item; when the call itself fails
	// (unknown device, overload, a mid-batch transport error on the
	// sequential fallback) it covers only the prefix decided before the
	// failure — check len(Verdicts) before indexing by item position.
	Verdicts []BatchVerdict `json:"verdicts"`
	// Completions lists jobs that finished in (previous now, At] while
	// the device advanced to the batch arrival time.
	Completions []Completion `json:"completions,omitempty"`
}

// DecidedOps reports how many of the batch's mutating operations were
// actually decided, letting transports settle per-operation budgets
// when a call fails mid-batch.
func (r BatchSubmitResult) DecidedOps() int { return len(r.Verdicts) }

// BatchService is the optional batched extension of Service. Both
// bundled transports implement it (the in-process fleet coalesces the
// batch into one scheduler activation when it is jointly feasible; the
// HTTP client forwards to /v1/submit-batch); use SubmitBatch to call it
// uniformly — it falls back to sequential Submit calls on a plain
// Service.
type BatchService interface {
	Service
	// SubmitBatch decides all items of one batch. Per-item outcomes are
	// verdicts, never the call error; see BatchSubmitResult.
	SubmitBatch(ctx context.Context, req BatchSubmitRequest) (BatchSubmitResult, error)
}

// perItemCode reports taxonomy codes that describe a single item rather
// than the whole call, so the sequential fallback can fold them into
// verdicts the way a native BatchService does.
func perItemCode(code string) bool {
	return code == CodeInfeasible || code == CodeUnknownApp || code == CodeBadRequest
}

// verdictError folds an item-scoped error into its wire form, trimming
// the sentinel's own prefix so the message does not stack it twice.
func verdictError(err error) *Error {
	code := ErrorCode(err)
	msg := strings.TrimPrefix(err.Error(), "api: "+code+": ")
	return FromCode(code, msg)
}

// SubmitBatch submits a batch through any Service: a native
// BatchService decides it in one call (one scheduler activation when
// the batch is jointly feasible); otherwise the items are submitted
// sequentially at the batch time. Admission outcomes are identical on
// both paths — batched admission never changes verdicts, only
// amortises activations. The paths differ only in how a mid-batch
// hard failure surfaces: a native BatchService records it as that
// item's verdict and keeps deciding, while the sequential fallback
// aborts with the error and the verdict prefix decided so far (it
// cannot tell a scheduler failure from a transport failure). The
// empty batch is a no-op on both paths: zero operations decided,
// zero quota charged, an empty result and no error.
func SubmitBatch(ctx context.Context, svc Service, req BatchSubmitRequest) (BatchSubmitResult, error) {
	if len(req.Items) == 0 {
		return BatchSubmitResult{}, nil
	}
	if bs, ok := svc.(BatchService); ok {
		return bs.SubmitBatch(ctx, req)
	}
	res := BatchSubmitResult{Verdicts: make([]BatchVerdict, len(req.Items))}
	for i, it := range req.Items {
		sr, err := svc.Submit(ctx, SubmitRequest{Device: req.Device, At: req.At, App: it.App, Deadline: it.Deadline})
		res.Completions = append(res.Completions, sr.Completions...)
		if err != nil {
			var coded *Error
			if errors.As(err, &coded) && perItemCode(coded.Code) {
				res.Verdicts[i] = BatchVerdict{Error: verdictError(err)}
				continue
			}
			// A call-level failure (device, transport, overload) aborts
			// the batch; the verdicts decided so far ride along.
			res.Verdicts = res.Verdicts[:i]
			return res, err
		}
		res.Verdicts[i] = BatchVerdict{JobID: sr.JobID, Accepted: sr.Accepted}
	}
	return res, nil
}
