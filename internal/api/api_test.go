package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestErrorIsByCode(t *testing.T) {
	sentinels := []*Error{
		ErrInfeasible, ErrUnknownDevice, ErrUnknownApp, ErrUnknownJob,
		ErrBadRequest, ErrOverloaded, ErrQuotaExceeded, ErrUnauthorized,
		ErrForbidden, ErrClosed, ErrInternal,
	}
	for i, s := range sentinels {
		if !errors.Is(s, s) {
			t.Errorf("%v does not match itself", s)
		}
		// The wire round-trip loses pointer identity but keeps the code.
		if rebuilt := FromCode(s.Code, "whatever detail"); !errors.Is(rebuilt, s) {
			t.Errorf("FromCode(%q) does not match its sentinel", s.Code)
		}
		for j, o := range sentinels {
			if i != j && errors.Is(s, o) {
				t.Errorf("%v matches unrelated %v", s, o)
			}
		}
	}
}

func TestErrorWrapping(t *testing.T) {
	err := Errf(ErrQuotaExceeded, "tenant %q spent %d", "acme", 10)
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Error("Errf result does not match its sentinel")
	}
	if errors.Is(err, ErrOverloaded) {
		t.Error("Errf result matches a different sentinel")
	}
	// Deeper chains still resolve to the first taxonomy code.
	deep := fmt.Errorf("outer: %w", err)
	if got := ErrorCode(deep); got != CodeQuotaExceeded {
		t.Errorf("ErrorCode = %q, want %q", got, CodeQuotaExceeded)
	}
	if got := ErrorCode(errors.New("plain")); got != CodeInternal {
		t.Errorf("ErrorCode(plain) = %q, want %q", got, CodeInternal)
	}
	if got := ErrorCode(nil); got != CodeInternal {
		t.Errorf("ErrorCode(nil) = %q, want %q", got, CodeInternal)
	}
}

func TestErrorJSONRoundTrip(t *testing.T) {
	wrapped := Errf(ErrUnknownDevice, "device %d of %d", 9, 4)
	onWire := FromCode(ErrorCode(wrapped), wrapped.Error())
	buf, err := json.Marshal(onWire)
	if err != nil {
		t.Fatal(err)
	}
	var back Error
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(&back, ErrUnknownDevice) {
		t.Errorf("decoded %+v does not match ErrUnknownDevice", back)
	}
	if back.Message == "" {
		t.Error("message lost in round-trip")
	}
}

func TestFromCodeUnknownFoldsToInternal(t *testing.T) {
	if e := FromCode("", "x"); e.Code != CodeInternal {
		t.Errorf("FromCode(\"\") = %q, want internal", e.Code)
	}
	// A newer server's code this client version does not know must
	// still match a sentinel, with the raw code kept in the message.
	e := FromCode("rate_limited", "slow down")
	if !errors.Is(e, ErrInternal) {
		t.Errorf("unknown code does not match ErrInternal: %+v", e)
	}
	if e.Message != "rate_limited: slow down" {
		t.Errorf("raw code lost: %q", e.Message)
	}
}

func TestStatsDeterministic(t *testing.T) {
	s := StatsResult{
		Devices: 3, Shards: 2, Submitted: 10, Accepted: 8,
		SchedulingTime: 5 * time.Second, MaxQueueDepth: 7,
	}
	d := s.Deterministic()
	if d.Shards != 0 || d.SchedulingTime != 0 || d.MaxQueueDepth != 0 {
		t.Errorf("wall-clock fields not stripped: %+v", d)
	}
	if d.Devices != 3 || d.Submitted != 10 || d.Accepted != 8 {
		t.Errorf("deterministic fields altered: %+v", d)
	}
}
