package api

import "context"

// EventType discriminates the lifecycle events of the watch protocol.
// The values mirror the runtime manager's taxonomy one-to-one (package
// rm), plus the transport-level EventLagged marker; they are the wire
// strings every transport carries.
type EventType string

const (
	// EventJobAdmitted: a request was accepted; the job is now active.
	EventJobAdmitted EventType = "job_admitted"
	// EventJobRejected: a request was cleanly rejected (no feasible
	// schedule). Erroneous requests emit no event.
	EventJobRejected EventType = "job_rejected"
	// EventJobStarted: the job executed its first schedule fraction.
	EventJobStarted EventType = "job_started"
	// EventJobCompleted: the job finished; Missed flags a violation.
	EventJobCompleted EventType = "job_completed"
	// EventJobCancelled: the job was aborted while active.
	EventJobCancelled EventType = "job_cancelled"
	// EventScheduleChanged: the device's active schedule was replaced.
	EventScheduleChanged EventType = "schedule_changed"
	// EventScheduleSwapped: anytime refinement replaced the device's
	// schedule with a strictly cheaper one; Payload carries the full new
	// schedule so the event log stays a complete operation log.
	EventScheduleSwapped EventType = "schedule_swapped"
	// EventModeChanged: the degradation controller switched the device's
	// operating mode; Payload carries the new mode's wire name
	// ("normal", "heuristic_only", "shedding"), so the transition rides
	// the watch/WAL machinery like any lifecycle event and replay
	// restores it verbatim.
	EventModeChanged EventType = "mode_changed"
	// EventClockAdvanced: an explicit advance moved the device clock; At
	// carries the new time. Together with the admission events this makes
	// the stream a complete operation log — the durability layer replays
	// it to reconstruct device state byte-identically.
	EventClockAdvanced EventType = "clock_advanced"
	// EventLagged is the overflow marker: the subscriber consumed too
	// slowly and Dropped events were discarded from its buffer instead
	// of blocking the service. The stream continues with later events;
	// a consumer needing the gap reconnects with WatchRequest.FromSeq.
	// For a single-device watch, Seq carries the sequence number of the
	// first dropped event; an all-device subscription sets Device to -1
	// and aggregates the drop count across devices.
	EventLagged EventType = "lagged"
)

// Event is one device lifecycle event on the wire. Within a device,
// sequence numbers are strictly monotone starting at 1 with no gaps, so
// a consumer can detect loss and resume from any position; different
// devices number independently.
type Event struct {
	// Device is the fleet device the event belongs to (-1 on an
	// aggregated Lagged marker).
	Device int `json:"device"`
	// Seq is the per-device sequence number (on a Lagged marker: the
	// first dropped sequence number, 0 when aggregated).
	Seq uint64 `json:"seq,omitempty"`
	// Type is the event kind.
	Type EventType `json:"type"`
	// At is the virtual time of the event.
	At float64 `json:"at,omitempty"`
	// JobID is the subject job (admissions, starts, completions,
	// cancellations).
	JobID int `json:"job_id,omitempty"`
	// App names the requested application (admissions, rejections).
	App string `json:"app,omitempty"`
	// Deadline is the request's absolute deadline (admissions,
	// rejections).
	Deadline float64 `json:"deadline,omitempty"`
	// Missed flags a deadline violation on a completion.
	Missed bool `json:"missed,omitempty"`
	// Dropped counts the events a Lagged marker stands in for.
	Dropped int `json:"dropped,omitempty"`
	// Payload carries event-type-specific data (for ScheduleSwapped:
	// the new schedule's segments as canonical JSON). A string rather
	// than a structured field so Event stays comparable — the recovery
	// verifier and the watch rings depend on that.
	Payload string `json:"payload,omitempty"`
}

// WatchRequest subscribes to the event stream.
type WatchRequest struct {
	// Device optionally restricts the stream to one device; nil streams
	// every device of the fleet.
	Device *int `json:"device,omitempty"`
	// FromSeq resumes a single-device stream: retained events with
	// Seq >= FromSeq are delivered (in order, without gaps against the
	// live stream) before live events. Requires Device; zero means
	// live-only. When the retention window no longer covers FromSeq the
	// stream opens with a Lagged marker for the evicted range.
	FromSeq uint64 `json:"from_seq,omitempty"`
	// Buffer overrides the per-subscriber buffer capacity in events
	// (0 = implementation default). Smaller buffers lag sooner;
	// implementations cap the value (the fleet at 65536), since the
	// request may come from an untrusted network client.
	Buffer int `json:"buffer,omitempty"`
}

// WatchService is the streaming extension of Service. Both bundled
// transports implement it: the in-process fleet fans events out through
// per-subscriber buffers, and the HTTP client consumes the daemon's
// Server-Sent-Events endpoint — the semantics (ordering, resume, lag)
// are identical, pinned by the cross-transport equivalence suite, so a
// later gRPC streaming binding has a fixed contract to meet.
type WatchService interface {
	Service
	// Watch subscribes to device lifecycle events. The returned channel
	// delivers events in per-device sequence order until the context
	// ends, the service shuts down (after final drain events), or — for
	// remote transports — the connection breaks; it is then closed. A
	// slow consumer never blocks the service: overflow discards events
	// and surfaces an EventLagged marker in-stream instead.
	Watch(ctx context.Context, req WatchRequest) (<-chan Event, error)
}
