package eval

import (
	"testing"
	"time"
)

func TestFormatDuration(t *testing.T) {
	tests := []struct {
		d    time.Duration
		want string
	}{
		{250 * time.Microsecond, "250µs"},
		{12345 * time.Microsecond, "12.3ms"},
		{2345 * time.Millisecond, "2.345s"},
	}
	for _, tc := range tests {
		if got := FormatDuration(tc.d); got != tc.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}
