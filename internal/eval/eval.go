// Package eval is the experiment harness: it runs schedulers over the
// generated test suite and aggregates exactly the quantities the paper
// reports — scheduling success rate (Fig. 2), relative energy versus
// EX-MEM (Table IV, Fig. 3) and per-case search time (Fig. 4) — plus the
// Table III suite census.
package eval

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"adaptrm/internal/exmem"
	"adaptrm/internal/platform"
	"adaptrm/internal/sched"
	"adaptrm/internal/workload"
)

// CaseResult records one (case, scheduler) evaluation.
type CaseResult struct {
	// OK reports whether a feasible schedule was produced (and, when
	// validation is on, passed the full constraint check).
	OK bool
	// Budget reports an EX-MEM node-budget timeout (neither success nor
	// proven infeasibility).
	Budget bool
	// Invalid reports a schedule that failed re-validation; always a
	// bug in the scheduler under test.
	Invalid bool
	// Energy is the schedule energy (2a) when OK.
	Energy float64
	// Elapsed is the scheduling wall time.
	Elapsed time.Duration
}

// Results holds a full evaluation run.
type Results struct {
	// Cases is the evaluated suite.
	Cases []workload.Case
	// Schedulers lists scheduler names in run order.
	Schedulers []string
	// PerCase maps scheduler name to per-case results, aligned with
	// Cases.
	PerCase map[string][]CaseResult
}

// RunOptions tunes an evaluation run.
type RunOptions struct {
	// Workers bounds parallel case evaluation; 0 means GOMAXPROCS. Use
	// 1 for maximum timing fidelity (Fig. 4).
	Workers int
	// Validate re-checks every produced schedule against constraints
	// (2b)–(2e). Slightly slower, catches scheduler bugs; on by default
	// in tests and the rmeval tool.
	Validate bool
	// Progress, when non-nil, receives one call per finished case with
	// the number of completed cases.
	Progress func(done, total int)
}

// Run evaluates every scheduler on every case.
func Run(cases []workload.Case, scheds []sched.Scheduler, plat platform.Platform, opt RunOptions) (*Results, error) {
	if len(cases) == 0 {
		return nil, errors.New("eval: no cases")
	}
	if len(scheds) == 0 {
		return nil, errors.New("eval: no schedulers")
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := &Results{Cases: cases, PerCase: make(map[string][]CaseResult, len(scheds))}
	for _, s := range scheds {
		if _, dup := res.PerCase[s.Name()]; dup {
			return nil, fmt.Errorf("eval: duplicate scheduler %q", s.Name())
		}
		res.Schedulers = append(res.Schedulers, s.Name())
		res.PerCase[s.Name()] = make([]CaseResult, len(cases))
	}

	// Schedulers may keep internal state (e.g. EX-MEM stats), so each
	// worker gets its own instances via the factory when available;
	// the provided instances are used with a mutex otherwise. To keep
	// the harness simple and allocation-free for the caller, cases are
	// sharded over workers and every worker uses the shared scheduler
	// values guarded per scheduler. All shipped schedulers are safe for
	// serialized reuse.
	type task struct{ ci int }
	tasks := make(chan task)
	var wg sync.WaitGroup
	locks := make([]sync.Mutex, len(scheds))
	var doneMu sync.Mutex
	done := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk := range tasks {
				c := &cases[tk.ci]
				for si, s := range scheds {
					locks[si].Lock()
					start := time.Now()
					k, err := s.Schedule(c.Jobs, plat, c.T0)
					elapsed := time.Since(start)
					locks[si].Unlock()
					cr := CaseResult{Elapsed: elapsed}
					switch {
					case err == nil:
						cr.OK = true
						cr.Energy = k.Energy(c.Jobs)
						if opt.Validate {
							if verr := k.Validate(plat, c.Jobs, c.T0); verr != nil {
								cr.OK = false
								cr.Invalid = true
							}
						}
					case errors.Is(err, exmem.ErrBudget):
						cr.Budget = true
					}
					res.PerCase[s.Name()][tk.ci] = cr
				}
				if opt.Progress != nil {
					doneMu.Lock()
					done++
					d := done
					doneMu.Unlock()
					opt.Progress(d, len(cases))
				}
			}
		}()
	}
	for ci := range cases {
		tasks <- task{ci}
	}
	close(tasks)
	wg.Wait()
	return res, nil
}

// InvalidCount returns the number of produced-but-invalid schedules; any
// non-zero value indicates a scheduler bug.
func (r *Results) InvalidCount() int {
	n := 0
	for _, rs := range r.PerCase {
		for _, cr := range rs {
			if cr.Invalid {
				n++
			}
		}
	}
	return n
}

// groupIndex buckets case indices by (level, #jobs).
func (r *Results) groupIndex() map[workload.Level][4][]int {
	out := map[workload.Level][4][]int{}
	for ci := range r.Cases {
		c := &r.Cases[ci]
		arr := out[c.Level]
		nj := len(c.Jobs)
		if nj >= 1 && nj <= 4 {
			arr[nj-1] = append(arr[nj-1], ci)
		}
		out[c.Level] = arr
	}
	return out
}
