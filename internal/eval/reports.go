package eval

import (
	"fmt"
	"io"
	"math"
	"time"

	"adaptrm/internal/stats"
	"adaptrm/internal/workload"
)

// RateReport is the Fig. 2 aggregation: scheduling success rate per
// scheduler and job count for one deadline level.
type RateReport struct {
	// Level is the deadline tightness the report covers.
	Level workload.Level
	// Schedulers lists scheduler names in run order.
	Schedulers []string
	// Rate[s][j] is the success fraction (0–1) of scheduler s on
	// (j+1)-job cases.
	Rate map[string][4]float64
	// Cases[j] is the group size.
	Cases [4]int
}

// NewRateReport computes the success-rate table for a deadline level.
func NewRateReport(r *Results, level workload.Level) *RateReport {
	groups := r.groupIndex()[level]
	rep := &RateReport{Level: level, Schedulers: r.Schedulers, Rate: map[string][4]float64{}}
	for j, idxs := range groups {
		rep.Cases[j] = len(idxs)
	}
	for _, s := range r.Schedulers {
		var rates [4]float64
		for j, idxs := range groups {
			if len(idxs) == 0 {
				rates[j] = math.NaN()
				continue
			}
			ok := 0
			for _, ci := range idxs {
				if r.PerCase[s][ci].OK {
					ok++
				}
			}
			rates[j] = float64(ok) / float64(len(idxs))
		}
		rep.Rate[s] = rates
	}
	return rep
}

// Render writes the report as a text table (the rows of Fig. 2).
func (rep *RateReport) Render(w io.Writer) {
	fmt.Fprintf(w, "Scheduling rate [%%], %s deadlines (Fig. 2 uses tight)\n", rep.Level)
	fmt.Fprintf(w, "%-12s %8s %8s %8s %8s\n", "scheduler", "1 job", "2 jobs", "3 jobs", "4 jobs")
	for _, s := range rep.Schedulers {
		fmt.Fprintf(w, "%-12s", s)
		for j := 0; j < 4; j++ {
			fmt.Fprintf(w, " %7.1f%%", rep.Rate[s][j]*100)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-12s %8d %8d %8d %8d\n", "(cases)", rep.Cases[0], rep.Cases[1], rep.Cases[2], rep.Cases[3])
}

// WriteCSV emits scheduler,jobs,rate rows.
func (rep *RateReport) WriteCSV(w io.Writer) {
	fmt.Fprintln(w, "scheduler,jobs,level,rate")
	for _, s := range rep.Schedulers {
		for j := 0; j < 4; j++ {
			fmt.Fprintf(w, "%s,%d,%s,%.6f\n", s, j+1, rep.Level, rep.Rate[s][j])
		}
	}
}

// EnergyReport is the Table IV aggregation: geometric means of relative
// energy versus a baseline scheduler, per deadline level and job count.
type EnergyReport struct {
	// Baseline is the reference scheduler (EX-MEM in the paper).
	Baseline string
	// Schedulers lists the compared schedulers (baseline excluded).
	Schedulers []string
	// Geo[s][level][j] is the geomean relative energy of scheduler s in
	// the (level, j+1 jobs) group; NaN when the group is empty.
	Geo map[string]map[workload.Level][4]float64
	// Overall[s][level] is the geomean over the level.
	Overall map[string]map[workload.Level]float64
	// AllLevels[s] is the geomean over everything (the "(all levels)"
	// row of Table IV).
	AllLevels map[string]float64
	// Ratios[s] holds every individual relative energy (the Fig. 3
	// S-curve input), in case order over cases where both s and the
	// baseline succeeded.
	Ratios map[string][]float64
}

// NewEnergyReport computes Table IV against the given baseline. Cases
// count only when both the baseline and the compared scheduler produced
// a valid schedule, matching the paper's "for each successfully
// scheduled test case".
func NewEnergyReport(r *Results, baseline string) (*EnergyReport, error) {
	base, ok := r.PerCase[baseline]
	if !ok {
		return nil, fmt.Errorf("eval: baseline %q not in results", baseline)
	}
	rep := &EnergyReport{
		Baseline:  baseline,
		Geo:       map[string]map[workload.Level][4]float64{},
		Overall:   map[string]map[workload.Level]float64{},
		AllLevels: map[string]float64{},
		Ratios:    map[string][]float64{},
	}
	groups := r.groupIndex()
	for _, s := range r.Schedulers {
		if s == baseline {
			continue
		}
		rep.Schedulers = append(rep.Schedulers, s)
		rep.Geo[s] = map[workload.Level][4]float64{}
		rep.Overall[s] = map[workload.Level]float64{}
		var all []float64
		for _, level := range []workload.Level{workload.Weak, workload.Tight} {
			var geos [4]float64
			var levelRatios []float64
			for j, idxs := range groups[level] {
				var ratios []float64
				for _, ci := range idxs {
					b, m := base[ci], r.PerCase[s][ci]
					if b.OK && m.OK && b.Energy > 0 {
						ratios = append(ratios, m.Energy/b.Energy)
					}
				}
				geos[j] = stats.GeoMean(ratios)
				levelRatios = append(levelRatios, ratios...)
			}
			rep.Geo[s][level] = geos
			rep.Overall[s][level] = stats.GeoMean(levelRatios)
			all = append(all, levelRatios...)
		}
		rep.AllLevels[s] = stats.GeoMean(all)
		rep.Ratios[s] = stats.SCurve(all)
	}
	return rep, nil
}

// Render writes the Table IV layout.
func (rep *EnergyReport) Render(w io.Writer) {
	fmt.Fprintf(w, "Geomean relative energy vs %s (Table IV)\n", rep.Baseline)
	fmt.Fprintf(w, "%-8s", "# Jobs")
	for _, s := range rep.Schedulers {
		fmt.Fprintf(w, " %10s-W %10s-T", trunc(s, 10), trunc(s, 10))
	}
	fmt.Fprintln(w)
	for j := 0; j < 4; j++ {
		fmt.Fprintf(w, "%-8d", j+1)
		for _, s := range rep.Schedulers {
			fmt.Fprintf(w, " %12.4f %12.4f", rep.Geo[s][workload.Weak][j], rep.Geo[s][workload.Tight][j])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-8s", "Overall")
	for _, s := range rep.Schedulers {
		fmt.Fprintf(w, " %12.4f %12.4f", rep.Overall[s][workload.Weak], rep.Overall[s][workload.Tight])
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-8s", "(all)")
	for _, s := range rep.Schedulers {
		fmt.Fprintf(w, " %25.4f", rep.AllLevels[s])
	}
	fmt.Fprintln(w)
}

// WriteCSV emits scheduler,level,jobs,geomean rows.
func (rep *EnergyReport) WriteCSV(w io.Writer) {
	fmt.Fprintln(w, "scheduler,level,jobs,geomean_rel_energy")
	for _, s := range rep.Schedulers {
		for _, level := range []workload.Level{workload.Weak, workload.Tight} {
			for j := 0; j < 4; j++ {
				fmt.Fprintf(w, "%s,%s,%d,%.6f\n", s, level, j+1, rep.Geo[s][level][j])
			}
			fmt.Fprintf(w, "%s,%s,overall,%.6f\n", s, level, rep.Overall[s][level])
		}
		fmt.Fprintf(w, "%s,all,all,%.6f\n", s, rep.AllLevels[s])
	}
}

// SCurvePoint is one (index, ratio) sample of Fig. 3.
type SCurvePoint struct {
	Index int
	Ratio float64
}

// SCurveReport is the Fig. 3 aggregation.
type SCurveReport struct {
	// Baseline is the reference scheduler.
	Baseline string
	// Curves maps scheduler to its sorted relative energies.
	Curves map[string][]float64
	// OptimalCount maps scheduler to the number of tests scheduled at
	// the baseline optimum (ratio ≤ 1+1e-9).
	OptimalCount map[string]int
}

// NewSCurveReport derives Fig. 3 from an energy report.
func NewSCurveReport(er *EnergyReport) *SCurveReport {
	rep := &SCurveReport{
		Baseline:     er.Baseline,
		Curves:       map[string][]float64{},
		OptimalCount: map[string]int{},
	}
	for _, s := range er.Schedulers {
		rep.Curves[s] = er.Ratios[s]
		rep.OptimalCount[s] = stats.CountAtMost(er.Ratios[s], 1+1e-9)
	}
	return rep
}

// Render summarizes the curves (counts and sample quantiles).
func (rep *SCurveReport) Render(w io.Writer) {
	fmt.Fprintf(w, "S-curves of relative energy vs %s (Fig. 3)\n", rep.Baseline)
	for s, curve := range rep.Curves {
		if len(curve) == 0 {
			fmt.Fprintf(w, "%-12s (no common scheduled cases)\n", s)
			continue
		}
		opt := rep.OptimalCount[s]
		fmt.Fprintf(w, "%-12s n=%4d optimal=%4d (%.1f%%) p50=%.4f p90=%.4f max=%.4f\n",
			s, len(curve), opt, 100*float64(opt)/float64(len(curve)),
			stats.Quantile(curve, 0.5), stats.Quantile(curve, 0.9), curve[len(curve)-1])
	}
}

// WriteCSV emits scheduler,index,ratio rows (the raw curves).
func (rep *SCurveReport) WriteCSV(w io.Writer) {
	fmt.Fprintln(w, "scheduler,index,rel_energy")
	for s, curve := range rep.Curves {
		for i, v := range curve {
			fmt.Fprintf(w, "%s,%d,%.6f\n", s, i, v)
		}
	}
}

// TimingReport is the Fig. 4 aggregation: per-scheduler, per-job-count
// search-time distributions.
type TimingReport struct {
	// Schedulers lists scheduler names in run order.
	Schedulers []string
	// Box[s][j] summarizes scheduler s on (j+1)-job cases (seconds).
	Box map[string][4]stats.Boxplot
}

// NewTimingReport computes search-time boxplots over all levels,
// mirroring Fig. 4.
func NewTimingReport(r *Results) *TimingReport {
	rep := &TimingReport{Schedulers: r.Schedulers, Box: map[string][4]stats.Boxplot{}}
	byJobs := [4][]int{}
	for ci := range r.Cases {
		nj := len(r.Cases[ci].Jobs)
		if nj >= 1 && nj <= 4 {
			byJobs[nj-1] = append(byJobs[nj-1], ci)
		}
	}
	for _, s := range r.Schedulers {
		var boxes [4]stats.Boxplot
		for j, idxs := range byJobs {
			xs := make([]float64, 0, len(idxs))
			for _, ci := range idxs {
				xs = append(xs, r.PerCase[s][ci].Elapsed.Seconds())
			}
			boxes[j] = stats.NewBoxplot(xs)
		}
		rep.Box[s] = boxes
	}
	return rep
}

// Render writes per-group medians, means and extremes.
func (rep *TimingReport) Render(w io.Writer) {
	fmt.Fprintln(w, "Search time [s] per job count (Fig. 4)")
	fmt.Fprintf(w, "%-12s %-5s %12s %12s %12s %12s %12s\n",
		"scheduler", "jobs", "min", "median", "mean", "p75", "max")
	for _, s := range rep.Schedulers {
		for j := 0; j < 4; j++ {
			b := rep.Box[s][j]
			if b.N == 0 {
				continue
			}
			fmt.Fprintf(w, "%-12s %-5d %12.6f %12.6f %12.6f %12.6f %12.6f\n",
				s, j+1, b.Min, b.Median, b.Mean, b.Q3, b.Max)
		}
	}
}

// WriteCSV emits scheduler,jobs,min,q1,median,q3,max,mean,n rows.
func (rep *TimingReport) WriteCSV(w io.Writer) {
	fmt.Fprintln(w, "scheduler,jobs,min,q1,median,q3,max,mean,n")
	for _, s := range rep.Schedulers {
		for j := 0; j < 4; j++ {
			b := rep.Box[s][j]
			fmt.Fprintf(w, "%s,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%d\n",
				s, j+1, b.Min, b.Q1, b.Median, b.Q3, b.Max, b.Mean, b.N)
		}
	}
}

// Table3Report is the suite census of Table III.
type Table3Report struct {
	Counts map[workload.Level][4]int
	Total  int
}

// NewTable3Report tallies a suite.
func NewTable3Report(cases []workload.Case) *Table3Report {
	rep := &Table3Report{Counts: workload.CountByGroup(cases), Total: len(cases)}
	return rep
}

// Render writes the Table III layout.
func (rep *Table3Report) Render(w io.Writer) {
	fmt.Fprintln(w, "Test cases per job count and deadline level (Table III)")
	fmt.Fprintf(w, "%-8s %6s %6s %6s %6s\n", "level", "1", "2", "3", "4")
	for _, level := range []workload.Level{workload.Weak, workload.Tight} {
		c := rep.Counts[level]
		fmt.Fprintf(w, "%-8s %6d %6d %6d %6d\n", level, c[0], c[1], c[2], c[3])
	}
	fmt.Fprintf(w, "total    %d\n", rep.Total)
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// FormatDuration renders a duration rounded for human-readable reports.
func FormatDuration(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d < time.Second:
		return d.Round(100 * time.Microsecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}
