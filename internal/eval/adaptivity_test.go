package eval

import (
	"bytes"
	"strings"
	"testing"

	"adaptrm/internal/core"
	"adaptrm/internal/exmem"
	"adaptrm/internal/fixedmap"
	"adaptrm/internal/sched"
	"adaptrm/internal/workload"
)

func TestAdaptivityReport(t *testing.T) {
	cases, plat := miniSuite(t)
	// Reduce to a manageable subset: all tight cases.
	var sub []workload.Case
	for _, c := range cases {
		if c.Level == workload.Tight {
			sub = append(sub, c)
		}
	}
	scheds := []sched.Scheduler{exmem.New(), core.New(), fixedmap.New(fixedmap.OnArrival)}
	rep, err := NewAdaptivityReport(sub, scheds, plat)
	if err != nil {
		t.Fatal(err)
	}
	// The fixed mapper never reconfigures nor suspends by construction.
	if rep.Reconfigs["FIXED"].Mean != 0 || rep.Suspensions["FIXED"].Mean != 0 {
		t.Errorf("fixed mapper shows adaptation: %+v / %+v",
			rep.Reconfigs["FIXED"], rep.Suspensions["FIXED"])
	}
	if rep.AdaptiveShare["FIXED"] != 0 {
		t.Errorf("fixed mapper adaptive share = %v", rep.AdaptiveShare["FIXED"])
	}
	// EX-MEM explores adaptation freely: on a tight multi-job suite it
	// must use it somewhere.
	if rep.AdaptiveShare["EX-MEM"] == 0 {
		t.Error("EX-MEM never adapts on tight cases — implausible")
	}
	// EX-MEM schedules at least as many cases as the others.
	for _, s := range rep.Schedulers {
		if rep.Scheduled[s] > rep.Scheduled["EX-MEM"] {
			t.Errorf("%s scheduled more cases than EX-MEM", s)
		}
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	if !strings.Contains(buf.String(), "Adaptivity") || !strings.Contains(buf.String(), "FIXED") {
		t.Errorf("render:\n%s", buf.String())
	}
}
