package eval

import (
	"bytes"
	"strings"
	"testing"

	"adaptrm/internal/core"
	"adaptrm/internal/dse"
	"adaptrm/internal/exmem"
	"adaptrm/internal/lagrange"
	"adaptrm/internal/platform"
	"adaptrm/internal/sched"
	"adaptrm/internal/workload"
)

// miniSuite builds a reduced suite (fast enough for unit tests) with the
// paper's generation rules.
func miniSuite(t *testing.T) ([]workload.Case, platform.Platform) {
	t.Helper()
	plat := platform.OdroidXU4()
	lib, err := dse.StandardLibrary(plat)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[workload.Level][4]int{
		workload.Weak:  {3, 6, 6, 4},
		workload.Tight: {3, 8, 8, 5},
	}
	cases, err := workload.Suite(lib, workload.Params{Seed: 11, Counts: counts})
	if err != nil {
		t.Fatal(err)
	}
	return cases, plat
}

func allSchedulers() []sched.Scheduler {
	return []sched.Scheduler{exmem.New(), lagrange.New(), core.New()}
}

func TestRunAndReports(t *testing.T) {
	cases, plat := miniSuite(t)
	res, err := Run(cases, allSchedulers(), plat, RunOptions{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.InvalidCount() != 0 {
		t.Fatalf("%d invalid schedules produced", res.InvalidCount())
	}
	if len(res.Schedulers) != 3 {
		t.Fatalf("schedulers = %v", res.Schedulers)
	}

	// Fig. 2: rates in [0,1]; EX-MEM must dominate the heuristics on
	// every tight group (it is exact within the class).
	rate := NewRateReport(res, workload.Tight)
	for j := 0; j < 4; j++ {
		ex := rate.Rate["EX-MEM"][j]
		for _, s := range []string{"MMKP-LR", "MMKP-MDF"} {
			if rate.Rate[s][j] > ex+1e-9 {
				t.Errorf("%s rate %.3f beats EX-MEM %.3f on %d jobs", s, rate.Rate[s][j], ex, j+1)
			}
		}
	}
	var buf bytes.Buffer
	rate.Render(&buf)
	if !strings.Contains(buf.String(), "Scheduling rate") {
		t.Error("rate render empty")
	}
	buf.Reset()
	rate.WriteCSV(&buf)
	if !strings.Contains(buf.String(), "scheduler,jobs,level,rate") {
		t.Error("rate CSV header missing")
	}

	// Table IV: relative energies ≥ 1 (EX-MEM is optimal), and MDF must
	// not be worse than LR overall.
	er, err := NewEnergyReport(res, "EX-MEM")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range er.Schedulers {
		if v := er.AllLevels[s]; v < 1-1e-9 {
			t.Errorf("%s all-levels geomean %.4f below 1", s, v)
		}
	}
	if er.AllLevels["MMKP-MDF"] > er.AllLevels["MMKP-LR"]+1e-9 {
		t.Errorf("MDF %.4f worse than LR %.4f overall", er.AllLevels["MMKP-MDF"], er.AllLevels["MMKP-LR"])
	}
	buf.Reset()
	er.Render(&buf)
	if !strings.Contains(buf.String(), "Table IV") {
		t.Error("energy render empty")
	}
	buf.Reset()
	er.WriteCSV(&buf)
	if !strings.Contains(buf.String(), "geomean_rel_energy") {
		t.Error("energy CSV header missing")
	}

	// Fig. 3: curves sorted, MDF has at least as many optimal cases as
	// LR (paper: 69.6% vs 9.0%).
	sc := NewSCurveReport(er)
	for s, curve := range sc.Curves {
		for i := 1; i < len(curve); i++ {
			if curve[i-1] > curve[i] {
				t.Fatalf("%s curve not sorted", s)
			}
		}
	}
	if sc.OptimalCount["MMKP-MDF"] < sc.OptimalCount["MMKP-LR"] {
		t.Errorf("MDF optimal count %d below LR %d",
			sc.OptimalCount["MMKP-MDF"], sc.OptimalCount["MMKP-LR"])
	}
	buf.Reset()
	sc.Render(&buf)
	sc.WriteCSV(&buf)
	if buf.Len() == 0 {
		t.Error("scurve output empty")
	}

	// Fig. 4: boxplots populated; EX-MEM mean must exceed MDF's on
	// 4-job cases (exponential vs polynomial).
	tr := NewTimingReport(res)
	if tr.Box["EX-MEM"][3].Mean <= tr.Box["MMKP-MDF"][3].Mean {
		t.Errorf("EX-MEM 4-job mean %.6fs not above MDF %.6fs",
			tr.Box["EX-MEM"][3].Mean, tr.Box["MMKP-MDF"][3].Mean)
	}
	buf.Reset()
	tr.Render(&buf)
	tr.WriteCSV(&buf)
	if !strings.Contains(buf.String(), "scheduler,jobs,min") {
		t.Error("timing CSV header missing")
	}

	// Table III census.
	t3 := NewTable3Report(cases)
	if t3.Total != len(cases) {
		t.Error("census total wrong")
	}
	buf.Reset()
	t3.Render(&buf)
	if !strings.Contains(buf.String(), "Table III") {
		t.Error("census render empty")
	}
}

func TestRunErrors(t *testing.T) {
	cases, plat := miniSuite(t)
	if _, err := Run(nil, allSchedulers(), plat, RunOptions{}); err == nil {
		t.Error("empty cases accepted")
	}
	if _, err := Run(cases, nil, plat, RunOptions{}); err == nil {
		t.Error("empty schedulers accepted")
	}
	dup := []sched.Scheduler{core.New(), core.New()}
	if _, err := Run(cases, dup, plat, RunOptions{}); err == nil {
		t.Error("duplicate scheduler names accepted")
	}
}

func TestEnergyReportUnknownBaseline(t *testing.T) {
	cases, plat := miniSuite(t)
	res, err := Run(cases[:4], []sched.Scheduler{core.New()}, plat, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEnergyReport(res, "NOPE"); err == nil {
		t.Error("unknown baseline accepted")
	}
}

func TestProgressCallback(t *testing.T) {
	cases, plat := miniSuite(t)
	cases = cases[:6]
	calls := 0
	_, err := Run(cases, []sched.Scheduler{core.New()}, plat, RunOptions{
		Workers:  1,
		Progress: func(done, total int) { calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(cases) {
		t.Errorf("progress called %d times, want %d", calls, len(cases))
	}
}
