package eval

import (
	"fmt"
	"io"

	"adaptrm/internal/platform"
	"adaptrm/internal/sched"
	"adaptrm/internal/schedule"
	"adaptrm/internal/stats"
	"adaptrm/internal/workload"
)

// AdaptivityReport quantifies how much schedulers actually use the
// mapping-segment machinery the paper introduces: per scheduler, the
// distribution of segment counts, point reconfigurations and mid-run
// suspensions over the successfully scheduled cases, plus the share of
// cases needing any adaptation at all.
type AdaptivityReport struct {
	// Schedulers lists scheduler names in run order.
	Schedulers []string
	// Segments, Reconfigs and Suspensions summarize the per-case
	// metric distributions.
	Segments, Reconfigs, Suspensions map[string]stats.Boxplot
	// AdaptiveShare is the fraction of scheduled cases whose schedule
	// contains at least one reconfiguration or suspension.
	AdaptiveShare map[string]float64
	// Scheduled counts successfully scheduled cases per scheduler.
	Scheduled map[string]int
}

// NewAdaptivityReport re-runs the schedulers on the cases to inspect the
// schedules themselves (the timing harness only keeps aggregates). It is
// intended for moderate case counts.
func NewAdaptivityReport(cases []workload.Case, scheds []sched.Scheduler, plat platform.Platform) (*AdaptivityReport, error) {
	rep := &AdaptivityReport{
		Segments:      map[string]stats.Boxplot{},
		Reconfigs:     map[string]stats.Boxplot{},
		Suspensions:   map[string]stats.Boxplot{},
		AdaptiveShare: map[string]float64{},
		Scheduled:     map[string]int{},
	}
	for _, s := range scheds {
		rep.Schedulers = append(rep.Schedulers, s.Name())
		var segs, recs, susps []float64
		adaptive := 0
		for ci := range cases {
			c := &cases[ci]
			k, err := s.Schedule(c.Jobs, plat, c.T0)
			if err != nil {
				continue
			}
			m := schedule.ComputeMetrics(k, c.Jobs)
			segs = append(segs, float64(m.Segments))
			recs = append(recs, float64(m.Reconfigurations))
			susps = append(susps, float64(m.Suspensions))
			if m.Reconfigurations > 0 || m.Suspensions > 0 {
				adaptive++
			}
		}
		rep.Scheduled[s.Name()] = len(segs)
		rep.Segments[s.Name()] = stats.NewBoxplot(segs)
		rep.Reconfigs[s.Name()] = stats.NewBoxplot(recs)
		rep.Suspensions[s.Name()] = stats.NewBoxplot(susps)
		if len(segs) > 0 {
			rep.AdaptiveShare[s.Name()] = float64(adaptive) / float64(len(segs))
		}
	}
	return rep, nil
}

// Render writes the report as a text table.
func (rep *AdaptivityReport) Render(w io.Writer) {
	fmt.Fprintln(w, "Adaptivity of produced schedules (reconfigurations / suspensions per case)")
	fmt.Fprintf(w, "%-12s %9s %10s %12s %12s %10s\n",
		"scheduler", "scheduled", "segments", "reconfigs", "suspensions", "adaptive")
	for _, s := range rep.Schedulers {
		fmt.Fprintf(w, "%-12s %9d %10.2f %12.2f %12.2f %9.1f%%\n",
			s, rep.Scheduled[s],
			rep.Segments[s].Mean, rep.Reconfigs[s].Mean, rep.Suspensions[s].Mean,
			100*rep.AdaptiveShare[s])
	}
	fmt.Fprintln(w, "(means over successfully scheduled cases; 'adaptive' = any reconfig or suspension)")
}
