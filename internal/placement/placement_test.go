package placement

import (
	"bytes"
	"math"
	"testing"
)

func TestModuloMatchesInlinedSharding(t *testing.T) {
	// The historical fleet sharding was shardOf(dev) = dev % len(shards).
	// Modulo must reproduce it exactly for every shard count the fleet
	// ever normalises to.
	for shards := 1; shards <= 9; shards++ {
		m := Modulo(shards)
		if m.Owners() != shards {
			t.Fatalf("Modulo(%d).Owners() = %d", shards, m.Owners())
		}
		for dev := 0; dev < 100; dev++ {
			if got, want := m.Owner(dev), dev%shards; got != want {
				t.Fatalf("Modulo(%d).Owner(%d) = %d, want %d", shards, dev, got, want)
			}
		}
	}
}

func TestRingRejectsBadConfig(t *testing.T) {
	if _, err := NewRing(RingConfig{Owners: 0}); err == nil {
		t.Fatal("ring with zero owners must be rejected")
	}
	if _, err := NewRing(RingConfig{Owners: -2}); err == nil {
		t.Fatal("ring with negative owners must be rejected")
	}
	if _, err := NewRing(RingConfig{Owners: 1, Replicas: -1}); err == nil {
		t.Fatal("ring with negative replicas must be rejected")
	}
}

func TestRingDeterministicAcrossConstructions(t *testing.T) {
	// Two independently built rings with the same config must agree on
	// every device — this is the property the router and the backend
	// nodes depend on (no coordination beyond sharing the config).
	cfg := RingConfig{Owners: 3, Replicas: 32, Seed: 42}
	a := MustRing(cfg)
	b := MustRing(cfg)
	for dev := 0; dev < 4096; dev++ {
		if a.Owner(dev) != b.Owner(dev) {
			t.Fatalf("ring disagreement on device %d: %d vs %d", dev, a.Owner(dev), b.Owner(dev))
		}
	}
}

func TestRingDumpCanonical(t *testing.T) {
	cfg := RingConfig{Owners: 2, Replicas: 8, Seed: 7}
	a, _ := MustRing(cfg).DumpJSON()
	b, _ := MustRing(cfg).DumpJSON()
	if !bytes.Equal(a, b) {
		t.Fatalf("same config produced different dumps:\n%s\n---\n%s", a, b)
	}
	c, _ := MustRing(RingConfig{Owners: 2, Replicas: 8, Seed: 8}).DumpJSON()
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical dumps")
	}
}

// TestRingDumpGolden pins the exact mapping of a tiny ring so a change
// to the hash function or the sort order cannot slip by unnoticed: any
// such change redistributes live fleets and must be deliberate.
func TestRingDumpGolden(t *testing.T) {
	r := MustRing(RingConfig{Owners: 2, Replicas: 2, Seed: 1})
	got, err := r.DumpJSON()
	if err != nil {
		t.Fatal(err)
	}
	const want = `{
  "owners": 2,
  "replicas": 2,
  "seed": 1,
  "points": [
    {
      "hash": "19438ae6b813b33d",
      "owner": 0
    },
    {
      "hash": "445018e305810b78",
      "owner": 0
    },
    {
      "hash": "bb5ea1e65016bc97",
      "owner": 1
    },
    {
      "hash": "d68deef3b9b4ad69",
      "owner": 1
    }
  ]
}`
	if string(got) != want {
		t.Fatalf("ring dump changed — hash function or ordering is no longer stable:\n%s", got)
	}
}

func TestRingOwnerInRange(t *testing.T) {
	r := MustRing(RingConfig{Owners: 5, Seed: 99})
	for dev := 0; dev < 10000; dev++ {
		o := r.Owner(dev)
		if o < 0 || o >= 5 {
			t.Fatalf("device %d placed on owner %d, out of [0,5)", dev, o)
		}
	}
}

func TestRingBalance(t *testing.T) {
	// With default replicas the load split over many devices should be
	// within a loose factor of even — this is a sanity bound, not a
	// statistical claim.
	const owners, devices = 4, 20000
	r := MustRing(RingConfig{Owners: owners, Seed: 3})
	counts := make([]int, owners)
	for dev := 0; dev < devices; dev++ {
		counts[r.Owner(dev)]++
	}
	mean := float64(devices) / owners
	for o, c := range counts {
		if dev := math.Abs(float64(c)-mean) / mean; dev > 0.5 {
			t.Fatalf("owner %d holds %d of %d devices (%.0f%% off even split %v)",
				o, c, devices, dev*100, counts)
		}
	}
}

func TestRingMinimalRemapOnGrowth(t *testing.T) {
	// Consistent hashing's point: adding one owner moves roughly
	// 1/(owners+1) of the devices, and every move lands on the new
	// owner — no device changes hands between surviving owners.
	const devices = 8192
	small := MustRing(RingConfig{Owners: 3, Seed: 11})
	big := MustRing(RingConfig{Owners: 4, Seed: 11})
	moved := 0
	for dev := 0; dev < devices; dev++ {
		a, b := small.Owner(dev), big.Owner(dev)
		if a == b {
			continue
		}
		moved++
		if b != 3 {
			t.Fatalf("device %d moved between surviving owners %d→%d", dev, a, b)
		}
	}
	if frac := float64(moved) / devices; frac > 0.45 {
		t.Fatalf("growth 3→4 owners remapped %.0f%% of devices; consistent hashing should move ~25%%", frac*100)
	}
}

func TestPlacementInterfaceSatisfied(t *testing.T) {
	var _ Placement = Modulo(1)
	var _ Placement = MustRing(RingConfig{Owners: 1})
}
