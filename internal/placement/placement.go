// Package placement is the device-addressing layer of the fleet: a
// policy mapping device IDs onto owners, extracted from the fleet's
// previously inlined modulo sharding so the same abstraction serves
// both intra-process shard assignment and multi-node routing.
//
// Two policies ship. Modulo is the historical single-node default —
// device i belongs to owner i mod N — and stays byte-identical to the
// fleet behaviour before this package existed. Ring is a deterministic
// consistent-hash ring with seeded virtual nodes: the mapping is a pure
// function of (owners, replicas, seed), so every process that agrees on
// those three numbers agrees on every device's owner, across restarts
// and across machines — which is what lets a routing front-end and its
// backend nodes partition a fleet without coordination. Growing a ring
// by one owner remaps only ~1/owners of the devices (the consistent-
// hashing property), so scale-out does not reshuffle the world.
//
// Placements are immutable after construction and safe for concurrent
// use.
package placement

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Placement maps a device ID onto its owner, a slot in [0, Owners()).
// Implementations must be deterministic, total over non-negative device
// IDs, and goroutine-safe.
type Placement interface {
	// Owner returns the owning slot of a device.
	Owner(device int) int
	// Owners returns the number of owner slots.
	Owners() int
}

// Modulo is the historical fleet sharding: device i → owner i mod N.
// It is the single-node default, pinned byte-identical to the fleet's
// pre-placement behaviour (shardOf(dev) = dev % shards).
type Modulo int

// Owner implements Placement.
func (m Modulo) Owner(device int) int { return device % int(m) }

// Owners implements Placement.
func (m Modulo) Owners() int { return int(m) }

// DefaultReplicas is the virtual-node count per owner when
// RingConfig.Replicas is zero. 64 keeps the expected per-owner load
// imbalance of a ring within a few percent while the ring stays tiny
// (owners × replicas points).
const DefaultReplicas = 64

// RingConfig parameterises a consistent-hash ring. The zero value of
// Replicas and Seed are usable defaults; Owners must be positive.
type RingConfig struct {
	// Owners is the number of owner slots (nodes).
	Owners int
	// Replicas is the virtual-node count per owner; zero means
	// DefaultReplicas. More replicas smooth the load split at the cost
	// of a larger (still tiny) point table.
	Replicas int
	// Seed perturbs every hash on the ring. All parties of a
	// partitioned fleet must share it; changing it reshuffles the whole
	// mapping, so treat it like part of the topology, not a secret.
	Seed uint64
}

// ringPoint is one virtual node on the ring.
type ringPoint struct {
	hash  uint64
	owner int
}

// Ring is a deterministic consistent-hash ring: Owners × Replicas
// seeded virtual nodes sorted on a 64-bit circle, with a device's owner
// being the first point at or after the device's own hash (wrapping).
// The mapping is a pure function of the config — stable across
// restarts, processes and machines.
type Ring struct {
	cfg    RingConfig
	points []ringPoint
}

// NewRing builds a ring from cfg.
func NewRing(cfg RingConfig) (*Ring, error) {
	if cfg.Owners <= 0 {
		return nil, fmt.Errorf("placement: ring needs at least one owner, got %d", cfg.Owners)
	}
	if cfg.Replicas < 0 {
		return nil, fmt.Errorf("placement: negative replica count %d", cfg.Replicas)
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = DefaultReplicas
	}
	r := &Ring{cfg: cfg, points: make([]ringPoint, 0, cfg.Owners*cfg.Replicas)}
	for o := 0; o < cfg.Owners; o++ {
		for v := 0; v < cfg.Replicas; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(cfg.Seed, o, v), owner: o})
		}
	}
	// Sort by hash; break the (astronomically unlikely) hash ties by
	// owner so the ring is a total order and the dump is canonical.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].owner < r.points[j].owner
	})
	return r, nil
}

// MustRing is NewRing for static configs known to be valid; it panics
// on error.
func MustRing(cfg RingConfig) *Ring {
	r, err := NewRing(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// Owner implements Placement: the owner of the first ring point at or
// after the device's hash, wrapping past the top of the circle.
func (r *Ring) Owner(device int) int {
	h := deviceHash(r.cfg.Seed, device)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].owner
}

// Owners implements Placement.
func (r *Ring) Owners() int { return r.cfg.Owners }

// Config returns the ring's (normalised) configuration.
func (r *Ring) Config() RingConfig { return r.cfg }

// ringDump is the canonical wire form of a ring (see DumpJSON).
type ringDump struct {
	Owners   int             `json:"owners"`
	Replicas int             `json:"replicas"`
	Seed     uint64          `json:"seed"`
	Points   []ringPointDump `json:"points"`
}

type ringPointDump struct {
	Hash  string `json:"hash"` // %016x, so the dump is diff-stable
	Owner int    `json:"owner"`
}

// DumpJSON serialises the ring canonically: config plus every virtual
// node in circle order, hashes as fixed-width hex. Two rings built from
// the same config dump byte-identically, which is what the stability
// tests (and operators diffing topologies across nodes) rely on.
func (r *Ring) DumpJSON() ([]byte, error) {
	d := ringDump{Owners: r.cfg.Owners, Replicas: r.cfg.Replicas, Seed: r.cfg.Seed,
		Points: make([]ringPointDump, len(r.points))}
	for i, p := range r.points {
		d.Points[i] = ringPointDump{Hash: fmt.Sprintf("%016x", p.hash), Owner: p.owner}
	}
	return json.MarshalIndent(d, "", "  ")
}

// mix64 is the splitmix64 finalizer: a full-avalanche 64-bit mixer, so
// consecutive small integers (device IDs, owner/replica pairs) spread
// uniformly over the circle.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// pointHash places virtual node (owner, replica) on the circle. The
// domain constant separates point hashes from device hashes so an
// owner index never collides with the device of the same integer.
func pointHash(seed uint64, owner, replica int) uint64 {
	return mix64(mix64(seed^0x9e3779b97f4a7c15) ^ uint64(owner)<<32 ^ uint64(replica))
}

// deviceHash places a device key on the circle.
func deviceHash(seed uint64, device int) uint64 {
	return mix64(mix64(seed^0xd1b54a32d192ed03) ^ uint64(device))
}
