package fleet

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"adaptrm/internal/api"
	"adaptrm/internal/core"
	"adaptrm/internal/job"
	"adaptrm/internal/motiv"
	"adaptrm/internal/platform"
	"adaptrm/internal/sched"
	"adaptrm/internal/schedule"
	"adaptrm/internal/workload"
)

// collectWatch drains a watch channel into a slice until it closes,
// returning a wait function.
func collectWatch(ch <-chan api.Event) (*[]api.Event, func()) {
	var evs []api.Event
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range ch {
			evs = append(evs, ev)
		}
	}()
	return &evs, func() { <-done }
}

// checkDeviceSeqs asserts per-device sequence numbers are strictly
// monotone and gap-free (Lagged markers account for their gaps).
func checkDeviceSeqs(t *testing.T, evs []api.Event) {
	t.Helper()
	next := map[int]uint64{}
	for i, ev := range evs {
		if ev.Type == api.EventLagged {
			if ev.Device >= 0 && ev.Seq > 0 {
				next[ev.Device] = ev.Seq + uint64(ev.Dropped)
			} else {
				next = nil // aggregated marker: continuity unknowable
				break
			}
			continue
		}
		if want, seen := next[ev.Device]; seen && ev.Seq != want {
			t.Fatalf("event %d: device %d seq %d, want %d", i, ev.Device, ev.Seq, want)
		}
		next[ev.Device] = ev.Seq + 1
	}
}

// TestWatchLifecycle subscribes to one device and replays the
// motivational scenario plus a cancellation: the stream must carry the
// full story, in order, gap-free, and end when the fleet closes.
func TestWatchLifecycle(t *testing.T) {
	f := newTestFleet(t, 2, Options{})
	svc := f.Service()
	dev := 0
	ch, err := svc.Watch(ctxBG, api.WatchRequest{Device: &dev})
	if err != nil {
		t.Fatal(err)
	}
	evs, wait := collectWatch(ch)

	if r, err := svc.Submit(ctxBG, api.SubmitRequest{Device: 0, At: 0, App: "lambda1", Deadline: 9}); err != nil || !r.Accepted {
		t.Fatalf("λ1: %+v %v", r, err)
	}
	r2, err := svc.Submit(ctxBG, api.SubmitRequest{Device: 0, At: 1, App: "lambda2", Deadline: 5})
	if err != nil || !r2.Accepted {
		t.Fatalf("λ2: %+v %v", r2, err)
	}
	if _, err := svc.Cancel(ctxBG, api.CancelRequest{Device: 0, JobID: r2.JobID}); err != nil {
		t.Fatal(err)
	}
	// Traffic on the other device must not leak into this stream.
	if _, err := svc.Submit(ctxBG, api.SubmitRequest{Device: 1, At: 0, App: "lambda1", Deadline: 9}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	wait()

	checkDeviceSeqs(t, *evs)
	var types []api.EventType
	for _, ev := range *evs {
		if ev.Device != 0 {
			t.Fatalf("device filter leaked event %+v", ev)
		}
		types = append(types, ev.Type)
	}
	want := []api.EventType{
		api.EventJobAdmitted, api.EventScheduleChanged, // λ1 in
		api.EventJobStarted,                            // λ1 runs while advancing to t=1
		api.EventJobAdmitted, api.EventScheduleChanged, // λ2 in
		api.EventJobCancelled, api.EventScheduleChanged, // λ2 out
		api.EventJobCompleted, api.EventClockAdvanced, // λ1 (started above) drains at Close
	}
	if len(types) != len(want) {
		t.Fatalf("stream = %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("stream[%d] = %v, want %v (stream %v)", i, types[i], want[i], types)
		}
	}
}

// TestWatchAllDevices: a filterless subscription sees every device's
// events, each device's sub-stream still in sequence order.
func TestWatchAllDevices(t *testing.T) {
	f := newTestFleet(t, 3, Options{Shards: 2})
	svc := f.Service()
	ch, err := svc.Watch(ctxBG, api.WatchRequest{})
	if err != nil {
		t.Fatal(err)
	}
	evs, wait := collectWatch(ch)
	for d := 0; d < 3; d++ {
		if _, err := svc.Submit(ctxBG, api.SubmitRequest{Device: d, At: 0, App: "lambda1", Deadline: 9}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	wait()
	checkDeviceSeqs(t, *evs)
	perDev := map[int]int{}
	for _, ev := range *evs {
		perDev[ev.Device]++
	}
	for d := 0; d < 3; d++ {
		// Admitted, schedule, started, completed, drain clock advance.
		if perDev[d] != 5 {
			t.Errorf("device %d: %d events, want 5 (%+v)", d, perDev[d], *evs)
		}
	}
	// FromSeq without a device filter is rejected: sequence numbers are
	// per-device coordinates.
	if _, err := svc.Watch(ctxBG, api.WatchRequest{FromSeq: 1}); !errors.Is(err, api.ErrBadRequest) {
		t.Errorf("filterless FromSeq: %v, want ErrBadRequest", err)
	}
	if _, err := svc.Watch(ctxBG, api.WatchRequest{}); !errors.Is(err, api.ErrClosed) {
		t.Errorf("watch after close: %v, want ErrClosed", err)
	}
	nine := 9
	f2 := newTestFleet(t, 1, Options{})
	defer f2.Close()
	if _, err := f2.Service().Watch(ctxBG, api.WatchRequest{Device: &nine}); !errors.Is(err, api.ErrUnknownDevice) {
		t.Errorf("watch unknown device: %v, want ErrUnknownDevice", err)
	}
}

// TestWatchSlowConsumerLags: a subscriber with a 2-event buffer that
// never reads while traffic flows must not block the shard worker —
// the traffic completes — and must observe an EventLagged marker whose
// Dropped count closes the books against the device's full stream.
func TestWatchSlowConsumerLags(t *testing.T) {
	f := newTestFleet(t, 1, Options{})
	svc := f.Service()
	dev := 0
	ch, err := svc.Watch(ctxBG, api.WatchRequest{Device: &dev, Buffer: 2})
	if err != nil {
		t.Fatal(err)
	}
	// No reader yet: the pump takes one event in flight, the ring holds
	// two more, everything else must fold into a Lagged marker.
	for i := 0; i < 6; i++ {
		if _, err := svc.Submit(ctxBG, api.SubmitRequest{Device: 0, At: 0, App: "lambda1", Deadline: 9}); err != nil && !errors.Is(err, api.ErrInfeasible) {
			t.Fatal(err)
		}
	}
	// The worker was demonstrably not blocked: all six submissions got
	// their replies with the watcher asleep. Now drain.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	evs, wait := collectWatch(ch)
	wait()
	var lagged, dropped, received int
	for _, ev := range *evs {
		if ev.Type == api.EventLagged {
			lagged++
			dropped += ev.Dropped
			if ev.Device != 0 || ev.Seq == 0 {
				t.Errorf("single-device lag marker lost its coordinates: %+v", ev)
			}
		} else {
			received++
		}
	}
	if lagged == 0 {
		t.Fatalf("no Lagged marker in %+v", *evs)
	}
	// Received + dropped must cover the device's whole stream.
	var total uint64
	for _, ev := range *evs {
		if ev.Seq > total {
			total = ev.Seq
		}
	}
	d := f.devices[0]
	d.mu.Lock()
	emitted := d.history.n
	d.mu.Unlock()
	if received+dropped != emitted {
		t.Errorf("received %d + dropped %d ≠ emitted %d (%+v)", received, dropped, emitted, *evs)
	}
	checkDeviceSeqs(t, *evs)
}

// TestWatchResume: a watcher that disconnects mid-stream and resumes
// from its last seen sequence number receives exactly the missed tail —
// the union of both connections is byte-identical to an uninterrupted
// watcher's log.
func TestWatchResume(t *testing.T) {
	f := newTestFleet(t, 1, Options{})
	svc := f.Service()
	dev := 0
	full, err := svc.Watch(ctxBG, api.WatchRequest{Device: &dev})
	if err != nil {
		t.Fatal(err)
	}
	fullLog, waitFull := collectWatch(full)

	ctx1, cancel1 := context.WithCancel(ctxBG)
	first, err := svc.Watch(ctx1, api.WatchRequest{Device: &dev})
	if err != nil {
		t.Fatal(err)
	}
	if r, err := svc.Submit(ctxBG, api.SubmitRequest{Device: 0, At: 0, App: "lambda1", Deadline: 9}); err != nil || !r.Accepted {
		t.Fatalf("λ1: %v", err)
	}
	// Read the first connection up to the admission, then drop it.
	var got []api.Event
	for ev := range first {
		got = append(got, ev)
		if ev.Type == api.EventScheduleChanged {
			break
		}
	}
	cancel1()
	if len(got) == 0 {
		t.Fatal("first connection saw nothing")
	}
	last := got[len(got)-1].Seq

	// More traffic while disconnected.
	if r, err := svc.Submit(ctxBG, api.SubmitRequest{Device: 0, At: 1, App: "lambda2", Deadline: 5}); err != nil || !r.Accepted {
		t.Fatalf("λ2: %v", err)
	}

	// Reconnect from the gap.
	second, err := svc.Watch(ctxBG, api.WatchRequest{Device: &dev, FromSeq: last + 1})
	if err != nil {
		t.Fatal(err)
	}
	tail, waitTail := collectWatch(second)

	if _, err := svc.Advance(ctxBG, api.AdvanceRequest{Device: 0, To: 20}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	waitFull()
	waitTail()

	union := append(append([]api.Event{}, got...), *tail...)
	if len(union) != len(*fullLog) {
		t.Fatalf("union has %d events, uninterrupted watcher %d:\nunion %+v\nfull  %+v",
			len(union), len(*fullLog), union, *fullLog)
	}
	for i := range union {
		if union[i] != (*fullLog)[i] {
			t.Fatalf("union[%d] = %+v ≠ full[%d] = %+v", i, union[i], i, (*fullLog)[i])
		}
	}
	checkDeviceSeqs(t, union)
}

// TestWatchResumeBeyondHistory: resuming from a sequence number the
// retention window no longer covers opens the stream with an explicit
// Lagged marker for the evicted range, then continues gap-free.
func TestWatchResumeBeyondHistory(t *testing.T) {
	f := newTestFleet(t, 1, Options{EventHistory: 3})
	svc := f.Service()
	for i := 0; i < 4; i++ {
		if _, err := svc.Submit(ctxBG, api.SubmitRequest{Device: 0, At: 0, App: "lambda1", Deadline: 9}); err != nil && !errors.Is(err, api.ErrInfeasible) {
			t.Fatal(err)
		}
	}
	dev := 0
	ch, err := svc.Watch(ctxBG, api.WatchRequest{Device: &dev, FromSeq: 1})
	if err != nil {
		t.Fatal(err)
	}
	evs, wait := collectWatch(ch)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	wait()
	if len(*evs) == 0 || (*evs)[0].Type != api.EventLagged {
		t.Fatalf("stream does not open with Lagged: %+v", *evs)
	}
	marker := (*evs)[0]
	if marker.Seq != 1 || marker.Dropped < 1 {
		t.Fatalf("marker %+v, want Seq 1 and a positive Dropped", marker)
	}
	if len(*evs) < 2 || (*evs)[1].Seq != marker.Seq+uint64(marker.Dropped) {
		t.Fatalf("stream not contiguous after marker: %+v", *evs)
	}
	checkDeviceSeqs(t, *evs)
}

// TestWatchBufferClamp: the subscriber buffer is client-supplied over
// the network, so it must never turn into an arbitrarily large
// allocation — it is capped, and non-positive values take the fleet
// default.
func TestWatchBufferClamp(t *testing.T) {
	cases := []struct{ requested, fleetDefault, want int }{
		{0, 256, 256},
		{-5, 64, 64},
		{100, 256, 100},
		{maxWatchBuffer, 256, maxWatchBuffer},
		{maxWatchBuffer + 1, 256, maxWatchBuffer},
		{1 << 30, 256, maxWatchBuffer},
	}
	for _, c := range cases {
		if got := clampBuffer(c.requested, c.fleetDefault); got != c.want {
			t.Errorf("clampBuffer(%d, %d) = %d, want %d", c.requested, c.fleetDefault, got, c.want)
		}
	}
	// End to end: an absurd request must subscribe instantly (no 8 GiB
	// ring) and still stream.
	f := newTestFleet(t, 1, Options{})
	dev := 0
	ch, err := f.Watch(ctxBG, api.WatchRequest{Device: &dev, Buffer: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	evs, wait := collectWatch(ch)
	if _, err := f.Service().Submit(ctxBG, api.SubmitRequest{Device: 0, At: 0, App: "lambda1", Deadline: 9}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	wait()
	if len(*evs) == 0 {
		t.Error("clamped subscription streamed nothing")
	}
}

// signallingScheduler announces every solve entry on entered, then
// waits for release — letting a test wedge a shard worker and line up
// mailbox contents deterministically.
func signallingScheduler(entered chan<- struct{}, release <-chan struct{}) sched.Scheduler {
	inner := core.New()
	return sched.Func{ID: "signalling", F: func(jobs job.Set, plat platform.Platform, t float64) (*schedule.Schedule, error) {
		entered <- struct{}{}
		<-release
		return inner.Schedule(jobs, plat, t)
	}}
}

// TestBatchWindowCancelBarrier pins the submit/cancel ordering under
// worker-side coalescing: a Cancel queued behind a submit that is still
// eligible for the same coalescing window must act as a barrier — the
// pending submit is decided first, then the cancel — so the cancel
// deterministically hits the job the submit admitted.
func TestBatchWindowCancelBarrier(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	devs := []DeviceConfig{{
		Platform:  motiv.Platform(),
		Library:   motiv.Library(),
		Scheduler: signallingScheduler(entered, release),
	}}
	f, err := New(devs, Options{Shards: 1, BatchWindow: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Wedge the worker: a submit whose deadline is inside the window
	// executes directly (no coalescing) and stalls in its solve. λ1
	// cannot finish by t=0.4, so its verdict is a deterministic
	// rejection and job ids start at 1 for the next submit.
	if err := f.post(ctx, 0, op{kind: opSubmit, at: 0, app: "lambda1", deadline: 0.4}); err != nil {
		t.Fatal(err)
	}
	<-entered
	// While the worker is wedged, line up: a coalescible submit (S),
	// the cancel of the job id S will be assigned, and another
	// coalescible submit. Without the barrier the two submits would
	// batch and the cancel would run before its job exists.
	if err := f.post(ctx, 0, op{kind: opSubmit, at: 0.1, app: "lambda1", deadline: 30}); err != nil {
		t.Fatal(err)
	}
	if err := f.post(ctx, 0, op{kind: opCancel, jobID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := f.post(ctx, 0, op{kind: opSubmit, at: 0.2, app: "lambda2", deadline: 30}); err != nil {
		t.Fatal(err)
	}
	close(release)
	go func() {
		for range entered { // release every later solve immediately
		}
	}()
	// Close surfaces any recorded per-op error — a misordered cancel
	// would report ErrNoSuchJob here.
	if err := f.Close(); err != nil {
		t.Fatalf("interleaved submit/cancel resolved nondeterministically: %v", err)
	}
	close(entered)
	s := f.Stats()
	if s.Submitted != 3 || s.Accepted != 2 || s.Rejected != 1 || s.Cancelled != 1 || s.Completed != 1 {
		t.Fatalf("stats = %+v, want 3 submitted, 2 accepted, 1 rejected, 1 cancelled, 1 completed", s)
	}
}

// TestBatchWindowSubmitCancelRace floods one device with concurrent
// submits and cancels of every admitted job under an active coalescing
// window: every cancel issued after its admission reply must succeed,
// and the lifecycle ledger must close exactly. Run under -race in CI.
func TestBatchWindowSubmitCancelRace(t *testing.T) {
	f := newTestFleet(t, 1, Options{Shards: 1, BatchWindow: 1})
	svc := f.Service()
	const n = 40
	ids := make(chan int, n)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer close(ids)
		for i := 0; i < n; i++ {
			r, err := svc.Submit(ctxBG, api.SubmitRequest{Device: 0, At: 0, App: "lambda1", Deadline: 1000})
			switch {
			case err == nil && r.Accepted:
				ids <- r.JobID
			case errors.Is(err, api.ErrInfeasible):
			default:
				t.Errorf("submit %d: %v", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for id := range ids {
			if _, err := svc.Cancel(ctxBG, api.CancelRequest{Device: 0, JobID: id}); err != nil {
				t.Errorf("cancel %d: %v", id, err)
				return
			}
		}
	}()
	wg.Wait()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	s := f.Stats()
	if s.Submitted != s.Accepted+s.Rejected {
		t.Errorf("submitted %d ≠ accepted %d + rejected %d", s.Submitted, s.Accepted, s.Rejected)
	}
	if s.Accepted != s.Completed+s.Cancelled {
		t.Errorf("accepted %d ≠ completed %d + cancelled %d after close", s.Accepted, s.Completed, s.Cancelled)
	}
	if s.Accepted == 0 {
		t.Error("race exercise admitted nothing")
	}
}

// eventCounters folds a device's event sub-stream into the admission
// counters it implies.
type eventCounters struct {
	submitted, accepted, rejected, completed, cancelled, missed int
}

// jobSpan is a job's executed extent reconstructed from events.
type jobSpan struct{ start, end float64 }

// replayEvents reconstructs, per device, the admission counters and the
// executed span of every job from an event log — the replay half of the
// watch-equivalence contract.
func replayEvents(t *testing.T, evs []api.Event) (map[int]*eventCounters, map[int]map[int]*jobSpan) {
	t.Helper()
	counters := map[int]*eventCounters{}
	spans := map[int]map[int]*jobSpan{}
	for _, ev := range evs {
		if ev.Type == api.EventLagged {
			t.Fatalf("equivalence log lagged: %+v", ev)
		}
		c := counters[ev.Device]
		if c == nil {
			c = &eventCounters{}
			counters[ev.Device] = c
			spans[ev.Device] = map[int]*jobSpan{}
		}
		switch ev.Type {
		case api.EventJobAdmitted:
			c.submitted++
			c.accepted++
		case api.EventJobRejected:
			c.submitted++
			c.rejected++
		case api.EventJobStarted:
			spans[ev.Device][ev.JobID] = &jobSpan{start: ev.At, end: math.NaN()}
		case api.EventJobCompleted:
			c.completed++
			if ev.Missed {
				c.missed++
			}
			if sp := spans[ev.Device][ev.JobID]; sp != nil {
				sp.end = ev.At
			} else {
				t.Fatalf("device %d job %d completed without starting", ev.Device, ev.JobID)
			}
		case api.EventJobCancelled:
			c.cancelled++
		}
	}
	return counters, spans
}

// timelineSpans extracts each job's executed extent from a recorded
// timeline.
func timelineSpans(tl []schedule.Segment) map[int]*jobSpan {
	spans := map[int]*jobSpan{}
	for _, seg := range tl {
		for _, p := range seg.Placements {
			sp := spans[p.JobID]
			if sp == nil {
				spans[p.JobID] = &jobSpan{start: seg.Start, end: seg.End}
				continue
			}
			if seg.Start < sp.start {
				sp.start = seg.Start
			}
			if seg.End > sp.end {
				sp.end = seg.End
			}
		}
	}
	return spans
}

// TestWatchReplayEquivalence is the in-process half of the acceptance
// contract: for a seeded FleetTrace (with cancellations mixed in), the
// event log received by a fleet-wide watcher reconstructs the admission
// statistics and every job's executed extent byte-identically to the
// managers' own reports.
func TestWatchReplayEquivalence(t *testing.T) {
	const devices = 3
	f := newTestFleet(t, devices, Options{Shards: 2})
	svc := f.Service()
	ch, err := svc.Watch(ctxBG, api.WatchRequest{Buffer: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	evs, wait := collectWatch(ch)

	trace, err := workload.FleetTrace(motiv.Library(), workload.FleetTraceParams{
		Devices: devices, Rate: 0.25, RateSpread: 0.5, Horizon: 60, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	var admitted []int // (device, id) pairs flattened as device*1e6+id
	for i, r := range trace {
		res, err := svc.Submit(ctxBG, api.SubmitRequest{Device: r.Device, At: r.At, App: r.App, Deadline: r.Deadline})
		if err != nil && !errors.Is(err, api.ErrInfeasible) {
			t.Fatalf("trace %d: %v", i, err)
		}
		if res.Accepted {
			admitted = append(admitted, r.Device*1e6+res.JobID)
		}
		// Sprinkle cancellations over the live set.
		if i%7 == 3 && len(admitted) > 0 {
			key := admitted[len(admitted)-1]
			admitted = admitted[:len(admitted)-1]
			if _, err := svc.Cancel(ctxBG, api.CancelRequest{Device: key / 1e6, JobID: key % 1e6}); err != nil && !errors.Is(err, api.ErrUnknownJob) {
				t.Fatalf("cancel: %v", err)
			}
		}
	}

	// Snapshot the per-device ground truth before Close's drain, then
	// close (draining emits the remaining completions into the log) and
	// compare against post-drain truth.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	wait()
	counters, spans := replayEvents(t, *evs)
	for d := 0; d < devices; d++ {
		ds, err := f.DeviceStats(d)
		if err != nil {
			t.Fatal(err)
		}
		c := counters[d]
		if c == nil {
			c = &eventCounters{}
		}
		if c.submitted != ds.Submitted || c.accepted != ds.Accepted || c.rejected != ds.Rejected ||
			c.completed != ds.Completed || c.cancelled != ds.Cancelled || c.missed != ds.DeadlineMisses {
			t.Errorf("device %d: replayed counters %+v ≠ manager stats %+v", d, *c, ds)
		}
		tl, err := f.DeviceTimeline(d)
		if err != nil {
			t.Fatal(err)
		}
		truth := timelineSpans(tl)
		replayed := spans[d]
		for id, sp := range replayed {
			if math.IsNaN(sp.end) {
				// Started but cancelled before finishing: the timeline may
				// legitimately end earlier; only the start is pinned.
				tsp := truth[id]
				if tsp == nil || tsp.start != sp.start {
					t.Errorf("device %d job %d: replayed start %v, timeline %+v", d, id, sp.start, tsp)
				}
				continue
			}
			tsp := truth[id]
			if tsp == nil {
				t.Errorf("device %d job %d: replayed span %+v, absent from timeline", d, id, *sp)
				continue
			}
			if tsp.start != sp.start || tsp.end != sp.end {
				t.Errorf("device %d job %d: replayed span [%v, %v] ≠ timeline [%v, %v]",
					d, id, sp.start, sp.end, tsp.start, tsp.end)
			}
		}
		for id := range truth {
			if replayed[id] == nil {
				t.Errorf("device %d job %d executed but never appeared in the event log", d, id)
			}
		}
	}
	checkDeviceSeqs(t, *evs)
}
