package fleet

import (
	"testing"

	"adaptrm/internal/placement"
)

// TestDefaultPlacementIsModulo pins the refactor: with Options.Placement
// unset, device→shard assignment must stay the historical dev % shards,
// byte-identical to the fleet before the placement layer existed.
func TestDefaultPlacementIsModulo(t *testing.T) {
	f := newTestFleet(t, 7, Options{Shards: 3})
	defer f.Close()
	if got := len(f.shards); got != 3 {
		t.Fatalf("shard count = %d, want 3", got)
	}
	for dev := 0; dev < 7; dev++ {
		if got, want := f.shardOf(dev), f.shards[dev%3]; got != want {
			t.Fatalf("device %d mapped off the historical modulo shard", dev)
		}
	}
}

// TestCustomPlacementRoutesShards runs the same trace under the modulo
// default and under a ring placement: shard assignment changes, device
// behaviour must not — placement only picks which worker owns the
// mailbox, never what the device computes.
func TestCustomPlacementRoutesShards(t *testing.T) {
	ring := placement.MustRing(placement.RingConfig{Owners: 3, Seed: 17})
	run := func(opt Options) Stats {
		const n = 6
		f := newTestFleet(t, n, opt)
		for d := 0; d < n; d++ {
			if err := f.Submit(d, 0, "lambda1", 9); err != nil {
				t.Fatal(err)
			}
			if err := f.Submit(d, 1, "lambda2", 5); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return deterministic(f.Stats())
	}
	base := run(Options{Shards: 3})
	ringed := run(Options{Placement: ring})
	if base != ringed {
		t.Fatalf("ring placement changed fleet behaviour:\nmodulo: %+v\nring:   %+v", base, ringed)
	}
}

// TestPlacementOwnsShardCount checks a placement's Owners() defines the
// worker count, overriding Options.Shards.
func TestPlacementOwnsShardCount(t *testing.T) {
	f := newTestFleet(t, 4, Options{Shards: 9, Placement: placement.Modulo(2)})
	defer f.Close()
	if got := len(f.shards); got != 2 {
		t.Fatalf("shard count = %d, want the placement's 2", got)
	}
}
