package fleet

import (
	"context"
	"errors"
	"fmt"
	"time"

	"adaptrm/internal/api"
	"adaptrm/internal/control"
	"adaptrm/internal/rm"
)

// Service is the fleet's native implementation of the transport-agnostic
// api.Service protocol: every mailbox operation carries a reply channel,
// so callers receive the per-request outcome — job id, admission
// verdict, completions — instead of the fire-and-forget legacy path.
// Context cancellation is honoured both while blocked on a full mailbox
// (backpressure, api.ErrOverloaded) and while waiting for the device's
// worker to reply.
type Service struct {
	f *Fleet
}

var (
	_ api.Service      = (*Service)(nil)
	_ api.BatchService = (*Service)(nil)
)

// Service returns the api.Service view of the fleet. The view shares
// the fleet's shards and devices; mixing Service calls with the legacy
// methods is safe, and per-device FIFO order spans both.
func (f *Fleet) Service() *Service { return &Service{f: f} }

// do posts one operation with a reply channel and waits for its
// outcome, mapping fleet and manager errors onto the api taxonomy.
func (s *Service) do(ctx context.Context, dev int, o op) (opReply, error) {
	o.reply = make(chan opReply, 1)
	switch err := s.f.post(ctx, dev, o); {
	case err == nil:
	case errors.Is(err, errOutOfRange):
		return opReply{}, fmt.Errorf("%w: %w", api.ErrUnknownDevice, err)
	case errors.Is(err, errClosed):
		return opReply{}, fmt.Errorf("%w: %w", api.ErrClosed, err)
	case errors.Is(err, errMailboxBlocked):
		// The send waited on a full mailbox for the whole context
		// lifetime: backpressure. The context error rides along so
		// callers can also match context.Canceled / DeadlineExceeded.
		return opReply{}, fmt.Errorf("%w: device %d: %w", api.ErrOverloaded, dev, err)
	default:
		// The context was already dead before the send was attempted —
		// the caller's problem, not overload.
		return opReply{}, fmt.Errorf("fleet: device %d: %w", dev, err)
	}
	select {
	case r := <-o.reply:
		return r, mapManagerError(r.err)
	case <-ctx.Done():
		// The op is already enqueued and will still execute (per-device
		// FIFO order must not develop holes); only the caller gives up.
		return opReply{}, fmt.Errorf("fleet: abandoned waiting for device %d: %w", dev, ctx.Err())
	}
}

// mapManagerError lifts rm sentinels onto the api taxonomy.
func mapManagerError(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, rm.ErrUnknownApp):
		return fmt.Errorf("%w: %w", api.ErrUnknownApp, err)
	case errors.Is(err, rm.ErrBadDeadline), errors.Is(err, rm.ErrTimeBackwards):
		return fmt.Errorf("%w: %w", api.ErrBadRequest, err)
	case errors.Is(err, rm.ErrNoSuchJob):
		return fmt.Errorf("%w: %w", api.ErrUnknownJob, err)
	default:
		return fmt.Errorf("%w: %w", api.ErrInternal, err)
	}
}

// completions converts manager completions to their wire form.
func completions(done []rm.Completion) []api.Completion {
	if len(done) == 0 {
		return nil
	}
	out := make([]api.Completion, len(done))
	for i, c := range done {
		out[i] = api.Completion{JobID: c.JobID, At: c.At, Missed: c.Missed}
	}
	return out
}

// shed rejects an admission request early when the degradation
// controller holds the fleet in ModeShedding: the request is refused
// with api.ErrOverloaded before any mailbox slot or scheduler
// activation is spent. Only valid device indices shed (an unknown
// device keeps its taxonomy error), and only submit paths — advances
// and cancels always run so admitted work keeps draining.
func (s *Service) shed(dev int) error {
	f := s.f
	if f.ctl == nil || dev < 0 || dev >= len(f.devices) {
		return nil
	}
	if f.limits.Limits().Mode != control.ModeShedding {
		return nil
	}
	f.ctl.NoteShed()
	return api.Errf(api.ErrOverloaded, "device %d: shedding load", dev)
}

// observeLatency feeds one admission's service latency back to the
// degradation controller (no-op without one).
func (s *Service) observeLatency(start time.Time) {
	if s.f.ctl != nil {
		s.f.ctl.ObserveLatency(time.Since(start))
	}
}

// Submit implements api.Service: it negotiates admission of one request
// and returns the decision. A rejection returns the result (carrying
// any completions observed while the device advanced) together with
// api.ErrInfeasible. In ModeShedding the request is refused with
// api.ErrOverloaded before a scheduler activation is spent.
func (s *Service) Submit(ctx context.Context, req api.SubmitRequest) (api.SubmitResult, error) {
	if err := s.shed(req.Device); err != nil {
		return api.SubmitResult{}, err
	}
	start := time.Now()
	r, err := s.do(ctx, req.Device, op{kind: opSubmit, at: req.At, app: req.App, deadline: req.Deadline})
	s.observeLatency(start)
	res := api.SubmitResult{JobID: r.jobID, Accepted: r.accepted, Completions: completions(r.done)}
	if err != nil {
		return res, err
	}
	if !r.accepted {
		return res, api.Errf(api.ErrInfeasible, "device %d rejected %q (arrival %v, deadline %v)",
			req.Device, req.App, req.At, req.Deadline)
	}
	return res, nil
}

// SubmitBatch implements api.BatchService: all items arrive at req.At
// and are decided in one manager activation when jointly feasible (the
// fast path of rm.Manager.SubmitBatch), with verdicts identical to
// sequential submission. Per-item outcomes — admission, rejection,
// unknown application, invalid deadline — are verdicts, never the call
// error; the call error is reserved for whole-batch failures (unknown
// device, overload, closed, time moving backwards).
func (s *Service) SubmitBatch(ctx context.Context, req api.BatchSubmitRequest) (api.BatchSubmitResult, error) {
	// The empty batch is a no-op: nothing to decide, nothing enqueued,
	// nothing charged — an empty result, not an error.
	if len(req.Items) == 0 {
		return api.BatchSubmitResult{}, nil
	}
	if err := s.shed(req.Device); err != nil {
		return api.BatchSubmitResult{}, err
	}
	items := make([]rm.Request, len(req.Items))
	for i, it := range req.Items {
		items[i] = rm.Request{App: it.App, Deadline: it.Deadline}
	}
	start := time.Now()
	r, err := s.do(ctx, req.Device, op{kind: opBatch, at: req.At, items: items})
	s.observeLatency(start)
	res := api.BatchSubmitResult{Completions: completions(r.done)}
	if err != nil {
		return res, err
	}
	res.Verdicts = make([]api.BatchVerdict, len(r.verdicts))
	for i, v := range r.verdicts {
		res.Verdicts[i] = api.BatchVerdict{JobID: v.JobID, Accepted: v.Accepted, Error: verdictError(v)}
	}
	return res, nil
}

// verdictError folds one rm verdict into the wire-form taxonomy error:
// nil for admissions, CodeInfeasible for clean rejections, and the
// mapped manager error otherwise.
func verdictError(v rm.Verdict) *api.Error {
	switch {
	case v.Accepted:
		return nil
	case v.Err == nil:
		return api.FromCode(api.CodeInfeasible, "no feasible schedule for the request")
	default:
		return api.FromCode(api.ErrorCode(mapManagerError(v.Err)), v.Err.Error())
	}
}

// Advance implements api.Service: it moves a device's virtual clock
// forward and returns the completions that produced.
func (s *Service) Advance(ctx context.Context, req api.AdvanceRequest) (api.AdvanceResult, error) {
	r, err := s.do(ctx, req.Device, op{kind: opAdvance, at: req.To})
	return api.AdvanceResult{Completions: completions(r.done)}, err
}

// Cancel implements api.Service: it aborts an active job, reclaiming
// its resources for the remaining jobs.
func (s *Service) Cancel(ctx context.Context, req api.CancelRequest) (api.CancelResult, error) {
	_, err := s.do(ctx, req.Device, op{kind: opCancel, jobID: req.JobID})
	return api.CancelResult{Cancelled: err == nil}, err
}

// Stats implements api.Service: fleet-wide when req.Device is nil,
// otherwise for the single addressed device. Snapshots are taken under
// the device locks, not through the mailboxes, so they may be observed
// mid-traffic exactly like Fleet.Stats.
func (s *Service) Stats(ctx context.Context, req api.StatsRequest) (api.StatsResult, error) {
	if err := ctx.Err(); err != nil {
		return api.StatsResult{}, err
	}
	if req.Device != nil {
		ds, err := s.f.DeviceStats(*req.Device)
		if err != nil {
			return api.StatsResult{}, fmt.Errorf("%w: %w", api.ErrUnknownDevice, err)
		}
		return api.StatsResult{
			Devices:        1,
			Submitted:      ds.Submitted,
			Accepted:       ds.Accepted,
			Rejected:       ds.Rejected,
			Completed:      ds.Completed,
			DeadlineMisses: ds.DeadlineMisses,
			Cancelled:      ds.Cancelled,
			Energy:         ds.Energy,
			Activations:    ds.Activations,
			SchedulingTime: ds.SchedulingTime,
			ScheduleSwaps:  ds.Swapped,
		}, nil
	}
	fs := s.f.Stats()
	return api.StatsResult{
		Devices:           fs.Devices,
		Shards:            fs.Shards,
		Submitted:         fs.Submitted,
		Accepted:          fs.Accepted,
		Rejected:          fs.Rejected,
		Completed:         fs.Completed,
		DeadlineMisses:    fs.DeadlineMisses,
		Cancelled:         fs.Cancelled,
		Energy:            fs.Energy,
		Activations:       fs.Activations,
		SchedulingTime:    fs.SchedulingTime,
		CacheHits:         fs.CacheHits,
		CacheMisses:       fs.CacheMisses,
		CacheStale:        fs.CacheStale,
		CacheEvictions:    fs.CacheEvictions,
		CacheRepacks:      fs.CacheRepacks,
		CacheSharedHits:   fs.CacheSharedHits,
		CachePromotions:   fs.CachePromotions,
		ScheduleSwaps:     fs.Swaps,
		RefineSearches:    fs.RefineSearches,
		RefineImproved:    fs.RefineImproved,
		RefineSkipped:     fs.RefineSkipped,
		RefineDropped:     fs.RefineDropped,
		MaxQueueDepth:     fs.MaxQueueDepth,
		CoalescedBatches:  fs.CoalescedBatches,
		CoalescedRequests: fs.CoalescedRequests,
		WatchSubscribers:   fs.WatchSubscribers,
		WatchDropped:       fs.WatchDropped,
		ControlMode:        fs.ControlMode,
		Shed:               fs.Shed,
		ControlTicks:       fs.ControlTicks,
		ControlModeChanges: fs.ControlModeChanges,
	}, nil
}

// QueueDepths exposes the per-shard mailbox depths on the service view;
// the HTTP front-end discovers it by interface assertion for the
// /metrics per-shard gauge.
func (s *Service) QueueDepths() []int { return s.f.QueueDepths() }

// DeviceEventSeqs exposes the per-device event positions on the service
// view; the HTTP front-end discovers it by interface assertion for the
// /metrics per-device event-sequence gauge (the reference the WAL
// position is measured against).
func (s *Service) DeviceEventSeqs() []uint64 { return s.f.DeviceEventSeqs() }
