// Package fleet hosts many independent runtime-managed devices behind one
// goroutine-safe front-end, opening the concurrency dimension the
// single-device manager of package rm cannot: a service process serving
// request streams for a whole fleet of heterogeneous boards.
//
// Each device pairs a platform with its own rm.Manager (and, optionally,
// a private schedule cache); devices are statically assigned to shards,
// and each shard runs one worker goroutine draining a buffered mailbox.
// Per-device request order is preserved — a device always maps to the
// same shard and mailboxes are FIFO — so every device evolves exactly as
// it would under the sequential manager, and fleet-wide aggregates are
// deterministic for a given per-device request order regardless of shard
// count or goroutine interleaving. Wall-clock quantities (scheduling
// time, queue high-water marks) are the only nondeterministic outputs.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"adaptrm/internal/anytime"
	"adaptrm/internal/api"
	"adaptrm/internal/control"
	"adaptrm/internal/opset"
	"adaptrm/internal/placement"
	"adaptrm/internal/platform"
	"adaptrm/internal/rm"
	"adaptrm/internal/sched"
	"adaptrm/internal/schedcache"
	"adaptrm/internal/schedule"
	"adaptrm/internal/workload"
)

// DeviceConfig describes one device of the fleet.
type DeviceConfig struct {
	// Platform is the device's hardware model.
	Platform platform.Platform
	// Library provides the operating-point tables served on the device.
	Library *opset.Library
	// Scheduler plans schedules for this device. Each device needs its
	// own instance unless the implementation is known to be stateless
	// and goroutine-safe; the fleet never shares it across devices.
	Scheduler sched.Scheduler
	// Fallback, when non-nil, is the device's cheap heuristic scheduler
	// for degraded modes (rm.Options.Fallback): while the degradation
	// controller holds the fleet at ModeHeuristicOnly or above,
	// admission solves run here instead of Scheduler — typically a
	// plain MMKP-MDF instance without cache wrapping. Like Scheduler it
	// must not be shared across devices unless stateless and
	// goroutine-safe. Ignored without Options.Control.
	Fallback sched.Scheduler
}

// Options tunes the fleet front-end.
type Options struct {
	// Shards is the number of worker goroutines; devices are assigned
	// round-robin (device i → shard i mod Shards). Zero means 1.
	// Ignored when Placement is set — the placement's owner count
	// becomes the shard count.
	Shards int
	// Placement maps devices onto shards. Nil means the historical
	// default, placement.Modulo(Shards) — device i → shard i mod
	// Shards, byte-identical to the fleet before the placement layer
	// existed. A custom placement (e.g. a placement.Ring shared with a
	// multi-node router) must return owners in [0, Owners()) and
	// defines the shard count via Owners().
	Placement placement.Placement
	// MailboxSize is the per-shard request buffer; Submit blocks when
	// the target shard's mailbox is full (backpressure). Zero means 64.
	MailboxSize int
	// Manager configures every device's runtime manager.
	Manager rm.Options
	// Cache enables the per-device memoizing schedule cache, letting
	// repeated workload shapes skip the solve.
	Cache bool
	// CacheParams tunes the per-device caches when Cache is set.
	CacheParams schedcache.Params
	// SharedCache, when non-nil, backs every per-device cache with one
	// fleet-wide read-mostly second tier: a solve on any device becomes
	// a lookup candidate on all of them (cross-device promotion), and a
	// warm tier loaded from disk (schedcache.Shared.Load) serves its
	// entries from the first request on. Requires Cache.
	SharedCache *schedcache.Shared
	// Refine enables the anytime refinement pool: every accepted
	// admission is offered to a bounded background EX-MEM search seeded
	// with the admitted schedule's energy as the incumbent; a strictly
	// cheaper exact schedule is swapped in through the normal event
	// machinery (rm.SwapSchedule). With Refine off, fleet behaviour is
	// byte-identical to a build without the feature.
	Refine bool
	// RefineBudget caps each background search's node count; zero means
	// anytime.DefaultBudget.
	RefineBudget int64
	// RefineWorkers is the background worker count when Refine is set.
	// Zero means 1; negative starts none, leaving the pool to be
	// stepped explicitly through Refiner (deterministic tests).
	RefineWorkers int
	// RefineQueue bounds the pending refinement tasks; zero means
	// anytime.DefaultQueue. Offers beyond the bound are dropped — the
	// device keeps its heuristic schedule.
	RefineQueue int
	// BatchWindow enables batched admission: a shard worker picking up
	// a submit opportunistically drains further queued submits for the
	// same device whose arrival times lie within BatchWindow seconds of
	// it and decides them in one rm.Manager.SubmitBatch activation
	// (per-device FIFO order is preserved; ops for other devices and
	// non-submit ops are untouched). Coalesced requests are all stamped
	// with the latest arrival time in the batch, so a window wider than
	// zero trades at most BatchWindow seconds of admission lateness for
	// fewer scheduler activations; exactly-coincident arrivals (bursty
	// traces) coalesce without any behaviour change. Zero disables
	// coalescing. Explicit Service.SubmitBatch calls work either way.
	BatchWindow float64
	// EventHistory is the per-device retained-event window serving
	// watch resumes (WatchRequest.FromSeq); a resume reaching further
	// back than the window opens with an EventLagged marker for the
	// evicted range. Zero means 1024 events per device.
	EventHistory int
	// WatchBuffer is the default per-subscriber event buffer; a full
	// buffer converts into an EventLagged marker instead of blocking a
	// shard worker. Zero means 256; WatchRequest.Buffer overrides it
	// per subscription.
	WatchBuffer int
	// Control attaches a closed-loop degradation controller. The fleet
	// binds it to its own queue-pressure signal and mode broadcast
	// (control.Controller.Attach) and reads the controller's Limits
	// snapshot — mode, coalescing window, refinement throttle — on
	// every operation pickup instead of the static BatchWindow/Refine
	// knobs above (which then only seed the controller-less provider).
	// The caller owns ticking: drive Controller.Tick from a wall-clock
	// ticker (rmserve -control) or explicitly in tests, and stop
	// ticking before Close. Nil keeps the historical static behaviour,
	// byte-identical to a build without the control layer.
	Control *control.Controller
}

func (o *Options) normalize() {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Placement == nil {
		o.Placement = placement.Modulo(o.Shards)
	} else {
		o.Shards = o.Placement.Owners()
	}
	if o.MailboxSize <= 0 {
		o.MailboxSize = 64
	}
	if o.BatchWindow < 0 {
		o.BatchWindow = 0
	}
	if o.EventHistory <= 0 {
		o.EventHistory = defaultEventHistory
	}
	if o.WatchBuffer <= 0 {
		o.WatchBuffer = defaultWatchBuffer
	}
}

// Stats aggregates fleet-wide activity. All counters except
// SchedulingTime, MaxQueueDepth and the Coalesced pair are
// deterministic for a given per-device request order — with one caveat:
// once Options.BatchWindow enables coalescing, Activations also becomes
// opportunistic (how many submits share an activation depends on queue
// timing). The admission and energy counters stay deterministic as
// long as coalesced arrivals are exactly coincident — batched
// admission is behaviour-preserving for that shape (the bursty-trace
// default). Arrivals merely near each other inside the window are
// re-stamped at the batch's latest arrival when they happen to
// coalesce, so with spread arrivals the admission counters inherit the
// opportunism too.
type Stats struct {
	// Devices is the fleet size, Shards the worker count.
	Devices, Shards int
	// Submitted counts all requests, Accepted and Rejected its split.
	Submitted, Accepted, Rejected int
	// Completed counts finished jobs, DeadlineMisses the violations.
	Completed, DeadlineMisses int
	// Cancelled counts jobs aborted while active; with Completed and the
	// live set it closes the admission ledger (accepted = completed +
	// cancelled + active).
	Cancelled int
	// Energy is the total energy of all executed schedule fractions (J).
	Energy float64
	// Activations counts scheduler invocations fleet-wide (cache hits
	// included — a hit is still a manager activation), SchedulingTime
	// their cumulative wall time.
	Activations    int
	SchedulingTime time.Duration
	// CacheHits/CacheMisses/CacheStale/CacheEvictions/CacheRepacks sum
	// the per-device schedule-cache counters (zero when caching is off).
	CacheHits, CacheMisses, CacheStale, CacheEvictions, CacheRepacks int
	// CacheSharedHits sums lookups served from the fleet-wide shared
	// tier after missing the device-local L1, and CachePromotions the
	// entries device caches offered to the shared tier that won its
	// deterministic merge. Both zero without Options.SharedCache.
	CacheSharedHits, CachePromotions int
	// Swaps counts accepted anytime-refinement schedule swaps
	// (rm.Stats.Swapped summed fleet-wide). Deterministic only when
	// refinement is driven deterministically; with background workers
	// the count depends on search/traffic interleaving.
	Swaps int
	// RefineSearches/RefineImproved/RefineSkipped/RefineDropped mirror
	// the refinement pool's counters (operational; zero without
	// Options.Refine): exact searches run, searches that beat their
	// incumbent, tasks skipped because the shared tier already held an
	// exact result, and offers dropped on a full queue.
	RefineSearches, RefineImproved, RefineSkipped, RefineDropped int
	// MaxQueueDepth is the high-water mark of pending requests over all
	// shard mailboxes (operational, not deterministic).
	MaxQueueDepth int
	// CoalescedBatches counts multi-request batches the workers formed
	// (worker-side coalescing plus explicit SubmitBatch calls), and
	// CoalescedRequests the submits that rode in them. Like
	// MaxQueueDepth they are operational: coalescing is opportunistic,
	// so the split between batched and individual submits — and with it
	// Activations — depends on queue timing once BatchWindow is set.
	CoalescedBatches, CoalescedRequests int
	// WatchSubscribers gauges the open watch subscriptions and
	// WatchDropped counts events discarded from slow subscribers'
	// bounded rings (surfaced in-stream as EventLagged markers). Both
	// are operational.
	WatchSubscribers, WatchDropped int
	// ControlMode names the degradation controller's current mode
	// (empty without Options.Control), Shed the admission requests it
	// rejected early with ErrOverloaded before any scheduler activation
	// was spent, and ControlTicks / ControlModeChanges its decision
	// counters. All operational: the controller is driven by wall-clock
	// ticks against live queue depths.
	ControlMode                    string
	Shed                           int
	ControlTicks, ControlModeChanges int
}

// AcceptRate returns Accepted / Submitted, or 0 when idle.
func (s Stats) AcceptRate() float64 {
	if s.Submitted == 0 {
		return 0
	}
	return float64(s.Accepted) / float64(s.Submitted)
}

// CacheHitRate returns CacheHits / (CacheHits + CacheMisses), or 0.
func (s Stats) CacheHitRate() float64 {
	if s.CacheHits+s.CacheMisses == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.CacheHits+s.CacheMisses)
}

// device is one managed board plus its synchronisation: the mutex
// serialises the owning shard worker against Stats snapshots.
type device struct {
	id    int
	mu    sync.Mutex
	mgr   *rm.Manager
	cache *schedcache.Cache
	plat  platform.Platform
	errs  []error
	// history retains the tail of the device's event stream for watch
	// resumes; appended by the manager's event sink under mu.
	history eventRing
}

// opKind discriminates mailbox operations.
type opKind int

const (
	opSubmit opKind = iota
	opAdvance
	opCancel
	opBatch
	// opSwap offers a refined schedule to the device (fire-and-forget:
	// the manager's validation decides, rejection is not an error).
	opSwap
	// opMode exists only as a replay unit (parseReplayOps): live mode
	// transitions are broadcast directly under the device locks by
	// applyMode, never through the mailboxes — a full mailbox is exactly
	// when a transition must still land.
	opMode
)

// opReply is the outcome of one mailbox operation.
type opReply struct {
	jobID    int
	accepted bool
	done     []rm.Completion
	// verdicts carries the per-item outcomes of an opBatch.
	verdicts []rm.Verdict
	err      error
}

// op is one mailbox entry.
type op struct {
	kind         opKind
	dev          *device
	at, deadline float64
	app          string
	jobID        int
	// items holds the requests of an opBatch.
	items []rm.Request
	// swap holds the refined schedule of an opSwap.
	swap *schedule.Schedule
	// reply, when non-nil, receives the outcome (buffered size 1, so an
	// abandoned caller never blocks the worker); when nil, errors are
	// recorded on the device and surfaced by Close (async replay path).
	reply chan opReply
}

// maxCoalesce bounds worker-side batch formation so one enormous burst
// cannot starve other devices of the shard indefinitely.
const maxCoalesce = 256

// shard is one worker goroutine's mailbox and queue-depth tracking,
// plus per-worker coalescing state (scratch and counters; the scratch
// is touched only by the owning worker, the counters also by Stats).
type shard struct {
	mailbox  chan op
	depth    atomic.Int64
	maxDepth atomic.Int64
	// pending holds ops drained ahead of time while forming a batch;
	// the worker consumes it FIFO before returning to the mailbox.
	pending []op
	// batch is the worker's batch-formation scratch.
	batch []op
	items []rm.Request
	// batches/batched count multi-request batches and the submits that
	// rode in them (operational metrics, read concurrently by Stats).
	batches atomic.Int64
	batched atomic.Int64
}

// Internal sentinels distinguishing why an operation never landed, so
// the Service layer can map them onto the api taxonomy. (Replay and the
// snapshot accessors keep the historical messages; the deprecated
// Submit/Advance wrappers route through Service and return its
// api-wrapped errors.)
var (
	errClosed     = errors.New("fleet: closed")
	errOutOfRange = errors.New("out of range")
	// errMailboxBlocked marks a send that actually waited on a full
	// mailbox until the context ended — backpressure, as opposed to a
	// context that was already dead on arrival.
	errMailboxBlocked = errors.New("fleet: mailbox full")
)

// deviceErr formats the historical out-of-range message around the
// errOutOfRange sentinel.
func (f *Fleet) deviceErr(dev int) error {
	return fmt.Errorf("fleet: device %d %w [0,%d)", dev, errOutOfRange, len(f.devices))
}

// enqueue posts an operation, blocking on a full mailbox until space
// frees up or the context ends (backpressure). The high-water mark is
// published only for sends that land, so an aborted attempt does not
// publish its own depth (a concurrently landing send may still observe
// — and publish — the aborted attempt's transient contribution; the
// mark is an approximate operational metric, not a deterministic one).
func (s *shard) enqueue(ctx context.Context, o op) error {
	d := s.depth.Add(1)
	if err := ctx.Err(); err != nil {
		s.depth.Add(-1)
		return err
	}
	select {
	case s.mailbox <- o:
		for {
			max := s.maxDepth.Load()
			if d <= max || s.maxDepth.CompareAndSwap(max, d) {
				return nil
			}
		}
	case <-ctx.Done():
		s.depth.Add(-1)
		// Classify: a still-full mailbox means the send genuinely
		// waited out the context (backpressure); otherwise the caller's
		// context just ended first (the select may pick Done even when
		// space opened up). The len check is a snapshot, but the race
		// window only misattributes an error the caller caused anyway.
		if len(s.mailbox) == cap(s.mailbox) {
			return fmt.Errorf("%w: %w", errMailboxBlocked, ctx.Err())
		}
		return ctx.Err()
	}
}

// Fleet is the concurrent multi-device runtime-management service.
type Fleet struct {
	devices []*device
	shards  []*shard
	// place maps devices onto shards (Options.Placement; the modulo
	// default when unset). Static for the fleet's lifetime so
	// per-device mailbox order is preserved.
	place placement.Placement
	// limits is the per-activation knob snapshot every layer reads: the
	// degradation mode, the coalescing window and the refinement
	// throttle. Without Options.Control it is a static provider frozen
	// at the BatchWindow/Refine options (byte-identical to the
	// pre-control fleet); with a controller it is the controller itself.
	limits control.Provider
	// ctl is Options.Control (nil without a controller); kept for shed
	// accounting and Stats export.
	ctl *control.Controller
	// hub fans device events out to watchers; watchBuffer is the default
	// per-subscriber ring capacity.
	hub         *hub
	watchBuffer int
	// sharedCache is Options.SharedCache (nil when the fleet runs on
	// per-device caches only); refiner is the anytime refinement pool
	// (nil without Options.Refine), refineWorkers its Start count.
	sharedCache   *schedcache.Shared
	refiner       *anytime.Refiner
	refineWorkers int
	wg            sync.WaitGroup
	// mu guards closed: submitters hold it shared for the whole
	// enqueue, Close holds it exclusively while marking the fleet
	// closed, so no send can race the channel close.
	mu     sync.RWMutex
	closed bool
}

// New builds a fleet and starts its shard workers. Every device is
// validated eagerly (platform, library, scheduler) so a misconfigured
// fleet fails at construction, not mid-traffic.
func New(devs []DeviceConfig, opt Options) (*Fleet, error) {
	f, err := build(devs, opt)
	if err != nil {
		return nil, err
	}
	f.start()
	return f, nil
}

// build constructs and validates the fleet without starting its
// workers, so Recover can replay persisted state into the devices while
// it still owns them outright.
func build(devs []DeviceConfig, opt Options) (*Fleet, error) {
	if len(devs) == 0 {
		return nil, errors.New("fleet: no devices")
	}
	opt.normalize()
	if opt.SharedCache != nil && !opt.Cache {
		return nil, errors.New("fleet: SharedCache requires Cache")
	}
	if opt.Shards <= 0 {
		return nil, fmt.Errorf("fleet: placement reports %d owners", opt.Shards)
	}
	f := &Fleet{hub: newHub(), watchBuffer: opt.WatchBuffer,
		sharedCache: opt.SharedCache, place: opt.Placement}
	if opt.Control != nil {
		f.ctl = opt.Control
		f.limits = opt.Control
	} else {
		f.limits = control.Static(control.Limits{
			Mode:        control.ModeNormal,
			BatchWindow: opt.BatchWindow,
			Refine:      opt.Refine,
		})
	}
	for i, dc := range devs {
		s := dc.Scheduler
		var cache *schedcache.Cache
		if opt.Cache {
			cache = schedcache.New(opt.CacheParams)
			if opt.SharedCache != nil {
				cache.AttachShared(opt.SharedCache)
			}
			s = schedcache.Wrap(s, cache)
		}
		mgrOpt := opt.Manager
		if opt.Control != nil {
			mgrOpt.Fallback = dc.Fallback
		}
		mgr, err := rm.New(dc.Platform, dc.Library, s, mgrOpt)
		if err != nil {
			return nil, fmt.Errorf("fleet: device %d: %w", i, err)
		}
		d := &device{id: i, mgr: mgr, cache: cache, plat: dc.Platform, history: newEventRing(opt.EventHistory)}
		f.devices = append(f.devices, d)
	}
	if opt.Refine {
		f.refineWorkers = opt.RefineWorkers
		f.refiner = anytime.New(anytime.Config{
			Budget: opt.RefineBudget,
			Queue:  opt.RefineQueue,
			// Skip searches whose exact result is already fleet-visible
			// through the shared tier — another device (or the warm file)
			// solved the same problem shape.
			Probe: func(t anytime.Task) bool {
				d := f.devices[t.Device]
				if d.cache == nil {
					return false
				}
				exact, ok := d.cache.ProbeShared(t.Jobs, t.Plat, t.Now)
				return ok && exact
			},
			// Promote the refined schedule into the cache tiers keyed by
			// the captured problem — worthwhile even when the swap offer
			// below loses its race against newer traffic.
			Store: func(t anytime.Task, k *schedule.Schedule) {
				if d := f.devices[t.Device]; d.cache != nil {
					d.cache.StoreExact(t.Jobs, t.Plat, t.Now, k)
				}
			},
			// Offer the schedule to the device through its shard mailbox,
			// preserving per-device FIFO order; the manager's validation
			// decides, and a post refused by a closing fleet just drops.
			Swap: func(t anytime.Task, k *schedule.Schedule) {
				_ = f.post(context.Background(), t.Device, op{kind: opSwap, swap: k})
			},
		})
	}
	f.shards = make([]*shard, opt.Shards)
	for i := range f.shards {
		f.shards[i] = &shard{mailbox: make(chan op, opt.MailboxSize)}
	}
	if f.ctl != nil {
		f.ctl.Attach(f, f.applyMode)
	}
	return f, nil
}

// start installs the live event sinks (replacing any recovery sink) and
// launches the shard workers.
func (f *Fleet) start() {
	for _, d := range f.devices {
		f.installSink(d)
	}
	f.wg.Add(len(f.shards))
	for _, sh := range f.shards {
		go f.worker(sh)
	}
	if f.refiner != nil && f.refineWorkers >= 0 {
		f.refiner.Start(f.refineWorkers)
	}
}

// Refiner exposes the anytime refinement pool (nil without
// Options.Refine). Tests built with RefineWorkers < 0 drive it
// deterministically through TryStep.
func (f *Fleet) Refiner() *anytime.Refiner { return f.refiner }

// SharedTier exposes the fleet-wide shared cache tier (nil without
// Options.SharedCache) for warm-file persistence and stats export.
func (f *Fleet) SharedTier() *schedcache.Shared { return f.sharedCache }

// NumDevices returns the fleet size.
func (f *Fleet) NumDevices() int { return len(f.devices) }

// shardOf returns the shard owning a device, resolved through the
// fleet's placement; the assignment is static so per-device mailbox
// order is preserved. With the default placement this is the historical
// dev % len(shards).
func (f *Fleet) shardOf(dev int) *shard { return f.shards[f.place.Owner(dev)] }

// worker drains one shard's mailbox, applying each operation under the
// target device's lock. Outcomes go to the op's reply channel when one
// is attached (service path); otherwise errors are recorded on the
// device and surfaced by Close (async replay path). With a batch window
// configured, a submit picked up from the queue opportunistically
// coalesces with further queued same-device submits inside the window
// (see coalesce); ops drained ahead of time while looking for batch
// members park in sh.pending and are consumed FIFO, so per-device order
// never develops holes.
func (f *Fleet) worker(sh *shard) {
	defer f.wg.Done()
	for {
		var o op
		if len(sh.pending) > 0 {
			o, sh.pending = sh.pending[0], sh.pending[1:]
		} else {
			var ok bool
			o, ok = <-sh.mailbox
			if !ok {
				return // mailbox closed and nothing parked
			}
		}
		// The coalescing window is read once per pickup and pinned for
		// the whole batch formation: under a live controller the window
		// moves between ticks, and a batch must be judged against one
		// consistent value (coalescible's deadline-validity bound depends
		// on it).
		if w := f.limits.Limits().BatchWindow; w > 0 && o.kind == opSubmit && o.deadline > o.at+w {
			f.coalesce(sh, o, w)
			continue
		}
		f.execute(sh, o)
	}
}

// deliver hands one operation outcome to its waiter, or records the
// error on the device for Close when the op is fire-and-forget. The
// device lock must be held (error recording shares it).
func deliver(o op, r opReply) {
	if o.reply != nil {
		o.reply <- r
		return
	}
	if r.err != nil {
		d := o.dev
		d.errs = append(d.errs, fmt.Errorf("fleet: device %d: %w", d.id, r.err))
	}
}

// execute applies a single operation.
func (f *Fleet) execute(sh *shard, o op) {
	d := o.dev
	var r opReply
	d.mu.Lock()
	switch o.kind {
	case opSubmit:
		r.jobID, r.accepted, r.done, r.err = d.mgr.Submit(o.at, o.app, o.deadline)
		if r.accepted {
			f.offerRefine(d)
		}
	case opAdvance:
		r.done, r.err = d.mgr.AdvanceTo(o.at)
	case opCancel:
		r.err = d.mgr.Cancel(o.jobID)
	case opBatch:
		r.verdicts, r.done, r.err = d.mgr.SubmitBatch(o.at, o.items)
		if len(o.items) > 1 {
			sh.batches.Add(1)
			sh.batched.Add(int64(len(o.items)))
		}
		if anyAccepted(r.verdicts) {
			f.offerRefine(d)
		}
	case opSwap:
		r.accepted = d.mgr.SwapSchedule(o.swap)
	}
	deliver(o, r)
	d.mu.Unlock()
	sh.depth.Add(-1)
}

// anyAccepted reports whether a batch admitted at least one request.
func anyAccepted(vs []rm.Verdict) bool {
	for _, v := range vs {
		if v.Accepted {
			return true
		}
	}
	return false
}

// offerRefine captures the device's post-admission problem and offers
// it to the refinement pool. Called under d.mu by the owning shard
// worker; the enqueue never blocks (a full queue drops the offer).
func (f *Fleet) offerRefine(d *device) {
	if f.refiner == nil || !f.limits.Limits().Refine {
		return
	}
	jobs, now, incumbent, ok := d.mgr.RefineSnapshot()
	if !ok {
		return
	}
	f.refiner.Enqueue(anytime.Task{Device: d.id, Jobs: jobs, Plat: d.plat, Now: now, Incumbent: incumbent})
}

// coalescible reports whether a queued op may join a batch seeded at
// seed: a submit for the same device whose arrival lies inside the
// window and whose deadline stays valid at any possible batch time
// (bounded by seed.at+window, since batched requests are stamped with
// the batch's latest arrival). The window is the value pinned at batch
// pickup, not a live read — see worker.
func coalescible(seed, p op, window float64) bool {
	return p.kind == opSubmit && p.dev == seed.dev &&
		p.at >= seed.at && p.at <= seed.at+window &&
		p.deadline > seed.at+window
}

// coalesce forms and executes a batch seeded by one submit: it first
// adopts matching submits already parked in sh.pending (stopping at a
// same-device op that must keep its place in line), then drains the
// mailbox without blocking. Everything non-matching parks in sh.pending
// in drain order, preserving per-device FIFO.
func (f *Fleet) coalesce(sh *shard, seed op, window float64) {
	batch := append(sh.batch[:0], seed)
	barrier := false
	for i := 0; i < len(sh.pending) && len(batch) < maxCoalesce; {
		p := sh.pending[i]
		if coalescible(seed, p, window) {
			batch = append(batch, p)
			sh.pending = append(sh.pending[:i], sh.pending[i+1:]...)
			continue
		}
		if p.dev == seed.dev {
			barrier = true
			break
		}
		i++
	}
	for !barrier && len(batch) < maxCoalesce {
		select {
		case p, ok := <-sh.mailbox:
			if !ok {
				barrier = true
				break
			}
			if coalescible(seed, p, window) {
				batch = append(batch, p)
				continue
			}
			sh.pending = append(sh.pending, p)
			barrier = p.dev == seed.dev
		default:
			barrier = true
		}
	}
	sh.batch = batch[:0] // return the scratch (ops copied below or done)
	if len(batch) == 1 {
		f.execute(sh, seed)
		return
	}
	f.executeBatch(sh, batch)
}

// executeBatch decides a coalesced batch in one manager activation at
// the latest arrival time in the batch and fans the per-item verdicts
// back out to each waiter. The completions the advance produced go to
// the first op's waiter — under sequential execution its submit would
// have observed them.
func (f *Fleet) executeBatch(sh *shard, batch []op) {
	d := batch[0].dev
	at := batch[0].at
	items := sh.items[:0]
	for _, b := range batch {
		if b.at > at {
			at = b.at
		}
		items = append(items, rm.Request{App: b.app, Deadline: b.deadline})
	}
	sh.items = items[:0]
	d.mu.Lock()
	verdicts, done, err := d.mgr.SubmitBatch(at, items)
	if err == nil && anyAccepted(verdicts) {
		f.offerRefine(d)
	}
	for i, b := range batch {
		var r opReply
		if err != nil {
			r.err = err
		} else {
			v := verdicts[i]
			r.jobID, r.accepted, r.err = v.JobID, v.Accepted, v.Err
			if i == 0 {
				r.done = done
			}
		}
		deliver(b, r)
	}
	d.mu.Unlock()
	sh.batches.Add(1)
	sh.batched.Add(int64(len(batch)))
	sh.depth.Add(int64(-len(batch)))
}

// post validates the device index and enqueues the operation while
// holding the submit lock shared, so the send cannot race Close closing
// the mailbox. The send may block on a full mailbox until the context
// ends; Close waits for a blocked send to land before closing, which is
// safe because workers keep draining until the channels close.
func (f *Fleet) post(ctx context.Context, dev int, o op) error {
	if dev < 0 || dev >= len(f.devices) {
		return f.deviceErr(dev)
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return errClosed
	}
	o.dev = f.devices[dev]
	return f.shardOf(dev).enqueue(ctx, o)
}

// Submit submits a request for a device — at virtual time at, the named
// application with the given absolute deadline — and waits for the
// decision, discarding it. Requests for one device must be submitted in
// non-decreasing virtual-time order (its clock never runs backwards);
// requests for different devices are independent.
//
// Deprecated: thin wrapper over [Service.Submit], which additionally
// returns the job id, the admission verdict and the completions.
// Rejections (api.ErrInfeasible) are swallowed here for backward
// compatibility; every other error is returned.
func (f *Fleet) Submit(dev int, at float64, app string, deadline float64) error {
	_, err := f.Service().Submit(context.Background(),
		api.SubmitRequest{Device: dev, At: at, App: app, Deadline: deadline})
	if errors.Is(err, api.ErrInfeasible) {
		return nil
	}
	return err
}

// Advance moves a device's virtual clock to time to, accounting
// progress and energy along its current schedule, and waits for it to
// take effect.
//
// Deprecated: thin wrapper over [Service.Advance], which additionally
// returns the completions the advance produced.
func (f *Fleet) Advance(dev int, to float64) error {
	_, err := f.Service().Advance(context.Background(), api.AdvanceRequest{Device: dev, To: to})
	return err
}

// Cancel aborts an active job on a device, reclaiming its resources for
// the remaining jobs (the device re-plans them immediately). It waits
// for the cancellation to take effect; see [Service.Cancel] for the
// context-aware form.
func (f *Fleet) Cancel(dev, jobID int) error {
	_, err := f.Service().Cancel(context.Background(), api.CancelRequest{Device: dev, JobID: jobID})
	return err
}

// Replay submits a merged fleet trace (e.g. workload.FleetTrace output,
// already sorted per device) and returns on the first addressing error.
// Unlike Submit it stays fire-and-forget — requests are enqueued without
// waiting for decisions, pipelining the shard workers — so per-request
// manager errors surface at Close, not here.
func (f *Fleet) Replay(trace []workload.FleetRequest) error {
	ctx := context.Background()
	for i, r := range trace {
		o := op{kind: opSubmit, at: r.At, app: r.App, deadline: r.Deadline}
		if err := f.post(ctx, r.Device, o); err != nil {
			return fmt.Errorf("fleet: replay entry %d: %w", i, err)
		}
	}
	return nil
}

// Close stops accepting work, waits for all mailboxes to drain, then
// drains every device's manager (running all admitted jobs to
// completion). It returns the join of all recorded device errors.
// Concurrent Submits racing a Close either enqueue before it or report
// the fleet closed; a second Close returns an error.
func (f *Fleet) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return errors.New("fleet: already closed")
	}
	f.closed = true
	f.mu.Unlock()
	for _, sh := range f.shards {
		close(sh.mailbox)
	}
	f.wg.Wait()
	if f.refiner != nil {
		// Stop the refinement pool only after the shard workers have
		// drained: admissions executed during the drain still enqueue
		// refinement offers, and Close lets the pool finish them so their
		// exact results are promoted into the cache tiers (feeding warm
		// files). Swap offers found now are refused by the closed flag
		// inside post — no send can race a closed mailbox because post
		// checks f.closed under the lock before touching a channel.
		f.refiner.Close()
	}
	var errs []error
	for _, d := range f.devices {
		d.mu.Lock()
		if _, err := d.mgr.Drain(); err != nil {
			errs = append(errs, fmt.Errorf("fleet: device %d drain: %w", d.id, err))
		}
		errs = append(errs, d.errs...)
		d.mu.Unlock()
	}
	// Only now — after the final drain published its completion events —
	// end the watch streams: every watcher still draining receives the
	// full story before its channel closes.
	f.hub.close()
	return errors.Join(errs...)
}

// Stats aggregates per-device statistics in device order. It may be
// called while traffic is flowing (each device is snapshotted under its
// lock) or after Close for final figures.
func (f *Fleet) Stats() Stats {
	out := Stats{Devices: len(f.devices), Shards: len(f.shards)}
	for _, d := range f.devices {
		d.mu.Lock()
		ms := d.mgr.Stats()
		var cs schedcache.Stats
		if d.cache != nil {
			cs = d.cache.Stats()
		}
		d.mu.Unlock()
		out.Submitted += ms.Submitted
		out.Accepted += ms.Accepted
		out.Rejected += ms.Rejected
		out.Completed += ms.Completed
		out.DeadlineMisses += ms.DeadlineMisses
		out.Cancelled += ms.Cancelled
		out.Energy += ms.Energy
		out.Activations += ms.Activations
		out.SchedulingTime += ms.SchedulingTime
		out.CacheHits += cs.Hits
		out.CacheMisses += cs.Misses
		out.CacheStale += cs.Stale
		out.CacheEvictions += cs.Evictions
		out.CacheRepacks += cs.Repacks
		out.CacheSharedHits += cs.SharedHits
		out.CachePromotions += cs.Promotions
		out.Swaps += ms.Swapped
	}
	if f.refiner != nil {
		rs := f.refiner.Stats()
		out.RefineSearches = int(rs.Searches)
		out.RefineImproved = int(rs.Improved)
		out.RefineSkipped = int(rs.Skipped)
		out.RefineDropped = int(rs.Dropped)
	}
	for _, sh := range f.shards {
		if m := int(sh.maxDepth.Load()); m > out.MaxQueueDepth {
			out.MaxQueueDepth = m
		}
		out.CoalescedBatches += int(sh.batches.Load())
		out.CoalescedRequests += int(sh.batched.Load())
	}
	out.WatchSubscribers = f.hub.subscribers()
	out.WatchDropped = int(f.hub.dropped.Load())
	if f.ctl != nil {
		cs := f.ctl.Status()
		out.ControlMode = cs.Mode.String()
		out.Shed = int(cs.Sheds)
		out.ControlTicks = int(cs.Ticks)
		out.ControlModeChanges = int(cs.ModeChanges)
	}
	return out
}

// QueuePressure implements control.Source: the deepest pending-op
// backlog over all shard mailboxes and the per-shard mailbox capacity.
// Purely operational — depths move while being read.
func (f *Fleet) QueuePressure() (maxDepth, capacity int) {
	for _, sh := range f.shards {
		if d := int(sh.depth.Load()); d > maxDepth {
			maxDepth = d
		}
	}
	if len(f.shards) > 0 {
		capacity = cap(f.shards[0].mailbox)
	}
	return maxDepth, capacity
}

// applyMode broadcasts a controller tier transition to every device:
// each manager records the mode and emits an EventModeChanged through
// the normal event machinery under the device lock, so the transition
// rides flightlog/WAL/SSE/recovery exactly like a lifecycle event.
// Invoked synchronously from Controller.Tick on the ticking goroutine;
// callers must stop ticking before Close (a closed fleet skips the
// broadcast — its hub is ending the watch streams).
func (f *Fleet) applyMode(_, to control.Mode) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return
	}
	for _, d := range f.devices {
		d.mu.Lock()
		d.mgr.SetMode(to)
		d.mu.Unlock()
	}
}

// QueueDepths snapshots the pending-operation count of every shard
// mailbox, in shard order — the per-shard queue-depth gauge of the
// /metrics endpoint. Purely operational: depths move while being read.
func (f *Fleet) QueueDepths() []int {
	out := make([]int, len(f.shards))
	for i, sh := range f.shards {
		if d := int(sh.depth.Load()); d > 0 {
			out[i] = d
		}
	}
	return out
}

// DeviceStats returns one device's manager statistics.
func (f *Fleet) DeviceStats(dev int) (rm.Stats, error) {
	if dev < 0 || dev >= len(f.devices) {
		return rm.Stats{}, f.deviceErr(dev)
	}
	d := f.devices[dev]
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.mgr.Stats(), nil
}

// DeviceTimeline returns a copy of a device's executed timeline — the
// schedule fractions actually run so far — for audits and for the
// watch-equivalence suite, which replays an event log against it.
func (f *Fleet) DeviceTimeline(dev int) ([]schedule.Segment, error) {
	if dev < 0 || dev >= len(f.devices) {
		return nil, f.deviceErr(dev)
	}
	d := f.devices[dev]
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.mgr.ExecutedTimeline(), nil
}

// DeviceNow returns a device's current virtual time.
func (f *Fleet) DeviceNow(dev int) (float64, error) {
	if dev < 0 || dev >= len(f.devices) {
		return 0, f.deviceErr(dev)
	}
	d := f.devices[dev]
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.mgr.Now(), nil
}
