package fleet

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"adaptrm/internal/api"
	"adaptrm/internal/core"
	"adaptrm/internal/motiv"
	"adaptrm/internal/rm"
	"adaptrm/internal/schedule"
)

// deviceState is the comparable recovered-vs-live state of one device.
type deviceState struct {
	Now      float64
	Seq      uint64
	Stats    rm.Stats
	Timeline []schedule.Segment
}

func captureDevice(t *testing.T, f *Fleet, dev int, zeroActivations bool) deviceState {
	t.Helper()
	st, err := f.DeviceStats(dev)
	if err != nil {
		t.Fatal(err)
	}
	st.SchedulingTime = 0 // wall clock, non-deterministic
	if zeroActivations {
		st.Activations = 0
	}
	tl, err := f.DeviceTimeline(dev)
	if err != nil {
		t.Fatal(err)
	}
	now, err := f.DeviceNow(dev)
	if err != nil {
		t.Fatal(err)
	}
	return deviceState{Now: now, Seq: f.DeviceEventSeqs()[dev], Stats: st, Timeline: tl}
}

// driveRecoveryTraffic pushes seeded deterministic per-device traffic
// through the service. withBatches additionally exercises SubmitBatch —
// whose failed joint solves are the one documented replay divergence
// (Activations), so callers compare accordingly.
func driveRecoveryTraffic(t *testing.T, f *Fleet, n int, seed int64, ops int, now []float64, withBatches bool) {
	t.Helper()
	svc := f.Service()
	rng := rand.New(rand.NewSource(seed))
	apps := []string{"lambda1", "lambda2"}
	jobs := make([][]int, n)
	for i := 0; i < ops; i++ {
		d := rng.Intn(n)
		kinds := 5
		if withBatches {
			kinds = 6
		}
		switch rng.Intn(kinds) {
		case 0, 1, 2:
			r, err := svc.Submit(ctxBG, api.SubmitRequest{
				Device: d, At: now[d], App: apps[rng.Intn(len(apps))],
				Deadline: now[d] + 1 + rng.Float64()*9,
			})
			if err != nil && !errors.Is(err, api.ErrInfeasible) {
				t.Fatalf("submit: %v", err)
			}
			if err == nil && r.Accepted {
				jobs[d] = append(jobs[d], r.JobID)
			}
		case 3:
			now[d] += rng.Float64() * 2
			if _, err := svc.Advance(ctxBG, api.AdvanceRequest{Device: d, To: now[d]}); err != nil {
				t.Fatalf("advance: %v", err)
			}
		case 4:
			if len(jobs[d]) == 0 {
				continue
			}
			id := jobs[d][rng.Intn(len(jobs[d]))]
			if _, err := svc.Cancel(ctxBG, api.CancelRequest{Device: d, JobID: id}); err != nil && !errors.Is(err, api.ErrUnknownJob) {
				t.Fatalf("cancel: %v", err)
			}
		case 5:
			res, err := svc.SubmitBatch(ctxBG, api.BatchSubmitRequest{Device: d, At: now[d], Items: []api.BatchItem{
				{App: apps[0], Deadline: now[d] + 2 + rng.Float64()*8},
				{App: apps[1], Deadline: now[d] + 2 + rng.Float64()*8},
			}})
			if err != nil {
				t.Fatalf("batch: %v", err)
			}
			for _, v := range res.Verdicts {
				if v.Accepted {
					jobs[d] = append(jobs[d], v.JobID)
				}
			}
		}
	}
}

// perDeviceLogs splits a fleet-wide watch log by device.
func perDeviceLogs(evs []api.Event, n int) [][]api.Event {
	out := make([][]api.Event, n)
	for _, ev := range evs {
		out[ev.Device] = append(out[ev.Device], ev)
	}
	return out
}

// testDeviceConfig builds one motivational device config; each call
// returns a fresh scheduler instance, as fleets require.
func testDeviceConfig() DeviceConfig {
	return DeviceConfig{
		Platform:  motiv.Platform(),
		Library:   motiv.Library(),
		Scheduler: core.New(),
	}
}

// TestRecoverEquivalence is the kill-and-recover equivalence bar of the
// durability subsystem at the fleet layer: a fleet rebuilt from (a) the
// full event log, (b) a mid-traffic snapshot plus the log tail, and
// (c) the snapshot alone reconstructs per-device stats, clocks and
// executed timelines byte-identical to the live fleet at the same
// sequence number.
func TestRecoverEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name        string
		seed        int64
		withBatches bool
	}{
		// Batch traffic's failed joint solves are invisible to the log, so
		// replay undercounts Activations by exactly those attempts; every
		// other quantity stays exact (compared with Activations zeroed).
		{"sequential", 11, false},
		{"batched", 12, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const n = 3
			opt := Options{Shards: 2, Manager: rm.Options{RescheduleOnFinish: true}}
			live := newTestFleet(t, n, opt)
			svc := live.Service()
			ch, err := svc.Watch(ctxBG, api.WatchRequest{Buffer: 1 << 14})
			if err != nil {
				t.Fatal(err)
			}
			evs, wait := collectWatch(ch)

			now := make([]float64, n)
			driveRecoveryTraffic(t, live, n, tc.seed, 80, now, tc.withBatches)
			// Mid-traffic snapshots: service calls above are synchronous,
			// so each device is quiescent and the snapshot aligns with a
			// definite log position.
			midSnaps := make([]*rm.Snapshot, n)
			midStates := make([]deviceState, n)
			for d := 0; d < n; d++ {
				s, err := live.DeviceSnapshot(d)
				if err != nil {
					t.Fatal(err)
				}
				midSnaps[d] = s
				midStates[d] = captureDevice(t, live, d, tc.withBatches)
			}
			driveRecoveryTraffic(t, live, n, tc.seed+1000, 80, now, tc.withBatches)

			finalStates := make([]deviceState, n)
			for d := 0; d < n; d++ {
				finalStates[d] = captureDevice(t, live, d, tc.withBatches)
			}
			if err := live.Close(); err != nil {
				t.Fatal(err)
			}
			wait()
			logs := perDeviceLogs(*evs, n)
			// Drop the Close drain's events: the references above were
			// captured before Close.
			for d := 0; d < n; d++ {
				cut := len(logs[d])
				for cut > 0 && logs[d][cut-1].Seq > finalStates[d].Seq {
					cut--
				}
				logs[d] = logs[d][:cut]
			}

			check := func(mode string, rec map[int]DeviceRecovery, want []deviceState) {
				t.Helper()
				recDevs := make([]DeviceConfig, n)
				for i := range recDevs {
					recDevs[i] = testDeviceConfig()
				}
				f2, results, err := Recover(recDevs, opt, rec)
				if err != nil {
					t.Fatalf("%s: %v", mode, err)
				}
				defer f2.Close()
				for d := 0; d < n; d++ {
					got := captureDevice(t, f2, d, tc.withBatches)
					if !reflect.DeepEqual(got, want[d]) {
						t.Errorf("%s: device %d state differs:\n got %+v\nwant %+v", mode, d, got, want[d])
					}
					res := results[d]
					if res.AppliedSeq != want[d].Seq || res.Dropped != 0 {
						t.Errorf("%s: device %d result %+v, want applied %d dropped 0", mode, d, res, want[d].Seq)
					}
				}
			}

			logOnly := make(map[int]DeviceRecovery, n)
			snapTail := make(map[int]DeviceRecovery, n)
			snapOnly := make(map[int]DeviceRecovery, n)
			for d := 0; d < n; d++ {
				logOnly[d] = DeviceRecovery{Events: logs[d]}
				snapTail[d] = DeviceRecovery{Snapshot: midSnaps[d], Events: logs[d]}
				snapOnly[d] = DeviceRecovery{Snapshot: midSnaps[d]}
			}
			check("log-only", logOnly, finalStates)
			check("snapshot+tail", snapTail, finalStates)
			check("snapshot-only", snapOnly, midStates)
		})
	}
}

// TestRecoverTornTail: a log cut mid-unit (an admission whose
// schedule_changed terminator never landed) recovers to the longest
// complete prefix, reporting the dropped events, and the recovered
// fleet still satisfies the admission ledger invariant.
func TestRecoverTornTail(t *testing.T) {
	const n = 1
	opt := Options{}
	live := newTestFleet(t, n, opt)
	svc := live.Service()
	ch, err := svc.Watch(ctxBG, api.WatchRequest{Buffer: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	evs, wait := collectWatch(ch)
	now := []float64{0}
	driveRecoveryTraffic(t, live, n, 5, 40, now, false)
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}
	wait()
	log := perDeviceLogs(*evs, n)[0]

	// Cut right after each admission event: the terminator is missing, so
	// that whole unit must be dropped.
	cuts := 0
	for i, ev := range log {
		if ev.Type != api.EventJobAdmitted || i+1 >= len(log) || log[i+1].Type != api.EventScheduleChanged {
			continue
		}
		cuts++
		torn := log[:i+1]
		f2, results, err := Recover([]DeviceConfig{testDeviceConfig()}, opt, map[int]DeviceRecovery{0: {Events: torn}})
		if err != nil {
			t.Fatalf("cut at %d: %v", i, err)
		}
		res := results[0]
		if res.Dropped == 0 || res.AppliedSeq+uint64(res.Dropped) != torn[len(torn)-1].Seq {
			t.Errorf("cut at %d: result %+v does not account for the torn unit", i, res)
		}
		// Ledger invariant: Accepted = Completed + Cancelled + active.
		st, _ := f2.DeviceStats(0)
		if st.Accepted-st.Completed-st.Cancelled < 0 {
			t.Errorf("cut at %d: ledger violated: %+v", i, st)
		}
		f2.Close()
		if cuts >= 4 {
			break
		}
	}
	if cuts == 0 {
		t.Fatal("traffic produced no admissions to cut at")
	}
}

// TestRecoverRejectsBadLogs: gaps, impossible events and tampered
// payloads fail recovery loudly rather than rebuilding a diverged
// fleet.
func TestRecoverRejectsBadLogs(t *testing.T) {
	live := newTestFleet(t, 1, Options{})
	svc := live.Service()
	ch, err := svc.Watch(ctxBG, api.WatchRequest{Buffer: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	evs, wait := collectWatch(ch)
	now := []float64{0}
	driveRecoveryTraffic(t, live, 1, 9, 30, now, false)
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}
	wait()
	log := perDeviceLogs(*evs, 1)[0]
	if len(log) < 6 {
		t.Fatalf("traffic too small: %d events", len(log))
	}
	recover1 := func(events []api.Event) error {
		_, _, err := Recover([]DeviceConfig{testDeviceConfig()}, Options{}, map[int]DeviceRecovery{0: {Events: events}})
		return err
	}

	gap := append(append([]api.Event{}, log[:2]...), log[3:]...)
	if err := recover1(gap); !errors.Is(err, ErrRecovery) {
		t.Errorf("gap: %v, want ErrRecovery", err)
	}
	lagged := append([]api.Event{}, log...)
	lagged[1] = api.Event{Device: 0, Seq: lagged[1].Seq, Type: api.EventLagged, Dropped: 3}
	if err := recover1(lagged); !errors.Is(err, ErrRecovery) {
		t.Errorf("lagged marker: %v, want ErrRecovery", err)
	}
	tampered := append([]api.Event{}, log...)
	for i := range tampered {
		if tampered[i].Type == api.EventJobAdmitted {
			tampered[i].Deadline += 17 // diverges the replayed admission
			break
		}
	}
	if err := recover1(tampered); !errors.Is(err, ErrRecovery) {
		t.Errorf("tampered payload: %v, want ErrRecovery", err)
	}
	if _, _, err := Recover([]DeviceConfig{testDeviceConfig()}, Options{},
		map[int]DeviceRecovery{3: {}}); !errors.Is(err, ErrRecovery) {
		t.Errorf("out-of-range device: %v, want ErrRecovery", err)
	}
}
