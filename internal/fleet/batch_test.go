package fleet

import (
	"errors"
	"sync"
	"testing"
	"time"

	"adaptrm/internal/api"
	"adaptrm/internal/core"
	"adaptrm/internal/motiv"
	"adaptrm/internal/workload"
)

// stripOpportunistic removes, on top of the wall-clock fields, the
// counters that legitimately vary with batch formation: activation
// counts and the coalescing tallies.
func stripOpportunistic(s Stats) Stats {
	s = deterministic(s)
	s.Activations = 0
	s.CoalescedBatches = 0
	s.CoalescedRequests = 0
	return s
}

// TestServiceSubmitBatchDecisions drives an explicit batch through the
// typed protocol: per-item verdicts in order, sequential job ids, one
// activation for a jointly feasible batch, taxonomy errors for invalid
// items, and a whole-batch error for an unknown device.
func TestServiceSubmitBatchDecisions(t *testing.T) {
	f := newTestFleet(t, 1, Options{})
	svc := f.Service()
	res, err := svc.SubmitBatch(ctxBG, api.BatchSubmitRequest{Device: 0, At: 0, Items: []api.BatchItem{
		{App: "lambda1", Deadline: 30},
		{App: "lambda2", Deadline: 30},
		{App: "lambda1", Deadline: 40},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Verdicts) != 3 {
		t.Fatalf("verdicts = %+v", res.Verdicts)
	}
	for i, v := range res.Verdicts {
		if !v.Accepted || v.JobID != i+1 || v.Error != nil {
			t.Fatalf("verdict %d = %+v, want accepted job %d", i, v, i+1)
		}
	}
	ds, err := f.DeviceStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Activations != 1 || ds.Accepted != 3 {
		t.Fatalf("device stats after feasible batch: %+v, want 1 activation, 3 accepted", ds)
	}

	// Mixed batch: an unknown app and an impossible deadline become
	// per-item taxonomy errors; the valid item is still decided.
	res, err = svc.SubmitBatch(ctxBG, api.BatchSubmitRequest{Device: 0, At: 1, Items: []api.BatchItem{
		{App: "nope", Deadline: 30},
		{App: "lambda2", Deadline: 0.5},
		{App: "lambda2", Deadline: 41},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Verdicts[0].Error, api.ErrUnknownApp) {
		t.Errorf("unknown app verdict: %+v", res.Verdicts[0])
	}
	if !errors.Is(res.Verdicts[1].Error, api.ErrBadRequest) {
		t.Errorf("bad deadline verdict: %+v", res.Verdicts[1])
	}
	if !res.Verdicts[2].Accepted {
		t.Errorf("valid item not admitted: %+v", res.Verdicts[2])
	}

	// Whole-batch failures stay call-level.
	if _, err := svc.SubmitBatch(ctxBG, api.BatchSubmitRequest{Device: 9, At: 2, Items: []api.BatchItem{{App: "lambda1", Deadline: 9}}}); !errors.Is(err, api.ErrUnknownDevice) {
		t.Errorf("unknown device: %v", err)
	}
	// The empty batch is a no-op: empty result, no error, and no clock
	// movement (nothing was enqueued for the device at all).
	before, err := f.DeviceNow(0)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := svc.SubmitBatch(ctxBG, api.BatchSubmitRequest{Device: 0, At: 99}); err != nil || len(res.Verdicts) != 0 || len(res.Completions) != 0 {
		t.Errorf("empty batch: res %+v err %v, want empty result and nil error", res, err)
	}
	if now, err := f.DeviceNow(0); err != nil || now != before {
		t.Errorf("empty batch moved the device clock %v → %v (err %v)", before, now, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServiceSubmitBatchMatchesSequential replays the same mixed trace
// through SubmitBatch (grouped by coincident arrivals) and through
// one-by-one Submit calls on separate fleets: verdicts, job ids and all
// deterministic statistics except activation counts must coincide.
func TestServiceSubmitBatchMatchesSequential(t *testing.T) {
	groups := []struct {
		at    float64
		items []api.BatchItem
	}{
		{0, []api.BatchItem{{App: "lambda1", Deadline: 9}, {App: "lambda2", Deadline: 9}}},
		{12, []api.BatchItem{{App: "lambda1", Deadline: 21}, {App: "lambda2", Deadline: 21}, {App: "lambda2", Deadline: 21}}},
		{25, []api.BatchItem{{App: "lambda2", Deadline: 26.5}}},
	}
	batched := newTestFleet(t, 1, Options{})
	seq := newTestFleet(t, 1, Options{})
	for _, g := range groups {
		res, err := api.SubmitBatch(ctxBG, batched.Service(), api.BatchSubmitRequest{Device: 0, At: g.at, Items: g.items})
		if err != nil {
			t.Fatal(err)
		}
		for i, it := range g.items {
			sr, serr := seq.Service().Submit(ctxBG, api.SubmitRequest{Device: 0, At: g.at, App: it.App, Deadline: it.Deadline})
			if serr != nil && !errors.Is(serr, api.ErrInfeasible) {
				t.Fatal(serr)
			}
			v := res.Verdicts[i]
			if v.Accepted != sr.Accepted || v.JobID != sr.JobID {
				t.Errorf("t=%v item %d: batch %+v vs sequential %+v", g.at, i, v, sr)
			}
			if (serr != nil) != (v.Error != nil) {
				t.Errorf("t=%v item %d: batch err %v vs sequential err %v", g.at, i, v.Error, serr)
			}
		}
	}
	if err := batched.Close(); err != nil {
		t.Fatal(err)
	}
	if err := seq.Close(); err != nil {
		t.Fatal(err)
	}
	if a, b := stripOpportunistic(batched.Stats()), stripOpportunistic(seq.Stats()); a != b {
		t.Errorf("stats diverged:\nbatch %+v\nseq   %+v", a, b)
	}
	if a, b := batched.Stats().Activations, seq.Stats().Activations; a > b {
		t.Errorf("batching increased activations: %d > %d", a, b)
	}
}

// TestBatchWindowCoalescesQueuedSubmits pins the worker-side fast path
// deterministically: with the single shard worker wedged in a solve,
// three same-device same-time submits queue up behind it; on release
// they must be decided in one activation.
func TestBatchWindowCoalescesQueuedSubmits(t *testing.T) {
	release := make(chan struct{})
	devs := []DeviceConfig{{
		Platform:  motiv.Platform(),
		Library:   motiv.Library(),
		Scheduler: blockingScheduler(release),
	}}
	f, err := New(devs, Options{Shards: 1, MailboxSize: 8, BatchWindow: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// The first submit wedges the worker inside its solve; the next
	// three park in the mailbox before the worker can see them.
	if err := f.Replay([]workload.FleetRequest{
		{Device: 0, At: 0, App: "lambda1", Deadline: 20},
		{Device: 0, At: 1, App: "lambda1", Deadline: 30},
		{Device: 0, At: 1, App: "lambda2", Deadline: 35},
		{Device: 0, At: 1, App: "lambda1", Deadline: 40},
	}); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	s := f.Stats()
	if s.Accepted != 4 || s.Completed != 4 {
		t.Fatalf("admissions: %+v", s)
	}
	// One activation for the wedged submit, one for the joint batch.
	if s.Activations != 2 {
		t.Errorf("activations = %d, want 2 (solo + coalesced batch)", s.Activations)
	}
	if s.CoalescedBatches != 1 || s.CoalescedRequests != 3 {
		t.Errorf("coalescing counters: %+v, want 1 batch of 3", s)
	}
}

// TestCloseDuringCoalesceWindowFlushesPending is the shutdown barrier
// of batched admission: Close racing an in-flight coalescing window
// (worker wedged in a solve, more submits parked in the mailbox) must
// flush the pending FIFO through the normal decide path before the
// shard exits — every request decided, none dropped. The assertions
// hold in both interleavings (Close beginning before or after the
// release); the sleep biases the schedule toward the racy one.
func TestCloseDuringCoalesceWindowFlushesPending(t *testing.T) {
	release := make(chan struct{})
	devs := []DeviceConfig{{
		Platform:  motiv.Platform(),
		Library:   motiv.Library(),
		Scheduler: blockingScheduler(release),
	}}
	f, err := New(devs, Options{Shards: 1, MailboxSize: 8, BatchWindow: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// The first submit wedges the worker inside its solve; three
	// coalescible submits park behind it.
	if err := f.Replay([]workload.FleetRequest{
		{Device: 0, At: 0, App: "lambda1", Deadline: 20},
		{Device: 0, At: 1, App: "lambda1", Deadline: 30},
		{Device: 0, At: 1, App: "lambda2", Deadline: 35},
		{Device: 0, At: 1, App: "lambda1", Deadline: 40},
	}); err != nil {
		t.Fatal(err)
	}
	// Close with the window still in flight: it must block until the
	// parked submits are decided, not abandon them.
	closed := make(chan error, 1)
	go func() { closed <- f.Close() }()
	time.Sleep(20 * time.Millisecond)
	close(release)
	if err := <-closed; err != nil {
		t.Fatal(err)
	}
	s := f.Stats()
	if s.Submitted != 4 || s.Accepted != 4 || s.Completed != 4 {
		t.Fatalf("flush lost requests: %+v", s)
	}
	// One activation for the wedged submit, one for the coalesced rest.
	if s.Activations != 2 {
		t.Errorf("activations = %d, want 2 (solo + coalesced batch)", s.Activations)
	}
	if s.CoalescedBatches != 1 || s.CoalescedRequests != 3 {
		t.Errorf("coalescing counters: %+v, want 1 batch of 3", s)
	}
}

// TestBatchWindowPreservesOrderAcrossDevices: while a batch forms for
// one device, ops for other devices drained ahead of time must neither
// be lost nor reordered, and a same-device non-submit op is a barrier.
func TestBatchWindowPreservesOrderAcrossDevices(t *testing.T) {
	release := make(chan struct{})
	devs := []DeviceConfig{
		{Platform: motiv.Platform(), Library: motiv.Library(), Scheduler: blockingScheduler(release)},
		{Platform: motiv.Platform(), Library: motiv.Library(), Scheduler: core.New()},
	}
	f, err := New(devs, Options{Shards: 1, MailboxSize: 16, BatchWindow: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Wedge device 0, then interleave: two coalescible device-0 submits
	// around a device-1 submit, then a device-0 submit far outside the
	// window — a batch barrier that must keep its place in line.
	if err := f.Replay([]workload.FleetRequest{
		{Device: 0, At: 0, App: "lambda1", Deadline: 20},
		{Device: 0, At: 1, App: "lambda1", Deadline: 30},
		{Device: 1, At: 1, App: "lambda2", Deadline: 9},
		{Device: 0, At: 1.2, App: "lambda2", Deadline: 35},
		{Device: 0, At: 10, App: "lambda2", Deadline: 50},
	}); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	s := f.Stats()
	if s.Accepted != 5 || s.Completed != 5 || s.DeadlineMisses != 0 {
		t.Fatalf("stats: %+v", s)
	}
	if s.CoalescedBatches != 1 || s.CoalescedRequests != 2 {
		t.Errorf("coalescing counters: %+v, want one batch of 2", s)
	}
	d0, err := f.DeviceStats(0)
	if err != nil {
		t.Fatal(err)
	}
	// Wedged solo + coalesced pair + out-of-window solo.
	if d0.Activations != 3 {
		t.Errorf("device 0 activations = %d, want 3", d0.Activations)
	}
	d1, err := f.DeviceStats(1)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Accepted != 1 {
		t.Errorf("device 1 lost its submit: %+v", d1)
	}
}

// TestBatchedMatchesUnbatchedOnBurstyTrace replays the same bursty
// coincident-arrival trace through a coalescing fleet and a plain one:
// admission, energy and completion statistics must be byte-identical
// (batched admission is behaviour-preserving for coincident arrivals),
// with the batched run spending no more scheduler activations. Replay's
// fire-and-forget enqueue lets the mailboxes actually fill, giving the
// workers something to coalesce.
func TestBatchedMatchesUnbatchedOnBurstyTrace(t *testing.T) {
	const devices = 4
	trace, err := workload.FleetTrace(motiv.Library(), workload.FleetTraceParams{
		Devices: devices, Rate: 0.05, Horizon: 300, BurstSize: 3, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(opt Options) Stats {
		f := newTestFleet(t, devices, opt)
		if err := f.Replay(trace); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return f.Stats()
	}
	plain := run(Options{Shards: 2})
	batched := run(Options{Shards: 2, BatchWindow: 0.01})
	if plain.Submitted == 0 || plain.Submitted != len(trace) {
		t.Fatalf("trivial run: %+v for %d requests", plain, len(trace))
	}
	if a, b := stripOpportunistic(batched), stripOpportunistic(plain); a != b {
		t.Errorf("batched run changed behaviour:\nbatched %+v\nplain   %+v", a, b)
	}
	if batched.Activations > plain.Activations {
		t.Errorf("batching increased activations: %d > %d", batched.Activations, plain.Activations)
	}
}

// TestFleetMixedTrafficRace is the -race workhorse for batching: many
// goroutines (each owning disjoint devices, preserving per-device
// order) interleave Submit, SubmitBatch, Advance and Cancel against a
// small shard pool with coalescing enabled, while Stats snapshots run
// concurrently. Everything must land, drain and stay consistent.
func TestFleetMixedTrafficRace(t *testing.T) {
	const devices, goroutines = 6, 3
	f := newTestFleet(t, devices, Options{Shards: 2, MailboxSize: 4, BatchWindow: 0.05})
	svc := f.Service()
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for d := g; d < devices; d += goroutines {
				at := 0.0
				for round := 0; round < 8; round++ {
					res, err := svc.SubmitBatch(ctxBG, api.BatchSubmitRequest{Device: d, At: at, Items: []api.BatchItem{
						{App: "lambda1", Deadline: at + 30},
						{App: "lambda2", Deadline: at + 35},
					}})
					if err != nil {
						t.Errorf("batch on device %d: %v", d, err)
						return
					}
					if _, err := svc.Submit(ctxBG, api.SubmitRequest{Device: d, At: at + 1, App: "lambda2", Deadline: at + 40}); err != nil && !errors.Is(err, api.ErrInfeasible) {
						t.Errorf("submit on device %d: %v", d, err)
						return
					}
					if v := res.Verdicts[0]; v.Accepted {
						if _, err := svc.Cancel(ctxBG, api.CancelRequest{Device: d, JobID: v.JobID}); err != nil {
							t.Errorf("cancel on device %d: %v", d, err)
							return
						}
					}
					if _, err := svc.Advance(ctxBG, api.AdvanceRequest{Device: d, To: at + 50}); err != nil {
						t.Errorf("advance on device %d: %v", d, err)
						return
					}
					at += 100
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = f.Stats()
		}
	}()
	wg.Wait()
	<-done
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	s := f.Stats()
	if s.Submitted == 0 || s.Completed == 0 {
		t.Fatalf("trivial run: %+v", s)
	}
	if s.DeadlineMisses != 0 {
		t.Errorf("deadline misses under mixed traffic: %+v", s)
	}
}
