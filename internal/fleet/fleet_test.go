package fleet

import (
	"sync"
	"testing"

	"adaptrm/internal/core"
	"adaptrm/internal/motiv"
	"adaptrm/internal/workload"
)

// newTestFleet builds a fleet of n motivational devices, one scheduler
// instance per device.
func newTestFleet(t *testing.T, n int, opt Options) *Fleet {
	t.Helper()
	devs := make([]DeviceConfig, n)
	for i := range devs {
		devs[i] = DeviceConfig{
			Platform:  motiv.Platform(),
			Library:   motiv.Library(),
			Scheduler: core.New(),
		}
	}
	f, err := New(devs, opt)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// deterministic strips the wall-clock fields so per-seed runs compare
// equal.
func deterministic(s Stats) Stats {
	s.SchedulingTime = 0
	s.MaxQueueDepth = 0
	s.Shards = 0
	return s
}

func TestFleetValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := New([]DeviceConfig{{Platform: motiv.Platform(), Library: motiv.Library()}}, Options{}); err == nil {
		t.Error("nil scheduler accepted")
	}
	f := newTestFleet(t, 2, Options{})
	if err := f.Submit(5, 0, "lambda1", 9); err == nil {
		t.Error("out-of-range device accepted")
	}
	if err := f.Advance(-1, 3); err == nil {
		t.Error("negative device accepted")
	}
	if _, err := f.DeviceStats(7); err == nil {
		t.Error("out-of-range DeviceStats accepted")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Submit(0, 0, "lambda1", 9); err == nil {
		t.Error("submit after close accepted")
	}
	if err := f.Close(); err == nil {
		t.Error("double close accepted")
	}
}

// TestFleetMatchesSequentialManager replays the motivational scenario on
// every device and checks each device behaves exactly like the
// standalone manager: both jobs admitted, energy 14.63 J, no misses.
func TestFleetMatchesSequentialManager(t *testing.T) {
	const n = 5
	f := newTestFleet(t, n, Options{Shards: 2, MailboxSize: 4})
	for d := 0; d < n; d++ {
		if err := f.Submit(d, 0, "lambda1", 9); err != nil {
			t.Fatal(err)
		}
		if err := f.Submit(d, 1, "lambda2", 5); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	s := f.Stats()
	if s.Submitted != 2*n || s.Accepted != 2*n || s.Rejected != 0 {
		t.Fatalf("admission: %+v", s)
	}
	if s.Completed != 2*n || s.DeadlineMisses != 0 {
		t.Fatalf("completions: %+v", s)
	}
	wantE := 14.63 * n
	if s.Energy < wantE-0.1*n || s.Energy > wantE+0.1*n {
		t.Fatalf("energy = %v, want ≈%v", s.Energy, wantE)
	}
	if got := s.AcceptRate(); got != 1 {
		t.Fatalf("accept rate = %v", got)
	}
	for d := 0; d < n; d++ {
		ds, err := f.DeviceStats(d)
		if err != nil {
			t.Fatal(err)
		}
		if ds.Accepted != 2 || ds.Completed != 2 {
			t.Fatalf("device %d: %+v", d, ds)
		}
	}
}

func TestFleetAdvanceMovesClock(t *testing.T) {
	f := newTestFleet(t, 1, Options{})
	if err := f.Submit(0, 0, "lambda1", 9); err != nil {
		t.Fatal(err)
	}
	if err := f.Advance(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	now, err := f.DeviceNow(0)
	if err != nil {
		t.Fatal(err)
	}
	if now < 3 {
		t.Fatalf("device clock = %v, want ≥ 3", now)
	}
}

// runFleetTrace replays a generated multi-tenant trace from g goroutines
// (each owning a disjoint set of devices, preserving per-device order)
// and returns the final deterministic stats.
func runFleetTrace(t *testing.T, devices, goroutines int, opt Options, seed int64) Stats {
	t.Helper()
	trace, err := workload.FleetTrace(motiv.Library(), workload.FleetTraceParams{
		Devices: devices, Rate: 0.25, RateSpread: 0.6, Horizon: 60, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	streams, err := workload.SplitByDevice(trace, devices)
	if err != nil {
		t.Fatal(err)
	}
	f := newTestFleet(t, devices, opt)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for d := g; d < devices; d += goroutines {
				for _, r := range streams[d] {
					if err := f.Submit(r.Device, r.At, r.App, r.Deadline); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	// Exercise concurrent stats snapshots while traffic is flowing.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = f.Stats()
		}
	}()
	wg.Wait()
	<-done
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return f.Stats()
}

// TestFleetConcurrentDeterministicStats is the -race workhorse: many
// goroutines submit to many devices through a small shard pool, and the
// deterministic aggregate statistics must be identical across repeats,
// shard counts, goroutine counts, and cache on/off (the cache only reuses
// validated schedules produced by the same per-device solver stream).
func TestFleetConcurrentDeterministicStats(t *testing.T) {
	const devices = 8
	base := runFleetTrace(t, devices, 4, Options{Shards: 3, MailboxSize: 8}, 42)
	if base.Submitted == 0 || base.Accepted == 0 {
		t.Fatalf("trivial run: %+v", base)
	}
	if base.Completed != base.Accepted {
		t.Fatalf("close did not drain: %+v", base)
	}
	variants := []struct {
		name       string
		goroutines int
		opt        Options
	}{
		{"repeat", 4, Options{Shards: 3, MailboxSize: 8}},
		{"one-shard", 1, Options{Shards: 1, MailboxSize: 8}},
		{"many-shards", 8, Options{Shards: 8, MailboxSize: 2}},
	}
	for _, v := range variants {
		got := runFleetTrace(t, devices, v.goroutines, v.opt, 42)
		if deterministic(got) != deterministic(base) {
			t.Errorf("%s: stats diverged:\n got %+v\nwant %+v",
				v.name, deterministic(got), deterministic(base))
		}
	}
	// A different seed must actually change the workload.
	other := runFleetTrace(t, devices, 4, Options{Shards: 3, MailboxSize: 8}, 43)
	if deterministic(other) == deterministic(base) {
		t.Error("different seeds produced identical stats")
	}
}

// lowUtilOptions is a fleet configuration for a lightly loaded fleet,
// the regime where workload shapes repeat and the cache earns hits.
func lowUtilTrace(t *testing.T, devices int, seed int64) [][]workload.FleetRequest {
	t.Helper()
	trace, err := workload.FleetTrace(motiv.Library(), workload.FleetTraceParams{
		Devices: devices, Rate: 0.05, RateSpread: 0.6, Horizon: 400, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	streams, err := workload.SplitByDevice(trace, devices)
	if err != nil {
		t.Fatal(err)
	}
	return streams
}

// runStreams replays pre-split per-device streams from g goroutines.
func runStreams(t *testing.T, streams [][]workload.FleetRequest, goroutines int, opt Options) Stats {
	t.Helper()
	devices := len(streams)
	f := newTestFleet(t, devices, opt)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for d := g; d < devices; d += goroutines {
				for _, r := range streams[d] {
					if err := f.Submit(r.Device, r.At, r.App, r.Deadline); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return f.Stats()
}

// TestFleetCacheDeterministicAndEffective checks that the schedule cache
// serves hits on a lightly loaded fleet, that cached runs stay
// deterministic per seed across repeats and shard counts, and that the
// energy cost of reusing bucketed-neighbour decisions stays small. Exact
// equality with the uncached run is not expected: a hit may inherit the
// point choice of a problem up to one bucket away.
func TestFleetCacheDeterministicAndEffective(t *testing.T) {
	const devices = 6
	streams := lowUtilTrace(t, devices, 7)
	cacheOpt := Options{Shards: 2, Cache: true}
	plain := runStreams(t, streams, 3, Options{Shards: 2})
	cached := runStreams(t, streams, 3, cacheOpt)
	if cached.CacheHits == 0 {
		t.Error("cache served no hits on a repetitive low-utilisation trace")
	}
	if cached.DeadlineMisses != 0 {
		t.Errorf("cache caused %d deadline misses", cached.DeadlineMisses)
	}
	if cached.Completed != cached.Accepted {
		t.Errorf("close did not drain: %+v", cached)
	}
	// Reuse must not change admission much nor energy beyond the bucket
	// approximation (validated schedules only).
	if cached.Accepted < plain.Accepted-2 || cached.Accepted > plain.Accepted+2 {
		t.Errorf("admission diverged: plain %d, cached %d", plain.Accepted, cached.Accepted)
	}
	if cached.Energy < 0.9*plain.Energy || cached.Energy > 1.1*plain.Energy {
		t.Errorf("energy diverged: plain %v, cached %v", plain.Energy, cached.Energy)
	}
	// Determinism: repeats and different shard/goroutine splits agree.
	again := runStreams(t, streams, 1, Options{Shards: 5, MailboxSize: 2, Cache: true})
	if deterministic(again) != deterministic(cached) {
		t.Errorf("cached run not deterministic:\n got %+v\nwant %+v",
			deterministic(again), deterministic(cached))
	}
}

// TestFleetSubmitCloseRace hammers Submit from many goroutines while
// Close runs concurrently: submissions must either land or return the
// "fleet: closed" error — never panic on a closed mailbox.
func TestFleetSubmitCloseRace(t *testing.T) {
	for round := 0; round < 10; round++ {
		f := newTestFleet(t, 4, Options{Shards: 2, MailboxSize: 1})
		var wg sync.WaitGroup
		wg.Add(4)
		for g := 0; g < 4; g++ {
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					if err := f.Submit(g, float64(i), "lambda1", float64(i)+9); err != nil {
						return // fleet closed underneath us — expected
					}
				}
			}(g)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		s := f.Stats()
		if s.Completed != s.Accepted {
			t.Fatalf("round %d: close did not drain: %+v", round, s)
		}
	}
}
