package fleet

import (
	"context"
	"sync"
	"sync/atomic"

	"adaptrm/internal/api"
	"adaptrm/internal/rm"
)

// The watch subsystem fans device lifecycle events out to any number of
// concurrent subscribers without ever blocking a shard worker.
//
// Every device's manager emits typed events (admissions, rejections,
// starts, completions, cancellations, schedule changes) with per-device
// monotone sequence numbers; the fleet records the tail of each stream
// in a per-device history ring (for resume) and pushes each event into
// every matching subscriber's bounded ring. Publishing is strictly
// non-blocking: a full subscriber ring converts its newest slot into an
// EventLagged marker that absorbs further drops, so a stalled consumer
// costs events — surfaced explicitly — never worker throughput. A pump
// goroutine per subscriber drains the ring into the subscriber's
// channel at the consumer's pace.

// defaultEventHistory is the per-device retained-event count serving
// WatchRequest.FromSeq resumes when Options.EventHistory is zero.
const defaultEventHistory = 1024

// defaultWatchBuffer is the per-subscriber ring capacity when neither
// Options.WatchBuffer nor WatchRequest.Buffer overrides it.
const defaultWatchBuffer = 256

// maxWatchBuffer caps WatchRequest.Buffer: the request is
// client-supplied (over HTTP, by anyone who may watch), so it must not
// translate into an arbitrarily large allocation.
const maxWatchBuffer = 1 << 16

// eventRing is a fixed-capacity FIFO of events. The zero value is
// unusable; make one with newEventRing.
type eventRing struct {
	buf  []api.Event
	head int // index of the oldest element
	n    int // current count
}

func newEventRing(capacity int) eventRing {
	return eventRing{buf: make([]api.Event, capacity)}
}

// push appends ev, evicting the oldest element when full.
func (r *eventRing) push(ev api.Event) {
	if r.n == len(r.buf) {
		r.buf[r.head] = ev
		r.head = (r.head + 1) % len(r.buf)
		return
	}
	r.buf[(r.head+r.n)%len(r.buf)] = ev
	r.n++
}

// at returns the i-th oldest element.
func (r *eventRing) at(i int) api.Event { return r.buf[(r.head+i)%len(r.buf)] }

// last returns a pointer to the newest element (n must be > 0).
func (r *eventRing) last() *api.Event { return &r.buf[(r.head+r.n-1)%len(r.buf)] }

// pop removes and returns the oldest element.
func (r *eventRing) pop() (api.Event, bool) {
	if r.n == 0 {
		return api.Event{}, false
	}
	ev := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return ev, true
}

// tailFrom appends the retained events with Seq >= seq to into, in
// order, and reports the oldest retained sequence number (0 when the
// ring is empty).
func (r *eventRing) tailFrom(seq uint64, into []api.Event) ([]api.Event, uint64) {
	var first uint64
	for i := 0; i < r.n; i++ {
		ev := r.at(i)
		if i == 0 {
			first = ev.Seq
		}
		if ev.Seq >= seq {
			into = append(into, ev)
		}
	}
	return into, first
}

// subscriber is one watch stream: a bounded event ring filled by
// publishers and drained by a dedicated pump goroutine into out.
type subscriber struct {
	// device filters the stream (-1 = all devices).
	device int
	// dropped points at the hub's fleet-wide drop counter, bumped once
	// per event this subscriber's ring discards (observability only —
	// the per-stream loss stays in the in-stream Lagged markers).
	dropped *atomic.Int64

	mu   sync.Mutex
	ring eventRing

	// wake nudges the pump after an offer (1-buffered, never blocks).
	wake chan struct{}
	// backlog is the resume prefix, delivered before any ring content.
	backlog []api.Event
	// out is the consumer-facing channel, closed by the pump.
	out chan api.Event
}

// offer enqueues one event without ever blocking: when the ring is
// full, its newest slot becomes (or extends) an EventLagged marker
// absorbing both the displaced event and the incoming one, so the
// consumer learns exactly that — and how much — it lost.
func (s *subscriber) offer(ev api.Event) {
	s.mu.Lock()
	if s.ring.n < len(s.ring.buf) {
		s.ring.push(ev)
	} else {
		tail := s.ring.last()
		if tail.Type != api.EventLagged {
			// Displace the newest queued event: both it and the incoming
			// event are lost, and the marker inherits the position of the
			// first loss.
			if s.dropped != nil {
				s.dropped.Add(2)
			}
			marker := api.Event{Type: api.EventLagged, Device: tail.Device, Seq: tail.Seq, Dropped: 2}
			if tail.Device != ev.Device {
				marker.Device, marker.Seq = -1, 0
			}
			*tail = marker
		} else {
			if s.dropped != nil {
				s.dropped.Add(1)
			}
			tail.Dropped++
			if tail.Device != ev.Device {
				tail.Device, tail.Seq = -1, 0
			}
		}
	}
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// pop removes the oldest buffered event.
func (s *subscriber) pop() (api.Event, bool) {
	s.mu.Lock()
	ev, ok := s.ring.pop()
	s.mu.Unlock()
	return ev, ok
}

// hub is the fleet-wide subscriber registry. The lock is read-write so
// publishing — the per-event hot path every shard worker runs — only
// shares the subscriber set; exclusive access is reserved for the rare
// membership changes.
type hub struct {
	mu     sync.RWMutex
	subs   map[*subscriber]struct{}
	closed bool
	// done is closed by close(), releasing every pump for final drain.
	done chan struct{}
	// dropped counts events discarded from slow subscribers' rings,
	// fleet-wide and monotone (subscribers come and go; the counter
	// survives them for the /metrics export).
	dropped atomic.Int64
}

// subscribers snapshots the open-subscription count.
func (h *hub) subscribers() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.subs)
}

func newHub() *hub {
	return &hub{subs: make(map[*subscriber]struct{}), done: make(chan struct{})}
}

// publish offers ev to every matching subscriber. It never blocks on
// consumers and holds the hub lock only shared, so shard workers
// publish concurrently; per-device event order is preserved because a
// device's events are published under its device lock, and each
// subscriber's ring serializes offers with its own mutex.
func (h *hub) publish(ev api.Event) {
	h.mu.RLock()
	for s := range h.subs {
		if s.device < 0 || s.device == ev.Device {
			s.offer(ev)
		}
	}
	h.mu.RUnlock()
}

// register adds a subscriber, failing once the hub is closed.
func (h *hub) register(s *subscriber) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return errClosed
	}
	h.subs[s] = struct{}{}
	return nil
}

func (h *hub) unregister(s *subscriber) {
	h.mu.Lock()
	delete(h.subs, s)
	h.mu.Unlock()
}

// close stops accepting subscribers and releases every pump to drain
// its remaining buffer and close its channel. Callers must ensure no
// publish follows (the fleet closes the hub after all workers stopped
// and all devices drained).
func (h *hub) close() {
	h.mu.Lock()
	if !h.closed {
		h.closed = true
		close(h.done)
	}
	h.mu.Unlock()
}

// clampBuffer resolves a subscription's ring capacity: the caller's
// request, the fleet default when absent, and never above
// maxWatchBuffer — the value crosses the network on /v1/watch, so it
// must not translate into an arbitrarily large allocation.
func clampBuffer(requested, fleetDefault int) int {
	switch {
	case requested <= 0:
		return fleetDefault
	case requested > maxWatchBuffer:
		return maxWatchBuffer
	default:
		return requested
	}
}

// toAPIEvent lifts one manager event onto the wire for device dev. It
// is the single conversion point, shared by the live sink and the
// recovery replay's verification (which re-derives events and compares
// them against a persisted log).
func toAPIEvent(dev int, ev rm.Event) api.Event {
	return api.Event{
		Device:   dev,
		Seq:      ev.Seq,
		Type:     api.EventType(ev.Type),
		At:       ev.At,
		JobID:    ev.JobID,
		App:      ev.App,
		Deadline: ev.Deadline,
		Missed:   ev.Missed,
		Payload:  ev.Payload,
	}
}

// installSink wires a device's manager to the history ring and the hub.
// The sink runs synchronously inside manager calls, which all happen
// under d.mu, so history order always matches sequence order.
func (f *Fleet) installSink(d *device) {
	d.mgr.SetEventSink(func(ev rm.Event) {
		ae := toAPIEvent(d.id, ev)
		d.history.push(ae)
		f.hub.publish(ae)
	})
}

// Watch implements the api.WatchService subscription for the in-process
// fleet: a channel of device lifecycle events in per-device sequence
// order. With req.Device set the stream covers one device and may
// resume from req.FromSeq (retained events first, then live, gap-free);
// without it the stream covers the whole fleet, live-only. The channel
// closes when ctx ends or the fleet shuts down — after Close's final
// drain events. Slow consumers never block shard workers: overflow
// surfaces as an EventLagged marker in-stream (see api.EventLagged).
func (f *Fleet) Watch(ctx context.Context, req api.WatchRequest) (<-chan api.Event, error) {
	dev := -1
	if req.Device != nil {
		dev = *req.Device
		if dev < 0 || dev >= len(f.devices) {
			return nil, api.Errf(api.ErrUnknownDevice, "watch device %d of %d", dev, len(f.devices))
		}
	} else if req.FromSeq > 0 {
		return nil, api.Errf(api.ErrBadRequest, "from_seq requires a device filter")
	}
	sub := &subscriber{
		device:  dev,
		dropped: &f.hub.dropped,
		ring:    newEventRing(clampBuffer(req.Buffer, f.watchBuffer)),
		wake:    make(chan struct{}, 1),
		out:     make(chan api.Event),
	}
	if req.FromSeq > 0 {
		// Snapshot the history tail and register in one step under the
		// device lock: publishing happens under it too, so the live
		// stream continues exactly where the snapshot ends.
		d := f.devices[dev]
		d.mu.Lock()
		backlog, first := d.history.tailFrom(req.FromSeq, nil)
		if first > req.FromSeq {
			// The retention window no longer reaches back to FromSeq: the
			// stream opens with the evicted range as an explicit gap.
			backlog = append([]api.Event{{
				Type: api.EventLagged, Device: dev, Seq: req.FromSeq,
				Dropped: int(first - req.FromSeq),
			}}, backlog...)
		}
		sub.backlog = backlog
		err := f.hub.register(sub)
		d.mu.Unlock()
		if err != nil {
			return nil, api.Errf(api.ErrClosed, "watch on closed fleet")
		}
	} else if err := f.hub.register(sub); err != nil {
		return nil, api.Errf(api.ErrClosed, "watch on closed fleet")
	}
	go f.pump(ctx, sub)
	return sub.out, nil
}

// pump drains one subscriber's buffer into its channel at the
// consumer's pace, delivering the resume backlog first. It exits —
// unregistering and closing the channel — when the context ends or
// when the hub shuts down and the buffer is empty.
func (f *Fleet) pump(ctx context.Context, sub *subscriber) {
	defer func() {
		f.hub.unregister(sub)
		close(sub.out)
	}()
	for _, ev := range sub.backlog {
		select {
		case sub.out <- ev:
		case <-ctx.Done():
			return
		}
	}
	sub.backlog = nil
	for {
		if ev, ok := sub.pop(); ok {
			select {
			case sub.out <- ev:
				continue
			case <-ctx.Done():
				return
			}
		}
		select {
		case <-sub.wake:
		case <-ctx.Done():
			return
		case <-f.hub.done:
			// Shutdown: no further publishes can happen, so draining what
			// is buffered completes the stream.
			for {
				ev, ok := sub.pop()
				if !ok {
					return
				}
				select {
				case sub.out <- ev:
				case <-ctx.Done():
					return
				}
			}
		}
	}
}

// Watch implements api.WatchService on the fleet's service view; see
// (*Fleet).Watch.
func (s *Service) Watch(ctx context.Context, req api.WatchRequest) (<-chan api.Event, error) {
	return s.f.Watch(ctx, req)
}

var _ api.WatchService = (*Service)(nil)
