package fleet

import (
	"testing"

	"adaptrm/internal/api"
)

// BenchmarkWatchFanout measures the publish hot path a shard worker
// pays per manager event: offering one event to every registered
// subscriber's ring. Consumers are deliberately absent — full rings
// fold into Lagged markers — so the figure isolates the worker-side
// cost, which the allocs gate pins at zero (like the packer): fanning
// an event out must never allocate, whatever the subscriber count.
func BenchmarkWatchFanout(b *testing.B) {
	h := newHub()
	const subscribers = 8
	for i := 0; i < subscribers; i++ {
		s := &subscriber{
			device: -1,
			ring:   newEventRing(64),
			wake:   make(chan struct{}, 1),
			out:    make(chan api.Event),
		}
		if err := h.register(s); err != nil {
			b.Fatal(err)
		}
	}
	ev := api.Event{Device: 0, Type: api.EventJobAdmitted, JobID: 1, App: "lambda1", Deadline: 9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Seq = uint64(i + 1)
		h.publish(ev)
	}
}
