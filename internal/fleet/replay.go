package fleet

// Crash recovery: rebuild a fleet from persisted per-device state — an
// optional snapshot (rm.Snapshot) plus the tail of the device's event
// log — by re-driving the deterministic manager transitions that
// produced the log in the first place.
//
// The event stream is an operation log in disguise. Every manager call
// emits a fixed grammar of events, and the anchors let replay recover
// the call sequence exactly:
//
//	Submit (accepted)   derived* admitted schedule_changed
//	Submit (rejected)   derived* rejected
//	SubmitBatch (joint) derived* admitted×k schedule_changed   (k ≥ 2)
//	Cancel              cancelled schedule_changed
//	AdvanceTo           derived* clock_advanced
//	SwapSchedule        schedule_swapped
//	SetMode             mode_changed
//
// A schedule_swapped anchor is special: the swapped-in schedule came
// from an unbounded background search, so instead of re-running it,
// replay re-applies the schedule carried in the event's payload
// verbatim (rm.ReplaySwap) — deterministic by construction. A
// mode_changed anchor works the same way: the degradation controller's
// decision depended on live queue depths, so replay restores the mode
// carried in the payload verbatim (rm.ReplayMode) instead of
// re-deciding it.
//
// where derived* is any run of started / completed / schedule_changed
// events produced while the clock moves (including reschedule-on-finish
// re-plans). Sequential submits at the same instant interleave their
// schedule_changed terminators, so a run of consecutive admissions
// closed by a single schedule_changed is unambiguously a joint batch.
// A batch whose joint solve failed falls back to the sequential path
// and therefore logs — and replays — as individual submits; the only
// trace of the failed joint attempt is one scheduler activation, which
// replay does not repeat (Stats.Activations may undercount by the
// failed joint solves in the replayed tail; every deterministic
// admission, energy and timeline quantity is reconstructed exactly).
//
// A trailing partial unit — the process died between a unit's first
// event reaching the log and its anchor — is dropped, mirroring the
// frame-level torn-tail truncation; the caller learns the cut so it can
// truncate the physical log to match. During replay every re-emitted
// event is verified against the logged one, so a diverging scheduler,
// a corrupted log, or a mismatched configuration fails recovery loudly
// instead of rebuilding a subtly different fleet.

import (
	"errors"
	"fmt"

	"adaptrm/internal/api"
	"adaptrm/internal/rm"
)

// ErrRecovery flags persisted state Recover could not apply: a sequence
// gap, a malformed unit, or replayed transitions diverging from the
// log.
var ErrRecovery = errors.New("fleet: recovery failed")

// DeviceRecovery is one device's persisted state handed to Recover.
type DeviceRecovery struct {
	// Snapshot, when non-nil, seeds the device before replay; events
	// with Seq <= Snapshot.EventSeq are skipped.
	Snapshot *rm.Snapshot
	// Events is the device's event-log tail, contiguous and in sequence
	// order, starting at or before Snapshot.EventSeq+1 (at 1 for
	// log-only replay).
	Events []api.Event
}

// DeviceRecoveryResult reports what Recover applied for one device.
type DeviceRecoveryResult struct {
	// SnapshotSeq is the event sequence the snapshot covered (0 without
	// a snapshot).
	SnapshotSeq uint64
	// AppliedSeq is the last event sequence number reflected in the
	// recovered device (snapshot or replay; 0 for an empty recovery).
	AppliedSeq uint64
	// Replayed counts the events re-applied through manager transitions.
	Replayed int
	// Dropped counts trailing events discarded as an incomplete unit;
	// the persisted log should be truncated after Events[Replayed-1] (in
	// snapshot-skip order) so future appends continue from AppliedSeq.
	Dropped int
}

// Recover builds a fleet like New, but first restores each device named
// in rec: load the snapshot if present, then replay the event tail
// through the deterministic manager transitions, verifying every
// re-emitted event against the log. Devices absent from rec start
// fresh. The returned results are keyed like rec; on error the partial
// fleet is discarded (no workers have started).
//
// The replayed tail also re-populates the device's watch-resume history
// window, so a subscriber resuming after a crash sees the same
// retention semantics as after a restart without traffic loss.
func Recover(devs []DeviceConfig, opt Options, rec map[int]DeviceRecovery) (*Fleet, map[int]DeviceRecoveryResult, error) {
	for dev := range rec {
		if dev < 0 || dev >= len(devs) {
			return nil, nil, fmt.Errorf("%w: recovery for device %d of %d", ErrRecovery, dev, len(devs))
		}
	}
	f, err := build(devs, opt)
	if err != nil {
		return nil, nil, err
	}
	results := make(map[int]DeviceRecoveryResult, len(rec))
	for dev, dr := range rec {
		res, err := f.replayDevice(f.devices[dev], dr)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: device %d: %w", ErrRecovery, dev, err)
		}
		results[dev] = res
	}
	f.start()
	return f, results, nil
}

// replayDevice applies one device's persisted state. It runs before the
// shard workers start, so it owns the manager outright; the temporary
// verifying sink also feeds the watch-resume history ring.
func (f *Fleet) replayDevice(d *device, dr DeviceRecovery) (DeviceRecoveryResult, error) {
	var res DeviceRecoveryResult
	if dr.Snapshot != nil {
		if err := d.mgr.Restore(dr.Snapshot); err != nil {
			return res, err
		}
		res.SnapshotSeq = dr.Snapshot.EventSeq
		res.AppliedSeq = dr.Snapshot.EventSeq
	}
	evs := dr.Events
	for len(evs) > 0 && evs[0].Seq <= res.AppliedSeq {
		evs = evs[1:] // already covered by the snapshot
	}
	for i, ev := range evs {
		if want := res.AppliedSeq + uint64(i) + 1; ev.Seq != want {
			return res, fmt.Errorf("event log gap: seq %d, want %d", ev.Seq, want)
		}
	}
	ops, cut, err := parseReplayOps(evs)
	if err != nil {
		return res, err
	}
	cursor := 0
	var verr error
	d.mgr.SetEventSink(func(ev rm.Event) {
		if verr != nil {
			return
		}
		ae := toAPIEvent(d.id, ev)
		if cursor >= cut || ae != evs[cursor] {
			logged := "log exhausted"
			if cursor < cut {
				logged = fmt.Sprintf("logged %+v", evs[cursor])
			}
			verr = fmt.Errorf("replay diverged at seq %d: emitted %+v, %s", ev.Seq, ae, logged)
			return
		}
		cursor++
		d.history.push(ae)
	})
	for _, o := range ops {
		var err error
		switch o.kind {
		case opSubmit:
			_, _, _, err = d.mgr.Submit(o.at, o.app, o.deadline)
		case opBatch:
			_, _, err = d.mgr.SubmitBatch(o.at, o.items)
		case opCancel:
			err = d.mgr.Cancel(o.jobID)
		case opAdvance:
			_, err = d.mgr.AdvanceTo(o.at)
		case opSwap:
			err = d.mgr.ReplaySwap(o.at, o.payload)
		case opMode:
			err = d.mgr.ReplayMode(o.at, o.payload)
		}
		if err != nil {
			return res, fmt.Errorf("replaying seq %d: %w", res.AppliedSeq+uint64(cursor)+1, err)
		}
		if verr != nil {
			return res, verr
		}
	}
	if cursor != cut {
		return res, fmt.Errorf("replay emitted %d events, log holds %d", cursor, cut)
	}
	res.Replayed = cut
	res.Dropped = len(evs) - cut
	if cut > 0 {
		res.AppliedSeq = evs[cut-1].Seq
	}
	return res, nil
}

// replayOp is one reconstructed manager call.
type replayOp struct {
	kind         opKind
	at, deadline float64
	app          string
	jobID        int
	items        []rm.Request
	payload      string // schedule_swapped: the logged schedule JSON
}

// derivedEvent reports the event kinds that never start a unit on their
// own: they are produced inside the op whose anchor follows them.
func derivedEvent(t api.EventType) bool {
	return t == api.EventJobStarted || t == api.EventJobCompleted || t == api.EventScheduleChanged
}

// parseReplayOps reconstructs the manager-call sequence from an event
// log per the unit grammar above. cut is the number of leading events
// the returned ops fully account for; trailing events beyond it form an
// incomplete unit and must be discarded by the caller. A structurally
// impossible log (a Lagged marker, a cancellation without its
// schedule_changed) is an error — those cannot result from a torn
// tail, only from corruption or a non-contiguous log.
func parseReplayOps(evs []api.Event) (ops []replayOp, cut int, err error) {
	i := 0
	for i < len(evs) {
		j := i
		for j < len(evs) && derivedEvent(evs[j].Type) {
			j++
		}
		if j == len(evs) {
			break // derived events whose anchor never landed
		}
		switch a := evs[j]; a.Type {
		case api.EventJobRejected:
			ops = append(ops, replayOp{kind: opSubmit, at: a.At, app: a.App, deadline: a.Deadline})
			i = j + 1
		case api.EventClockAdvanced:
			ops = append(ops, replayOp{kind: opAdvance, at: a.At})
			i = j + 1
		case api.EventScheduleSwapped:
			if a.Payload == "" {
				return nil, 0, fmt.Errorf("schedule swap at seq %d carries no payload", a.Seq)
			}
			ops = append(ops, replayOp{kind: opSwap, at: a.At, payload: a.Payload})
			i = j + 1
		case api.EventModeChanged:
			if a.Payload == "" {
				return nil, 0, fmt.Errorf("mode change at seq %d carries no payload", a.Seq)
			}
			ops = append(ops, replayOp{kind: opMode, at: a.At, payload: a.Payload})
			i = j + 1
		case api.EventJobCancelled:
			if j+1 == len(evs) {
				return ops, cut, nil // terminator never landed
			}
			if evs[j+1].Type != api.EventScheduleChanged {
				return nil, 0, fmt.Errorf("cancellation at seq %d not followed by schedule change", a.Seq)
			}
			ops = append(ops, replayOp{kind: opCancel, jobID: a.JobID})
			i = j + 2
		case api.EventJobAdmitted:
			k := j
			for k+1 < len(evs) && evs[k+1].Type == api.EventJobAdmitted {
				k++
			}
			if k+1 == len(evs) {
				return ops, cut, nil // terminator never landed
			}
			if evs[k+1].Type != api.EventScheduleChanged {
				return nil, 0, fmt.Errorf("admission run at seq %d not closed by schedule change", a.Seq)
			}
			if k == j {
				ops = append(ops, replayOp{kind: opSubmit, at: a.At, app: a.App, deadline: a.Deadline})
			} else {
				items := make([]rm.Request, 0, k-j+1)
				for _, ev := range evs[j : k+1] {
					items = append(items, rm.Request{App: ev.App, Deadline: ev.Deadline})
				}
				ops = append(ops, replayOp{kind: opBatch, at: a.At, items: items})
			}
			i = k + 2
		default:
			return nil, 0, fmt.Errorf("event %q at seq %d cannot appear in a persisted log", a.Type, a.Seq)
		}
		cut = i
	}
	return ops, cut, nil
}

// DeviceSnapshot captures one device's reconstructable state under its
// lock — the fleet-level snapshot hook the durability layer periodically
// invokes. Safe while traffic is flowing: manager calls for the device
// serialize on the same lock.
func (f *Fleet) DeviceSnapshot(dev int) (*rm.Snapshot, error) {
	if dev < 0 || dev >= len(f.devices) {
		return nil, f.deviceErr(dev)
	}
	d := f.devices[dev]
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.mgr.Snapshot(), nil
}

// DeviceEventSeqs snapshots every device's last emitted event sequence
// number, in device order — the reference the WAL position is measured
// against on /metrics.
func (f *Fleet) DeviceEventSeqs() []uint64 {
	out := make([]uint64, len(f.devices))
	for i, d := range f.devices {
		d.mu.Lock()
		out[i] = d.mgr.EventSeq()
		d.mu.Unlock()
	}
	return out
}
