package fleet

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"adaptrm/internal/api"
	"adaptrm/internal/core"
	"adaptrm/internal/opset"
	"adaptrm/internal/platform"
	"adaptrm/internal/schedcache"
)

// anytimeDeviceConfig builds one device on the MDF-gap workload (the
// fleet-level twin of the exmem suite's mdfGapCase): admitting blocker
// then switcher leaves MMKP-MDF on a 14 J plan while the exact optimum
// is 13.4 J, so a refinement pass has something real to find.
func anytimeDeviceConfig(t *testing.T) DeviceConfig {
	t.Helper()
	blocker := &opset.Table{App: "blocker", Points: []opset.Point{
		{Alloc: platform.Alloc{1, 2}, Time: 4, Energy: 5},
	}}
	blocker.SortByEnergy()
	switcher := &opset.Table{App: "switcher", Points: []opset.Point{
		{Alloc: platform.Alloc{1, 0}, Time: 20, Energy: 2},
		{Alloc: platform.Alloc{1, 0}, Time: 8, Energy: 9},
		{Alloc: platform.Alloc{2, 2}, Time: 5, Energy: 10},
	}}
	switcher.SortByEnergy()
	lib := opset.NewLibrary()
	if err := lib.Add(blocker); err != nil {
		t.Fatal(err)
	}
	if err := lib.Add(switcher); err != nil {
		t.Fatal(err)
	}
	return DeviceConfig{Platform: platform.Motivational2L2B(), Library: lib, Scheduler: core.New()}
}

// admitGapPair admits the two gap-case jobs on device 0 and returns the
// event types observed so far is left to the caller's watch.
func admitGapPair(t *testing.T, f *Fleet) {
	t.Helper()
	svc := f.Service()
	for _, req := range []api.SubmitRequest{
		{Device: 0, At: 0, App: "blocker", Deadline: 4},
		{Device: 0, At: 0, App: "switcher", Deadline: 8.5},
	} {
		if r, err := svc.Submit(ctxBG, req); err != nil || !r.Accepted {
			t.Fatalf("submit %s: %+v err=%v", req.App, r, err)
		}
	}
}

// TestFleetAnytimeSwapDeterministic drives the refinement pool through
// the explicit TryStep drive (RefineWorkers < 0): the background search
// beats the MDF incumbent, the swap flows through the shard mailbox,
// and the run is reproducible event-for-event across repetitions.
func TestFleetAnytimeSwapDeterministic(t *testing.T) {
	type outcome struct {
		Energy  float64
		Swapped int
		Stats   Stats
		Events  []api.EventType
	}
	run := func() outcome {
		shared := schedcache.NewShared()
		f, err := New([]DeviceConfig{anytimeDeviceConfig(t)},
			Options{Cache: true, SharedCache: shared, Refine: true, RefineWorkers: -1})
		if err != nil {
			t.Fatal(err)
		}
		ch, err := f.Service().Watch(ctxBG, api.WatchRequest{Buffer: 1 << 10})
		if err != nil {
			t.Fatal(err)
		}
		evs, wait := collectWatch(ch)
		admitGapPair(t, f)
		steps := 0
		for f.Refiner().TryStep() {
			steps++
		}
		if steps != 2 {
			t.Fatalf("refinement steps = %d, want 2 (one offer per admission)", steps)
		}
		// A synchronous op on the same device orders the capture behind
		// the fire-and-forget swap post (same shard, FIFO mailbox).
		if _, err := f.Service().Advance(ctxBG, api.AdvanceRequest{Device: 0, To: 0}); err != nil {
			t.Fatal(err)
		}
		ds, err := f.DeviceStats(0)
		if err != nil {
			t.Fatal(err)
		}
		if ss := shared.Stats(); ss.ExactEntries < 1 {
			t.Errorf("refined schedule not promoted to the shared tier: %+v", ss)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		wait()
		types := make([]api.EventType, len(*evs))
		for i, ev := range *evs {
			types[i] = ev.Type
			if ev.Type == api.EventScheduleSwapped && ev.Payload == "" {
				t.Error("schedule_swapped event without payload")
			}
		}
		s := f.Stats()
		return outcome{Energy: s.Energy, Swapped: ds.Swapped, Stats: deterministic(s), Events: types}
	}

	first := run()
	if first.Swapped != 1 {
		t.Fatalf("Swapped = %d, want 1", first.Swapped)
	}
	if math.Abs(first.Energy-13.4) > 1e-6 {
		t.Errorf("energy = %v, want 13.4 (exact optimum; MDF alone gives 14)", first.Energy)
	}
	if first.Stats.RefineSearches != 2 || first.Stats.RefineImproved != 1 || first.Stats.Swaps != 1 {
		t.Errorf("refine counters: %+v", first.Stats)
	}
	swaps := 0
	for _, ty := range first.Events {
		if ty == api.EventScheduleSwapped {
			swaps++
		}
	}
	if swaps != 1 {
		t.Errorf("watch log has %d schedule_swapped events, want 1", swaps)
	}
	for rep := 0; rep < 2; rep++ {
		if again := run(); !reflect.DeepEqual(again, first) {
			t.Fatalf("run %d diverged:\n got %+v\nwant %+v", rep+2, again, first)
		}
	}
}

// TestFleetAnytimeWarmServesExact is the tentpole property in
// miniature: a shared tier warmed by one fleet's refinements (round-
// tripped through the Save/Load wire format, as -cache-warm does)
// serves the exact schedule at admission time on a fresh fleet — exact
// quality at lookup latency, no search and no swap needed — and the
// refiner's probe skips the already-solved problem.
func TestFleetAnytimeWarmServesExact(t *testing.T) {
	warmed := schedcache.NewShared()
	f1, err := New([]DeviceConfig{anytimeDeviceConfig(t)},
		Options{Cache: true, SharedCache: warmed, Refine: true, RefineWorkers: -1})
	if err != nil {
		t.Fatal(err)
	}
	admitGapPair(t, f1)
	for f1.Refiner().TryStep() {
	}
	if err := f1.Close(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := warmed.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded := schedcache.NewShared()
	if err := loaded.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if ls := loaded.Stats(); ls.ExactEntries < 1 || ls.Entries != warmed.Len() {
		t.Fatalf("warm round-trip lost entries: %+v vs %d", ls, warmed.Len())
	}

	f2, err := New([]DeviceConfig{anytimeDeviceConfig(t)},
		Options{Cache: true, SharedCache: loaded, Refine: true, RefineWorkers: -1})
	if err != nil {
		t.Fatal(err)
	}
	admitGapPair(t, f2)
	for f2.Refiner().TryStep() {
	}
	if _, err := f2.Service().Advance(ctxBG, api.AdvanceRequest{Device: 0, To: 0}); err != nil {
		t.Fatal(err)
	}
	ds, err := f2.DeviceStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}
	s := f2.Stats()
	if ds.Swapped != 0 {
		t.Errorf("warm fleet swapped %d times; the admission should already be exact", ds.Swapped)
	}
	if math.Abs(s.Energy-13.4) > 1e-6 {
		t.Errorf("warm-fleet energy = %v, want the exact 13.4 at admission time", s.Energy)
	}
	if s.CacheSharedHits < 1 {
		t.Errorf("no shared-tier hits on the warm fleet: %+v", s)
	}
	if s.RefineSkipped < 1 {
		t.Errorf("refiner probe did not skip the already-exact problem: %+v", s)
	}
}

// TestFleetRefinePassiveEquivalence pins the "refinement off ≡ today"
// bar: a fleet built with Refine enabled but never stepped
// (RefineWorkers < 0) behaves byte-identically to one without the
// feature — same per-device states, same event logs, same deterministic
// aggregate statistics.
func TestFleetRefinePassiveEquivalence(t *testing.T) {
	const n, seed, ops = 3, 77, 120
	run := func(opt Options) ([]deviceState, [][]api.Event, Stats) {
		f := newTestFleet(t, n, opt)
		ch, err := f.Service().Watch(ctxBG, api.WatchRequest{Buffer: 1 << 14})
		if err != nil {
			t.Fatal(err)
		}
		evs, wait := collectWatch(ch)
		now := make([]float64, n)
		driveRecoveryTraffic(t, f, n, seed, ops, now, false)
		states := make([]deviceState, n)
		for d := 0; d < n; d++ {
			states[d] = captureDevice(t, f, d, false)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		wait()
		logs := perDeviceLogs(*evs, n)
		for d := 0; d < n; d++ {
			cut := len(logs[d])
			for cut > 0 && logs[d][cut-1].Seq > states[d].Seq {
				cut--
			}
			logs[d] = logs[d][:cut]
		}
		st := deterministic(f.Stats())
		// The refine counters are operational by contract; everything
		// else must match exactly.
		st.RefineSearches, st.RefineImproved, st.RefineSkipped, st.RefineDropped = 0, 0, 0, 0
		return states, logs, st
	}
	baseStates, baseLogs, baseStats := run(Options{Shards: 2, Cache: true})
	pasStates, pasLogs, pasStats := run(Options{Shards: 2, Cache: true, Refine: true, RefineWorkers: -1})
	if !reflect.DeepEqual(pasStates, baseStates) {
		t.Errorf("device states diverge with a passive refiner:\n got %+v\nwant %+v", pasStates, baseStates)
	}
	if !reflect.DeepEqual(pasLogs, baseLogs) {
		t.Error("event logs diverge with a passive refiner")
	}
	if !reflect.DeepEqual(pasStats, baseStats) {
		t.Errorf("stats diverge with a passive refiner:\n got %+v\nwant %+v", pasStats, baseStats)
	}

	// A shared tier changes which cache level serves a lookup — the
	// cache counters legitimately move between levels — but never the
	// scheduling outcome: per-device states and event logs stay
	// byte-identical.
	shStates, shLogs, _ := run(Options{Shards: 2, Cache: true, SharedCache: schedcache.NewShared(),
		Refine: true, RefineWorkers: -1})
	if !reflect.DeepEqual(shStates, baseStates) {
		t.Errorf("device states diverge with a shared tier:\n got %+v\nwant %+v", shStates, baseStates)
	}
	if !reflect.DeepEqual(shLogs, baseLogs) {
		t.Error("event logs diverge with a shared tier")
	}
}

// TestRecoverSwapEquivalence extends the kill-and-recover oracle to
// logs containing schedule_swapped events: recovery replays the logged
// schedule verbatim (no background search) and lands on the identical
// post-swap state.
func TestRecoverSwapEquivalence(t *testing.T) {
	f, err := New([]DeviceConfig{anytimeDeviceConfig(t)},
		Options{Cache: true, Refine: true, RefineWorkers: -1})
	if err != nil {
		t.Fatal(err)
	}
	svc := f.Service()
	ch, err := svc.Watch(ctxBG, api.WatchRequest{Buffer: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	evs, wait := collectWatch(ch)
	admitGapPair(t, f)
	for f.Refiner().TryStep() {
	}
	if _, err := svc.Advance(ctxBG, api.AdvanceRequest{Device: 0, To: 0}); err != nil {
		t.Fatal(err)
	}
	// Execute into the swapped schedule so the recovered timeline must
	// reproduce post-swap segments, not just the plan.
	if _, err := svc.Advance(ctxBG, api.AdvanceRequest{Device: 0, To: 5}); err != nil {
		t.Fatal(err)
	}
	want := captureDevice(t, f, 0, false)
	if want.Stats.Swapped != 1 {
		t.Fatalf("fixture produced no swap: %+v", want.Stats)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	wait()
	log := perDeviceLogs(*evs, 1)[0]
	cut := len(log)
	for cut > 0 && log[cut-1].Seq > want.Seq {
		cut--
	}
	log = log[:cut]
	hasSwap := false
	for _, ev := range log {
		if ev.Type == api.EventScheduleSwapped {
			hasSwap = true
		}
	}
	if !hasSwap {
		t.Fatal("log carries no schedule_swapped event")
	}

	f2, results, err := Recover([]DeviceConfig{anytimeDeviceConfig(t)}, Options{},
		map[int]DeviceRecovery{0: {Events: log}})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	got := captureDevice(t, f2, 0, false)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("recovered state differs:\n got %+v\nwant %+v", got, want)
	}
	if res := results[0]; res.AppliedSeq != want.Seq || res.Dropped != 0 {
		t.Errorf("recovery result %+v, want applied %d dropped 0", res, want.Seq)
	}
}
