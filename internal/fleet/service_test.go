package fleet

import (
	"context"
	"errors"
	"testing"
	"time"

	"adaptrm/internal/api"
	"adaptrm/internal/core"
	"adaptrm/internal/job"
	"adaptrm/internal/motiv"
	"adaptrm/internal/platform"
	"adaptrm/internal/sched"
	"adaptrm/internal/schedule"
	"adaptrm/internal/workload"
)

// ctxBG shortens the no-cancellation calls.
var ctxBG = context.Background()

// TestServiceSubmitReturnsDecision replays the motivational scenario
// through the typed protocol: the decision, job ids and completions all
// come back to the caller instead of being discarded.
func TestServiceSubmitReturnsDecision(t *testing.T) {
	f := newTestFleet(t, 1, Options{})
	svc := f.Service()
	r1, err := svc.Submit(ctxBG, api.SubmitRequest{Device: 0, At: 0, App: "lambda1", Deadline: 9})
	if err != nil || !r1.Accepted || r1.JobID != 1 {
		t.Fatalf("λ1: res %+v err %v, want accepted job 1", r1, err)
	}
	r2, err := svc.Submit(ctxBG, api.SubmitRequest{Device: 0, At: 1, App: "lambda2", Deadline: 5})
	if err != nil || !r2.Accepted || r2.JobID != 2 {
		t.Fatalf("λ2: res %+v err %v, want accepted job 2", r2, err)
	}
	adv, err := svc.Advance(ctxBG, api.AdvanceRequest{Device: 0, To: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(adv.Completions) != 2 {
		t.Fatalf("completions = %+v, want both jobs", adv.Completions)
	}
	for _, c := range adv.Completions {
		if c.Missed {
			t.Errorf("job %d missed its deadline", c.JobID)
		}
	}
	st, err := svc.Stats(ctxBG, api.StatsRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Submitted != 2 || st.Accepted != 2 || st.Completed != 2 {
		t.Fatalf("stats = %+v", st)
	}
	dev := 0
	ds, err := svc.Stats(ctxBG, api.StatsRequest{Device: &dev})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Devices != 1 || ds.Accepted != 2 {
		t.Fatalf("device stats = %+v", ds)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServiceRejectionIsTyped: the 2L2B platform fits one λ1 with
// deadline 9 but MMKP-MDF finds no plan for a second — the second
// submission must return api.ErrInfeasible with Accepted false, and the
// fleet must keep serving afterwards.
func TestServiceRejectionIsTyped(t *testing.T) {
	f := newTestFleet(t, 1, Options{})
	defer f.Close()
	svc := f.Service()
	if r, err := svc.Submit(ctxBG, api.SubmitRequest{Device: 0, At: 0, App: "lambda1", Deadline: 9}); err != nil || !r.Accepted {
		t.Fatalf("first λ1: res %+v err %v", r, err)
	}
	r, err := svc.Submit(ctxBG, api.SubmitRequest{Device: 0, At: 0, App: "lambda1", Deadline: 9})
	if !errors.Is(err, api.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if r.Accepted || r.JobID != 0 {
		t.Fatalf("rejected submit returned %+v", r)
	}
	st, _ := svc.Stats(ctxBG, api.StatsRequest{})
	if st.Rejected != 1 || st.Accepted != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The rejection left no residue: a feasible shape is still admitted.
	if r, err := svc.Submit(ctxBG, api.SubmitRequest{Device: 0, At: 0, App: "lambda2", Deadline: 9}); err != nil || !r.Accepted {
		t.Fatalf("λ2 after rejection: res %+v err %v", r, err)
	}
}

// TestServiceCancelReclaimsResources: after a rejection, cancelling an
// admitted job must free enough capacity for the rejected shape to be
// admitted on retry — the pass-through the legacy fleet lacked.
func TestServiceCancelReclaimsResources(t *testing.T) {
	f := newTestFleet(t, 1, Options{})
	defer f.Close()
	svc := f.Service()
	first, err := svc.Submit(ctxBG, api.SubmitRequest{Device: 0, At: 0, App: "lambda1", Deadline: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := svc.Submit(ctxBG, api.SubmitRequest{Device: 0, At: 0, App: "lambda2", Deadline: 9}); err != nil {
			t.Fatalf("λ2 #%d: %v", i, err)
		}
	}
	if _, err := svc.Submit(ctxBG, api.SubmitRequest{Device: 0, At: 0, App: "lambda2", Deadline: 9}); !errors.Is(err, api.ErrInfeasible) {
		t.Fatalf("third λ2 not rejected: %v", err)
	}
	cr, err := svc.Cancel(ctxBG, api.CancelRequest{Device: 0, JobID: first.JobID})
	if err != nil || !cr.Cancelled {
		t.Fatalf("cancel: %+v, %v", cr, err)
	}
	if r, err := svc.Submit(ctxBG, api.SubmitRequest{Device: 0, At: 0, App: "lambda2", Deadline: 9}); err != nil || !r.Accepted {
		t.Fatalf("resubmit after cancel: res %+v err %v", r, err)
	}
	// The legacy pass-through reaches the same manager.
	if err := f.Cancel(0, 2); err != nil {
		t.Fatalf("legacy Cancel: %v", err)
	}
	if err := f.Cancel(0, 999); !errors.Is(err, api.ErrUnknownJob) {
		t.Fatalf("legacy Cancel unknown job: %v", err)
	}
}

// TestServiceErrorTaxonomy checks every typed error the in-process
// implementation can produce.
func TestServiceErrorTaxonomy(t *testing.T) {
	f := newTestFleet(t, 2, Options{})
	svc := f.Service()
	cases := []struct {
		name string
		call func() error
		want *api.Error
	}{
		{"unknown device", func() error {
			_, err := svc.Submit(ctxBG, api.SubmitRequest{Device: 9, At: 0, App: "lambda1", Deadline: 9})
			return err
		}, api.ErrUnknownDevice},
		{"negative device", func() error {
			_, err := svc.Advance(ctxBG, api.AdvanceRequest{Device: -1, To: 5})
			return err
		}, api.ErrUnknownDevice},
		{"unknown app", func() error {
			_, err := svc.Submit(ctxBG, api.SubmitRequest{Device: 0, At: 0, App: "nope", Deadline: 9})
			return err
		}, api.ErrUnknownApp},
		{"bad deadline", func() error {
			_, err := svc.Submit(ctxBG, api.SubmitRequest{Device: 0, At: 5, App: "lambda1", Deadline: 5})
			return err
		}, api.ErrBadRequest},
		{"time backwards", func() error {
			if _, err := svc.Advance(ctxBG, api.AdvanceRequest{Device: 1, To: 10}); err != nil {
				return err
			}
			_, err := svc.Advance(ctxBG, api.AdvanceRequest{Device: 1, To: 3})
			return err
		}, api.ErrBadRequest},
		{"unknown job", func() error {
			_, err := svc.Cancel(ctxBG, api.CancelRequest{Device: 0, JobID: 77})
			return err
		}, api.ErrUnknownJob},
		{"stats unknown device", func() error {
			dev := 5
			_, err := svc.Stats(ctxBG, api.StatsRequest{Device: &dev})
			return err
		}, api.ErrUnknownDevice},
	}
	for _, c := range cases {
		if err := c.call(); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(ctxBG, api.SubmitRequest{Device: 0, At: 0, App: "lambda1", Deadline: 9}); !errors.Is(err, api.ErrClosed) {
		t.Errorf("submit after close: %v, want ErrClosed", err)
	}
}

// blockingScheduler wraps MMKP-MDF but stalls every solve until
// released, letting tests wedge a shard worker deterministically.
func blockingScheduler(release <-chan struct{}) sched.Scheduler {
	inner := core.New()
	return sched.Func{ID: "blocking", F: func(jobs job.Set, plat platform.Platform, t float64) (*schedule.Schedule, error) {
		<-release
		return inner.Schedule(jobs, plat, t)
	}}
}

// TestServiceBackpressureHonoursContext wedges the single shard worker,
// fills the one-slot mailbox, and checks that a context-bounded submit
// fails with ErrOverloaded (and the context cause) instead of blocking
// forever — then releases the worker and verifies nothing was lost.
func TestServiceBackpressureHonoursContext(t *testing.T) {
	release := make(chan struct{})
	devs := []DeviceConfig{{
		Platform:  motiv.Platform(),
		Library:   motiv.Library(),
		Scheduler: blockingScheduler(release),
	}}
	f, err := New(devs, Options{Shards: 1, MailboxSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	svc := f.Service()
	// First request: the worker picks it up and stalls inside the solve.
	// Second request: parks in the mailbox, filling it.
	if err := f.Replay([]workload.FleetRequest{
		{Device: 0, At: 0, App: "lambda1", Deadline: 30},
		{Device: 0, At: 1, App: "lambda2", Deadline: 31},
	}); err != nil {
		t.Fatal(err)
	}
	// Replay returning guarantees the mailbox is full: the second send
	// into the size-1 mailbox can only land after the worker removed
	// the first op (now wedged in its solve).
	ctx, cancel := context.WithTimeout(ctxBG, 50*time.Millisecond)
	defer cancel()
	_, err = svc.Submit(ctx, api.SubmitRequest{Device: 0, At: 2, App: "lambda1", Deadline: 40})
	if !errors.Is(err, api.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded in the chain", err)
	}
	// A pre-cancelled context fails fast even with mailbox space.
	cancelled, cancel2 := context.WithCancel(ctxBG)
	cancel2()
	if _, err := svc.Submit(cancelled, api.SubmitRequest{Device: 0, At: 3, App: "lambda1", Deadline: 41}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled submit: %v, want context.Canceled", err)
	}
	close(release)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	s := f.Stats()
	if s.Submitted != 2 || s.Completed != s.Accepted {
		t.Fatalf("post-release stats: %+v", s)
	}
}

// TestServiceMatchesLegacyReplay drives the same seeded trace through
// the typed service (sequentially per device) and through the legacy
// fire-and-forget Replay, asserting identical deterministic aggregates.
func TestServiceMatchesLegacyReplay(t *testing.T) {
	trace, err := workload.FleetTrace(motiv.Library(), workload.FleetTraceParams{
		Devices: 3, Rate: 0.2, RateSpread: 0.5, Horizon: 80, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}

	legacy := newTestFleet(t, 3, Options{Shards: 2})
	if err := legacy.Replay(trace); err != nil {
		t.Fatal(err)
	}
	if err := legacy.Close(); err != nil {
		t.Fatal(err)
	}

	typed := newTestFleet(t, 3, Options{Shards: 2})
	svc := typed.Service()
	var accepted, rejected int
	for _, r := range trace {
		res, err := svc.Submit(ctxBG, api.SubmitRequest{Device: r.Device, At: r.At, App: r.App, Deadline: r.Deadline})
		switch {
		case err == nil && res.Accepted:
			accepted++
		case errors.Is(err, api.ErrInfeasible):
			rejected++
		default:
			t.Fatalf("submit %+v: %v", r, err)
		}
	}
	if err := typed.Close(); err != nil {
		t.Fatal(err)
	}

	a, b := legacy.Stats(), typed.Stats()
	if deterministic(a) != deterministic(b) {
		t.Errorf("stats diverged:\nlegacy %+v\ntyped  %+v", deterministic(a), deterministic(b))
	}
	if accepted != b.Accepted || rejected != b.Rejected {
		t.Errorf("per-request decisions (%d/%d) disagree with stats %+v", accepted, rejected, b)
	}
}
