package fleet

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"adaptrm/internal/api"
	"adaptrm/internal/control"
	"adaptrm/internal/motiv"
	"adaptrm/internal/workload"
)

// TestControllerSteadyLightLoadEquivalence is the do-no-harm bar of the
// control layer: with a live controller ticking concurrently under
// steady light load (queues always in the drained band, so no actuator
// ever moves), the fleet's stats, per-device state and full event log
// are byte-identical to the controller-less fleet on the same trace.
// Run under -race this also exercises the Limits/Tick atomics against
// real traffic.
func TestControllerSteadyLightLoadEquivalence(t *testing.T) {
	const n, seed, ops = 3, 21, 120

	run := func(ctl *control.Controller) ([]deviceState, api.StatsResult, []api.Event) {
		t.Helper()
		f := newTestFleet(t, n, Options{Shards: 2, Control: ctl})
		svc := f.Service()
		ch, err := svc.Watch(ctxBG, api.WatchRequest{Buffer: 1 << 14})
		if err != nil {
			t.Fatal(err)
		}
		evs, wait := collectWatch(ch)

		stop := make(chan struct{})
		var tick sync.WaitGroup
		if ctl != nil {
			tick.Add(1)
			go func() {
				defer tick.Done()
				now := 1.0
				for {
					select {
					case <-stop:
						return
					default:
						ctl.Tick(now)
						now++
						time.Sleep(200 * time.Microsecond)
					}
				}
			}()
		}

		now := make([]float64, n)
		driveRecoveryTraffic(t, f, n, seed, ops, now, false)
		close(stop)
		tick.Wait()

		states := make([]deviceState, n)
		for d := 0; d < n; d++ {
			states[d] = captureDevice(t, f, d, false)
		}
		stats, err := svc.Stats(ctxBG, api.StatsRequest{})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		wait()
		return states, stats.Deterministic(), *evs
	}

	baseStates, baseStats, baseEvs := run(nil)
	ctl := control.New(control.Config{})
	ctlStates, ctlStats, ctlEvs := run(ctl)

	if st := ctl.Status(); st.Mode != control.ModeNormal || st.ModeChanges != 0 || st.Ticks == 0 {
		t.Fatalf("light-load controller status = %+v, want ticking in normal mode", st)
	}
	if !reflect.DeepEqual(ctlStates, baseStates) {
		t.Errorf("device states diverged:\n ctl  %+v\n base %+v", ctlStates, baseStates)
	}
	if ctlStats != baseStats {
		t.Errorf("deterministic stats diverged:\n ctl  %+v\n base %+v", ctlStats, baseStats)
	}
	if !reflect.DeepEqual(ctlEvs, baseEvs) {
		t.Errorf("event logs diverged: %d vs %d events", len(ctlEvs), len(baseEvs))
	}
}

// TestControllerBurstShedsAndRecovers drives the overload story end to
// end on a wedged single-shard fleet: sustained queue pressure walks
// the controller normal → heuristic_only → shedding (each transition a
// mode_changed event), a submit in shedding is rejected with
// ErrOverloaded before anything is enqueued or any solver activation
// spent, advances and cancels keep draining, and a drained queue walks
// the controller back to normal.
func TestControllerBurstShedsAndRecovers(t *testing.T) {
	release := make(chan struct{})
	devs := []DeviceConfig{{
		Platform:  motiv.Platform(),
		Library:   motiv.Library(),
		Scheduler: blockingScheduler(release),
	}}
	// Any queued op counts as pressure, only an empty queue as drain:
	// the tick outcomes depend solely on whether the wedge has drained,
	// not on how far along it is.
	ctl := control.New(control.Config{
		HighDepthFrac: 0.01, LowDepthFrac: 0.005,
		EnterTicks: 1, ExitTicks: 1,
	})
	f, err := New(devs, Options{Shards: 1, MailboxSize: 8, Control: ctl})
	if err != nil {
		t.Fatal(err)
	}
	svc := f.Service()
	ch, err := svc.Watch(ctxBG, api.WatchRequest{Buffer: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	evs, wait := collectWatch(ch)

	// Wedge the worker and park a burst behind it.
	if err := f.Replay([]workload.FleetRequest{
		{Device: 0, At: 0, App: "lambda1", Deadline: 20},
		{Device: 0, At: 1, App: "lambda1", Deadline: 30},
		{Device: 0, At: 2, App: "lambda2", Deadline: 35},
		{Device: 0, At: 3, App: "lambda1", Deadline: 40},
	}); err != nil {
		t.Fatal(err)
	}

	// Two pressured ticks escalate to shedding. Each transition's mode
	// broadcast needs the device lock the wedged solve is holding, so
	// the ticks run in a goroutine and the test feeds one solve release
	// whenever the tick sequence has not completed yet.
	ticked := make(chan struct{})
	go func() {
		defer close(ticked)
		ctl.Tick(1)
		ctl.Tick(2)
	}()
	for done := false; !done; {
		select {
		case <-ticked:
			done = true
		case release <- struct{}{}:
			time.Sleep(2 * time.Millisecond)
		}
	}
	if got := ctl.Mode(); got != control.ModeShedding {
		t.Fatalf("mode after pressured ticks = %v, want shedding", got)
	}

	// Admission sheds before the scheduler: ErrOverloaded, nothing
	// enqueued.
	depthBefore, _ := f.QueuePressure()
	if _, err := svc.Submit(ctxBG, api.SubmitRequest{Device: 0, At: 4, App: "lambda1", Deadline: 50}); !errors.Is(err, api.ErrOverloaded) {
		t.Fatalf("shedding submit: %v, want ErrOverloaded", err)
	}
	if _, err := svc.SubmitBatch(ctxBG, api.BatchSubmitRequest{Device: 0, At: 4, Items: []api.BatchItem{
		{App: "lambda1", Deadline: 50},
	}}); !errors.Is(err, api.ErrOverloaded) {
		t.Fatalf("shedding batch: %v, want ErrOverloaded", err)
	}
	if depthAfter, _ := f.QueuePressure(); depthAfter > depthBefore {
		t.Errorf("shed submit was enqueued: depth %d -> %d", depthBefore, depthAfter)
	}
	if st := ctl.Status(); st.Sheds != 2 {
		t.Errorf("sheds = %d, want 2", st.Sheds)
	}

	// Drain the wedge fully; admitted work keeps flowing in shedding.
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if d, _ := f.QueuePressure(); d == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never drained after release")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := svc.Advance(ctxBG, api.AdvanceRequest{Device: 0, To: 5}); err != nil {
		t.Fatalf("advance must not shed: %v", err)
	}
	if _, err := svc.Cancel(ctxBG, api.CancelRequest{Device: 0, JobID: 9999}); !errors.Is(err, api.ErrUnknownJob) {
		t.Fatalf("cancel must not shed: %v", err)
	}

	// Two drained ticks walk back to normal; admission works again.
	ctl.Tick(3)
	ctl.Tick(4)
	if got := ctl.Mode(); got != control.ModeNormal {
		t.Fatalf("mode after drained ticks = %v, want normal", got)
	}
	if _, err := svc.Submit(ctxBG, api.SubmitRequest{Device: 0, At: 6, App: "lambda1", Deadline: 60}); err != nil {
		t.Fatalf("post-recovery submit: %v", err)
	}

	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	wait()

	// The transition history rode the ordinary event machinery.
	var modes []string
	for _, ev := range *evs {
		if ev.Type == api.EventModeChanged {
			modes = append(modes, ev.Payload)
		}
	}
	wantModes := []string{"heuristic_only", "shedding", "heuristic_only", "normal"}
	if !reflect.DeepEqual(modes, wantModes) {
		t.Errorf("mode_changed payloads = %v, want %v", modes, wantModes)
	}

	s := f.Stats()
	// 4 burst submits + 1 post-recovery reached a manager; the 2 shed
	// ones never did.
	if s.Submitted != 5 {
		t.Errorf("submitted = %d, want 5 (shed requests must not reach a manager)", s.Submitted)
	}
	if s.Shed != 2 || s.ControlMode != "normal" || s.ControlModeChanges != 4 {
		t.Errorf("control stats: mode %q shed %d changes %d, want normal/2/4",
			s.ControlMode, s.Shed, s.ControlModeChanges)
	}
}

// TestRecoverRestoresMode pins crash recovery of the degradation tier:
// mode_changed events replay verbatim (the recovery verifier rejects
// any divergence), the recovered device reports the logged mode, and a
// snapshot taken in a degraded mode restores it directly.
func TestRecoverRestoresMode(t *testing.T) {
	live := newTestFleet(t, 2, Options{Shards: 2})
	svc := live.Service()
	ch, err := svc.Watch(ctxBG, api.WatchRequest{Buffer: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	evs, wait := collectWatch(ch)

	if _, err := svc.Submit(ctxBG, api.SubmitRequest{Device: 0, At: 0, App: "lambda1", Deadline: 9}); err != nil {
		t.Fatal(err)
	}
	live.applyMode(control.ModeNormal, control.ModeHeuristicOnly)
	if _, err := svc.Submit(ctxBG, api.SubmitRequest{Device: 0, At: 1, App: "lambda2", Deadline: 8}); err != nil {
		t.Fatal(err)
	}
	live.applyMode(control.ModeHeuristicOnly, control.ModeShedding)

	// A snapshot taken now carries the degraded mode.
	snap, err := live.DeviceSnapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Mode != "shedding" {
		t.Fatalf("snapshot mode = %q, want shedding", snap.Mode)
	}

	states := make([]deviceState, 2)
	for d := range states {
		states[d] = captureDevice(t, live, d, false)
	}
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}
	wait()
	logs := perDeviceLogs(*evs, 2)
	for d := range logs {
		cut := len(logs[d])
		for cut > 0 && logs[d][cut-1].Seq > states[d].Seq {
			cut--
		}
		logs[d] = logs[d][:cut]
	}

	// Log-only recovery: every device replays its mode transitions.
	rec := map[int]DeviceRecovery{
		0: {Events: logs[0]},
		1: {Events: logs[1]},
	}
	f2, _, err := Recover([]DeviceConfig{testDeviceConfig(), testDeviceConfig()}, Options{Shards: 2}, rec)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	for d := range states {
		if got := captureDevice(t, f2, d, false); !reflect.DeepEqual(got, states[d]) {
			t.Errorf("device %d recovered state = %+v, want %+v", d, got, states[d])
		}
		s2, err := f2.DeviceSnapshot(d)
		if err != nil {
			t.Fatal(err)
		}
		if s2.Mode != "shedding" {
			t.Errorf("device %d recovered mode = %q, want shedding", d, s2.Mode)
		}
	}

	// Snapshot-plus-tail recovery restores the mode from the snapshot.
	f3, _, err := Recover([]DeviceConfig{testDeviceConfig(), testDeviceConfig()}, Options{Shards: 2},
		map[int]DeviceRecovery{0: {Snapshot: snap, Events: logs[0]}})
	if err != nil {
		t.Fatal(err)
	}
	defer f3.Close()
	if got := captureDevice(t, f3, 0, false); !reflect.DeepEqual(got, states[0]) {
		t.Errorf("snapshot recovery state = %+v, want %+v", got, states[0])
	}
	s3, err := f3.DeviceSnapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Mode != "shedding" {
		t.Errorf("snapshot-recovered mode = %q, want shedding", s3.Mode)
	}

	// A mode_changed event with a corrupted payload fails recovery
	// loudly instead of silently installing the wrong tier.
	bad := append([]api.Event(nil), logs[0]...)
	for i := range bad {
		if bad[i].Type == api.EventModeChanged {
			bad[i].Payload = "bogus"
			break
		}
	}
	if _, _, err := Recover([]DeviceConfig{testDeviceConfig(), testDeviceConfig()}, Options{Shards: 2},
		map[int]DeviceRecovery{0: {Events: bad}}); !errors.Is(err, ErrRecovery) {
		t.Errorf("corrupted mode payload recovered: %v, want ErrRecovery", err)
	}
}
