package dse

import (
	"testing"

	"adaptrm/internal/kpn"
	"adaptrm/internal/platform"
)

func TestExploreGraph(t *testing.T) {
	plat := platform.OdroidXU4()
	tables, err := ExploreGraph(kpn.AudioFilter(), plat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("%d tables, want 3 variants", len(tables))
	}
	for _, tbl := range tables {
		if err := tbl.Validate(plat); err != nil {
			t.Errorf("%s: %v", tbl.Name(), err)
		}
		if tbl.Len() < 5 {
			t.Errorf("%s: suspiciously sparse front (%d points)", tbl.Name(), tbl.Len())
		}
		// The front must include a little-only point (energy extreme)
		// and a point using big cores (time extreme).
		fastest := tbl.FastestTime()
		cheapest := tbl.Points[0]
		if cheapest.Alloc[1] != 0 {
			t.Errorf("%s: cheapest point %v uses big cores", tbl.Name(), cheapest.Alloc)
		}
		var hasBigFast bool
		for _, p := range tbl.Points {
			if p.Time == fastest && p.Alloc[1] > 0 {
				hasBigFast = true
			}
		}
		if !hasBigFast {
			t.Errorf("%s: fastest point does not use big cores", tbl.Name())
		}
	}
}

func TestExploreGraphInvalid(t *testing.T) {
	plat := platform.OdroidXU4()
	if _, err := ExploreGraph(kpn.Graph{}, plat, Options{}); err == nil {
		t.Error("invalid graph accepted")
	}
}

func TestMaxPointsPerTable(t *testing.T) {
	plat := platform.OdroidXU4()
	tables, err := ExploreGraph(kpn.AudioFilter(), plat, Options{MaxPointsPerTable: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, tbl := range tables {
		if tbl.Len() > 7 {
			t.Errorf("%s: %d points after thinning to 7", tbl.Name(), tbl.Len())
		}
		if err := tbl.Validate(plat); err != nil {
			t.Errorf("%s: thinned table invalid: %v", tbl.Name(), err)
		}
	}
}

// The standard library reproduces the paper's Pareto-configuration
// counts: 28 for speaker recognition, 36 for audio filter, 35 for
// pedestrian recognition.
func TestStandardLibraryPaperCounts(t *testing.T) {
	plat := platform.OdroidXU4()
	lib, err := StandardLibrary(plat)
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.Validate(plat); err != nil {
		t.Fatal(err)
	}
	if lib.Len() != 9 {
		t.Fatalf("library has %d tables, want 9 (3 apps × 3 sizes)", lib.Len())
	}
	counts := map[string]int{}
	for _, tbl := range lib.Tables() {
		counts[tbl.App] += tbl.Len()
	}
	want := map[string]int{
		"speaker-recognition":    28,
		"audio-filter":           36,
		"pedestrian-recognition": 35,
	}
	for app, n := range want {
		if counts[app] != n {
			t.Errorf("%s: %d Pareto points, want %d (paper)", app, counts[app], n)
		}
	}
}

// Noisy exploration still yields valid Pareto tables.
func TestExploreWithNoise(t *testing.T) {
	plat := platform.OdroidXU4()
	tables, err := ExploreGraph(kpn.PedestrianRecognition(), plat, Options{Reps: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, tbl := range tables {
		if err := tbl.Validate(plat); err != nil {
			t.Errorf("%s: %v", tbl.Name(), err)
		}
	}
}

func TestExploreSuite(t *testing.T) {
	plat := platform.OdroidXU4()
	lib, err := ExploreSuite(kpn.BenchmarkSuite(), plat, Options{MaxPointsPerTable: 8})
	if err != nil {
		t.Fatal(err)
	}
	if lib.Len() != 9 {
		t.Fatalf("library has %d tables", lib.Len())
	}
}
