package dse

import (
	"testing"

	"adaptrm/internal/kpn"
	"adaptrm/internal/platform"
)

// DVFS exploration must produce richer Pareto fronts whose extra points
// come from reduced frequency levels, and every resulting table must
// still validate against the base platform (allocations are unchanged).
func TestExploreWithDVFS(t *testing.T) {
	plat := platform.OdroidXU4DVFS()
	pinned, err := ExploreGraph(kpn.AudioFilter(), plat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dvfs, err := ExploreGraph(kpn.AudioFilter(), plat, Options{DVFS: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range dvfs {
		if err := dvfs[i].Validate(plat); err != nil {
			t.Fatalf("%s: %v", dvfs[i].Name(), err)
		}
		if dvfs[i].Len() <= pinned[i].Len() {
			t.Errorf("%s: DVFS front (%d) not richer than pinned (%d)",
				dvfs[i].Name(), dvfs[i].Len(), pinned[i].Len())
		}
		// The most energy-efficient point must come from a reduced
		// level (that is what DVFS buys), and its energy must beat the
		// pinned optimum.
		if dvfs[i].Points[0].Energy >= pinned[i].Points[0].Energy {
			t.Errorf("%s: DVFS min energy %.2f not below pinned %.2f",
				dvfs[i].Name(), dvfs[i].Points[0].Energy, pinned[i].Points[0].Energy)
		}
		if dvfs[i].Points[0].Label == "" {
			t.Errorf("%s: cheapest DVFS point has no level label", dvfs[i].Name())
		}
		// The fastest point stays the pinned-frequency one.
		if dvfs[i].FastestTime() > pinned[i].FastestTime()+1e-9 {
			t.Errorf("%s: DVFS lost the fast extreme", dvfs[i].Name())
		}
	}
}

// A DVFS library remains fully schedulable end to end.
func TestDVFSLibrarySchedules(t *testing.T) {
	plat := platform.OdroidXU4DVFS()
	lib, err := ExploreSuite(kpn.BenchmarkSuite(), plat, Options{DVFS: true, MaxPointsPerTable: 12})
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.Validate(plat); err != nil {
		t.Fatal(err)
	}
	if lib.Len() != 9 {
		t.Fatalf("library has %d tables", lib.Len())
	}
}
