// Package dse implements the design-time half of the paper's hybrid
// mapping flow: exhaustive design-space exploration of core allocations
// per application and input size on the virtual platform, followed by
// Pareto filtering over [θ…, τ, ξ]. The result is the operating-point
// library the runtime manager consumes.
//
// This substitutes for the paper's exhaustive benchmarking of the three
// Silexica applications on the Odroid XU4 (which yielded 36, 35 and 28
// Pareto configurations across input sizes).
package dse

import (
	"fmt"
	"math/rand"

	"adaptrm/internal/kpn"
	"adaptrm/internal/opset"
	"adaptrm/internal/platform"
	"adaptrm/internal/vplat"
)

// Options tunes the exploration.
type Options struct {
	// Variants lists the input sizes to benchmark; nil means
	// kpn.DefaultVariants().
	Variants []kpn.Variant
	// Reps is the number of averaged noisy measurements per allocation;
	// 0 means deterministic benchmarking (the default for reproducible
	// experiments).
	Reps int
	// Seed seeds the measurement noise when Reps > 0.
	Seed int64
	// MaxPointsPerTable thins each variant's Pareto front to at most
	// this many operating points (0 = keep all). Runtime managers bound
	// table sizes; the paper's applications carry ≈9–12 points per
	// input size.
	MaxPointsPerTable int
	// DVFS additionally explores the platform's declared frequency
	// levels per cluster, folding frequency selection into the
	// operating points (the paper pins frequencies; this implements the
	// natural extension its related work optimizes over). Points gain a
	// Label naming their setting.
	DVFS bool
}

// ExploreGraph benchmarks every allocation (0..Θ1)×…, drops the empty
// one, and returns one Pareto-filtered table per variant.
func ExploreGraph(g kpn.Graph, plat platform.Platform, opt Options) ([]*opset.Table, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	variants := opt.Variants
	if variants == nil {
		variants = kpn.DefaultVariants()
	}
	var rng *rand.Rand
	if opt.Reps > 0 {
		rng = rand.New(rand.NewSource(opt.Seed))
	}
	cap := plat.Capacity()
	// Platform settings to benchmark under: the base (pinned)
	// configuration, plus every DVFS level combination when requested.
	type setting struct {
		plat  platform.Platform
		label string
	}
	settings := []setting{{plat: plat}}
	if opt.DVFS {
		settings = settings[:0]
		levels := make([]int, plat.NumTypes())
		var combos func(t int) error
		combos = func(t int) error {
			if t == plat.NumTypes() {
				p, label, err := plat.WithLevels(levels)
				if err != nil {
					return err
				}
				settings = append(settings, setting{plat: p, label: label})
				return nil
			}
			for li := -1; li < len(plat.Types[t].Levels); li++ {
				levels[t] = li
				if err := combos(t + 1); err != nil {
					return err
				}
			}
			return nil
		}
		if err := combos(0); err != nil {
			return nil, err
		}
	}
	var tables []*opset.Table
	for _, v := range variants {
		tbl := &opset.Table{App: g.Name, Variant: v.Name}
		for _, st := range settings {
			var enumerate func(prefix platform.Alloc, t int) error
			enumerate = func(prefix platform.Alloc, t int) error {
				if t == len(cap) {
					if prefix.IsZero() {
						return nil
					}
					res, err := vplat.Measure(&g, v, st.plat, prefix.Clone(), opt.Reps, rng)
					if err != nil {
						return err
					}
					tbl.Points = append(tbl.Points, opset.Point{
						Alloc:  prefix.Clone(),
						Time:   res.TimeSec,
						Energy: res.EnergyJ,
						Label:  st.label,
					})
					return nil
				}
				for n := 0; n <= cap[t]; n++ {
					prefix[t] = n
					if err := enumerate(prefix, t+1); err != nil {
						return err
					}
				}
				prefix[t] = 0
				return nil
			}
			if err := enumerate(platform.NewAlloc(len(cap)), 0); err != nil {
				return nil, err
			}
		}
		tbl.FilterPareto()
		if opt.MaxPointsPerTable > 0 {
			tbl.Thin(opt.MaxPointsPerTable)
		}
		if err := tbl.Validate(plat); err != nil {
			return nil, fmt.Errorf("dse: %s/%s: %w", g.Name, v.Name, err)
		}
		tables = append(tables, tbl)
	}
	return tables, nil
}

// ExploreSuite explores every graph and returns the combined library.
func ExploreSuite(graphs []kpn.Graph, plat platform.Platform, opt Options) (*opset.Library, error) {
	lib := opset.NewLibrary()
	for _, g := range graphs {
		tables, err := ExploreGraph(g, plat, opt)
		if err != nil {
			return nil, err
		}
		for _, t := range tables {
			if err := lib.Add(t); err != nil {
				return nil, err
			}
		}
	}
	return lib, nil
}

// standardCaps bounds the per-variant table sizes so that the library
// carries the paper's Pareto-configuration counts per application:
// speaker recognition 28, audio filter 36, pedestrian recognition 35.
var standardCaps = map[string][]int{
	"speaker-recognition":    {9, 9, 10},
	"audio-filter":           {12, 12, 12},
	"pedestrian-recognition": {12, 12, 11},
}

// StandardLibrary explores the paper's three-application benchmark suite
// on the given platform with deterministic measurements, thinned to the
// paper's per-application Pareto counts (28/36/35). This is the library
// the evaluation harness uses.
func StandardLibrary(plat platform.Platform) (*opset.Library, error) {
	lib := opset.NewLibrary()
	for _, g := range kpn.BenchmarkSuite() {
		tables, err := ExploreGraph(g, plat, Options{})
		if err != nil {
			return nil, err
		}
		caps := standardCaps[g.Name]
		for i, t := range tables {
			if caps != nil && i < len(caps) {
				t.Thin(caps[i])
			}
			if err := lib.Add(t); err != nil {
				return nil, err
			}
		}
	}
	return lib, nil
}
