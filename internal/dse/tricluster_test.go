package dse

import (
	"testing"

	"adaptrm/internal/core"
	"adaptrm/internal/exmem"
	"adaptrm/internal/job"
	"adaptrm/internal/kpn"
	"adaptrm/internal/lagrange"
	"adaptrm/internal/platform"
	"adaptrm/internal/sched"
)

// The whole stack — DSE, Pareto filtering, all three schedulers, EDF
// packing, validation — must work for m=3 resource types, since the
// paper's formulation is generic in m.
func TestTriClusterEndToEnd(t *testing.T) {
	plat := platform.TriCluster()
	if err := plat.Validate(); err != nil {
		t.Fatal(err)
	}
	tables, err := ExploreGraph(kpn.AudioFilter(), plat, Options{MaxPointsPerTable: 10})
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[1] // medium variant
	if err := tbl.Validate(plat); err != nil {
		t.Fatal(err)
	}
	for _, p := range tbl.Points {
		if len(p.Alloc) != 3 {
			t.Fatalf("point arity %d", len(p.Alloc))
		}
	}
	jobs := job.Set{
		{ID: 1, Table: tbl, Deadline: tbl.FastestTime() * 4, Remaining: 1},
		{ID: 2, Table: tbl, Deadline: tbl.FastestTime() * 6, Remaining: 0.8},
		{ID: 3, Table: tables[0], Deadline: tables[0].FastestTime() * 5, Remaining: 1},
	}
	for _, s := range []sched.Scheduler{core.New(), lagrange.New(), exmem.New()} {
		k, err := s.Schedule(jobs, plat, 0)
		if err != nil {
			t.Errorf("%s: %v", s.Name(), err)
			continue
		}
		if err := k.Validate(plat, jobs, 0); err != nil {
			t.Errorf("%s: invalid: %v", s.Name(), err)
		}
	}
}
