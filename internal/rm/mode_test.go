package rm

import (
	"errors"
	"testing"

	"adaptrm/internal/control"
	"adaptrm/internal/core"
	"adaptrm/internal/job"
	"adaptrm/internal/motiv"
	"adaptrm/internal/platform"
	"adaptrm/internal/sched"
	"adaptrm/internal/schedule"
)

// countingScheduler wraps the exact scheduler, counting activations, so
// a test can observe which of the main/fallback pair took a decision.
func countingScheduler(id string, n *int) sched.Scheduler {
	inner := core.New()
	return sched.Func{ID: id, F: func(jobs job.Set, plat platform.Platform, t float64) (*schedule.Schedule, error) {
		*n++
		return inner.Schedule(jobs, plat, t)
	}}
}

func TestSetModeEmitsEventOnce(t *testing.T) {
	m, evs := collect(t, Options{})
	m.SetMode(control.ModeHeuristicOnly)
	m.SetMode(control.ModeHeuristicOnly) // unchanged: no event
	m.SetMode(control.ModeNormal)
	if m.Mode() != control.ModeNormal {
		t.Fatalf("mode = %v, want normal", m.Mode())
	}
	var got []Event
	for _, ev := range *evs {
		if ev.Type == EventModeChanged {
			got = append(got, ev)
		}
	}
	if len(got) != 2 {
		t.Fatalf("mode events = %d, want 2 (repeat SetMode must be silent)", len(got))
	}
	if got[0].Payload != "heuristic_only" || got[1].Payload != "normal" {
		t.Fatalf("payloads = %q, %q", got[0].Payload, got[1].Payload)
	}
}

func TestDegradedModeUsesFallback(t *testing.T) {
	var mainN, fbN int
	m, err := New(motiv.Platform(), motiv.Library(), countingScheduler("main", &mainN),
		Options{Fallback: countingScheduler("fb", &fbN)})
	if err != nil {
		t.Fatal(err)
	}

	if _, ok, _, err := m.Submit(0, "lambda1", 9); err != nil || !ok {
		t.Fatalf("normal-mode submit: ok=%v err=%v", ok, err)
	}
	if mainN != 1 || fbN != 0 {
		t.Fatalf("normal mode activations main=%d fb=%d, want 1/0", mainN, fbN)
	}

	m.SetMode(control.ModeHeuristicOnly)
	if _, ok, _, err := m.Submit(1, "lambda2", 8); err != nil || !ok {
		t.Fatalf("degraded submit: ok=%v err=%v", ok, err)
	}
	if mainN != 1 || fbN != 1 {
		t.Fatalf("degraded activations main=%d fb=%d, want 1/1", mainN, fbN)
	}

	m.SetMode(control.ModeNormal)
	if _, err := m.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	now := m.Now()
	if _, ok, _, err := m.Submit(now, "lambda1", now+9); err != nil || !ok {
		t.Fatalf("recovered submit: ok=%v err=%v", ok, err)
	}
	if mainN != 2 || fbN != 1 {
		t.Fatalf("recovered activations main=%d fb=%d, want 2/1", mainN, fbN)
	}
}

func TestDegradedModeWithoutFallbackKeepsScheduler(t *testing.T) {
	var mainN int
	m, err := New(motiv.Platform(), motiv.Library(), countingScheduler("main", &mainN), Options{})
	if err != nil {
		t.Fatal(err)
	}
	m.SetMode(control.ModeHeuristicOnly)
	if _, ok, _, err := m.Submit(0, "lambda1", 9); err != nil || !ok {
		t.Fatalf("submit: ok=%v err=%v", ok, err)
	}
	if mainN != 1 {
		t.Fatalf("main activations = %d, want 1 (no fallback configured)", mainN)
	}
}

func TestSnapshotCarriesMode(t *testing.T) {
	m := newMgr(t, Options{})
	if s := m.Snapshot(); s.Mode != "" {
		t.Fatalf("normal-mode snapshot carries mode %q", s.Mode)
	}
	m.SetMode(control.ModeShedding)
	s := m.Snapshot()
	if s.Mode != "shedding" {
		t.Fatalf("snapshot mode = %q, want shedding", s.Mode)
	}

	fresh := newMgr(t, Options{})
	if err := fresh.Restore(s); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if fresh.Mode() != control.ModeShedding {
		t.Fatalf("restored mode = %v, want shedding", fresh.Mode())
	}

	// A manager already moved off ModeNormal is not fresh.
	dirty := newMgr(t, Options{})
	dirty.SetMode(control.ModeHeuristicOnly)
	if err := dirty.Restore(m.Snapshot()); !errors.Is(err, ErrRestore) {
		t.Fatalf("restore into degraded manager: %v, want ErrRestore", err)
	}

	// An unknown mode name in the wire form is rejected.
	bad := *s
	bad.Mode = "bogus"
	if err := newMgr(t, Options{}).Restore(&bad); err == nil {
		t.Fatal("bogus snapshot mode accepted")
	}
}

func TestReplayModeVerbatim(t *testing.T) {
	m, evs := collect(t, Options{})
	if err := m.ReplayMode(3.5, "shedding"); err != nil {
		t.Fatal(err)
	}
	if m.Mode() != control.ModeShedding {
		t.Fatalf("mode = %v, want shedding", m.Mode())
	}
	last := (*evs)[len(*evs)-1]
	if last.Type != EventModeChanged || last.At != 3.5 || last.Payload != "shedding" {
		t.Fatalf("replayed event = %+v", last)
	}
	if err := m.ReplayMode(4, "bogus"); err == nil {
		t.Fatal("bogus payload accepted")
	}
}
