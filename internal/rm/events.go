package rm

// EventType discriminates the lifecycle events a manager emits. The
// taxonomy is the protocol contract of the streaming/watch subsystem:
// every transport (in-process fleet, SSE over HTTP, a future gRPC
// binding) carries exactly these kinds, so an event log is replayable
// against any of them.
type EventType string

const (
	// EventJobAdmitted: a request was accepted; the job is now active.
	EventJobAdmitted EventType = "job_admitted"
	// EventJobRejected: a request was cleanly rejected (no feasible
	// schedule). Erroneous requests (unknown app, bad deadline) emit no
	// event, mirroring their exclusion from the admission counters.
	EventJobRejected EventType = "job_rejected"
	// EventJobStarted: the job executed its first schedule fraction.
	EventJobStarted EventType = "job_started"
	// EventJobCompleted: the job finished; Missed flags a deadline
	// violation.
	EventJobCompleted EventType = "job_completed"
	// EventJobCancelled: the job was aborted while active.
	EventJobCancelled EventType = "job_cancelled"
	// EventScheduleChanged: the active schedule was replaced (admission,
	// cancellation re-plan, or a reschedule-on-finish).
	EventScheduleChanged EventType = "schedule_changed"
	// EventScheduleSwapped: anytime refinement replaced the active
	// schedule with a strictly cheaper one (SwapSchedule). Unlike
	// EventScheduleChanged — whose schedule is re-derived during replay
	// by re-running the deterministic admission solve — a swap's
	// schedule comes from an unbounded background search, so the event
	// carries the full new schedule in Payload and replay re-applies it
	// verbatim.
	EventScheduleSwapped EventType = "schedule_swapped"
	// EventModeChanged: the degradation controller switched the
	// device's operating mode (SetMode). Payload carries the new mode's
	// wire name (control.Mode.String); like EventScheduleSwapped the
	// decision came from outside the deterministic operation stream, so
	// replay re-applies the logged payload verbatim (ReplayMode) instead
	// of re-deriving it.
	EventModeChanged EventType = "mode_changed"
	// EventClockAdvanced: an explicit AdvanceTo moved the device clock;
	// At carries the new time. Interior advances (the one a Submit or
	// SubmitBatch performs before deciding) emit no clock event — the
	// admission/rejection event already records the arrival time — so
	// the event log captures exactly the operation sequence applied to
	// the manager: together with the admission events it is sufficient
	// to re-drive a fresh manager into a byte-identical state, which is
	// what crash recovery (internal/durable) does.
	EventClockAdvanced EventType = "clock_advanced"
)

// Event is one manager lifecycle event. Seq is assigned by the manager:
// strictly monotone starting at 1 with no gaps, so a consumer can detect
// loss and resume a stream from any sequence number.
type Event struct {
	// Seq is the per-manager (per-device) sequence number.
	Seq uint64
	// Type is the event kind.
	Type EventType
	// At is the virtual time of the event.
	At float64
	// JobID is the subject job (0 for rejections, which never assigned
	// one, and for schedule changes).
	JobID int
	// App names the requested application (admissions and rejections).
	App string
	// Deadline is the request's absolute deadline (admissions and
	// rejections).
	Deadline float64
	// Missed flags a deadline violation on a completion.
	Missed bool
	// Payload carries event-type-specific data: for
	// EventScheduleSwapped, the swapped-in schedule's segments as
	// canonical JSON (the SnapshotSegment wire form). It is a string —
	// not a structured field — so Event stays comparable, which the
	// recovery verifier and the watch ring rely on.
	Payload string
}

// SetEventSink installs fn as the manager's event observer; nil removes
// it. The sink is invoked synchronously from within manager calls — it
// must not call back into the manager and should return quickly (fan-out
// layers buffer, they do not block here). Install the sink before
// traffic: events are only generated while one is installed, so sequence
// numbers count from the installation point and JobStarted tracking
// begins there too.
func (m *Manager) SetEventSink(fn func(Event)) {
	m.sink = fn
	if fn != nil && m.started == nil {
		m.started = make(map[int]bool)
	}
}

// emit assigns the next sequence number and hands the event to the sink.
// Without a sink it is a no-op, keeping the hot path untouched.
func (m *Manager) emit(ev Event) {
	if m.sink == nil {
		return
	}
	m.eventSeq++
	ev.Seq = m.eventSeq
	m.sink(ev)
}

// emitStarted emits JobStarted the first time a job accrues execution.
func (m *Manager) emitStarted(jobID int, at float64) {
	if m.sink == nil || m.started[jobID] {
		return
	}
	m.started[jobID] = true
	m.emit(Event{Type: EventJobStarted, At: at, JobID: jobID})
}

// forget drops a retired job from the started set.
func (m *Manager) forget(jobID int) {
	if m.started != nil {
		delete(m.started, jobID)
	}
}
