package rm

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"adaptrm/internal/motiv"
	"adaptrm/internal/schedule"
	"adaptrm/internal/workload"
)

// stripWallClock removes the fields a batched activation legitimately
// changes (fewer scheduler invocations, different wall time) so the
// remaining statistics can be compared byte-for-byte.
func stripWallClock(s Stats) Stats {
	s.Activations = 0
	s.SchedulingTime = 0
	return s
}

// submitSequential replays a batch through individual Submit calls at
// the same time, returning per-request verdicts shaped like
// SubmitBatch's.
func submitSequential(m *Manager, t float64, reqs []Request) ([]Verdict, []Completion, error) {
	verdicts := make([]Verdict, len(reqs))
	var first []Completion
	for i, r := range reqs {
		id, ok, done, err := m.Submit(t, r.App, r.Deadline)
		if i == 0 {
			first = done
		}
		switch {
		case errors.Is(err, ErrUnknownApp), errors.Is(err, ErrBadDeadline):
			verdicts[i].Err = err
		case err != nil:
			if errors.Is(err, ErrTimeBackwards) {
				return nil, done, err
			}
			verdicts[i].Err = err // scheduler hard failure
		default:
			verdicts[i].JobID, verdicts[i].Accepted = id, ok
		}
	}
	return verdicts, first, nil
}

// sameVerdicts compares verdict sequences by job id, acceptance and
// error identity (sentinel match).
func sameVerdicts(t *testing.T, got, want []Verdict) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("verdict count: got %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].JobID != want[i].JobID || got[i].Accepted != want[i].Accepted {
			t.Errorf("verdict %d: got %+v, want %+v", i, got[i], want[i])
		}
		gs, ws := got[i].Err, want[i].Err
		if (gs == nil) != (ws == nil) {
			t.Errorf("verdict %d error: got %v, want %v", i, gs, ws)
			continue
		}
		for _, sentinel := range []error{ErrUnknownApp, ErrBadDeadline} {
			if errors.Is(gs, sentinel) != errors.Is(ws, sentinel) {
				t.Errorf("verdict %d error class: got %v, want %v", i, gs, ws)
			}
		}
	}
}

// batchScript is one deterministic interaction step.
type batchScript struct {
	t    float64
	reqs []Request
}

// runScript drives a script through either the batch or the sequential
// path on a fresh manager and returns the manager plus the verdict log.
func runScript(t *testing.T, script []batchScript, opt Options, batched bool) (*Manager, [][]Verdict) {
	t.Helper()
	m := newMgr(t, opt)
	var log [][]Verdict
	for _, s := range script {
		var vs []Verdict
		var err error
		if batched {
			vs, _, err = m.SubmitBatch(s.t, s.reqs)
		} else {
			vs, _, err = submitSequential(m, s.t, s.reqs)
		}
		if err != nil {
			t.Fatalf("script step at t=%v: %v", s.t, err)
		}
		log = append(log, vs)
	}
	return m, log
}

// TestSubmitBatchEquivalentToSequential drives mixed scripts — feasible
// bursts, over-subscribed bursts forcing the fallback, invalid items —
// through SubmitBatch and sequential Submit, asserting identical
// verdict sequences, job ids, admission statistics (minus activation
// counts), final schedules and executed timelines.
func TestSubmitBatchEquivalentToSequential(t *testing.T) {
	scripts := map[string][]batchScript{
		"feasible-burst": {
			{0, []Request{{"lambda1", 9}, {"lambda2", 9}}},
			{12, []Request{{"lambda2", 20}, {"lambda1", 25}}},
		},
		"oversubscribed-burst": {
			// One λ1 plus three λ2 by t=9 over-subscribes the 2L2B
			// device: the joint solve fails and the fallback decides one
			// by one, rejecting the overflow.
			{0, []Request{{"lambda1", 9}, {"lambda2", 9}, {"lambda2", 9}, {"lambda2", 9}}},
			{30, []Request{{"lambda1", 45}}},
		},
		"invalid-items": {
			{0, []Request{{"lambda1", 9}, {"nope", 9}, {"lambda2", 0}, {"lambda2", 8}}},
			{10, []Request{{"ghost", 12}, {"also-ghost", 12}}},
		},
		"singleton-batches": {
			{0, []Request{{"lambda1", 9}}},
			{1, []Request{{"lambda2", 5}}},
		},
	}
	for name, script := range scripts {
		t.Run(name, func(t *testing.T) {
			seqM, seqLog := runScript(t, script, Options{}, false)
			batM, batLog := runScript(t, script, Options{}, true)
			for i := range seqLog {
				sameVerdicts(t, batLog[i], seqLog[i])
			}
			if got, want := stripWallClock(batM.Stats()), stripWallClock(seqM.Stats()); got != want {
				t.Errorf("stats diverged:\nbatch %+v\nseq   %+v", got, want)
			}
			if got, want := batM.CurrentSchedule(), seqM.CurrentSchedule(); !reflect.DeepEqual(got, want) {
				t.Errorf("final schedules diverged:\nbatch %+v\nseq   %+v", got, want)
			}
			if got, want := batM.ExecutedTimeline(), seqM.ExecutedTimeline(); !reflect.DeepEqual(got, want) {
				t.Errorf("executed timelines diverged:\nbatch %+v\nseq   %+v", got, want)
			}
			// Draining both must finish the same jobs with the same energy.
			sd, err := seqM.Drain()
			if err != nil {
				t.Fatal(err)
			}
			bd, err := batM.Drain()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(sd, bd) {
				t.Errorf("drain completions diverged:\nbatch %+v\nseq   %+v", bd, sd)
			}
			if got, want := stripWallClock(batM.Stats()), stripWallClock(seqM.Stats()); got != want {
				t.Errorf("post-drain stats diverged:\nbatch %+v\nseq   %+v", got, want)
			}
		})
	}
}

// TestSubmitBatchEquivalenceOnTrace pins the equivalence on a seeded
// Poisson trace whose arrivals are grouped into same-time bursts.
func TestSubmitBatchEquivalenceOnTrace(t *testing.T) {
	base, err := workload.Trace(motiv.Library(), workload.TraceParams{Rate: 0.3, Horizon: 120, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Round arrivals down to 10-second slots so several requests share
	// each batch time (deadlines keep their spread).
	var script []batchScript
	for _, r := range base {
		slot := math.Floor(r.At/10) * 10
		if n := len(script); n > 0 && script[n-1].t == slot {
			script[n-1].reqs = append(script[n-1].reqs, Request{App: r.App, Deadline: r.Deadline})
			continue
		}
		script = append(script, batchScript{t: slot, reqs: []Request{{App: r.App, Deadline: r.Deadline}}})
	}
	seqM, seqLog := runScript(t, script, Options{}, false)
	batM, batLog := runScript(t, script, Options{}, true)
	for i := range seqLog {
		sameVerdicts(t, batLog[i], seqLog[i])
	}
	if got, want := stripWallClock(batM.Stats()), stripWallClock(seqM.Stats()); got != want {
		t.Fatalf("stats diverged:\nbatch %+v\nseq   %+v", got, want)
	}
	if batM.Stats().Activations > seqM.Stats().Activations {
		t.Errorf("batching increased activations: %d > %d",
			batM.Stats().Activations, seqM.Stats().Activations)
	}
	if _, err := seqM.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := batM.Drain(); err != nil {
		t.Fatal(err)
	}
	if got, want := stripWallClock(batM.Stats()), stripWallClock(seqM.Stats()); got != want {
		t.Fatalf("post-drain stats diverged:\nbatch %+v\nseq   %+v", got, want)
	}
}

// TestSubmitBatchFastPathActivations pins the headline saving: a
// feasible k-request batch costs one activation; an infeasible one
// falls back to k trial solves after the failed joint solve.
func TestSubmitBatchFastPathActivations(t *testing.T) {
	m := newMgr(t, Options{})
	vs, _, err := m.SubmitBatch(0, []Request{{"lambda1", 30}, {"lambda2", 30}, {"lambda1", 40}})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vs {
		if !v.Accepted || v.Err != nil {
			t.Fatalf("verdict %d: %+v, want accepted", i, v)
		}
	}
	if got := m.Stats().Activations; got != 1 {
		t.Errorf("feasible batch cost %d activations, want 1", got)
	}
	if ids := []int{vs[0].JobID, vs[1].JobID, vs[2].JobID}; ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Errorf("job ids %v, want sequential 1,2,3", ids)
	}

	// Over-subscribe: the joint solve fails, then each of the 4 requests
	// gets its own trial solve (1 + 4 activations on a fresh manager).
	m2 := newMgr(t, Options{})
	vs2, _, err := m2.SubmitBatch(0, []Request{{"lambda1", 9}, {"lambda2", 9}, {"lambda2", 9}, {"lambda2", 9}})
	if err != nil {
		t.Fatal(err)
	}
	accepted := 0
	for _, v := range vs2 {
		if v.Accepted {
			accepted++
		}
	}
	if accepted == 0 || accepted == len(vs2) {
		t.Fatalf("fallback burst: %d/%d accepted, want a proper split", accepted, len(vs2))
	}
	if got := m2.Stats().Activations; got != 1+len(vs2) {
		t.Errorf("fallback batch cost %d activations, want %d", got, 1+len(vs2))
	}
}

// TestSubmitBatchEmptyAndInvalid: an all-invalid batch decides every
// item without touching the clock or the counters, matching sequential
// Submit error semantics; an empty batch is a no-op.
func TestSubmitBatchEmptyAndInvalid(t *testing.T) {
	m := newMgr(t, Options{})
	if _, err := m.AdvanceTo(5); err != nil {
		t.Fatal(err)
	}
	vs, done, err := m.SubmitBatch(5, nil)
	if err != nil || len(vs) != 0 || len(done) != 0 {
		t.Fatalf("empty batch: %v %v %v", vs, done, err)
	}
	vs, _, err = m.SubmitBatch(7, []Request{{"nope", 9}, {"lambda1", 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(vs[0].Err, ErrUnknownApp) || !errors.Is(vs[1].Err, ErrBadDeadline) {
		t.Fatalf("verdicts %+v, want unknown-app and bad-deadline", vs)
	}
	if now := m.Now(); now != 5 {
		t.Errorf("all-invalid batch moved the clock to %v", now)
	}
	if st := m.Stats(); st.Submitted != 0 || st.Activations != 0 {
		t.Errorf("all-invalid batch touched counters: %+v", st)
	}
}

// TestAdvanceToClampsClock: a target inside the epsilon band below the
// current time is accepted (per-device streams may carry such jitter)
// but must never move the clock backwards.
func TestAdvanceToClampsClock(t *testing.T) {
	m := newMgr(t, Options{})
	if _, err := m.AdvanceTo(10); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AdvanceTo(10 - schedule.Eps/2); err != nil {
		t.Fatalf("epsilon-band advance rejected: %v", err)
	}
	if now := m.Now(); now != 10 {
		t.Errorf("clock regressed to %v, want clamp at 10", now)
	}
	if _, err := m.AdvanceTo(10 - 2*schedule.Eps); !errors.Is(err, ErrTimeBackwards) {
		t.Errorf("genuine time travel accepted: %v", err)
	}
}

// TestExecutedTimelineTruncatedAtCompletion: a job finishing inside an
// executed slice must not be recorded as running past its completion
// time — the audit timeline is cut at each distinct completion.
func TestExecutedTimelineTruncatedAtCompletion(t *testing.T) {
	m := newMgr(t, Options{})
	id1, ok, _, err := m.Submit(0, "lambda1", 9)
	if err != nil || !ok {
		t.Fatal("λ1 rejected")
	}
	id2, ok, _, err := m.Submit(1, "lambda2", 5)
	if err != nil || !ok {
		t.Fatal("λ2 rejected")
	}
	// Jump far past both completions in one advance: the old recorder
	// would stretch both jobs to the last segment end.
	done, err := m.AdvanceTo(50)
	if err != nil {
		t.Fatal(err)
	}
	finish := map[int]float64{}
	for _, c := range done {
		finish[c.JobID] = c.At
	}
	if len(finish) != 2 {
		t.Fatalf("completions %+v, want both jobs", done)
	}
	last := map[int]float64{}
	for _, seg := range m.ExecutedTimeline() {
		if seg.End <= seg.Start {
			t.Errorf("degenerate executed segment %+v", seg)
		}
		for _, p := range seg.Placements {
			if seg.End > last[p.JobID] {
				last[p.JobID] = seg.End
			}
		}
	}
	for _, id := range []int{id1, id2} {
		if math.Abs(last[id]-finish[id]) > 1e-6 {
			t.Errorf("job %d recorded until %v, finished at %v", id, last[id], finish[id])
		}
	}
}

// TestRescheduleOnFinishFiresOnAdvance pins the bugfix: completions
// observed through a plain AdvanceTo (the service path) must trigger
// the promised re-plan, visible as extra scheduler activations.
func TestRescheduleOnFinishFiresOnAdvance(t *testing.T) {
	run := func(opt Options) Stats {
		m := newMgr(t, opt)
		if _, ok, _, err := m.Submit(0, "lambda1", 9); err != nil || !ok {
			t.Fatal("λ1 rejected")
		}
		if _, ok, _, err := m.Submit(0, "lambda2", 60); err != nil || !ok {
			t.Fatal("λ2 rejected")
		}
		// Advance exactly to the first completion: the advance retires
		// one job while the other is still active — the re-plan case.
		next, ok := m.NextCompletion()
		if !ok {
			t.Fatal("no planned completion")
		}
		done, err := m.AdvanceTo(next)
		if err != nil {
			t.Fatal(err)
		}
		if len(done) != 1 || len(m.ActiveJobs()) != 1 {
			t.Fatalf("fixture: %d completions, %d active, want 1 and 1", len(done), len(m.ActiveJobs()))
		}
		if _, err := m.Drain(); err != nil {
			t.Fatal(err)
		}
		return m.Stats()
	}
	plain := run(Options{})
	replan := run(Options{RescheduleOnFinish: true})
	if replan.Activations <= plain.Activations {
		t.Errorf("RescheduleOnFinish dead on the advance path: %d ≤ %d activations",
			replan.Activations, plain.Activations)
	}
	if replan.Completed != plain.Completed || replan.DeadlineMisses != 0 {
		t.Errorf("re-plan changed outcomes: %+v vs %+v", replan, plain)
	}
}
