package rm

import (
	"errors"
	"math"
	"testing"

	"adaptrm/internal/core"
	"adaptrm/internal/job"
	"adaptrm/internal/motiv"
	"adaptrm/internal/opset"
	"adaptrm/internal/platform"
	"adaptrm/internal/sched"
	"adaptrm/internal/schedule"
)

func newMgr(t *testing.T, opt Options) *Manager {
	t.Helper()
	m, err := New(motiv.Platform(), motiv.Library(), core.New(), opt)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	plat := motiv.Platform()
	if _, err := New(plat, nil, core.New(), Options{}); err == nil {
		t.Error("nil library accepted")
	}
	if _, err := New(plat, opset.NewLibrary(), core.New(), Options{}); err == nil {
		t.Error("empty library accepted")
	}
	if _, err := New(plat, motiv.Library(), nil, Options{}); err == nil {
		t.Error("nil scheduler accepted")
	}
	if _, err := New(platform.Platform{}, motiv.Library(), core.New(), Options{}); err == nil {
		t.Error("invalid platform accepted")
	}
}

// Replay the motivational story online: λ1 at t=0 (deadline 9), λ2 at
// t=1 (deadline 5). The manager must admit both and end with total energy
// 14.63 J (Fig. 1c), zero deadline misses.
func TestMotivationalScenarioOnline(t *testing.T) {
	m := newMgr(t, Options{})
	id1, ok, _, err := m.Submit(0, "lambda1", 9)
	if err != nil || !ok {
		t.Fatalf("λ1 rejected: %v", err)
	}
	id2, ok, _, err := m.Submit(1, "lambda2", 5)
	if err != nil || !ok {
		t.Fatalf("λ2 rejected: %v", err)
	}
	if id1 == id2 {
		t.Fatal("duplicate job IDs")
	}
	done, err := m.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 2 {
		t.Fatalf("completions = %d, want 2", len(done))
	}
	st := m.Stats()
	if st.DeadlineMisses != 0 {
		t.Errorf("deadline misses = %d", st.DeadlineMisses)
	}
	if math.Abs(st.Energy-14.63) > 0.01 {
		t.Errorf("total energy = %.3f, want 14.63 (Fig. 1c)", st.Energy)
	}
	if st.Accepted != 2 || st.Rejected != 0 || st.Completed != 2 {
		t.Errorf("stats = %+v", st)
	}
	if len(m.ExecutedTimeline()) == 0 {
		t.Error("no executed timeline recorded")
	}
}

// Scenario S2 online with a fixed-mapping-style rejection is covered in
// the fixedmap package; here the adaptive manager must admit σ2 even
// with deadline 4.
func TestS2AdmittedOnline(t *testing.T) {
	m := newMgr(t, Options{})
	if _, ok, _, err := m.Submit(0, "lambda1", 9); err != nil || !ok {
		t.Fatalf("λ1: ok=%v err=%v", ok, err)
	}
	if _, ok, _, err := m.Submit(1, "lambda2", 4); err != nil || !ok {
		t.Fatalf("λ2 with deadline 4: ok=%v err=%v", ok, err)
	}
	if _, err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if m.Stats().DeadlineMisses != 0 {
		t.Error("deadline missed in S2")
	}
}

// An impossible request must be rejected while admitted jobs continue
// untouched.
func TestRejectionKeepsExistingJobs(t *testing.T) {
	m := newMgr(t, Options{})
	if _, ok, _, _ := m.Submit(0, "lambda1", 9); !ok {
		t.Fatal("λ1 rejected")
	}
	// λ2 with an absurd deadline.
	_, ok, _, err := m.Submit(1, "lambda2", 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("impossible request admitted")
	}
	st := m.Stats()
	if st.Rejected != 1 {
		t.Errorf("rejected = %d", st.Rejected)
	}
	// λ1 still completes in time.
	if _, err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if m.Stats().DeadlineMisses != 0 || m.Stats().Completed != 1 {
		t.Errorf("stats after drain = %+v", m.Stats())
	}
}

func TestSubmitErrors(t *testing.T) {
	m := newMgr(t, Options{})
	if _, _, _, err := m.Submit(0, "nope", 9); err == nil {
		t.Error("unknown app accepted")
	}
	if _, _, _, err := m.Submit(5, "lambda1", 4); err == nil {
		t.Error("deadline before arrival accepted")
	}
	if _, ok, _, err := m.Submit(0, "lambda1", 9); err != nil || !ok {
		t.Fatal("setup failed")
	}
	if _, err := m.AdvanceTo(-1); err == nil {
		t.Error("time travel accepted")
	}
}

// Progress accounting: advancing halfway through a single-job schedule
// consumes proportional energy and leaves the job active.
func TestAdvanceAccounting(t *testing.T) {
	m := newMgr(t, Options{})
	if _, ok, _, _ := m.Submit(0, "lambda1", 9); !ok {
		t.Fatal("rejected")
	}
	// MMKP-MDF picks 2L1B (τ=5.3, ξ=8.9).
	done, err := m.AdvanceTo(2.65)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 0 {
		t.Fatal("job finished too early")
	}
	st := m.Stats()
	if math.Abs(st.Energy-8.90/2) > 1e-6 {
		t.Errorf("half-run energy = %v, want %v", st.Energy, 8.90/2)
	}
	jobs := m.ActiveJobs()
	if len(jobs) != 1 || math.Abs(jobs[0].Remaining-0.5) > 1e-9 {
		t.Errorf("remaining = %+v", jobs)
	}
	// Completion lands at 5.3.
	next, ok := m.NextCompletion()
	if !ok || math.Abs(next-5.3) > 1e-9 {
		t.Errorf("next completion = %v, want 5.3", next)
	}
}

// RescheduleOnFinish must not break anything and keeps energy no worse
// on the motivational scenario.
func TestRescheduleOnFinish(t *testing.T) {
	m := newMgr(t, Options{RescheduleOnFinish: true})
	if _, ok, _, _ := m.Submit(0, "lambda1", 9); !ok {
		t.Fatal("λ1 rejected")
	}
	if _, ok, _, _ := m.Submit(1, "lambda2", 5); !ok {
		t.Fatal("λ2 rejected")
	}
	if _, err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.DeadlineMisses != 0 {
		t.Error("deadline missed")
	}
	if st.Energy > 14.63+0.01 {
		t.Errorf("reschedule-on-finish energy %.3f worse than plan", st.Energy)
	}
}

// CurrentSchedule must return a snapshot: mutating it cannot corrupt the
// manager's active plan (fleet shards snapshot mid-traffic).
func TestCurrentScheduleIsDeepCopy(t *testing.T) {
	m := newMgr(t, Options{})
	if _, ok, _, _ := m.Submit(0, "lambda1", 9); !ok {
		t.Fatal("λ1 rejected")
	}
	snap := m.CurrentSchedule()
	if snap.IsEmpty() {
		t.Fatal("empty schedule for an admitted job")
	}
	snap.Segments[0].Placements[0].Point = -1
	snap.Segments[0].End = -5
	snap.Segments = snap.Segments[:0]
	cur := m.CurrentSchedule()
	if cur.IsEmpty() || cur.Segments[0].End < 0 || cur.Segments[0].Placements[0].Point == -1 {
		t.Fatal("mutating the snapshot corrupted the manager's schedule")
	}
	if _, err := m.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitSchedulerFailureIsError: only sched.ErrInfeasible is an
// admission verdict; any other scheduler failure must surface as an
// error and stay out of the Submitted/Rejected counters.
func TestSubmitSchedulerFailureIsError(t *testing.T) {
	boom := errors.New("boom")
	bad := sched.Func{ID: "bad", F: func(job.Set, platform.Platform, float64) (*schedule.Schedule, error) {
		return nil, boom
	}}
	m, err := New(motiv.Platform(), motiv.Library(), bad, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, accepted, _, err := m.Submit(0, "lambda1", 9)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the scheduler failure", err)
	}
	if accepted {
		t.Error("failed solve reported as accepted")
	}
	st := m.Stats()
	if st.Submitted != 0 || st.Rejected != 0 {
		t.Errorf("counters absorbed a scheduler failure: %+v", st)
	}
	// Infeasibility stays a clean rejection.
	infeasible := sched.Func{ID: "never", F: func(job.Set, platform.Platform, float64) (*schedule.Schedule, error) {
		return nil, sched.ErrInfeasible
	}}
	m2, err := New(motiv.Platform(), motiv.Library(), infeasible, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, accepted, _, err := m2.Submit(0, "lambda1", 9); err != nil || accepted {
		t.Fatalf("infeasible: accepted=%v err=%v, want clean rejection", accepted, err)
	}
	if st := m2.Stats(); st.Submitted != 1 || st.Rejected != 1 {
		t.Errorf("rejection counters: %+v", st)
	}
}
