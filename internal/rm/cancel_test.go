package rm

import (
	"math"
	"testing"
)

func TestCancelFreesResources(t *testing.T) {
	m := newMgr(t, Options{})
	id1, ok, _, _ := m.Submit(0, "lambda1", 9)
	if !ok {
		t.Fatal("λ1 rejected")
	}
	if _, ok, _, _ = m.Submit(1, "lambda2", 5); !ok {
		t.Fatal("λ2 rejected")
	}
	// Cancel the long job right after admission of the second.
	if err := m.Cancel(id1); err != nil {
		t.Fatal(err)
	}
	if len(m.ActiveJobs()) != 1 {
		t.Fatalf("active = %d, want 1", len(m.ActiveJobs()))
	}
	if _, err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Completed != 1 || st.DeadlineMisses != 0 {
		t.Errorf("stats = %+v", st)
	}
	// Only σ1's first second plus σ2's full run were consumed. σ2 alone
	// from t=1 picks its cheapest deadline-5 point (2L1B, 5.73 J).
	want := 8.90/5.3 + 5.73
	if math.Abs(st.Energy-want) > 0.02 {
		t.Errorf("energy = %.3f, want ≈%.3f", st.Energy, want)
	}
}

func TestCancelUnknown(t *testing.T) {
	m := newMgr(t, Options{})
	if err := m.Cancel(42); err == nil {
		t.Error("cancelling unknown job succeeded")
	}
}

func TestCancelLastJobClearsSchedule(t *testing.T) {
	m := newMgr(t, Options{})
	id, ok, _, _ := m.Submit(0, "lambda1", 9)
	if !ok {
		t.Fatal("rejected")
	}
	if err := m.Cancel(id); err != nil {
		t.Fatal(err)
	}
	if !m.CurrentSchedule().IsEmpty() {
		t.Error("schedule not cleared")
	}
	if _, err := m.AdvanceTo(100); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Energy != 0 {
		t.Error("cancelled job consumed energy after cancellation")
	}
}
