package rm

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"adaptrm/internal/control"
	"adaptrm/internal/job"
	"adaptrm/internal/schedule"
)

// ErrRestore flags an invalid snapshot handed to Restore.
var ErrRestore = errors.New("rm: invalid snapshot")

// Snapshot is the complete reconstructable state of a manager, in wire
// form: plain values with JSON tags, no pointers into live structures.
// It is the unit the durability layer (internal/durable) persists — a
// manager restored from a snapshot and then driven by the tail of the
// event log reaches a state byte-identical to the original.
//
// The schedule cache (which lives in the fleet layer, not here) is
// deliberately outside the snapshot: it is a performance artifact, not
// admission state, and recovers cold.
type Snapshot struct {
	// Now is the device's virtual clock.
	Now float64 `json:"now"`
	// NextID is the next job id to assign.
	NextID int `json:"next_id"`
	// EventSeq is the last emitted event sequence number; replaying the
	// tail of the event log past this point continues the numbering with
	// no gap.
	EventSeq uint64 `json:"event_seq"`

	// Admission counters and accounting (Stats, flattened to fixed-width
	// wire types).
	Submitted        int     `json:"submitted"`
	Accepted         int     `json:"accepted"`
	Rejected         int     `json:"rejected"`
	Completed        int     `json:"completed"`
	DeadlineMisses   int     `json:"deadline_misses"`
	Cancelled        int     `json:"cancelled"`
	Energy           float64 `json:"energy"`
	Activations      int     `json:"activations"`
	SchedulingTimeNs int64   `json:"scheduling_time_ns"`
	// Swapped counts accepted refinement swaps. omitempty keeps
	// snapshots of swap-free managers byte-identical to pre-refinement
	// builds (and their files loadable by them).
	Swapped int `json:"swapped,omitempty"`
	// Mode is the degradation tier's wire name when not ModeNormal.
	// omitempty keeps snapshots of never-degraded managers
	// byte-identical to pre-control builds.
	Mode string `json:"mode,omitempty"`

	// Active are the unfinished admitted jobs in admission order.
	Active []SnapshotJob `json:"active,omitempty"`
	// Started lists the active job ids that already emitted JobStarted,
	// in ascending order.
	Started []int `json:"started,omitempty"`
	// Current is the active schedule's segments.
	Current []SnapshotSegment `json:"current,omitempty"`
	// Executed is the audit timeline of executed fractions.
	Executed []SnapshotSegment `json:"executed,omitempty"`
}

// SnapshotJob is one active job in wire form. The operating-point table
// is referenced by application name and re-resolved from the library on
// restore, so a snapshot is valid across processes.
type SnapshotJob struct {
	ID        int     `json:"id"`
	App       string  `json:"app"`
	Arrival   float64 `json:"arrival"`
	Deadline  float64 `json:"deadline"`
	Remaining float64 `json:"remaining"`
}

// SnapshotPlacement is one schedule placement in wire form.
type SnapshotPlacement struct {
	Job   int `json:"job"`
	Point int `json:"point"`
}

// SnapshotSegment is one schedule segment in wire form.
type SnapshotSegment struct {
	Start      float64             `json:"start"`
	End        float64             `json:"end"`
	Placements []SnapshotPlacement `json:"placements,omitempty"`
}

// EventSeq returns the sequence number of the last emitted event (0
// before any), letting persistence layers align snapshots with the
// event log.
func (m *Manager) EventSeq() uint64 { return m.eventSeq }

// Snapshot captures the manager's reconstructable state. It is a pure
// read: no events, no counter changes.
func (m *Manager) Snapshot() *Snapshot {
	s := &Snapshot{
		Now:              m.now,
		NextID:           m.nextID,
		EventSeq:         m.eventSeq,
		Submitted:        m.stats.Submitted,
		Accepted:         m.stats.Accepted,
		Rejected:         m.stats.Rejected,
		Completed:        m.stats.Completed,
		DeadlineMisses:   m.stats.DeadlineMisses,
		Cancelled:        m.stats.Cancelled,
		Energy:           m.stats.Energy,
		Activations:      m.stats.Activations,
		SchedulingTimeNs: int64(m.stats.SchedulingTime),
		Swapped:          m.stats.Swapped,
	}
	if m.mode != control.ModeNormal {
		s.Mode = m.mode.String()
	}
	for _, j := range m.active {
		s.Active = append(s.Active, SnapshotJob{
			ID:        j.ID,
			App:       j.Table.Name(),
			Arrival:   j.Arrival,
			Deadline:  j.Deadline,
			Remaining: j.Remaining,
		})
		if m.started[j.ID] {
			s.Started = append(s.Started, j.ID)
		}
	}
	sort.Ints(s.Started)
	s.Current = segmentsToWire(m.current.Segments)
	s.Executed = segmentsToWire(m.executed)
	return s
}

// Restore loads a snapshot into a freshly constructed manager: same
// platform/library/scheduler/options as the snapshotted one, no traffic
// yet. It resolves application tables by name, rebuilds the active set,
// schedule and executed timeline, and positions the clock, job ids and
// event sequence exactly where the snapshot left them. No events are
// emitted; the next emitted event continues the sequence.
func (m *Manager) Restore(s *Snapshot) error {
	if s == nil {
		return fmt.Errorf("%w: nil", ErrRestore)
	}
	if m.now != 0 || m.nextID != 1 || len(m.active) != 0 || m.stats != (Stats{}) || m.mode != control.ModeNormal {
		return fmt.Errorf("%w: manager not fresh", ErrRestore)
	}
	mode := control.ModeNormal
	if s.Mode != "" {
		var err error
		if mode, err = control.ParseMode(s.Mode); err != nil {
			return fmt.Errorf("%w: %w", ErrRestore, err)
		}
	}
	if s.NextID < 1 {
		return fmt.Errorf("%w: next id %d", ErrRestore, s.NextID)
	}
	active := make(job.Set, 0, len(s.Active))
	for _, sj := range s.Active {
		tbl := m.lib.Get(sj.App)
		if tbl == nil {
			return fmt.Errorf("%w: job %d references unknown app %q", ErrRestore, sj.ID, sj.App)
		}
		if sj.ID <= 0 || sj.ID >= s.NextID {
			return fmt.Errorf("%w: job id %d outside [1,%d)", ErrRestore, sj.ID, s.NextID)
		}
		active = append(active, &job.Job{
			ID:        sj.ID,
			Table:     tbl,
			Arrival:   sj.Arrival,
			Deadline:  sj.Deadline,
			Remaining: sj.Remaining,
		})
	}
	for _, id := range s.Started {
		if active.ByID(id) == nil {
			return fmt.Errorf("%w: started job %d not active", ErrRestore, id)
		}
	}
	m.now = s.Now
	m.nextID = s.NextID
	m.eventSeq = s.EventSeq
	m.mode = mode
	m.active = active
	m.current = &schedule.Schedule{Segments: segmentsFromWire(s.Current)}
	m.executed = segmentsFromWire(s.Executed)
	m.stats = Stats{
		Submitted:      s.Submitted,
		Accepted:       s.Accepted,
		Rejected:       s.Rejected,
		Completed:      s.Completed,
		DeadlineMisses: s.DeadlineMisses,
		Cancelled:      s.Cancelled,
		Energy:         s.Energy,
		Activations:    s.Activations,
		SchedulingTime: time.Duration(s.SchedulingTimeNs),
		Swapped:        s.Swapped,
	}
	if len(s.Started) > 0 && m.started == nil {
		m.started = make(map[int]bool, len(s.Started))
	}
	for _, id := range s.Started {
		m.started[id] = true
	}
	return nil
}

func segmentsToWire(segs []schedule.Segment) []SnapshotSegment {
	if len(segs) == 0 {
		return nil
	}
	out := make([]SnapshotSegment, len(segs))
	for i, seg := range segs {
		w := SnapshotSegment{Start: seg.Start, End: seg.End}
		for _, p := range seg.Placements {
			w.Placements = append(w.Placements, SnapshotPlacement{Job: p.JobID, Point: p.Point})
		}
		out[i] = w
	}
	return out
}

func segmentsFromWire(segs []SnapshotSegment) []schedule.Segment {
	if len(segs) == 0 {
		return nil
	}
	out := make([]schedule.Segment, len(segs))
	for i, w := range segs {
		seg := schedule.Segment{Start: w.Start, End: w.End}
		for _, p := range w.Placements {
			seg.Placements = append(seg.Placements, schedule.Placement{JobID: p.Job, Point: p.Point})
		}
		out[i] = seg
	}
	return out
}
