package rm

import (
	"errors"
	"math"
	"testing"

	"adaptrm/internal/schedule"
)

// TestAdvanceToEpsilonClamp: a target inside the epsilon band just below
// the current time is tolerated — but must never move the clock
// backwards (the PR 4 clamp, here pinned in isolation).
func TestAdvanceToEpsilonClamp(t *testing.T) {
	m := newMgr(t, Options{})
	if _, err := m.AdvanceTo(5); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AdvanceTo(5 - schedule.Eps/2); err != nil {
		t.Fatalf("epsilon-band target rejected: %v", err)
	}
	if now := m.Now(); now != 5 {
		t.Fatalf("clock regressed to %v after epsilon-band advance, want 5", now)
	}
	// Repeating the band target must stay idempotent.
	if _, err := m.AdvanceTo(5 - schedule.Eps/2); err != nil {
		t.Fatal(err)
	}
	if now := m.Now(); now != 5 {
		t.Fatalf("clock = %v after repeated band advance, want 5", now)
	}
	// Outside the band the regression is an error and the clock holds.
	if _, err := m.AdvanceTo(4.9); !errors.Is(err, ErrTimeBackwards) {
		t.Fatalf("regression target: %v, want ErrTimeBackwards", err)
	}
	if now := m.Now(); now != 5 {
		t.Fatalf("clock = %v after rejected regression, want 5", now)
	}
}

// TestAdvanceToEpsilonClampWithTraffic: the band tolerance also holds
// mid-schedule — a submission at t followed by an epsilon-earlier
// advance must not regress the clock or corrupt accounting.
func TestAdvanceToEpsilonClampWithTraffic(t *testing.T) {
	m := newMgr(t, Options{})
	if _, ok, _, err := m.Submit(1, "lambda1", 10); err != nil || !ok {
		t.Fatalf("λ1: %v", err)
	}
	if _, err := m.AdvanceTo(1 - schedule.Eps/2); err != nil {
		t.Fatalf("band advance after submit: %v", err)
	}
	if now := m.Now(); now != 1 {
		t.Fatalf("clock = %v, want 1", now)
	}
	if _, err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Completed != 1 || st.DeadlineMisses != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestExecutedTimelineTruncation: a job finishing inside an executed
// slice must not be shown running past its completion — the timeline is
// cut at each distinct finish time (the PR 4 truncation, pinned in
// isolation via one long advance over staggered completions).
func TestExecutedTimelineTruncation(t *testing.T) {
	m := newMgr(t, Options{})
	if _, ok, _, err := m.Submit(0, "lambda1", 9); err != nil || !ok {
		t.Fatalf("λ1: %v", err)
	}
	if _, ok, _, err := m.Submit(1, "lambda2", 5); err != nil || !ok {
		t.Fatalf("λ2: %v", err)
	}
	// One giant advance spans both completions: the recorded timeline
	// must still stop each job at its own finish.
	done, err := m.AdvanceTo(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 2 {
		t.Fatalf("completions = %+v, want 2", done)
	}
	finish := make(map[int]float64, len(done))
	last := 0.0
	for _, c := range done {
		finish[c.JobID] = c.At
		if c.At > last {
			last = c.At
		}
	}
	tl := m.ExecutedTimeline()
	if len(tl) == 0 {
		t.Fatal("empty executed timeline")
	}
	prevEnd := math.Inf(-1)
	for i, seg := range tl {
		if seg.End <= seg.Start {
			t.Fatalf("segment %d degenerate: [%v, %v]", i, seg.Start, seg.End)
		}
		if seg.Start < prevEnd-schedule.Eps {
			t.Fatalf("segment %d overlaps predecessor: start %v < prev end %v", i, seg.Start, prevEnd)
		}
		prevEnd = seg.End
		for _, p := range seg.Placements {
			f, known := finish[p.JobID]
			if !known {
				t.Fatalf("segment %d places unknown job %d", i, p.JobID)
			}
			if seg.End > f+schedule.Eps {
				t.Errorf("job %d shown running in [%v, %v] past its completion %v", p.JobID, seg.Start, seg.End, f)
			}
		}
	}
	// The timeline ends exactly at the last completion, not at the
	// advance target.
	if end := tl[len(tl)-1].End; math.Abs(end-last) > schedule.Eps {
		t.Errorf("timeline ends at %v, want last completion %v", end, last)
	}
	// Each job's recorded span ends exactly at its completion time.
	for id, f := range finish {
		span := math.Inf(-1)
		for _, seg := range tl {
			for _, p := range seg.Placements {
				if p.JobID == id && seg.End > span {
					span = seg.End
				}
			}
		}
		if math.Abs(span-f) > schedule.Eps {
			t.Errorf("job %d recorded until %v, completed at %v", id, span, f)
		}
	}
}
