package rm

import (
	"errors"
	"math/rand"
	"testing"

	"adaptrm/internal/schedule"
)

// collect installs a recording sink on a fresh manager.
func collect(t *testing.T, opt Options) (*Manager, *[]Event) {
	t.Helper()
	m := newMgr(t, opt)
	var evs []Event
	m.SetEventSink(func(ev Event) { evs = append(evs, ev) })
	return m, &evs
}

// countEvents folds an event log into the admission counters it implies.
func countEvents(evs []Event) (admitted, rejected, completed, cancelled, missed int) {
	for _, ev := range evs {
		switch ev.Type {
		case EventJobAdmitted:
			admitted++
		case EventJobRejected:
			rejected++
		case EventJobCompleted:
			completed++
			if ev.Missed {
				missed++
			}
		case EventJobCancelled:
			cancelled++
		}
	}
	return
}

// checkSeq asserts the log carries strictly monotone gap-free sequence
// numbers starting at 1.
func checkSeq(t *testing.T, evs []Event) {
	t.Helper()
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d: seq = %d, want %d (log %+v)", i, ev.Seq, i+1, evs)
		}
	}
}

// TestEventLifecycle runs the motivational scenario and checks the full
// event story: admissions with schedule changes, starts, completions —
// in order, gap-free, with faithful payloads.
func TestEventLifecycle(t *testing.T) {
	m, evs := collect(t, Options{})
	id1, ok, _, err := m.Submit(0, "lambda1", 9)
	if err != nil || !ok {
		t.Fatalf("λ1: %v", err)
	}
	if _, ok, _, err = m.Submit(1, "lambda2", 5); err != nil || !ok {
		t.Fatalf("λ2: %v", err)
	}
	if _, err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	checkSeq(t, *evs)
	var types []EventType
	for _, ev := range *evs {
		types = append(types, ev.Type)
	}
	// λ1 admitted+schedule, then λ1 started while advancing to t=1 for
	// λ2's submission (an interior advance — no clock event), λ2
	// admitted+schedule, then both run to completion across two explicit
	// Drain advances, each closing with ClockAdvanced.
	want := []EventType{
		EventJobAdmitted, EventScheduleChanged,
		EventJobStarted,
		EventJobAdmitted, EventScheduleChanged,
		EventJobStarted, EventJobCompleted, EventClockAdvanced,
		EventJobCompleted, EventClockAdvanced,
	}
	if len(types) != len(want) {
		t.Fatalf("event types = %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("event %d = %v, want %v (log %v)", i, types[i], want[i], types)
		}
	}
	first := (*evs)[0]
	if first.JobID != id1 || first.App != "lambda1" || first.Deadline != 9 || first.At != 0 {
		t.Errorf("admission payload = %+v", first)
	}
	// Event times never run backwards.
	for i := 1; i < len(*evs); i++ {
		if (*evs)[i].At < (*evs)[i-1].At-schedule.Eps {
			t.Errorf("event %d time %v precedes %v", i, (*evs)[i].At, (*evs)[i-1].At)
		}
	}
	admitted, rejected, completed, cancelled, missed := countEvents(*evs)
	st := m.Stats()
	if admitted != st.Accepted || rejected != st.Rejected || completed != st.Completed ||
		cancelled != st.Cancelled || missed != st.DeadlineMisses {
		t.Errorf("event counts (%d/%d/%d/%d/%d) disagree with stats %+v",
			admitted, rejected, completed, cancelled, missed, st)
	}
}

// TestEventRejection: a clean rejection emits JobRejected with the
// request payload and no schedule change; erroneous requests (unknown
// app, bad deadline) emit nothing.
func TestEventRejection(t *testing.T) {
	m, evs := collect(t, Options{})
	if _, ok, _, err := m.Submit(0, "lambda1", 9); err != nil || !ok {
		t.Fatalf("first λ1: %v", err)
	}
	n := len(*evs)
	if _, ok, _, err := m.Submit(0, "lambda1", 9); err != nil || ok {
		t.Fatalf("second λ1 not rejected: %v", err)
	}
	tail := (*evs)[n:]
	if len(tail) != 1 || tail[0].Type != EventJobRejected || tail[0].App != "lambda1" || tail[0].JobID != 0 {
		t.Fatalf("rejection events = %+v", tail)
	}
	n = len(*evs)
	if _, _, _, err := m.Submit(0, "nope", 9); !errors.Is(err, ErrUnknownApp) {
		t.Fatalf("unknown app: %v", err)
	}
	if _, _, _, err := m.Submit(1, "lambda1", 1); !errors.Is(err, ErrBadDeadline) {
		t.Fatalf("bad deadline: %v", err)
	}
	if len(*evs) != n {
		t.Errorf("erroneous requests emitted events: %+v", (*evs)[n:])
	}
}

// TestEventCancel: cancelling an active job emits JobCancelled plus
// ScheduleChanged and bumps the Cancelled counter; cancelling a job that
// already completed returns ErrNoSuchJob and mutates nothing — no event,
// no counter (the double-counting audit of the cancel path).
func TestEventCancel(t *testing.T) {
	m, evs := collect(t, Options{})
	id, ok, _, err := m.Submit(0, "lambda1", 9)
	if err != nil || !ok {
		t.Fatalf("λ1: %v", err)
	}
	n := len(*evs)
	if err := m.Cancel(id); err != nil {
		t.Fatal(err)
	}
	tail := (*evs)[n:]
	if len(tail) != 2 || tail[0].Type != EventJobCancelled || tail[0].JobID != id ||
		tail[1].Type != EventScheduleChanged {
		t.Fatalf("cancel events = %+v", tail)
	}
	if st := m.Stats(); st.Cancelled != 1 {
		t.Fatalf("Cancelled = %d, want 1", st.Cancelled)
	}

	// A second cancel of the same (now gone) job: ErrNoSuchJob, nothing
	// mutated.
	before, nEv := m.Stats(), len(*evs)
	if err := m.Cancel(id); !errors.Is(err, ErrNoSuchJob) {
		t.Fatalf("re-cancel: %v, want ErrNoSuchJob", err)
	}
	if m.Stats() != before || len(*evs) != nEv {
		t.Errorf("re-cancel mutated state: stats %+v → %+v, %d new events", before, m.Stats(), len(*evs)-nEv)
	}

	// Same for a job that ran to completion.
	id2, ok, _, err := m.Submit(0, "lambda2", 5)
	if err != nil || !ok {
		t.Fatalf("λ2: %v", err)
	}
	if _, err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	before, nEv = m.Stats(), len(*evs)
	if err := m.Cancel(id2); !errors.Is(err, ErrNoSuchJob) {
		t.Fatalf("cancel completed job: %v, want ErrNoSuchJob", err)
	}
	if m.Stats() != before || len(*evs) != nEv {
		t.Errorf("cancel of completed job mutated state: stats %+v → %+v, %d new events",
			before, m.Stats(), len(*evs)-nEv)
	}
	checkSeq(t, *evs)
}

// TestEventBatchAdmission: the joint fast path admits every item with
// one ScheduleChanged (one activation — the event stream reflects real
// activations), and per-item payloads match the requests.
func TestEventBatchAdmission(t *testing.T) {
	m, evs := collect(t, Options{})
	verdicts, _, err := m.SubmitBatch(0, []Request{
		{App: "lambda1", Deadline: 9},
		{App: "lambda2", Deadline: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range verdicts {
		if !v.Accepted || v.Err != nil {
			t.Fatalf("verdict %d = %+v", i, v)
		}
	}
	var types []EventType
	for _, ev := range *evs {
		types = append(types, ev.Type)
	}
	want := []EventType{EventJobAdmitted, EventJobAdmitted, EventScheduleChanged}
	if len(types) != len(want) {
		t.Fatalf("batch events = %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("batch events = %v, want %v", types, want)
		}
	}
	if (*evs)[0].JobID != verdicts[0].JobID || (*evs)[1].JobID != verdicts[1].JobID {
		t.Errorf("admission events %+v disagree with verdicts %+v", *evs, verdicts)
	}
	checkSeq(t, *evs)
}

// TestStatsLifecycleInvariant drives seeded random traffic — submits,
// advances, cancellations of live, completed and bogus job ids — and
// pins the lifecycle invariants after every operation:
//
//	Submitted = Accepted + Rejected
//	Accepted  = Completed + Cancelled + |active|
//
// plus, at the end, that the event log reconstructs the admission
// statistics exactly.
func TestStatsLifecycleInvariant(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		m, evs := collect(t, Options{})
		rng := rand.New(rand.NewSource(seed))
		apps := []string{"lambda1", "lambda2"}
		now := 0.0
		var ids []int // every id ever admitted, live or not
		check := func(opName string) {
			t.Helper()
			st := m.Stats()
			active := len(m.ActiveJobs())
			if st.Submitted != st.Accepted+st.Rejected {
				t.Fatalf("seed %d after %s: Submitted %d ≠ Accepted %d + Rejected %d",
					seed, opName, st.Submitted, st.Accepted, st.Rejected)
			}
			if st.Accepted != st.Completed+st.Cancelled+active {
				t.Fatalf("seed %d after %s: Accepted %d ≠ Completed %d + Cancelled %d + active %d",
					seed, opName, st.Accepted, st.Completed, st.Cancelled, active)
			}
		}
		for i := 0; i < 120; i++ {
			switch op := rng.Intn(4); op {
			case 0, 1: // submit
				app := apps[rng.Intn(len(apps))]
				id, ok, _, err := m.Submit(now, app, now+1+rng.Float64()*9)
				if err != nil {
					t.Fatalf("seed %d submit: %v", seed, err)
				}
				if ok {
					ids = append(ids, id)
				}
				check("submit")
			case 2: // advance
				now += rng.Float64() * 3
				if _, err := m.AdvanceTo(now); err != nil {
					t.Fatalf("seed %d advance: %v", seed, err)
				}
				check("advance")
			case 3: // cancel a historical, live, or bogus id
				id := 999
				if len(ids) > 0 && rng.Intn(4) > 0 {
					id = ids[rng.Intn(len(ids))]
				}
				if err := m.Cancel(id); err != nil && !errors.Is(err, ErrNoSuchJob) {
					t.Fatalf("seed %d cancel: %v", seed, err)
				}
				check("cancel")
			}
		}
		if _, err := m.Drain(); err != nil {
			t.Fatalf("seed %d drain: %v", seed, err)
		}
		check("drain")
		checkSeq(t, *evs)
		admitted, rejected, completed, cancelled, missed := countEvents(*evs)
		st := m.Stats()
		if admitted != st.Accepted || rejected != st.Rejected || completed != st.Completed ||
			cancelled != st.Cancelled || missed != st.DeadlineMisses {
			t.Errorf("seed %d: event counts (%d/%d/%d/%d/%d) disagree with stats %+v",
				seed, admitted, rejected, completed, cancelled, missed, st)
		}
	}
}
