package rm

import (
	"math"
	"reflect"
	"testing"

	"adaptrm/internal/core"
	"adaptrm/internal/exmem"
	"adaptrm/internal/opset"
	"adaptrm/internal/platform"
	"adaptrm/internal/schedule"
)

// swapFixture builds a manager on the MDF-gap workload (see the exmem
// suite's mdfGapCase): admitting blocker then switcher leaves MMKP-MDF
// on a 14 J plan while the exact cut-at-completion optimum is 13.4 J —
// the shape anytime refinement exists for.
func swapFixture(t *testing.T) (*Manager, platform.Platform) {
	t.Helper()
	plat := platform.Motivational2L2B()
	blocker := &opset.Table{App: "blocker", Points: []opset.Point{
		{Alloc: platform.Alloc{1, 2}, Time: 4, Energy: 5},
	}}
	blocker.SortByEnergy()
	switcher := &opset.Table{App: "switcher", Points: []opset.Point{
		{Alloc: platform.Alloc{1, 0}, Time: 20, Energy: 2},
		{Alloc: platform.Alloc{1, 0}, Time: 8, Energy: 9},
		{Alloc: platform.Alloc{2, 2}, Time: 5, Energy: 10},
	}}
	switcher.SortByEnergy()
	lib := opset.NewLibrary()
	if err := lib.Add(blocker); err != nil {
		t.Fatal(err)
	}
	if err := lib.Add(switcher); err != nil {
		t.Fatal(err)
	}
	m, err := New(plat, lib, core.New(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m, plat
}

// admitGap admits the two gap-case jobs and returns a refined exact
// schedule strictly cheaper than the MDF incumbent.
func admitGap(t *testing.T, m *Manager, plat platform.Platform) *schedule.Schedule {
	t.Helper()
	for _, req := range []struct {
		app      string
		deadline float64
	}{{"blocker", 4}, {"switcher", 8.5}} {
		if _, accepted, _, err := m.Submit(0, req.app, req.deadline); err != nil || !accepted {
			t.Fatalf("submit %s: accepted=%v err=%v", req.app, accepted, err)
		}
	}
	jobs, now, incumbent, ok := m.RefineSnapshot()
	if !ok {
		t.Fatal("RefineSnapshot not ok with two active jobs")
	}
	k, err := exmem.New().ScheduleBudgeted(jobs, plat, now, incumbent)
	if err != nil {
		t.Fatalf("refinement found nothing: %v (incumbent %v)", err, incumbent)
	}
	return k
}

func TestSwapScheduleAcceptsImprovement(t *testing.T) {
	m, plat := swapFixture(t)
	var swaps []Event
	m.SetEventSink(func(ev Event) {
		if ev.Type == EventScheduleSwapped {
			swaps = append(swaps, ev)
		}
	})
	k := admitGap(t, m, plat)
	if !m.SwapSchedule(k) {
		t.Fatal("strictly cheaper valid schedule rejected")
	}
	if got := m.Stats().Swapped; got != 1 {
		t.Errorf("Swapped = %d, want 1", got)
	}
	if len(swaps) != 1 || swaps[0].Payload == "" || swaps[0].At != 0 {
		t.Fatalf("swap events = %+v, want one at t=0 with payload", swaps)
	}
	// The same offer again is no longer strictly cheaper.
	if m.SwapSchedule(k) {
		t.Error("re-offered incumbent accepted")
	}
	if _, err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if math.Abs(s.Energy-13.4) > 1e-6 {
		t.Errorf("drained energy = %v, want 13.4 (the exact optimum)", s.Energy)
	}
	if s.Completed != 2 || s.DeadlineMisses != 0 {
		t.Errorf("completions after swap: %+v", s)
	}
}

func TestSwapScheduleRejections(t *testing.T) {
	m, plat := swapFixture(t)
	if m.SwapSchedule(nil) {
		t.Error("nil schedule accepted")
	}
	if m.SwapSchedule(&schedule.Schedule{}) {
		t.Error("swap on an idle manager accepted")
	}
	k := admitGap(t, m, plat)
	// Not strictly cheaper: the current schedule offered back.
	if m.SwapSchedule(m.CurrentSchedule()) {
		t.Error("equal-energy schedule accepted")
	}
	// Stale: the job set changed since the refinement was captured.
	if err := m.Cancel(2); err != nil {
		t.Fatal(err)
	}
	if m.SwapSchedule(k) {
		t.Error("stale schedule (references a cancelled job) accepted")
	}
	if got := m.Stats().Swapped; got != 0 {
		t.Errorf("Swapped = %d, want 0", got)
	}
}

// TestReplaySwapReproduces: replaying the logged swap event on a
// manager at the same pre-swap state reproduces the schedule, the stats
// and the re-emitted event byte-identically — the property fleet
// recovery leans on.
func TestReplaySwapReproduces(t *testing.T) {
	m1, plat := swapFixture(t)
	var ev1 []Event
	m1.SetEventSink(func(ev Event) { ev1 = append(ev1, ev) })
	k := admitGap(t, m1, plat)
	if !m1.SwapSchedule(k) {
		t.Fatal("swap rejected")
	}

	m2, _ := swapFixture(t)
	var ev2 []Event
	m2.SetEventSink(func(ev Event) { ev2 = append(ev2, ev) })
	for _, req := range []struct {
		app      string
		deadline float64
	}{{"blocker", 4}, {"switcher", 8.5}} {
		if _, accepted, _, err := m2.Submit(0, req.app, req.deadline); err != nil || !accepted {
			t.Fatalf("submit %s: accepted=%v err=%v", req.app, accepted, err)
		}
	}
	swap := ev1[len(ev1)-1]
	if swap.Type != EventScheduleSwapped {
		t.Fatalf("last live event is %s, want schedule_swapped", swap.Type)
	}
	if err := m2.ReplaySwap(swap.At, swap.Payload); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ev1, ev2) {
		t.Errorf("event logs diverge:\n live   %+v\n replay %+v", ev1, ev2)
	}
	if got := m2.Stats().Swapped; got != 1 {
		t.Errorf("replayed Swapped = %d, want 1", got)
	}
	if !reflect.DeepEqual(m1.CurrentSchedule(), m2.CurrentSchedule()) {
		t.Error("replayed schedule differs from the live swap")
	}
	if _, err := m1.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Drain(); err != nil {
		t.Fatal(err)
	}
	if e1, e2 := m1.Stats().Energy, m2.Stats().Energy; e1 != e2 {
		t.Errorf("drained energies diverge: %v vs %v", e1, e2)
	}
}

func TestReplaySwapBadPayload(t *testing.T) {
	m, _ := swapFixture(t)
	if err := m.ReplaySwap(0, "{not json"); err == nil {
		t.Error("corrupt payload accepted")
	}
}
