package rm

import (
	"encoding/json"
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

// managerState is everything a snapshot must reproduce, in comparable
// form.
type managerState struct {
	Now      float64
	Stats    Stats
	Active   []SnapshotJob
	Current  []SnapshotSegment
	Executed []SnapshotSegment
	EventSeq uint64
}

func captureState(m *Manager) managerState {
	s := m.Snapshot()
	st := m.Stats()
	st.SchedulingTime = 0 // wall time, inherently non-deterministic
	return managerState{
		Now:      m.Now(),
		Stats:    st,
		Active:   s.Active,
		Current:  s.Current,
		Executed: s.Executed,
		EventSeq: m.EventSeq(),
	}
}

// driveTraffic applies a deterministic seeded workload; shared by the
// original and restored managers so their futures are identical ops.
func driveTraffic(t *testing.T, m *Manager, seed int64, ops int, start float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	apps := []string{"lambda1", "lambda2"}
	now := start
	var ids []int
	for i := 0; i < ops; i++ {
		switch rng.Intn(5) {
		case 0, 1:
			id, ok, _, err := m.Submit(now, apps[rng.Intn(len(apps))], now+1+rng.Float64()*9)
			if err != nil {
				t.Fatalf("submit: %v", err)
			}
			if ok {
				ids = append(ids, id)
			}
		case 2:
			now += rng.Float64() * 3
			if _, err := m.AdvanceTo(now); err != nil {
				t.Fatalf("advance: %v", err)
			}
		case 3:
			if len(ids) > 0 {
				if err := m.Cancel(ids[rng.Intn(len(ids))]); err != nil && !errors.Is(err, ErrNoSuchJob) {
					t.Fatalf("cancel: %v", err)
				}
			}
		case 4:
			_, _, err := m.SubmitBatch(now, []Request{
				{App: apps[0], Deadline: now + 2 + rng.Float64()*8},
				{App: apps[1], Deadline: now + 2 + rng.Float64()*8},
			})
			if err != nil {
				t.Fatalf("batch: %v", err)
			}
		}
	}
}

// TestSnapshotRoundTrip drives seeded traffic, snapshots mid-flight,
// restores into a fresh manager (via a JSON round trip — the wire form
// durable persists), and checks (a) the restored state is byte-identical
// and (b) identical future traffic keeps both managers byte-identical,
// including event sequence numbering.
func TestSnapshotRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		m := newMgr(t, Options{RescheduleOnFinish: seed%2 == 0})
		var evs []Event
		m.SetEventSink(func(ev Event) { evs = append(evs, ev) })
		driveTraffic(t, m, seed, 60, 0)

		raw, err := json.Marshal(m.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		var snap Snapshot
		if err := json.Unmarshal(raw, &snap); err != nil {
			t.Fatal(err)
		}
		r := newMgr(t, Options{RescheduleOnFinish: seed%2 == 0})
		var revs []Event
		r.SetEventSink(func(ev Event) { revs = append(revs, ev) })
		if err := r.Restore(&snap); err != nil {
			t.Fatal(err)
		}
		if len(revs) != 0 {
			t.Fatalf("seed %d: Restore emitted %d events", seed, len(revs))
		}
		if a, b := captureState(m), captureState(r); !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: restored state differs:\n  orig %+v\n  rest %+v", seed, a, b)
		}

		// Identical futures: same ops → same states and same continued
		// event numbering.
		evs, revs = nil, nil
		start := m.Now()
		driveTraffic(t, m, seed+100, 40, start)
		driveTraffic(t, r, seed+100, 40, start)
		if a, b := captureState(m), captureState(r); !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: post-restore traffic diverged:\n  orig %+v\n  rest %+v", seed, a, b)
		}
		if !reflect.DeepEqual(evs, revs) {
			t.Fatalf("seed %d: post-restore events diverged (%d vs %d)", seed, len(evs), len(revs))
		}
	}
}

// TestRestoreValidation: Restore rejects nil snapshots, non-fresh
// managers, unknown apps, out-of-range ids and started ids that are not
// active.
func TestRestoreValidation(t *testing.T) {
	fresh := func() *Manager { return newMgr(t, Options{}) }
	if err := fresh().Restore(nil); !errors.Is(err, ErrRestore) {
		t.Errorf("nil snapshot: %v", err)
	}
	used := fresh()
	if _, _, _, err := used.Submit(0, "lambda1", 9); err != nil {
		t.Fatal(err)
	}
	if err := used.Restore(&Snapshot{NextID: 1}); !errors.Is(err, ErrRestore) {
		t.Errorf("non-fresh manager: %v", err)
	}
	if err := fresh().Restore(&Snapshot{
		NextID: 2,
		Active: []SnapshotJob{{ID: 1, App: "nope", Remaining: 1}},
	}); !errors.Is(err, ErrRestore) {
		t.Errorf("unknown app: %v", err)
	}
	if err := fresh().Restore(&Snapshot{
		NextID: 2,
		Active: []SnapshotJob{{ID: 7, App: "lambda1", Remaining: 1}},
	}); !errors.Is(err, ErrRestore) {
		t.Errorf("id out of range: %v", err)
	}
	if err := fresh().Restore(&Snapshot{NextID: 1, Started: []int{3}}); !errors.Is(err, ErrRestore) {
		t.Errorf("started not active: %v", err)
	}
}
