package rm

import (
	"fmt"

	"adaptrm/internal/control"
)

// Mode returns the manager's current degradation tier (ModeNormal for
// a manager that never saw a controller).
func (m *Manager) Mode() control.Mode { return m.mode }

// SetMode switches the manager's degradation tier. A change emits
// EventModeChanged at the manager clock with the mode's wire name as
// payload, so the transition flows through the watch/WAL machinery
// like any lifecycle event and replay can restore it verbatim; setting
// the current mode again is a no-op (no event). From ModeHeuristicOnly
// up, schedule() prefers Options.Fallback — the pure heuristic —
// over the configured scheduler.
//
// Like every manager call, SetMode must be serialised with the rest of
// the manager's traffic (the fleet calls it under the device lock).
func (m *Manager) SetMode(mo control.Mode) {
	if mo == m.mode {
		return
	}
	m.mode = mo
	m.emit(Event{Type: EventModeChanged, At: m.now, Payload: mo.String()})
}

// ReplayMode re-applies a logged mode change verbatim: the payload an
// original SetMode emitted is parsed and installed without consulting
// any controller — the original made the decision, replay reproduces
// it. The re-emitted event reuses the logged payload string and the
// logged time, so the recovery verifier sees an identical event.
func (m *Manager) ReplayMode(at float64, payload string) error {
	mo, err := control.ParseMode(payload)
	if err != nil {
		return fmt.Errorf("rm: mode payload: %w", err)
	}
	m.mode = mo
	m.emit(Event{Type: EventModeChanged, At: at, Payload: payload})
	return nil
}
