package rm

import (
	"encoding/json"
	"fmt"
	"math"

	"adaptrm/internal/job"
	"adaptrm/internal/schedule"
)

// SwapSchedule offers k as a replacement for the current schedule. It
// is the commit point of anytime refinement: a background exact solve
// finished and believes it beats the plan admission installed. The
// manager accepts the swap only if k is valid for the active jobs at
// the current clock (constraints 2b–2e) AND strictly cheaper in
// remaining planned energy than the schedule in force — otherwise the
// offer is dropped and the incumbent stays. A refinement that raced a
// clock advance, a new admission, or a cancellation simply fails
// validation here; that is the normal way stale results die, not an
// error.
//
// An accepted swap emits EventScheduleSwapped carrying the full new
// schedule as its payload, so the event log stays a complete operation
// log: replay re-applies the logged schedule verbatim (ReplaySwap)
// instead of re-running the unbounded background search.
func (m *Manager) SwapSchedule(k *schedule.Schedule) bool {
	if k == nil || len(m.active) == 0 {
		return false
	}
	if err := k.Validate(m.plat, m.active, m.now); err != nil {
		return false
	}
	if m.remainingEnergy(k) >= m.remainingEnergy(m.current)-1e-9 {
		return false
	}
	payload, err := json.Marshal(segmentsToWire(k.Segments))
	if err != nil {
		return false
	}
	m.current = k.Clone()
	m.stats.Swapped++
	m.emit(Event{Type: EventScheduleSwapped, At: m.now, Payload: string(payload)})
	return true
}

// RefineSnapshot captures the inputs of a background refinement search:
// a clone of the active job set (with current remaining ratios), the
// manager clock, and the remaining planned energy of the schedule in
// force — the incumbent bound an anytime solver must strictly beat.
// ok is false when the device is idle (nothing to refine). The clone is
// the caller's to keep; the manager retains no reference to it.
func (m *Manager) RefineSnapshot() (jobs job.Set, now, incumbent float64, ok bool) {
	if len(m.active) == 0 || m.current == nil {
		return nil, 0, 0, false
	}
	return m.active.Clone(), m.now, m.remainingEnergy(m.current), true
}

// remainingEnergy sums the planned energy of k's fractions at or after
// the manager clock over the active jobs. Clipping at the clock makes
// the comparison fair when the schedule in force still carries
// already-executed portions; placements of retired jobs contribute
// nothing.
func (m *Manager) remainingEnergy(k *schedule.Schedule) float64 {
	total := 0.0
	for i := range k.Segments {
		seg := &k.Segments[i]
		lo := math.Max(seg.Start, m.now)
		dur := seg.End - lo
		if dur <= 0 {
			continue
		}
		for _, p := range seg.Placements {
			j := m.active.ByID(p.JobID)
			if j == nil {
				continue
			}
			pt := j.Table.Points[p.Point]
			total += pt.Energy * dur / pt.Time
		}
	}
	return total
}

// ReplaySwap re-applies a logged schedule swap verbatim: the payload an
// accepted SwapSchedule emitted is decoded and installed without
// re-validating or re-comparing — the original manager already made the
// decision, and replay's job is to reproduce it byte-identically. The
// re-emitted event reuses the logged payload string, so the recovery
// verifier sees an identical event.
func (m *Manager) ReplaySwap(at float64, payload string) error {
	var wire []SnapshotSegment
	if err := json.Unmarshal([]byte(payload), &wire); err != nil {
		return fmt.Errorf("rm: swap payload: %w", err)
	}
	m.current = &schedule.Schedule{Segments: segmentsFromWire(wire)}
	m.stats.Swapped++
	m.emit(Event{Type: EventScheduleSwapped, At: at, Payload: payload})
	return nil
}
