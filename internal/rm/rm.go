// Package rm implements the online runtime manager (RM) of the paper: the
// component that is activated on every request arrival, transforms the
// design-time operating points into a segmented schedule via a pluggable
// scheduler (MMKP-MDF by default), admits or rejects the request, tracks
// job progress along the active schedule, and accounts energy.
//
// The evaluation section of the paper exercises schedulers on static
// snapshots; this package closes the loop for the dynamic workloads the
// introduction motivates: requests arrive at any time, the set of running
// applications changes, and admitted jobs must never miss their firm
// deadlines.
package rm

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"adaptrm/internal/control"
	"adaptrm/internal/job"
	"adaptrm/internal/opset"
	"adaptrm/internal/platform"
	"adaptrm/internal/sched"
	"adaptrm/internal/schedule"
)

// Sentinel errors of the manager, exported so service front-ends can
// map them onto a transport-level taxonomy with errors.Is instead of
// string matching. All are returned wrapped with contextual detail.
var (
	// ErrUnknownApp: the request names an application absent from the
	// library.
	ErrUnknownApp = errors.New("rm: unknown application")
	// ErrBadDeadline: the deadline is not strictly after the arrival.
	ErrBadDeadline = errors.New("rm: deadline not after arrival")
	// ErrTimeBackwards: a request or advance targets a time before the
	// manager's clock.
	ErrTimeBackwards = errors.New("rm: time moved backwards")
	// ErrNoSuchJob: a cancellation names a job that is not active.
	ErrNoSuchJob = errors.New("rm: no active job")
)

// Completion describes one finished job.
type Completion struct {
	// JobID is the finished job.
	JobID int
	// At is the completion time.
	At float64
	// Missed reports a deadline violation (must never happen for
	// admitted jobs; tracked defensively).
	Missed bool
}

// Stats aggregates manager activity. The admission counters satisfy the
// lifecycle invariant Accepted = Completed + Cancelled + active jobs at
// every quiescent point (pinned by a property test).
type Stats struct {
	// Submitted counts all requests, Accepted and Rejected its split.
	Submitted, Accepted, Rejected int
	// Completed counts finished jobs, DeadlineMisses the (defensive)
	// violations among them.
	Completed, DeadlineMisses int
	// Cancelled counts jobs aborted while active. A cancellation of an
	// already-completed (or never-admitted) job returns ErrNoSuchJob and
	// touches no counter.
	Cancelled int
	// Energy is the energy of all executed schedule fractions (J).
	Energy float64
	// Activations counts scheduler invocations, SchedulingTime their
	// cumulative wall time.
	Activations    int
	SchedulingTime time.Duration
	// Swapped counts accepted anytime-refinement schedule swaps
	// (SwapSchedule offers that validated and were strictly cheaper).
	Swapped int
}

// Options tunes the manager.
type Options struct {
	// RescheduleOnFinish re-runs the scheduler whenever a job finishes,
	// exploiting the freed resources (Section I: "when an application
	// finishes execution, more resources become available and the RM
	// can generate new mappings"). MMKP-MDF already plans the full
	// horizon, so this is optional polish; it never invalidates
	// admitted jobs because the previous schedule is kept on failure.
	RescheduleOnFinish bool
	// Fallback, when non-nil, is the cheap heuristic scheduler used in
	// place of the configured one while the manager's degradation mode
	// is ModeHeuristicOnly or higher (SetMode) — typically the plain
	// MMKP-MDF solver without cache wrapping, so degraded admission
	// costs exactly one pure heuristic solve. Like Scheduler it must
	// not be shared across devices unless stateless and goroutine-safe.
	// Mode changes travel the event log, so replay picks the same
	// scheduler at every point and stays byte-identical.
	Fallback sched.Scheduler
}

// Manager is the online runtime manager.
type Manager struct {
	plat      platform.Platform
	lib       *opset.Library
	scheduler sched.Scheduler
	opt       Options

	now      float64
	nextID   int
	active   job.Set
	current  *schedule.Schedule
	executed []schedule.Segment
	stats    Stats
	// mode is the degradation tier (see mode.go); from
	// ModeHeuristicOnly up, schedule() prefers opt.Fallback.
	mode control.Mode

	// Advance-accounting scratch, reused across AdvanceTo calls so the
	// activation hot path stays free of bookkeeping allocations (the
	// recorded timeline segments themselves are owned output and must
	// allocate).
	execScratch []executedPlacement
	endsScratch []float64

	// Event plumbing (see events.go): sink observes lifecycle events,
	// eventSeq numbers them, started tracks which active jobs already
	// emitted JobStarted. All nil/zero — and cost-free — until
	// SetEventSink installs an observer.
	sink     func(Event)
	eventSeq uint64
	started  map[int]bool
}

// New creates a manager. The library provides the operating-point tables
// requests refer to by name.
func New(plat platform.Platform, lib *opset.Library, scheduler sched.Scheduler, opt Options) (*Manager, error) {
	if err := plat.Validate(); err != nil {
		return nil, err
	}
	if lib == nil || lib.Len() == 0 {
		return nil, errors.New("rm: empty library")
	}
	if err := lib.Validate(plat); err != nil {
		return nil, err
	}
	if scheduler == nil {
		return nil, errors.New("rm: nil scheduler")
	}
	return &Manager{
		plat:      plat,
		lib:       lib,
		scheduler: scheduler,
		opt:       opt,
		nextID:    1,
		current:   &schedule.Schedule{},
	}, nil
}

// Now returns the manager's current time.
func (m *Manager) Now() float64 { return m.now }

// Stats returns a copy of the accumulated statistics.
func (m *Manager) Stats() Stats { return m.stats }

// ActiveJobs returns a snapshot of the unfinished admitted jobs.
func (m *Manager) ActiveJobs() job.Set { return m.active.Clone() }

// CurrentSchedule returns a deep copy of the active schedule, so callers
// (Gantt renderers, fleet shards snapshotting mid-traffic) can hold or
// mutate it without racing the manager's own bookkeeping.
func (m *Manager) CurrentSchedule() *schedule.Schedule { return m.current.Clone() }

// ExecutedTimeline returns the segments actually executed so far, for
// Gantt rendering and audits.
func (m *Manager) ExecutedTimeline() []schedule.Segment {
	out := make([]schedule.Segment, len(m.executed))
	copy(out, m.executed)
	return out
}

// NextCompletion returns the earliest planned job completion after the
// current time, or ok=false when nothing is running.
func (m *Manager) NextCompletion() (float64, bool) {
	best := math.Inf(1)
	for _, j := range m.active {
		f := m.current.FinishTime(j.ID)
		if !math.IsNaN(f) && f > m.now && f < best {
			best = f
		}
	}
	if math.IsInf(best, 1) {
		return 0, false
	}
	return best, true
}

// AdvanceTo moves time forward to t, accounting progress and energy along
// the current schedule and retiring finished jobs. It returns the
// completions that occurred in (now, t]. A target inside the epsilon
// band just below the current time is tolerated but never moves the
// clock backwards. When RescheduleOnFinish is set and the advance
// retired at least one job, the remaining jobs are re-planned on the
// freed resources before returning (see OnCompletion).
//
// An explicit advance that moves the clock emits EventClockAdvanced
// after the progress events, so the event log records every clock
// movement and stays replayable as an operation log. The interior
// advance performed by Submit/SubmitBatch goes through advanceTo
// directly and emits no clock event.
func (m *Manager) AdvanceTo(t float64) ([]Completion, error) {
	before := m.now
	done, err := m.advanceTo(t)
	if err == nil && m.now > before {
		m.emit(Event{Type: EventClockAdvanced, At: m.now})
	}
	return done, err
}

func (m *Manager) advanceTo(t float64) ([]Completion, error) {
	if t < m.now-schedule.Eps {
		return nil, fmt.Errorf("%w: %v < %v", ErrTimeBackwards, t, m.now)
	}
	var done []Completion
	for si := range m.current.Segments {
		seg := &m.current.Segments[si]
		lo := math.Max(seg.Start, m.now)
		hi := math.Min(seg.End, t)
		if hi-lo <= schedule.Eps {
			continue
		}
		execs := m.execScratch[:0]
		for _, p := range seg.Placements {
			j := m.active.ByID(p.JobID)
			if j == nil {
				continue // already retired
			}
			pt := j.Table.Points[p.Point]
			m.emitStarted(j.ID, lo)
			frac := (hi - lo) / pt.Time
			if frac > j.Remaining {
				frac = j.Remaining
			}
			m.stats.Energy += pt.Energy * frac
			finishedAt := lo + j.Remaining*pt.Time
			j.Remaining -= frac
			end := hi
			if j.Remaining <= 1e-9 {
				c := Completion{JobID: j.ID, At: math.Min(finishedAt, hi)}
				if c.At > j.Deadline+1e-6 {
					c.Missed = true
					m.stats.DeadlineMisses++
				}
				m.stats.Completed++
				done = append(done, c)
				m.removeJob(j.ID)
				m.forget(j.ID)
				m.emit(Event{Type: EventJobCompleted, At: c.At, JobID: j.ID, Missed: c.Missed})
				end = c.At
			}
			execs = append(execs, executedPlacement{p: p, end: end})
		}
		m.recordExecuted(lo, hi, execs)
		m.execScratch = execs[:0]
	}
	// Clamp: a t inside the epsilon band must not regress the clock.
	m.now = math.Max(m.now, t)
	if len(done) > 0 {
		m.OnCompletion()
	}
	return done, nil
}

// executedPlacement is one placement of an executed slice together with
// the time its job actually stopped running inside the slice.
type executedPlacement struct {
	p   schedule.Placement
	end float64
}

// recordExecuted appends the executed fraction [lo,hi] of one schedule
// segment to the audit timeline, truncating every placement at its
// job's completion time: a job that finished at end < hi must not be
// shown running past it. The slice is cut at each distinct completion
// time, so the recorded timeline stays a sequence of non-overlapping
// segments.
func (m *Manager) recordExecuted(lo, hi float64, execs []executedPlacement) {
	if len(execs) == 0 {
		return
	}
	ends := m.endsScratch[:0]
	for _, e := range execs {
		ends = append(ends, e.end)
	}
	sort.Float64s(ends)
	m.endsScratch = ends[:0]
	prev := lo
	for _, e := range ends {
		if e-prev <= schedule.Eps {
			continue
		}
		var ps []schedule.Placement
		for _, r := range execs {
			if r.end >= e-schedule.Eps {
				ps = append(ps, r.p)
			}
		}
		m.executed = append(m.executed, schedule.Segment{Start: prev, End: e, Placements: ps})
		prev = e
	}
}

func (m *Manager) removeJob(id int) {
	for i, j := range m.active {
		if j.ID == id {
			m.active = append(m.active[:i], m.active[i+1:]...)
			return
		}
	}
}

// Submit is the RM activation for a new request at time t: the manager
// advances to t, builds the candidate job, and attempts to schedule the
// whole job set. On success the request is admitted and the schedule
// replaced; on sched.ErrInfeasible the request is rejected and the
// previous schedule stays in force (admitted jobs are never
// compromised). Any other scheduler failure is an error, not a verdict
// — it is returned (and excluded from the Submitted/Rejected counters)
// rather than masquerading as a rejection. It returns the assigned job
// ID, the admission verdict, and the completions that occurred while
// advancing.
func (m *Manager) Submit(t float64, app string, deadline float64) (id int, accepted bool, done []Completion, err error) {
	tbl := m.lib.Get(app)
	if tbl == nil {
		return 0, false, nil, fmt.Errorf("%w: %q", ErrUnknownApp, app)
	}
	if deadline <= t {
		return 0, false, nil, fmt.Errorf("%w: %v ≤ %v", ErrBadDeadline, deadline, t)
	}
	done, err = m.advanceTo(t)
	if err != nil {
		return 0, false, done, err
	}
	id, accepted, err = m.submitOne(t, tbl, deadline)
	return id, accepted, done, err
}

// submitOne runs the post-advance half of Submit: build the candidate
// job, trial-solve the extended job set, and commit or reject. The
// clock must already stand at t. It is shared by Submit and the
// per-request fallback of SubmitBatch, so both paths stay byte-identical
// by construction.
func (m *Manager) submitOne(t float64, tbl *opset.Table, deadline float64) (id int, accepted bool, err error) {
	cand := &job.Job{
		ID:        m.nextID,
		Table:     tbl,
		Arrival:   t,
		Deadline:  deadline,
		Remaining: 1,
	}
	trial := append(m.active.Clone(), cand)
	k, serr := m.schedule(trial, t)
	if serr != nil && !errors.Is(serr, sched.ErrInfeasible) {
		return 0, false, fmt.Errorf("rm: scheduler failure: %w", serr)
	}
	m.stats.Submitted++
	if serr != nil {
		m.stats.Rejected++
		m.emit(Event{Type: EventJobRejected, At: t, App: tbl.Name(), Deadline: deadline})
		return 0, false, nil
	}
	m.nextID++
	m.active = append(m.active, cand)
	m.current = k
	m.stats.Accepted++
	m.emit(Event{Type: EventJobAdmitted, At: t, JobID: cand.ID, App: tbl.Name(), Deadline: deadline})
	m.emit(Event{Type: EventScheduleChanged, At: t})
	return cand.ID, true, nil
}

// Request is one admission request of a batch: an application name and
// its absolute firm deadline. The arrival time is the batch's.
type Request struct {
	// App names an operating-point table of the library.
	App string
	// Deadline is the absolute firm deadline, strictly after the batch
	// arrival time.
	Deadline float64
}

// Verdict is the per-request outcome of a batched submission.
type Verdict struct {
	// JobID is the admitted job's id (0 when rejected or erroneous).
	JobID int
	// Accepted is the admission verdict.
	Accepted bool
	// Err carries the per-request failure: ErrUnknownApp, ErrBadDeadline
	// or a scheduler failure. A clean rejection has Accepted false and
	// Err nil, exactly like Submit. Erroneous requests stay out of the
	// Submitted/Rejected counters, also like Submit.
	Err error
}

// SubmitBatch is the batched RM activation: all requests arrive at time
// t and are decided in one manager call. The manager advances to t
// once, then attempts a single whole-batch solve over the active jobs
// plus every valid request. When that joint solve is feasible the
// scheduler's monotonicity (dropping jobs from a feasible set keeps it
// feasible) implies every prefix is feasible too, so all requests are
// admitted after one activation instead of one per request — verdicts,
// job ids, the final schedule and the admission statistics are
// byte-identical to sequential Submit calls at the same t, with only
// Activations/SchedulingTime reflecting the saved work. When the joint
// solve is infeasible (at least one request must be rejected) the batch
// falls back to the exact sequential path, deciding each request in
// order with its own trial solve, so the fallback costs one activation
// more than sequential submission while producing the same outcome.
//
// The returned completions are those the initial advance produced —
// under sequential submission the first Submit at t would have carried
// them. A top-level error (the advance failed) leaves no verdicts.
func (m *Manager) SubmitBatch(t float64, reqs []Request) ([]Verdict, []Completion, error) {
	verdicts := make([]Verdict, len(reqs))
	tables := make([]*opset.Table, len(reqs))
	valid := 0
	for i, r := range reqs {
		tbl := m.lib.Get(r.App)
		switch {
		case tbl == nil:
			verdicts[i].Err = fmt.Errorf("%w: %q", ErrUnknownApp, r.App)
		case r.Deadline <= t:
			verdicts[i].Err = fmt.Errorf("%w: %v ≤ %v", ErrBadDeadline, r.Deadline, t)
		default:
			tables[i] = tbl
			valid++
		}
	}
	if valid == 0 {
		// Sequential submission of only invalid requests never advances
		// the clock; neither does the batch.
		return verdicts, nil, nil
	}
	done, err := m.advanceTo(t)
	if err != nil {
		return nil, done, err
	}
	// Fast path: one joint solve admits the whole batch. A single valid
	// request gains nothing from it (the joint solve IS its trial
	// solve), so it goes straight to the sequential path.
	if valid > 1 && m.admitJointly(t, reqs, tables, verdicts) {
		return verdicts, done, nil
	}
	// Fallback: decide each request in arrival order exactly as
	// sequential Submit calls at t would.
	for i := range reqs {
		if tables[i] == nil {
			continue // verdict already carries the validation error
		}
		verdicts[i].JobID, verdicts[i].Accepted, verdicts[i].Err = m.submitOne(t, tables[i], reqs[i].Deadline)
	}
	return verdicts, done, nil
}

// admitJointly attempts the whole-batch solve: the active jobs plus one
// candidate per valid request, ids assigned in arrival order. On
// success it commits everything — schedule, active set, stats — and
// fills the verdicts, reporting true. On any solver failure it leaves
// the manager untouched and reports false, sending the batch to the
// sequential fallback (which also surfaces per-request hard errors the
// way Submit would).
func (m *Manager) admitJointly(t float64, reqs []Request, tables []*opset.Table, verdicts []Verdict) bool {
	trial := m.active.Clone()
	id := m.nextID
	for i, tbl := range tables {
		if tbl == nil {
			continue
		}
		trial = append(trial, &job.Job{
			ID:        id,
			Table:     tbl,
			Arrival:   t,
			Deadline:  reqs[i].Deadline,
			Remaining: 1,
		})
		id++
	}
	k, serr := m.schedule(trial, t)
	if serr != nil {
		return false
	}
	cands := trial[len(m.active):]
	m.active = append(m.active, cands...)
	m.nextID = id
	m.current = k
	m.stats.Submitted += len(cands)
	m.stats.Accepted += len(cands)
	vi := 0
	for i := range verdicts {
		if tables[i] == nil {
			continue
		}
		verdicts[i].JobID = cands[vi].ID
		verdicts[i].Accepted = true
		m.emit(Event{Type: EventJobAdmitted, At: t, JobID: cands[vi].ID, App: tables[i].Name(), Deadline: reqs[i].Deadline})
		vi++
	}
	m.emit(Event{Type: EventScheduleChanged, At: t})
	return true
}

// OnCompletion lets the manager react to a finish event: with
// RescheduleOnFinish it re-plans the remaining jobs on the freed
// resources, keeping the old schedule when the scheduler fails.
//
// AdvanceTo invokes it automatically whenever an advance retires a job,
// so every path that observes completions — Submit, SubmitBatch, Drain,
// the fleet service — honours the option; callers only need it to force
// a re-plan outside a completion event.
func (m *Manager) OnCompletion() {
	if !m.opt.RescheduleOnFinish || len(m.active) == 0 {
		return
	}
	if k, err := m.schedule(m.active.Clone(), m.now); err == nil {
		m.current = k
		m.emit(Event{Type: EventScheduleChanged, At: m.now})
	}
}

// schedule invokes the pluggable scheduler with stats accounting. In a
// degraded mode (ModeHeuristicOnly and up) the fallback heuristic, when
// configured, takes the activation instead of the configured scheduler.
// Schedulers declaring sched.SelfValidating skip the re-validation —
// their results are already checked against (jobs, plat, t).
func (m *Manager) schedule(jobs job.Set, t float64) (*schedule.Schedule, error) {
	s := m.scheduler
	if m.mode != control.ModeNormal && m.opt.Fallback != nil {
		s = m.opt.Fallback
	}
	m.stats.Activations++
	start := time.Now()
	k, err := s.Schedule(jobs, m.plat, t)
	m.stats.SchedulingTime += time.Since(start)
	if err != nil {
		return nil, err
	}
	if sv, ok := s.(sched.SelfValidating); !ok || !sv.ValidatesOutput() {
		if verr := k.Validate(m.plat, jobs, t); verr != nil {
			return nil, fmt.Errorf("rm: scheduler %s produced invalid schedule: %w", s.Name(), verr)
		}
	}
	return k, nil
}

// Cancel removes an active job at the manager's current time (e.g. the
// user aborted the application). The freed resources are reused by
// re-planning the remaining jobs; the previous schedule minus the job's
// future placements stays in force if re-planning fails (it cannot make
// the remaining jobs infeasible, since they keep their placements).
//
// A job that already completed (or was never admitted, or was already
// cancelled) is not active: the call returns ErrNoSuchJob and mutates
// nothing — no counter, no schedule, no event.
func (m *Manager) Cancel(jobID int) error {
	if m.active.ByID(jobID) == nil {
		return fmt.Errorf("%w: %d", ErrNoSuchJob, jobID)
	}
	m.removeJob(jobID)
	m.forget(jobID)
	m.stats.Cancelled++
	m.emit(Event{Type: EventJobCancelled, At: m.now, JobID: jobID})
	defer m.emit(Event{Type: EventScheduleChanged, At: m.now})
	if len(m.active) == 0 {
		m.current = &schedule.Schedule{}
		return nil
	}
	if k, err := m.schedule(m.active.Clone(), m.now); err == nil {
		m.current = k
		return nil
	}
	// Keep the old plan with the cancelled job's placements stripped;
	// remaining jobs retain exactly their previous placements.
	kept := &schedule.Schedule{}
	for _, seg := range m.current.Segments {
		var ps []schedule.Placement
		for _, p := range seg.Placements {
			if p.JobID != jobID {
				ps = append(ps, p)
			}
		}
		if len(ps) > 0 {
			kept.Segments = append(kept.Segments, schedule.Segment{
				Start: seg.Start, End: seg.End, Placements: ps,
			})
		}
	}
	m.current = kept
	return nil
}

// Drain advances time until every admitted job has completed and returns
// all completions.
func (m *Manager) Drain() ([]Completion, error) {
	var all []Completion
	for len(m.active) > 0 {
		horizon := m.current.Horizon(m.now)
		if horizon <= m.now+schedule.Eps {
			return all, fmt.Errorf("rm: %d active jobs but empty schedule", len(m.active))
		}
		next, ok := m.NextCompletion()
		if !ok {
			next = horizon
		}
		done, err := m.AdvanceTo(next)
		if err != nil {
			return all, err
		}
		all = append(all, done...)
	}
	return all, nil
}
