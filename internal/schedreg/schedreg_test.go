package schedreg

import (
	"strings"
	"testing"
)

func TestNewKnowsEveryAdvertisedName(t *testing.T) {
	for _, name := range strings.Split(Names(), "|") {
		s, err := New(name)
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if s == nil || s.Name() == "" {
			t.Errorf("New(%q) returned %v", name, s)
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestList(t *testing.T) {
	ss, err := List("exmem, lr ,mdf")
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != 3 {
		t.Fatalf("got %d schedulers", len(ss))
	}
	want := []string{"EX-MEM", "MMKP-LR", "MMKP-MDF"}
	for i, s := range ss {
		if s.Name() != want[i] {
			t.Errorf("order broken: %d = %s, want %s", i, s.Name(), want[i])
		}
	}
	for _, bad := range []string{"", " , ", "mdf,mdf", "mdf,bogus"} {
		if _, err := List(bad); err == nil {
			t.Errorf("List(%q) accepted", bad)
		}
	}
}
