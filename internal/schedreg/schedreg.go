// Package schedreg is the shared scheduler registry of the cmd tools:
// one mapping from -sched flag values to constructors, so every binary
// accepts the same names and new schedulers cannot silently miss one.
package schedreg

import (
	"fmt"
	"strings"

	"adaptrm/internal/core"
	"adaptrm/internal/exmem"
	"adaptrm/internal/fixedmap"
	"adaptrm/internal/greedy"
	"adaptrm/internal/lagrange"
	"adaptrm/internal/sched"
)

// constructors maps flag names to fresh-instance constructors. A
// constructor per call matters: the fleet needs one scheduler instance
// per device, and some implementations are stateful.
var constructors = map[string]func() sched.Scheduler{
	"mdf":         func() sched.Scheduler { return core.New() },
	"lr":          func() sched.Scheduler { return lagrange.New() },
	"exmem":       func() sched.Scheduler { return exmem.New() },
	"greedy":      func() sched.Scheduler { return greedy.New() },
	"fixed":       func() sched.Scheduler { return fixedmap.New(fixedmap.OnArrival) },
	"fixed-remap": func() sched.Scheduler { return fixedmap.New(fixedmap.Remap) },
}

// Names lists the accepted scheduler names for flag usage strings.
func Names() string {
	return "mdf|lr|exmem|greedy|fixed|fixed-remap"
}

// New returns a fresh scheduler instance for the given flag name.
func New(name string) (sched.Scheduler, error) {
	c, ok := constructors[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return nil, fmt.Errorf("unknown scheduler %q (want %s)", name, Names())
	}
	return c(), nil
}

// List parses a comma-separated flag value ("exmem,lr,mdf") into fresh
// scheduler instances, one per name, preserving order and rejecting
// duplicates — the multi-scheduler counterpart of New for binaries that
// compare algorithms.
func List(names string) ([]sched.Scheduler, error) {
	parts := strings.Split(names, ",")
	out := make([]sched.Scheduler, 0, len(parts))
	seen := make(map[string]bool, len(parts))
	for _, p := range parts {
		key := strings.ToLower(strings.TrimSpace(p))
		if key == "" {
			continue
		}
		if seen[key] {
			return nil, fmt.Errorf("duplicate scheduler %q in %q", key, names)
		}
		seen[key] = true
		s, err := New(key)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no schedulers in %q (want a comma-separated subset of %s)", names, Names())
	}
	return out, nil
}
