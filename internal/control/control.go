// Package control closes the feedback loop over the serving stack's
// admission knobs: a deterministic, externally-ticked controller
// observes per-shard queue depth and admission latency and owns three
// actuators — the coalescing window, the solver degradation tier, and
// refinement-pool throttling. The shape follows the coordinated
// runtime controllers of Nejat et al. (arXiv 1911.05101) and the
// graceful allocation-quality degradation of E-Mapper (arXiv
// 2406.18980): under pressure the system first amortises work
// (stretching the batch window), then trades solution quality for
// latency (heuristic-only admission, refinement off), and finally
// sheds load outright rather than collapsing.
//
// The controller is virtual-clock friendly: it takes no time source of
// its own. Tick(now) is driven externally — a wall-clock ticker in the
// daemon, explicit calls in tests — and every decision is a pure
// function of the observed Source and the tick sequence, so a seeded
// trace plus a fixed tick schedule reproduces the same mode
// transitions byte-for-byte. Limits() and Tick() are allocation-free
// (gated by BenchmarkControlTick in CI); layers read a Limits snapshot
// per activation instead of consulting static options.
package control

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Mode is the degradation tier of the serving stack. Higher is more
// degraded; the controller moves one tier at a time in both
// directions.
type Mode int32

const (
	// ModeNormal: full service — configured scheduler, refinement
	// offers, base coalescing window.
	ModeNormal Mode = iota
	// ModeHeuristicOnly: refinement offers are skipped and admission
	// falls back to the pure heuristic (MDF) scheduler where a fallback
	// is configured — exact-quality work is deferred until the queues
	// drain.
	ModeHeuristicOnly
	// ModeShedding: admission requests are rejected early with
	// api.ErrOverloaded before any scheduler activation is spent;
	// advances and cancels still run so admitted work keeps draining.
	ModeShedding
)

// String returns the wire name of the mode — the payload of
// EventModeChanged events and the value of the /v1/stats mode field.
func (m Mode) String() string {
	switch m {
	case ModeNormal:
		return "normal"
	case ModeHeuristicOnly:
		return "heuristic_only"
	case ModeShedding:
		return "shedding"
	default:
		return fmt.Sprintf("mode(%d)", int32(m))
	}
}

// ParseMode inverts Mode.String. Replay uses it to restore logged mode
// transitions verbatim.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "normal":
		return ModeNormal, nil
	case "heuristic_only":
		return ModeHeuristicOnly, nil
	case "shedding":
		return ModeShedding, nil
	default:
		return ModeNormal, fmt.Errorf("control: unknown mode %q", s)
	}
}

// Limits is the per-activation snapshot of every actuator the
// controller owns. Layers read one snapshot per operation pickup — a
// value, not a pointer, so a reader's view is internally consistent
// even while Tick retunes the controller concurrently.
type Limits struct {
	// Mode is the degradation tier.
	Mode Mode
	// BatchWindow is the coalescing window in seconds of virtual time
	// (0 disables coalescing), tuned between the configured base and
	// max under queue pressure.
	BatchWindow float64
	// Refine reports whether refinement offers may be enqueued.
	Refine bool
}

// Provider hands out Limits snapshots. The fleet reads its provider on
// every operation pickup; Static is the controller-less implementation
// whose snapshot never changes, pinning byte-identical behaviour to a
// build without the control layer.
type Provider interface {
	Limits() Limits
}

type staticProvider struct{ l Limits }

func (p staticProvider) Limits() Limits { return p.l }

// Static returns a fixed Provider: the re-homed form of the historical
// static knobs (Options.BatchWindow, Options.Refine).
func Static(l Limits) Provider { return staticProvider{l} }

// Source is the controller's view of the observed system.
type Source interface {
	// QueuePressure returns the current maximum pending-operation count
	// over all shard mailboxes and the per-shard mailbox capacity.
	QueuePressure() (maxDepth, capacity int)
}

// Config tunes the controller. The zero value is usable: sensible
// hysteresis defaults, window tuning disabled (MaxWindow 0), latency
// signal disabled (HighLatency 0).
type Config struct {
	// BaseWindow is the coalescing window at rest, in seconds of
	// virtual time (the re-homed Options.BatchWindow).
	BaseWindow float64
	// MaxWindow is the ceiling the controller may stretch the window to
	// under queue pressure. Zero (or a value at or below BaseWindow)
	// disables window tuning: the window stays pinned at BaseWindow.
	MaxWindow float64
	// HighDepthFrac is the queue-pressure threshold: a max shard depth
	// at or above HighDepthFrac × mailbox capacity is an overload
	// signal. Zero means 0.75.
	HighDepthFrac float64
	// LowDepthFrac is the drain threshold: a max shard depth at or
	// below LowDepthFrac × mailbox capacity is an underload signal.
	// Zero means 0.25 (clamped below HighDepthFrac).
	LowDepthFrac float64
	// HighLatency, when positive, adds a second overload signal: a mean
	// observed admission latency at or above it over one tick interval
	// counts as pressure even with shallow queues. Zero disables the
	// latency signal (deterministic tests use depth only).
	HighLatency time.Duration
	// EnterTicks is the number of consecutive pressured ticks before
	// the controller escalates one tier. Zero means 2.
	EnterTicks int
	// ExitTicks is the number of consecutive drained ticks before the
	// controller de-escalates one tier. Zero means 4 — recovery is
	// deliberately slower than degradation so the system does not
	// oscillate at the boundary.
	ExitTicks int
}

func (c *Config) normalize() {
	if c.HighDepthFrac <= 0 {
		c.HighDepthFrac = 0.75
	}
	if c.LowDepthFrac <= 0 {
		c.LowDepthFrac = 0.25
	}
	if c.LowDepthFrac >= c.HighDepthFrac {
		c.LowDepthFrac = c.HighDepthFrac / 2
	}
	if c.EnterTicks <= 0 {
		c.EnterTicks = 2
	}
	if c.ExitTicks <= 0 {
		c.ExitTicks = 4
	}
	if c.MaxWindow < c.BaseWindow {
		c.MaxWindow = c.BaseWindow
	}
	if c.BaseWindow < 0 {
		c.BaseWindow, c.MaxWindow = 0, 0
	}
}

// Status is an observability snapshot of the controller for /v1/stats,
// /metrics and shutdown reports.
type Status struct {
	// Mode is the current degradation tier, BatchWindow the current
	// coalescing window.
	Mode        Mode
	BatchWindow float64
	// Ticks counts Tick invocations, ModeChanges the tier transitions
	// (both directions), Stretches/Shrinks the window decisions, and
	// Sheds the admission requests rejected early in ModeShedding.
	Ticks, ModeChanges, Stretches, Shrinks, Sheds int64
	// LastTick is the virtual time of the most recent Tick.
	LastTick float64
}

// Controller is the closed-loop tuner. All cross-goroutine state is
// atomic: Limits, ObserveLatency and NoteShed are safe from any
// goroutine and allocation-free; Tick must be driven from a single
// goroutine (a ticker in the daemon, the test body in tests).
type Controller struct {
	cfg Config

	// src and onMode are bound once by Attach before any Tick.
	src    Source
	onMode func(from, to Mode)

	mode     atomic.Int32
	window   atomic.Uint64 // math.Float64bits of the current window
	lastTick atomic.Uint64 // math.Float64bits of the last Tick's now

	// Admission-latency accumulation for the current tick interval.
	latSum atomic.Int64 // nanoseconds
	latCnt atomic.Int64

	sheds       atomic.Int64
	ticks       atomic.Int64
	modeChanges atomic.Int64
	stretches   atomic.Int64
	shrinks     atomic.Int64

	// Hysteresis streaks, touched only by the Tick goroutine.
	over, under int
}

// New builds a controller. Attach binds it to the observed system
// before ticking starts (the fleet does this when the controller is
// handed to it via Options.Control).
func New(cfg Config) *Controller {
	cfg.normalize()
	c := &Controller{cfg: cfg}
	c.window.Store(math.Float64bits(cfg.BaseWindow))
	return c
}

// Attach binds the controller to its observed source and the mode-
// transition hook (invoked synchronously from Tick, in transition
// order). Must happen before the first Tick; Ticks before Attach are
// no-ops.
func (c *Controller) Attach(src Source, onMode func(from, to Mode)) {
	c.src = src
	c.onMode = onMode
}

// Limits returns the current actuator snapshot. Allocation-free — it
// is read on every operation pickup.
func (c *Controller) Limits() Limits {
	m := Mode(c.mode.Load())
	return Limits{
		Mode:        m,
		BatchWindow: math.Float64frombits(c.window.Load()),
		Refine:      m == ModeNormal,
	}
}

// Mode returns the current degradation tier.
func (c *Controller) Mode() Mode { return Mode(c.mode.Load()) }

// ObserveLatency records one admission's service latency into the
// current tick interval. Allocation-free; safe from any goroutine.
func (c *Controller) ObserveLatency(d time.Duration) {
	c.latSum.Add(int64(d))
	c.latCnt.Add(1)
}

// NoteShed counts one admission request rejected early under
// ModeShedding.
func (c *Controller) NoteShed() { c.sheds.Add(1) }

// Status snapshots the controller's observability counters.
func (c *Controller) Status() Status {
	return Status{
		Mode:        Mode(c.mode.Load()),
		BatchWindow: math.Float64frombits(c.window.Load()),
		Ticks:       c.ticks.Load(),
		ModeChanges: c.modeChanges.Load(),
		Stretches:   c.stretches.Load(),
		Shrinks:     c.shrinks.Load(),
		Sheds:       c.sheds.Load(),
		LastTick:    math.Float64frombits(c.lastTick.Load()),
	}
}

// Tick runs one control decision at virtual time now: read the queue
// and latency signals, update the hysteresis streaks, and actuate —
// stretch the window and escalate one tier under sustained pressure,
// shrink and de-escalate under sustained drain. Deterministic for a
// given source-observation sequence; allocation-free (gated in CI).
func (c *Controller) Tick(now float64) {
	if c.src == nil {
		return
	}
	c.ticks.Add(1)
	c.lastTick.Store(math.Float64bits(now))
	depth, capacity := c.src.QueuePressure()
	high, low := false, true
	if capacity > 0 {
		d := float64(depth)
		high = d >= c.cfg.HighDepthFrac*float64(capacity)
		low = d <= c.cfg.LowDepthFrac*float64(capacity)
	}
	// The latency signal only escalates, never vetoes a drain signal on
	// its own tick — but a latency-pressured tick is not a drained one.
	if cnt := c.latCnt.Swap(0); true {
		sum := c.latSum.Swap(0)
		if c.cfg.HighLatency > 0 && cnt > 0 && time.Duration(sum/cnt) >= c.cfg.HighLatency {
			high, low = true, false
		}
	}
	switch {
	case high:
		c.under = 0
		c.stretchWindow()
		c.over++
		if c.over >= c.cfg.EnterTicks {
			c.over = 0
			c.escalate()
		}
	case low:
		c.over = 0
		c.shrinkWindow()
		c.under++
		if c.under >= c.cfg.ExitTicks {
			c.under = 0
			c.deescalate()
		}
	default:
		// Mid-band: hold the current tier and window, reset streaks so
		// a transition always reflects consecutive evidence.
		c.over, c.under = 0, 0
	}
}

// stretchWindow doubles the coalescing window toward MaxWindow (from
// an eighth of it when the base is zero), amortising activations
// before quality is degraded.
func (c *Controller) stretchWindow() {
	if c.cfg.MaxWindow <= 0 {
		return
	}
	w := math.Float64frombits(c.window.Load())
	nw := w * 2
	if nw == 0 {
		nw = c.cfg.MaxWindow / 8
	}
	if nw > c.cfg.MaxWindow {
		nw = c.cfg.MaxWindow
	}
	if nw != w {
		c.window.Store(math.Float64bits(nw))
		c.stretches.Add(1)
	}
}

// shrinkWindow halves the window back toward the base once pressure is
// gone.
func (c *Controller) shrinkWindow() {
	w := math.Float64frombits(c.window.Load())
	nw := w / 2
	if nw <= c.cfg.BaseWindow {
		nw = c.cfg.BaseWindow
	}
	if nw != w {
		c.window.Store(math.Float64bits(nw))
		c.shrinks.Add(1)
	}
}

func (c *Controller) escalate() {
	if m := Mode(c.mode.Load()); m < ModeShedding {
		c.setMode(m, m+1)
	}
}

func (c *Controller) deescalate() {
	if m := Mode(c.mode.Load()); m > ModeNormal {
		c.setMode(m, m-1)
	}
}

func (c *Controller) setMode(from, to Mode) {
	c.mode.Store(int32(to))
	c.modeChanges.Add(1)
	if c.onMode != nil {
		c.onMode(from, to)
	}
}
