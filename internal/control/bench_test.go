package control

import (
	"testing"
	"time"
)

// BenchmarkControlTick measures one steady-state control decision:
// a latency observation, a Limits read, and a Tick over a mid-band
// source (no mode transition, so the onMode hook does not fire). Gated
// at 0 allocs/op in CI — the controller sits on the admission hot path
// and must not pressure the collector.
func BenchmarkControlTick(b *testing.B) {
	src := &fakeSource{depth: 4, capacity: 8}
	c := New(Config{BaseWindow: 0.1, MaxWindow: 0.8, HighLatency: 50 * time.Millisecond})
	c.Attach(src, func(from, to Mode) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ObserveLatency(time.Millisecond)
		_ = c.Limits()
		c.Tick(float64(i))
	}
}
