package control

import (
	"testing"
	"time"
)

// fakeSource is a scripted Source: each Tick observes the current
// depth/capacity pair the test has staged.
type fakeSource struct {
	depth, capacity int
}

func (s *fakeSource) QueuePressure() (int, int) { return s.depth, s.capacity }

func TestModeStringParseRoundTrip(t *testing.T) {
	for _, m := range []Mode{ModeNormal, ModeHeuristicOnly, ModeShedding} {
		got, err := ParseMode(m.String())
		if err != nil {
			t.Fatalf("ParseMode(%q): %v", m.String(), err)
		}
		if got != m {
			t.Fatalf("ParseMode(%q) = %v, want %v", m.String(), got, m)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("ParseMode(bogus) accepted")
	}
	if s := Mode(42).String(); s != "mode(42)" {
		t.Fatalf("Mode(42).String() = %q", s)
	}
}

func TestConfigNormalizeDefaults(t *testing.T) {
	var c Config
	c.normalize()
	if c.HighDepthFrac != 0.75 || c.LowDepthFrac != 0.25 {
		t.Fatalf("depth fracs = %v/%v, want 0.75/0.25", c.HighDepthFrac, c.LowDepthFrac)
	}
	if c.EnterTicks != 2 || c.ExitTicks != 4 {
		t.Fatalf("hysteresis = %d/%d, want 2/4", c.EnterTicks, c.ExitTicks)
	}

	// An inverted low threshold is clamped under the high one.
	c = Config{HighDepthFrac: 0.5, LowDepthFrac: 0.9}
	c.normalize()
	if c.LowDepthFrac >= c.HighDepthFrac {
		t.Fatalf("low frac %v not clamped below high %v", c.LowDepthFrac, c.HighDepthFrac)
	}

	// MaxWindow below the base is lifted to it (window tuning disabled).
	c = Config{BaseWindow: 0.2, MaxWindow: 0.1}
	c.normalize()
	if c.MaxWindow != 0.2 {
		t.Fatalf("MaxWindow = %v, want 0.2", c.MaxWindow)
	}

	// A negative base disables coalescing entirely.
	c = Config{BaseWindow: -1, MaxWindow: 3}
	c.normalize()
	if c.BaseWindow != 0 || c.MaxWindow != 0 {
		t.Fatalf("negative base -> %v/%v, want 0/0", c.BaseWindow, c.MaxWindow)
	}
}

func TestStaticProviderIsFixed(t *testing.T) {
	l := Limits{Mode: ModeNormal, BatchWindow: 0.25, Refine: true}
	p := Static(l)
	for i := 0; i < 3; i++ {
		if got := p.Limits(); got != l {
			t.Fatalf("Static.Limits() = %+v, want %+v", got, l)
		}
	}
}

func TestTickWithoutSourceIsNoOp(t *testing.T) {
	c := New(Config{BaseWindow: 0.1, MaxWindow: 0.8})
	c.Tick(1)
	c.Tick(2)
	st := c.Status()
	if st.Ticks != 0 || st.Mode != ModeNormal || st.LastTick != 0 {
		t.Fatalf("unattached controller ticked: %+v", st)
	}
}

// tickN drives n ticks with consecutive virtual times starting at from.
func tickN(c *Controller, from float64, n int) float64 {
	for i := 0; i < n; i++ {
		c.Tick(from)
		from++
	}
	return from
}

func TestTickEscalatesAndRecovers(t *testing.T) {
	src := &fakeSource{depth: 0, capacity: 8}
	c := New(Config{BaseWindow: 0.1, MaxWindow: 0.8, EnterTicks: 2, ExitTicks: 3})
	var trans [][2]Mode
	c.Attach(src, func(from, to Mode) { trans = append(trans, [2]Mode{from, to}) })

	// Sustained pressure: 6 at 0.75*8 is the high threshold.
	src.depth = 6
	now := tickN(c, 1, 4)
	if got := c.Mode(); got != ModeShedding {
		t.Fatalf("after 4 pressured ticks mode = %v, want shedding", got)
	}
	if l := c.Limits(); l.Mode != ModeShedding || l.Refine {
		t.Fatalf("Limits under shedding = %+v", l)
	}

	// Sustained drain: 2 at 0.25*8 is the low threshold.
	src.depth = 2
	now = tickN(c, now, 6)
	if got := c.Mode(); got != ModeNormal {
		t.Fatalf("after 6 drained ticks mode = %v, want normal", got)
	}
	if l := c.Limits(); !l.Refine {
		t.Fatal("refinement still off after recovery")
	}

	want := [][2]Mode{
		{ModeNormal, ModeHeuristicOnly},
		{ModeHeuristicOnly, ModeShedding},
		{ModeShedding, ModeHeuristicOnly},
		{ModeHeuristicOnly, ModeNormal},
	}
	if len(trans) != len(want) {
		t.Fatalf("transitions = %v, want %v", trans, want)
	}
	for i := range want {
		if trans[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v", i, trans[i], want[i])
		}
	}

	st := c.Status()
	if st.ModeChanges != 4 || st.Ticks != 10 {
		t.Fatalf("status = %+v, want 4 mode changes over 10 ticks", st)
	}
	if st.LastTick != now-1 {
		t.Fatalf("LastTick = %v, want %v", st.LastTick, now-1)
	}
}

func TestMidBandResetsStreaks(t *testing.T) {
	src := &fakeSource{depth: 6, capacity: 8}
	c := New(Config{EnterTicks: 2})
	c.Attach(src, nil)

	// One pressured tick, then a mid-band tick (between 2 and 6), then
	// one more pressured tick: the streak restarted, so no escalation.
	c.Tick(1)
	src.depth = 4
	c.Tick(2)
	src.depth = 6
	c.Tick(3)
	if got := c.Mode(); got != ModeNormal {
		t.Fatalf("interrupted streak escalated to %v", got)
	}
	// Two consecutive pressured ticks do escalate.
	c.Tick(4)
	if got := c.Mode(); got != ModeHeuristicOnly {
		t.Fatalf("mode = %v, want heuristic_only", got)
	}
}

func TestWindowStretchAndShrink(t *testing.T) {
	src := &fakeSource{depth: 8, capacity: 8}
	c := New(Config{BaseWindow: 0.1, MaxWindow: 1.6, EnterTicks: 100, ExitTicks: 100})
	c.Attach(src, nil)

	// Each pressured tick doubles the window toward the ceiling:
	// 0.1 -> 0.2 -> 0.4 -> 0.8 -> 1.6 -> 1.6 (capped).
	want := []float64{0.2, 0.4, 0.8, 1.6, 1.6}
	for i, w := range want {
		c.Tick(float64(i + 1))
		if got := c.Limits().BatchWindow; got != w {
			t.Fatalf("tick %d window = %v, want %v", i+1, got, w)
		}
	}

	// Drained ticks halve it back, never below the base.
	src.depth = 0
	want = []float64{0.8, 0.4, 0.2, 0.1, 0.1}
	for i, w := range want {
		c.Tick(float64(i + 10))
		if got := c.Limits().BatchWindow; got != w {
			t.Fatalf("drain tick %d window = %v, want %v", i+1, got, w)
		}
	}

	st := c.Status()
	if st.Stretches != 4 || st.Shrinks != 4 {
		t.Fatalf("stretches/shrinks = %d/%d, want 4/4", st.Stretches, st.Shrinks)
	}
}

func TestWindowStretchFromZeroBase(t *testing.T) {
	src := &fakeSource{depth: 8, capacity: 8}
	c := New(Config{BaseWindow: 0, MaxWindow: 0.8, EnterTicks: 100})
	c.Attach(src, nil)
	c.Tick(1)
	if got := c.Limits().BatchWindow; got != 0.1 {
		t.Fatalf("first stretch from zero = %v, want MaxWindow/8 = 0.1", got)
	}
}

func TestWindowTuningDisabledWithoutMaxWindow(t *testing.T) {
	src := &fakeSource{depth: 8, capacity: 8}
	c := New(Config{BaseWindow: 0.1, EnterTicks: 100})
	c.Attach(src, nil)
	tickN(c, 1, 5)
	if got := c.Limits().BatchWindow; got != 0.1 {
		t.Fatalf("window moved to %v with tuning disabled", got)
	}
	if st := c.Status(); st.Stretches != 0 {
		t.Fatalf("stretches = %d with tuning disabled", st.Stretches)
	}
}

func TestLatencySignalEscalates(t *testing.T) {
	// Queues stay empty; only the latency signal carries pressure.
	src := &fakeSource{depth: 0, capacity: 8}
	c := New(Config{HighLatency: 10 * time.Millisecond, EnterTicks: 2})
	c.Attach(src, nil)

	c.ObserveLatency(20 * time.Millisecond)
	c.Tick(1)
	c.ObserveLatency(30 * time.Millisecond)
	c.Tick(2)
	if got := c.Mode(); got != ModeHeuristicOnly {
		t.Fatalf("latency pressure did not escalate: %v", got)
	}

	// The accumulator was swapped out each tick: with no fresh samples
	// the drained queues win and the controller recovers.
	tickN(c, 3, 4)
	if got := c.Mode(); got != ModeNormal {
		t.Fatalf("mode = %v after drain, want normal", got)
	}
}

func TestLatencyBelowThresholdIsNotPressure(t *testing.T) {
	src := &fakeSource{depth: 0, capacity: 8}
	c := New(Config{HighLatency: 10 * time.Millisecond, EnterTicks: 1})
	c.Attach(src, nil)
	c.ObserveLatency(2 * time.Millisecond)
	c.Tick(1)
	if got := c.Mode(); got != ModeNormal {
		t.Fatalf("sub-threshold latency escalated to %v", got)
	}
}

func TestNoteShedCounts(t *testing.T) {
	c := New(Config{})
	c.NoteShed()
	c.NoteShed()
	if st := c.Status(); st.Sheds != 2 {
		t.Fatalf("Sheds = %d, want 2", st.Sheds)
	}
}
