package schedule

import (
	"strings"
	"testing"

	"adaptrm/internal/job"
	"adaptrm/internal/motiv"
	"adaptrm/internal/platform"
)

func TestConcretizeFig1c(t *testing.T) {
	k, jobs := fig1c(t)
	plat := motiv.Platform()
	c, err := Concretize(k, jobs, plat)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumCores != 4 {
		t.Fatalf("NumCores = %d", c.NumCores)
	}
	// Segment 0: σ2 on 2 little + 1 big.
	if len(c.Slots[0]) != 3 {
		t.Fatalf("segment 0 slots = %v", c.Slots[0])
	}
	for _, s := range c.Slots[0] {
		if s.JobID != 2 {
			t.Errorf("segment 0 occupied by job %d", s.JobID)
		}
	}
	// Cores must be unique within a segment.
	seen := map[int]bool{}
	for _, s := range c.Slots[0] {
		if seen[s.Core] {
			t.Errorf("core %d assigned twice", s.Core)
		}
		seen[s.Core] = true
	}
	// Labels follow the L/B convention.
	if got := c.CoreLabel(plat, 0); got != "L1" {
		t.Errorf("CoreLabel(0) = %q", got)
	}
	if got := c.CoreLabel(plat, 3); got != "B2" {
		t.Errorf("CoreLabel(3) = %q", got)
	}
}

func TestConcretizeStickiness(t *testing.T) {
	// A job keeping its allocation across segments must stay on the same
	// cores even when another job departs.
	jobs := job.Set(motiv.ScenarioS1AtT1())
	l1 := jobs.ByID(1).Table
	l2 := jobs.ByID(2).Table
	p1 := l1.ByAlloc(platform.Alloc{1, 1})[0]
	p2 := l2.ByAlloc(platform.Alloc{1, 1})[0]
	k := &Schedule{Segments: []Segment{
		{Start: 1, End: 2, Placements: []Placement{{JobID: 1, Point: p1}, {JobID: 2, Point: p2}}},
		{Start: 2, End: 3, Placements: []Placement{{JobID: 2, Point: p2}}},
	}}
	c, err := Concretize(k, jobs, motiv.Platform())
	if err != nil {
		t.Fatal(err)
	}
	coresOf := func(si, jobID int) map[int]bool {
		out := map[int]bool{}
		for _, s := range c.Slots[si] {
			if s.JobID == jobID {
				out[s.Core] = true
			}
		}
		return out
	}
	before, after := coresOf(0, 2), coresOf(1, 2)
	for core := range after {
		if !before[core] {
			t.Errorf("job 2 migrated to core %d without need", core)
		}
	}
}

func TestConcretizeRejectsOverCapacity(t *testing.T) {
	jobs := job.Set(motiv.ScenarioS1AtT1())
	l1 := jobs.ByID(1).Table
	l2 := jobs.ByID(2).Table
	p1 := l1.ByAlloc(platform.Alloc{2, 1})[0]
	p2 := l2.ByAlloc(platform.Alloc{2, 1})[0]
	k := &Schedule{Segments: []Segment{
		{Start: 1, End: 2, Placements: []Placement{{JobID: 1, Point: p1}, {JobID: 2, Point: p2}}},
	}}
	if _, err := Concretize(k, jobs, motiv.Platform()); err == nil {
		t.Error("over-capacity segment concretized")
	}
	k2 := &Schedule{Segments: []Segment{
		{Start: 1, End: 2, Placements: []Placement{{JobID: 42, Point: 0}}},
	}}
	if _, err := Concretize(k2, jobs, motiv.Platform()); err == nil {
		t.Error("unknown job concretized")
	}
}

func TestRenderGantt(t *testing.T) {
	k, jobs := fig1c(t)
	plat := motiv.Platform()
	out, err := RenderGantt(k, jobs, plat, 60)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // 4 cores + axis
		t.Fatalf("gantt has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "  B2") || !strings.HasPrefix(lines[3], "  L1") {
		t.Errorf("row order wrong:\n%s", out)
	}
	if !strings.Contains(out, "2") || !strings.Contains(out, "1") {
		t.Errorf("gantt missing job symbols:\n%s", out)
	}
	// Empty schedule renders a placeholder.
	if got, err := RenderGantt(&Schedule{}, jobs, plat, 60); err != nil || !strings.Contains(got, "empty") {
		t.Errorf("empty gantt = %q err=%v", got, err)
	}
	// Tiny width is clamped, not an error.
	if _, err := RenderGantt(k, jobs, plat, 1); err != nil {
		t.Errorf("tiny width: %v", err)
	}
}
