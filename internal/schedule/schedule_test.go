package schedule

import (
	"math"
	"strings"
	"testing"

	"adaptrm/internal/job"
	"adaptrm/internal/motiv"
	"adaptrm/internal/platform"
)

// fig1c builds the adaptive schedule of Fig. 1(c) from t=1:
// σ2 on 2L1B during [1,4), then σ1 on 2L1B during [4,8.3).
func fig1c(t *testing.T) (*Schedule, job.Set) {
	t.Helper()
	jobs := job.Set(motiv.ScenarioS1AtT1())
	l1 := jobs.ByID(1).Table
	l2 := jobs.ByID(2).Table
	p1 := l1.ByAlloc(platform.Alloc{2, 1})
	p2 := l2.ByAlloc(platform.Alloc{2, 1})
	if len(p1) != 1 || len(p2) != 1 {
		t.Fatal("missing 2L1B points")
	}
	rem := 5.3 * motiv.Rho1AtT1
	k := &Schedule{Segments: []Segment{
		{Start: 1, End: 4, Placements: []Placement{{JobID: 2, Point: p2[0]}}},
		{Start: 4, End: 4 + rem, Placements: []Placement{{JobID: 1, Point: p1[0]}}},
	}}
	return k, jobs
}

func TestFig1cEnergyAndValidation(t *testing.T) {
	k, jobs := fig1c(t)
	plat := motiv.Platform()
	if err := k.Validate(plat, jobs, 1); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Energy from t=1 plus σ1's [0,1) consumption must equal 14.63 J.
	total := k.Energy(jobs) + motiv.EnergyBeforeT1
	if math.Abs(total-14.63) > 0.01 {
		t.Errorf("Fig 1(c) energy = %.3f, want 14.63", total)
	}
	if got := k.FinishTime(2); math.Abs(got-4) > Eps {
		t.Errorf("σ2 finish = %v, want 4", got)
	}
	if got := k.FinishTime(1); math.Abs(got-(4+5.3*motiv.Rho1AtT1)) > Eps {
		t.Errorf("σ1 finish = %v", got)
	}
	if got := k.FinishTime(99); !math.IsNaN(got) {
		t.Errorf("unknown job finish = %v, want NaN", got)
	}
	if got := k.ExecutedFraction(1, jobs); math.Abs(got-motiv.Rho1AtT1) > 1e-9 {
		t.Errorf("σ1 executed fraction = %v, want %v", got, motiv.Rho1AtT1)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	plat := motiv.Platform()
	base, jobs := fig1c(t)

	// 2b: resource over-subscription.
	k := base.Clone()
	l2 := jobs.ByID(2).Table
	p22 := l2.ByAlloc(platform.Alloc{2, 2})[0]
	k.Segments[1].Placements = append(k.Segments[1].Placements, Placement{JobID: 2, Point: p22})
	if err := k.Validate(plat, jobs, 1); err == nil || !strings.Contains(err.Error(), "2") {
		t.Errorf("over-capacity schedule accepted: %v", err)
	}

	// 2c: duplicate job in one segment.
	k = base.Clone()
	k.Segments[0].Placements = append(k.Segments[0].Placements, k.Segments[0].Placements[0])
	if err := k.Validate(plat, jobs, 1); err == nil {
		t.Error("duplicate placement accepted")
	}

	// 2d: wrong executed fraction (truncate σ1's segment).
	k = base.Clone()
	k.Segments[1].End -= 1
	if err := k.Validate(plat, jobs, 1); err == nil {
		t.Error("under-executed schedule accepted")
	}

	// 2e: deadline violation (σ2 deadline 5; shift segments late).
	k = base.Clone()
	k.Segments[0].End = 5.5
	k.Segments[1].Start = 5.5
	k.Segments[1].End += 1.5
	if err := k.Validate(plat, jobs, 1); err == nil {
		t.Error("late schedule accepted")
	}

	// Structure: gap between segments.
	k = base.Clone()
	k.Segments[1].Start += 0.5
	if err := k.Validate(plat, jobs, 1); err == nil {
		t.Error("gapped schedule accepted")
	}

	// Structure: wrong start.
	k = base.Clone()
	if err := k.Validate(plat, jobs, 0); err == nil {
		t.Error("wrong t0 accepted")
	}

	// Unknown job reference.
	k = base.Clone()
	k.Segments[0].Placements[0].JobID = 42
	if err := k.Validate(plat, jobs, 1); err == nil {
		t.Error("unknown job accepted")
	}

	// Point index out of range.
	k = base.Clone()
	k.Segments[0].Placements[0].Point = 99
	if err := k.Validate(plat, jobs, 1); err == nil {
		t.Error("bad point index accepted")
	}

	// Empty schedule with jobs.
	k = &Schedule{}
	if err := k.Validate(plat, jobs, 1); err == nil {
		t.Error("empty schedule accepted for non-empty job set")
	}
	if err := k.Validate(plat, nil, 1); err != nil {
		t.Errorf("empty schedule for no jobs should validate: %v", err)
	}
}

func TestSplit(t *testing.T) {
	k, jobs := fig1c(t)
	if err := k.Split(0, 2.5); err != nil {
		t.Fatal(err)
	}
	if len(k.Segments) != 3 {
		t.Fatalf("segments = %d, want 3", len(k.Segments))
	}
	if k.Segments[0].End != 2.5 || k.Segments[1].Start != 2.5 {
		t.Errorf("split boundaries wrong: %v %v", k.Segments[0], k.Segments[1])
	}
	if err := k.Validate(motiv.Platform(), jobs, 1); err != nil {
		t.Errorf("split schedule invalid: %v", err)
	}
	// Energy is invariant under splitting.
	orig, _ := fig1c(t)
	if math.Abs(k.Energy(jobs)-orig.Energy(jobs)) > 1e-9 {
		t.Error("split changed energy")
	}
	// Bad split points.
	if err := k.Split(0, 1); err == nil {
		t.Error("split at boundary accepted")
	}
	if err := k.Split(99, 2); err == nil {
		t.Error("split at bad index accepted")
	}
}

func TestNormalizeMergesIdenticalNeighbors(t *testing.T) {
	k, jobs := fig1c(t)
	orig := k.Clone()
	if err := k.Split(0, 2.0); err != nil {
		t.Fatal(err)
	}
	if err := k.Split(2, 5.0); err != nil {
		t.Fatal(err)
	}
	k.Normalize()
	if len(k.Segments) != 2 {
		t.Fatalf("Normalize left %d segments, want 2", len(k.Segments))
	}
	if math.Abs(k.Energy(jobs)-orig.Energy(jobs)) > 1e-9 {
		t.Error("Normalize changed energy")
	}
}

func TestAppend(t *testing.T) {
	k := &Schedule{}
	if err := k.Append(Segment{Start: 0, End: 1, Placements: []Placement{{1, 0}}}); err != nil {
		t.Fatal(err)
	}
	if err := k.Append(Segment{Start: 1, End: 2, Placements: []Placement{{1, 0}}}); err != nil {
		t.Fatal(err)
	}
	if err := k.Append(Segment{Start: 5, End: 6}); err == nil {
		t.Error("gapped append accepted")
	}
	if err := k.Append(Segment{Start: 2, End: 2}); err == nil {
		t.Error("zero-length append accepted")
	}
}

func TestUsageAndHorizon(t *testing.T) {
	k, jobs := fig1c(t)
	u := k.Segments[0].Usage(jobs, 2)
	if !u.Equal(platform.Alloc{2, 1}) {
		t.Errorf("Usage = %v, want 2L1B", u)
	}
	if got := k.Horizon(1); math.Abs(got-(4+5.3*motiv.Rho1AtT1)) > Eps {
		t.Errorf("Horizon = %v", got)
	}
	empty := &Schedule{}
	if got := empty.Horizon(3); got != 3 {
		t.Errorf("empty Horizon = %v, want 3", got)
	}
	if !empty.IsEmpty() {
		t.Error("IsEmpty wrong")
	}
}

func TestString(t *testing.T) {
	k, _ := fig1c(t)
	s := k.String()
	if !strings.Contains(s, "σ2") || !strings.Contains(s, "σ1") {
		t.Errorf("String missing jobs: %q", s)
	}
}
