package schedule

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"adaptrm/internal/job"
	"adaptrm/internal/platform"
)

// CoreSlot records that a job occupies one concrete core during one
// segment of a concretized schedule.
type CoreSlot struct {
	// Core is a global core index: cores of type 0 first, then type 1, …
	Core int
	// JobID is the occupying job.
	JobID int
}

// Concretized is a schedule lowered from per-type core counts to concrete
// core indices, with sticky assignment across segments so that a job that
// keeps (part of) its allocation stays on the same physical cores. This
// is what an actual runtime would program, and what the Gantt chart of
// Fig. 1 visualizes.
type Concretized struct {
	Schedule *Schedule
	// Slots[i] lists the per-core occupancy of segment i.
	Slots [][]CoreSlot
	// NumCores is the platform's total core count.
	NumCores int
	// typeOffset[t] is the first global core index of platform type t.
	typeOffset []int
}

// Concretize assigns concrete cores to every placement of every segment.
// Assignment is deterministic: jobs are processed in ascending ID, cores
// in ascending index, and a job retains cores it held in the previous
// segment whenever its allocation still includes that core's type.
func Concretize(k *Schedule, jobs job.Set, plat platform.Platform) (*Concretized, error) {
	m := plat.NumTypes()
	offsets := make([]int, m+1)
	for i, t := range plat.Types {
		offsets[i+1] = offsets[i] + t.Count
	}
	total := offsets[m]
	c := &Concretized{
		Schedule:   k,
		Slots:      make([][]CoreSlot, len(k.Segments)),
		NumCores:   total,
		typeOffset: offsets,
	}
	// held[jobID][core] = true for cores held in the previous segment.
	held := make(map[int]map[int]bool)
	for si := range k.Segments {
		seg := &k.Segments[si]
		occupied := make([]bool, total)
		newHeld := make(map[int]map[int]bool)
		ps := clonePlacements(seg.Placements)
		sortPlacements(ps)
		// First pass: let every job keep previously held cores.
		type want struct {
			jobID int
			need  platform.Alloc // per type, cores still to find
		}
		wants := make([]want, 0, len(ps))
		for _, p := range ps {
			j := jobs.ByID(p.JobID)
			if j == nil {
				return nil, fmt.Errorf("schedule: concretize: unknown job %d", p.JobID)
			}
			alloc := j.Table.Points[p.Point].Alloc
			need := alloc.Clone()
			mine := make(map[int]bool)
			for core := range held[p.JobID] {
				t := c.coreType(core)
				if need[t] > 0 && !occupied[core] {
					occupied[core] = true
					mine[core] = true
					need[t]--
				}
			}
			newHeld[p.JobID] = mine
			wants = append(wants, want{jobID: p.JobID, need: need})
		}
		// Second pass: satisfy remaining demand from free cores.
		for _, w := range wants {
			for t := 0; t < m; t++ {
				for core := offsets[t]; core < offsets[t+1] && w.need[t] > 0; core++ {
					if occupied[core] {
						continue
					}
					occupied[core] = true
					newHeld[w.jobID][core] = true
					w.need[t]--
				}
				if w.need[t] > 0 {
					return nil, fmt.Errorf("schedule: concretize: segment %d over capacity for type %d", si, t)
				}
			}
		}
		slots := make([]CoreSlot, 0, len(ps))
		for _, p := range ps {
			cores := make([]int, 0, len(newHeld[p.JobID]))
			for core := range newHeld[p.JobID] {
				cores = append(cores, core)
			}
			sort.Ints(cores)
			for _, core := range cores {
				slots = append(slots, CoreSlot{Core: core, JobID: p.JobID})
			}
		}
		sort.Slice(slots, func(a, b int) bool { return slots[a].Core < slots[b].Core })
		c.Slots[si] = slots
		held = newHeld
	}
	return c, nil
}

func (c *Concretized) coreType(core int) int {
	for t := 0; t+1 < len(c.typeOffset); t++ {
		if core < c.typeOffset[t+1] {
			return t
		}
	}
	return len(c.typeOffset) - 2
}

// CoreLabel names a core like "L1", "B2" for two-type platforms, falling
// back to "T0.1" style otherwise.
func (c *Concretized) CoreLabel(plat platform.Platform, core int) string {
	t := c.coreType(core)
	idx := core - c.typeOffset[t] + 1
	if plat.NumTypes() == 2 {
		letter := "L"
		if t == 1 {
			letter = "B"
		}
		return fmt.Sprintf("%s%d", letter, idx)
	}
	return fmt.Sprintf("T%d.%d", t, idx)
}

// jobSymbol picks a stable printable rune for a job ID.
func jobSymbol(id int) byte {
	const symbols = "123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	if id >= 1 && id <= len(symbols) {
		return symbols[id-1]
	}
	return '#'
}

// RenderGantt draws the concretized schedule as an ASCII chart in the
// style of Fig. 1: one row per core (big cores on top), time on the
// horizontal axis, one symbol per job. width is the number of character
// cells used for the time axis.
func RenderGantt(k *Schedule, jobs job.Set, plat platform.Platform, width int) (string, error) {
	if k.IsEmpty() {
		return "(empty schedule)\n", nil
	}
	if width < 10 {
		width = 10
	}
	c, err := Concretize(k, jobs, plat)
	if err != nil {
		return "", err
	}
	t0 := k.Segments[0].Start
	t1 := k.Segments[len(k.Segments)-1].End
	span := t1 - t0
	if span <= 0 {
		return "", fmt.Errorf("schedule: gantt: empty time span")
	}
	cell := func(t float64) int {
		x := int(math.Round((t - t0) / span * float64(width)))
		if x < 0 {
			x = 0
		}
		if x > width {
			x = width
		}
		return x
	}
	rows := make([][]byte, c.NumCores)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	for si := range k.Segments {
		seg := &k.Segments[si]
		x0, x1 := cell(seg.Start), cell(seg.End)
		if x1 <= x0 {
			x1 = x0 + 1
			if x1 > width {
				x0, x1 = width-1, width
			}
		}
		for _, slot := range c.Slots[si] {
			sym := jobSymbol(slot.JobID)
			for x := x0; x < x1; x++ {
				rows[slot.Core][x] = sym
			}
		}
	}
	var b strings.Builder
	// Big cores on top, matching the paper's figure (B2, B1, L2, L1).
	for core := c.NumCores - 1; core >= 0; core-- {
		fmt.Fprintf(&b, "%4s |%s|\n", c.CoreLabel(plat, core), rows[core])
	}
	fmt.Fprintf(&b, "     %s\n", timeAxis(t0, t1, width))
	return b.String(), nil
}

// timeAxis renders a simple ruler with start and end markers.
func timeAxis(t0, t1 float64, width int) string {
	left := fmt.Sprintf("%.1f", t0)
	right := fmt.Sprintf("%.1f", t1)
	pad := width + 2 - len(left) - len(right)
	if pad < 1 {
		pad = 1
	}
	return left + strings.Repeat(" ", pad) + right
}
