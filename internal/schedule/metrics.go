package schedule

import (
	"fmt"
	"io"
	"sort"

	"adaptrm/internal/job"
)

// Metrics summarizes the adaptive structure of a schedule: how often jobs
// switch operating points (the "resource adaptations" mapping segments
// make explicit) and how often they are suspended mid-run, plus basic
// shape figures. These are the quantities that distinguish the paper's
// adaptive schedules from fixed mappings.
type Metrics struct {
	// Segments is the number of mapping segments.
	Segments int
	// Jobs is the number of distinct jobs placed.
	Jobs int
	// Reconfigurations counts, over all jobs, transitions between two
	// consecutive segments in which the job runs on different operating
	// points.
	Reconfigurations int
	// Suspensions counts, over all jobs, maximal gaps: runs of segments
	// in which an already-started, unfinished job is absent.
	Suspensions int
	// Makespan is the end of the last segment minus the start of the
	// first.
	Makespan float64
	// AvgParallelism is the time-weighted average number of busy cores.
	AvgParallelism float64
}

// ComputeMetrics derives Metrics from a schedule. Jobs resolve operating
// points; unknown job references are ignored (consistent with Energy).
func ComputeMetrics(k *Schedule, jobs job.Set) Metrics {
	var m Metrics
	if k.IsEmpty() {
		return m
	}
	m.Segments = len(k.Segments)
	m.Makespan = k.Segments[len(k.Segments)-1].End - k.Segments[0].Start

	// Per-job presence across segments.
	type span struct {
		segs   []int
		points []int
	}
	perJob := map[int]*span{}
	busyCoreSeconds := 0.0
	for si := range k.Segments {
		seg := &k.Segments[si]
		dur := seg.Duration()
		for _, p := range seg.Placements {
			j := jobs.ByID(p.JobID)
			if j == nil {
				continue
			}
			s := perJob[p.JobID]
			if s == nil {
				s = &span{}
				perJob[p.JobID] = s
			}
			s.segs = append(s.segs, si)
			s.points = append(s.points, p.Point)
			busyCoreSeconds += float64(j.Table.Points[p.Point].Alloc.Total()) * dur
		}
	}
	m.Jobs = len(perJob)
	if m.Makespan > 0 {
		m.AvgParallelism = busyCoreSeconds / m.Makespan
	}
	ids := make([]int, 0, len(perJob))
	for id := range perJob {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		s := perJob[id]
		for i := 1; i < len(s.segs); i++ {
			if s.segs[i] > s.segs[i-1]+1 {
				m.Suspensions++
			}
			if s.points[i] != s.points[i-1] {
				m.Reconfigurations++
			}
		}
	}
	return m
}

// Render writes the metrics as a short human-readable block.
func (m Metrics) Render(w io.Writer) {
	fmt.Fprintf(w, "segments: %d  jobs: %d  reconfigurations: %d  suspensions: %d\n",
		m.Segments, m.Jobs, m.Reconfigurations, m.Suspensions)
	fmt.Fprintf(w, "makespan: %.2fs  avg parallelism: %.2f cores\n", m.Makespan, m.AvgParallelism)
}
