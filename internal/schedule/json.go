package schedule

import (
	"encoding/json"
	"fmt"
	"io"
)

// Schedules serialize to JSON so runtime plans and executed timelines can
// be exported for external analysis or replayed by other tools. Point
// indices refer to the job's operating-point table; consumers resolve
// them against the same library the schedule was produced with.

type scheduleJSON struct {
	Segments []segmentJSON `json:"segments"`
}

type segmentJSON struct {
	Start      float64         `json:"start"`
	End        float64         `json:"end"`
	Placements []placementJSON `json:"placements"`
}

type placementJSON struct {
	Job   int `json:"job"`
	Point int `json:"point"`
}

// WriteJSON serializes the schedule (indented) to w.
func (k *Schedule) WriteJSON(w io.Writer) error {
	out := scheduleJSON{Segments: make([]segmentJSON, 0, len(k.Segments))}
	for _, seg := range k.Segments {
		sj := segmentJSON{Start: seg.Start, End: seg.End}
		for _, p := range seg.Placements {
			sj.Placements = append(sj.Placements, placementJSON{Job: p.JobID, Point: p.Point})
		}
		out.Segments = append(out.Segments, sj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses a schedule written by WriteJSON. Structural validation
// against a job set and platform is the caller's job (Validate).
func ReadJSON(r io.Reader) (*Schedule, error) {
	var raw scheduleJSON
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("schedule: decoding: %w", err)
	}
	k := &Schedule{}
	for _, sj := range raw.Segments {
		seg := Segment{Start: sj.Start, End: sj.End}
		for _, pj := range sj.Placements {
			seg.Placements = append(seg.Placements, Placement{JobID: pj.Job, Point: pj.Point})
		}
		k.Segments = append(k.Segments, seg)
	}
	return k, nil
}
