package schedule

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"adaptrm/internal/job"
	"adaptrm/internal/motiv"
	"adaptrm/internal/platform"
)

func TestMetricsFig1c(t *testing.T) {
	k, jobs := fig1c(t)
	m := ComputeMetrics(k, jobs)
	if m.Segments != 2 || m.Jobs != 2 {
		t.Fatalf("metrics = %+v", m)
	}
	// Fig. 1(c): no job changes its point, no mid-run suspension gap is
	// visible in the *schedule* (σ1's pause before its first placement
	// is not a placement gap).
	if m.Reconfigurations != 0 || m.Suspensions != 0 {
		t.Errorf("metrics = %+v", m)
	}
	if math.Abs(m.Makespan-(4+5.3*motiv.Rho1AtT1-1)) > 1e-9 {
		t.Errorf("makespan = %v", m.Makespan)
	}
	// Both segments use 3 cores → average parallelism 3.
	if math.Abs(m.AvgParallelism-3) > 1e-9 {
		t.Errorf("avg parallelism = %v", m.AvgParallelism)
	}
	var buf bytes.Buffer
	m.Render(&buf)
	if !strings.Contains(buf.String(), "reconfigurations: 0") {
		t.Errorf("render = %q", buf.String())
	}
}

func TestMetricsCountsAdaptations(t *testing.T) {
	jobs := job.Set(motiv.ScenarioS1AtT1())
	l1 := jobs.ByID(1).Table
	p21 := l1.ByAlloc(platform.Alloc{2, 1})[0]
	p11 := l1.ByAlloc(platform.Alloc{1, 1})[0]
	// σ1 runs 1L1B, is suspended for one segment, then resumes on 2L1B:
	// one suspension, one reconfiguration.
	l2 := jobs.ByID(2).Table
	q := l2.ByAlloc(platform.Alloc{2, 1})[0]
	k := &Schedule{Segments: []Segment{
		{Start: 1, End: 2, Placements: []Placement{{JobID: 1, Point: p11}}},
		{Start: 2, End: 3, Placements: []Placement{{JobID: 2, Point: q}}},
		{Start: 3, End: 4, Placements: []Placement{{JobID: 1, Point: p21}}},
	}}
	m := ComputeMetrics(k, jobs)
	if m.Suspensions != 1 {
		t.Errorf("suspensions = %d, want 1", m.Suspensions)
	}
	if m.Reconfigurations != 1 {
		t.Errorf("reconfigurations = %d, want 1", m.Reconfigurations)
	}
	if m.Jobs != 2 || m.Segments != 3 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestMetricsEmpty(t *testing.T) {
	m := ComputeMetrics(&Schedule{}, nil)
	if m.Segments != 0 || m.Makespan != 0 || m.AvgParallelism != 0 {
		t.Errorf("empty metrics = %+v", m)
	}
}
