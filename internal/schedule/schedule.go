// Package schedule implements the schedule representation of the paper:
// κ = {μ_i × Δ_i}, a list of mappings over consecutive time segments
// (Eq. 1). Each mapping assigns operating points to a subset of the jobs;
// jobs may change points between segments ("adaptive mapping") or be
// absent from a segment (suspended).
//
// The package provides energy accounting (objective 2a), full validation
// of the constraint system (2b–2e), segment splitting, normalization,
// concretization onto individual cores and ASCII Gantt rendering.
package schedule

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"adaptrm/internal/job"
	"adaptrm/internal/platform"
)

// Eps is the absolute tolerance used for time comparisons throughout the
// scheduling stack.
const Eps = 1e-9

// Placement maps one job to one operating point within a segment.
type Placement struct {
	// JobID identifies the job σ.
	JobID int
	// Point indexes the job's operating-point table.
	Point int
}

// Segment is one mapping μ × Δ: a set of job placements active on the
// half-open interval [Start, End).
type Segment struct {
	Start, End float64
	Placements []Placement
}

// Duration returns |Δ| = End − Start.
func (s *Segment) Duration() float64 { return s.End - s.Start }

// Find returns the index of the placement for jobID, or -1.
func (s *Segment) Find(jobID int) int {
	for i, p := range s.Placements {
		if p.JobID == jobID {
			return i
		}
	}
	return -1
}

// Usage returns the total resource vector Σθ claimed by the segment.
func (s *Segment) Usage(jobs job.Set, m int) platform.Alloc {
	u := platform.NewAlloc(m)
	for _, p := range s.Placements {
		j := jobs.ByID(p.JobID)
		if j == nil {
			continue
		}
		u.AddInPlace(j.Table.Points[p.Point].Alloc)
	}
	return u
}

// clonePlacements copies a placement list.
func clonePlacements(ps []Placement) []Placement {
	out := make([]Placement, len(ps))
	copy(out, ps)
	return out
}

// Schedule is an ordered list of consecutive mapping segments.
type Schedule struct {
	Segments []Segment
}

// Clone deep-copies the schedule.
func (k *Schedule) Clone() *Schedule {
	out := &Schedule{Segments: make([]Segment, len(k.Segments))}
	for i, s := range k.Segments {
		out.Segments[i] = Segment{Start: s.Start, End: s.End, Placements: clonePlacements(s.Placements)}
	}
	return out
}

// IsEmpty reports whether the schedule has no segments.
func (k *Schedule) IsEmpty() bool { return len(k.Segments) == 0 }

// Horizon returns the end of the last segment, or start if empty.
func (k *Schedule) Horizon(start float64) float64 {
	if len(k.Segments) == 0 {
		return start
	}
	return k.Segments[len(k.Segments)-1].End
}

// Energy evaluates objective (2a): the sum over all placements of
// ξ · |Δ| / τ, i.e. the energy of the executed fraction of each point.
func (k *Schedule) Energy(jobs job.Set) float64 {
	total := 0.0
	for i := range k.Segments {
		seg := &k.Segments[i]
		dur := seg.Duration()
		for _, p := range seg.Placements {
			j := jobs.ByID(p.JobID)
			if j == nil {
				continue
			}
			pt := j.Table.Points[p.Point]
			total += pt.Energy * dur / pt.Time
		}
	}
	return total
}

// FinishTime returns the end of the last segment in which the job
// appears, i.e. its completion time (2e's left-hand side). It returns
// NaN when the job never appears.
func (k *Schedule) FinishTime(jobID int) float64 {
	finish := math.NaN()
	for i := range k.Segments {
		if k.Segments[i].Find(jobID) >= 0 {
			finish = k.Segments[i].End
		}
	}
	return finish
}

// ExecutedFraction returns the fraction of a full run the schedule
// executes for the job: Σ |Δ|/τ over its placements (2d's left side).
func (k *Schedule) ExecutedFraction(jobID int, jobs job.Set) float64 {
	j := jobs.ByID(jobID)
	if j == nil {
		return 0
	}
	frac := 0.0
	for i := range k.Segments {
		seg := &k.Segments[i]
		if pi := seg.Find(jobID); pi >= 0 {
			pt := j.Table.Points[seg.Placements[pi].Point]
			frac += seg.Duration() / pt.Time
		}
	}
	return frac
}

// Split cuts segment i at absolute time t, duplicating its placements
// into both halves. It returns an error if t is not strictly inside the
// segment (with Eps slack collapsed to a no-op: callers should not split
// at boundaries).
func (k *Schedule) Split(i int, t float64) error {
	if i < 0 || i >= len(k.Segments) {
		return fmt.Errorf("schedule: split index %d out of range", i)
	}
	seg := k.Segments[i]
	if t <= seg.Start+Eps || t >= seg.End-Eps {
		return fmt.Errorf("schedule: split point %v not inside (%v, %v)", t, seg.Start, seg.End)
	}
	first := Segment{Start: seg.Start, End: t, Placements: clonePlacements(seg.Placements)}
	second := Segment{Start: t, End: seg.End, Placements: clonePlacements(seg.Placements)}
	k.Segments = append(k.Segments, Segment{})
	copy(k.Segments[i+2:], k.Segments[i+1:])
	k.Segments[i] = first
	k.Segments[i+1] = second
	return nil
}

// Append adds a segment at the tail. The segment must start where the
// schedule currently ends (within Eps) when the schedule is non-empty.
func (k *Schedule) Append(seg Segment) error {
	if len(k.Segments) > 0 {
		end := k.Segments[len(k.Segments)-1].End
		if math.Abs(seg.Start-end) > Eps {
			return fmt.Errorf("schedule: appended segment starts at %v, schedule ends at %v", seg.Start, end)
		}
		seg.Start = end
	}
	if seg.End <= seg.Start+Eps {
		return fmt.Errorf("schedule: appended segment has non-positive duration [%v,%v)", seg.Start, seg.End)
	}
	k.Segments = append(k.Segments, seg)
	return nil
}

// Normalize merges adjacent segments whose placement sets are identical.
// Schedulers may produce splits that later become redundant; merging
// keeps Gantt output and segment counts tidy without changing semantics.
func (k *Schedule) Normalize() {
	if len(k.Segments) < 2 {
		return
	}
	out := k.Segments[:1]
	for _, seg := range k.Segments[1:] {
		last := &out[len(out)-1]
		if samePlacements(last.Placements, seg.Placements) {
			last.End = seg.End
			continue
		}
		out = append(out, seg)
	}
	k.Segments = out
}

// samePlacements reports multiset equality of two placement lists. Up to
// 64 placements it runs a quadratic matching with a bitmask — segments
// hold at most one placement per job on a handful of cores, so this is
// the allocation-free path Normalize takes on every scheduler return —
// and falls back to sorted clones beyond that.
func samePlacements(a, b []Placement) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) <= 64 {
		var used uint64
		for _, p := range a {
			found := false
			for i, q := range b {
				if used&(1<<i) == 0 && p == q {
					used |= 1 << i
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	as := clonePlacements(a)
	bs := clonePlacements(b)
	sortPlacements(as)
	sortPlacements(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func sortPlacements(ps []Placement) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].JobID != ps[j].JobID {
			return ps[i].JobID < ps[j].JobID
		}
		return ps[i].Point < ps[j].Point
	})
}

// Validate checks the full constraint system of the paper against the
// job set at scheduling instant t0:
//
//	structure — segments are consecutive, positive-length, start at t0;
//	(2b) — per-segment resource usage fits the platform capacity;
//	(2c) — at most one placement per job per segment;
//	(2d) — every job executes exactly its remaining ratio ρ;
//	(2e) — every job finishes by its deadline.
func (k *Schedule) Validate(plat platform.Platform, jobs job.Set, t0 float64) error {
	if len(k.Segments) == 0 {
		if len(jobs) == 0 {
			return nil
		}
		return fmt.Errorf("schedule: empty schedule for %d jobs", len(jobs))
	}
	cap := plat.Capacity()
	m := plat.NumTypes()
	if math.Abs(k.Segments[0].Start-t0) > Eps {
		return fmt.Errorf("schedule: first segment starts at %v, want %v", k.Segments[0].Start, t0)
	}
	prevEnd := t0
	for i := range k.Segments {
		seg := &k.Segments[i]
		if math.Abs(seg.Start-prevEnd) > Eps {
			return fmt.Errorf("schedule: segment %d starts at %v, previous ends at %v", i, seg.Start, prevEnd)
		}
		if seg.Duration() <= Eps {
			return fmt.Errorf("schedule: segment %d has non-positive duration %v", i, seg.Duration())
		}
		prevEnd = seg.End
		if len(seg.Placements) == 0 {
			return fmt.Errorf("schedule: segment %d is empty", i)
		}
		seen := make(map[int]bool, len(seg.Placements))
		usage := platform.NewAlloc(m)
		for _, p := range seg.Placements {
			j := jobs.ByID(p.JobID)
			if j == nil {
				return fmt.Errorf("schedule: segment %d references unknown job %d", i, p.JobID)
			}
			if seen[p.JobID] {
				return fmt.Errorf("schedule: segment %d maps job %d twice (2c)", i, p.JobID)
			}
			seen[p.JobID] = true
			if p.Point < 0 || p.Point >= j.Table.Len() {
				return fmt.Errorf("schedule: segment %d job %d: point %d out of range", i, p.JobID, p.Point)
			}
			usage.AddInPlace(j.Table.Points[p.Point].Alloc)
		}
		if !usage.Fits(cap) {
			return fmt.Errorf("schedule: segment %d usage %v exceeds capacity %v (2b)", i, usage, cap)
		}
	}
	for _, j := range jobs {
		frac := k.ExecutedFraction(j.ID, jobs)
		if math.Abs(frac-j.Remaining) > 1e-6 {
			return fmt.Errorf("schedule: job %d executes %v of remaining %v (2d)", j.ID, frac, j.Remaining)
		}
		finish := k.FinishTime(j.ID)
		if math.IsNaN(finish) {
			return fmt.Errorf("schedule: job %d never scheduled", j.ID)
		}
		if finish > j.Deadline+1e-6 {
			return fmt.Errorf("schedule: job %d finishes at %v after deadline %v (2e)", j.ID, finish, j.Deadline)
		}
	}
	return nil
}

// String renders a compact textual form, one line per segment.
func (k *Schedule) String() string {
	var b strings.Builder
	for i := range k.Segments {
		seg := &k.Segments[i]
		fmt.Fprintf(&b, "[%6.2f,%6.2f)", seg.Start, seg.End)
		ps := clonePlacements(seg.Placements)
		sortPlacements(ps)
		for _, p := range ps {
			fmt.Fprintf(&b, "  σ%d→#%d", p.JobID, p.Point)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
