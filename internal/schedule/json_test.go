package schedule

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"adaptrm/internal/motiv"
)

func TestScheduleJSONRoundTrip(t *testing.T) {
	k, jobs := fig1c(t)
	var buf bytes.Buffer
	if err := k.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Segments) != len(k.Segments) {
		t.Fatalf("segments %d vs %d", len(got.Segments), len(k.Segments))
	}
	if err := got.Validate(motiv.Platform(), jobs, 1); err != nil {
		t.Fatalf("round-tripped schedule invalid: %v", err)
	}
	if math.Abs(got.Energy(jobs)-k.Energy(jobs)) > 1e-12 {
		t.Error("energy changed through serialization")
	}
}

func TestScheduleReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Error("garbage accepted")
	}
}
