package exmem

import (
	"testing"

	"adaptrm/internal/job"
	"adaptrm/internal/motiv"
)

// The paper's memoization must pay off: in pure-exhaustive mode (the
// paper's configuration), a symmetric 3-twin workload re-reaches states
// and the memo short-circuits them. In branch-and-bound mode the lower
// bounds prune most of those branches before the memo is even consulted,
// so the node count must be far below the pure mode's.
func TestMemoHitsOnTwins(t *testing.T) {
	jobs := job.Set{
		{ID: 1, Table: motiv.Lambda2(), Deadline: 16, Remaining: 1},
		{ID: 2, Table: motiv.Lambda2(), Deadline: 16, Remaining: 1},
		{ID: 3, Table: motiv.Lambda2(), Deadline: 16, Remaining: 1},
	}
	pure := NewWithOptions(Options{PureExhaustive: true})
	if _, err := pure.Schedule(jobs, motiv.Platform(), 0); err != nil {
		t.Fatal(err)
	}
	ps := pure.LastStats()
	if ps.Nodes == 0 || ps.MemoEntries == 0 {
		t.Fatalf("stats not populated: %+v", ps)
	}
	if ps.MemoHits == 0 {
		t.Errorf("no memo hits in pure mode on a symmetric workload: %+v", ps)
	}
	fast := New()
	if _, err := fast.Schedule(jobs, motiv.Platform(), 0); err != nil {
		t.Fatal(err)
	}
	if fs := fast.LastStats(); fs.Nodes*4 > ps.Nodes {
		t.Errorf("branch-and-bound (%d nodes) not markedly below pure (%d)", fs.Nodes, ps.Nodes)
	}
}

// The pure-exhaustive mode must expand at least as many nodes as the
// branch-and-bound mode on the same instance (pruning only removes work).
func TestPruningReducesNodes(t *testing.T) {
	jobs := job.Set{
		{ID: 1, Table: motiv.Lambda1(), Deadline: 25, Remaining: 1},
		{ID: 2, Table: motiv.Lambda2(), Deadline: 18, Remaining: 0.9},
	}
	fast := New()
	if _, err := fast.Schedule(jobs, motiv.Platform(), 0); err != nil {
		t.Fatal(err)
	}
	pure := NewWithOptions(Options{PureExhaustive: true})
	if _, err := pure.Schedule(jobs, motiv.Platform(), 0); err != nil {
		t.Fatal(err)
	}
	if pure.LastStats().Nodes < fast.LastStats().Nodes {
		t.Errorf("pure search (%d nodes) expanded less than pruned (%d)",
			pure.LastStats().Nodes, fast.LastStats().Nodes)
	}
}
