// Package exmem implements the EX-MEM reference scheduler of the paper's
// evaluation: an exhaustive search over all joint per-segment
// configurations with memoization.
//
// EX-MEM explores every joint assignment of operating points (or
// suspension) to the alive jobs; a segment always ends when its shortest
// running job finishes ("cuts the segment on the shortest job"), after
// which the search recurses on the reduced state. The best energy per
// state — the multiset of (application, remaining ratio, slack) plus the
// elapsed scope — is memoized. Within this cut-at-completion class the
// result is the exact optimum, which is what Table IV and Fig. 3
// normalize against.
//
// Two accelerations are layered on top, both exactness-preserving and
// both optional:
//
//   - admissible lower bounds (each job's cheapest deadline-feasible
//     remaining energy, ignoring resource contention) enable
//     branch-and-bound pruning; memo entries distinguish exact optima
//     from lower-bound certificates so pruned results are never reused
//     as if they were exact;
//   - an incumbent seeded from MMKP-MDF (whose schedules lie inside
//     EX-MEM's search class) provides the initial upper bound.
//
// Options.PureExhaustive disables both, reproducing the paper's plain
// memoized search; tests cross-check that both modes return identical
// optima.
package exmem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"

	"adaptrm/internal/core"
	"adaptrm/internal/job"
	"adaptrm/internal/opset"
	"adaptrm/internal/platform"
	"adaptrm/internal/sched"
	"adaptrm/internal/schedule"
)

// ErrBudget is returned when the search exceeds its node budget; the
// evaluation harness reports such cases as timeouts rather than
// infeasible.
var ErrBudget = errors.New("exmem: node budget exceeded")

// ErrNoImprovement is returned by ScheduleBudgeted when the search
// proves no schedule strictly cheaper than the incumbent exists (or the
// problem is infeasible outright): the incumbent is already optimal
// within EX-MEM's search class.
var ErrNoImprovement = errors.New("exmem: no schedule beats the incumbent")

// DefaultNodeLimit bounds the number of search nodes (state expansions
// plus enumerated joint assignments) per scheduling call.
const DefaultNodeLimit = 50_000_000

// Options tunes the search.
type Options struct {
	// NodeLimit caps search effort; 0 means DefaultNodeLimit.
	NodeLimit int64
	// PureExhaustive disables branch-and-bound pruning and incumbent
	// seeding, matching the paper's memoization-only description.
	PureExhaustive bool
}

// Stats reports effort counters of the last Schedule call.
type Stats struct {
	// Nodes counts state expansions plus enumerated assignments.
	Nodes int64
	// MemoHits counts memo lookups that short-circuited a subtree.
	MemoHits int64
	// MemoEntries is the final memo table size.
	MemoEntries int
}

// Scheduler is the EX-MEM scheduler.
type Scheduler struct {
	opt   Options
	stats Stats
	// seed computes the MMKP-MDF incumbent. Holding one instance lets
	// repeated activations reuse its scratch buffers.
	seed *core.Scheduler
}

// New returns an EX-MEM scheduler with default options.
func New() *Scheduler { return NewWithOptions(Options{}) }

// NewWithOptions returns an EX-MEM scheduler with explicit options.
func NewWithOptions(opt Options) *Scheduler {
	return &Scheduler{opt: opt, seed: core.New()}
}

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string { return "EX-MEM" }

// LastStats returns effort counters of the most recent Schedule call.
func (s *Scheduler) LastStats() Stats { return s.stats }

// jobMeta is per-job immutable search data.
type jobMeta struct {
	j       *job.Job
	tableID int
	fastest float64
}

// memoEntry caches a solved state. When exact is true, val is the true
// optimal energy-to-go and choice the optimal first assignment (aligned
// with the state's canonical job order, -1 = suspended). Otherwise val is
// a proven lower bound ("no schedule cheaper than val exists").
type memoEntry struct {
	val    float64
	exact  bool
	choice []int16
}

type solver struct {
	cap     platform.Alloc
	m       int
	metas   []jobMeta
	memo    map[string]memoEntry
	limit   int64
	nodes   int64
	hits    int64
	pure    bool
	scratch []byte      // reusable memo-key encode buffer
	pairs   []statePair // reusable canonicalize scratch
}

// state is a search node: alive job indices (into metas) in canonical
// order, their remaining ratios, and the current time.
type state struct {
	alive []int
	rho   []float64
	t     float64
}

var errBudgetPanic = errors.New("exmem: internal budget")

// newSolver builds a solver and canonical root state for (jobs, plat, t).
func (s *Scheduler) newSolver(jobs job.Set, plat platform.Platform, t float64) (*solver, state) {
	sol := &solver{
		cap:   plat.Capacity(),
		m:     plat.NumTypes(),
		memo:  make(map[string]memoEntry),
		limit: s.opt.NodeLimit,
		pure:  s.opt.PureExhaustive,
	}
	if sol.limit <= 0 {
		sol.limit = DefaultNodeLimit
	}
	tableIDs := make(map[*opset.Table]int)
	for _, j := range jobs {
		id, ok := tableIDs[j.Table]
		if !ok {
			id = len(tableIDs)
			tableIDs[j.Table] = id
		}
		sol.metas = append(sol.metas, jobMeta{j: j, tableID: id, fastest: j.Table.FastestTime()})
	}
	root := state{t: t}
	for i := range sol.metas {
		root.alive = append(root.alive, i)
		root.rho = append(root.rho, sol.metas[i].j.Remaining)
	}
	sol.canonicalize(&root)
	return sol, root
}

// Schedule implements sched.Scheduler.
func (s *Scheduler) Schedule(jobs job.Set, plat platform.Platform, t float64) (k *schedule.Schedule, err error) {
	if err := jobs.Validate(t); err != nil {
		return nil, err
	}
	sol, root := s.newSolver(jobs, plat, t)

	defer func() {
		s.stats = Stats{Nodes: sol.nodes, MemoHits: sol.hits, MemoEntries: len(sol.memo)}
		if r := recover(); r != nil {
			if r == errBudgetPanic { //nolint:errorlint // sentinel identity
				k, err = nil, ErrBudget
				return
			}
			panic(r)
		}
	}()

	ub := math.Inf(1)
	if !sol.pure {
		// Seed the incumbent with MMKP-MDF: its schedules reconfigure
		// only at completions, so they lie inside EX-MEM's class and
		// their energy upper-bounds the optimum.
		if s.seed == nil {
			s.seed = core.New()
		}
		if mk, err := s.seed.Schedule(jobs, plat, t); err == nil {
			ub = mk.Energy(jobs) + 1e-6
		}
	}
	val, exact := sol.solve(root, ub)
	if math.IsInf(val, 1) {
		return nil, sched.ErrInfeasible
	}
	if !exact {
		// Only possible when the seeded bound was itself unbeatable,
		// which contradicts seeding with a valid member of the class;
		// defensively re-run unseeded.
		val, exact = sol.solve(root, math.Inf(1))
		if !exact || math.IsInf(val, 1) {
			return nil, sched.ErrInfeasible
		}
	}
	k, err = sol.reconstruct(root)
	if err != nil {
		return nil, err
	}
	k.Normalize()
	return k, nil
}

// ScheduleBudgeted searches for a schedule strictly cheaper than the
// incumbent energy, under the configured node budget. It is the anytime
// refinement entry point: the incumbent (typically the MMKP-MDF
// schedule already running) caps the search from the start, so the
// solver only explores subtrees that could still beat it and proves
// either a strictly better exact schedule or that none exists.
//
// Outcomes: a schedule with Energy < incumbent (exact within EX-MEM's
// cut-at-completion class), ErrNoImprovement when the incumbent is
// already optimal (or the problem infeasible), or ErrBudget when the
// node budget ran out first — the caller keeps the incumbent either
// way. Branch-and-bound is always enabled here regardless of
// Options.PureExhaustive: the incumbent bound is the whole point.
func (s *Scheduler) ScheduleBudgeted(jobs job.Set, plat platform.Platform, t, incumbent float64) (k *schedule.Schedule, err error) {
	if err := jobs.Validate(t); err != nil {
		return nil, err
	}
	sol, root := s.newSolver(jobs, plat, t)
	sol.pure = false

	defer func() {
		s.stats = Stats{Nodes: sol.nodes, MemoHits: sol.hits, MemoEntries: len(sol.memo)}
		if r := recover(); r != nil {
			if r == errBudgetPanic { //nolint:errorlint // sentinel identity
				k, err = nil, ErrBudget
				return
			}
			panic(r)
		}
	}()

	val, exact := sol.solve(root, incumbent)
	if !exact || math.IsInf(val, 1) || val >= incumbent-1e-12 {
		return nil, ErrNoImprovement
	}
	k, err = sol.reconstruct(root)
	if err != nil {
		return nil, err
	}
	k.Normalize()
	return k, nil
}

// statePair is the canonicalize scratch element.
type statePair struct {
	idx int
	rho float64
}

// canonicalize sorts the state's jobs by (tableID, rho, slack, jobID) so
// that symmetric jobs collapse onto one memo key. The sort key is a
// total order (job IDs are unique), so an unstable sort is fine.
func (sol *solver) canonicalize(st *state) {
	if cap(sol.pairs) < len(st.alive) {
		sol.pairs = make([]statePair, len(st.alive))
	}
	ps := sol.pairs[:len(st.alive)]
	for i := range st.alive {
		ps[i] = statePair{st.alive[i], st.rho[i]}
	}
	slices.SortFunc(ps, func(a, b statePair) int {
		ma, mb := sol.metas[a.idx], sol.metas[b.idx]
		if ma.tableID != mb.tableID {
			return ma.tableID - mb.tableID
		}
		if a.rho != b.rho {
			if a.rho < b.rho {
				return -1
			}
			return 1
		}
		if ma.j.Deadline != mb.j.Deadline {
			if ma.j.Deadline < mb.j.Deadline {
				return -1
			}
			return 1
		}
		return ma.j.ID - mb.j.ID
	})
	for i := range ps {
		st.alive[i] = ps[i].idx
		st.rho[i] = ps[i].rho
	}
}

// keyBytes encodes the canonical state into the solver's reusable
// scratch buffer. Remaining ratios and slacks are quantized to 1e-9 so
// that arithmetic noise between equivalent paths still hits the memo.
// Absolute time is excluded: energy-to-go is invariant under time shifts
// once slacks are fixed.
//
// The returned slice aliases sol.scratch and is invalidated by the next
// keyBytes call. Memo lookups index the map with string(b) directly —
// the compiler elides that conversion — so only the first store of each
// entry materialises a key string.
func (sol *solver) keyBytes(st *state) []byte {
	need := len(st.alive) * 17
	if cap(sol.scratch) < need {
		sol.scratch = make([]byte, need)
	}
	b := sol.scratch[:0]
	var tmp [8]byte
	for i, idx := range st.alive {
		b = append(b, byte(sol.metas[idx].tableID))
		binary.BigEndian.PutUint64(tmp[:], uint64(int64(math.Round(st.rho[i]*1e9))))
		b = append(b, tmp[:]...)
		slack := sol.metas[idx].j.Deadline - st.t
		binary.BigEndian.PutUint64(tmp[:], uint64(int64(math.Round(slack*1e9))))
		b = append(b, tmp[:]...)
	}
	sol.scratch = b[:0]
	return b
}

// setMemo stores an entry for the state, re-encoding the key (the
// scratch buffer may have been clobbered by recursive solves since the
// lookup).
func (sol *solver) setMemo(st *state, e memoEntry) {
	sol.memo[string(sol.keyBytes(st))] = e
}

// lowerBound returns an admissible energy-to-go bound: the sum over jobs
// of the cheapest point that could still meet the deadline in isolation.
// It returns +Inf when some job is already doomed.
func (sol *solver) lowerBound(st *state) float64 {
	lb := 0.0
	for i, idx := range st.alive {
		meta := sol.metas[idx]
		slack := meta.j.Deadline - st.t
		if meta.fastest*st.rho[i] > slack+schedule.Eps {
			return math.Inf(1)
		}
		lb += relaxedEnergy(meta.j.Table.Points, st.rho[i], slack)
	}
	return lb
}

// relaxedEnergy is the fractional-switching relaxation of one job's
// remaining energy: the cheapest convex mixture of operating points
// that finishes rho work within slack, ignoring resource contention.
// Mixtures matter for admissibility — a job whose cheap point is too
// slow on its own can still run it for part of the work and switch to a
// faster point, landing below every single feasible point's energy. The
// pre-relaxation bound (cheapest single feasible point) could therefore
// exceed the true optimum and prune optimal subtrees; with the search
// seeded at exactly the incumbent energy (ScheduleBudgeted's normal
// case) that pruned the root itself, masking real improvements.
// The LP optimum lies on a vertex mixing at most two points, so trying
// every feasible point and every slack-exhausting pair is exact.
func relaxedEnergy(points []opset.Point, rho, slack float64) float64 {
	best := math.Inf(1)
	for i := range points {
		p := &points[i]
		if p.Time*rho <= slack+schedule.Eps {
			if e := p.Energy * rho; e < best {
				best = e
			}
			continue
		}
		// p alone misses the deadline; mix it with a faster point q,
		// sizing p's share f so the pair exactly exhausts the slack.
		for j := range points {
			q := &points[j]
			if q.Time >= p.Time {
				continue
			}
			f := (slack/rho - q.Time) / (p.Time - q.Time)
			if f <= 0 || f >= 1 {
				continue
			}
			if e := rho * (f*p.Energy + (1-f)*q.Energy); e < best {
				best = e
			}
		}
	}
	return best
}

// child is one enumerated joint assignment expanded into the successor
// state.
type child struct {
	choice []int16
	segE   float64
	dt     float64
	next   state
	lb     float64
}

// solve returns the optimal energy-to-go of st if it is provably below
// ub (exact=true), or a lower-bound certificate (exact=false, val ≥ ub
// means "no schedule cheaper than val").
func (sol *solver) solve(st state, ub float64) (float64, bool) {
	if len(st.alive) == 0 {
		return 0, true
	}
	sol.nodes++
	if sol.nodes > sol.limit {
		panic(errBudgetPanic)
	}
	if e, ok := sol.memo[string(sol.keyBytes(&st))]; ok {
		if e.exact {
			sol.hits++
			return e.val, true
		}
		if e.val >= ub-1e-12 {
			sol.hits++
			return e.val, false
		}
	}
	lb := sol.lowerBound(&st)
	if math.IsInf(lb, 1) {
		sol.setMemo(&st, memoEntry{val: lb, exact: true})
		return lb, true
	}
	if !sol.pure && lb >= ub-1e-12 {
		sol.storeBound(&st, lb)
		return lb, false
	}
	children := sol.enumerate(&st)
	if len(children) == 0 {
		sol.setMemo(&st, memoEntry{val: math.Inf(1), exact: true})
		return math.Inf(1), true
	}
	sort.SliceStable(children, func(a, b int) bool {
		return children[a].segE+children[a].lb < children[b].segE+children[b].lb
	})
	best := math.Inf(1)
	var bestChoice []int16
	for i := range children {
		ch := &children[i]
		bound := ub
		if best < bound {
			bound = best
		}
		if !sol.pure && ch.segE+ch.lb >= bound-1e-12 {
			continue
		}
		v, exact := sol.solve(ch.next, bound-ch.segE)
		total := ch.segE + v
		if exact && total < best {
			best = total
			bestChoice = ch.choice
		}
	}
	if sol.pure || best < ub-1e-12 {
		sol.setMemo(&st, memoEntry{val: best, exact: true, choice: bestChoice})
		return best, true
	}
	sol.storeBound(&st, ub)
	return ub, false
}

// storeBound records a lower-bound certificate, keeping the strongest.
// No recursion separates the guard lookup from the store, so one key
// encode serves both.
func (sol *solver) storeBound(st *state, val float64) {
	kb := sol.keyBytes(st)
	if e, ok := sol.memo[string(kb)]; ok && (e.exact || e.val >= val) {
		return
	}
	sol.memo[string(kb)] = memoEntry{val: val}
}

// enumerate lists all resource-feasible joint assignments of the alive
// jobs (operating point or suspension, not all suspended) whose successor
// state is not provably doomed. Twin jobs (same table, ratio, slack) are
// forced into non-decreasing point order to skip symmetric duplicates.
func (sol *solver) enumerate(st *state) []child {
	n := len(st.alive)
	choice := make([]int16, n)
	free := sol.cap.Clone()
	var out []child
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			sol.expand(st, choice, &out)
			return
		}
		meta := sol.metas[st.alive[i]]
		// Suspension first (twin ordering treats -1 as smallest).
		lo := int16(-1)
		if i > 0 && sol.twin(st, i-1, i) {
			lo = choice[i-1]
		}
		if lo <= -1 {
			choice[i] = -1
			rec(i + 1)
		}
		for pi, p := range meta.j.Table.Points {
			if int16(pi) < lo {
				continue
			}
			if !p.Alloc.Fits(free) {
				continue
			}
			free.SubInPlace(p.Alloc)
			choice[i] = int16(pi)
			rec(i + 1)
			free.AddInPlace(p.Alloc)
		}
	}
	rec(0)
	return out
}

// twin reports whether canonical positions a and b are interchangeable.
func (sol *solver) twin(st *state, a, b int) bool {
	ma, mb := sol.metas[st.alive[a]], sol.metas[st.alive[b]]
	return ma.tableID == mb.tableID &&
		st.rho[a] == st.rho[b] &&
		ma.j.Deadline == mb.j.Deadline
}

// expand turns one joint assignment into a child node, applying the
// admissible deadline prune on the successor state.
func (sol *solver) expand(st *state, choice []int16, out *[]child) {
	sol.nodes++
	if sol.nodes > sol.limit {
		panic(errBudgetPanic)
	}
	n := len(st.alive)
	// Segment length: first completion among running jobs.
	dt := math.Inf(1)
	for i := 0; i < n; i++ {
		if choice[i] < 0 {
			continue
		}
		p := sol.metas[st.alive[i]].j.Table.Points[choice[i]]
		if r := p.Time * st.rho[i]; r < dt {
			dt = r
		}
	}
	if math.IsInf(dt, 1) {
		return // all suspended
	}
	segE := 0.0
	next := state{t: st.t + dt}
	for i := 0; i < n; i++ {
		idx := st.alive[i]
		rho := st.rho[i]
		if choice[i] >= 0 {
			p := sol.metas[idx].j.Table.Points[choice[i]]
			segE += p.Energy * dt / p.Time
			rho -= dt / p.Time
		}
		if rho <= 1e-12 {
			// Finished within this segment; its deadline is respected by
			// construction only if t+dt ≤ δ.
			if next.t > sol.metas[idx].j.Deadline+schedule.Eps {
				return
			}
			continue
		}
		next.alive = append(next.alive, idx)
		next.rho = append(next.rho, rho)
	}
	sol.canonicalize(&next)
	lb := sol.lowerBound(&next)
	if math.IsInf(lb, 1) {
		return // a surviving job is doomed
	}
	*out = append(*out, child{
		choice: append([]int16(nil), choice...),
		segE:   segE,
		dt:     dt,
		next:   next,
		lb:     lb,
	})
}

// reconstruct replays the memoized optimal decisions from the root state
// into a concrete schedule.
func (sol *solver) reconstruct(root state) (*schedule.Schedule, error) {
	k := &schedule.Schedule{}
	st := root
	for len(st.alive) > 0 {
		e, ok := sol.memo[string(sol.keyBytes(&st))]
		if !ok || !e.exact || e.choice == nil {
			return nil, fmt.Errorf("exmem: missing exact memo entry during reconstruction")
		}
		var children []child
		sol.expandChoice(&st, e.choice, &children)
		if len(children) != 1 {
			return nil, fmt.Errorf("exmem: stored choice no longer expands")
		}
		ch := children[0]
		seg := schedule.Segment{Start: st.t, End: st.t + ch.dt}
		for i, idx := range st.alive {
			if e.choice[i] < 0 {
				continue
			}
			seg.Placements = append(seg.Placements, schedule.Placement{
				JobID: sol.metas[idx].j.ID,
				Point: int(e.choice[i]),
			})
		}
		sort.Slice(seg.Placements, func(a, b int) bool {
			return seg.Placements[a].JobID < seg.Placements[b].JobID
		})
		if err := k.Append(seg); err != nil {
			return nil, err
		}
		st = ch.next
	}
	return k, nil
}

// expandChoice expands a specific stored assignment (bypassing node
// accounting so reconstruction cannot trip the budget).
func (sol *solver) expandChoice(st *state, choice []int16, out *[]child) {
	saved := sol.nodes
	sol.expand(st, choice, out)
	sol.nodes = saved
}
