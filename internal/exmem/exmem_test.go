package exmem

import (
	"errors"
	"math"
	"testing"

	"adaptrm/internal/core"
	"adaptrm/internal/job"
	"adaptrm/internal/lagrange"
	"adaptrm/internal/motiv"
	"adaptrm/internal/opset"
	"adaptrm/internal/platform"
	"adaptrm/internal/sched"
)

func TestName(t *testing.T) {
	if New().Name() != "EX-MEM" {
		t.Error("name wrong")
	}
}

func TestSingleJobOptimal(t *testing.T) {
	jobs := job.Set{{ID: 1, Table: motiv.Lambda1(), Deadline: 9, Remaining: 1}}
	plat := motiv.Platform()
	k, err := New().Schedule(jobs, plat, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Validate(plat, jobs, 0); err != nil {
		t.Fatal(err)
	}
	if got := k.Energy(jobs); math.Abs(got-8.90) > 1e-9 {
		t.Errorf("energy = %v, want 8.90", got)
	}
	if s := New(); s.LastStats().Nodes != 0 {
		t.Error("fresh scheduler has stats")
	}
}

// On scenario S1 the optimum within the cut-at-completion class is the
// Fig. 1(c) schedule: 12.95 J from t=1 (14.63 J including [0,1)).
func TestS1Optimal(t *testing.T) {
	jobs := job.Set(motiv.ScenarioS1AtT1())
	plat := motiv.Platform()
	s := New()
	k, err := s.Schedule(jobs, plat, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Validate(plat, jobs, 1); err != nil {
		t.Fatal(err)
	}
	total := k.Energy(jobs) + motiv.EnergyBeforeT1
	if math.Abs(total-14.63) > 0.01 {
		t.Errorf("S1 optimum = %.3f, want 14.63", total)
	}
	if st := s.LastStats(); st.Nodes == 0 {
		t.Error("stats not recorded")
	}
}

// S2 is schedulable by the adaptive class with the same energy.
func TestS2Optimal(t *testing.T) {
	jobs := job.Set(motiv.ScenarioS2AtT1())
	plat := motiv.Platform()
	k, err := New().Schedule(jobs, plat, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := k.Energy(jobs) + motiv.EnergyBeforeT1
	if math.Abs(total-14.63) > 0.01 {
		t.Errorf("S2 optimum = %.3f, want 14.63", total)
	}
}

// EX-MEM is the reference: no heuristic may beat it (Table IV ratios ≥ 1).
func TestReferenceOptimality(t *testing.T) {
	plat := motiv.Platform()
	cases := []job.Set{
		motiv.ScenarioS1AtT1(),
		{
			{ID: 1, Table: motiv.Lambda1(), Deadline: 20, Remaining: 1},
			{ID: 2, Table: motiv.Lambda2(), Deadline: 12, Remaining: 0.8},
		},
		{
			{ID: 1, Table: motiv.Lambda2(), Deadline: 15, Remaining: 1},
			{ID: 2, Table: motiv.Lambda2(), Deadline: 9, Remaining: 0.5},
			{ID: 3, Table: motiv.Lambda1(), Deadline: 25, Remaining: 0.9},
		},
	}
	t0 := 1.0
	for ci, jobs := range cases {
		opt, err := New().Schedule(jobs, plat, t0)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		optE := opt.Energy(jobs)
		for _, s := range []sched.Scheduler{core.New(), lagrange.New()} {
			k, err := s.Schedule(jobs, plat, t0)
			if err != nil {
				continue
			}
			if k.Energy(jobs) < optE-1e-6 {
				t.Errorf("case %d: %s energy %v beats EX-MEM %v",
					ci, s.Name(), k.Energy(jobs), optE)
			}
		}
	}
}

// Pure exhaustive and branch-and-bound modes must agree exactly.
func TestPureMatchesPruned(t *testing.T) {
	plat := motiv.Platform()
	cases := []job.Set{
		motiv.ScenarioS1AtT1(),
		motiv.ScenarioS2AtT1(),
		{
			{ID: 1, Table: motiv.Lambda2(), Deadline: 8, Remaining: 1},
			{ID: 2, Table: motiv.Lambda2(), Deadline: 8, Remaining: 1},
		},
		{
			{ID: 1, Table: motiv.Lambda1(), Deadline: 30, Remaining: 0.7},
			{ID: 2, Table: motiv.Lambda2(), Deadline: 10, Remaining: 0.9},
			{ID: 3, Table: motiv.Lambda2(), Deadline: 18, Remaining: 1},
		},
	}
	for ci, jobs := range cases {
		fast, errF := New().Schedule(jobs, plat, 1)
		pure, errP := NewWithOptions(Options{PureExhaustive: true}).Schedule(jobs, plat, 1)
		if (errF == nil) != (errP == nil) {
			t.Fatalf("case %d: feasibility disagrees: %v vs %v", ci, errF, errP)
		}
		if errF != nil {
			continue
		}
		ef, ep := fast.Energy(jobs), pure.Energy(jobs)
		if math.Abs(ef-ep) > 1e-6 {
			t.Errorf("case %d: pruned %v vs pure %v", ci, ef, ep)
		}
	}
}

// Twin jobs (identical table, ratio, deadline) must collapse states and
// still produce a valid optimal schedule.
func TestTwinJobs(t *testing.T) {
	plat := motiv.Platform()
	jobs := job.Set{
		{ID: 1, Table: motiv.Lambda2(), Deadline: 14, Remaining: 1},
		{ID: 2, Table: motiv.Lambda2(), Deadline: 14, Remaining: 1},
	}
	k, err := New().Schedule(jobs, plat, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Validate(plat, jobs, 0); err != nil {
		t.Fatal(err)
	}
}

// A case whose only feasible schedules switch operating points mid-job:
// MMKP-MDF (one point per job) must fail, EX-MEM must succeed. This is
// the mechanism behind EX-MEM's higher scheduling rate in Fig. 2.
func TestAdaptationBeyondMDF(t *testing.T) {
	plat := platform.Motivational2L2B()
	blocker := &opset.Table{App: "blocker", Points: []opset.Point{
		{Alloc: platform.Alloc{1, 2}, Time: 4, Energy: 5},
	}}
	blocker.SortByEnergy()
	switcher := &opset.Table{App: "switcher", Points: []opset.Point{
		{Alloc: platform.Alloc{1, 0}, Time: 20, Energy: 2},
		{Alloc: platform.Alloc{2, 2}, Time: 5, Energy: 10},
	}}
	switcher.SortByEnergy()
	jobs := job.Set{
		{ID: 1, Table: blocker, Deadline: 4, Remaining: 1},
		{ID: 2, Table: switcher, Deadline: 8.5, Remaining: 1},
	}
	if _, err := core.New().Schedule(jobs, plat, 0); !errors.Is(err, sched.ErrInfeasible) {
		t.Fatalf("MDF unexpectedly handled the switching case: %v", err)
	}
	k, err := New().Schedule(jobs, plat, 0)
	if err != nil {
		t.Fatalf("EX-MEM failed: %v", err)
	}
	if err := k.Validate(plat, jobs, 0); err != nil {
		t.Fatal(err)
	}
	// Job 2 must use both of its points.
	used := map[int]bool{}
	for _, seg := range k.Segments {
		for _, p := range seg.Placements {
			if p.JobID == 2 {
				used[p.Point] = true
			}
		}
	}
	if len(used) < 2 {
		t.Errorf("job 2 used %d distinct points, want 2", len(used))
	}
}

func TestInfeasibleRejected(t *testing.T) {
	jobs := job.Set{{ID: 1, Table: motiv.Lambda1(), Deadline: 1, Remaining: 1}}
	_, err := New().Schedule(jobs, motiv.Platform(), 0)
	if !errors.Is(err, sched.ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestNodeBudget(t *testing.T) {
	jobs := job.Set{
		{ID: 1, Table: motiv.Lambda1(), Deadline: 60, Remaining: 1},
		{ID: 2, Table: motiv.Lambda1(), Deadline: 55, Remaining: 1},
		{ID: 3, Table: motiv.Lambda2(), Deadline: 50, Remaining: 1},
	}
	s := NewWithOptions(Options{NodeLimit: 10})
	_, err := s.Schedule(jobs, motiv.Platform(), 0)
	if !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

func TestInvalidInputs(t *testing.T) {
	if _, err := New().Schedule(nil, motiv.Platform(), 0); err == nil {
		t.Error("empty set accepted")
	}
}

func TestDoesNotMutate(t *testing.T) {
	jobs := job.Set(motiv.ScenarioS1AtT1())
	before := jobs.Clone()
	if _, err := New().Schedule(jobs, motiv.Platform(), 1); err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].Remaining != before[i].Remaining {
			t.Errorf("job %d mutated", jobs[i].ID)
		}
	}
}

// mdfGapCase builds a feasible case where MMKP-MDF (one operating point
// per job for the job's whole lifetime) is strictly suboptimal: the
// blocker owns both big cores until t=4, so the switcher's cheap point
// alone misses its deadline and MDF must commit to the expensive
// single-alloc point for the full job — while the adaptive class runs
// the cheap point beside the blocker and switches to the fast point
// once the big cores free up. This is the energy-side analogue of
// TestAdaptationBeyondMDF (where MDF fails outright).
func mdfGapCase() (job.Set, platform.Platform) {
	plat := platform.Motivational2L2B()
	blocker := &opset.Table{App: "blocker", Points: []opset.Point{
		{Alloc: platform.Alloc{1, 2}, Time: 4, Energy: 5},
	}}
	blocker.SortByEnergy()
	switcher := &opset.Table{App: "switcher", Points: []opset.Point{
		{Alloc: platform.Alloc{1, 0}, Time: 20, Energy: 2},
		{Alloc: platform.Alloc{1, 0}, Time: 8, Energy: 9},
		{Alloc: platform.Alloc{2, 2}, Time: 5, Energy: 10},
	}}
	switcher.SortByEnergy()
	jobs := job.Set{
		{ID: 1, Table: blocker, Deadline: 4, Remaining: 1},
		{ID: 2, Table: switcher, Deadline: 8.5, Remaining: 1},
	}
	return jobs, plat
}

// The anytime entry point must return a schedule strictly cheaper than
// the MDF incumbent on the gap case, and prove optimality (the
// ErrNoImprovement outcome) when re-seeded with its own result.
func TestScheduleBudgetedImproves(t *testing.T) {
	jobs, plat := mdfGapCase()
	mk, err := core.New().Schedule(jobs, plat, 0)
	if err != nil {
		t.Fatalf("MDF infeasible on the gap case: %v", err)
	}
	incumbent := mk.Energy(jobs)
	k, err := New().ScheduleBudgeted(jobs, plat, 0, incumbent)
	if err != nil {
		t.Fatalf("ScheduleBudgeted: %v (incumbent %v)", err, incumbent)
	}
	if err := k.Validate(plat, jobs, 0); err != nil {
		t.Fatal(err)
	}
	refined := k.Energy(jobs)
	if refined >= incumbent-1e-9 {
		t.Errorf("refined energy %v does not beat incumbent %v", refined, incumbent)
	}
	if _, err := New().ScheduleBudgeted(jobs, plat, 0, refined); !errors.Is(err, ErrNoImprovement) {
		t.Errorf("re-seeded search: %v, want ErrNoImprovement", err)
	}
}

// An infeasible problem folds into ErrNoImprovement: the caller keeps
// the incumbent, whatever it was.
func TestScheduleBudgetedInfeasible(t *testing.T) {
	jobs := job.Set{{ID: 1, Table: motiv.Lambda1(), Deadline: 1, Remaining: 1}}
	if _, err := New().ScheduleBudgeted(jobs, motiv.Platform(), 0, math.Inf(1)); !errors.Is(err, ErrNoImprovement) {
		t.Errorf("err = %v, want ErrNoImprovement", err)
	}
}

// Exhausting the node budget returns ErrBudget, never a schedule.
func TestScheduleBudgetedBudget(t *testing.T) {
	jobs := job.Set{
		{ID: 1, Table: motiv.Lambda1(), Deadline: 60, Remaining: 1},
		{ID: 2, Table: motiv.Lambda1(), Deadline: 55, Remaining: 1},
		{ID: 3, Table: motiv.Lambda2(), Deadline: 50, Remaining: 1},
	}
	s := NewWithOptions(Options{NodeLimit: 10})
	if _, err := s.ScheduleBudgeted(jobs, motiv.Platform(), 0, math.Inf(1)); !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}
