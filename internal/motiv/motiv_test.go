package motiv

import (
	"math"
	"testing"

	"adaptrm/internal/job"
	"adaptrm/internal/platform"
)

func TestTablesValidate(t *testing.T) {
	plat := Platform()
	if err := Lambda1().Validate(plat); err != nil {
		t.Errorf("λ1: %v", err)
	}
	if err := Lambda2().Validate(plat); err != nil {
		t.Errorf("λ2: %v", err)
	}
	lib := Library()
	if lib.Len() != 2 {
		t.Errorf("library has %d tables", lib.Len())
	}
	if err := lib.Validate(plat); err != nil {
		t.Errorf("library: %v", err)
	}
}

// Table II's underlined value: the energy-optimal deadline-9 point for λ1
// at ρ=1 is 2L1B with ξ=8.90.
func TestLambda1EnergyOptimalChoiceAtStart(t *testing.T) {
	j := &job.Job{ID: 1, Table: Lambda1(), Deadline: 9, Remaining: 1}
	best, bestE := platform.Alloc(nil), math.Inf(1)
	for _, p := range j.Table.Points {
		if p.RemainingTime(1) <= j.Slack(0) && p.Energy < bestE {
			bestE = p.Energy
			best = p.Alloc
		}
	}
	if !best.Equal(platform.Alloc{2, 1}) || bestE != 8.90 {
		t.Errorf("best = %v ξ=%v, want 2L1B ξ=8.90", best, bestE)
	}
}

// The progress constant matches Table II's 18.87% column.
func TestRho1AtT1(t *testing.T) {
	if math.Abs((1-Rho1AtT1)-0.1887) > 1e-4 {
		t.Errorf("progress at t=1 = %v, want ≈0.1887", 1-Rho1AtT1)
	}
	if math.Abs(EnergyBeforeT1-8.90/5.3) > 1e-12 {
		t.Errorf("EnergyBeforeT1 = %v", EnergyBeforeT1)
	}
}

func TestScenarios(t *testing.T) {
	s1 := job.Set(ScenarioS1AtT1())
	if err := s1.Validate(1); err != nil {
		t.Fatalf("S1: %v", err)
	}
	if s1.ByID(2).Deadline != 5 {
		t.Errorf("S1 σ2 deadline = %v, want 5", s1.ByID(2).Deadline)
	}
	s2 := job.Set(ScenarioS2AtT1())
	if err := s2.Validate(1); err != nil {
		t.Fatalf("S2: %v", err)
	}
	if s2.ByID(2).Deadline != 4 {
		t.Errorf("S2 σ2 deadline = %v, want 4", s2.ByID(2).Deadline)
	}
	// In S2, σ2 alone can still meet its deadline (2L2B needs 2s ≤ 3).
	if !s2.ByID(2).Feasible(1) {
		t.Error("S2 σ2 should be feasible in isolation")
	}
}
