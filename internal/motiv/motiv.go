// Package motiv carries the exact data of the motivational example of the
// paper (Section III): the 2-little/2-big platform, the operating-point
// tables of applications λ1 and λ2 (Table II, full-run values) and the
// request scenarios S1 and S2 (Table I). It exists so that golden tests
// and the Fig. 1 reproduction work from the paper's own numbers rather
// than from synthetic tables.
package motiv

import (
	"adaptrm/internal/job"
	"adaptrm/internal/opset"
	"adaptrm/internal/platform"
)

// Platform returns the motivational device: 2 little + 2 big cores.
func Platform() platform.Platform { return platform.Motivational2L2B() }

// Lambda1 returns application λ1's operating points (Table II, first
// column group; full-run τ and ξ).
func Lambda1() *opset.Table {
	t := &opset.Table{App: "lambda1", Points: []opset.Point{
		{Alloc: platform.Alloc{1, 0}, Time: 16.8, Energy: 7.90},
		{Alloc: platform.Alloc{2, 0}, Time: 10.3, Energy: 7.01},
		{Alloc: platform.Alloc{0, 1}, Time: 11.2, Energy: 18.54},
		{Alloc: platform.Alloc{0, 2}, Time: 6.3, Energy: 17.70},
		{Alloc: platform.Alloc{1, 1}, Time: 8.1, Energy: 10.90},
		{Alloc: platform.Alloc{1, 2}, Time: 7.9, Energy: 10.60},
		{Alloc: platform.Alloc{2, 1}, Time: 5.3, Energy: 8.90},
		{Alloc: platform.Alloc{2, 2}, Time: 4.7, Energy: 11.00},
	}}
	t.SortByEnergy()
	return t
}

// Lambda2 returns application λ2's operating points (Table II, second
// column group).
func Lambda2() *opset.Table {
	t := &opset.Table{App: "lambda2", Points: []opset.Point{
		{Alloc: platform.Alloc{1, 0}, Time: 10.0, Energy: 2.00},
		{Alloc: platform.Alloc{2, 0}, Time: 7.0, Energy: 2.87},
		{Alloc: platform.Alloc{0, 1}, Time: 5.0, Energy: 7.55},
		{Alloc: platform.Alloc{0, 2}, Time: 3.5, Energy: 10.5},
		{Alloc: platform.Alloc{1, 1}, Time: 3.5, Energy: 6.44},
		{Alloc: platform.Alloc{1, 2}, Time: 3.0, Energy: 6.81},
		{Alloc: platform.Alloc{2, 1}, Time: 3.0, Energy: 5.73},
		{Alloc: platform.Alloc{2, 2}, Time: 2.0, Energy: 6.58},
	}}
	t.SortByEnergy()
	return t
}

// Library returns a library with both motivational applications.
func Library() *opset.Library {
	lib := opset.NewLibrary()
	// Adds cannot fail: distinct fresh tables.
	_ = lib.Add(Lambda1())
	_ = lib.Add(Lambda2())
	return lib
}

// Rho1AtT1 is σ1's remaining progress ratio after running on 2L1B from
// t=0 to t=1 (progress 1/5.3 ≈ 18.87%, see Table II's second column).
const Rho1AtT1 = 1 - 1/5.3

// ScenarioS1AtT1 returns the job set the runtime manager faces at t=1 in
// scenario S1: σ1 (deadline 9) has progressed 18.87% on 2L1B, σ2
// (deadline 5) just arrived.
func ScenarioS1AtT1() []*job.Job {
	return []*job.Job{
		{ID: 1, Table: Lambda1(), Arrival: 0, Deadline: 9, Remaining: Rho1AtT1},
		{ID: 2, Table: Lambda2(), Arrival: 1, Deadline: 5, Remaining: 1},
	}
}

// ScenarioS2AtT1 returns the job set at t=1 in the tighter scenario S2:
// σ2's deadline drops to 4.
func ScenarioS2AtT1() []*job.Job {
	return []*job.Job{
		{ID: 1, Table: Lambda1(), Arrival: 0, Deadline: 9, Remaining: Rho1AtT1},
		{ID: 2, Table: Lambda2(), Arrival: 1, Deadline: 4, Remaining: 1},
	}
}

// EnergyBeforeT1 is the energy σ1 consumed on 2L1B during [0,1), which
// must be added to schedule energies computed from t=1 to compare against
// the full-run figures of Fig. 1 (16.96 / 15.49 / 14.63 J).
const EnergyBeforeT1 = 8.90 * (1 / 5.3)
