package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"adaptrm/internal/api"
	"adaptrm/internal/rm"
)

// ErrMetaMismatch flags a data dir recorded under a different fleet
// configuration than the one opening it.
var ErrMetaMismatch = errors.New("durable: data dir belongs to a different fleet configuration")

// framePos locates one decoded event's frame on disk, so the tail can
// be truncated to a logical cut after replay drops a partial unit.
type framePos struct {
	path string
	end  int64 // byte offset one past the frame within its segment
}

// DeviceState is one device's recovered persisted state, ready to hand
// to fleet.Recover as a fleet.DeviceRecovery.
type DeviceState struct {
	// Snapshot seeds replay (nil for log-only recovery).
	Snapshot *rm.Snapshot
	// Events is the contiguous log tail beyond the snapshot.
	Events []api.Event

	frames   []framePos
	dir      string
	segments int
}

// State is an opened data dir: per-device recovered state plus the
// figures the recovery report and /metrics surface.
type State struct {
	// Dir is the data directory.
	Dir string
	// Meta is the stored (or just-created) fleet identity.
	Meta Meta
	// Recovered reports whether the dir held any prior state.
	Recovered bool
	// Devices holds the per-device recovered state, keyed by device id
	// (absent: device had no persisted state).
	Devices map[int]*DeviceState
	// Events counts the recovered log-tail events across devices.
	Events int
	// Snapshots counts the devices recovered from a snapshot.
	Snapshots int
	// TruncatedBytes counts torn-tail bytes physically removed from
	// segment files while opening.
	TruncatedBytes int64
}

// Open opens (creating if necessary) a data dir for the fleet described
// by meta and recovers whatever it holds: per device, the newest
// snapshot that anchors a contiguous event tail, the tail itself, and a
// physical truncation of any torn frames. meta.Version is set by Open.
func Open(dir string, meta Meta) (*State, error) {
	meta.Version = metaVersion
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	stored, found, err := loadMeta(dir)
	if err != nil {
		return nil, err
	}
	if !found {
		if err := storeMeta(dir, meta); err != nil {
			return nil, err
		}
	} else if stored != meta {
		return nil, fmt.Errorf("%w: stored %+v, running %+v", ErrMetaMismatch, stored, meta)
	}
	st := &State{Dir: dir, Meta: meta, Devices: make(map[int]*DeviceState)}
	for dev := 0; dev < meta.Devices; dev++ {
		ds, err := st.recoverDevice(filepath.Join(dir, deviceDirName(dev)))
		if err != nil {
			return nil, fmt.Errorf("durable: device %d: %w", dev, err)
		}
		if ds == nil {
			continue
		}
		st.Devices[dev] = ds
		st.Events += len(ds.Events)
		if ds.Snapshot != nil {
			st.Snapshots++
		}
		st.Recovered = true
	}
	return st, nil
}

// recoverDevice reads one device dir: decode every segment to its
// longest valid prefix (physically truncating torn bytes — and deleting
// any segments stranded behind a mid-log tear, which only corruption
// can produce), then anchor the tail on the newest loadable snapshot
// that keeps it contiguous, falling back through older snapshots to
// log-only replay. Returns nil when the dir holds nothing.
func (st *State) recoverDevice(dir string) (*DeviceState, error) {
	segs, err := listSeqFiles(dir, segmentPrefix, segmentSuffix)
	if err != nil {
		return nil, err
	}
	snaps, err := listSeqFiles(dir, snapshotPrefix, snapshotSuffix)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 && len(snaps) == 0 {
		return nil, nil
	}
	ds := &DeviceState{dir: dir, segments: len(segs)}
	torn := -1
	for i, seg := range segs {
		if torn >= 0 {
			// A segment behind a tear is unreachable by any contiguous
			// replay; removing it keeps the dir describing exactly the
			// recoverable prefix.
			if err := os.Remove(seg.path); err != nil {
				return nil, err
			}
			ds.segments--
			continue
		}
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return nil, err
		}
		before := len(ds.Events)
		var valid int
		ds.Events, valid = decodeFrames(data, ds.Events)
		// Record each event's end offset by re-walking the valid prefix,
		// so Truncate can later cut the file at any frame boundary.
		off := int64(0)
		for j := before; j < len(ds.Events); j++ {
			n := int64(frameLen(data[off:]))
			off += n
			ds.frames = append(ds.frames, framePos{path: seg.path, end: off})
		}
		if valid < len(data) {
			if err := os.Truncate(seg.path, int64(valid)); err != nil {
				return nil, err
			}
			st.TruncatedBytes += int64(len(data) - valid)
			if i < len(segs)-1 {
				torn = i
			}
		}
		if before == len(ds.Events) && valid == 0 {
			// Entirely torn segment: nothing decodable survives in it.
			if err := os.Remove(seg.path); err != nil {
				return nil, err
			}
			ds.segments--
			if i < len(segs)-1 {
				torn = i
			}
		}
	}
	if torn >= 0 {
		if err := syncDir(dir); err != nil {
			return nil, err
		}
	}
	// Anchor on the newest snapshot that keeps the tail contiguous.
	for i := len(snaps) - 1; i >= 0; i-- {
		snap, err := readSnapshotFile(snaps[i].path)
		if err != nil {
			continue // torn or corrupt snapshot: fall back to an older one
		}
		if tail, frames, ok := contiguousTail(ds.Events, ds.frames, snap.EventSeq); ok {
			ds.Snapshot = snap
			ds.Events, ds.frames = tail, frames
			return ds, nil
		}
	}
	if tail, frames, ok := contiguousTail(ds.Events, ds.frames, 0); ok {
		ds.Events, ds.frames = tail, frames
		return ds, nil
	}
	return nil, fmt.Errorf("no snapshot anchors the event log (%d events, %d snapshots)", len(ds.Events), len(snaps))
}

// contiguousTail extracts the events with Seq > base and reports
// whether they form the gap-free run base+1, base+2, … (an empty tail
// qualifies). Events at or below base are covered by the snapshot and
// skipped; a gap above base means lost history the snapshot does not
// cover.
func contiguousTail(evs []api.Event, frames []framePos, base uint64) ([]api.Event, []framePos, bool) {
	i := 0
	for i < len(evs) && evs[i].Seq <= base {
		i++
	}
	for j := i; j < len(evs); j++ {
		if evs[j].Seq != base+uint64(j-i)+1 {
			return nil, nil, false
		}
	}
	return evs[i:], frames[i:], true
}

// frameLen returns the total byte length of the already-validated
// frame at the start of buf.
func frameLen(buf []byte) int {
	return frameHeader + int(uint32(buf[0])|uint32(buf[1])<<8|uint32(buf[2])<<16|uint32(buf[3])<<24)
}

// AppliedSeq returns the last sequence number the recovered state
// reflects for one device: the tail's last event, or the snapshot's.
func (ds *DeviceState) AppliedSeq() uint64 {
	if n := len(ds.Events); n > 0 {
		return ds.Events[n-1].Seq
	}
	if ds.Snapshot != nil {
		return ds.Snapshot.EventSeq
	}
	return 0
}

// Truncate physically cuts a device's persisted log after appliedSeq,
// discarding the trailing events replay dropped as an incomplete unit,
// so future appends continue from appliedSeq+1 without conflicts. A
// device with nothing persisted, or an appliedSeq at or past the tail,
// is a no-op.
func (st *State) Truncate(dev int, appliedSeq uint64) error {
	ds := st.Devices[dev]
	if ds == nil {
		return nil
	}
	cut := len(ds.Events)
	for cut > 0 && ds.Events[cut-1].Seq > appliedSeq {
		cut--
	}
	if cut == len(ds.Events) {
		return nil
	}
	// Per segment file holding dropped frames: truncate at the last
	// retained frame's end, or remove the file when nothing remains.
	type cutPoint struct {
		path string
		keep int64
	}
	var cuts []cutPoint
	for i := cut; i < len(ds.Events); i++ {
		p := ds.frames[i]
		if len(cuts) > 0 && cuts[len(cuts)-1].path == p.path {
			continue
		}
		keep := int64(0)
		if i > 0 && ds.frames[i-1].path == p.path {
			keep = ds.frames[i-1].end
		}
		cuts = append(cuts, cutPoint{path: p.path, keep: keep})
	}
	for _, c := range cuts {
		var err error
		if c.keep == 0 {
			err = os.Remove(c.path)
			ds.segments--
		} else {
			err = os.Truncate(c.path, c.keep)
		}
		if err != nil {
			return err
		}
	}
	st.Events -= len(ds.Events) - cut
	ds.Events = ds.Events[:cut]
	ds.frames = ds.frames[:cut]
	return syncDir(ds.dir)
}
