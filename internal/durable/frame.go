// Package durable persists the fleet's event streams and periodic
// state snapshots to disk, and recovers them after a crash.
//
// The design leans entirely on the determinism the runtime managers
// already guarantee: every device is a state machine whose event log
// (package rm, fanned out by package fleet) doubles as an operation
// log. Durability is therefore a tail job — a writer subscribes to each
// device's watch stream (FromSeq resume, never blocking a shard worker)
// and appends length-prefixed, CRC32C-framed event records to
// per-device segment files, rotating by size and writing periodic
// snapshots (canonical JSON of rm.Snapshot) so recovery is
// snapshot-load plus tail-replay instead of full replay. Recovery
// truncates a torn tail at the first bad frame, hands the snapshot and
// the contiguous event tail to fleet.Recover — which re-drives the
// deterministic manager transitions and verifies every re-emitted event
// against the log — and then truncates the physical log to the logical
// cut so appends continue without sequence conflicts.
//
// # Durability and recovery
//
// Persistence is asynchronous by construction: an admission is
// acknowledged when the manager decides it, and reaches disk when the
// writer drains it from the watch stream — microseconds later under
// normal load, bounded by the subscription buffer under pressure. The
// -fsync policy then chooses how far the operating system is trusted:
// "always" fsyncs after every appended event (each event costs a disk
// round-trip; survives power loss), "interval" fsyncs on a timer
// (default 100ms of events at risk; survives process crashes
// outright), "never" leaves flushing entirely to the OS page cache.
// Snapshots are written atomically (temp file, fsync, rename) and
// retained two deep, so a snapshot torn by a crash never strands
// recovery: the previous one still anchors the log. A fleet recovered
// from snapshot+tail or from log-only replay reconstructs per-device
// stats, clocks and executed timelines byte-identical to the pre-crash
// process at the same sequence number — with one documented exception:
// a batch whose joint solve failed leaves no event trace of the failed
// attempt, so replay undercounts Stats.Activations by exactly those
// solves (admission verdicts, energy and timelines are unaffected).
// The schedule cache is a performance artifact, not admission state;
// it restarts cold after snapshot recovery.
package durable

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"math"
	"strconv"

	"adaptrm/internal/api"
)

// Frame layout: [length uint32 LE][crc32c uint32 LE][payload]. The
// length covers the payload only; the CRC (Castagnoli polynomial, the
// same choice as iSCSI/ext4 for its error-detection properties and
// hardware support) covers the payload only, so a torn header, a torn
// payload and a bit-flipped payload are all detected the same way: the
// frame fails to validate and decoding stops there.
const (
	frameHeader = 8
	// maxFramePayload bounds a single record. Event payloads are tens of
	// bytes (a few KB for schedule-swap events, which carry the swapped
	// schedule); anything claiming a megabyte is garbage read from a
	// torn header, not a record.
	maxFramePayload = 1 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends one framed event record to dst and returns the
// extended slice. The payload is hand-rolled JSON (decodable by
// encoding/json into api.Event): with a pre-grown dst the append path
// performs zero heap allocations, pinned by BenchmarkWALAppend.
func appendFrame(dst []byte, ev api.Event) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = appendEventJSON(dst, ev)
	payload := dst[start+frameHeader:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, castagnoli))
	return dst
}

// appendEventJSON encodes ev like encoding/json would (same field
// names and omitempty semantics as api.Event), without reflection or
// allocation. Floats use the shortest representation that round-trips
// exactly (strconv 'g' with precision -1), so a decoded event is
// bit-identical to the emitted one.
func appendEventJSON(dst []byte, ev api.Event) []byte {
	dst = append(dst, `{"device":`...)
	dst = strconv.AppendInt(dst, int64(ev.Device), 10)
	if ev.Seq != 0 {
		dst = append(dst, `,"seq":`...)
		dst = strconv.AppendUint(dst, ev.Seq, 10)
	}
	dst = append(dst, `,"type":`...)
	dst = appendJSONString(dst, string(ev.Type))
	if ev.At != 0 {
		dst = append(dst, `,"at":`...)
		dst = appendJSONFloat(dst, ev.At)
	}
	if ev.JobID != 0 {
		dst = append(dst, `,"job_id":`...)
		dst = strconv.AppendInt(dst, int64(ev.JobID), 10)
	}
	if ev.App != "" {
		dst = append(dst, `,"app":`...)
		dst = appendJSONString(dst, ev.App)
	}
	if ev.Deadline != 0 {
		dst = append(dst, `,"deadline":`...)
		dst = appendJSONFloat(dst, ev.Deadline)
	}
	if ev.Missed {
		dst = append(dst, `,"missed":true`...)
	}
	if ev.Dropped != 0 {
		dst = append(dst, `,"dropped":`...)
		dst = strconv.AppendInt(dst, int64(ev.Dropped), 10)
	}
	if ev.Payload != "" {
		dst = append(dst, `,"payload":`...)
		dst = appendJSONString(dst, ev.Payload)
	}
	return append(dst, '}')
}

// appendJSONFloat writes a finite float in shortest round-trip form.
// Event times are always finite; a non-finite value would mean manager
// state corruption, so it is encoded as null and rejected at decode
// (the frame fails validation) rather than silently zeroed.
func appendJSONFloat(dst []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(dst, `null`...)
	}
	return strconv.AppendFloat(dst, f, 'g', -1, 64)
}

const hexDigits = "0123456789abcdef"

// appendJSONString writes a JSON string literal. Application names are
// short identifiers in practice, but the encoder stays safe for any
// byte content: quotes, backslashes and control characters escape.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"' || c == '\\':
			dst = append(dst, '\\', c)
		case c < 0x20:
			dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		default:
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}

// decodeFrames scans buf and appends every decodable event to into,
// returning the extended slice and the byte length of the longest valid
// prefix. It never fails and never panics: a short header, a zero or
// oversized length, a truncated payload, a CRC mismatch or unparseable
// JSON all mean the same thing — the log ends here (torn tail), and
// valid is where the caller should truncate.
func decodeFrames(buf []byte, into []api.Event) ([]api.Event, int) {
	valid := 0
	for {
		rest := buf[valid:]
		if len(rest) < frameHeader {
			return into, valid
		}
		n := int(binary.LittleEndian.Uint32(rest))
		if n == 0 || n > maxFramePayload || len(rest) < frameHeader+n {
			return into, valid
		}
		payload := rest[frameHeader : frameHeader+n]
		if binary.LittleEndian.Uint32(rest[4:]) != crc32.Checksum(payload, castagnoli) {
			return into, valid
		}
		var ev api.Event
		if err := json.Unmarshal(payload, &ev); err != nil || ev.Seq == 0 {
			return into, valid
		}
		into = append(into, ev)
		valid += frameHeader + n
	}
}
