package durable

import (
	"time"

	"adaptrm/internal/metrics"
)

// DeviceStatus is one device's WAL position.
type DeviceStatus struct {
	// Device is the device id.
	Device int `json:"device"`
	// LastSeq is the last appended event sequence (0: nothing yet).
	LastSeq uint64 `json:"last_seq"`
	// SnapshotSeq is the newest on-disk snapshot's sequence.
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// Segments counts the device's segment files on disk.
	Segments int `json:"segments"`
	// Segment is the current segment file (empty before the first
	// append after start).
	Segment string `json:"segment,omitempty"`
	// SegmentBytes is the current segment's size.
	SegmentBytes int64 `json:"segment_bytes"`
	// LastFsync is the wall-clock time of the device's last fsync
	// (zero: none yet).
	LastFsync time.Time `json:"last_fsync,omitzero"`
}

// Status is a point-in-time view of the writer: recovery figures from
// the open, cumulative persistence counters, and per-device positions.
// It backs the /metrics WAL families, the flightlog dump and the
// rmserve recovery report.
type Status struct {
	// Dir is the data directory.
	Dir string `json:"dir"`
	// Policy is the fsync policy in effect.
	Policy string `json:"policy"`
	// Recovered reports whether this process started from prior state.
	Recovered bool `json:"recovered"`
	// RecoveredEvents counts the log-tail events handed to replay.
	RecoveredEvents int `json:"recovered_events"`
	// RecoveredSnapshots counts the devices recovered from a snapshot.
	RecoveredSnapshots int `json:"recovered_snapshots"`
	// TruncatedBytes counts torn bytes physically removed at open.
	TruncatedBytes int64 `json:"truncated_bytes"`
	// Appended counts events persisted since start.
	Appended int64 `json:"appended"`
	// Fsyncs counts fsync calls since start.
	Fsyncs int64 `json:"fsyncs"`
	// Snapshots counts snapshots written since start.
	Snapshots int64 `json:"snapshots"`
	// Rescues counts lag rescues (retention window overruns absorbed by
	// an extra snapshot) since start.
	Rescues int64 `json:"rescues"`
	// Err is the first persistence error, if any.
	Err string `json:"err,omitempty"`
	// FsyncLatency is the fsync latency distribution (nanoseconds).
	FsyncLatency metrics.HistSnapshot `json:"-"`
	// Devices holds the per-device positions, indexed by device id.
	Devices []DeviceStatus `json:"devices"`
}

// StatusSource is what the HTTP front-end and the flightlog dump need
// from the WAL; *Writer implements it.
type StatusSource interface {
	WALStatus() Status
}

// Status reports the writer's current position; see Status's fields.
func (w *Writer) Status() Status {
	s := Status{
		Dir:                w.st.Dir,
		Policy:             w.opt.Fsync.String(),
		Recovered:          w.st.Recovered,
		RecoveredEvents:    w.st.Events,
		RecoveredSnapshots: w.st.Snapshots,
		TruncatedBytes:     w.st.TruncatedBytes,
		Appended:           w.appended.Load(),
		Fsyncs:             w.fsyncs.Load(),
		Snapshots:          w.snapshots.Load(),
		Rescues:            w.rescues.Load(),
		FsyncLatency:       w.fsyncLatency.Snapshot(),
		Devices:            make([]DeviceStatus, len(w.devs)),
	}
	if err := w.Err(); err != nil {
		s.Err = err.Error()
	}
	for i, d := range w.devs {
		d.mu.Lock()
		s.Devices[i] = DeviceStatus{
			Device:       d.dev,
			LastSeq:      d.lastSeq,
			SnapshotSeq:  d.snapSeq,
			Segments:     d.segCount,
			Segment:      d.segPath,
			SegmentBytes: d.segBytes,
			LastFsync:    d.lastFsync,
		}
		d.mu.Unlock()
	}
	return s
}

// WALStatus implements StatusSource.
func (w *Writer) WALStatus() Status { return w.Status() }
